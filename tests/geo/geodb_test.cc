#include "geo/geodb.h"

#include <gtest/gtest.h>

#include <sstream>

namespace sublet::geo {
namespace {

Prefix P(const char* s) { return *Prefix::parse(s); }

TEST(GeoDb, LongestMatchLookup) {
  GeoDb db("test");
  db.add(P("213.210.0.0/18"), "SE");
  db.add(P("213.210.33.0/24"), "US");
  EXPECT_EQ(db.lookup(P("213.210.33.0/24")), "US");
  EXPECT_EQ(db.lookup(P("213.210.2.0/24")), "SE") << "falls to the /18";
  EXPECT_EQ(db.lookup(P("10.0.0.0/8")), "") << "unmapped";
}

TEST(GeoDb, CsvRoundTrip) {
  GeoDb db("p0");
  db.add(P("10.0.0.0/8"), "US");
  db.add(P("213.210.33.0/24"), "BR");
  std::ostringstream out;
  db.write_csv(out);
  std::istringstream in(out.str());
  auto loaded = GeoDb::parse_csv(in, "p0");
  EXPECT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded.lookup(P("213.210.33.0/24")), "BR");
}

TEST(GeoDb, BadRowsDiagnosed) {
  std::istringstream in("# ok\n10.0.0.0/8,US\nnocomma\nbadprefix,DE\n,US\n");
  std::vector<Error> diags;
  auto db = GeoDb::parse_csv(in, "t", &diags);
  EXPECT_EQ(db.size(), 1u);
  EXPECT_EQ(diags.size(), 3u);
}

TEST(GeoDb, LoadMissingThrows) {
  EXPECT_THROW(GeoDb::load_csv("/nonexistent/geo.csv"), std::runtime_error);
}

TEST(CheckConsistency, CountsDistinctAnswers) {
  std::vector<GeoDb> dbs(3);
  dbs[0].add(P("10.0.0.0/24"), "SE");
  dbs[1].add(P("10.0.0.0/24"), "US");
  dbs[2].add(P("10.0.0.0/24"), "SE");

  auto result = check_consistency(dbs, P("10.0.0.0/24"));
  EXPECT_EQ(result.countries.size(), 3u);
  EXPECT_EQ(result.distinct, 2u);
  EXPECT_FALSE(result.consistent());
}

TEST(CheckConsistency, AgreementAndMissingAnswers) {
  std::vector<GeoDb> dbs(3);
  dbs[0].add(P("10.0.0.0/24"), "SE");
  dbs[1].add(P("10.0.0.0/24"), "SE");
  // dbs[2] has no entry.
  auto result = check_consistency(dbs, P("10.0.0.0/24"));
  EXPECT_EQ(result.countries.size(), 2u);
  EXPECT_TRUE(result.consistent());

  auto missing = check_consistency(dbs, P("192.0.2.0/24"));
  EXPECT_TRUE(missing.countries.empty());
  EXPECT_TRUE(missing.consistent());
}

}  // namespace
}  // namespace sublet::geo
