#include "abuse/asn_lists.h"

#include <gtest/gtest.h>

#include <sstream>

namespace sublet::abuse {
namespace {

TEST(AsnSet, BasicMembership) {
  AsnSet set;
  set.add(Asn(213371));
  set.add(Asn(400990));
  EXPECT_TRUE(set.contains(Asn(213371)));
  EXPECT_FALSE(set.contains(Asn(15169)));
  EXPECT_EQ(set.size(), 2u);
  EXPECT_EQ(set.all(), (std::vector<Asn>{Asn(213371), Asn(400990)}));
}

TEST(ParseDrop, JsonLines) {
  std::istringstream in(
      "{\"asn\":213371,\"rir\":\"ripencc\",\"domain\":null,\"cc\":\"SC\"}\n"
      "{\"asn\": 400990, \"rir\":\"arin\"}\n"
      "{\"type\":\"metadata\",\"timestamp\":1712000000}\n");
  auto set = AsnSet::parse_drop(in);
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.contains(Asn(213371)));
  EXPECT_TRUE(set.contains(Asn(400990)));
}

TEST(ParseDrop, HistoricalFormat) {
  std::istringstream in(
      "; Spamhaus ASN DROP List\n"
      "AS213371 ; EVIL-NET\n"
      "AS400990 ; WORSE-NET\n");
  auto set = AsnSet::parse_drop(in);
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.contains(Asn(213371)));
}

TEST(ParseDrop, BadLinesDiagnosed) {
  std::istringstream in("{\"no_asn_field\":1}\nnot-an-asn\n");
  std::vector<Error> diags;
  auto set = AsnSet::parse_drop(in, "t", &diags);
  EXPECT_EQ(set.size(), 0u);
  EXPECT_EQ(diags.size(), 2u);
}

TEST(ParsePlain, OneAsnPerLine) {
  std::istringstream in("# serial hijackers\n123\nAS456\n\n789\n");
  auto set = AsnSet::parse_plain(in);
  EXPECT_EQ(set.size(), 3u);
  EXPECT_TRUE(set.contains(Asn(456)));
}

TEST(WriteDrop, RoundTrip) {
  AsnSet set;
  set.add(Asn(999));
  set.add(Asn(111));
  std::ostringstream out;
  set.write_drop(out);
  std::istringstream in(out.str());
  auto loaded = AsnSet::parse_drop(in);
  EXPECT_EQ(loaded.size(), 2u);
  EXPECT_TRUE(loaded.contains(Asn(111)));
  EXPECT_TRUE(loaded.contains(Asn(999)));
}

TEST(WritePlain, RoundTrip) {
  AsnSet set;
  set.add(Asn(42));
  std::ostringstream out;
  set.write_plain(out);
  std::istringstream in(out.str());
  auto loaded = AsnSet::parse_plain(in);
  EXPECT_EQ(loaded.size(), 1u);
  EXPECT_TRUE(loaded.contains(Asn(42)));
}

TEST(LoadLists, MissingFilesThrow) {
  EXPECT_THROW(AsnSet::load_drop("/nonexistent/drop.json"),
               std::runtime_error);
  EXPECT_THROW(AsnSet::load_plain("/nonexistent/hijackers.txt"),
               std::runtime_error);
}

}  // namespace
}  // namespace sublet::abuse
