#include "util/binio.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <vector>

namespace sublet {
namespace {

TEST(Binio, LittleEndianLayout) {
  ByteWriter w;
  w.u8(0x01);
  w.u16(0x0203);
  w.u32(0x04050607);
  w.u64(0x08090A0B0C0D0E0FULL);
  std::vector<std::uint8_t> expected = {0x01, 0x03, 0x02, 0x07, 0x06,
                                        0x05, 0x04, 0x0F, 0x0E, 0x0D,
                                        0x0C, 0x0B, 0x0A, 0x09, 0x08};
  EXPECT_EQ(w.take(), expected);
}

TEST(Binio, IntRoundTrip) {
  ByteWriter w;
  w.u8(0xAB);
  w.u16(0xBEEF);
  w.u32(0xDEADBEEFu);
  w.u64(0x0123456789ABCDEFULL);
  auto bytes = w.take();
  ByteReader r(bytes);
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0xBEEF);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFULL);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(Binio, VarintRoundTrip) {
  std::vector<std::uint64_t> values = {
      0,   1,   127, 128,  129,  300,  16383, 16384,
      1u << 20, 1ull << 35, 1ull << 62,
      std::numeric_limits<std::uint64_t>::max()};
  ByteWriter w;
  for (std::uint64_t v : values) w.varint(v);
  auto bytes = w.take();
  ByteReader r(bytes);
  for (std::uint64_t v : values) {
    EXPECT_EQ(r.varint(), v);
    EXPECT_TRUE(r.ok());
  }
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(Binio, VarintEncodingSizes) {
  ByteWriter one, two, ten;
  one.varint(127);
  two.varint(128);
  ten.varint(std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(one.size(), 1u);
  EXPECT_EQ(two.size(), 2u);
  EXPECT_EQ(ten.size(), 10u);
}

TEST(Binio, VarintTruncatedFails) {
  std::vector<std::uint8_t> truncated = {0x80, 0x80};  // continuation, no end
  ByteReader r(truncated);
  r.varint();
  EXPECT_FALSE(r.ok());
}

TEST(Binio, VarintOverlongFails) {
  // Eleven continuation bytes can never be a valid 64-bit LEB128.
  std::vector<std::uint8_t> overlong(11, 0x80);
  overlong.push_back(0x00);
  ByteReader r(overlong);
  r.varint();
  EXPECT_FALSE(r.ok());
}

TEST(Binio, ReaderUnderrunIsSticky) {
  std::vector<std::uint8_t> two = {0x01, 0x02};
  ByteReader r(two);
  EXPECT_EQ(r.u32(), 0u);  // needs 4 bytes, only 2 present
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.u8(), 0u);  // still failed even though a byte "exists"
  EXPECT_FALSE(r.ok());
}

TEST(Binio, BytesAndStringAndSkip) {
  ByteWriter w;
  w.string("abc");
  w.u8(0xFF);
  w.string("xyz");
  auto buf = w.take();
  ByteReader r(buf);
  EXPECT_EQ(r.string(3), "abc");
  r.skip(1);
  auto tail = r.bytes(3);
  ASSERT_EQ(tail.size(), 3u);
  EXPECT_EQ(tail[0], 'x');
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.bytes(1).size(), 0u);  // past end
  EXPECT_FALSE(r.ok());
}

TEST(Binio, PadToAndPatch) {
  ByteWriter w;
  w.u8(1);
  w.pad_to(16);
  EXPECT_EQ(w.size(), 16u);
  w.u32(0);
  w.patch_u32(16, 0xCAFEBABEu);
  auto bytes = w.take();
  ByteReader r(bytes);
  r.skip(16);
  EXPECT_EQ(r.u32(), 0xCAFEBABEu);
}

TEST(Binio, Crc32KnownVectors) {
  // The classic check value: CRC-32("123456789") == 0xCBF43926.
  const char* check = "123456789";
  std::span<const std::uint8_t> data(
      reinterpret_cast<const std::uint8_t*>(check), 9);
  EXPECT_EQ(crc32(data), 0xCBF43926u);
  EXPECT_EQ(crc32({}), 0u);
}

TEST(Binio, Crc32Incremental) {
  std::vector<std::uint8_t> payload(1024);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i * 31 + 7);
  }
  std::uint32_t whole = crc32(payload);
  std::span<const std::uint8_t> view(payload);
  std::uint32_t pieces = crc32(view.subspan(0, 100));
  pieces = crc32(view.subspan(100, 500), pieces);
  pieces = crc32(view.subspan(600), pieces);
  EXPECT_EQ(pieces, whole);
  // Any flipped bit must change the checksum.
  payload[512] ^= 0x10;
  EXPECT_NE(crc32(payload), whole);
}

}  // namespace
}  // namespace sublet
