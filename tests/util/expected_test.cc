#include "util/expected.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

namespace sublet {
namespace {

TEST(Expected, HoldsValue) {
  Expected<int> e(42);
  ASSERT_TRUE(e);
  EXPECT_EQ(*e, 42);
  EXPECT_EQ(e.value_or(0), 42);
}

TEST(Expected, HoldsError) {
  Expected<int> e(fail("boom", "input.txt", 3));
  ASSERT_FALSE(e);
  EXPECT_EQ(e.error().message, "boom");
  EXPECT_EQ(e.value_or(-1), -1);
}

TEST(Expected, MoveOnlyValue) {
  Expected<std::unique_ptr<int>> e(std::make_unique<int>(5));
  ASSERT_TRUE(e);
  auto p = std::move(e).value();
  EXPECT_EQ(*p, 5);
}

TEST(Expected, ArrowOperator) {
  Expected<std::string> e(std::string("hello"));
  EXPECT_EQ(e->size(), 5u);
}

TEST(ErrorToString, AllPieces) {
  EXPECT_EQ(fail("msg", "f.db", 7).to_string(), "f.db:7: msg");
  EXPECT_EQ(fail("msg", "f.db").to_string(), "f.db: msg");
  EXPECT_EQ(fail("msg").to_string(), "msg");
}

TEST(ErrorCode, FailCodeCarriesErrnoStyleCode) {
  Error plain = fail("no code");
  EXPECT_EQ(plain.code, 0);
  Error typed = fail_code("timed out", 110);  // ETIMEDOUT on Linux
  EXPECT_EQ(typed.code, 110);
  EXPECT_EQ(typed.to_string(), "timed out");
  // The code survives a trip through Expected.
  Expected<int> e(typed);
  ASSERT_FALSE(e);
  EXPECT_EQ(e.error().code, 110);
}

}  // namespace
}  // namespace sublet
