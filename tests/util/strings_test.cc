#include "util/strings.h"

#include <gtest/gtest.h>

namespace sublet {
namespace {

TEST(Trim, StripsBothEnds) {
  EXPECT_EQ(trim("  hello  "), "hello");
  EXPECT_EQ(trim("\t\r\nx\n"), "x");
}

TEST(Trim, EmptyAndAllSpace) {
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   \t "), "");
}

TEST(Trim, NoOpWhenClean) { EXPECT_EQ(trim("abc"), "abc"); }

TEST(Split, KeepsEmptyFields) {
  auto parts = split("a|b||c", '|');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(Split, SingleField) {
  auto parts = split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(Split, TrailingSeparatorYieldsEmptyField) {
  auto parts = split("a,", ',');
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[1], "");
}

TEST(SplitWs, CollapsesRuns) {
  auto parts = split_ws("  a \t b\n\nc ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(SplitWs, EmptyInput) { EXPECT_TRUE(split_ws("   ").empty()); }

TEST(ToLower, Ascii) { EXPECT_EQ(to_lower("MiXeD-42"), "mixed-42"); }

TEST(IEquals, CaseInsensitive) {
  EXPECT_TRUE(iequals("InetNum", "inetnum"));
  EXPECT_FALSE(iequals("inetnum", "inetnums"));
  EXPECT_FALSE(iequals("a", "b"));
}

TEST(IStartsWith, Basic) {
  EXPECT_TRUE(istarts_with("AS64500", "as"));
  EXPECT_FALSE(istarts_with("A", "AS"));
}

TEST(ParseU64, Valid) {
  EXPECT_EQ(parse_u64("0"), 0u);
  EXPECT_EQ(parse_u64("18446744073709551615"), UINT64_MAX);
}

TEST(ParseU64, RejectsJunkAndOverflow) {
  EXPECT_FALSE(parse_u64(""));
  EXPECT_FALSE(parse_u64("12a"));
  EXPECT_FALSE(parse_u64("-1"));
  EXPECT_FALSE(parse_u64("18446744073709551616"));  // 2^64
}

TEST(ParseU32, RejectsOver32Bits) {
  EXPECT_EQ(parse_u32("4294967295"), UINT32_MAX);
  EXPECT_FALSE(parse_u32("4294967296"));
}

TEST(NormalizeOrgName, DropsLegalSuffixes) {
  EXPECT_EQ(normalize_org_name("Acme Networks LTD"), "acme networks");
  EXPECT_EQ(normalize_org_name("Acme Networks L.T.D."), "acme networks")
      << "dotted abbreviations merge, then drop as a legal suffix (paper "
         "§6.2: 'LTD vs L.T.D.')";
  EXPECT_EQ(normalize_org_name("Cyber Assets FZCO"), "cyber assets");
}

TEST(NormalizeOrgName, MultipleSuffixes) {
  EXPECT_EQ(normalize_org_name("Foo Co. Ltd."), "foo");
}

TEST(NormalizeOrgName, NeverEmpty) {
  EXPECT_EQ(normalize_org_name("Ltd"), "ltd");
}

TEST(NormalizeOrgName, PunctuationAndCase) {
  EXPECT_EQ(normalize_org_name("  IPXO,   LLC "), "ipxo");
  EXPECT_EQ(normalize_org_name("AT&T Services, Inc."), "at t services");
}

TEST(Join, Basic) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
}

}  // namespace
}  // namespace sublet
