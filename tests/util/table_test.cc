#include "util/table.h"

#include <gtest/gtest.h>

namespace sublet {
namespace {

TEST(TextTable, AlignsColumns) {
  TextTable t({"Name", "Count"});
  t.add_row({"alpha", "5"});
  t.add_row({"b", "12345"});
  std::string s = t.to_string();
  EXPECT_NE(s.find("Name   Count"), std::string::npos);
  EXPECT_NE(s.find("alpha      5"), std::string::npos);
  EXPECT_NE(s.find("b      12345"), std::string::npos);
}

TEST(TextTable, ShortRowsArePadded) {
  TextTable t({"A", "B", "C"});
  t.add_row({"x"});
  EXPECT_NO_THROW(t.to_string());
}

TEST(TextTable, Indent) {
  TextTable t({"A"});
  t.add_row({"x"});
  std::string s = t.to_string(2);
  EXPECT_EQ(s.rfind("  A", 0), 0u);
}

TEST(WithCommas, GroupsDigits) {
  EXPECT_EQ(with_commas(0), "0");
  EXPECT_EQ(with_commas(999), "999");
  EXPECT_EQ(with_commas(1000), "1,000");
  EXPECT_EQ(with_commas(47318), "47,318");
  EXPECT_EQ(with_commas(1146921), "1,146,921");
}

TEST(Percent, Formats) {
  EXPECT_EQ(percent(0.041), "4.1%");
  EXPECT_EQ(percent(0.98, 0), "98%");
  EXPECT_EQ(percent(0.0213, 2), "2.13%");
}

TEST(Fixed, Formats) {
  EXPECT_EQ(fixed(5.0, 1), "5.0");
  EXPECT_EQ(fixed(3.14159, 2), "3.14");
}

}  // namespace
}  // namespace sublet
