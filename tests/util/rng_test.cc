#include "util/rng.h"

#include <gtest/gtest.h>

#include <set>

namespace sublet {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Rng, NextBelowCoversRange) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, NextInInclusive) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    auto v = rng.next_in(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceRoughlyCalibrated) {
  Rng rng(19);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) {
    if (rng.chance(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(Rng, ForkIsIndependentAndStable) {
  Rng a(23);
  Rng child1 = a.fork(1);
  Rng a2(23);
  Rng child1_again = a2.fork(1);
  EXPECT_EQ(child1.next_u64(), child1_again.next_u64());

  Rng a3(23);
  Rng child2 = a3.fork(2);
  Rng a4(23);
  Rng child1_b = a4.fork(1);
  EXPECT_NE(child2.next_u64(), child1_b.next_u64());
}

TEST(Rng, ZipfInRangeAndSkewed) {
  Rng rng(29);
  std::uint64_t low = 0, total = 20000;
  for (std::uint64_t i = 0; i < total; ++i) {
    auto r = rng.next_zipf(1000, 1.2);
    EXPECT_LT(r, 1000u);
    if (r < 10) ++low;
  }
  // Heavy tail: the top 1% of ranks should collect far more than 1% of mass.
  EXPECT_GT(static_cast<double>(low) / static_cast<double>(total), 0.2);
}

TEST(Rng, ZipfDegenerateN) {
  Rng rng(31);
  EXPECT_EQ(rng.next_zipf(1), 0u);
  EXPECT_EQ(rng.next_zipf(0), 0u);
}

}  // namespace
}  // namespace sublet
