// SIMD-vs-scalar differential: every dispatched primitive in util/simd.h
// must be bit-for-bit identical to its always-compiled scalar reference on
// arbitrary inputs. The suite is built twice — test_simd with the native
// backend and test_simd_scalar with SUBLET_FORCE_SCALAR=1 — so both sides
// of the compile-time dispatch stay exercised (the scalar build is a
// self-differential that keeps the reference path under sanitizers too).
#include "util/simd.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string_view>
#include <vector>

#include "util/rng.h"

namespace sublet {
namespace {

TEST(SimdBackend, NameMatchesVectorizedFlag) {
#if defined(SUBLET_FORCE_SCALAR)
  EXPECT_STREQ(simd::backend_name(), "scalar");
  EXPECT_FALSE(simd::vectorized());
#else
  EXPECT_EQ(simd::vectorized(),
            std::string_view(simd::backend_name()) != "scalar");
#endif
}

TEST(SimdCountEq, EmptyAndTinySpans) {
  const std::vector<std::uint8_t> none;
  EXPECT_EQ(simd::count_eq_u8(none, 7), 0u);
  EXPECT_EQ(simd::count_eq_u8_scalar(none, 7), 0u);
  for (std::size_t n = 1; n < 40; ++n) {  // below/around one vector width
    std::vector<std::uint8_t> v(n);
    for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<std::uint8_t>(i % 3);
    for (int t = 0; t < 4; ++t) {
      const auto target = static_cast<std::uint8_t>(t);
      EXPECT_EQ(simd::count_eq_u8(v, target),
                simd::count_eq_u8_scalar(v, target))
          << "n=" << n << " t=" << t;
    }
  }
}

TEST(SimdCountEq, AllMatchAndNoMatch) {
  const std::vector<std::uint8_t> same(100'000, 42);
  EXPECT_EQ(simd::count_eq_u8(same, 42), 100'000u);
  EXPECT_EQ(simd::count_eq_u8(same, 41), 0u);
  // > 255 * 16 elements: crosses the SSE2 byte-accumulator flush boundary.
  EXPECT_EQ(simd::count_eq_u8_scalar(same, 42), 100'000u);

  const std::vector<std::uint32_t> words(10'000, 0xDEADBEEFu);
  EXPECT_EQ(simd::count_eq_u32(words, 0xDEADBEEFu), 10'000u);
  EXPECT_EQ(simd::count_eq_u32(words, 0xDEADBEEEu), 0u);
}

TEST(SimdMaskedSum, DenseSparseAndSaturatingValues) {
  // Dense keys (few distinct values → long all-match runs) and huge values
  // near 2^63 verify there is no intermediate narrowing in the sum.
  std::vector<std::uint8_t> keys(3000);
  std::vector<std::uint64_t> values(3000);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    keys[i] = static_cast<std::uint8_t>(i < 2900 ? 1 : i % 7);
    values[i] = (std::uint64_t{1} << 62) + i;
  }
  for (int t = 0; t < 8; ++t) {
    const auto target = static_cast<std::uint8_t>(t);
    EXPECT_EQ(simd::masked_sum_u64(keys, target, values),
              simd::masked_sum_u64_scalar(keys, target, values))
        << t;
  }
}

class SimdDifferential : public testing::TestWithParam<std::uint64_t> {};

TEST_P(SimdDifferential, MatchesScalarOnRandomColumns) {
  Rng rng(GetParam());
  for (int round = 0; round < 50; ++round) {
    const auto n = static_cast<std::size_t>(rng.next_in(0, 700));
    // Vary key cardinality so match density sweeps dense → sparse → none.
    const auto cardinality = static_cast<std::uint32_t>(rng.next_in(1, 200));
    std::vector<std::uint8_t> keys(n);
    std::vector<std::uint32_t> words(n);
    std::vector<std::uint64_t> values(n);
    for (std::size_t i = 0; i < n; ++i) {
      keys[i] = static_cast<std::uint8_t>(rng.next_below(cardinality));
      words[i] = static_cast<std::uint32_t>(rng.next_below(cardinality));
      values[i] = rng.next_u64();
    }
    for (int probe = 0; probe < 6; ++probe) {
      const auto t8 = static_cast<std::uint8_t>(rng.next_in(0, 255));
      const auto t32 = static_cast<std::uint32_t>(rng.next_below(256));
      EXPECT_EQ(simd::count_eq_u8(keys, t8),
                simd::count_eq_u8_scalar(keys, t8));
      EXPECT_EQ(simd::count_eq_u32(words, t32),
                simd::count_eq_u32_scalar(words, t32));
      EXPECT_EQ(simd::masked_sum_u64(keys, t8, values),
                simd::masked_sum_u64_scalar(keys, t8, values));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimdDifferential,
                         testing::Values(5, 1211, 987654321));

}  // namespace
}  // namespace sublet
