#include "util/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

namespace sublet::par {
namespace {

// ------------------------------------------------- thread resolution ------

TEST(Threads, ResolveMapsZeroToProcessDefault) {
  EXPECT_EQ(resolve_threads(0), default_threads());
  EXPECT_EQ(resolve_threads(1), 1u);
  EXPECT_EQ(resolve_threads(7), 7u);
}

TEST(Threads, SetDefaultRoundTrips) {
  unsigned saved = default_threads();
  set_default_threads(3);
  EXPECT_EQ(default_threads(), 3u);
  EXPECT_EQ(resolve_threads(0), 3u);
  set_default_threads(0);  // 0 resets to hardware concurrency
  EXPECT_GE(default_threads(), 1u);
  set_default_threads(saved);
}

TEST(Threads, RecommendedChunkCoversRange) {
  EXPECT_EQ(recommended_chunk(0, 4), 1u);
  EXPECT_GE(recommended_chunk(1, 4), 1u);
  // The chunk size must never produce more pieces than 4x the thread
  // count (per-task overhead) and must always be at least 1.
  for (std::size_t n : {1u, 7u, 64u, 1000u}) {
    std::size_t chunk = recommended_chunk(n, 4);
    ASSERT_GE(chunk, 1u);
    EXPECT_LE((n + chunk - 1) / chunk, std::size_t{4} * 4);
  }
}

// ------------------------------------------------------- ThreadPool ------

TEST(ThreadPool, SerialModeRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  std::vector<int> order;
  pool.submit([&] { order.push_back(1); });
  pool.submit([&] { order.push_back(2); });
  pool.submit([&] { order.push_back(3); });
  // Inline mode: tasks ran during submit(), in submission order.
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  pool.wait();
}

TEST(ThreadPool, ParallelModeRunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) pool.submit([&] { ++count; });
  pool.wait();
  EXPECT_EQ(count.load(), 100);
  // wait() is reusable: the pool accepts more work afterwards.
  pool.submit([&] { ++count; });
  pool.wait();
  EXPECT_EQ(count.load(), 101);
}

// ------------------------------------------------------ parallel_for ------

void check_parallel_for(std::size_t n, std::size_t chunk, unsigned threads) {
  std::vector<std::atomic<int>> hits(n);
  parallel_for(
      n, chunk,
      [&](std::size_t begin, std::size_t end) {
        ASSERT_LE(begin, end);
        ASSERT_LE(end, n);
        for (std::size_t i = begin; i < end; ++i) ++hits[i];
      },
      threads);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i << " covered "
                                 << hits[i].load() << " times";
  }
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  for (unsigned threads : {1u, 2u, 8u}) {
    check_parallel_for(0, 4, threads);    // empty range
    check_parallel_for(1, 4, threads);    // single element
    check_parallel_for(3, 100, threads);  // chunk larger than range
    check_parallel_for(1000, 7, threads);
  }
}

TEST(ParallelFor, PropagatesFirstException) {
  for (unsigned threads : {1u, 4u}) {
    EXPECT_THROW(
        parallel_for(
            100, 10,
            [](std::size_t begin, std::size_t) {
              if (begin >= 50) throw std::runtime_error("boom");
            },
            threads),
        std::runtime_error);
  }
}

// ------------------------------------------------------ parallel_map ------

TEST(ParallelMap, PreservesInputOrder) {
  std::vector<int> items(500);
  std::iota(items.begin(), items.end(), 0);
  for (unsigned threads : {1u, 2u, 8u}) {
    auto out = parallel_map(
        items, [](const int& v) { return std::to_string(v * 2); }, threads);
    ASSERT_EQ(out.size(), items.size());
    for (std::size_t i = 0; i < out.size(); ++i) {
      EXPECT_EQ(out[i], std::to_string(static_cast<int>(i) * 2));
    }
  }
}

TEST(ParallelMap, HandlesEmptyAndSingle) {
  std::vector<int> empty;
  EXPECT_TRUE(parallel_map(empty, [](const int& v) { return v; }, 8).empty());
  std::vector<int> one{42};
  auto out = parallel_map(one, [](const int& v) { return v + 1; }, 8);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 43);
}

// Move-only results must work: WhoisDb (no default constructor, move-only
// in practice) flows through parallel_map in the chunked WHOIS parser.
struct MoveOnly {
  explicit MoveOnly(int v) : value(v) {}
  MoveOnly(MoveOnly&&) = default;
  MoveOnly& operator=(MoveOnly&&) = default;
  MoveOnly(const MoveOnly&) = delete;
  int value;
};

TEST(ParallelMap, SupportsMoveOnlyNonDefaultConstructibleResults) {
  std::vector<int> items(64);
  std::iota(items.begin(), items.end(), 0);
  for (unsigned threads : {1u, 4u}) {
    auto out = parallel_map(
        items, [](const int& v) { return MoveOnly(v); }, threads);
    ASSERT_EQ(out.size(), items.size());
    for (std::size_t i = 0; i < out.size(); ++i) {
      EXPECT_EQ(out[i].value, static_cast<int>(i));
    }
  }
}

TEST(ParallelMap, PropagatesException) {
  std::vector<int> items(100);
  std::iota(items.begin(), items.end(), 0);
  for (unsigned threads : {1u, 4u}) {
    EXPECT_THROW(parallel_map(
                     items,
                     [](const int& v) {
                       if (v == 63) throw std::runtime_error("bad item");
                       return v;
                     },
                     threads),
                 std::runtime_error);
  }
}

// --------------------------------------------------------- TaskGroup ------

TEST(TaskGroup, RunsHeterogeneousTasks) {
  for (unsigned threads : {1u, 4u}) {
    TaskGroup group(threads);
    std::atomic<int> sum{0};
    int a = 0;
    std::string b;
    group.run([&] { a = 7; });
    group.run([&] { b = "done"; });
    for (int i = 0; i < 20; ++i) group.run([&] { ++sum; });
    group.wait();
    EXPECT_EQ(a, 7);
    EXPECT_EQ(b, "done");
    EXPECT_EQ(sum.load(), 20);
  }
}

TEST(TaskGroup, WaitWithZeroTasksIsNoOp) {
  TaskGroup group(4);
  group.wait();
}

TEST(TaskGroup, PropagatesFirstException) {
  for (unsigned threads : {1u, 4u}) {
    TaskGroup group(threads);
    std::atomic<int> completed{0};
    group.run([&] { ++completed; });
    group.run([] { throw std::runtime_error("task failed"); });
    group.run([&] { ++completed; });
    EXPECT_THROW(group.wait(), std::runtime_error);
    EXPECT_EQ(completed.load(), 2);
  }
}

TEST(TaskGroup, DestructorJoinsOutstandingTasks) {
  // Tasks capture a local by reference; the destructor must join before
  // the local goes out of scope even when wait() is never called.
  std::atomic<int> count{0};
  {
    TaskGroup group(4);
    for (int i = 0; i < 16; ++i) group.run([&] { ++count; });
  }
  EXPECT_EQ(count.load(), 16);
}

}  // namespace
}  // namespace sublet::par
