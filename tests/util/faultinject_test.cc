#include "util/faultinject.h"

#include <gtest/gtest.h>

#include <cerrno>
#include <cstdlib>

namespace sublet::fault {
namespace {

class FaultHarness : public testing::Test {
 protected:
  void SetUp() override {
    if (!enabled()) GTEST_SKIP() << "fault injection compiled out";
    disarm_all();
  }
  void TearDown() override { disarm_all(); }
};

TEST_F(FaultHarness, UnarmedSitesNeverFire) {
  int err = 0;
  EXPECT_FALSE(inject("nothing.armed", &err));
  EXPECT_EQ(err, 0);
  EXPECT_EQ(trip_count("nothing.armed"), 0u);
}

TEST_F(FaultHarness, ArmedSiteFiresWithItsErrno) {
  arm("io.read", EIO);
  int err = 0;
  EXPECT_TRUE(inject("io.read", &err));
  EXPECT_EQ(err, EIO);
  // Other sites are unaffected.
  EXPECT_FALSE(inject("io.write", &err));
  EXPECT_EQ(trip_count("io.read"), 1u);
  disarm("io.read");
  EXPECT_FALSE(inject("io.read", &err));
}

TEST_F(FaultHarness, SkipAndTimesBoundTheFailureWindow) {
  // Let 2 calls through, then fail 2, then pass again.
  arm("io.read", EIO, /*skip=*/2, /*times=*/2);
  int err = 0;
  EXPECT_FALSE(inject("io.read", &err));
  EXPECT_FALSE(inject("io.read", &err));
  EXPECT_TRUE(inject("io.read", &err));
  EXPECT_TRUE(inject("io.read", &err));
  EXPECT_FALSE(inject("io.read", &err));
  EXPECT_FALSE(inject("io.read", &err));
  EXPECT_EQ(trip_count("io.read"), 2u);
}

TEST_F(FaultHarness, NullErrnoPointerIsAllowed) {
  arm("io.read", EPIPE);
  EXPECT_TRUE(inject("io.read", nullptr));
}

TEST_F(FaultHarness, ScopedFaultDisarmsOnExit) {
  {
    ScopedFault fault("scoped.site", ECONNRESET, /*skip=*/0, /*times=*/-1);
    int err = 0;
    EXPECT_TRUE(inject("scoped.site", &err));
    EXPECT_EQ(err, ECONNRESET);
    EXPECT_EQ(fault.trips(), 1u);
  }
  int err = 0;
  EXPECT_FALSE(inject("scoped.site", &err));
  EXPECT_EQ(trip_count("scoped.site"), 0u);
}

TEST_F(FaultHarness, LoadEnvParsesTheFaultGrammar) {
  ::setenv("SUBLET_FAULTS_TEST",
           "a.read=EIO:1, b.accept=EMFILE:2:1 ,c.numeric=104,broken,=EIO,"
           "d.bad=NOTANERRNO",
           1);
  EXPECT_EQ(load_env("SUBLET_FAULTS_TEST"), 3u);
  int err = 0;
  // a.read: one EIO.
  EXPECT_TRUE(inject("a.read", &err));
  EXPECT_EQ(err, EIO);
  EXPECT_FALSE(inject("a.read", &err));
  // b.accept: skip 1, then two EMFILEs.
  EXPECT_FALSE(inject("b.accept", &err));
  EXPECT_TRUE(inject("b.accept", &err));
  EXPECT_EQ(err, EMFILE);
  EXPECT_TRUE(inject("b.accept", &err));
  EXPECT_FALSE(inject("b.accept", &err));
  // c.numeric: raw errno number (104 = ECONNRESET on Linux).
  EXPECT_TRUE(inject("c.numeric", &err));
  EXPECT_EQ(err, 104);
  ::unsetenv("SUBLET_FAULTS_TEST");
}

TEST_F(FaultHarness, MissingEnvVarArmsNothing) {
  ::unsetenv("SUBLET_FAULTS_ABSENT");
  EXPECT_EQ(load_env("SUBLET_FAULTS_ABSENT"), 0u);
}

}  // namespace
}  // namespace sublet::fault
