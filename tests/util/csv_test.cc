#include "util/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace sublet {
namespace {

TEST(CsvWriter, PlainFields) {
  std::ostringstream out;
  CsvWriter w(out);
  w.write_row({"a", "b", "c"});
  EXPECT_EQ(out.str(), "a,b,c\n");
}

TEST(CsvWriter, QuotesWhenNeeded) {
  std::ostringstream out;
  CsvWriter w(out);
  w.write_row({"a,b", "he said \"hi\"", "line\nbreak"});
  EXPECT_EQ(out.str(), "\"a,b\",\"he said \"\"hi\"\"\",\"line\nbreak\"\n");
}

TEST(CsvWriter, TsvSeparator) {
  std::ostringstream out;
  CsvWriter w(out, '\t');
  w.write_row({"a", "b,c"});
  EXPECT_EQ(out.str(), "a\tb,c\n") << "commas need no quoting in TSV";
}

TEST(ParseCsvLine, Simple) {
  auto f = parse_csv_line("a,b,c");
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[1], "b");
}

TEST(ParseCsvLine, QuotedFieldWithSeparator) {
  auto f = parse_csv_line("\"a,b\",c");
  ASSERT_EQ(f.size(), 2u);
  EXPECT_EQ(f[0], "a,b");
  EXPECT_EQ(f[1], "c");
}

TEST(ParseCsvLine, EscapedQuote) {
  auto f = parse_csv_line("\"say \"\"hi\"\"\"");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0], "say \"hi\"");
}

TEST(ParseCsvLine, EmptyFields) {
  auto f = parse_csv_line(",,");
  ASSERT_EQ(f.size(), 3u);
  for (const auto& field : f) EXPECT_TRUE(field.empty());
}

TEST(ParseCsvLine, RoundTripsWriter) {
  std::ostringstream out;
  CsvWriter w(out);
  std::vector<std::string> row = {"plain", "with,comma", "with\"quote"};
  w.write_row(row);
  std::string line = out.str();
  line.pop_back();  // trailing newline
  EXPECT_EQ(parse_csv_line(line), row);
}

TEST(ReadDelimitedFile, SkipsCommentsAndBlanks) {
  std::string path = testing::TempDir() + "/sublet_csv_test.csv";
  {
    std::ofstream f(path);
    f << "# header comment\n\na,b\n# another\nc,d\n";
  }
  auto rows = read_delimited_file(path);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0], "a");
  EXPECT_EQ(rows[1][1], "d");
  std::remove(path.c_str());
}

TEST(ReadDelimitedFile, ThrowsOnMissingFile) {
  EXPECT_THROW(read_delimited_file("/nonexistent/nope.csv"),
               std::runtime_error);
}

}  // namespace
}  // namespace sublet
