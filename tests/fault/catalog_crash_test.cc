// Catalog append crash-safety (label `fault`): a SIGKILL between
// publishing an epoch file and rewriting the index must leave the catalog
// exactly as it was — the next open sweeps the orphan, and retrying the
// same append completes cleanly (docs/ROBUSTNESS.md "Soak & chaos").
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cerrno>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "leasing/report.h"
#include "util/faultinject.h"

namespace sublet {
namespace {

namespace fs = std::filesystem;
using leasing::InferenceGroup;
using leasing::LeaseInference;

std::vector<LeaseInference> epoch_records(std::uint32_t stamp,
                                          std::uint32_t count) {
  std::vector<LeaseInference> out;
  for (std::uint32_t i = 0; i < count; ++i) {
    LeaseInference r;
    r.prefix = *Prefix::make(Ipv4Addr((10u << 24) | (i << 8)), 24);
    r.root_prefix = *Prefix::parse("10.0.0.0/8");
    r.rir = whois::Rir::kRipe;
    r.group = i % 2 == 0 ? InferenceGroup::kLeasedWithRoot
                         : InferenceGroup::kIspCustomer;
    r.holder_org = "ORG-" + std::to_string(stamp) + "-" + std::to_string(i);
    r.holder_asns = {Asn(64512 + i)};
    r.netname = "NET-" + std::to_string(i);
    out.push_back(std::move(r));
  }
  return out;
}

class FaultCatalogCrash : public testing::Test {
 protected:
  void SetUp() override {
    fault::disarm_all();
    dir_ = testing::TempDir() + "/sublet_catcrash_" +
           std::to_string(::getpid()) + "_" +
           testing::UnitTest::GetInstance()->current_test_info()->name();
    fs::remove_all(dir_);
    ASSERT_TRUE(catalog::catalog_init(dir_, 1000, epoch_records(1000, 16))
                    .has_value());
    ASSERT_TRUE(
        catalog::catalog_append(dir_, 2000, epoch_records(2000, 17))
            .has_value());
  }
  void TearDown() override {
    fault::disarm_all();
    fs::remove_all(dir_);
  }

  std::vector<std::string> dir_names() const {
    std::vector<std::string> names;
    for (const auto& entry : fs::directory_iterator(dir_)) {
      names.push_back(entry.path().filename().string());
    }
    return names;
  }

  std::string dir_;
};

TEST_F(FaultCatalogCrash, OpenSweepsTmpAndOrphanEpochFiles) {
  std::ofstream(dir_ + "/catalog.idx.tmp") << "torn index publish";
  std::ofstream(dir_ + "/epoch-999000.snap") << "orphan full epoch";
  std::ofstream(dir_ + "/epoch-999001.dsnap") << "orphan delta epoch";

  auto catalog = catalog::Catalog::open(dir_);
  ASSERT_TRUE(catalog.has_value()) << catalog.error().to_string();
  EXPECT_EQ((*catalog)->epochs(), (std::vector<std::uint32_t>{1000, 2000}));

  EXPECT_FALSE(fs::exists(dir_ + "/catalog.idx.tmp"));
  EXPECT_FALSE(fs::exists(dir_ + "/epoch-999000.snap"));
  EXPECT_FALSE(fs::exists(dir_ + "/epoch-999001.dsnap"));
  // The referenced epochs themselves are untouched and still materialize.
  ASSERT_TRUE((*catalog)->epoch_at(2000).has_value());
}

TEST_F(FaultCatalogCrash, OpenKeepsEveryReferencedEpochFile) {
  const auto before = dir_names();
  auto catalog = catalog::Catalog::open(dir_);
  ASSERT_TRUE(catalog.has_value());
  EXPECT_EQ(dir_names(), before);  // a clean directory is left alone
}

TEST_F(FaultCatalogCrash, RenameFaultFailsCleanlyAndRetrySucceeds) {
  if (!fault::enabled()) GTEST_SKIP() << "fault injection compiled out";
  fault::arm("catalog.rename", EIO);
  auto torn = catalog::catalog_append(dir_, 3000, epoch_records(3000, 18));
  EXPECT_FALSE(torn.has_value());
  fault::disarm_all();

  // The failed publish left no index entry; reopen sweeps any leftovers
  // and the identical append then lands.
  auto catalog = catalog::Catalog::open(dir_);
  ASSERT_TRUE(catalog.has_value());
  EXPECT_EQ((*catalog)->epochs(), (std::vector<std::uint32_t>{1000, 2000}));
  ASSERT_TRUE(catalog::catalog_append(dir_, 3000, epoch_records(3000, 18))
                  .has_value());
  auto reopened = catalog::Catalog::open(dir_);
  ASSERT_TRUE(reopened.has_value());
  EXPECT_EQ((*reopened)->epochs(),
            (std::vector<std::uint32_t>{1000, 2000, 3000}));
}

TEST_F(FaultCatalogCrash, SigkillMidAppendThenRestartRecovers) {
  if (!fault::enabled()) GTEST_SKIP() << "fault injection compiled out";
  // The child dies by SIGKILL at catalog.append_publish: after the epoch
  // file is written, before the index rename — the worst-case torn state.
  fault::disarm_all();
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    fault::arm("catalog.append_publish", fault::kCrash);
    (void)catalog::catalog_append(dir_, 4000, epoch_records(4000, 19));
    ::_exit(42);  // the crash point did not fire
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status));
  ASSERT_EQ(WTERMSIG(status), SIGKILL);

  // "Restart": a fresh open sees the pre-kill epoch list and sweeps the
  // orphan epoch file the killed appender left behind.
  auto catalog = catalog::Catalog::open(dir_);
  ASSERT_TRUE(catalog.has_value()) << catalog.error().to_string();
  EXPECT_EQ((*catalog)->epochs(), (std::vector<std::uint32_t>{1000, 2000}));
  for (const std::string& name : dir_names()) {
    EXPECT_EQ(name.find("epoch-4000"), std::string::npos)
        << "orphan " << name << " survived the sweep";
    EXPECT_EQ(name.find(".tmp"), std::string::npos)
        << "tmp file " << name << " survived the sweep";
  }

  // The interrupted append, retried, completes as if nothing happened.
  ASSERT_TRUE(catalog::catalog_append(dir_, 4000, epoch_records(4000, 19))
                  .has_value());
  auto reopened = catalog::Catalog::open(dir_);
  ASSERT_TRUE(reopened.has_value());
  EXPECT_EQ((*reopened)->epochs(),
            (std::vector<std::uint32_t>{1000, 2000, 4000}));
  ASSERT_TRUE((*reopened)->epoch_at(4000).has_value());
}

}  // namespace
}  // namespace sublet
