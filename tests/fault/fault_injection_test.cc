// Fault-injected end-to-end checks (label `fault`, run under the sanitizer
// presets): snapshot load/store failures and server-side socket faults,
// all driven through the util/faultinject harness.
#include <unistd.h>

#include <gtest/gtest.h>

#include <cerrno>
#include <memory>
#include <string>
#include <vector>

#include "serve/client.h"
#include "serve/engine_state.h"
#include "serve/server.h"
#include "snapshot/snapshot.h"
#include "snapshot/writer.h"
#include "util/faultinject.h"

namespace sublet {
namespace {

using leasing::InferenceGroup;
using leasing::LeaseInference;

std::vector<LeaseInference> sample(const std::string& tag) {
  std::vector<LeaseInference> out;
  for (std::uint32_t i = 0; i < 8; ++i) {
    LeaseInference r;
    r.prefix = *Prefix::make(Ipv4Addr((10u << 24) | (i << 8)), 24);
    r.root_prefix = *Prefix::parse("10.0.0.0/8");
    r.rir = whois::Rir::kRipe;
    r.group = InferenceGroup::kLeasedWithRoot;
    r.holder_org = "ORG-" + std::to_string(i);
    r.holder_asns = {Asn(64512 + i)};
    r.netname = "NET-" + tag + "-" + std::to_string(i);
    out.push_back(std::move(r));
  }
  return out;
}

class FaultE2E : public testing::Test {
 protected:
  void SetUp() override {
    if (!fault::enabled()) GTEST_SKIP() << "fault injection compiled out";
    fault::disarm_all();
    path_ = testing::TempDir() + "/sublet_fault_" +
            std::to_string(::getpid()) + "_" +
            testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".snap";
    snapshot::write_snapshot_file(path_, sample("SEED"));
  }
  void TearDown() override {
    fault::disarm_all();
    ::unlink(path_.c_str());
    ::unlink((path_ + ".tmp").c_str());
  }

  std::string path_;
};

// --- snapshot load failures ---

TEST_F(FaultE2E, ReadFaultSurfacesTypedErrorThenRecovers) {
  {
    fault::ScopedFault fault("snapshot.read", EIO, /*skip=*/0, /*times=*/1);
    auto snap =
        snapshot::Snapshot::open(path_, snapshot::Snapshot::Mode::kRead);
    ASSERT_FALSE(snap);
    EXPECT_EQ(snap.error().code, EIO);
    EXPECT_EQ(fault.trips(), 1u);
  }
  auto snap =
      snapshot::Snapshot::open(path_, snapshot::Snapshot::Mode::kRead);
  ASSERT_TRUE(snap) << snap.error().to_string();
  EXPECT_EQ(snap->record_count(), 8u);
}

TEST_F(FaultE2E, MmapFaultSurfacesTypedErrorThenRecovers) {
  {
    fault::ScopedFault fault("snapshot.mmap", ENOMEM);
    auto snap =
        snapshot::Snapshot::open(path_, snapshot::Snapshot::Mode::kMap);
    ASSERT_FALSE(snap);
    EXPECT_EQ(snap.error().code, ENOMEM);
  }
  auto snap = snapshot::Snapshot::open(path_, snapshot::Snapshot::Mode::kMap);
  ASSERT_TRUE(snap) << snap.error().to_string();
}

// --- crash-safe snapshot writes: a failure at any step of the tmp ->
// fsync -> rename publish leaves the previous file intact and loadable ---

TEST_F(FaultE2E, FailedWritePreservesTheExistingSnapshot) {
  for (const char* site : {"snapshot.write", "snapshot.fsync",
                           "snapshot.rename"}) {
    fault::ScopedFault fault(site, ENOSPC, /*skip=*/0, /*times=*/1);
    EXPECT_THROW(snapshot::write_snapshot_file(path_, sample("CLOBBER")),
                 std::runtime_error)
        << site;
    EXPECT_EQ(fault.trips(), 1u) << site;
    // The tmp file never survives a failed publish.
    EXPECT_NE(::access((path_ + ".tmp").c_str(), F_OK), 0) << site;
    // The old snapshot still loads and still carries the SEED records.
    auto snap =
        snapshot::Snapshot::open(path_, snapshot::Snapshot::Mode::kRead);
    ASSERT_TRUE(snap) << site << ": " << snap.error().to_string();
    EXPECT_EQ(snap->record_count(), 8u) << site;
    EXPECT_EQ(snap->materialize(0).netname, "NET-SEED-0") << site;
  }
}

// --- reload under injected load failure keeps the old engine ---

TEST_F(FaultE2E, InjectedReloadFailureKeepsServing) {
  auto state = serve::EngineState::load(path_);
  ASSERT_TRUE(state) << state.error().to_string();
  serve::QueryServer server(*state, serve::QueryServer::Options{});
  {
    fault::ScopedFault fault("snapshot.mmap", EIO);
    std::string response = server.handle_request("RELOAD " + path_);
    EXPECT_NE(response.find("reload failed"), std::string::npos);
  }
  EXPECT_EQ(server.stats().generation, 1u);
  EXPECT_EQ(server.stats().reload_failures, 1u);
  std::string still = server.handle_request("EXACT 10.0.3.0/24");
  EXPECT_NE(still.find("NET-SEED-3"), std::string::npos);
  // With the fault gone the same RELOAD goes through.
  std::string ok = server.handle_request("RELOAD " + path_);
  EXPECT_NE(ok.find("\"ok\":true"), std::string::npos);
  EXPECT_EQ(server.stats().generation, 2u);
}

// --- server socket faults: a poisoned connection dies, the server and the
// next connection do not ---

TEST_F(FaultE2E, ReadFaultKillsOneConnectionNotTheServer) {
  auto state = serve::EngineState::load(path_);
  ASSERT_TRUE(state) << state.error().to_string();
  serve::QueryServer server(
      *state, serve::QueryServer::Options{.port = 0, .threads = 2});
  auto port = server.start();
  ASSERT_TRUE(port);
  {
    fault::ScopedFault fault("serve.read", ECONNRESET, /*skip=*/0,
                             /*times=*/1);
    auto doomed = serve::QueryClient::connect("127.0.0.1", *port);
    ASSERT_TRUE(doomed);
    auto response = doomed->request("EXACT 10.0.0.0/24");
    EXPECT_FALSE(response);  // handler hit the fault and closed the socket
  }
  auto healthy = serve::QueryClient::connect("127.0.0.1", *port);
  ASSERT_TRUE(healthy);
  auto response = healthy->request("EXACT 10.0.0.0/24");
  ASSERT_TRUE(response) << response.error().to_string();
  EXPECT_NE(response->find("\"found\":true"), std::string::npos);
  server.stop();
}

TEST_F(FaultE2E, WriteFaultKillsOneConnectionNotTheServer) {
  auto state = serve::EngineState::load(path_);
  ASSERT_TRUE(state) << state.error().to_string();
  serve::QueryServer server(
      *state, serve::QueryServer::Options{.port = 0, .threads = 2});
  auto port = server.start();
  ASSERT_TRUE(port);
  {
    fault::ScopedFault fault("serve.write", EPIPE, /*skip=*/0, /*times=*/1);
    auto doomed = serve::QueryClient::connect("127.0.0.1", *port);
    ASSERT_TRUE(doomed);
    auto response = doomed->request("EXACT 10.0.0.0/24");
    EXPECT_FALSE(response);
  }
  auto healthy = serve::QueryClient::connect("127.0.0.1", *port);
  ASSERT_TRUE(healthy);
  auto response = healthy->request("EXACT 10.0.0.0/24");
  ASSERT_TRUE(response) << response.error().to_string();
  server.stop();
}

}  // namespace
}  // namespace sublet
