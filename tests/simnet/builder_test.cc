#include "simnet/builder.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

namespace sublet::sim {
namespace {

WorldConfig tiny_config(std::uint64_t seed = 7) {
  WorldConfig config;
  config.seed = seed;
  config.scale = 0.02;
  return config;
}

TEST(ConfigValidate, RejectsOutOfRangeKnobs) {
  WorldConfig config = tiny_config();
  config.scale = 0.0;
  EXPECT_THROW(build_world(config), std::invalid_argument);

  config = tiny_config();
  config.p_lease_inactive = 1.5;
  EXPECT_THROW(build_world(config), std::invalid_argument);

  config = tiny_config();
  config.tier1_count = 1;
  EXPECT_THROW(build_world(config), std::invalid_argument);

  config = tiny_config();
  config.collectors = 0;
  EXPECT_THROW(build_world(config), std::invalid_argument);

  config = tiny_config();
  config.rirs[0].top_holder_share = -0.1;
  EXPECT_THROW(build_world(config), std::invalid_argument);

  EXPECT_NO_THROW(tiny_config().validate());
}

TEST(Builder, DeterministicForSeed) {
  World a = build_world(tiny_config());
  World b = build_world(tiny_config());
  ASSERT_EQ(a.leaves.size(), b.leaves.size());
  ASSERT_EQ(a.ases.size(), b.ases.size());
  for (std::size_t i = 0; i < a.leaves.size(); ++i) {
    EXPECT_EQ(a.leaves[i].prefix, b.leaves[i].prefix);
    EXPECT_EQ(a.leaves[i].truth, b.leaves[i].truth);
    EXPECT_EQ(a.leaves[i].origin, b.leaves[i].origin);
  }
}

TEST(Builder, DifferentSeedsDiffer) {
  World a = build_world(tiny_config(1));
  World b = build_world(tiny_config(2));
  bool any_difference = a.leaves.size() != b.leaves.size();
  for (std::size_t i = 0; !any_difference && i < a.leaves.size(); ++i) {
    any_difference = a.leaves[i].truth != b.leaves[i].truth ||
                     a.leaves[i].origin != b.leaves[i].origin;
  }
  EXPECT_TRUE(any_difference);
}

TEST(Builder, LeafCountsNearTarget) {
  WorldConfig config = tiny_config();
  World world = build_world(config);
  std::map<whois::Rir, std::size_t> per_rir;
  for (const SimLeaf& leaf : world.leaves) ++per_rir[leaf.rir];
  for (whois::Rir rir : whois::kAllRirs) {
    int target = config.scaled(config.profile(rir).leaves);
    // Eval negatives and broker-ISP blocks add extra leaves on top.
    EXPECT_GE(per_rir[rir] + 5, static_cast<std::size_t>(target))
        << rir_name(rir);
  }
}

TEST(Builder, TruthMixMatchesProfileShape) {
  WorldConfig config;
  config.seed = 11;
  config.scale = 0.1;  // enough leaves for stable fractions
  World world = build_world(config);

  std::size_t unused = 0, aggregated = 0, leased = 0, total = 0;
  for (const SimLeaf& leaf : world.leaves) {
    if (leaf.rir != whois::Rir::kRipe || leaf.eval_negative) continue;
    ++total;
    if (leaf.truth == TruthCategory::kUnused) ++unused;
    if (leaf.truth == TruthCategory::kAggregatedCustomer) ++aggregated;
    if (leaf.truth == TruthCategory::kLeased) ++leased;
  }
  ASSERT_GT(total, 1000u);
  // RIPE Table 1 shape: aggregated ~57%, unused ~18%, leased ~8%.
  EXPECT_NEAR(static_cast<double>(aggregated) / total, 0.574, 0.05);
  EXPECT_NEAR(static_cast<double>(unused) / total, 0.179, 0.05);
  EXPECT_NEAR(static_cast<double>(leased) / total, 0.0805, 0.03);
}

TEST(Builder, DarkLitConsistency) {
  World world = build_world(tiny_config());
  for (const SimLeaf& leaf : world.leaves) {
    const SimRoot& root = world.roots[leaf.root_index];
    ASSERT_TRUE(root.prefix.covers(leaf.prefix))
        << leaf.prefix.to_string() << " not under "
        << root.prefix.to_string();
    switch (leaf.truth) {
      case TruthCategory::kUnused:
        EXPECT_FALSE(leaf.origin);
        EXPECT_FALSE(root.originated);
        break;
      case TruthCategory::kAggregatedCustomer:
        EXPECT_FALSE(leaf.origin);
        EXPECT_TRUE(root.originated);
        break;
      case TruthCategory::kIspCustomer:
        EXPECT_TRUE(leaf.origin);
        break;
      case TruthCategory::kDelegatedCustomer:
        EXPECT_TRUE(leaf.origin);
        break;
      case TruthCategory::kLeased:
        if (leaf.lease_active) EXPECT_TRUE(leaf.origin);
        break;
    }
  }
}

TEST(Builder, LeavesDoNotOverlapWithinRoot) {
  World world = build_world(tiny_config());
  std::map<std::size_t, std::vector<Prefix>> by_root;
  for (const SimLeaf& leaf : world.leaves) {
    by_root[leaf.root_index].push_back(leaf.prefix);
  }
  for (auto& [root, prefixes] : by_root) {
    std::sort(prefixes.begin(), prefixes.end());
    for (std::size_t i = 1; i < prefixes.size(); ++i) {
      EXPECT_GT(prefixes[i].first().value(),
                prefixes[i - 1].last().value())
          << prefixes[i].to_string() << " overlaps "
          << prefixes[i - 1].to_string();
    }
  }
}

TEST(Builder, IspCustomerOriginsAreRelatedToHolder) {
  World world = build_world(tiny_config());
  for (const SimLeaf& leaf : world.leaves) {
    if (leaf.truth != TruthCategory::kIspCustomer || !leaf.origin) continue;
    const SimRoot& root = world.roots[leaf.root_index];
    bool related = *leaf.origin == root.holder_asn ||
                   world.true_rels.has_edge(*leaf.origin, root.holder_asn);
    if (!related) {
      // Affiliate ASes relate only through as2org (ablation A2 bait).
      const SimAs* origin_as = world.find_as(*leaf.origin);
      ASSERT_NE(origin_as, nullptr);
      ASSERT_TRUE(origin_as->as2org_override.has_value())
          << leaf.prefix.to_string();
      EXPECT_EQ(*origin_as->as2org_override, root.holder_org);
    }
  }
}

TEST(Builder, LeasedOriginsAreUnrelatedToHolder) {
  World world = build_world(tiny_config());
  for (const SimLeaf& leaf : world.leaves) {
    if (leaf.truth != TruthCategory::kLeased || !leaf.origin) continue;
    const SimRoot& root = world.roots[leaf.root_index];
    EXPECT_NE(*leaf.origin, root.holder_asn);
    EXPECT_FALSE(world.true_rels.has_edge(*leaf.origin, root.holder_asn))
        << leaf.prefix.to_string();
  }
}

TEST(Builder, AbusiveAsesExist) {
  World world = build_world(tiny_config());
  std::size_t drop = 0, hijacker = 0;
  for (const SimAs& as : world.ases) {
    if (as.drop_listed) ++drop;
    if (as.hijacker) ++hijacker;
  }
  EXPECT_GT(drop, 0u);
  EXPECT_GE(hijacker, drop) << "hijacker pool includes DROP ASes";
}

TEST(Builder, EvalNegativesPresentWithSubsidiaries) {
  World world = build_world(tiny_config());
  std::size_t negatives = 0, subsidiary_originated = 0;
  std::set<std::string> negative_orgs;
  for (const SimLeaf& leaf : world.leaves) {
    if (!leaf.eval_negative) continue;
    ++negatives;
    negative_orgs.insert(leaf.org_id);
    if (leaf.org_id.find("SUB") != std::string::npos) {
      ++subsidiary_originated;
    }
  }
  EXPECT_GT(negatives, 0u);
  EXPECT_GT(world.eval_isp_orgs.size(), 5u)
      << "subsidiary orgs are on the negative-label org list";
  EXPECT_GT(subsidiary_originated, 0u);
}

TEST(Builder, BrokerOrgsOnListsWithNameVariants) {
  World world = build_world(tiny_config());
  bool ipxo_in_ripe = false, variant_spelling = false;
  for (const SimOrg& org : world.orgs) {
    if (org.is_broker && org.rir == whois::Rir::kRipe && org.on_broker_list) {
      if (org.name == "IPXO LLC") ipxo_in_ripe = true;
      if (!org.listed_name.empty() && org.listed_name != org.name) {
        variant_spelling = true;
      }
    }
  }
  EXPECT_TRUE(ipxo_in_ripe);
  EXPECT_TRUE(variant_spelling);
}

TEST(Builder, AggregatedAnnouncementsCoverTheirRoots) {
  WorldConfig config;
  config.seed = 3;
  config.scale = 0.05;
  World world = build_world(config);
  ASSERT_FALSE(world.aggregates.empty());
  for (const BackgroundPrefix& agg : world.aggregates) {
    bool covers_some_root = false;
    for (const SimRoot& root : world.roots) {
      if (agg.prefix.covers(root.prefix) &&
          root.aggregated_announcement &&
          root.holder_asn == agg.origin) {
        covers_some_root = true;
        break;
      }
    }
    EXPECT_TRUE(covers_some_root) << agg.prefix.to_string();
  }
}

TEST(Builder, ProviderChainsTerminateAtTier1) {
  World world = build_world(tiny_config());
  for (const SimAs& as : world.ases) {
    Asn cursor = as.asn;
    int hops = 0;
    while (hops < 20) {
      const SimAs* current = world.find_as(cursor);
      ASSERT_NE(current, nullptr);
      if (!current->provider) {
        EXPECT_EQ(current->tier, AsTier::kTier1);
        break;
      }
      cursor = *current->provider;
      ++hops;
    }
    EXPECT_LT(hops, 20) << "provider loop for " << as.asn.to_string();
  }
}

}  // namespace
}  // namespace sublet::sim
