#include "simnet/epoch.h"

#include <gtest/gtest.h>

#include "simnet/builder.h"

namespace sublet::sim {
namespace {

World tiny_world() {
  WorldConfig config;
  config.seed = 5;
  config.scale = 0.05;
  return build_world(config);
}

TEST(Epoch, Deterministic) {
  World base = tiny_world();
  World a = advance_epoch(base, {.epoch = 1});
  World b = advance_epoch(base, {.epoch = 1});
  ASSERT_EQ(a.leaves.size(), b.leaves.size());
  for (std::size_t i = 0; i < a.leaves.size(); ++i) {
    EXPECT_EQ(a.leaves[i].origin, b.leaves[i].origin);
    EXPECT_EQ(a.leaves[i].truth, b.leaves[i].truth);
  }
}

TEST(Epoch, DifferentEpochsDiffer) {
  World base = tiny_world();
  World a = advance_epoch(base, {.epoch = 1});
  World b = advance_epoch(base, {.epoch = 2});
  bool any = false;
  for (std::size_t i = 0; i < a.leaves.size() && !any; ++i) {
    any = a.leaves[i].origin != b.leaves[i].origin;
  }
  EXPECT_TRUE(any);
}

TEST(Epoch, TopologyAndForestUntouched) {
  World base = tiny_world();
  World next = advance_epoch(base);
  EXPECT_EQ(next.ases.size(), base.ases.size());
  EXPECT_EQ(next.orgs.size(), base.orgs.size());
  EXPECT_EQ(next.roots.size(), base.roots.size());
  ASSERT_EQ(next.leaves.size(), base.leaves.size());
  for (std::size_t i = 0; i < base.leaves.size(); ++i) {
    EXPECT_EQ(next.leaves[i].prefix, base.leaves[i].prefix);
  }
}

TEST(Epoch, ProducesAllTransitionKinds) {
  World base = tiny_world();
  World next = advance_epoch(base);
  std::size_t ended = 0, changed = 0, started = 0;
  for (std::size_t i = 0; i < base.leaves.size(); ++i) {
    const SimLeaf& was = base.leaves[i];
    const SimLeaf& now = next.leaves[i];
    bool was_active = was.truth == TruthCategory::kLeased &&
                      was.lease_active && was.origin.has_value();
    bool now_active = now.truth == TruthCategory::kLeased &&
                      now.lease_active && now.origin.has_value();
    if (was_active && !now_active) ++ended;
    if (was_active && now_active && was.origin != now.origin) ++changed;
    if (!was_active && now_active) ++started;
  }
  EXPECT_GT(ended, 0u);
  EXPECT_GT(changed, 0u);
  EXPECT_GT(started, 0u);
}

TEST(Epoch, EvalNegativesUntouched) {
  World base = tiny_world();
  World next = advance_epoch(base);
  for (std::size_t i = 0; i < base.leaves.size(); ++i) {
    if (!base.leaves[i].eval_negative) continue;
    EXPECT_EQ(next.leaves[i].origin, base.leaves[i].origin);
    EXPECT_EQ(next.leaves[i].truth, base.leaves[i].truth);
  }
}

TEST(Epoch, NewLeasesComeFromUnusedSpace) {
  World base = tiny_world();
  World next = advance_epoch(base);
  for (std::size_t i = 0; i < base.leaves.size(); ++i) {
    if (base.leaves[i].truth == TruthCategory::kUnused &&
        next.leaves[i].truth == TruthCategory::kLeased) {
      EXPECT_TRUE(next.leaves[i].origin.has_value());
      EXPECT_TRUE(next.leaves[i].lease_active);
    }
  }
}

}  // namespace
}  // namespace sublet::sim
