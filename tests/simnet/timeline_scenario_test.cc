#include "simnet/timeline_scenario.h"

#include <gtest/gtest.h>

namespace sublet::sim {
namespace {

TEST(TimelineScenario, BuildsMonthlySnapshots) {
  auto scenario = build_timeline_scenario();
  EXPECT_EQ(scenario.archive.snapshot_count(), 25u);
  EXPECT_EQ(scenario.bgp_history.size(), 25u);
  EXPECT_EQ(scenario.prefix.to_string(), "213.210.33.0/24");
}

TEST(TimelineScenario, QuarantineMonthsHaveAs0RoaAndNoBgp) {
  auto scenario = build_timeline_scenario();
  std::size_t quarantine_months = 0;
  for (const auto& [ts, origins] : scenario.bgp_history) {
    const rpki::VrpSet* vrps = scenario.archive.at(ts);
    ASSERT_NE(vrps, nullptr);
    auto roas = vrps->exact(scenario.prefix);
    ASSERT_EQ(roas.size(), 1u);
    if (roas[0].asn.is_as0()) {
      EXPECT_TRUE(origins.empty())
          << "no BGP origination during AS0 quarantine";
      ++quarantine_months;
    } else {
      ASSERT_EQ(origins.size(), 1u);
      EXPECT_EQ(origins[0], roas[0].asn)
          << "lessee's ROA matches its BGP origin";
    }
  }
  EXPECT_GT(quarantine_months, 2u);
}

TEST(TimelineScenario, SegmentationRecoversScriptedPeriods) {
  auto scenario = build_timeline_scenario();
  auto events = leasing::LeaseTimeline::collect(
      scenario.prefix, scenario.archive, scenario.bgp_history,
      scenario.start, scenario.end);
  auto periods = leasing::LeaseTimeline::segment(events);
  ASSERT_EQ(periods.size(), scenario.truth.size());
  for (std::size_t i = 0; i < periods.size(); ++i) {
    EXPECT_EQ(periods[i].asn, scenario.truth[i].asn) << "period " << i;
    EXPECT_EQ(periods[i].start, scenario.truth[i].start);
    EXPECT_EQ(periods[i].end, scenario.truth[i].end);
  }
}

TEST(TimelineScenario, LesseesAppearInScriptOrder) {
  TimelineOptions options;
  options.lessees = {834, 8100, 61317};
  options.months = 12;
  auto scenario = build_timeline_scenario(options);
  auto events = leasing::LeaseTimeline::collect(
      scenario.prefix, scenario.archive, scenario.bgp_history,
      scenario.start, scenario.end);
  auto periods = leasing::LeaseTimeline::segment(events);
  std::vector<std::uint32_t> non_as0;
  for (const auto& period : periods) {
    if (!period.is_as0_gap()) non_as0.push_back(period.asn.value());
  }
  ASSERT_GE(non_as0.size(), 3u);
  EXPECT_EQ(non_as0[0], 834u);
  EXPECT_EQ(non_as0[1], 8100u);
  EXPECT_EQ(non_as0[2], 61317u);
}

TEST(TimelineScenario, RenderableAsFigure) {
  auto scenario = build_timeline_scenario();
  auto events = leasing::LeaseTimeline::collect(
      scenario.prefix, scenario.archive, scenario.bgp_history,
      scenario.start, scenario.end);
  std::string figure =
      leasing::LeaseTimeline::render(events, scenario.start, scenario.end);
  EXPECT_NE(figure.find("834"), std::string::npos);
  EXPECT_NE(figure.find("61317"), std::string::npos);
}

}  // namespace
}  // namespace sublet::sim
