#include "simnet/emit.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>

#include "leasing/dataset.h"
#include "simnet/builder.h"
#include "geo/geodb.h"
#include "simnet/ground_truth.h"

namespace sublet::sim {
namespace {

namespace fs = std::filesystem;

struct EmittedWorld {
  std::string dir;
  World world;

  explicit EmittedWorld(double scale = 0.02, std::uint64_t seed = 7) {
    // ctest runs each discovered test in its own process; key the scratch
    // dir by pid too, or concurrent emit/remove_all calls race.
    dir = testing::TempDir() + "/sublet_emit_" + std::to_string(seed) + "." +
          std::to_string(::getpid());
    fs::remove_all(dir);
    WorldConfig config;
    config.seed = seed;
    config.scale = scale;
    world = build_world(config);
    emit_world(world, dir);
  }
  ~EmittedWorld() {
    std::error_code ec;
    fs::remove_all(dir, ec);  // best effort; never throw from a destructor
  }
};

TEST(Emit, ProducesBundleLayout) {
  EmittedWorld e;
  for (const char* path :
       {"/whois/ripe.db", "/whois/arin.db", "/whois/apnic.db",
        "/whois/afrinic.db", "/whois/lacnic.db", "/bgp/rib.0.t0.mrt",
        "/bgp/rib.0.t1.mrt",
        "/asgraph/as-rel.txt", "/asgraph/as2org.txt",
        "/lists/asn-drop.json", "/lists/serial-hijackers.txt",
        "/lists/brokers-ripe.txt", "/lists/eval-isp-orgs.txt",
        "/truth/leases.csv"}) {
    EXPECT_TRUE(fs::exists(e.dir + path)) << path;
  }
  // Two dated RPKI snapshots.
  std::size_t rpki_files = 0;
  for (const auto& entry : fs::directory_iterator(e.dir + "/rpki")) {
    (void)entry;
    ++rpki_files;
  }
  EXPECT_EQ(rpki_files, 2u);
}

TEST(Emit, BundleLoadsThroughDatasetLoader) {
  EmittedWorld e;
  auto bundle = leasing::load_dataset(e.dir);
  EXPECT_EQ(bundle.whois.size(), 5u);
  EXPECT_GT(bundle.rib.prefix_count(), 100u);
  EXPECT_GT(bundle.as_rel.edge_count(), 10u);
  EXPECT_GT(bundle.as2org.mapping_count(), 10u);
  EXPECT_GT(bundle.drop.size(), 0u);
  EXPECT_GT(bundle.hijackers.size(), 0u);
  EXPECT_TRUE(bundle.brokers.contains(whois::Rir::kRipe));
  EXPECT_TRUE(bundle.eval_isp_orgs.contains(whois::Rir::kRipe));
  ASSERT_NE(bundle.current_vrps(), nullptr);
  EXPECT_GT(bundle.current_vrps()->size(), 0u);
}

TEST(Emit, WhoisRoundTripPreservesBlocks) {
  EmittedWorld e;
  auto bundle = leasing::load_dataset(e.dir);
  // Every leaf the world generated must parse back out of its RIR's db.
  for (whois::Rir rir : whois::kAllRirs) {
    std::size_t world_leaves = 0;
    for (const SimLeaf& leaf : e.world.leaves) {
      if (leaf.rir == rir) ++world_leaves;
    }
    std::size_t world_roots = 0;
    for (const SimRoot& root : e.world.roots) {
      if (root.rir == rir) ++world_roots;
    }
    const whois::WhoisDb* db = bundle.db_for(rir);
    ASSERT_NE(db, nullptr) << rir_name(rir);
    EXPECT_GE(db->block_count(), world_leaves + world_roots)
        << rir_name(rir);
  }
}

TEST(Emit, BgpOriginsMatchWorldTruth) {
  EmittedWorld e;
  auto bundle = leasing::load_dataset(e.dir);
  std::size_t checked = 0;
  for (const SimLeaf& leaf : e.world.leaves) {
    if (!leaf.origin) continue;
    const bgp::RouteInfo* info = bundle.rib.exact(leaf.prefix);
    // Collector dropout can hide a prefix from one collector but the union
    // of three essentially always sees it.
    if (!info) continue;
    EXPECT_TRUE(info->originated_by(*leaf.origin))
        << leaf.prefix.to_string();
    ++checked;
  }
  EXPECT_GT(checked, 50u);
}

TEST(Emit, UnusedLeavesAbsentFromRib) {
  EmittedWorld e;
  auto bundle = leasing::load_dataset(e.dir);
  for (const SimLeaf& leaf : e.world.leaves) {
    if (leaf.truth == TruthCategory::kUnused) {
      EXPECT_EQ(bundle.rib.exact(leaf.prefix), nullptr)
          << leaf.prefix.to_string();
    }
  }
}

TEST(Emit, DropListMatchesWorldFlags) {
  EmittedWorld e;
  auto bundle = leasing::load_dataset(e.dir);
  for (const SimAs& as : e.world.ases) {
    EXPECT_EQ(bundle.drop.contains(as.asn), as.drop_listed);
    EXPECT_EQ(bundle.hijackers.contains(as.asn), as.hijacker);
  }
}

TEST(Emit, GroundTruthRoundTrip) {
  EmittedWorld e;
  auto truth = GroundTruth::load(e.dir);
  EXPECT_EQ(truth.rows().size(), e.world.leaves.size());
  for (const SimLeaf& leaf : e.world.leaves) {
    const TruthRow* row = truth.find(leaf.prefix);
    ASSERT_NE(row, nullptr) << leaf.prefix.to_string();
    EXPECT_EQ(row->is_leased, leaf.truth == TruthCategory::kLeased);
    EXPECT_EQ(row->active, leaf.lease_active);
    EXPECT_EQ(row->origin, leaf.origin);
    EXPECT_EQ(row->eval_negative, leaf.eval_negative);
    EXPECT_EQ(row->late, leaf.late_origination);
  }
  EXPECT_GT(truth.leased_count(), 0u);
  EXPECT_GE(truth.leased_count(), truth.active_leased_count());
}

TEST(Emit, TransfersMatchWorldRoots) {
  EmittedWorld e;
  auto bundle = leasing::load_dataset(e.dir);
  std::size_t world_transferred = 0;
  for (const SimRoot& root : e.world.roots) {
    if (!root.transferred) continue;
    ++world_transferred;
    EXPECT_TRUE(bundle.transfers.covers(root.prefix))
        << root.prefix.to_string();
    auto hits = bundle.transfers.covering(root.prefix);
    ASSERT_FALSE(hits.empty());
    EXPECT_EQ(hits[0]->to_org, e.world.orgs[root.holder_org].id);
    EXPECT_EQ(hits[0]->date, root.transfer_date);
  }
  EXPECT_EQ(bundle.transfers.size(), world_transferred);
  for (const SimRoot& root : e.world.roots) {
    if (!root.transferred) {
      EXPECT_FALSE(bundle.transfers.covers(root.prefix))
          << root.prefix.to_string();
    }
  }
}

TEST(Emit, GeoSnapshotsCoverLeaves) {
  EmittedWorld e;
  auto bundle = leasing::load_dataset(e.dir);
  ASSERT_EQ(bundle.geodbs.size(),
            static_cast<std::size_t>(e.world.config.geo_providers));
  std::size_t lease_disagreements = 0, leased_checked = 0;
  for (const SimLeaf& leaf : e.world.leaves) {
    auto consistency = geo::check_consistency(bundle.geodbs, leaf.prefix);
    EXPECT_EQ(consistency.countries.size(), bundle.geodbs.size())
        << "every provider places every leaf: " << leaf.prefix.to_string();
    if (leaf.truth == TruthCategory::kLeased && leaf.origin) {
      ++leased_checked;
      if (!consistency.consistent()) ++lease_disagreements;
    }
  }
  ASSERT_GT(leased_checked, 10u);
  EXPECT_GT(lease_disagreements, 0u)
      << "leased prefixes must show cross-database disagreement";
}

TEST(Emit, DeterministicBytes) {
  EmittedWorld a(0.02, 99);
  EmittedWorld b(0.02, 99);
  for (const char* file : {"/whois/ripe.db", "/asgraph/as-rel.txt",
                           "/truth/leases.csv", "/bgp/rib.0.t0.mrt"}) {
    std::ifstream fa(a.dir + file, std::ios::binary);
    std::ifstream fb(b.dir + file, std::ios::binary);
    std::string ca((std::istreambuf_iterator<char>(fa)),
                   std::istreambuf_iterator<char>());
    std::string cb((std::istreambuf_iterator<char>(fb)),
                   std::istreambuf_iterator<char>());
    EXPECT_EQ(ca, cb) << file;
  }
}

}  // namespace
}  // namespace sublet::sim
