#include "rpki/roa.h"

#include <gtest/gtest.h>

#include <sstream>

namespace sublet::rpki {
namespace {

Prefix P(const char* s) { return *Prefix::parse(s); }

TEST(Roa, EffectiveMaxLength) {
  EXPECT_EQ((Roa{P("10.0.0.0/16"), 24, Asn(1)}).effective_max_length(), 24);
  EXPECT_EQ((Roa{P("10.0.0.0/16"), 0, Asn(1)}).effective_max_length(), 16)
      << "absent maxLength defaults to the prefix length (RFC 6482)";
  EXPECT_EQ((Roa{P("10.0.0.0/16"), 8, Asn(1)}).effective_max_length(), 16);
}

TEST(VrpValidate, NotFoundWithoutCoveringRoa) {
  VrpSet set;
  set.add({P("10.0.0.0/16"), 24, Asn(1)});
  EXPECT_EQ(set.validate(P("192.0.2.0/24"), Asn(1)), Validity::kNotFound);
}

TEST(VrpValidate, ValidExactMatch) {
  VrpSet set;
  set.add({P("10.0.0.0/16"), 16, Asn(64500)});
  EXPECT_EQ(set.validate(P("10.0.0.0/16"), Asn(64500)), Validity::kValid);
}

TEST(VrpValidate, MoreSpecificWithinMaxLength) {
  VrpSet set;
  set.add({P("10.0.0.0/16"), 24, Asn(64500)});
  EXPECT_EQ(set.validate(P("10.0.3.0/24"), Asn(64500)), Validity::kValid);
  EXPECT_EQ(set.validate(P("10.0.3.0/25"), Asn(64500)), Validity::kInvalid)
      << "longer than maxLength";
}

TEST(VrpValidate, WrongOriginIsInvalid) {
  VrpSet set;
  set.add({P("10.0.0.0/16"), 24, Asn(64500)});
  EXPECT_EQ(set.validate(P("10.0.0.0/16"), Asn(64501)), Validity::kInvalid);
}

TEST(VrpValidate, SecondRoaCanValidate) {
  VrpSet set;
  set.add({P("10.0.0.0/16"), 16, Asn(64500)});
  set.add({P("10.0.0.0/16"), 16, Asn(64501)});
  EXPECT_EQ(set.validate(P("10.0.0.0/16"), Asn(64501)), Validity::kValid);
  EXPECT_EQ(set.validate(P("10.0.0.0/16"), Asn(64502)), Validity::kInvalid);
}

TEST(VrpValidate, As0RoaDisallowsEverything) {
  // §6.5: facilitators publish AS0 ROAs between leases so any announcement
  // of the prefix is RPKI-invalid.
  VrpSet set;
  set.add({P("213.210.33.0/24"), 24, Asn(0)});
  EXPECT_EQ(set.validate(P("213.210.33.0/24"), Asn(15169)),
            Validity::kInvalid);
  EXPECT_EQ(set.validate(P("213.210.33.0/24"), Asn(0)), Validity::kInvalid)
      << "AS0 itself can never be a valid origin";
}

TEST(VrpSet, CoveringCollectsAllLevels) {
  VrpSet set;
  set.add({P("10.0.0.0/8"), 24, Asn(1)});
  set.add({P("10.0.0.0/16"), 24, Asn(2)});
  set.add({P("10.1.0.0/16"), 24, Asn(3)});
  auto roas = set.covering(P("10.0.3.0/24"));
  ASSERT_EQ(roas.size(), 2u);
  EXPECT_TRUE(set.any_roa_for(P("10.0.3.0/24")));
  EXPECT_FALSE(set.any_roa_for(P("11.0.0.0/8")));
}

TEST(VrpSet, ExactAndDeduplication) {
  VrpSet set;
  set.add({P("10.0.0.0/16"), 24, Asn(1)});
  set.add({P("10.0.0.0/16"), 24, Asn(1)});  // duplicate ignored
  set.add({P("10.0.0.0/16"), 24, Asn(2)});
  EXPECT_EQ(set.size(), 2u);
  EXPECT_EQ(set.exact(P("10.0.0.0/16")).size(), 2u);
  EXPECT_TRUE(set.exact(P("10.0.0.0/17")).empty());
}

TEST(VrpSet, CsvRoundTrip) {
  VrpSet set;
  set.add({P("10.0.0.0/16"), 24, Asn(64500)});
  set.add({P("213.210.33.0/24"), 24, Asn(0)});
  std::ostringstream out;
  set.write_csv(out);
  std::istringstream in(out.str());
  auto loaded = VrpSet::parse_csv(in);
  EXPECT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded.validate(P("10.0.1.0/24"), Asn(64500)), Validity::kValid);
  EXPECT_EQ(loaded.validate(P("213.210.33.0/24"), Asn(1)),
            Validity::kInvalid);
}

TEST(VrpSet, CsvParsesAsnPrefixAndHeader) {
  std::istringstream in(
      "ASN,IP Prefix,Max Length,Trust Anchor\n"
      "AS64500,10.0.0.0/16,24,ripe\n"
      "64501,10.1.0.0/16,16,arin\n"
      "garbage,line,here\n");
  std::vector<Error> diags;
  auto set = VrpSet::parse_csv(in, "t", &diags);
  EXPECT_EQ(set.size(), 2u);
  EXPECT_EQ(diags.size(), 1u);
}

}  // namespace
}  // namespace sublet::rpki
