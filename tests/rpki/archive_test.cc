#include "rpki/archive.h"

#include <gtest/gtest.h>

#include <filesystem>

namespace sublet::rpki {
namespace {

Prefix P(const char* s) { return *Prefix::parse(s); }

VrpSet one_roa(const char* prefix, std::uint32_t asn) {
  VrpSet set;
  set.add({P(prefix), 24, Asn(asn)});
  return set;
}

TEST(RpkiArchive, AtReturnsLatestAtOrBefore) {
  RpkiArchive archive;
  archive.add_snapshot(1000, one_roa("10.0.0.0/16", 1));
  archive.add_snapshot(2000, one_roa("10.0.0.0/16", 2));

  EXPECT_EQ(archive.at(999), nullptr);
  ASSERT_NE(archive.at(1000), nullptr);
  EXPECT_EQ(archive.at(1500)->exact(P("10.0.0.0/16"))[0].asn, Asn(1));
  EXPECT_EQ(archive.at(2000)->exact(P("10.0.0.0/16"))[0].asn, Asn(2));
  EXPECT_EQ(archive.at(99999)->exact(P("10.0.0.0/16"))[0].asn, Asn(2));
}

TEST(RpkiArchive, TimestampsSorted) {
  RpkiArchive archive;
  archive.add_snapshot(300, {});
  archive.add_snapshot(100, {});
  archive.add_snapshot(200, {});
  EXPECT_EQ(archive.timestamps(), (std::vector<std::uint32_t>{100, 200, 300}));
}

TEST(RpkiArchive, CoveringInWindowUnions) {
  RpkiArchive archive;
  archive.add_snapshot(100, one_roa("10.0.0.0/16", 1));
  archive.add_snapshot(200, one_roa("10.0.0.0/16", 2));
  archive.add_snapshot(300, one_roa("10.0.0.0/16", 3));

  auto roas = archive.covering_in_window(P("10.0.1.0/24"), 100, 200);
  ASSERT_EQ(roas.size(), 2u);
  EXPECT_EQ(roas[0].asn, Asn(1));
  EXPECT_EQ(roas[1].asn, Asn(2));
}

TEST(RpkiArchive, RoaHistoryForTimeline) {
  // Figure 3 shape: lease to AS A, AS0 between leases, lease to AS B.
  RpkiArchive archive;
  archive.add_snapshot(100, one_roa("213.210.33.0/24", 834));
  archive.add_snapshot(200, one_roa("213.210.33.0/24", 0));     // AS0 marker
  archive.add_snapshot(300, one_roa("213.210.33.0/24", 61317));

  auto history = archive.roa_history(P("213.210.33.0/24"), 0, 400);
  ASSERT_EQ(history.size(), 3u);
  EXPECT_EQ(history[0].second, std::vector<Asn>{Asn(834)});
  EXPECT_EQ(history[1].second, std::vector<Asn>{Asn(0)});
  EXPECT_EQ(history[2].second, std::vector<Asn>{Asn(61317)});
}

TEST(RpkiArchive, RoaHistoryEmptyWhenNoRoa) {
  RpkiArchive archive;
  archive.add_snapshot(100, one_roa("10.0.0.0/16", 1));
  auto history = archive.roa_history(P("192.0.2.0/24"), 0, 400);
  ASSERT_EQ(history.size(), 1u);
  EXPECT_TRUE(history[0].second.empty());
}

TEST(RpkiArchive, SaveLoadDirectoryRoundTrip) {
  std::string dir = testing::TempDir() + "/sublet_rpki_archive";
  std::filesystem::remove_all(dir);

  RpkiArchive archive;
  archive.add_snapshot(1000, one_roa("10.0.0.0/16", 64500));
  archive.add_snapshot(2000, one_roa("10.0.0.0/16", 0));
  archive.save_directory(dir);

  auto loaded = RpkiArchive::load_directory(dir);
  EXPECT_EQ(loaded.snapshot_count(), 2u);
  ASSERT_NE(loaded.at(1500), nullptr);
  EXPECT_EQ(loaded.at(1500)->exact(P("10.0.0.0/16"))[0].asn, Asn(64500));
  EXPECT_EQ(loaded.at(2500)->exact(P("10.0.0.0/16"))[0].asn, Asn(0));
  std::filesystem::remove_all(dir);
}

TEST(RpkiArchive, LoadMissingDirectoryThrows) {
  EXPECT_THROW(RpkiArchive::load_directory("/nonexistent/rpki"),
               std::runtime_error);
}

}  // namespace
}  // namespace sublet::rpki
