// Property: VrpSet::validate agrees with a brute-force RFC 6811
// implementation over random ROA sets and random route queries.
#include <gtest/gtest.h>

#include <vector>

#include "rpki/roa.h"
#include "util/rng.h"

namespace sublet::rpki {
namespace {

Validity brute_force(const std::vector<Roa>& roas, const Prefix& prefix,
                     Asn origin) {
  bool covered = false;
  for (const Roa& roa : roas) {
    if (!roa.prefix.covers(prefix)) continue;
    covered = true;
    if (roa.asn == origin && !origin.is_as0() &&
        prefix.length() <= roa.effective_max_length()) {
      return Validity::kValid;
    }
  }
  return covered ? Validity::kInvalid : Validity::kNotFound;
}

class ValidateProperty : public testing::TestWithParam<std::uint64_t> {};

TEST_P(ValidateProperty, MatchesBruteForce) {
  Rng rng(GetParam());
  VrpSet set;
  std::vector<Roa> roas;
  // Cluster ROAs into a /12 so covering relations actually occur.
  std::uint32_t base = 0x0A000000;  // 10.0.0.0
  for (int i = 0; i < 200; ++i) {
    int len = static_cast<int>(rng.next_in(12, 24));
    std::uint32_t addr =
        base | (static_cast<std::uint32_t>(rng.next_u64()) & 0x000FFFFF);
    Roa roa{*Prefix::make(Ipv4Addr(addr), len),
            static_cast<int>(rng.next_in(len, 26)),
            Asn(static_cast<std::uint32_t>(rng.next_below(12)))};  // AS0..11
    set.add(roa);
    roas.push_back(roa);
  }
  for (int q = 0; q < 500; ++q) {
    int len = static_cast<int>(rng.next_in(12, 28));
    std::uint32_t addr =
        base | (static_cast<std::uint32_t>(rng.next_u64()) & 0x000FFFFF);
    Prefix query = *Prefix::make(Ipv4Addr(addr), len);
    Asn origin(static_cast<std::uint32_t>(rng.next_below(12)));
    EXPECT_EQ(set.validate(query, origin), brute_force(roas, query, origin))
        << query.to_string() << " origin " << origin.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ValidateProperty,
                         testing::Values(3, 5, 8, 13));

}  // namespace
}  // namespace sublet::rpki
