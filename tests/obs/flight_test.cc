// FlightRecorder unit tests (docs/OBSERVABILITY.md): ring wraparound,
// the slow-log top-K contract, exemplar bucketing, disabled-mode
// inertness, and a writers-vs-readers stress that the tsan preset runs
// to prove the seqlock is race-free.
#include "obs/flight.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

namespace sublet::obs {
namespace {

FlightRecord rec(std::uint64_t total_ns, std::uint8_t verb = 1) {
  FlightRecord r;
  r.total_ns = total_ns;
  r.engine_ns = total_ns;
  r.verb = verb;
  r.fd = 7;
  return r;
}

TEST(FlightRecorder, AssignsMonotonicSequenceNumbers) {
  FlightRecorder recorder({.ring_capacity = 8});
  EXPECT_EQ(recorder.record(rec(10), ""), 1u);
  EXPECT_EQ(recorder.record(rec(20), ""), 2u);
  EXPECT_EQ(recorder.record(rec(30), ""), 3u);
  EXPECT_EQ(recorder.recorded(), 3u);
  auto tail = recorder.tail(16);
  ASSERT_EQ(tail.size(), 3u);
  EXPECT_EQ(tail[0].seq, 1u);  // oldest first
  EXPECT_EQ(tail[2].seq, 3u);
  EXPECT_EQ(tail[2].total_ns, 30u);
}

TEST(FlightRecorder, RingWrapsKeepingTheNewestRecords) {
  FlightRecorder recorder({.ring_capacity = 8});
  for (std::uint64_t i = 1; i <= 20; ++i) {
    recorder.record(rec(i * 100), "");
  }
  EXPECT_EQ(recorder.recorded(), 20u);
  auto tail = recorder.tail(100);
  ASSERT_EQ(tail.size(), 8u);  // capacity bounds the tail
  for (std::size_t i = 0; i < tail.size(); ++i) {
    EXPECT_EQ(tail[i].seq, 13u + i);  // seqs 13..20 survive the wrap
    EXPECT_EQ(tail[i].total_ns, (13u + i) * 100);
  }
  // A smaller ask returns just the newest slice, still oldest first.
  auto last3 = recorder.tail(3);
  ASSERT_EQ(last3.size(), 3u);
  EXPECT_EQ(last3[0].seq, 18u);
  EXPECT_EQ(last3[2].seq, 20u);
}

TEST(FlightRecorder, CapacityRoundsUpToAPowerOfTwo) {
  FlightRecorder recorder({.ring_capacity = 5});
  EXPECT_EQ(recorder.ring_capacity(), 8u);
}

TEST(FlightRecorder, DisabledModeIsInert) {
  FlightRecorder recorder({.ring_capacity = 8, .enabled = false});
  EXPECT_FALSE(recorder.enabled());
  EXPECT_EQ(recorder.record(rec(5'000'000), "SLOW"), 0u);
  EXPECT_EQ(recorder.recorded(), 0u);
  EXPECT_TRUE(recorder.tail(8).empty());
  EXPECT_TRUE(recorder.slow_log().empty());
  EXPECT_TRUE(recorder.exemplars().empty());

  // Re-enabling starts recording again...
  recorder.set_enabled(true);
  EXPECT_EQ(recorder.record(rec(10), ""), 1u);
  EXPECT_EQ(recorder.tail(8).size(), 1u);
}

TEST(FlightRecorder, ZeroCapacityIsPermanentlyInert) {
  FlightRecorder recorder({.ring_capacity = 0});
  EXPECT_FALSE(recorder.enabled());
  recorder.set_enabled(true);  // cannot turn on a ringless recorder
  EXPECT_FALSE(recorder.enabled());
  EXPECT_EQ(recorder.record(rec(10), ""), 0u);
}

TEST(FlightRecorder, SlowLogKeepsTheTopKWorstWithDetail) {
  FlightRecorder recorder(
      {.ring_capacity = 64, .slow_capacity = 3, .slow_threshold_ns = 1000});
  recorder.record(rec(10), "fast");  // below threshold: not logged
  recorder.record(rec(5000), "slow-5000");
  recorder.record(rec(1000), "slow-1000");  // at threshold: logged
  recorder.record(rec(3000), "slow-3000");
  recorder.record(rec(2000), "slow-2000");  // evicts nothing (min is 1000)
  recorder.record(rec(500), "fast-again");

  auto slow = recorder.slow_log();
  ASSERT_EQ(slow.size(), 3u);
  EXPECT_EQ(slow[0].record.total_ns, 5000u);  // worst first
  EXPECT_EQ(slow[0].detail, "slow-5000");
  EXPECT_EQ(slow[1].record.total_ns, 3000u);
  EXPECT_EQ(slow[2].record.total_ns, 2000u);  // 1000 was replaced
}

TEST(FlightRecorder, SlowLogIgnoresRequestsNoWorseThanItsMinimum) {
  FlightRecorder recorder(
      {.ring_capacity = 64, .slow_capacity = 2, .slow_threshold_ns = 1000});
  recorder.record(rec(4000), "a");
  recorder.record(rec(3000), "b");
  recorder.record(rec(2000), "c");  // over threshold but not top-2
  auto slow = recorder.slow_log();
  ASSERT_EQ(slow.size(), 2u);
  EXPECT_EQ(slow[0].record.total_ns, 4000u);
  EXPECT_EQ(slow[1].record.total_ns, 3000u);
}

TEST(FlightRecorder, ExemplarsLinkBucketsToTheLatestRequestThere) {
  FlightRecorder recorder({.ring_capacity = 8});
  recorder.record(rec(0), "");     // bucket le=0
  recorder.record(rec(5), "");     // bucket [4,8) -> le=7
  recorder.record(rec(6), "");     // same bucket: replaces seq
  recorder.record(rec(1000), "");  // bucket [512,1024) -> le=1023
  auto exemplars = recorder.exemplars();
  ASSERT_EQ(exemplars.size(), 3u);
  EXPECT_EQ(exemplars[0].le_ns, 0u);
  EXPECT_EQ(exemplars[0].seq, 1u);
  EXPECT_EQ(exemplars[1].le_ns, 7u);
  EXPECT_EQ(exemplars[1].seq, 3u);  // latest in-bucket wins
  EXPECT_EQ(exemplars[1].total_ns, 6u);
  EXPECT_EQ(exemplars[2].le_ns, 1023u);
  EXPECT_EQ(exemplars[2].total_ns, 1000u);
}

TEST(FlightRecorder, ClearDropsEverything) {
  FlightRecorder recorder({.ring_capacity = 8, .slow_threshold_ns = 1});
  recorder.record(rec(100), "x");
  recorder.clear();
  EXPECT_EQ(recorder.recorded(), 0u);
  EXPECT_TRUE(recorder.tail(8).empty());
  EXPECT_TRUE(recorder.slow_log().empty());
  EXPECT_TRUE(recorder.exemplars().empty());
  // And it keeps recording after a clear.
  EXPECT_EQ(recorder.record(rec(100), "y"), 1u);
}

TEST(FlightRecorder, TailRecordsAreInternallyConsistentUnderWrap) {
  // Every record carries total_ns == seq * 100, so any torn read — half
  // one record, half another — is detectable. The single writer wraps
  // the ring many times while we repeatedly tail() it.
  FlightRecorder recorder({.ring_capacity = 16});
  for (std::uint64_t i = 1; i <= 1000; ++i) {
    recorder.record(rec(i * 100), "");
    if (i % 97 == 0) {
      for (const FlightRecord& r : recorder.tail(16)) {
        EXPECT_EQ(r.total_ns, r.seq * 100);
      }
    }
  }
}

// The production topology: one writer per shard recorder, INSPECT-style
// readers scanning all recorders concurrently. Run under tsan (the preset
// selects this suite by name) this proves the seqlock publishes records
// race-free; the value checks prove reads are never torn.
TEST(FlightRecorder, ConcurrentShardWritersAndReaders) {
  constexpr int kShards = 4;
  constexpr std::uint64_t kPerShard = 5000;
  std::vector<std::unique_ptr<FlightRecorder>> shards;
  for (int s = 0; s < kShards; ++s) {
    shards.push_back(std::make_unique<FlightRecorder>(FlightRecorder::Options{
        .ring_capacity = 32, .slow_capacity = 4, .slow_threshold_ns = 10'000}));
  }

  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int s = 0; s < kShards; ++s) {
    writers.emplace_back([&, s] {
      for (std::uint64_t i = 1; i <= kPerShard; ++i) {
        FlightRecord r = rec(i * 8, static_cast<std::uint8_t>(s));
        shards[static_cast<std::size_t>(s)]->record(r, "detail");
      }
    });
  }
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      for (auto& shard : shards) {
        for (const FlightRecord& r : shard->tail(32)) {
          ASSERT_EQ(r.total_ns, r.seq * 8);  // torn read would break this
        }
        shard->slow_log();
        shard->exemplars();
      }
    }
  });

  for (auto& w : writers) w.join();
  stop.store(true, std::memory_order_release);
  reader.join();

  for (auto& shard : shards) {
    EXPECT_EQ(shard->recorded(), kPerShard);
    auto tail = shard->tail(32);
    EXPECT_FALSE(tail.empty());
    EXPECT_EQ(tail.back().seq, kPerShard);
  }
}

}  // namespace
}  // namespace sublet::obs
