// Observability layer tests (docs/OBSERVABILITY.md): metric primitives,
// registry semantics (idempotent registration, collision sinks, fault
// injection), Prometheus text exposition, span tracing, structured JSON
// logging, and the tsan-targeted concurrency suites (snapshot under
// concurrent increments; no torn log lines).
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/faultinject.h"
#include "util/log.h"

namespace sublet::obs {
namespace {

/// Restore the metrics kill switch even when an assertion bails out early.
struct MetricsEnabledGuard {
  explicit MetricsEnabledGuard(bool on) { set_metrics_enabled(on); }
  ~MetricsEnabledGuard() { set_metrics_enabled(true); }
};

// --- primitives ---

TEST(ObsCounter, AddValueReset) {
  MetricsRegistry registry;
  Counter& c = registry.counter("c_total", "help");
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(3);
  EXPECT_EQ(c.value(), 4u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(ObsCounter, KillSwitchDropsUpdates) {
  MetricsRegistry registry;
  Counter& c = registry.counter("c_total");
  {
    MetricsEnabledGuard off(false);
    c.add(100);
    EXPECT_EQ(c.value(), 0u);  // reads still work, updates are dropped
  }
  c.add(1);
  EXPECT_EQ(c.value(), 1u);
}

TEST(ObsGauge, SetAndAdd) {
  MetricsRegistry registry;
  Gauge& g = registry.gauge("g");
  g.set(7);
  g.add(-2);
  EXPECT_EQ(g.value(), 5);
  {
    MetricsEnabledGuard off(false);
    g.set(99);
    EXPECT_EQ(g.value(), 5);
  }
}

TEST(ObsHistogram, PowerOfTwoBuckets) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("h");
  h.record(0);     // bucket 0
  h.record(1);     // bucket 1: [1, 2)
  h.record(2);     // bucket 2: [2, 4)
  h.record(3);     // bucket 2
  h.record(1024);  // bucket 11: [1024, 2048)
  HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 5u);
  EXPECT_EQ(snap.sum, 1030u);
  EXPECT_EQ(snap.buckets[0], 1u);
  EXPECT_EQ(snap.buckets[1], 1u);
  EXPECT_EQ(snap.buckets[2], 2u);
  EXPECT_EQ(snap.buckets[11], 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 1030u);
}

TEST(ObsHistogram, QuantileIsBucketMidpoint) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("h");
  EXPECT_EQ(h.quantile(0.5), 0.0);  // empty
  h.record(0);
  EXPECT_EQ(h.quantile(0.5), 0.0);  // zero bucket
  Histogram& h2 = registry.histogram("h2");
  for (int i = 0; i < 10; ++i) h2.record(1024);
  // All mass in [1024, 2048): every quantile is the midpoint 1536.
  EXPECT_EQ(h2.quantile(0.5), 1536.0);
  EXPECT_EQ(h2.quantile(0.99), 1536.0);
}

TEST(ObsHistogram, BucketUpperBounds) {
  EXPECT_EQ(Histogram::bucket_upper_bound(0), 0u);
  EXPECT_EQ(Histogram::bucket_upper_bound(1), 1u);
  EXPECT_EQ(Histogram::bucket_upper_bound(5), 31u);
  EXPECT_EQ(Histogram::bucket_upper_bound(64), ~std::uint64_t{0});
}

// --- registry semantics ---

TEST(ObsRegistry, RegistrationIsIdempotent) {
  MetricsRegistry registry;
  Counter& a = registry.counter("dup_total", "first help");
  Counter& b = registry.counter("dup_total", "second help");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(registry.size(), 1u);
  // Help is kept from the first registration that provided one.
  EXPECT_EQ(registry.snapshot()[0].help, "first help");
}

TEST(ObsRegistry, LateHelpFillsEmpty) {
  MetricsRegistry registry;
  registry.counter("c_total");
  registry.counter("c_total", "late help");
  EXPECT_EQ(registry.snapshot()[0].help, "late help");
}

TEST(ObsRegistry, TypeCollisionReturnsUnexportedSink) {
  MetricsRegistry registry;
  Counter& c = registry.counter("clash", "a counter");
  c.add(5);
  // Re-registering the same name as a gauge is a caller bug: the call site
  // gets a working sink, the original metric is untouched and the registry
  // does not grow.
  Gauge& sink = registry.gauge("clash");
  sink.set(123);
  EXPECT_EQ(registry.size(), 1u);
  EXPECT_EQ(c.value(), 5u);
  std::vector<MetricValue> snap = registry.snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].type, MetricType::kCounter);
  EXPECT_EQ(snap[0].counter_value, 5u);
  // The sink is process-wide: a second collision resolves to the same one.
  EXPECT_EQ(&registry.gauge("clash"), &sink);
}

TEST(ObsRegistryFault, InjectedRegistrationCollision) {
  if (!fault::enabled()) GTEST_SKIP() << "fault injection compiled out";
  fault::disarm_all();
  MetricsRegistry registry;
  {
    fault::ScopedFault f("obs.register", EIO, /*skip=*/0, /*times=*/1);
    Counter& sink = registry.counter("faulted_total", "never exported");
    EXPECT_EQ(f.trips(), 1u);
    sink.add(7);  // must be usable even though the registration failed
    EXPECT_EQ(registry.size(), 0u);
  }
  // With the fault disarmed, the same name registers normally.
  Counter& real = registry.counter("faulted_total", "now exported");
  real.add(1);
  EXPECT_EQ(registry.size(), 1u);
  EXPECT_EQ(registry.snapshot()[0].counter_value, 1u);
}

TEST(ObsRegistry, LabeledBuildsEscapedName) {
  EXPECT_EQ(labeled("fam", "rir", "ripe"), "fam{rir=\"ripe\"}");
  EXPECT_EQ(label_escape("a\\b\"c\nd"), "a\\\\b\\\"c\\nd");
  EXPECT_EQ(labeled("fam", "k", "v\"x"), "fam{k=\"v\\\"x\"}");
}

// --- Prometheus text exposition ---

TEST(ObsPrometheus, FamiliesAreGroupedInFirstSeenOrder) {
  MetricsRegistry registry;
  // Interleave registrations across two families: exposition must still
  // emit one # TYPE header per family with all its samples beneath it.
  registry.counter(labeled("fam_a_total", "rir", "ripe"), "family A").add(1);
  registry.gauge("fam_b", "family B").set(-3);
  registry.counter(labeled("fam_a_total", "rir", "arin")).add(2);
  std::string text = registry.prometheus_text();
  std::string expected =
      "# HELP fam_a_total family A\n"
      "# TYPE fam_a_total counter\n"
      "fam_a_total{rir=\"ripe\"} 1\n"
      "fam_a_total{rir=\"arin\"} 2\n"
      "# HELP fam_b family B\n"
      "# TYPE fam_b gauge\n"
      "fam_b -3\n";
  EXPECT_EQ(text, expected);
}

TEST(ObsPrometheus, HelpIsEscaped) {
  MetricsRegistry registry;
  registry.counter("c_total", "line1\nline2 \\ backslash");
  std::string text = registry.prometheus_text();
  EXPECT_NE(text.find("# HELP c_total line1\\nline2 \\\\ backslash\n"),
            std::string::npos);
}

TEST(ObsPrometheus, HistogramExpandsToCumulativeBuckets) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram(labeled("lat_ns", "op", "lpm"), "lat");
  h.record(0);
  h.record(1);
  h.record(3);
  std::string text = registry.prometheus_text();
  std::string expected =
      "# HELP lat_ns lat\n"
      "# TYPE lat_ns histogram\n"
      "lat_ns_bucket{op=\"lpm\",le=\"0\"} 1\n"
      "lat_ns_bucket{op=\"lpm\",le=\"1\"} 2\n"
      "lat_ns_bucket{op=\"lpm\",le=\"3\"} 3\n"
      "lat_ns_bucket{op=\"lpm\",le=\"+Inf\"} 3\n"
      "lat_ns_sum{op=\"lpm\"} 4\n"
      "lat_ns_count{op=\"lpm\"} 3\n";
  EXPECT_EQ(text, expected);
}

TEST(ObsPrometheus, EmptyHistogramEmitsOnlyInfSumCount) {
  MetricsRegistry registry;
  registry.histogram("empty_ns");
  std::string text = registry.prometheus_text();
  std::string expected =
      "# TYPE empty_ns histogram\n"
      "empty_ns_bucket{le=\"+Inf\"} 0\n"
      "empty_ns_sum 0\n"
      "empty_ns_count 0\n";
  EXPECT_EQ(text, expected);
}

// --- concurrency (run under the tsan preset) ---

TEST(ObsConcurrency, SnapshotUnderConcurrentIncrements) {
  MetricsRegistry registry;
  Counter& c = registry.counter("hammer_total");
  Histogram& h = registry.histogram("hammer_ns");
  constexpr int kThreads = 4;
  constexpr int kIters = 20000;
  std::atomic<bool> stop{false};
  // Scrape continuously while writers hammer: snapshots must be readable
  // mid-flight (values are relaxed, per-metric monotonic).
  std::thread reader([&] {
    std::uint64_t last = 0;
    while (!stop.load(std::memory_order_acquire)) {
      std::uint64_t seen = 0;
      for (const MetricValue& v : registry.snapshot()) {
        if (v.name == "hammer_total") seen = v.counter_value;
      }
      EXPECT_GE(seen, last);
      last = seen;
      std::string text = registry.prometheus_text();
      EXPECT_NE(text.find("# TYPE hammer_total counter"), std::string::npos);
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        c.add(1);
        h.record(static_cast<std::uint64_t>(i));
      }
    });
  }
  for (auto& w : writers) w.join();
  stop.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kIters);
}

TEST(ObsConcurrency, ConcurrentRegistrationSameName) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  std::vector<Counter*> seen(kThreads, nullptr);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      seen[static_cast<std::size_t>(t)] =
          &registry.counter("raced_total", "racy");
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(seen[static_cast<std::size_t>(t)], seen[0]);
  }
  EXPECT_EQ(registry.size(), 1u);
}

// --- tracing ---

/// Enable the global tracer for one test; restores disabled + empty.
struct TracerGuard {
  TracerGuard() {
    Tracer::global().clear();
    Tracer::global().set_enabled(true);
  }
  ~TracerGuard() {
    Tracer::global().set_enabled(false);
    Tracer::global().clear();
  }
};

TEST(ObsTrace, SpansNestOnOneThread) {
  TracerGuard guard;
  SpanId outer_id = 0;
  {
    ScopedSpan outer("outer");
    outer_id = outer.id();
    EXPECT_TRUE(outer.active());
    EXPECT_EQ(Tracer::current(), outer_id);
    {
      ScopedSpan inner("inner");
      EXPECT_EQ(Tracer::current(), inner.id());
      inner.add_bytes(10);
      inner.add_records(3);
    }
    EXPECT_EQ(Tracer::current(), outer_id);
    outer.add_bytes(100);
  }
  EXPECT_EQ(Tracer::current(), SpanId{0});
  std::vector<SpanRecord> spans = Tracer::global().spans();
  ASSERT_EQ(spans.size(), 2u);  // completion order: inner first
  EXPECT_EQ(spans[0].name, "inner");
  EXPECT_EQ(spans[0].parent, outer_id);
  EXPECT_EQ(spans[0].bytes, 10u);
  EXPECT_EQ(spans[0].records, 3u);
  EXPECT_EQ(spans[1].name, "outer");
  EXPECT_EQ(spans[1].parent, SpanId{0});
  EXPECT_EQ(spans[1].bytes, 100u);
}

TEST(ObsTrace, ExplicitParentCrossesThreads) {
  TracerGuard guard;
  SpanId parent_id = 0;
  {
    ScopedSpan stage("stage");
    parent_id = stage.id();
    std::thread worker([parent = stage.id()] {
      ScopedSpan chunk("stage.chunk", parent);
      EXPECT_TRUE(chunk.active());
    });
    worker.join();
  }
  std::vector<SpanRecord> spans = Tracer::global().spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "stage.chunk");
  EXPECT_EQ(spans[0].parent, parent_id);
  // Worker thread got its own small ordinal, distinct from the main thread.
  EXPECT_NE(spans[0].tid, spans[1].tid);
}

TEST(ObsTrace, DisabledTracerIsInert) {
  Tracer::global().set_enabled(false);
  Tracer::global().clear();
  {
    ScopedSpan span("ghost");
    EXPECT_FALSE(span.active());
    EXPECT_EQ(span.id(), SpanId{0});
  }
  EXPECT_EQ(Tracer::global().span_count(), 0u);
}

TEST(ObsTrace, ChromeTraceJsonShape) {
  TracerGuard guard;
  {
    ScopedSpan span("alpha.stage");
    span.add_bytes(42);
  }
  std::string json = Tracer::global().chrome_trace_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"alpha.stage\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"bytes\":42"), std::string::npos);

  std::string path = testing::TempDir() + "/sublet_obs_trace_" +
                     std::to_string(::getpid()) + ".json";
  ASSERT_TRUE(Tracer::global().write_chrome_trace(path));
  std::ifstream in(path);
  std::stringstream file_contents;
  file_contents << in.rdbuf();
  EXPECT_EQ(file_contents.str(), json + "\n");  // file gets a final newline
  ::unlink(path.c_str());
}

// --- structured logging ---

/// Redirect stderr (fd 2) to a temp file for the guard's lifetime, so the
/// single-write(2) contract can be checked byte-for-byte.
struct StderrCapture {
  StderrCapture() {
    path = testing::TempDir() + "/sublet_obs_log_" +
           std::to_string(::getpid()) + ".txt";
    file = std::fopen(path.c_str(), "w+");
    saved_fd = ::dup(STDERR_FILENO);
    ::dup2(::fileno(file), STDERR_FILENO);
  }
  ~StderrCapture() {
    restore();
    std::fclose(file);
    ::unlink(path.c_str());
  }
  void restore() {
    if (saved_fd < 0) return;
    ::dup2(saved_fd, STDERR_FILENO);
    ::close(saved_fd);
    saved_fd = -1;
  }
  std::string contents() {
    restore();
    std::ifstream in(path);
    std::stringstream out;
    out << in.rdbuf();
    return out.str();
  }

  std::string path;
  std::FILE* file = nullptr;
  int saved_fd = -1;
};

/// Restore level + format after a test that changes them.
struct LogConfigGuard {
  LogLevel level = log_level();
  LogFormat format = log_format();
  ~LogConfigGuard() {
    set_log_level(level);
    set_log_format(format);
  }
};

TEST(ObsLogJson, OneJsonObjectPerLine) {
  LogConfigGuard config;
  set_log_level(LogLevel::kInfo);
  set_log_format(LogFormat::kJson);
  StderrCapture capture;
  SUBLET_LOGC(kInfo, "serve").kv("port", 8080).kv("q", "a\"b") << "listening";
  std::string out = capture.contents();
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out.front(), '{');
  EXPECT_EQ(out.back(), '\n');
  EXPECT_NE(out.find("\"ts\":\""), std::string::npos);
  EXPECT_NE(out.find("\"level\":\"info\""), std::string::npos);
  EXPECT_NE(out.find("\"component\":\"serve\""), std::string::npos);
  EXPECT_NE(out.find("\"msg\":\"listening\""), std::string::npos);
  EXPECT_NE(out.find("\"port\":\"8080\""), std::string::npos);
  EXPECT_NE(out.find("\"q\":\"a\\\"b\""), std::string::npos);
}

TEST(ObsLogJson, TextFormatKeepsHistoricalShape) {
  LogConfigGuard config;
  set_log_level(LogLevel::kInfo);
  set_log_format(LogFormat::kText);
  StderrCapture capture;
  SUBLET_LOGC(kInfo, "obs").kv("n", 3) << "hello";
  SUBLET_LOG(kInfo) << "plain";
  std::string out = capture.contents();
  EXPECT_NE(out.find("[INFO] obs: hello n=3\n"), std::string::npos);
  EXPECT_NE(out.find("[INFO] plain\n"), std::string::npos);
}

TEST(ObsLogConcurrency, NoTornLinesAcrossThreads) {
  LogConfigGuard config;
  set_log_level(LogLevel::kInfo);
  set_log_format(LogFormat::kText);
  constexpr int kThreads = 8;
  constexpr int kLines = 200;
  // Long payloads maximize the window a multi-part writer would have to
  // interleave; the single-write(2) contract says it never happens.
  const std::string pad(120, 'x');
  StderrCapture capture;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kLines; ++i) {
        SUBLET_LOGC(kInfo, "worker")
                .kv("thread", t)
                .kv("line", i)
            << pad;
      }
    });
  }
  for (auto& th : threads) th.join();
  std::string out = capture.contents();
  std::istringstream lines(out);
  std::string line;
  int complete = 0;
  const std::string prefix = "[INFO] worker: " + pad + " thread=";
  while (std::getline(lines, line)) {
    EXPECT_EQ(line.rfind(prefix, 0), 0u) << "torn line: " << line;
    EXPECT_NE(line.find(" line="), std::string::npos) << "torn line: " << line;
    ++complete;
  }
  EXPECT_EQ(complete, kThreads * kLines);
}

}  // namespace
}  // namespace sublet::obs
