// Soak harness checks (labels `soak` + `fault`): scenario grammar,
// schedule determinism (same seed + scenario => byte-identical
// deterministic report section), SLO report shape, and a short
// chaos-under-load run including the mid-append SIGKILL recovery path.
// Suites are named Soak* so the tsan preset picks them up by name.
#include <gtest/gtest.h>

#include <string>

#include "loadgen/loadgen.h"
#include "loadgen/report.h"
#include "loadgen/scenario.h"
#include "util/faultinject.h"

namespace sublet::loadgen {
namespace {

// A run small enough for sanitizer presets: ~1.4k records, ~1.5s.
LoadOptions tiny_run(std::uint64_t seed) {
  LoadOptions options;
  options.seed = seed;
  options.workers = 2;
  options.duration_ms = 1500;
  options.qps = 120.0;
  options.batch_size = 32;
  options.pipeline_depth = 2;
  options.world.scale = 0.02;
  options.world.epochs = 3;
  options.world.pending = 2;
  options.spot_check_every = 8;
  return options;
}

TEST(SoakScenario, ParsesSortsAndCanonicalizes) {
  auto events = parse_scenario(
      " churn@9000:25 ;append@1000; faults@5000:serve.read=EIO:3 ");
  ASSERT_TRUE(events.has_value()) << events.error().to_string();
  ASSERT_EQ(events->size(), 3u);
  EXPECT_EQ((*events)[0].kind, ChaosKind::kAppend);
  EXPECT_EQ((*events)[0].at_ms, 1000u);
  EXPECT_EQ((*events)[1].kind, ChaosKind::kFaults);
  EXPECT_EQ((*events)[1].arg, "serve.read=EIO:3");  // ':' kept verbatim
  EXPECT_EQ((*events)[2].kind, ChaosKind::kChurn);
  EXPECT_EQ(canonical_scenario(*events),
            "append@1000;faults@5000:serve.read=EIO:3;churn@9000:25");
}

TEST(SoakScenario, EmptyIsValidAndErrorsAreTyped) {
  auto empty = parse_scenario("");
  ASSERT_TRUE(empty.has_value());
  EXPECT_TRUE(empty->empty());
  EXPECT_FALSE(parse_scenario("explode@1000").has_value());
  EXPECT_FALSE(parse_scenario("append@soon").has_value());
  EXPECT_FALSE(parse_scenario("append").has_value());
}

TEST(SoakSchedule, SameSeedSameScenarioIsByteIdentical) {
  LoadOptions options = tiny_run(101);
  options.scenario = "reload@400;churn@800:5";
  auto first = run_load(options);
  ASSERT_TRUE(first.has_value()) << first.error().to_string();
  auto second = run_load(options);
  ASSERT_TRUE(second.has_value()) << second.error().to_string();
  // The timing-independent section replays byte-for-byte; the measured
  // section (latencies, chaos outcomes) legitimately differs.
  EXPECT_EQ(first->deterministic_json(), second->deterministic_json());
  EXPECT_EQ(first->schedule_digest, second->schedule_digest);
  EXPECT_EQ(first->planned, second->planned);
}

TEST(SoakSchedule, DifferentSeedDifferentSchedule) {
  auto a = run_load(tiny_run(7));
  ASSERT_TRUE(a.has_value()) << a.error().to_string();
  auto b = run_load(tiny_run(8));
  ASSERT_TRUE(b.has_value()) << b.error().to_string();
  EXPECT_NE(a->schedule_digest, b->schedule_digest);
}

TEST(SoakReport, JsonShapeCarriesTheContract) {
  auto report = run_load(tiny_run(55));
  ASSERT_TRUE(report.has_value()) << report.error().to_string();
  const std::string json = report->to_json();
  for (const char* key :
       {"\"deterministic\"", "\"schedule_digest\"", "\"planned\"",
        "\"verbs\"", "\"lpm_batch\"", "\"total_requests\"",
        "\"spot_checks\"", "\"wrong_answers\"", "\"injected_errors\"",
        "\"uninjected_errors\"", "\"chaos\"", "\"outbuf_overflows\"",
        "\"slo\"", "\"p99_bound_us\"", "\"zero_wrong_answers\"",
        "\"zero_uninjected_errors\"", "\"pass\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key;
  }
  // The deterministic section embeds verbatim at the front of the report.
  EXPECT_NE(json.find(report->deterministic_json()), std::string::npos);
  EXPECT_GT(report->total_requests, 0u);
  EXPECT_GT(report->spot_checks, 0u);
  EXPECT_EQ(report->wrong_answers, 0u);
  EXPECT_EQ(report->uninjected_errors, 0u);
  EXPECT_TRUE(report->slo.pass);
}

TEST(SoakSlo, ImpossibleLatencyBoundFailsTheRun) {
  LoadOptions options = tiny_run(77);
  options.p99_bound_us = 0.001;  // nothing real completes this fast
  options.heavy_p99_bound_us = 0.001;
  auto report = run_load(options);
  ASSERT_TRUE(report.has_value()) << report.error().to_string();
  EXPECT_FALSE(report->slo.p99_ok);
  EXPECT_FALSE(report->slo.pass);  // a violated SLO is a report, not an Error
}

TEST(SoakSlo, BadScenarioIsAHarnessErrorNotAReport) {
  LoadOptions options = tiny_run(78);
  options.scenario = "meteor@1000";
  EXPECT_FALSE(run_load(options).has_value());
}

TEST(SoakChaos, KillAppendMidRunRecoversAndPasses) {
  if (!fault::enabled()) GTEST_SKIP() << "fault injection compiled out";
  LoadOptions options = tiny_run(91);
  options.duration_ms = 2500;
  options.scenario = "killappend@600;append@1600";
  auto report = run_load(options);
  ASSERT_TRUE(report.has_value()) << report.error().to_string();
  EXPECT_EQ(report->chaos.kills, 1u);
  EXPECT_EQ(report->chaos.appends, 2u);  // the retried + the scheduled one
  EXPECT_EQ(report->wrong_answers, 0u);
  EXPECT_EQ(report->uninjected_errors, 0u);
  EXPECT_TRUE(report->slo.pass);
}

}  // namespace
}  // namespace sublet::loadgen
