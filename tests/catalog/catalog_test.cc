// Catalog subsystem tests (docs/TIMETRAVEL.md): delta encode/apply,
// catalog.idx round-trips and corruption, the authoring size guard, LRU
// caching, fault injection, and the differential byte-identity suite that
// pins "base + delta chain" == "full snapshot of epoch K".
#include "catalog/catalog.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "catalog/delta.h"
#include "obs/metrics.h"
#include "serve/engine_state.h"
#include "simnet/timeline_scenario.h"
#include "snapshot/writer.h"
#include "util/faultinject.h"

namespace sublet::catalog {
namespace {

using leasing::InferenceGroup;
using leasing::LeaseInference;

Prefix P(const char* s) { return *Prefix::parse(s); }

LeaseInference record(const char* prefix, InferenceGroup group,
                      const char* org = "ORG-A") {
  LeaseInference r;
  r.prefix = P(prefix);
  r.rir = whois::Rir::kRipe;
  r.group = group;
  r.root_prefix = P("10.0.0.0/8");
  r.holder_org = org;
  r.holder_asns = {Asn(64512)};
  r.leaf_origins = {Asn(65001)};
  r.root_origins = {Asn(64512)};
  r.leaf_maintainers = {"MNT-LEAF"};
  r.root_maintainers = {"MNT-ROOT"};
  r.netname = "NET";
  return r;
}

std::vector<LeaseInference> base_set() {
  return canonical_inferences({
      record("10.0.0.0/24", InferenceGroup::kLeasedNoRoot),
      record("10.0.1.0/24", InferenceGroup::kAggregatedCustomer),
      record("10.0.2.0/24", InferenceGroup::kIspCustomer),
      record("10.0.3.0/24", InferenceGroup::kUnused),
  });
}

std::string temp_dir(const char* tag) {
  return testing::TempDir() + "/sublet_catalog_" + tag + "_" +
         std::to_string(::getpid());
}

void remove_tree(const std::string& dir) {
  std::string cmd = "rm -rf '" + dir + "'";
  [[maybe_unused]] int rc = std::system(cmd.c_str());
}

std::vector<std::uint8_t> read_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

void write_bytes(const std::string& path,
                 const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

// --- delta format --------------------------------------------------------

TEST(CatalogDelta, CanonicalSortsAndKeepsLast) {
  std::vector<LeaseInference> raw;
  raw.push_back(record("10.0.1.0/24", InferenceGroup::kUnused));
  raw.push_back(record("10.0.0.0/24", InferenceGroup::kUnused));
  raw.push_back(record("10.0.1.0/24", InferenceGroup::kLeasedNoRoot));
  auto canonical = canonical_inferences(raw);
  ASSERT_EQ(canonical.size(), 2u);
  EXPECT_EQ(canonical[0].prefix.to_string(), "10.0.0.0/24");
  EXPECT_EQ(canonical[1].prefix.to_string(), "10.0.1.0/24");
  EXPECT_EQ(canonical[1].group, InferenceGroup::kLeasedNoRoot);
}

TEST(CatalogDelta, EncodeDiffAndMaterialize) {
  auto base = base_set();
  auto next = base;
  next[1].group = InferenceGroup::kLeasedWithRoot;  // changed
  next.erase(next.begin() + 3);                     // removed 10.0.3.0/24
  next.push_back(record("10.0.9.0/24", InferenceGroup::kLeasedNoRoot));
  next = canonical_inferences(std::move(next));

  auto bytes = encode_delta(100, base, 200, next);
  auto delta = Delta::from_bytes(bytes);
  ASSERT_TRUE(delta) << delta.error().to_string();
  EXPECT_EQ(delta->epoch(), 200u);
  EXPECT_EQ(delta->base_epoch(), 100u);
  ASSERT_EQ(delta->removed().size(), 1u);
  EXPECT_EQ(delta->removed()[0].prefix_len, 24);
  ASSERT_EQ(delta->rows().size(), 2u);  // one change + one insert
  LeaseInference changed = delta->materialize(0);
  EXPECT_EQ(changed.prefix.to_string(), "10.0.1.0/24");
  EXPECT_EQ(changed.group, InferenceGroup::kLeasedWithRoot);
  EXPECT_TRUE(same_inference(delta->materialize(1), next.back()));
}

TEST(CatalogDelta, IdenticalEpochsEncodeEmptyDelta) {
  auto base = base_set();
  auto bytes = encode_delta(100, base, 200, base);
  auto delta = Delta::from_bytes(bytes);
  ASSERT_TRUE(delta) << delta.error().to_string();
  EXPECT_EQ(delta->removed().size(), 0u);
  EXPECT_EQ(delta->rows().size(), 0u);
}

TEST(CatalogDelta, CorruptionMatrix) {
  auto bytes = encode_delta(100, base_set(), 200,
                            canonical_inferences(base_set()));
  // Targeted header flips: magic, version, payload size, CRC.
  for (std::size_t off : {std::size_t{0}, std::size_t{8}, std::size_t{16},
                          std::size_t{24}}) {
    auto bad = bytes;
    bad[off] ^= 0x5A;
    EXPECT_FALSE(Delta::from_bytes(bad)) << "header flip at offset " << off;
  }
  // Every byte past the header is CRC-covered (section table + payload):
  // flip each one, the checksum must catch it, never a crash.
  constexpr std::size_t kHeader = 32;
  for (std::size_t off = kHeader; off < bytes.size(); ++off) {
    auto bad = bytes;
    bad[off] ^= 0x5A;
    auto delta = Delta::from_bytes(bad);
    EXPECT_FALSE(delta) << "byte flip at offset " << off << " not caught";
  }
  auto truncated = bytes;
  truncated.resize(bytes.size() / 2);
  EXPECT_FALSE(Delta::from_bytes(truncated));
  EXPECT_FALSE(Delta::from_bytes({}));
}

// --- catalog.idx ---------------------------------------------------------

TEST(CatalogIndex, RoundTrip) {
  std::vector<EpochEntry> entries;
  entries.push_back({100, EpochKind::kFull, 0, 4, 4096, "epoch-100.snap"});
  entries.push_back({200, EpochKind::kDelta, 100, 5, 256,
                     "epoch-200.dsnap"});
  entries.push_back({300, EpochKind::kDelta, 200, 5, 128,
                     "epoch-300.dsnap"});
  auto image = encode_index(entries);
  auto parsed = parse_index(image);
  ASSERT_TRUE(parsed) << parsed.error().to_string();
  ASSERT_EQ(parsed->size(), 3u);
  EXPECT_EQ((*parsed)[1].epoch, 200u);
  EXPECT_EQ((*parsed)[1].kind, EpochKind::kDelta);
  EXPECT_EQ((*parsed)[1].base_epoch, 100u);
  EXPECT_EQ((*parsed)[2].name, "epoch-300.dsnap");
}

TEST(CatalogIndex, RejectsBadStructure) {
  std::vector<EpochEntry> entries;
  entries.push_back({100, EpochKind::kFull, 0, 4, 4096, "a.snap"});
  entries.push_back({200, EpochKind::kDelta, 100, 4, 128, "b.dsnap"});
  auto image = encode_index(entries);

  // Targeted header flips (magic, version, payload size, CRC) plus every
  // CRC-covered payload byte.
  for (std::size_t off : {std::size_t{0}, std::size_t{8}, std::size_t{16},
                          std::size_t{24}}) {
    auto bad = image;
    bad[off] ^= 0xFF;
    EXPECT_FALSE(parse_index(bad)) << "header flip at offset " << off;
  }
  constexpr std::size_t kHeader = 32;
  for (std::size_t off = kHeader; off < image.size(); ++off) {
    auto bad = image;
    bad[off] ^= 0xFF;
    EXPECT_FALSE(parse_index(bad)) << "byte flip at offset " << off;
  }

  // Non-ascending epochs.
  auto swapped = entries;
  std::swap(swapped[0].epoch, swapped[1].epoch);
  swapped[1].base_epoch = 0;
  swapped[1].kind = EpochKind::kFull;
  swapped[0].kind = EpochKind::kDelta;
  swapped[0].base_epoch = 100;
  EXPECT_FALSE(parse_index(encode_index(swapped)));

  // Delta base that resolves to nothing.
  auto dangling = entries;
  dangling[1].base_epoch = 150;
  EXPECT_FALSE(parse_index(encode_index(dangling)));

  // File name escaping the directory.
  auto escape = entries;
  escape[0].name = "../evil.snap";
  EXPECT_FALSE(parse_index(encode_index(escape)));
}

// --- authoring + size guard ---------------------------------------------

TEST(CatalogAuthoring, InitAppendAndGuard) {
  std::string dir = temp_dir("author");
  remove_tree(dir);

  auto base = base_set();
  auto first = catalog_init(dir, 1000, base);
  ASSERT_TRUE(first) << first.error().to_string();
  EXPECT_EQ(first->kind, EpochKind::kFull);
  EXPECT_EQ(first->records, base.size());

  // A small change appends as a delta.
  auto next = base;
  next[0].group = InferenceGroup::kLeasedWithRoot;
  auto second = catalog_append(dir, 2000, next);
  ASSERT_TRUE(second) << second.error().to_string();
  EXPECT_EQ(second->kind, EpochKind::kDelta);
  EXPECT_EQ(second->base_epoch, 1000u);
  EXPECT_LT(second->bytes, first->bytes);

  // max_delta_fraction = 0 forces every append to a fresh full anchor.
  AppendOptions strict;
  strict.max_delta_fraction = 0.0;
  auto third = catalog_append(dir, 3000, next, strict);
  ASSERT_TRUE(third) << third.error().to_string();
  EXPECT_EQ(third->kind, EpochKind::kFull);
  EXPECT_EQ(third->base_epoch, 0u);

  // Epochs must move strictly forward.
  EXPECT_FALSE(catalog_append(dir, 2500, next));
  EXPECT_FALSE(catalog_append(dir, 3000, next));
  // init refuses an existing catalog.
  EXPECT_FALSE(catalog_init(dir, 9000, base));
  remove_tree(dir);
}

// --- Catalog: materialization, LRU, as-of, refresh -----------------------

struct CatalogFixture : ::testing::Test {
  void SetUp() override {
    dir = temp_dir("fixture");
    remove_tree(dir);
    epochs = {1000, 2000, 3000};
    sets.push_back(base_set());
    auto second = sets[0];
    second[0].group = InferenceGroup::kLeasedWithRoot;
    sets.push_back(canonical_inferences(second));
    auto third = sets[1];
    third.push_back(record("10.0.9.0/24", InferenceGroup::kLeasedNoRoot));
    sets.push_back(canonical_inferences(third));
    ASSERT_TRUE(catalog_init(dir, epochs[0], sets[0]));
    ASSERT_TRUE(catalog_append(dir, epochs[1], sets[1]));
    ASSERT_TRUE(catalog_append(dir, epochs[2], sets[2]));
  }
  void TearDown() override { remove_tree(dir); }

  std::string dir;
  std::vector<std::uint32_t> epochs;
  std::vector<std::vector<LeaseInference>> sets;
};

TEST_F(CatalogFixture, EpochAtAsOfSemantics) {
  auto opened = Catalog::open(dir);
  ASSERT_TRUE(opened) << opened.error().to_string();
  Catalog& catalog = **opened;
  EXPECT_EQ(catalog.epochs(), epochs);

  auto latest = catalog.epoch_at(0);
  ASSERT_TRUE(latest);
  EXPECT_EQ((*latest)->epoch(), 3000u);
  auto exact = catalog.epoch_at(2000);
  ASSERT_TRUE(exact);
  EXPECT_EQ((*exact)->epoch(), 2000u);
  auto between = catalog.epoch_at(2999);
  ASSERT_TRUE(between);
  EXPECT_EQ((*between)->epoch(), 2000u);
  auto after = catalog.epoch_at(999999);
  ASSERT_TRUE(after);
  EXPECT_EQ((*after)->epoch(), 3000u);
  EXPECT_FALSE(catalog.epoch_at(999));  // predates the catalog
}

TEST_F(CatalogFixture, MaterializedEpochsMatchRecords) {
  auto opened = Catalog::open(dir);
  ASSERT_TRUE(opened);
  for (std::size_t k = 0; k < epochs.size(); ++k) {
    auto state = (*opened)->materialize(epochs[k]);
    ASSERT_TRUE(state) << state.error().to_string();
    EXPECT_EQ((*state)->snapshot().record_count(), sets[k].size());
    for (const LeaseInference& expect : sets[k]) {
      auto idx = (*state)->engine().exact(expect.prefix);
      ASSERT_TRUE(idx.has_value())
          << expect.prefix.to_string() << " missing in epoch " << epochs[k];
      EXPECT_TRUE(same_inference((*state)->snapshot().materialize(*idx),
                                 expect));
    }
  }
}

TEST_F(CatalogFixture, LruEvictsHistoryButPinsLatest) {
  auto& evictions = obs::MetricsRegistry::global().counter(
      "sublet_catalog_lru_evictions_total");
  const std::uint64_t before = evictions.value();
  CatalogOptions options;
  options.lru_capacity = 1;
  auto opened = Catalog::open(dir, options);
  ASSERT_TRUE(opened);
  ASSERT_TRUE((*opened)->materialize(3000));
  ASSERT_TRUE((*opened)->materialize(1000));
  ASSERT_TRUE((*opened)->materialize(2000));  // evicts 1000
  EXPECT_LE((*opened)->cached_epochs(), 2u);  // capacity + nothing pinned yet
  EXPECT_GT(evictions.value(), before);
  // The latest epoch is pinned: still answerable after history churn.
  auto latest = (*opened)->epoch_at(0);
  ASSERT_TRUE(latest);
  EXPECT_EQ((*latest)->epoch(), 3000u);
}

TEST_F(CatalogFixture, RefreshPicksUpAppendedEpoch) {
  auto opened = Catalog::open(dir);
  ASSERT_TRUE(opened);
  auto before = (*opened)->epoch_at(0);
  ASSERT_TRUE(before);
  EXPECT_EQ((*before)->epoch(), 3000u);

  auto fourth = sets[2];
  fourth[0].group = InferenceGroup::kUnused;
  ASSERT_TRUE(catalog_append(dir, 4000, canonical_inferences(fourth)));

  auto refreshed = (*opened)->refresh();
  ASSERT_TRUE(refreshed) << refreshed.error().to_string();
  EXPECT_EQ((*refreshed)->epoch(), 4000u);
  ASSERT_EQ((*opened)->epochs().size(), 4u);
  // Previously materialized epochs survive the refresh untouched.
  auto old_epoch = (*opened)->epoch_at(2000);
  ASSERT_TRUE(old_epoch);
  EXPECT_EQ((*old_epoch)->epoch(), 2000u);
}

// --- fault injection -----------------------------------------------------

TEST_F(CatalogFixture, FaultSitesKeepServedEpochsAlive) {
  if (!fault::enabled()) GTEST_SKIP() << "fault injection compiled out";
  auto opened = Catalog::open(dir);
  ASSERT_TRUE(opened);
  auto served = (*opened)->materialize(2000);
  ASSERT_TRUE(served);

  {
    fault::ScopedFault fault_open("catalog.open", EIO);
    EXPECT_FALSE((*opened)->materialize(3000));
    EXPECT_GT(fault_open.trips(), 0u);
    // The epoch materialized before the fault still serves from cache.
    auto still = (*opened)->epoch_at(2000);
    ASSERT_TRUE(still);
    EXPECT_EQ((*still)->epoch(), 2000u);
  }
  {
    fault::ScopedFault fault_apply("catalog.apply_delta", EIO);
    EXPECT_FALSE((*opened)->materialize(3000));
    EXPECT_GT(fault_apply.trips(), 0u);
    auto still = (*opened)->epoch_at(2000);
    ASSERT_TRUE(still);
  }
  {
    fault::ScopedFault fault_index("catalog.index_parse", EIO);
    EXPECT_FALSE((*opened)->refresh());
    EXPECT_GT(fault_index.trips(), 0u);
    // A failed refresh leaves the known epoch list and cache serving.
    auto still = (*opened)->epoch_at(2000);
    ASSERT_TRUE(still);
    EXPECT_EQ((*opened)->epochs().size(), 3u);
  }
  // Disarmed: the previously failing epoch now materializes.
  auto recovered = (*opened)->materialize(3000);
  ASSERT_TRUE(recovered) << recovered.error().to_string();
}

TEST_F(CatalogFixture, OpenFaultFailsCleanly) {
  if (!fault::enabled()) GTEST_SKIP() << "fault injection compiled out";
  fault::ScopedFault fault_open("catalog.open", EACCES);
  EXPECT_FALSE(Catalog::open(dir));
}

// --- verify --------------------------------------------------------------

TEST_F(CatalogFixture, VerifyReportsBrokenChainsWithoutCrashing) {
  auto opened = Catalog::open(dir);
  ASSERT_TRUE(opened);
  auto clean = (*opened)->verify(/*deep=*/true);
  EXPECT_TRUE(clean.ok());
  ASSERT_EQ(clean.checks.size(), 3u);

  // Corrupt the middle delta: it AND the epoch chained on it go broken;
  // the full anchor stays healthy. verify never crashes.
  auto entries = read_index(dir);
  ASSERT_TRUE(entries);
  const std::string middle = dir + "/" + (*entries)[1].name;
  auto bytes = read_bytes(middle);
  bytes[bytes.size() / 2] ^= 0xFF;
  write_bytes(middle, bytes);

  auto report = (*opened)->verify();
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.broken, 2u);
  EXPECT_TRUE(report.checks[0].ok);
  EXPECT_FALSE(report.checks[1].ok);
  EXPECT_FALSE(report.checks[2].ok);
  EXPECT_FALSE(report.checks[1].detail.empty());
}

// --- differential byte-identity over a seeded timeline -------------------

TEST(CatalogDifferential, DeltaChainIsByteIdenticalToFullSnapshots) {
  // A 10-epoch evolving world: the catalog writes 1 full + 9 deltas (the
  // deltas are small relative to the anchor), and reconstructing any epoch
  // K through the chain re-encodes byte-identical to the full snapshot the
  // authoring path would have written for K directly.
  sim::WorldConfig config;
  config.scale = 0.02;
  config.seed = 1234;
  sim::EpochSeriesOptions options;
  options.epochs = 10;
  sim::EpochSeries series = sim::build_epoch_series(config, options);

  std::string dir = temp_dir("differential");
  remove_tree(dir);
  for (std::size_t k = 0; k < series.timestamps.size(); ++k) {
    auto entry =
        k == 0 ? catalog_init(dir, series.timestamps[k], series.inferences[k])
               : catalog_append(dir, series.timestamps[k],
                                series.inferences[k]);
    ASSERT_TRUE(entry) << entry.error().to_string();
    if (k > 0) EXPECT_EQ(entry->kind, EpochKind::kDelta) << "epoch " << k;
  }

  auto opened = Catalog::open(dir);
  ASSERT_TRUE(opened);
  for (std::size_t k = 0; k < series.timestamps.size(); ++k) {
    auto records = (*opened)->reconstruct(series.timestamps[k]);
    ASSERT_TRUE(records) << records.error().to_string();
    auto expected =
        snapshot::encode_snapshot(canonical_inferences(series.inferences[k]));
    auto chained = snapshot::encode_snapshot(*records);
    EXPECT_EQ(chained, expected)
        << "epoch " << series.timestamps[k] << " not byte-identical";

    // And the fast apply path answers exactly like a direct engine: the
    // patched aggregation columns (QueryEngine::create_patched) must
    // reproduce a from-scratch engine's STATS aggregate field-for-field,
    // including the incrementally maintained top-origin ranking.
    auto state = (*opened)->materialize(series.timestamps[k]);
    ASSERT_TRUE(state);
    EXPECT_EQ((*state)->snapshot().record_count(), records->size());

    std::string full_path = dir + "/full-" +
                            std::to_string(series.timestamps[k]) + ".snap";
    write_bytes(full_path, expected);
    auto fresh = serve::EngineState::load(full_path);
    ASSERT_TRUE(fresh) << fresh.error().to_string();
    auto got = (*state)->engine().aggregate();
    auto want = (*fresh)->engine().aggregate();
    for (std::size_t g = 0; g < want.groups.size(); ++g) {
      EXPECT_EQ(got.groups[g].records, want.groups[g].records)
          << "epoch " << series.timestamps[k] << " group " << g;
      EXPECT_EQ(got.groups[g].addresses, want.groups[g].addresses)
          << "epoch " << series.timestamps[k] << " group " << g;
    }
    EXPECT_EQ(got.rir_records, want.rir_records)
        << "epoch " << series.timestamps[k];
    EXPECT_EQ(got.leased_records, want.leased_records);
    EXPECT_EQ(got.leased_addresses, want.leased_addresses);
    EXPECT_EQ(got.top_origins, want.top_origins)
        << "epoch " << series.timestamps[k] << " origin ranking diverged";
  }
  remove_tree(dir);
}

}  // namespace
}  // namespace sublet::catalog
