#include "netbase/prefix_set.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace sublet {
namespace {

Prefix P(const char* s) { return *Prefix::parse(s); }

TEST(PrefixSet, ContainsAndCovers) {
  PrefixSet set;
  set.add(P("10.0.0.0/8"));
  set.add(P("192.0.2.0/24"));
  EXPECT_TRUE(set.contains(*Ipv4Addr::parse("10.1.2.3")));
  EXPECT_TRUE(set.contains(*Ipv4Addr::parse("192.0.2.255")));
  EXPECT_FALSE(set.contains(*Ipv4Addr::parse("192.0.3.0")));
  EXPECT_TRUE(set.covers(P("10.128.0.0/9")));
  EXPECT_FALSE(set.covers(P("192.0.2.0/23")));
}

TEST(PrefixSet, AddressCountDeduplicatesOverlap) {
  PrefixSet set;
  set.add(P("10.0.0.0/8"));
  set.add(P("10.1.0.0/16"));  // nested
  set.add(P("10.0.0.0/8"));   // duplicate
  set.add(P("192.0.2.0/24"));
  EXPECT_EQ(set.address_count(), (1u << 24) + 256u);
}

TEST(PrefixSet, AggregatedMergesAdjacentSiblings) {
  PrefixSet set;
  set.add(P("10.0.0.0/24"));
  set.add(P("10.0.1.0/24"));
  auto agg = set.aggregated();
  ASSERT_EQ(agg.size(), 1u);
  EXPECT_EQ(agg[0].to_string(), "10.0.0.0/23");
}

TEST(PrefixSet, AggregatedAbsorbsNested) {
  PrefixSet set;
  set.add(P("10.0.0.0/16"));
  set.add(P("10.0.3.0/24"));
  auto agg = set.aggregated();
  ASSERT_EQ(agg.size(), 1u);
  EXPECT_EQ(agg[0].to_string(), "10.0.0.0/16");
}

TEST(PrefixSet, AggregatedKeepsNonMergeableApart) {
  PrefixSet set;
  // Adjacent but misaligned: 10.0.1.0/24 + 10.0.2.0/24 cannot merge into
  // one CIDR block.
  set.add(P("10.0.1.0/24"));
  set.add(P("10.0.2.0/24"));
  auto agg = set.aggregated();
  ASSERT_EQ(agg.size(), 2u);
  EXPECT_EQ(agg[0].to_string(), "10.0.1.0/24");
  EXPECT_EQ(agg[1].to_string(), "10.0.2.0/24");
}

TEST(PrefixSet, Empty) {
  PrefixSet set;
  EXPECT_TRUE(set.empty());
  EXPECT_EQ(set.address_count(), 0u);
  EXPECT_TRUE(set.aggregated().empty());
  EXPECT_FALSE(set.contains(Ipv4Addr(0)));
  EXPECT_FALSE(set.covers(P("0.0.0.0/0")));
}

// Property: aggregated() preserves the union exactly.
class PrefixSetProperty : public testing::TestWithParam<std::uint64_t> {};

TEST_P(PrefixSetProperty, AggregationPreservesUnion) {
  Rng rng(GetParam());
  PrefixSet set;
  std::vector<Prefix> members;
  for (int i = 0; i < 120; ++i) {
    int len = static_cast<int>(rng.next_in(10, 26));
    auto prefix = *Prefix::make(
        Ipv4Addr(static_cast<std::uint32_t>(rng.next_u64())), len);
    set.add(prefix);
    members.push_back(prefix);
  }
  auto agg = set.aggregated();
  // Same address count.
  PrefixSet reagg;
  for (const Prefix& p : agg) reagg.add(p);
  EXPECT_EQ(reagg.address_count(), set.address_count());
  // Aggregated members are sorted and mutually non-overlapping.
  for (std::size_t i = 1; i < agg.size(); ++i) {
    EXPECT_GT(agg[i].first().value(), agg[i - 1].last().value());
  }
  // Sampled membership agrees with a brute-force check.
  for (int q = 0; q < 300; ++q) {
    Ipv4Addr addr(static_cast<std::uint32_t>(rng.next_u64()));
    bool brute = false;
    for (const Prefix& p : members) {
      if (p.contains(addr)) brute = true;
    }
    EXPECT_EQ(set.contains(addr), brute) << addr.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrefixSetProperty,
                         testing::Values(41, 42, 43));

TEST(PrefixSet, CachedIntervalsInvalidateOnAdd) {
  PrefixSet set;
  set.add(*Prefix::parse("10.0.0.0/8"));
  // Query once to populate the interval cache, then mutate and re-query:
  // results must reflect the new member, not the cached merge.
  EXPECT_TRUE(set.contains(*Ipv4Addr::parse("10.1.2.3")));
  EXPECT_FALSE(set.contains(*Ipv4Addr::parse("192.0.2.1")));
  EXPECT_EQ(set.address_count(), std::uint64_t{1} << 24);
  set.add(*Prefix::parse("192.0.2.0/24"));
  EXPECT_TRUE(set.contains(*Ipv4Addr::parse("192.0.2.1")));
  EXPECT_TRUE(set.covers(*Prefix::parse("192.0.2.128/25")));
  EXPECT_EQ(set.address_count(), (std::uint64_t{1} << 24) + 256);
  EXPECT_EQ(set.aggregated().size(), 2u);
}

}  // namespace
}  // namespace sublet
