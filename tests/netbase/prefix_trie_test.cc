#include "netbase/prefix_trie.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "netbase/legacy_prefix_trie.h"
#include "util/rng.h"

namespace sublet {
namespace {

Prefix P(const char* s) { return *Prefix::parse(s); }

// Covering queries return (Prefix, const T*) pairs; deref the pointers so
// results from two different tries compare by value, not by address.
std::optional<std::pair<Prefix, int>> deref(
    const std::optional<std::pair<Prefix, const int*>>& hit) {
  if (!hit) return std::nullopt;
  return std::pair<Prefix, int>{hit->first, *hit->second};
}
std::vector<std::pair<Prefix, int>> deref(
    const std::vector<std::pair<Prefix, const int*>>& hits) {
  std::vector<std::pair<Prefix, int>> out;
  for (const auto& [p, v] : hits) out.emplace_back(p, *v);
  return out;
}

TEST(PrefixTrie, InsertAndFindExact) {
  PrefixTrie<std::string> trie;
  trie.insert(P("10.0.0.0/8"), "a");
  trie.insert(P("10.0.0.0/16"), "b");
  EXPECT_EQ(*trie.find(P("10.0.0.0/8")), "a");
  EXPECT_EQ(*trie.find(P("10.0.0.0/16")), "b");
  EXPECT_EQ(trie.find(P("10.0.0.0/12")), nullptr);
  EXPECT_EQ(trie.size(), 2u);
}

TEST(PrefixTrie, InsertOverwrites) {
  PrefixTrie<int> trie;
  trie.insert(P("10.0.0.0/8"), 1);
  trie.insert(P("10.0.0.0/8"), 2);
  EXPECT_EQ(*trie.find(P("10.0.0.0/8")), 2);
  EXPECT_EQ(trie.size(), 1u);
}

TEST(PrefixTrie, DefaultRouteEntry) {
  PrefixTrie<int> trie;
  trie.insert(*Prefix::make(Ipv4Addr(0), 0), 99);
  auto hit = trie.most_specific_covering(P("203.0.113.0/24"));
  ASSERT_TRUE(hit);
  EXPECT_EQ(hit->first.length(), 0);
  EXPECT_EQ(*hit->second, 99);
}

TEST(PrefixTrie, MostSpecificCovering) {
  PrefixTrie<std::string> trie;
  trie.insert(P("213.210.0.0/18"), "root");
  trie.insert(P("213.210.32.0/19"), "mid");
  auto hit = trie.most_specific_covering(P("213.210.33.0/24"));
  ASSERT_TRUE(hit);
  EXPECT_EQ(*hit->second, "mid");
  EXPECT_EQ(hit->first.to_string(), "213.210.32.0/19");
}

TEST(PrefixTrie, MostSpecificCoveringIncludesExact) {
  PrefixTrie<std::string> trie;
  trie.insert(P("213.210.33.0/24"), "exact");
  trie.insert(P("213.210.0.0/18"), "root");
  auto hit = trie.most_specific_covering(P("213.210.33.0/24"));
  ASSERT_TRUE(hit);
  EXPECT_EQ(*hit->second, "exact");
}

TEST(PrefixTrie, LeastSpecificCovering) {
  PrefixTrie<std::string> trie;
  trie.insert(P("213.210.0.0/18"), "root");
  trie.insert(P("213.210.32.0/19"), "mid");
  trie.insert(P("213.210.33.0/24"), "leaf");
  auto hit = trie.least_specific_covering(P("213.210.33.0/24"));
  ASSERT_TRUE(hit);
  EXPECT_EQ(*hit->second, "root");
  EXPECT_EQ(hit->first.to_string(), "213.210.0.0/18");
}

TEST(PrefixTrie, CoveringMissesSiblings) {
  PrefixTrie<int> trie;
  trie.insert(P("213.210.32.0/24"), 1);
  EXPECT_FALSE(trie.most_specific_covering(P("213.210.33.0/24")));
  EXPECT_FALSE(trie.least_specific_covering(P("213.210.33.0/24")));
}

TEST(PrefixTrie, AllCoveringOrder) {
  PrefixTrie<int> trie;
  trie.insert(P("0.0.0.0/0"), 0);
  trie.insert(P("213.192.0.0/10"), 10);
  trie.insert(P("213.210.0.0/18"), 18);
  trie.insert(P("213.210.33.0/24"), 24);
  auto hits = trie.all_covering(P("213.210.33.0/24"));
  ASSERT_EQ(hits.size(), 4u);
  EXPECT_EQ(*hits[0].second, 0);
  EXPECT_EQ(*hits[1].second, 10);
  EXPECT_EQ(*hits[2].second, 18);
  EXPECT_EQ(*hits[3].second, 24);
}

TEST(PrefixTrie, Descendants) {
  PrefixTrie<int> trie;
  trie.insert(P("213.210.0.0/18"), 1);
  trie.insert(P("213.210.2.0/23"), 2);
  trie.insert(P("213.210.33.0/24"), 3);
  trie.insert(P("10.0.0.0/8"), 4);
  auto desc = trie.descendants(P("213.210.0.0/18"));
  ASSERT_EQ(desc.size(), 2u);
  EXPECT_EQ(*desc[0].second, 2);
  EXPECT_EQ(*desc[1].second, 3);
}

TEST(PrefixTrie, RootsAndLeaves) {
  // Mirror of the paper's Figure 2 allocation tree.
  PrefixTrie<std::string> trie;
  trie.insert(P("213.210.0.0/18"), "holder");       // portable root
  trie.insert(P("213.210.2.0/23"), "customer");     // leaf
  trie.insert(P("213.210.32.0/19"), "intermediate");
  trie.insert(P("213.210.33.0/24"), "ipxo-leased"); // leaf under intermediate
  trie.insert(P("198.51.100.0/24"), "lone");        // root that is also a leaf

  auto roots = trie.roots();
  ASSERT_EQ(roots.size(), 2u);
  EXPECT_EQ(roots[0].first.to_string(), "198.51.100.0/24");
  EXPECT_EQ(roots[1].first.to_string(), "213.210.0.0/18");

  auto leaves = trie.leaves();
  ASSERT_EQ(leaves.size(), 3u);
  EXPECT_EQ(*leaves[0].second, "lone");
  EXPECT_EQ(*leaves[1].second, "customer");
  EXPECT_EQ(*leaves[2].second, "ipxo-leased");
}

TEST(PrefixTrie, VisitInAddressOrder) {
  PrefixTrie<int> trie;
  trie.insert(P("192.0.2.0/24"), 3);
  trie.insert(P("10.0.0.0/8"), 1);
  trie.insert(P("172.16.0.0/12"), 2);
  std::vector<int> order;
  trie.visit([&](const Prefix&, const int& v) { order.push_back(v); });
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(PrefixTrie, VisitLessSpecificBeforeMoreSpecific) {
  PrefixTrie<int> trie;
  trie.insert(P("10.0.0.0/16"), 2);
  trie.insert(P("10.0.0.0/8"), 1);
  std::vector<int> order;
  trie.visit([&](const Prefix&, const int& v) { order.push_back(v); });
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(PrefixTrie, EmptyTrieQueries) {
  PrefixTrie<int> trie;
  EXPECT_TRUE(trie.empty());
  EXPECT_FALSE(trie.most_specific_covering(P("10.0.0.0/8")));
  EXPECT_TRUE(trie.roots().empty());
  EXPECT_TRUE(trie.leaves().empty());
  EXPECT_TRUE(trie.descendants(P("0.0.0.0/0")).empty());
}

TEST(PrefixTrie, SlashZeroIsUniversalCover) {
  PrefixTrie<int> trie;
  trie.insert(P("0.0.0.0/0"), 1);
  trie.insert(P("213.210.0.0/18"), 2);
  for (const char* q : {"0.0.0.0/32", "255.255.255.255/32", "10.0.0.0/8",
                        "213.210.33.0/24", "0.0.0.0/0"}) {
    auto least = trie.least_specific_covering(P(q));
    ASSERT_TRUE(least) << q;
    EXPECT_EQ(least->first.length(), 0) << q;
    EXPECT_EQ(*least->second, 1) << q;
  }
  // /0 is also in every all_covering chain, first.
  auto chain = trie.all_covering(P("213.210.32.0/20"));
  ASSERT_EQ(chain.size(), 2u);
  EXPECT_EQ(*chain[0].second, 1);
  EXPECT_EQ(*chain[1].second, 2);
}

TEST(PrefixTrie, HostRoutesAtAddressSpaceEdges) {
  PrefixTrie<std::string> trie;
  trie.insert(P("0.0.0.0/32"), "zero");
  trie.insert(P("255.255.255.255/32"), "ones");
  EXPECT_EQ(*trie.find(P("0.0.0.0/32")), "zero");
  EXPECT_EQ(*trie.find(P("255.255.255.255/32")), "ones");
  EXPECT_EQ(trie.find(P("128.0.0.0/32")), nullptr);
  auto hit = trie.most_specific_covering(P("255.255.255.255/32"));
  ASSERT_TRUE(hit);
  EXPECT_EQ(*hit->second, "ones");
  // Address-order visit: 0.0.0.0/32 first, 255.255.255.255/32 last.
  std::vector<std::string> order;
  trie.visit([&](const Prefix&, const std::string& v) { order.push_back(v); });
  EXPECT_EQ(order, (std::vector<std::string>{"zero", "ones"}));
  auto leaves = trie.leaves();
  ASSERT_EQ(leaves.size(), 2u);
  EXPECT_EQ(leaves[0].first.to_string(), "0.0.0.0/32");
  EXPECT_EQ(leaves[1].first.to_string(), "255.255.255.255/32");
}

TEST(PrefixTrie, DescendantsExcludeQueryPrefix) {
  PrefixTrie<int> trie;
  trie.insert(P("213.210.0.0/18"), 1);  // valued at the query itself
  trie.insert(P("213.210.2.0/23"), 2);
  auto desc = trie.descendants(P("213.210.0.0/18"));
  ASSERT_EQ(desc.size(), 1u);
  EXPECT_EQ(*desc[0].second, 2);
  // Also when the query prefix has no node of its own (mid-edge query).
  auto mid = trie.descendants(P("213.210.0.0/16"));
  ASSERT_EQ(mid.size(), 2u);
  EXPECT_EQ(*mid[0].second, 1);
  EXPECT_EQ(*mid[1].second, 2);
  // Sibling space: no descendants.
  EXPECT_TRUE(trie.descendants(P("213.211.0.0/16")).empty());
}

// Regression for the old collect_leaves O(n²) shape: a deep chain where
// every node on the path is valued must yield exactly the deepest entry,
// in one linear pass.
TEST(PrefixTrie, LeavesDeepValuedChain) {
  PrefixTrie<int> trie;
  std::uint32_t base = 0x0A000000;  // 10.0.0.0
  for (int len = 8; len <= 32; ++len) {
    trie.insert(*Prefix::make(Ipv4Addr(base), len), len);
  }
  auto leaves = trie.leaves();
  ASSERT_EQ(leaves.size(), 1u);
  EXPECT_EQ(leaves[0].first.length(), 32);
  EXPECT_EQ(*leaves[0].second, 32);
  auto roots = trie.roots();
  ASSERT_EQ(roots.size(), 1u);
  EXPECT_EQ(roots[0].first.length(), 8);
  // Many deep valued chains side by side stay address-ordered.
  for (std::uint32_t i = 0; i < 64; ++i) {
    std::uint32_t net = 0xC0000000 | (i << 16);  // 192.i/16 chains
    for (int len = 16; len <= 24; ++len) {
      trie.insert(*Prefix::make(Ipv4Addr(net), len), static_cast<int>(i));
    }
  }
  leaves = trie.leaves();
  ASSERT_EQ(leaves.size(), 65u);
  for (std::size_t i = 1; i < leaves.size(); ++i) {
    EXPECT_LT(leaves[i - 1].first, leaves[i].first);
  }
}

TEST(PrefixTrie, FreezeMatchesIncrementalConstruction) {
  std::vector<std::pair<Prefix, int>> entries = {
      {P("213.210.0.0/18"), 1},  {P("213.210.2.0/23"), 2},
      {P("213.210.32.0/19"), 3}, {P("213.210.33.0/24"), 4},
      {P("198.51.100.0/24"), 5}, {P("0.0.0.0/0"), 6},
      {P("10.0.0.0/8"), 7},      {P("10.128.0.0/9"), 8},
  };
  PrefixTrie<int> incremental;
  for (const auto& [p, v] : entries) incremental.insert(p, v);
  auto frozen = PrefixTrie<int>::freeze(entries);

  EXPECT_EQ(frozen.size(), incremental.size());
  auto dump = [](const PrefixTrie<int>& t) {
    std::vector<std::pair<Prefix, int>> out;
    t.visit([&](const Prefix& p, const int& v) { out.emplace_back(p, v); });
    return out;
  };
  EXPECT_EQ(dump(frozen), dump(incremental));
  auto pairs = [](const std::vector<std::pair<Prefix, const int*>>& v) {
    std::vector<std::pair<Prefix, int>> out;
    for (const auto& [p, ptr] : v) out.emplace_back(p, *ptr);
    return out;
  };
  EXPECT_EQ(pairs(frozen.roots()), pairs(incremental.roots()));
  EXPECT_EQ(pairs(frozen.leaves()), pairs(incremental.leaves()));
  for (const auto& [p, v] : entries) {
    ASSERT_NE(frozen.find(p), nullptr);
    EXPECT_EQ(*frozen.find(p), v);
  }
}

TEST(PrefixTrie, FreezeDuplicateKeepsLast) {
  std::vector<std::pair<Prefix, int>> entries = {
      {P("10.0.0.0/8"), 1}, {P("192.0.2.0/24"), 2}, {P("10.0.0.0/8"), 3}};
  auto trie = PrefixTrie<int>::freeze(entries);
  EXPECT_EQ(trie.size(), 2u);
  EXPECT_EQ(*trie.find(P("10.0.0.0/8")), 3);
}

TEST(PrefixTrie, InsertAfterFreezeInvalidatesJumpTable) {
  // freeze() enables the level-compressed covering fast path; a later
  // insert must not serve covering queries from the stale table.
  auto trie = PrefixTrie<int>::freeze(
      {{P("10.0.0.0/8"), 1}, {P("10.20.30.0/24"), 2}});
  auto q = P("10.20.30.40/32");
  ASSERT_TRUE(trie.most_specific_covering(q));
  EXPECT_EQ(*trie.most_specific_covering(q)->second, 2);
  trie.insert(P("10.20.30.40/31"), 3);   // deeper than the frozen entries
  trie.insert(P("0.0.0.0/0"), 4);        // shallower than all of them
  EXPECT_EQ(*trie.most_specific_covering(q)->second, 3);
  EXPECT_EQ(*trie.least_specific_covering(q)->second, 4);
  trie.build_jump_table();  // re-enable the fast path; answers must hold
  EXPECT_EQ(*trie.most_specific_covering(q)->second, 3);
  EXPECT_EQ(*trie.least_specific_covering(q)->second, 4);
}

// Property: incremental insert and bulk freeze agree on the whole query
// surface for random entry sets.
class TrieFreezeProperty : public testing::TestWithParam<std::uint64_t> {};

TEST_P(TrieFreezeProperty, FreezeEquivalentToInsert) {
  Rng rng(GetParam());
  PrefixTrie<int> incremental;
  std::vector<std::pair<Prefix, int>> entries;
  for (int i = 0; i < 400; ++i) {
    int len = static_cast<int>(rng.next_in(0, 32));
    auto p = *Prefix::make(Ipv4Addr(static_cast<std::uint32_t>(rng.next_u64())),
                           len);
    incremental.insert(p, i);
    entries.emplace_back(p, i);
  }
  auto frozen = PrefixTrie<int>::freeze(entries);
  EXPECT_EQ(frozen.size(), incremental.size());
  EXPECT_EQ(frozen.node_count(), incremental.node_count());

  std::vector<std::pair<Prefix, int>> a, b;
  incremental.visit([&](const Prefix& p, const int& v) { a.emplace_back(p, v); });
  frozen.visit([&](const Prefix& p, const int& v) { b.emplace_back(p, v); });
  EXPECT_EQ(a, b);

  auto keys = [](const std::vector<std::pair<Prefix, const int*>>& v) {
    std::vector<Prefix> out;
    for (const auto& [p, ptr] : v) out.push_back(p);
    return out;
  };
  EXPECT_EQ(keys(frozen.roots()), keys(incremental.roots()));
  EXPECT_EQ(keys(frozen.leaves()), keys(incremental.leaves()));

  for (int q = 0; q < 200; ++q) {
    int len = static_cast<int>(rng.next_in(0, 32));
    auto query = *Prefix::make(
        Ipv4Addr(static_cast<std::uint32_t>(rng.next_u64())), len);
    auto fi = frozen.find(query);
    auto ii = incremental.find(query);
    ASSERT_EQ(fi != nullptr, ii != nullptr);
    if (fi) EXPECT_EQ(*fi, *ii);
    EXPECT_EQ(deref(frozen.most_specific_covering(query)),
              deref(incremental.most_specific_covering(query)));
    EXPECT_EQ(deref(frozen.least_specific_covering(query)),
              deref(incremental.least_specific_covering(query)));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrieFreezeProperty,
                         testing::Values(7, 77, 777));

// Differential property: the arena trie agrees with the retained legacy
// one-node-per-bit trie on every query type, for random workloads.
class TrieLegacyDifferential : public testing::TestWithParam<std::uint64_t> {};

TEST_P(TrieLegacyDifferential, MatchesLegacyTrie) {
  Rng rng(GetParam());
  PrefixTrie<int> trie;
  LegacyPrefixTrie<int> legacy;
  for (int i = 0; i < 300; ++i) {
    int len = static_cast<int>(rng.next_in(0, 30));
    auto p = *Prefix::make(Ipv4Addr(static_cast<std::uint32_t>(rng.next_u64())),
                           len);
    trie.insert(p, i);
    legacy.insert(p, i);
  }
  ASSERT_EQ(trie.size(), legacy.size());

  std::vector<std::pair<Prefix, int>> a, b;
  trie.visit([&](const Prefix& p, const int& v) { a.emplace_back(p, v); });
  legacy.visit([&](const Prefix& p, const int& v) { b.emplace_back(p, v); });
  EXPECT_EQ(a, b);

  auto keys = [](const std::vector<std::pair<Prefix, const int*>>& v) {
    std::vector<Prefix> out;
    for (const auto& [p, ptr] : v) out.push_back(p);
    return out;
  };
  EXPECT_EQ(keys(trie.roots()), keys(legacy.roots()));
  EXPECT_EQ(keys(trie.leaves()), keys(legacy.leaves()));

  for (int q = 0; q < 300; ++q) {
    int len = static_cast<int>(rng.next_in(0, 32));
    auto query = *Prefix::make(
        Ipv4Addr(static_cast<std::uint32_t>(rng.next_u64())), len);
    EXPECT_EQ(deref(trie.most_specific_covering(query)),
              deref(legacy.most_specific_covering(query)));
    EXPECT_EQ(deref(trie.least_specific_covering(query)),
              deref(legacy.least_specific_covering(query)));
    EXPECT_EQ(deref(trie.all_covering(query)), deref(legacy.all_covering(query)));
    EXPECT_EQ(keys(trie.descendants(query)), keys(legacy.descendants(query)));
  }
  // The arena layout should be dramatically smaller than the per-bit heap
  // trie for the same entries.
  EXPECT_LT(trie.memory_bytes() * 2, legacy.memory_bytes());
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrieLegacyDifferential,
                         testing::Values(13, 29, 31337));

// Property: for random entry sets, most_specific_covering agrees with a
// brute-force scan.
class TrieLookupProperty : public testing::TestWithParam<std::uint64_t> {};

TEST_P(TrieLookupProperty, MatchesBruteForce) {
  Rng rng(GetParam());
  PrefixTrie<int> trie;
  std::vector<Prefix> entries;
  for (int i = 0; i < 300; ++i) {
    int len = static_cast<int>(rng.next_in(8, 28));
    auto p = *Prefix::make(Ipv4Addr(static_cast<std::uint32_t>(rng.next_u64())),
                           len);
    trie.insert(p, i);
    entries.push_back(p);
  }
  for (int q = 0; q < 200; ++q) {
    int len = static_cast<int>(rng.next_in(16, 32));
    auto query = *Prefix::make(
        Ipv4Addr(static_cast<std::uint32_t>(rng.next_u64())), len);

    std::optional<Prefix> best_most, best_least;
    for (const auto& e : entries) {
      if (!e.covers(query)) continue;
      if (!best_most || e.length() > best_most->length()) best_most = e;
      if (!best_least || e.length() < best_least->length()) best_least = e;
    }
    auto got_most = trie.most_specific_covering(query);
    auto got_least = trie.least_specific_covering(query);
    EXPECT_EQ(got_most.has_value(), best_most.has_value());
    EXPECT_EQ(got_least.has_value(), best_least.has_value());
    if (best_most && got_most) EXPECT_EQ(got_most->first, *best_most);
    if (best_least && got_least) EXPECT_EQ(got_least->first, *best_least);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrieLookupProperty,
                         testing::Values(101, 202, 303, 404, 505));

// Property: roots() and leaves() partition consistently with covers().
class TrieForestProperty : public testing::TestWithParam<std::uint64_t> {};

TEST_P(TrieForestProperty, RootsCoverAllLeavesAreUncovered) {
  Rng rng(GetParam());
  PrefixTrie<int> trie;
  std::vector<Prefix> entries;
  for (int i = 0; i < 200; ++i) {
    int len = static_cast<int>(rng.next_in(8, 24));
    auto p = *Prefix::make(Ipv4Addr(static_cast<std::uint32_t>(rng.next_u64())),
                           len);
    if (!trie.find(p)) {
      trie.insert(p, i);
      entries.push_back(p);
    }
  }
  auto roots = trie.roots();
  auto leaves = trie.leaves();

  // Every entry is covered by exactly one root.
  for (const auto& e : entries) {
    int covering_roots = 0;
    for (const auto& [rp, rv] : roots) {
      if (rp.covers(e)) ++covering_roots;
    }
    EXPECT_EQ(covering_roots, 1) << e.to_string();
  }
  // No leaf strictly covers another entry.
  for (const auto& [lp, lv] : leaves) {
    for (const auto& e : entries) {
      if (e != lp) EXPECT_FALSE(lp.covers(e)) << lp.to_string() << " covers "
                                              << e.to_string();
    }
  }
  // Roots are mutually non-covering.
  for (const auto& [a, av] : roots) {
    for (const auto& [b, bv] : roots) {
      if (a != b) EXPECT_FALSE(a.covers(b));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrieForestProperty,
                         testing::Values(11, 22, 33, 44));

}  // namespace
}  // namespace sublet
