#include "netbase/prefix_trie.h"

#include <gtest/gtest.h>

#include <string>

#include "util/rng.h"

namespace sublet {
namespace {

Prefix P(const char* s) { return *Prefix::parse(s); }

TEST(PrefixTrie, InsertAndFindExact) {
  PrefixTrie<std::string> trie;
  trie.insert(P("10.0.0.0/8"), "a");
  trie.insert(P("10.0.0.0/16"), "b");
  EXPECT_EQ(*trie.find(P("10.0.0.0/8")), "a");
  EXPECT_EQ(*trie.find(P("10.0.0.0/16")), "b");
  EXPECT_EQ(trie.find(P("10.0.0.0/12")), nullptr);
  EXPECT_EQ(trie.size(), 2u);
}

TEST(PrefixTrie, InsertOverwrites) {
  PrefixTrie<int> trie;
  trie.insert(P("10.0.0.0/8"), 1);
  trie.insert(P("10.0.0.0/8"), 2);
  EXPECT_EQ(*trie.find(P("10.0.0.0/8")), 2);
  EXPECT_EQ(trie.size(), 1u);
}

TEST(PrefixTrie, DefaultRouteEntry) {
  PrefixTrie<int> trie;
  trie.insert(*Prefix::make(Ipv4Addr(0), 0), 99);
  auto hit = trie.most_specific_covering(P("203.0.113.0/24"));
  ASSERT_TRUE(hit);
  EXPECT_EQ(hit->first.length(), 0);
  EXPECT_EQ(*hit->second, 99);
}

TEST(PrefixTrie, MostSpecificCovering) {
  PrefixTrie<std::string> trie;
  trie.insert(P("213.210.0.0/18"), "root");
  trie.insert(P("213.210.32.0/19"), "mid");
  auto hit = trie.most_specific_covering(P("213.210.33.0/24"));
  ASSERT_TRUE(hit);
  EXPECT_EQ(*hit->second, "mid");
  EXPECT_EQ(hit->first.to_string(), "213.210.32.0/19");
}

TEST(PrefixTrie, MostSpecificCoveringIncludesExact) {
  PrefixTrie<std::string> trie;
  trie.insert(P("213.210.33.0/24"), "exact");
  trie.insert(P("213.210.0.0/18"), "root");
  auto hit = trie.most_specific_covering(P("213.210.33.0/24"));
  ASSERT_TRUE(hit);
  EXPECT_EQ(*hit->second, "exact");
}

TEST(PrefixTrie, LeastSpecificCovering) {
  PrefixTrie<std::string> trie;
  trie.insert(P("213.210.0.0/18"), "root");
  trie.insert(P("213.210.32.0/19"), "mid");
  trie.insert(P("213.210.33.0/24"), "leaf");
  auto hit = trie.least_specific_covering(P("213.210.33.0/24"));
  ASSERT_TRUE(hit);
  EXPECT_EQ(*hit->second, "root");
  EXPECT_EQ(hit->first.to_string(), "213.210.0.0/18");
}

TEST(PrefixTrie, CoveringMissesSiblings) {
  PrefixTrie<int> trie;
  trie.insert(P("213.210.32.0/24"), 1);
  EXPECT_FALSE(trie.most_specific_covering(P("213.210.33.0/24")));
  EXPECT_FALSE(trie.least_specific_covering(P("213.210.33.0/24")));
}

TEST(PrefixTrie, AllCoveringOrder) {
  PrefixTrie<int> trie;
  trie.insert(P("0.0.0.0/0"), 0);
  trie.insert(P("213.192.0.0/10"), 10);
  trie.insert(P("213.210.0.0/18"), 18);
  trie.insert(P("213.210.33.0/24"), 24);
  auto hits = trie.all_covering(P("213.210.33.0/24"));
  ASSERT_EQ(hits.size(), 4u);
  EXPECT_EQ(*hits[0].second, 0);
  EXPECT_EQ(*hits[1].second, 10);
  EXPECT_EQ(*hits[2].second, 18);
  EXPECT_EQ(*hits[3].second, 24);
}

TEST(PrefixTrie, Descendants) {
  PrefixTrie<int> trie;
  trie.insert(P("213.210.0.0/18"), 1);
  trie.insert(P("213.210.2.0/23"), 2);
  trie.insert(P("213.210.33.0/24"), 3);
  trie.insert(P("10.0.0.0/8"), 4);
  auto desc = trie.descendants(P("213.210.0.0/18"));
  ASSERT_EQ(desc.size(), 2u);
  EXPECT_EQ(*desc[0].second, 2);
  EXPECT_EQ(*desc[1].second, 3);
}

TEST(PrefixTrie, RootsAndLeaves) {
  // Mirror of the paper's Figure 2 allocation tree.
  PrefixTrie<std::string> trie;
  trie.insert(P("213.210.0.0/18"), "holder");       // portable root
  trie.insert(P("213.210.2.0/23"), "customer");     // leaf
  trie.insert(P("213.210.32.0/19"), "intermediate");
  trie.insert(P("213.210.33.0/24"), "ipxo-leased"); // leaf under intermediate
  trie.insert(P("198.51.100.0/24"), "lone");        // root that is also a leaf

  auto roots = trie.roots();
  ASSERT_EQ(roots.size(), 2u);
  EXPECT_EQ(roots[0].first.to_string(), "198.51.100.0/24");
  EXPECT_EQ(roots[1].first.to_string(), "213.210.0.0/18");

  auto leaves = trie.leaves();
  ASSERT_EQ(leaves.size(), 3u);
  EXPECT_EQ(*leaves[0].second, "lone");
  EXPECT_EQ(*leaves[1].second, "customer");
  EXPECT_EQ(*leaves[2].second, "ipxo-leased");
}

TEST(PrefixTrie, VisitInAddressOrder) {
  PrefixTrie<int> trie;
  trie.insert(P("192.0.2.0/24"), 3);
  trie.insert(P("10.0.0.0/8"), 1);
  trie.insert(P("172.16.0.0/12"), 2);
  std::vector<int> order;
  trie.visit([&](const Prefix&, const int& v) { order.push_back(v); });
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(PrefixTrie, VisitLessSpecificBeforeMoreSpecific) {
  PrefixTrie<int> trie;
  trie.insert(P("10.0.0.0/16"), 2);
  trie.insert(P("10.0.0.0/8"), 1);
  std::vector<int> order;
  trie.visit([&](const Prefix&, const int& v) { order.push_back(v); });
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(PrefixTrie, EmptyTrieQueries) {
  PrefixTrie<int> trie;
  EXPECT_TRUE(trie.empty());
  EXPECT_FALSE(trie.most_specific_covering(P("10.0.0.0/8")));
  EXPECT_TRUE(trie.roots().empty());
  EXPECT_TRUE(trie.leaves().empty());
  EXPECT_TRUE(trie.descendants(P("0.0.0.0/0")).empty());
}

// Property: for random entry sets, most_specific_covering agrees with a
// brute-force scan.
class TrieLookupProperty : public testing::TestWithParam<std::uint64_t> {};

TEST_P(TrieLookupProperty, MatchesBruteForce) {
  Rng rng(GetParam());
  PrefixTrie<int> trie;
  std::vector<Prefix> entries;
  for (int i = 0; i < 300; ++i) {
    int len = static_cast<int>(rng.next_in(8, 28));
    auto p = *Prefix::make(Ipv4Addr(static_cast<std::uint32_t>(rng.next_u64())),
                           len);
    trie.insert(p, i);
    entries.push_back(p);
  }
  for (int q = 0; q < 200; ++q) {
    int len = static_cast<int>(rng.next_in(16, 32));
    auto query = *Prefix::make(
        Ipv4Addr(static_cast<std::uint32_t>(rng.next_u64())), len);

    std::optional<Prefix> best_most, best_least;
    for (const auto& e : entries) {
      if (!e.covers(query)) continue;
      if (!best_most || e.length() > best_most->length()) best_most = e;
      if (!best_least || e.length() < best_least->length()) best_least = e;
    }
    auto got_most = trie.most_specific_covering(query);
    auto got_least = trie.least_specific_covering(query);
    EXPECT_EQ(got_most.has_value(), best_most.has_value());
    EXPECT_EQ(got_least.has_value(), best_least.has_value());
    if (best_most && got_most) EXPECT_EQ(got_most->first, *best_most);
    if (best_least && got_least) EXPECT_EQ(got_least->first, *best_least);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrieLookupProperty,
                         testing::Values(101, 202, 303, 404, 505));

// Property: roots() and leaves() partition consistently with covers().
class TrieForestProperty : public testing::TestWithParam<std::uint64_t> {};

TEST_P(TrieForestProperty, RootsCoverAllLeavesAreUncovered) {
  Rng rng(GetParam());
  PrefixTrie<int> trie;
  std::vector<Prefix> entries;
  for (int i = 0; i < 200; ++i) {
    int len = static_cast<int>(rng.next_in(8, 24));
    auto p = *Prefix::make(Ipv4Addr(static_cast<std::uint32_t>(rng.next_u64())),
                           len);
    if (!trie.find(p)) {
      trie.insert(p, i);
      entries.push_back(p);
    }
  }
  auto roots = trie.roots();
  auto leaves = trie.leaves();

  // Every entry is covered by exactly one root.
  for (const auto& e : entries) {
    int covering_roots = 0;
    for (const auto& [rp, rv] : roots) {
      if (rp.covers(e)) ++covering_roots;
    }
    EXPECT_EQ(covering_roots, 1) << e.to_string();
  }
  // No leaf strictly covers another entry.
  for (const auto& [lp, lv] : leaves) {
    for (const auto& e : entries) {
      if (e != lp) EXPECT_FALSE(lp.covers(e)) << lp.to_string() << " covers "
                                              << e.to_string();
    }
  }
  // Roots are mutually non-covering.
  for (const auto& [a, av] : roots) {
    for (const auto& [b, bv] : roots) {
      if (a != b) EXPECT_FALSE(a.covers(b));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrieForestProperty,
                         testing::Values(11, 22, 33, 44));

}  // namespace
}  // namespace sublet
