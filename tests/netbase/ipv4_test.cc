#include "netbase/ipv4.h"

#include <gtest/gtest.h>

namespace sublet {
namespace {

TEST(Ipv4Parse, Valid) {
  EXPECT_EQ(Ipv4Addr::parse("0.0.0.0")->value(), 0u);
  EXPECT_EQ(Ipv4Addr::parse("255.255.255.255")->value(), 0xFFFFFFFFu);
  EXPECT_EQ(Ipv4Addr::parse("213.210.0.0")->value(), 0xD5D20000u);
  EXPECT_EQ(Ipv4Addr::parse("1.2.3.4")->value(), 0x01020304u);
}

TEST(Ipv4Parse, RejectsMalformed) {
  EXPECT_FALSE(Ipv4Addr::parse(""));
  EXPECT_FALSE(Ipv4Addr::parse("1.2.3"));
  EXPECT_FALSE(Ipv4Addr::parse("1.2.3.4.5"));
  EXPECT_FALSE(Ipv4Addr::parse("256.0.0.1"));
  EXPECT_FALSE(Ipv4Addr::parse("1.2.3.4 "));
  EXPECT_FALSE(Ipv4Addr::parse("1..3.4"));
  EXPECT_FALSE(Ipv4Addr::parse("1.2.3."));
  EXPECT_FALSE(Ipv4Addr::parse("a.b.c.d"));
  EXPECT_FALSE(Ipv4Addr::parse("0001.2.3.4"));
}

TEST(Ipv4RoundTrip, ParseFormat) {
  for (const char* s : {"0.0.0.0", "10.0.0.1", "192.168.255.254",
                        "255.255.255.255", "213.210.33.0"}) {
    auto a = Ipv4Addr::parse(s);
    ASSERT_TRUE(a) << s;
    EXPECT_EQ(a->to_string(), s);
  }
}

TEST(Ipv4Ordering, Numeric) {
  EXPECT_LT(*Ipv4Addr::parse("9.255.255.255"), *Ipv4Addr::parse("10.0.0.0"));
}

}  // namespace
}  // namespace sublet
