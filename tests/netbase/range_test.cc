#include <gtest/gtest.h>

#include "netbase/ipv4.h"
#include "util/rng.h"

namespace sublet {
namespace {

TEST(RangeParse, Valid) {
  auto r = AddrRange::parse("213.210.0.0 - 213.210.63.255");
  ASSERT_TRUE(r);
  EXPECT_EQ(r->first.to_string(), "213.210.0.0");
  EXPECT_EQ(r->last.to_string(), "213.210.63.255");
}

TEST(RangeParse, NoSpacesAroundDash) {
  auto r = AddrRange::parse("10.0.0.0-10.0.0.255");
  ASSERT_TRUE(r);
  EXPECT_EQ(r->size(), 256u);
}

TEST(RangeParse, RejectsInverted) {
  EXPECT_FALSE(AddrRange::parse("10.0.1.0 - 10.0.0.255"));
}

TEST(RangeParse, RejectsMalformed) {
  EXPECT_FALSE(AddrRange::parse("10.0.0.0"));
  EXPECT_FALSE(AddrRange::parse("10.0.0.0 -"));
  EXPECT_FALSE(AddrRange::parse("- 10.0.0.0"));
}

TEST(RangeToPrefixes, AlignedRangeIsOnePrefix) {
  auto r = *AddrRange::parse("213.210.0.0 - 213.210.63.255");
  auto prefixes = r.to_prefixes();
  ASSERT_EQ(prefixes.size(), 1u);
  EXPECT_EQ(prefixes[0].to_string(), "213.210.0.0/18");
}

TEST(RangeToPrefixes, SingleAddress) {
  auto r = *AddrRange::parse("1.2.3.4 - 1.2.3.4");
  auto prefixes = r.to_prefixes();
  ASSERT_EQ(prefixes.size(), 1u);
  EXPECT_EQ(prefixes[0].to_string(), "1.2.3.4/32");
}

TEST(RangeToPrefixes, UnalignedSplits) {
  // 10.0.0.1 - 10.0.0.6: /32, /31, /31, /32 -> minimal cover is 4 prefixes
  auto r = *AddrRange::parse("10.0.0.1 - 10.0.0.6");
  auto prefixes = r.to_prefixes();
  ASSERT_EQ(prefixes.size(), 4u);
  EXPECT_EQ(prefixes[0].to_string(), "10.0.0.1/32");
  EXPECT_EQ(prefixes[1].to_string(), "10.0.0.2/31");
  EXPECT_EQ(prefixes[2].to_string(), "10.0.0.4/31");
  EXPECT_EQ(prefixes[3].to_string(), "10.0.0.6/32");
}

TEST(RangeToPrefixes, FullSpace) {
  auto r = *AddrRange::parse("0.0.0.0 - 255.255.255.255");
  auto prefixes = r.to_prefixes();
  ASSERT_EQ(prefixes.size(), 1u);
  EXPECT_EQ(prefixes[0].length(), 0);
}

TEST(RangeToPrefixes, WholeIsExactlyCoveredNoOverlap) {
  auto r = *AddrRange::parse("192.168.1.77 - 192.168.130.2");
  auto prefixes = r.to_prefixes();
  ASSERT_FALSE(prefixes.empty());
  // Contiguous, in order, no gaps or overlap, covering exactly the range.
  EXPECT_EQ(prefixes.front().first(), r.first);
  EXPECT_EQ(prefixes.back().last(), r.last);
  for (std::size_t i = 1; i < prefixes.size(); ++i) {
    EXPECT_EQ(prefixes[i].first().value(),
              prefixes[i - 1].last().value() + 1);
  }
}

// Property sweep: random ranges always produce a minimal exact cover.
class RangeCoverProperty : public testing::TestWithParam<std::uint64_t> {};

TEST_P(RangeCoverProperty, ExactContiguousCover) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 200; ++iter) {
    std::uint32_t a = static_cast<std::uint32_t>(rng.next_u64());
    std::uint32_t b = static_cast<std::uint32_t>(rng.next_u64());
    AddrRange r{Ipv4Addr(std::min(a, b)), Ipv4Addr(std::max(a, b))};
    auto prefixes = r.to_prefixes();
    ASSERT_FALSE(prefixes.empty());
    EXPECT_EQ(prefixes.front().first(), r.first);
    EXPECT_EQ(prefixes.back().last(), r.last);
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < prefixes.size(); ++i) {
      total += prefixes[i].size();
      if (i > 0) {
        ASSERT_EQ(prefixes[i].first().value(),
                  prefixes[i - 1].last().value() + 1);
      }
    }
    EXPECT_EQ(total, r.size());
    // Minimality: a CIDR-exact cover of any range needs at most 62 prefixes
    // (2 per bit position); typical is far fewer.
    EXPECT_LE(prefixes.size(), 62u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RangeCoverProperty,
                         testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace sublet
