#include "netbase/asn.h"

#include <gtest/gtest.h>

#include <unordered_set>

namespace sublet {
namespace {

TEST(AsnParse, PlainAndPrefixed) {
  EXPECT_EQ(Asn::parse("64500")->value(), 64500u);
  EXPECT_EQ(Asn::parse("AS64500")->value(), 64500u);
  EXPECT_EQ(Asn::parse("as64500")->value(), 64500u);
  EXPECT_EQ(Asn::parse(" AS8851 ")->value(), 8851u);
}

TEST(AsnParse, FourByte) {
  EXPECT_EQ(Asn::parse("AS4200000001")->value(), 4200000001u);
  EXPECT_EQ(Asn::parse("4294967295")->value(), 4294967295u);
  EXPECT_FALSE(Asn::parse("4294967296"));
}

TEST(AsnParse, RejectsJunk) {
  EXPECT_FALSE(Asn::parse(""));
  EXPECT_FALSE(Asn::parse("AS"));
  EXPECT_FALSE(Asn::parse("ASN64500"));
  EXPECT_FALSE(Asn::parse("64500x"));
}

TEST(AsnAs0, Semantics) {
  EXPECT_TRUE(Asn(0).is_as0());
  EXPECT_FALSE(Asn(1).is_as0());
  EXPECT_EQ(Asn::parse("AS0")->value(), 0u);
}

TEST(AsnFormat, RoundTrip) {
  EXPECT_EQ(Asn(8851).to_string(), "AS8851");
  EXPECT_EQ(*Asn::parse(Asn(15169).to_string()), Asn(15169));
}

TEST(AsnHashing, UsableInUnorderedSet) {
  std::unordered_set<Asn, AsnHash> set;
  for (std::uint32_t i = 0; i < 1000; ++i) set.insert(Asn(i));
  EXPECT_EQ(set.size(), 1000u);
  EXPECT_TRUE(set.contains(Asn(500)));
  EXPECT_FALSE(set.contains(Asn(1000)));
}

}  // namespace
}  // namespace sublet
