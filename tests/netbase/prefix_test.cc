#include <gtest/gtest.h>

#include "netbase/ipv4.h"

namespace sublet {
namespace {

TEST(PrefixMake, CanonicalizesHostBits) {
  auto p = Prefix::make(*Ipv4Addr::parse("10.1.2.3"), 8);
  ASSERT_TRUE(p);
  EXPECT_EQ(p->to_string(), "10.0.0.0/8");
}

TEST(PrefixMake, RejectsBadLength) {
  EXPECT_FALSE(Prefix::make(Ipv4Addr(0), 33));
  EXPECT_FALSE(Prefix::make(Ipv4Addr(0), -1));
}

TEST(PrefixParse, Valid) {
  auto p = Prefix::parse("213.210.0.0/18");
  ASSERT_TRUE(p);
  EXPECT_EQ(p->length(), 18);
  EXPECT_EQ(p->network().to_string(), "213.210.0.0");
}

TEST(PrefixParse, RejectsNonCanonicalByDefault) {
  EXPECT_FALSE(Prefix::parse("10.0.0.1/8"));
  auto p = Prefix::parse("10.0.0.1/8", /*canonicalize=*/true);
  ASSERT_TRUE(p);
  EXPECT_EQ(p->to_string(), "10.0.0.0/8");
}

TEST(PrefixParse, RejectsMalformed) {
  EXPECT_FALSE(Prefix::parse("10.0.0.0"));
  EXPECT_FALSE(Prefix::parse("10.0.0.0/33"));
  EXPECT_FALSE(Prefix::parse("10.0.0.0/"));
  EXPECT_FALSE(Prefix::parse("/8"));
  EXPECT_FALSE(Prefix::parse("10.0.0.0/8/9"));
}

TEST(PrefixRange, FirstLastSize) {
  auto p = *Prefix::parse("213.210.0.0/18");
  EXPECT_EQ(p.first().to_string(), "213.210.0.0");
  EXPECT_EQ(p.last().to_string(), "213.210.63.255");
  EXPECT_EQ(p.size(), 16384u);
}

TEST(PrefixRange, SlashZeroCoversEverything) {
  auto p = *Prefix::make(Ipv4Addr(0), 0);
  EXPECT_EQ(p.size(), std::uint64_t{1} << 32);
  EXPECT_TRUE(p.contains(*Ipv4Addr::parse("255.255.255.255")));
}

TEST(PrefixRange, Slash32IsOneAddress) {
  auto p = *Prefix::parse("1.2.3.4/32");
  EXPECT_EQ(p.size(), 1u);
  EXPECT_EQ(p.first(), p.last());
}

TEST(PrefixContains, Boundary) {
  auto p = *Prefix::parse("10.0.0.0/8");
  EXPECT_TRUE(p.contains(*Ipv4Addr::parse("10.0.0.0")));
  EXPECT_TRUE(p.contains(*Ipv4Addr::parse("10.255.255.255")));
  EXPECT_FALSE(p.contains(*Ipv4Addr::parse("11.0.0.0")));
  EXPECT_FALSE(p.contains(*Ipv4Addr::parse("9.255.255.255")));
}

TEST(PrefixCovers, SelfAndMoreSpecific) {
  auto p18 = *Prefix::parse("213.210.0.0/18");
  auto p24 = *Prefix::parse("213.210.33.0/24");
  EXPECT_TRUE(p18.covers(p18));
  EXPECT_TRUE(p18.covers(p24));
  EXPECT_FALSE(p24.covers(p18));
  EXPECT_FALSE(p24.covers(*Prefix::parse("213.210.34.0/24")));
}

TEST(PrefixOrdering, AddressThenLength) {
  auto a = *Prefix::parse("10.0.0.0/8");
  auto b = *Prefix::parse("10.0.0.0/16");
  auto c = *Prefix::parse("11.0.0.0/8");
  EXPECT_LT(a, b) << "same network: less specific first";
  EXPECT_LT(b, c);
}

class PrefixSizeSweep : public testing::TestWithParam<int> {};

TEST_P(PrefixSizeSweep, SizeIsPowerOfTwoComplement) {
  int len = GetParam();
  auto p = *Prefix::make(Ipv4Addr(0), len);
  EXPECT_EQ(p.size(), std::uint64_t{1} << (32 - len));
  // first/last span exactly size addresses
  EXPECT_EQ(static_cast<std::uint64_t>(p.last().value()) -
                p.first().value() + 1,
            p.size());
}

INSTANTIATE_TEST_SUITE_P(AllLengths, PrefixSizeSweep,
                         testing::Range(0, 33));

}  // namespace
}  // namespace sublet
