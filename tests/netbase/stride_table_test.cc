// Differential property suite for the DIR-24-8 stride table
// (docs/PERF.md): the stride-accelerated query paths must be byte-identical
// to the legacy one-node-per-bit trie and to the plain Patricia walk, on
// random worlds and on the adversarial shapes that stress the two-level
// layout (default route, dense /24 sibling runs, >24-bit chains inside one
// bucket, duplicate last-wins), single-threaded and under concurrent
// readers.
#include <gtest/gtest.h>

#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "netbase/legacy_prefix_trie.h"
#include "netbase/prefix_trie.h"
#include "util/rng.h"

namespace sublet {
namespace {

Prefix P(const char* s) { return *Prefix::parse(s); }

std::optional<std::pair<Prefix, int>> deref(
    const std::optional<std::pair<Prefix, const int*>>& hit) {
  if (!hit) return std::nullopt;
  return std::pair<Prefix, int>{hit->first, *hit->second};
}
std::vector<std::pair<Prefix, int>> deref(
    const std::vector<std::pair<Prefix, const int*>>& hits) {
  std::vector<std::pair<Prefix, int>> out;
  for (const auto& [p, v] : hits) out.emplace_back(p, *v);
  return out;
}

/// Compare every query path of a stride-enabled trie against a strideless
/// Patricia control and the legacy trie for one query.
void expect_same_answers(const PrefixTrie<int>& stride,
                         const PrefixTrie<int>& patricia,
                         const LegacyPrefixTrie<int>& legacy,
                         const Prefix& query) {
  const auto want = deref(legacy.most_specific_covering(query));
  EXPECT_EQ(deref(stride.most_specific_covering(query)), want)
      << query.to_string();
  EXPECT_EQ(deref(patricia.most_specific_covering(query)), want)
      << query.to_string();
  const int* sf = stride.find(query);
  const int* pf = patricia.find(query);
  const int* lf = legacy.find(query);
  ASSERT_EQ(sf != nullptr, lf != nullptr) << query.to_string();
  ASSERT_EQ(pf != nullptr, lf != nullptr) << query.to_string();
  if (lf) {
    EXPECT_EQ(*sf, *lf) << query.to_string();
    EXPECT_EQ(*pf, *lf) << query.to_string();
  }
  EXPECT_EQ(deref(stride.all_covering(query)), deref(legacy.all_covering(query)))
      << query.to_string();
  // For a /32 query the handle path must agree with the covering walk.
  if (query.length() == 32) {
    const std::uint32_t handle = stride.lpm_handle(query.network().value());
    if (!want) {
      EXPECT_EQ(handle, PrefixTrie<int>::kNoEntry) << query.to_string();
    } else {
      ASSERT_NE(handle, PrefixTrie<int>::kNoEntry) << query.to_string();
      const auto [prefix, value] = stride.entry(handle);
      EXPECT_EQ(prefix, want->first) << query.to_string();
      EXPECT_EQ(*value, want->second) << query.to_string();
    }
  }
}

struct World {
  PrefixTrie<int> stride;
  PrefixTrie<int> patricia;
  LegacyPrefixTrie<int> legacy;
};

World build_world(const std::vector<std::pair<Prefix, int>>& entries) {
  World w;
  w.stride = PrefixTrie<int>::freeze(entries, TrieStride::kBuild);
  w.patricia = PrefixTrie<int>::freeze(entries, TrieStride::kOff);
  for (const auto& [p, v] : entries) w.legacy.insert(p, v);
  return w;
}

TEST(StrideTable, DefaultRouteCoversEverything) {
  auto w = build_world({{P("0.0.0.0/0"), 1}, {P("213.210.0.0/18"), 2}});
  ASSERT_TRUE(w.stride.has_stride_table());
  for (const char* q :
       {"0.0.0.0/32", "255.255.255.255/32", "10.1.2.3/32", "213.210.33.7/32",
        "213.210.0.0/18", "213.210.32.0/20", "8.8.8.8/32", "0.0.0.0/0",
        "128.0.0.0/1"}) {
    expect_same_answers(w.stride, w.patricia, w.legacy, P(q));
  }
}

TEST(StrideTable, DenseSlash24SiblingRun) {
  // 256 consecutive /24 siblings under a valued /16, with a handful of
  // deeper children: exercises whole-bucket fills, bucket boundaries, and
  // chunk creation inside an otherwise flat run.
  std::vector<std::pair<Prefix, int>> entries{{P("10.1.0.0/16"), 9999}};
  for (std::uint32_t i = 0; i < 256; ++i) {
    entries.emplace_back(
        *Prefix::make(Ipv4Addr(0x0A010000u | (i << 8)), 24),
        static_cast<int>(i));
  }
  entries.emplace_back(P("10.1.7.128/25"), 10'000);
  entries.emplace_back(P("10.1.7.192/26"), 10'001);
  entries.emplace_back(P("10.1.200.42/32"), 10'002);
  auto w = build_world(entries);
  Rng rng(99);
  for (int q = 0; q < 512; ++q) {
    // Queries concentrated on the populated /16 plus its borders.
    const std::uint32_t addr =
        0x0A000000u + static_cast<std::uint32_t>(rng.next_in(0, 0x2FFFF));
    const int len = static_cast<int>(rng.next_in(8, 32));
    expect_same_answers(w.stride, w.patricia, w.legacy,
                        *Prefix::make(Ipv4Addr(addr), len));
  }
  for (const char* q : {"10.1.0.0/24", "10.1.255.255/32", "10.2.0.0/24",
                        "10.0.255.255/32", "10.1.7.200/32", "10.1.7.129/32",
                        "10.1.7.0/25", "10.1.7.128/26"}) {
    expect_same_answers(w.stride, w.patricia, w.legacy, P(q));
  }
}

TEST(StrideTable, DeepChainsBeyondSlash24) {
  // A fully valued /8../32 chain: every length deeper than 24 lives inside
  // one bucket and lands in the second-level chunk; queries shallower than
  // the deepest cover force the walk fallback.
  std::vector<std::pair<Prefix, int>> entries;
  const std::uint32_t base = 0xC6336400u;  // 198.51.100.0
  for (int len = 8; len <= 32; ++len) {
    entries.emplace_back(*Prefix::make(Ipv4Addr(base), len), len);
  }
  // A second, valueless-interior chain in the same /24 via sparse lengths.
  entries.emplace_back(P("198.51.100.128/25"), 125);
  entries.emplace_back(P("198.51.100.160/27"), 127);
  auto w = build_world(entries);
  for (int len = 0; len <= 32; ++len) {
    expect_same_answers(w.stride, w.patricia, w.legacy,
                        *Prefix::make(Ipv4Addr(base), len));
  }
  for (const char* q : {"198.51.100.129/32", "198.51.100.161/32",
                        "198.51.100.191/32", "198.51.100.192/32",
                        "198.51.100.255/32", "198.51.101.0/32",
                        "198.51.100.160/28", "198.51.100.0/31"}) {
    expect_same_answers(w.stride, w.patricia, w.legacy, P(q));
  }
}

TEST(StrideTable, DuplicateEntriesLastWins) {
  auto w = build_world({{P("10.0.0.0/8"), 1},
                        {P("10.0.0.0/8"), 2},
                        {P("10.9.8.0/24"), 3},
                        {P("10.9.8.0/24"), 4},
                        {P("10.9.8.7/32"), 5},
                        {P("10.9.8.7/32"), 6}});
  EXPECT_EQ(w.stride.size(), 3u);
  for (const char* q : {"10.0.0.0/8", "10.9.8.0/24", "10.9.8.7/32",
                        "10.9.8.6/32", "10.64.0.0/10"}) {
    expect_same_answers(w.stride, w.patricia, w.legacy, P(q));
  }
}

TEST(StrideTable, EmptyTrie) {
  auto trie = PrefixTrie<int>::freeze({}, TrieStride::kBuild);
  ASSERT_TRUE(trie.has_stride_table());
  EXPECT_EQ(trie.lpm_handle(0), PrefixTrie<int>::kNoEntry);
  EXPECT_EQ(trie.lpm_handle(0xFFFFFFFFu), PrefixTrie<int>::kNoEntry);
  EXPECT_FALSE(trie.most_specific_covering(P("10.0.0.0/8")));
  EXPECT_EQ(trie.find(P("10.0.0.0/8")), nullptr);
}

TEST(StrideTable, BatchMatchesSingleLookup) {
  Rng rng(4242);
  std::vector<std::pair<Prefix, int>> entries;
  for (int i = 0; i < 2000; ++i) {
    const int len = static_cast<int>(rng.next_in(4, 32));
    entries.emplace_back(
        *Prefix::make(Ipv4Addr(static_cast<std::uint32_t>(rng.next_u64())),
                      len),
        i);
  }
  auto trie = PrefixTrie<int>::freeze(entries, TrieStride::kBuild);
  // Batch sizes around the prefetch distance catch edge handling (empty,
  // shorter than the lookahead, longer).
  for (std::size_t n : {0u, 1u, 3u, 8u, 9u, 64u, 1000u}) {
    std::vector<std::uint32_t> addrs(n);
    for (auto& a : addrs) a = static_cast<std::uint32_t>(rng.next_u64());
    std::vector<std::uint32_t> batch(n, 0xDEADBEEFu);
    trie.lookup_batch(addrs, batch);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(batch[i], trie.lpm_handle(addrs[i])) << i;
    }
  }
}

TEST(StrideTable, InsertDropsStrideTable) {
  auto trie = PrefixTrie<int>::freeze(
      {{P("10.0.0.0/8"), 1}, {P("10.20.30.0/24"), 2}}, TrieStride::kBuild);
  ASSERT_TRUE(trie.has_stride_table());
  const auto q = P("10.20.30.40/32");
  EXPECT_EQ(*trie.most_specific_covering(q)->second, 2);
  trie.insert(P("10.20.30.40/31"), 3);  // deeper than the frozen entries
  EXPECT_FALSE(trie.has_stride_table());
  EXPECT_EQ(*trie.most_specific_covering(q)->second, 3);
  trie.build_stride_table();  // rebuild; answers must hold on the fast path
  ASSERT_TRUE(trie.has_stride_table());
  EXPECT_EQ(*trie.most_specific_covering(q)->second, 3);
  EXPECT_EQ(*trie.entry(trie.lpm_handle(q.network().value())).second, 3);
}

TEST(StrideTable, MemoryBreakdownCountsEveryStructure) {
  auto trie = PrefixTrie<int>::freeze(
      {{P("10.0.0.0/8"), 1}, {P("10.20.30.192/26"), 2}}, TrieStride::kBuild);
  const auto mem = trie.memory_breakdown();
  EXPECT_EQ(mem.stride24_bytes, (std::size_t{1} << 24) * sizeof(std::uint32_t));
  EXPECT_GT(mem.stride8_bytes, 0u);  // the /26 forces one chunk
  EXPECT_GT(mem.jump_bytes, 0u);
  EXPECT_GT(mem.node_bytes, 0u);
  EXPECT_GT(mem.value_bytes, 0u);
  EXPECT_EQ(mem.total(), trie.memory_bytes());

  auto off = PrefixTrie<int>::freeze({{P("10.0.0.0/8"), 1}}, TrieStride::kOff);
  const auto none = off.memory_breakdown();
  EXPECT_EQ(none.stride24_bytes, 0u);
  EXPECT_EQ(none.stride8_bytes, 0u);
  EXPECT_EQ(none.total(), off.memory_bytes());
}

// Random-world differential: stride vs Patricia vs legacy across the whole
// query surface, including host-bit-dense corners.
class StrideDifferential : public testing::TestWithParam<std::uint64_t> {};

TEST_P(StrideDifferential, MatchesLegacyAndPatricia) {
  Rng rng(GetParam());
  std::vector<std::pair<Prefix, int>> entries;
  for (int i = 0; i < 500; ++i) {
    // Bias half the entries deeper than /24 so second-level chunks are
    // dense, not incidental.
    const int len = (i % 2 == 0) ? static_cast<int>(rng.next_in(0, 24))
                                 : static_cast<int>(rng.next_in(25, 32));
    entries.emplace_back(
        *Prefix::make(Ipv4Addr(static_cast<std::uint32_t>(rng.next_u64())),
                      len),
        i);
  }
  auto w = build_world(entries);
  ASSERT_EQ(w.stride.size(), w.legacy.size());
  for (int q = 0; q < 400; ++q) {
    const int len = static_cast<int>(rng.next_in(0, 32));
    const auto query = *Prefix::make(
        Ipv4Addr(static_cast<std::uint32_t>(rng.next_u64())), len);
    expect_same_answers(w.stride, w.patricia, w.legacy, query);
  }
  // Queries aimed at stored entries and their neighbors (guaranteed hits
  // and near-miss siblings).
  for (const auto& [p, v] : entries) {
    expect_same_answers(w.stride, w.patricia, w.legacy, p);
    expect_same_answers(w.stride, w.patricia, w.legacy,
                        *Prefix::make(Ipv4Addr(p.network().value() ^ 1u), 32));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StrideDifferential,
                         testing::Values(17, 1729, 271828));

// Concurrent readers: the stride table is immutable after freeze, so N
// threads hammering batched and single lookups must agree with the answers
// precomputed single-threaded. Runs at 1 and 8 threads (the tsan preset
// picks this suite up by name).
class StrideThreads : public testing::TestWithParam<int> {};

TEST_P(StrideThreads, ConcurrentReadersAgree) {
  Rng rng(808);
  std::vector<std::pair<Prefix, int>> entries;
  for (int i = 0; i < 800; ++i) {
    const int len = static_cast<int>(rng.next_in(6, 32));
    entries.emplace_back(
        *Prefix::make(Ipv4Addr(static_cast<std::uint32_t>(rng.next_u64())),
                      len),
        i);
  }
  const auto trie = PrefixTrie<int>::freeze(entries, TrieStride::kBuild);
  std::vector<std::uint32_t> addrs(4096);
  for (auto& a : addrs) a = static_cast<std::uint32_t>(rng.next_u64());
  std::vector<std::uint32_t> expected(addrs.size());
  trie.lookup_batch(addrs, expected);

  const int threads = GetParam();
  std::vector<std::thread> workers;
  std::vector<int> failures(static_cast<std::size_t>(threads), 0);
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      std::vector<std::uint32_t> out(addrs.size());
      for (int round = 0; round < 4; ++round) {
        trie.lookup_batch(addrs, out);
        for (std::size_t i = 0; i < addrs.size(); ++i) {
          if (out[i] != expected[i]) ++failures[static_cast<std::size_t>(t)];
          if (trie.lpm_handle(addrs[i]) != expected[i]) {
            ++failures[static_cast<std::size_t>(t)];
          }
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  for (int t = 0; t < threads; ++t) EXPECT_EQ(failures[t], 0) << t;
}

INSTANTIATE_TEST_SUITE_P(Threads, StrideThreads, testing::Values(1, 8));

}  // namespace
}  // namespace sublet
