#include "bgp/rib.h"

#include <gtest/gtest.h>

#include <sstream>

namespace sublet::bgp {
namespace {

Prefix P(const char* s) { return *Prefix::parse(s); }

TEST(Rib, AddRouteAndExact) {
  Rib rib;
  rib.add_route(P("213.210.0.0/18"), Asn(8851));
  const RouteInfo* info = rib.exact(P("213.210.0.0/18"));
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(info->origins, std::vector<Asn>{Asn(8851)});
  EXPECT_TRUE(info->originated_by(Asn(8851)));
  EXPECT_FALSE(info->originated_by(Asn(1)));
  EXPECT_EQ(rib.exact(P("213.210.0.0/19")), nullptr);
}

TEST(Rib, MultipleOriginsDeduplicated) {
  Rib rib;
  rib.add_route(P("10.0.0.0/8"), Asn(1));
  rib.add_route(P("10.0.0.0/8"), Asn(2));
  rib.add_route(P("10.0.0.0/8"), Asn(1));
  const RouteInfo* info = rib.exact(P("10.0.0.0/8"));
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(info->origins, (std::vector<Asn>{Asn(1), Asn(2)}));
  EXPECT_EQ(info->peer_observations, 3u);
}

TEST(Rib, LeastSpecificCoveringForAggregatedRoots) {
  // Paper step 4: a holder of consecutive portable blocks may aggregate;
  // the root's origin is found via the least-specific covering prefix.
  Rib rib;
  rib.add_route(P("213.208.0.0/14"), Asn(8851));  // aggregate
  rib.add_route(P("213.210.33.0/24"), Asn(15169));
  auto hit = rib.least_specific_covering(P("213.210.0.0/18"));
  ASSERT_TRUE(hit);
  EXPECT_EQ(hit->first.to_string(), "213.208.0.0/14");
  EXPECT_EQ(hit->second->origins, std::vector<Asn>{Asn(8851)});
}

TEST(Rib, MostSpecificCovering) {
  Rib rib;
  rib.add_route(P("10.0.0.0/8"), Asn(1));
  rib.add_route(P("10.2.0.0/16"), Asn(2));
  auto hit = rib.most_specific_covering(P("10.2.3.0/24"));
  ASSERT_TRUE(hit);
  EXPECT_EQ(hit->second->origins, std::vector<Asn>{Asn(2)});
}

TEST(Rib, FromSnapshot) {
  mrt::RibSnapshot snap;
  snap.timestamp = 1711929600;
  snap.peer_table.peers = {{Ipv4Addr(1), Ipv4Addr(2), Asn(3356)},
                           {Ipv4Addr(3), Ipv4Addr(4), Asn(174)}};
  mrt::RibPrefixRecord rec;
  rec.prefix = P("213.210.33.0/24");
  mrt::RibEntry e1;
  e1.peer_index = 0;
  e1.attributes.as_path.segments = {
      {mrt::AsPathSegmentType::kAsSequence, {Asn(3356), Asn(15169)}}};
  mrt::RibEntry e2;
  e2.peer_index = 1;
  e2.attributes.as_path.segments = {
      {mrt::AsPathSegmentType::kAsSequence, {Asn(174), Asn(9009), Asn(15169)}}};
  rec.entries = {e1, e2};
  snap.records.push_back(rec);

  Rib rib;
  rib.add_snapshot(snap);
  const RouteInfo* info = rib.exact(P("213.210.33.0/24"));
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(info->origins, std::vector<Asn>{Asn(15169)});
  EXPECT_EQ(info->peer_observations, 2u);
}

TEST(Rib, AsSetOriginsAllRecorded) {
  mrt::RibSnapshot snap;
  mrt::RibPrefixRecord rec;
  rec.prefix = P("10.0.0.0/8");
  mrt::RibEntry entry;
  entry.attributes.as_path.segments = {
      {mrt::AsPathSegmentType::kAsSequence, {Asn(1)}},
      {mrt::AsPathSegmentType::kAsSet, {Asn(20), Asn(10)}}};
  rec.entries = {entry};
  snap.records.push_back(rec);
  Rib rib;
  rib.add_snapshot(snap);
  EXPECT_EQ(rib.exact(P("10.0.0.0/8"))->origins,
            (std::vector<Asn>{Asn(10), Asn(20)}));
}

TEST(Rib, MultiCollectorUnion) {
  Rib rib;
  rib.add_route(P("10.0.0.0/8"), Asn(1));   // collector A
  rib.add_route(P("10.0.0.0/8"), Asn(99));  // collector B saw a different origin (MOAS)
  EXPECT_EQ(rib.exact(P("10.0.0.0/8"))->origins,
            (std::vector<Asn>{Asn(1), Asn(99)}));
}

TEST(Rib, RoutedAddressSpaceMergesOverlaps) {
  Rib rib;
  rib.add_route(P("10.0.0.0/8"), Asn(1));
  rib.add_route(P("10.1.0.0/16"), Asn(2));   // nested: counted once
  rib.add_route(P("192.0.2.0/24"), Asn(3));  // disjoint
  EXPECT_EQ(rib.routed_address_space(), (1u << 24) + 256u);
}

TEST(Rib, RoutedAddressSpaceAdjacent) {
  Rib rib;
  rib.add_route(P("10.0.0.0/24"), Asn(1));
  rib.add_route(P("10.0.1.0/24"), Asn(1));
  EXPECT_EQ(rib.routed_address_space(), 512u);
}

TEST(Rib, EmptyRib) {
  Rib rib;
  EXPECT_EQ(rib.prefix_count(), 0u);
  EXPECT_EQ(rib.routed_address_space(), 0u);
  EXPECT_TRUE(rib.all_origins().empty());
  EXPECT_FALSE(rib.least_specific_covering(P("10.0.0.0/8")));
}

TEST(Rib, AllOrigins) {
  Rib rib;
  rib.add_route(P("10.0.0.0/8"), Asn(1));
  rib.add_route(P("11.0.0.0/8"), Asn(2));
  rib.add_route(P("12.0.0.0/8"), Asn(1));
  auto origins = rib.all_origins();
  EXPECT_EQ(origins.size(), 2u);
  EXPECT_TRUE(origins.contains(Asn(1)));
  EXPECT_TRUE(origins.contains(Asn(2)));
}

TEST(Rib, FileRoundTripThroughMrt) {
  mrt::RibSnapshot snap;
  snap.timestamp = 1711929600;
  snap.peer_table.peers = {{Ipv4Addr(1), Ipv4Addr(2), Asn(3356)}};
  mrt::RibPrefixRecord rec;
  rec.prefix = P("198.51.100.0/24");
  mrt::RibEntry entry;
  entry.peer_index = 0;
  entry.attributes.origin = mrt::BgpOrigin::kIgp;
  entry.attributes.as_path.segments = {
      {mrt::AsPathSegmentType::kAsSequence, {Asn(3356), Asn(64496)}}};
  entry.attributes.next_hop = Ipv4Addr(2);
  rec.entries = {entry};
  snap.records.push_back(rec);

  std::string path = testing::TempDir() + "/sublet_bgp_rib.mrt";
  mrt::write_rib_file(path, snap);
  Rib rib;
  auto err = rib.add_file(path);
  EXPECT_FALSE(err) << err->to_string();
  ASSERT_NE(rib.exact(P("198.51.100.0/24")), nullptr);
  EXPECT_EQ(rib.exact(P("198.51.100.0/24"))->origins,
            std::vector<Asn>{Asn(64496)});
  std::remove(path.c_str());
}

TEST(Rib, AddBgpdumpText) {
  Rib rib;
  std::istringstream in(
      "TABLE_DUMP2|100|B|203.0.113.10|3356|213.210.33.0/24|3356 15169|IGP|"
      "203.0.113.10|0|0||NAG||\n"
      "BGP4MP|100|A|203.0.113.10|3356|10.0.0.0/8|3356 {64500,64501}|IGP|x|\n"
      "BGP4MP|200|W|203.0.113.10|3356|10.0.0.0/8\n"
      "TABLE_DUMP2|100|B|2001:db8::1|3356|2001:db8::/32|3356|IGP|x|\n");
  auto merged = rib.add_bgpdump_text(in, "<test>");
  ASSERT_TRUE(merged) << merged.error().to_string();
  EXPECT_EQ(*merged, 2u) << "withdraw + IPv6 lines skipped";
  EXPECT_EQ(rib.exact(P("213.210.33.0/24"))->origins,
            std::vector<Asn>{Asn(15169)});
  EXPECT_EQ(rib.exact(P("10.0.0.0/8"))->origins,
            (std::vector<Asn>{Asn(64500), Asn(64501)}));
}

TEST(Rib, AddBgpdumpTextDamagedLineErrors) {
  Rib rib;
  std::istringstream in("TABLE_DUMP2|notatime|B|1.2.3.4|1|10.0.0.0/8|1|\n");
  auto merged = rib.add_bgpdump_text(in, "<test>");
  ASSERT_FALSE(merged);
  EXPECT_EQ(merged.error().line, 1u);
}

TEST(Rib, AddFileMissing) {
  Rib rib;
  auto err = rib.add_file("/nonexistent/rib.mrt");
  EXPECT_TRUE(err);
}

TEST(Rib, FreezeSortsAndUniquesBatchedOrigins) {
  Rib rib;
  // Load-time appends arrive unsorted and with duplicates; freeze() must
  // leave the same sorted/unique origin set the old per-route insertion
  // maintained.
  rib.add_route(P("10.0.0.0/8"), Asn(64500));
  rib.add_route(P("10.0.0.0/8"), Asn(3));
  rib.add_route(P("10.0.0.0/8"), Asn(64500));
  rib.add_route(P("10.0.0.0/8"), Asn(7));
  rib.freeze();
  const RouteInfo* info = rib.exact(P("10.0.0.0/8"));
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(info->origins, (std::vector<Asn>{Asn(3), Asn(7), Asn(64500)}));
  EXPECT_EQ(info->peer_observations, 4u);
  EXPECT_TRUE(info->originated_by(Asn(7)));
  EXPECT_FALSE(info->originated_by(Asn(8)));
  // freeze() is idempotent and re-batching after a freeze works too.
  rib.freeze();
  rib.add_route(P("10.0.0.0/8"), Asn(5));
  info = rib.exact(P("10.0.0.0/8"));
  EXPECT_EQ(info->origins,
            (std::vector<Asn>{Asn(3), Asn(5), Asn(7), Asn(64500)}));
}

TEST(Rib, QueriesFinalizeLazilyWithoutExplicitFreeze) {
  Rib rib;
  rib.add_route(P("10.0.0.0/8"), Asn(9));
  rib.add_route(P("10.0.0.0/8"), Asn(2));
  // No freeze() call: the const accessors must still see sorted origins.
  auto hit = rib.most_specific_covering(P("10.1.0.0/16"));
  ASSERT_TRUE(hit);
  EXPECT_EQ(hit->second->origins, (std::vector<Asn>{Asn(2), Asn(9)}));
  std::vector<Asn> visited;
  rib.visit([&](const Prefix&, const RouteInfo& info) {
    visited = info.origins;
  });
  EXPECT_EQ(visited, (std::vector<Asn>{Asn(2), Asn(9)}));
}

}  // namespace
}  // namespace sublet::bgp
