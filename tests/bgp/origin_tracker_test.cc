#include "bgp/origin_tracker.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "mrt/mrt.h"

namespace sublet::bgp {
namespace {

Prefix P(const char* s) { return *Prefix::parse(s); }

TEST(OriginTracker, AnnounceWithdrawHistory) {
  OriginTracker tracker;
  tracker.announce(100, P("10.0.0.0/24"), {Asn(1)});
  tracker.withdraw(200, P("10.0.0.0/24"));
  tracker.announce(300, P("10.0.0.0/24"), {Asn(2)});

  const auto* history = tracker.history(P("10.0.0.0/24"));
  ASSERT_NE(history, nullptr);
  ASSERT_EQ(history->size(), 3u);
  EXPECT_EQ((*history)[0].origins, std::vector<Asn>{Asn(1)});
  EXPECT_TRUE((*history)[1].origins.empty());
  EXPECT_EQ((*history)[2].origins, std::vector<Asn>{Asn(2)});
}

TEST(OriginTracker, DuplicateStateCollapses) {
  OriginTracker tracker;
  tracker.announce(100, P("10.0.0.0/24"), {Asn(1)});
  tracker.announce(150, P("10.0.0.0/24"), {Asn(1)});  // no state change
  tracker.withdraw(200, P("10.0.0.0/24"));
  tracker.withdraw(250, P("10.0.0.0/24"));  // already withdrawn
  EXPECT_EQ(tracker.history(P("10.0.0.0/24"))->size(), 2u);
}

TEST(OriginTracker, OriginsAtPointInTime) {
  OriginTracker tracker;
  tracker.announce(100, P("10.0.0.0/24"), {Asn(1)});
  tracker.withdraw(200, P("10.0.0.0/24"));
  tracker.announce(300, P("10.0.0.0/24"), {Asn(2)});

  EXPECT_TRUE(tracker.origins_at(P("10.0.0.0/24"), 50).empty());
  EXPECT_EQ(tracker.origins_at(P("10.0.0.0/24"), 100),
            std::vector<Asn>{Asn(1)});
  EXPECT_EQ(tracker.origins_at(P("10.0.0.0/24"), 199),
            std::vector<Asn>{Asn(1)});
  EXPECT_TRUE(tracker.origins_at(P("10.0.0.0/24"), 250).empty());
  EXPECT_EQ(tracker.origins_at(P("10.0.0.0/24"), 999),
            std::vector<Asn>{Asn(2)});
}

TEST(OriginTracker, EverOriginsUnion) {
  OriginTracker tracker;
  tracker.announce(100, P("10.0.0.0/24"), {Asn(2)});
  tracker.withdraw(200, P("10.0.0.0/24"));
  tracker.announce(300, P("10.0.0.0/24"), {Asn(1)});
  EXPECT_EQ(tracker.ever_origins(P("10.0.0.0/24")),
            (std::vector<Asn>{Asn(1), Asn(2)}));
  EXPECT_TRUE(tracker.ever_origins(P("192.0.2.0/24")).empty());
}

TEST(OriginTracker, ApplyUpdateMessage) {
  OriginTracker tracker;
  mrt::Bgp4mpMessage msg;
  msg.type = mrt::BgpMessageType::kUpdate;
  msg.announced = {P("213.210.33.0/24")};
  msg.attributes.as_path.segments = {
      {mrt::AsPathSegmentType::kAsSequence, {Asn(3356), Asn(15169)}}};
  tracker.apply(1000, msg);

  mrt::Bgp4mpMessage withdraw;
  withdraw.type = mrt::BgpMessageType::kUpdate;
  withdraw.withdrawn = {P("213.210.33.0/24")};
  tracker.apply(2000, withdraw);

  EXPECT_EQ(tracker.origins_at(P("213.210.33.0/24"), 1500),
            std::vector<Asn>{Asn(15169)});
  EXPECT_TRUE(tracker.origins_at(P("213.210.33.0/24"), 2500).empty());
}

TEST(OriginTracker, NonUpdateMessagesIgnored) {
  OriginTracker tracker;
  mrt::Bgp4mpMessage keepalive;
  keepalive.type = mrt::BgpMessageType::kKeepalive;
  tracker.apply(1000, keepalive);
  EXPECT_EQ(tracker.prefix_count(), 0u);
}

TEST(ReplayUpdatesFile, EndToEnd) {
  std::string path = testing::TempDir() + "/sublet_updates.mrt";
  {
    std::ofstream out(path, std::ios::binary);
    mrt::MrtWriter writer(out);
    auto emit = [&](std::uint32_t ts, const mrt::Bgp4mpMessage& msg) {
      writer.write(ts, mrt::MrtType::kBgp4mp,
                   static_cast<std::uint16_t>(mrt::Bgp4mpSubtype::kMessageAs4),
                   mrt::encode_bgp4mp(msg, mrt::Bgp4mpSubtype::kMessageAs4));
    };
    mrt::Bgp4mpMessage announce;
    announce.peer_asn = Asn(3356);
    announce.local_asn = Asn(65001);
    announce.type = mrt::BgpMessageType::kUpdate;
    announce.announced = {P("213.210.33.0/24")};
    announce.attributes.as_path.segments = {
        {mrt::AsPathSegmentType::kAsSequence, {Asn(3356), Asn(834)}}};
    emit(100, announce);

    mrt::Bgp4mpMessage keepalive;
    keepalive.peer_asn = Asn(3356);
    keepalive.local_asn = Asn(65001);
    keepalive.type = mrt::BgpMessageType::kKeepalive;
    emit(150, keepalive);

    mrt::Bgp4mpMessage withdraw;
    withdraw.peer_asn = Asn(3356);
    withdraw.local_asn = Asn(65001);
    withdraw.type = mrt::BgpMessageType::kUpdate;
    withdraw.withdrawn = {P("213.210.33.0/24")};
    emit(200, withdraw);
  }

  OriginTracker tracker;
  auto applied = replay_updates_file(path, tracker);
  ASSERT_TRUE(applied) << applied.error().to_string();
  EXPECT_EQ(*applied, 2u) << "keepalive is not an update";
  EXPECT_EQ(tracker.origins_at(P("213.210.33.0/24"), 120),
            std::vector<Asn>{Asn(834)});
  EXPECT_TRUE(tracker.origins_at(P("213.210.33.0/24"), 220).empty());
  std::remove(path.c_str());
}

TEST(ReplayUpdatesFile, MissingFile) {
  OriginTracker tracker;
  EXPECT_FALSE(replay_updates_file("/nonexistent/updates.mrt", tracker));
}

}  // namespace
}  // namespace sublet::bgp
