#include "transfers/transfer_log.h"

#include <gtest/gtest.h>

#include <sstream>

namespace sublet::transfers {
namespace {

Prefix P(const char* s) { return *Prefix::parse(s); }

Transfer sample(std::uint32_t date = 1680000000) {
  return {date, whois::Rir::kRipe, P("213.210.0.0/18"), "ORG-OLD",
          "ORG-GCI1-RIPE", TransferType::kMarket};
}

TEST(TransferLog, CoversTransferredSpace) {
  TransferLog log;
  log.add(sample());
  EXPECT_TRUE(log.covers(P("213.210.0.0/18")));
  EXPECT_TRUE(log.covers(P("213.210.33.0/24"))) << "sub-block is covered";
  EXPECT_FALSE(log.covers(P("213.211.0.0/18")));
  EXPECT_FALSE(log.covers(P("213.210.0.0/17"))) << "covering block is not";
}

TEST(TransferLog, CoveringReturnsRecords) {
  TransferLog log;
  log.add(sample(100));
  log.add({200, whois::Rir::kRipe, P("213.210.32.0/19"), "ORG-GCI1-RIPE",
           "ORG-NEW", TransferType::kMerger});
  auto hits = log.covering(P("213.210.33.0/24"));
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0]->date, 100u);
  EXPECT_EQ(hits[1]->type, TransferType::kMerger);
}

TEST(TransferLog, WindowQuery) {
  TransferLog log;
  log.add(sample(100));
  log.add(sample(200));
  log.add(sample(300));
  EXPECT_EQ(log.in_window(150, 250).size(), 1u);
  EXPECT_EQ(log.in_window(0, 400).size(), 3u);
  EXPECT_TRUE(log.in_window(400, 500).empty());
}

TEST(TransferLog, WriteParseRoundTrip) {
  TransferLog log;
  log.add(sample());
  log.add({1690000000, whois::Rir::kArin, P("192.0.2.0/24"), "A", "B",
           TransferType::kMerger});
  std::ostringstream out;
  log.write(out);
  std::istringstream in(out.str());
  auto loaded = TransferLog::parse(in);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded.transfers()[0].to_org, "ORG-GCI1-RIPE");
  EXPECT_EQ(loaded.transfers()[1].rir, whois::Rir::kArin);
  EXPECT_EQ(loaded.transfers()[1].type, TransferType::kMerger);
}

TEST(TransferLog, BadLinesDiagnosed) {
  std::istringstream in(
      "# header\n"
      "notanumber|RIPE|10.0.0.0/8|A|B|market\n"
      "100|NOPE|10.0.0.0/8|A|B|market\n"
      "100|RIPE|10.0.0.0/8|A|B|gift\n"
      "100|RIPE|10.0.0.0/8|A|B\n"
      "100|RIPE|10.0.0.0/8|A|B|market\n");
  std::vector<Error> diags;
  auto log = TransferLog::parse(in, "t", &diags);
  EXPECT_EQ(log.size(), 1u);
  EXPECT_EQ(diags.size(), 4u);
}

TEST(TransferLog, LoadMissingThrows) {
  EXPECT_THROW(TransferLog::load("/nonexistent/transfers.txt"),
               std::runtime_error);
}

}  // namespace
}  // namespace sublet::transfers
