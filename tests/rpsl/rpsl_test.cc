#include "rpsl/rpsl.h"

#include <gtest/gtest.h>

namespace sublet::rpsl {
namespace {

TEST(RpslParse, SingleObject) {
  auto objs = parse_all(
      "inetnum:        213.210.0.0 - 213.210.63.255\n"
      "netname:        SE-GCI-NET\n"
      "org:            ORG-GCI1-RIPE\n"
      "status:         ALLOCATED PA\n"
      "mnt-by:         MNT-GCICOM\n"
      "source:         RIPE\n");
  ASSERT_EQ(objs.size(), 1u);
  EXPECT_EQ(objs[0].cls(), "inetnum");
  EXPECT_EQ(objs[0].get("inetnum"), "213.210.0.0 - 213.210.63.255");
  EXPECT_EQ(objs[0].get("status"), "ALLOCATED PA");
  EXPECT_EQ(objs[0].get("mnt-by"), "MNT-GCICOM");
}

TEST(RpslParse, MultipleObjectsSeparatedByBlankLines) {
  auto objs = parse_all(
      "inetnum: 10.0.0.0 - 10.0.0.255\nstatus: ASSIGNED PA\n"
      "\n\n"
      "aut-num: AS8851\norg: ORG-GCI1-RIPE\n");
  ASSERT_EQ(objs.size(), 2u);
  EXPECT_EQ(objs[0].cls(), "inetnum");
  EXPECT_EQ(objs[1].cls(), "aut-num");
  EXPECT_EQ(objs[1].get("aut-num"), "AS8851");
}

TEST(RpslParse, AttributeNamesAreCaseInsensitive) {
  auto objs = parse_all("InetNum: 10.0.0.0 - 10.0.0.255\nStatus: LEGACY\n");
  ASSERT_EQ(objs.size(), 1u);
  EXPECT_EQ(objs[0].get("inetnum"), "10.0.0.0 - 10.0.0.255");
  EXPECT_EQ(objs[0].get("status"), "LEGACY");
}

TEST(RpslParse, ContinuationLines) {
  auto objs = parse_all(
      "organisation: ORG-X1\n"
      "address: 123 Example Way\n"
      "         Building 4\n"
      "+        Floor 2\n"
      "\tSuite 9\n");
  ASSERT_EQ(objs.size(), 1u);
  EXPECT_EQ(objs[0].get("address"),
            "123 Example Way Building 4 Floor 2 Suite 9");
}

TEST(RpslParse, RepeatedAttributes) {
  auto objs = parse_all(
      "inetnum: 10.0.0.0 - 10.0.0.255\n"
      "mnt-by: MNT-ONE\n"
      "mnt-by: MNT-TWO\n");
  ASSERT_EQ(objs.size(), 1u);
  auto mnts = objs[0].all("mnt-by");
  ASSERT_EQ(mnts.size(), 2u);
  EXPECT_EQ(mnts[0], "MNT-ONE");
  EXPECT_EQ(mnts[1], "MNT-TWO");
  EXPECT_EQ(objs[0].get("mnt-by"), "MNT-ONE") << "get returns first";
}

TEST(RpslParse, PercentCommentsIgnoredAndSeparateObjects) {
  auto objs = parse_all(
      "% RIPE database dump\n"
      "inetnum: 10.0.0.0 - 10.0.0.255\n"
      "% comment splits like a blank line\n"
      "aut-num: AS1\n");
  ASSERT_EQ(objs.size(), 2u);
}

TEST(RpslParse, HashCommentLinesIgnored) {
  auto objs = parse_all("# dump header\ninetnum: 10.0.0.0 - 10.0.0.255\n");
  ASSERT_EQ(objs.size(), 1u);
}

TEST(RpslParse, InlineCommentsStripped) {
  auto objs = parse_all("inetnum: 10.0.0.0 - 10.0.0.255 # legacy block\n");
  ASSERT_EQ(objs.size(), 1u);
  EXPECT_EQ(objs[0].get("inetnum"), "10.0.0.0 - 10.0.0.255");
}

TEST(RpslParse, CrLfLineEndings) {
  auto objs = parse_all("inetnum: 10.0.0.0 - 10.0.0.255\r\nstatus: X\r\n");
  ASSERT_EQ(objs.size(), 1u);
  EXPECT_EQ(objs[0].get("status"), "X");
}

TEST(RpslParse, MissingAttributeReturnsEmpty) {
  auto objs = parse_all("inetnum: 10.0.0.0 - 10.0.0.255\n");
  ASSERT_EQ(objs.size(), 1u);
  EXPECT_EQ(objs[0].get("org"), "");
  EXPECT_FALSE(objs[0].has("org"));
  EXPECT_TRUE(objs[0].all("org").empty());
}

TEST(RpslParse, NoTrailingNewline) {
  auto objs = parse_all("aut-num: AS42");
  ASSERT_EQ(objs.size(), 1u);
  EXPECT_EQ(objs[0].get("aut-num"), "AS42");
}

TEST(RpslParse, EmptyInput) {
  EXPECT_TRUE(parse_all("").empty());
  EXPECT_TRUE(parse_all("\n\n\n% only comments\n").empty());
}

TEST(RpslDiagnostics, BadLinesAreRecordedNotFatal) {
  std::vector<Error> diags;
  auto objs = parse_all(
      "inetnum: 10.0.0.0 - 10.0.0.255\n"
      "this line has no separator\n"
      "status: ASSIGNED PA\n",
      &diags);
  ASSERT_EQ(objs.size(), 1u);
  EXPECT_EQ(objs[0].get("status"), "ASSIGNED PA");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_NE(diags[0].message.find("separator"), std::string::npos);
  EXPECT_EQ(diags[0].line, 2u);
}

TEST(RpslDiagnostics, OrphanContinuation) {
  std::vector<Error> diags;
  auto objs = parse_all("   floating continuation\naut-num: AS1\n", &diags);
  ASSERT_EQ(objs.size(), 1u);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_NE(diags[0].message.find("continuation"), std::string::npos);
}

TEST(RpslParse, ObjectLineNumbersTracked) {
  auto objs = parse_all("% header\n\ninetnum: 10.0.0.0 - 10.0.0.255\n");
  ASSERT_EQ(objs.size(), 1u);
  EXPECT_EQ(objs[0].line, 3u);
}

TEST(RpslParse, ValueContainingColon) {
  auto objs = parse_all("remarks: see http://example.com/x\n");
  ASSERT_EQ(objs.size(), 1u);
  EXPECT_EQ(objs[0].get("remarks"), "see http://example.com/x");
}

}  // namespace
}  // namespace sublet::rpsl
