// Text-protocol differential: the epoll rewrite must answer every text
// verb byte-identically to handle_request(), which is itself pinned by the
// protocol tests. Two servers are built from the same records; one serves
// over a real socket, the other acts as the in-process oracle. The same
// request sequence runs against both in the same order, so even the
// counter-bearing verbs (STATS) agree on every deterministic field.
//
// This reuses the legacy-differential pattern from the snapshot layer
// (PR 2): drive the old path and the new path with identical inputs and
// require identical outputs, rather than asserting on hand-written
// expectations that could drift with the code.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "serve/client.h"
#include "serve/engine_state.h"
#include "serve/server.h"
#include "snapshot/writer.h"

namespace sublet::serve {
namespace {

using leasing::InferenceGroup;
using leasing::LeaseInference;

Prefix P(const char* s) { return *Prefix::parse(s); }

std::vector<LeaseInference> sample() {
  std::vector<LeaseInference> out;
  for (std::uint32_t i = 0; i < 32; ++i) {
    LeaseInference r;
    r.prefix = *Prefix::make(Ipv4Addr((10u << 24) | (i << 8)), 24);
    r.root_prefix = P("10.0.0.0/8");
    r.rir = whois::Rir::kRipe;
    r.group = i % 2 ? InferenceGroup::kLeasedWithRoot
                    : InferenceGroup::kAggregatedCustomer;
    r.holder_org = "ORG-" + std::to_string(i);
    r.holder_asns = {Asn(64512 + i)};
    r.netname = "NET-" + std::to_string(i);
    out.push_back(std::move(r));
  }
  return out;
}

std::shared_ptr<const EngineState> memory_state() {
  auto loaded =
      snapshot::Snapshot::from_bytes(snapshot::encode_snapshot(sample()));
  EXPECT_TRUE(loaded) << loaded.error().to_string();
  auto state = EngineState::adopt(
      std::make_unique<snapshot::Snapshot>(std::move(*loaded)), "<memory>");
  EXPECT_TRUE(state) << state.error().to_string();
  return *state;
}

/// Every deterministic request the text protocol can express: hits,
/// misses, every malformed shape, batches, case-insensitivity.
std::vector<std::string> request_sequence() {
  std::vector<std::string> lines;
  for (std::uint32_t i = 0; i < 32; ++i) {
    lines.push_back("EXACT 10.0." + std::to_string(i) + ".0/24");
    lines.push_back("LPM 10.0." + std::to_string(i) + ".200");
  }
  lines.push_back("EXACT 192.0.2.0/24");   // miss
  lines.push_back("LPM 8.8.8.8");          // miss
  lines.push_back("exact 10.0.3.0/24");    // lower-case verb
  lines.push_back("lpm 10.0.3.9");
  lines.push_back("MLPM 10.0.3.200 8.8.8.8 10.0.7.1");
  lines.push_back("MLPM 10.0.0.1");
  lines.push_back("EXACT");                // missing argument
  lines.push_back("EXACT not-a-prefix");   // bad argument
  lines.push_back("EXACT 1.2.3.0/24 x");   // trailing junk
  lines.push_back("MLPM");                 // empty batch
  lines.push_back("MLPM 10.0.0.1 bogus");  // bad batch entry
  lines.push_back("FROB 10.0.0.0/24");     // unknown verb
  std::string big = "MLPM";
  for (int i = 0; i < 1025; ++i) big += " 10.0.0.1";
  lines.push_back(big);  // over the batch cap
  lines.push_back("HEALTH");
  return lines;
}

/// STATS and HEALTH carry wall-clock fields (latency quantiles, uptime)
/// that legitimately differ between the wire run and the oracle run; strip
/// them before comparing and check the keys are present instead.
std::string strip_timing(std::string json) {
  for (const char* key : {"\"p50_us\":", "\"p99_us\":", "\"uptime_s\":",
                          "\"active_conns\":"}) {
    std::size_t at = json.find(key);
    if (at == std::string::npos) continue;
    std::size_t end = at + std::string(key).size();
    while (end < json.size() && json[end] != ',' && json[end] != '}') ++end;
    json.erase(at + std::string(key).size(), end - (at + std::string(key).size()));
  }
  return json;
}

TEST(ServeTextDifferential, WireMatchesHandleRequestByteForByte) {
  // Oracle: answers in process. Subject: answers over the socket. Same
  // records, same request order, so the counters embedded in STATS agree.
  QueryServer oracle(memory_state(), QueryServer::Options{});
  QueryServer subject(memory_state(),
                      QueryServer::Options{.port = 0, .shards = 2});
  auto port = subject.start();
  ASSERT_TRUE(port) << port.error().to_string();
  auto client = QueryClient::connect("127.0.0.1", *port);
  ASSERT_TRUE(client) << client.error().to_string();

  for (const std::string& line : request_sequence()) {
    SCOPED_TRACE(line.substr(0, 64));
    std::string expected = oracle.handle_request(line);
    auto got = client->request(line);
    ASSERT_TRUE(got) << got.error().to_string();
    if (line == "HEALTH") {
      EXPECT_EQ(strip_timing(*got), strip_timing(expected));
    } else {
      EXPECT_EQ(*got, expected);
    }
  }

  // STATS last: every counter advanced identically on both sides. Only the
  // latency quantiles may differ (wall clock), so they are stripped.
  std::string expected = oracle.handle_request("STATS");
  auto got = client->request("STATS");
  ASSERT_TRUE(got);
  EXPECT_EQ(strip_timing(*got), strip_timing(expected));
  EXPECT_NE(got->find("\"p50_us\":"), std::string::npos);
  EXPECT_NE(got->find("\"p99_us\":"), std::string::npos);

  // METRICS still frames the multi-line Prometheus body with "# EOF".
  auto metrics = client->request_multiline("METRICS");
  ASSERT_TRUE(metrics);
  EXPECT_NE(metrics->find("# TYPE sublet_serve_requests_total counter"),
            std::string::npos);
  EXPECT_NE(metrics->find("# EOF"), std::string::npos);
  subject.stop();
}

// Text verbs and binary frames interleave freely on one connection; the
// text answers must be exactly what a text-only connection would get.
TEST(ServeTextDifferential, TextUnchangedWhenInterleavedWithBinary) {
  QueryServer oracle(memory_state(), QueryServer::Options{});
  QueryServer subject(memory_state(),
                      QueryServer::Options{.port = 0, .shards = 1});
  auto port = subject.start();
  ASSERT_TRUE(port);
  auto client = QueryClient::connect("127.0.0.1", *port);
  ASSERT_TRUE(client);

  std::vector<std::uint32_t> addrs = {(10u << 24) | (3u << 8) | 200u};
  for (int round = 0; round < 8; ++round) {
    std::string line = "EXACT 10.0." + std::to_string(round) + ".0/24";
    std::string expected = oracle.handle_request(line);
    auto text = client->request(line);
    ASSERT_TRUE(text) << text.error().to_string();
    EXPECT_EQ(*text, expected);
    auto bin = client->request_binary_batch(addrs);
    ASSERT_TRUE(bin) << bin.error().to_string();
    ASSERT_EQ(bin->results.size(), 1u);
    EXPECT_TRUE(bin->results[0].found);
  }
  subject.stop();
}

}  // namespace
}  // namespace sublet::serve
