#include "serve/server.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "leasing/dataset.h"
#include "leasing/pipeline.h"
#include "obs/metrics.h"
#include "leasing/report.h"
#include "serve/client.h"
#include "serve/engine_state.h"
#include "simnet/builder.h"
#include "simnet/emit.h"
#include "snapshot/writer.h"

namespace sublet::serve {
namespace {

using leasing::InferenceGroup;
using leasing::LeaseInference;

Prefix P(const char* s) { return *Prefix::parse(s); }

std::vector<LeaseInference> sample() {
  std::vector<LeaseInference> out;
  for (std::uint32_t i = 0; i < 32; ++i) {
    LeaseInference r;
    r.prefix = *Prefix::make(Ipv4Addr((10u << 24) | (i << 8)), 24);
    r.root_prefix = P("10.0.0.0/8");
    r.rir = whois::Rir::kRipe;
    r.group = i % 2 ? InferenceGroup::kLeasedWithRoot
                    : InferenceGroup::kAggregatedCustomer;
    r.holder_org = "ORG-" + std::to_string(i);
    r.holder_asns = {Asn(64512 + i)};
    r.netname = "NET-" + std::to_string(i);
    out.push_back(std::move(r));
  }
  return out;
}

/// Snapshot + engine + server wired together for one test.
struct Rig {
  explicit Rig(const std::vector<LeaseInference>& records,
               QueryServer::Options options = {}) {
    auto loaded =
        snapshot::Snapshot::from_bytes(snapshot::encode_snapshot(records));
    EXPECT_TRUE(loaded) << loaded.error().to_string();
    auto built = EngineState::adopt(
        std::make_unique<snapshot::Snapshot>(std::move(*loaded)),
        "<memory>");
    EXPECT_TRUE(built) << built.error().to_string();
    state = std::move(*built);
    engine = &state->engine();
    server = std::make_unique<QueryServer>(state, options);
  }

  std::shared_ptr<const EngineState> state;
  const QueryEngine* engine = nullptr;
  std::unique_ptr<QueryServer> server;
};

// --- protocol semantics, no sockets involved ---

TEST(ServeProtocol, ExactHitAndMiss) {
  Rig rig(sample());
  std::string hit = rig.server->handle_request("EXACT 10.0.0.0/24");
  EXPECT_NE(hit.find("\"found\":true"), std::string::npos);
  EXPECT_NE(hit.find("\"prefix\":\"10.0.0.0/24\""), std::string::npos);
  EXPECT_EQ(rig.server->handle_request("EXACT 192.0.2.0/24"),
            "{\"found\":false}");
}

TEST(ServeProtocol, LpmAddressMeansSlash32) {
  Rig rig(sample());
  std::string hit = rig.server->handle_request("LPM 10.0.3.200");
  EXPECT_NE(hit.find("\"prefix\":\"10.0.3.0/24\""), std::string::npos);
  EXPECT_EQ(rig.server->handle_request("LPM 8.8.8.8"), "{\"found\":false}");
}

TEST(ServeProtocol, VerbsAreCaseInsensitive) {
  Rig rig(sample());
  EXPECT_NE(rig.server->handle_request("exact 10.0.0.0/24").find(
                "\"found\":true"),
            std::string::npos);
  EXPECT_NE(rig.server->handle_request("lpm 10.0.0.7").find("\"found\":true"),
            std::string::npos);
  EXPECT_NE(rig.server->handle_request("stats").find("\"requests\":"),
            std::string::npos);
}

TEST(ServeProtocol, MalformedRequests) {
  Rig rig(sample());
  EXPECT_NE(rig.server->handle_request("FROB 10.0.0.0/24").find("\"error\""),
            std::string::npos);
  EXPECT_NE(rig.server->handle_request("EXACT not-a-prefix").find("\"error\""),
            std::string::npos);
  EXPECT_NE(rig.server->handle_request("EXACT").find("\"error\""),
            std::string::npos);
  EXPECT_NE(rig.server->handle_request("EXACT 1.2.3.0/24 extra")
                .find("\"error\""),
            std::string::npos);
  EXPECT_EQ(rig.server->stats().malformed, 4u);
}

TEST(ServeProtocol, StatsCountersAdvance) {
  Rig rig(sample());
  rig.server->handle_request("EXACT 10.0.0.0/24");   // hit
  rig.server->handle_request("EXACT 192.0.2.0/24");  // miss
  rig.server->handle_request("BOGUS");               // malformed
  StatsSnapshot stats = rig.server->stats();
  EXPECT_EQ(stats.requests, 3u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.malformed, 1u);
  std::string json = rig.server->handle_request("STATS");
  EXPECT_NE(json.find("\"requests\":4"), std::string::npos);
  EXPECT_NE(json.find("\"p99_us\":"), std::string::npos);
}

TEST(ServeProtocol, StatsIncludesSnapshotAggregate) {
  Rig rig(sample());
  std::string json = rig.server->handle_request("STATS");
  // Counter fields stay first (scrapers substring-match on them); the
  // snapshot aggregate rides along under its own key.
  EXPECT_NE(json.find("\"requests\":"), std::string::npos);
  EXPECT_NE(json.find("\"snapshot\":{"), std::string::npos);
  EXPECT_NE(json.find("\"lookup_backend\":\"stride24-8\""), std::string::npos);
  // 16 leased(g4) /24s out of the 32-record sample.
  EXPECT_NE(json.find("\"leased\":{\"records\":16,\"addresses\":4096}"),
            std::string::npos)
      << json;
  const std::string stride24 =
      "\"stride24\":" + std::to_string((std::size_t{1} << 24) * 4);
  EXPECT_NE(json.find(stride24), std::string::npos) << json;
}

TEST(ServeProtocol, MlpmBatchedLookups) {
  Rig rig(sample());
  std::string json =
      rig.server->handle_request("MLPM 10.0.3.200 8.8.8.8 10.0.7.1");
  EXPECT_NE(json.find("\"count\":3"), std::string::npos) << json;
  EXPECT_NE(json.find("{\"query\":\"10.0.3.200\",\"found\":true,"
                      "\"prefix\":\"10.0.3.0/24\""),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("{\"query\":\"8.8.8.8\",\"found\":false}"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"prefix\":\"10.0.7.0/24\""), std::string::npos)
      << json;
  StatsSnapshot stats = rig.server->stats();
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.misses, 1u);
}

TEST(ServeProtocol, MlpmMatchesSingleLpmAnswers) {
  Rig rig(sample());
  // The batched path must return byte-identical per-address records to the
  // single-lookup verb.
  std::string batch = rig.server->handle_request("MLPM 10.0.5.99 10.0.6.1");
  for (const char* addr : {"10.0.5.99", "10.0.6.1"}) {
    std::string single = rig.server->handle_request(std::string("LPM ") + addr);
    ASSERT_NE(single.find("\"prefix\":"), std::string::npos);
    const std::string prefix = single.substr(
        single.find("\"prefix\":"),
        single.find(',', single.find("\"prefix\":")) -
            single.find("\"prefix\":"));
    EXPECT_NE(batch.find(prefix), std::string::npos) << addr;
  }
}

TEST(ServeProtocol, MlpmRejectsBadInput) {
  Rig rig(sample());
  EXPECT_NE(rig.server->handle_request("MLPM").find("\"error\""),
            std::string::npos);
  EXPECT_NE(
      rig.server->handle_request("MLPM 10.0.0.1 not-an-address")
          .find("bad address 'not-an-address'"),
      std::string::npos);
  std::string big = "MLPM";
  for (int i = 0; i < 1025; ++i) big += " 10.0.0.1";
  EXPECT_NE(rig.server->handle_request(big).find("batch too large"),
            std::string::npos);
  EXPECT_EQ(rig.server->stats().malformed, 3u);
}

TEST(ServeProtocol, MetricsVerbReturnsPrometheusText) {
  Rig rig(sample());
  rig.server->handle_request("EXACT 10.0.0.0/24");
  std::string text = rig.server->handle_request("METRICS");
  EXPECT_NE(text.find("# TYPE sublet_serve_requests_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("sublet_serve_hits_total 1"), std::string::npos);
  EXPECT_NE(text.find("# TYPE sublet_serve_latency_ns histogram"),
            std::string::npos);
  // Global pipeline/snapshot families are exported too, even when zero.
  EXPECT_NE(text.find("sublet_snapshot_loads_total"), std::string::npos);
  // The body is framed for the newline-delimited wire protocol.
  EXPECT_EQ(text.substr(text.size() - 5), "# EOF");
}

// Differential check for the registry migration: every STATS field must be
// derivable from the server's metrics registry, and the latency quantiles
// must reproduce the historical LatencyHistogram bucket-midpoint estimate
// bit for bit.
TEST(ServeStatsDifferential, StatsJsonDerivesFromRegistry) {
  Rig rig(sample());
  rig.server->handle_request("EXACT 10.0.0.0/24");   // hit
  rig.server->handle_request("LPM 10.0.3.9");        // hit
  rig.server->handle_request("EXACT 192.0.2.0/24");  // miss
  rig.server->handle_request("BOGUS");               // malformed
  StatsSnapshot stats = rig.server->stats();
  std::vector<obs::MetricValue> values = rig.server->registry().snapshot();
  auto counter = [&](std::string_view name) -> std::uint64_t {
    for (const obs::MetricValue& v : values) {
      if (v.name == name) return v.counter_value;
    }
    ADD_FAILURE() << "registry is missing " << name;
    return ~std::uint64_t{0};
  };
  EXPECT_EQ(stats.requests, counter("sublet_serve_requests_total"));
  EXPECT_EQ(stats.hits, counter("sublet_serve_hits_total"));
  EXPECT_EQ(stats.misses, counter("sublet_serve_misses_total"));
  EXPECT_EQ(stats.malformed, counter("sublet_serve_malformed_total"));
  EXPECT_EQ(stats.shed, counter("sublet_serve_shed_total"));
  EXPECT_EQ(stats.timeouts, counter("sublet_serve_timeouts_total"));
  EXPECT_EQ(stats.accept_retries,
            counter("sublet_serve_accept_retries_total"));
  EXPECT_EQ(stats.reloads, counter("sublet_serve_reloads_total"));
  EXPECT_EQ(stats.reload_failures,
            counter("sublet_serve_reload_failures_total"));

  // The latency family is split per verb (exact/lpm/mlpm/bin/history/at/
  // other); the differential merges every series bucket-by-bucket, exactly
  // as stats() does, and the result must reproduce the old
  // single-histogram math.
  obs::HistogramSnapshot latency;
  std::size_t series = 0;
  for (const obs::MetricValue& v : values) {
    if (v.name.rfind("sublet_serve_latency_ns{", 0) != 0) continue;
    ++series;
    latency.count += v.histogram.count;
    latency.sum += v.histogram.sum;
    for (std::size_t b = 0; b < latency.buckets.size(); ++b) {
      latency.buckets[b] += v.histogram.buckets[b];
    }
  }
  ASSERT_EQ(series, 7u);  // exact, lpm, mlpm, bin, history, at, other
  EXPECT_EQ(latency.count, stats.requests);
  // Independent reimplementation of the pre-registry LatencyHistogram
  // quantile: midpoint of the power-of-two bucket holding the target rank,
  // nanoseconds scaled to microseconds. Exact double equality is the test.
  auto legacy_quantile_us = [&](double q) -> double {
    if (latency.count == 0) return 0.0;
    auto target =
        static_cast<std::uint64_t>(q * static_cast<double>(latency.count));
    if (target >= latency.count) target = latency.count - 1;
    std::uint64_t seen = 0;
    for (std::size_t b = 0; b < latency.buckets.size(); ++b) {
      seen += latency.buckets[b];
      if (seen > target) {
        if (b == 0) return 0.0;
        return 1.5 * static_cast<double>(std::uint64_t{1} << (b - 1)) /
               1000.0;
      }
    }
    return 0.0;
  };
  EXPECT_EQ(stats.p50_us, legacy_quantile_us(0.50));
  EXPECT_EQ(stats.p99_us, legacy_quantile_us(0.99));
}

TEST(ServeStatsDifferential, MultipleServersKeepIndependentCounters) {
  Rig a(sample());
  Rig b(sample());
  a.server->handle_request("EXACT 10.0.0.0/24");
  a.server->handle_request("EXACT 10.0.1.0/24");
  b.server->handle_request("EXACT 10.0.0.0/24");
  EXPECT_EQ(a.server->stats().requests, 2u);
  EXPECT_EQ(b.server->stats().requests, 1u);
}

TEST(ServeProtocol, ShutdownRequestsStop) {
  Rig rig(sample());
  EXPECT_FALSE(rig.server->stop_requested());
  std::string ack = rig.server->handle_request("SHUTDOWN");
  EXPECT_NE(ack.find("\"stopping\":true"), std::string::npos);
  EXPECT_TRUE(rig.server->stop_requested());
}

// --- real sockets on the loopback interface ---

TEST(ServeServer, ClientRoundTrip) {
  Rig rig(sample());
  auto port = rig.server->start();
  ASSERT_TRUE(port) << port.error().to_string();
  auto client = QueryClient::connect("127.0.0.1", *port);
  ASSERT_TRUE(client) << client.error().to_string();
  auto response = client->request("EXACT 10.0.5.0/24");
  ASSERT_TRUE(response) << response.error().to_string();
  EXPECT_EQ(*response, rig.engine->record_json(5));
  // Several requests over one connection.
  for (int i = 0; i < 10; ++i) {
    auto again = client->request("LPM 10.0.5.99");
    ASSERT_TRUE(again);
    EXPECT_EQ(*again, rig.engine->record_json(5));
  }
  rig.server->stop();
}

TEST(ServeServer, EphemeralPortsAreIndependent) {
  Rig a(sample());
  Rig b(sample());
  auto port_a = a.server->start();
  auto port_b = b.server->start();
  ASSERT_TRUE(port_a);
  ASSERT_TRUE(port_b);
  EXPECT_NE(*port_a, *port_b);
}

TEST(ServeServer, ShutdownUnblocksWait) {
  Rig rig(sample());
  auto port = rig.server->start();
  ASSERT_TRUE(port);
  std::thread waiter([&] { rig.server->wait(); });
  auto client = QueryClient::connect("127.0.0.1", *port);
  ASSERT_TRUE(client);
  auto ack = client->request("SHUTDOWN");
  ASSERT_TRUE(ack);
  waiter.join();
  EXPECT_TRUE(rig.server->stop_requested());
}

void hammer(std::uint16_t port, const QueryEngine& engine, int rounds,
            std::atomic<int>& failures) {
  auto client = QueryClient::connect("127.0.0.1", port);
  if (!client) {
    failures.fetch_add(1);
    return;
  }
  for (int i = 0; i < rounds; ++i) {
    std::uint32_t leaf = static_cast<std::uint32_t>(i) % 32;
    auto response =
        client->request("EXACT 10.0." + std::to_string(leaf) + ".0/24");
    if (!response || *response != engine.record_json(leaf)) {
      failures.fetch_add(1);
      return;
    }
  }
}

TEST(ServeConcurrency, ManyClientsOneSnapshot) {
  for (unsigned threads : {1u, 8u}) {
    Rig rig(sample(), QueryServer::Options{.port = 0, .threads = threads});
    auto port = rig.server->start();
    ASSERT_TRUE(port) << port.error().to_string();
    std::atomic<int> failures{0};
    std::vector<std::thread> clients;
    for (int c = 0; c < 8; ++c) {
      clients.emplace_back(
          [&, c] { hammer(*port, *rig.engine, 50 + c, failures); });
    }
    for (auto& t : clients) t.join();
    EXPECT_EQ(failures.load(), 0) << "server threads=" << threads;
    StatsSnapshot stats = rig.server->stats();
    EXPECT_GE(stats.requests, 8u * 50u);
    EXPECT_EQ(stats.requests, stats.hits);
    rig.server->stop();
  }
}

TEST(ServeConcurrency, StopWithClientsConnected) {
  Rig rig(sample(), QueryServer::Options{.port = 0, .threads = 4});
  auto port = rig.server->start();
  ASSERT_TRUE(port);
  std::vector<QueryClient> idle;
  for (int i = 0; i < 4; ++i) {
    auto client = QueryClient::connect("127.0.0.1", *port);
    ASSERT_TRUE(client);
    auto response = client->request("EXACT 10.0.0.0/24");
    ASSERT_TRUE(response);
    idle.push_back(std::move(*client));
  }
  rig.server->stop();  // must unblock the 4 parked handlers and join
}

// --- the paper-pipeline end-to-end: dataset -> classify -> CSV artifact
// -> snapshot -> serve -> every leaf over TCP, byte-equivalent at 1 and 8
// server threads ---

class ServeEndToEnd : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    dir_ = new std::string(testing::TempDir() + "/sublet_serve_e2e_" +
                           std::to_string(::getpid()));
    sim::WorldConfig config;
    config.scale = 0.03;
    config.seed = 20240401;
    sim::World world = sim::build_world(config);
    sim::emit_world(world, *dir_);
    leasing::DatasetBundle bundle = leasing::load_dataset(*dir_);
    asgraph::AsGraph graph(&bundle.as_rel, &bundle.as2org);
    leasing::Pipeline pipeline(bundle.rib, graph);
    std::vector<LeaseInference> results;
    for (const whois::WhoisDb& db : bundle.whois) {
      auto partial = pipeline.classify(db);
      results.insert(results.end(), partial.begin(), partial.end());
    }
    // The released artifact is the CSV; the snapshot is built from a fresh
    // parse of it, exactly like `sublet snapshot write`.
    std::ostringstream csv;
    leasing::write_inferences_csv(csv, results);
    std::istringstream in(csv.str());
    auto parsed = leasing::read_inferences_csv(in);
    ASSERT_TRUE(parsed) << parsed.error().to_string();
    artifact_ = new std::vector<LeaseInference>(std::move(*parsed));
    ASSERT_FALSE(artifact_->empty());
  }

  static void TearDownTestSuite() {
    delete artifact_;
    artifact_ = nullptr;
    delete dir_;
    dir_ = nullptr;
  }

  static std::string* dir_;
  static std::vector<LeaseInference>* artifact_;
};

std::string* ServeEndToEnd::dir_ = nullptr;
std::vector<LeaseInference>* ServeEndToEnd::artifact_ = nullptr;

TEST_F(ServeEndToEnd, EveryLeafByteEquivalent) {
  for (unsigned threads : {1u, 8u}) {
    Rig rig(*artifact_, QueryServer::Options{.port = 0, .threads = threads});
    auto port = rig.server->start();
    ASSERT_TRUE(port) << port.error().to_string();
    // Expected responses come straight from the CSV-derived records.
    std::vector<std::string> expected;
    expected.reserve(artifact_->size());
    for (std::uint32_t i = 0; i < artifact_->size(); ++i) {
      expected.push_back(rig.engine->record_json(i));
    }
    const unsigned kClients = 8;
    std::atomic<int> failures{0};
    std::vector<std::thread> clients;
    for (unsigned c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        auto client = QueryClient::connect("127.0.0.1", *port);
        if (!client) {
          failures.fetch_add(1);
          return;
        }
        for (std::size_t i = c; i < artifact_->size(); i += kClients) {
          auto response = client->request(
              "EXACT " + (*artifact_)[i].prefix.to_string());
          if (!response || *response != expected[i]) {
            failures.fetch_add(1);
            return;
          }
        }
      });
    }
    for (auto& t : clients) t.join();
    EXPECT_EQ(failures.load(), 0) << "server threads=" << threads;
    rig.server->stop();
  }
}

}  // namespace
}  // namespace sublet::serve
