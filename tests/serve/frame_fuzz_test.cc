// Adversarial binary-frame matrix (docs/SERVING.md): bad magic, oversized
// payload length, truncated frames, ragged payloads, and unknown opcodes.
// Runs as its own suite binary carrying the `frames` label so the
// asan-ubsan preset exercises the frame parser under sanitizers.
//
// The expected behavior is deliberately asymmetric (see serve/wire.h):
//   bad magic      -> close (framing is lost; nothing can be trusted)
//   oversized len  -> kTooLarge error frame, then close (refuse to buffer)
//   ragged payload -> kBadFrame error frame, connection survives
//   bad opcode     -> kBadOpcode error frame, connection survives
//   truncation     -> the server waits (torn read), and a peer that gives
//                     up mid-frame just gets its connection reaped
// In every case the server itself must keep serving other connections.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "serve/client.h"
#include "serve/engine_state.h"
#include "serve/server.h"
#include "serve/wire.h"
#include "snapshot/writer.h"

namespace sublet::serve {
namespace {

using leasing::InferenceGroup;
using leasing::LeaseInference;

std::shared_ptr<const EngineState> memory_state() {
  std::vector<LeaseInference> records;
  for (std::uint32_t i = 0; i < 8; ++i) {
    LeaseInference r;
    r.prefix = *Prefix::make(Ipv4Addr((10u << 24) | (i << 8)), 24);
    r.root_prefix = *Prefix::parse("10.0.0.0/8");
    r.rir = whois::Rir::kRipe;
    r.group = InferenceGroup::kLeasedWithRoot;
    r.holder_org = "ORG";
    r.holder_asns = {Asn(64512)};
    r.netname = "NET-" + std::to_string(i);
    records.push_back(std::move(r));
  }
  auto loaded = snapshot::Snapshot::from_bytes(
      snapshot::encode_snapshot(records));
  EXPECT_TRUE(loaded) << loaded.error().to_string();
  auto state = EngineState::adopt(
      std::make_unique<snapshot::Snapshot>(std::move(*loaded)), "<memory>");
  EXPECT_TRUE(state) << state.error().to_string();
  return *state;
}

struct RawConn {
  int fd = -1;

  static std::optional<RawConn> open(std::uint16_t port) {
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return std::nullopt;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      ::close(fd);
      return std::nullopt;
    }
    return RawConn{fd};
  }

  bool send_all(std::string_view data) {
    while (!data.empty()) {
      ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
      if (n <= 0) return false;
      data.remove_prefix(static_cast<std::size_t>(n));
    }
    return true;
  }

  /// Read until EOF or `timeout_ms`; returns everything received.
  std::string read_to_eof(int timeout_ms) {
    std::string out;
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(timeout_ms);
    char chunk[4096];
    for (;;) {
      auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                      deadline - std::chrono::steady_clock::now())
                      .count();
      if (left <= 0) return out;
      pollfd pfd{fd, POLLIN, 0};
      int rc = ::poll(&pfd, 1, static_cast<int>(left));
      if (rc < 0 && errno == EINTR) continue;
      if (rc <= 0) return out;
      ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return out;  // EOF
      out.append(chunk, static_cast<std::size_t>(n));
    }
  }

  bool read_exact(std::string& out, std::size_t want, int timeout_ms) {
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(timeout_ms);
    char chunk[4096];
    while (out.size() < want) {
      auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                      deadline - std::chrono::steady_clock::now())
                      .count();
      if (left <= 0) return false;
      pollfd pfd{fd, POLLIN, 0};
      int rc = ::poll(&pfd, 1, static_cast<int>(left));
      if (rc < 0 && errno == EINTR) continue;
      if (rc <= 0) return false;
      ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return false;
      out.append(chunk, static_cast<std::size_t>(n));
    }
    return true;
  }

  ~RawConn() {
    if (fd >= 0) ::close(fd);
  }
  RawConn(RawConn&& other) noexcept : fd(other.fd) { other.fd = -1; }
  explicit RawConn(int fd) : fd(fd) {}
  RawConn(const RawConn&) = delete;
};

std::string lpm_frame(std::uint32_t request_id,
                      const std::vector<std::uint32_t>& addrs) {
  std::string frame;
  wire::FrameHeader header;
  header.opcode = wire::kOpLpmBatch;
  header.request_id = request_id;
  header.payload_len = static_cast<std::uint32_t>(addrs.size() * 4);
  wire::append_header(frame, header);
  for (std::uint32_t addr : addrs) {
    char buf[4];
    wire::store_u32le(buf, addr);
    frame.append(buf, 4);
  }
  return frame;
}

class FrameFuzz : public testing::Test {
 protected:
  void SetUp() override {
    server_ = std::make_unique<QueryServer>(
        memory_state(), QueryServer::Options{.port = 0, .shards = 1});
    auto port = server_->start();
    ASSERT_TRUE(port) << port.error().to_string();
    port_ = *port;
  }

  void TearDown() override {
    // Whatever the fuzz case did, the server must still answer a clean
    // request on a fresh connection before it shuts down.
    auto client = QueryClient::connect("127.0.0.1", port_);
    ASSERT_TRUE(client) << client.error().to_string();
    auto response = client->request("EXACT 10.0.1.0/24");
    ASSERT_TRUE(response) << response.error().to_string();
    EXPECT_NE(response->find("\"found\":true"), std::string::npos);
    server_->stop();
  }

  std::unique_ptr<QueryServer> server_;
  std::uint16_t port_ = 0;
};

TEST_F(FrameFuzz, BadMagicClosesTheConnection) {
  auto conn = RawConn::open(port_);
  ASSERT_TRUE(conn);
  // First byte matches the sniff (0xB5) but the full magic is wrong, so
  // this cannot be routed as text either: framing is lost, close.
  std::string junk = "\xB5\x42\x4C";
  junk.push_back('\0');  // magic byte 3: 0x00 instead of 0x54
  junk += " garbage that is not a frame";
  ASSERT_TRUE(conn->send_all(junk));
  std::string received = conn->read_to_eof(5000);
  EXPECT_TRUE(received.empty()) << "got: " << received;
  EXPECT_GE(server_->stats().malformed, 1u);
}

TEST_F(FrameFuzz, OversizedLengthGetsTooLargeThenClose) {
  auto conn = RawConn::open(port_);
  ASSERT_TRUE(conn);
  std::string frame;
  wire::FrameHeader header;
  header.opcode = wire::kOpLpmBatch;
  header.request_id = 99;
  header.payload_len = wire::kMaxPayload + 1;
  wire::append_header(frame, header);
  ASSERT_TRUE(conn->send_all(frame));
  // The error frame comes back, then EOF: the server refuses to buffer an
  // unbounded payload and cuts the connection.
  std::string received = conn->read_to_eof(5000);
  ASSERT_GE(received.size(), wire::kHeaderSize);
  wire::FrameHeader echoed;
  ASSERT_TRUE(wire::decode_header(received.data(), echoed));
  EXPECT_EQ(echoed.status, wire::kTooLarge);
  EXPECT_EQ(echoed.request_id, 99u);
  EXPECT_EQ(echoed.payload_len, 0u);
  EXPECT_EQ(received.size(), wire::kHeaderSize);  // then EOF, nothing more
}

TEST_F(FrameFuzz, RaggedPayloadSurvivesWithBadFrameStatus) {
  auto conn = RawConn::open(port_);
  ASSERT_TRUE(conn);
  std::string frame;
  wire::FrameHeader header;
  header.opcode = wire::kOpLpmBatch;
  header.request_id = 7;
  header.payload_len = 6;  // not a multiple of 4: ragged LPM batch
  wire::append_header(frame, header);
  frame.append(6, '\0');
  ASSERT_TRUE(conn->send_all(frame));
  std::string response;
  ASSERT_TRUE(conn->read_exact(response, wire::kHeaderSize, 5000));
  wire::FrameHeader echoed;
  ASSERT_TRUE(wire::decode_header(response.data(), echoed));
  EXPECT_EQ(echoed.status, wire::kBadFrame);
  EXPECT_EQ(echoed.request_id, 7u);

  // The stream is still framed: a valid frame on the same connection works.
  ASSERT_TRUE(conn->send_all(lpm_frame(8, {(10u << 24) | (1u << 8)})));
  std::string ok;
  ASSERT_TRUE(conn->read_exact(
      ok, wire::kHeaderSize + wire::kResultSize, 5000));
  ASSERT_TRUE(wire::decode_header(ok.data(), echoed));
  EXPECT_EQ(echoed.status, wire::kOk);
  EXPECT_EQ(echoed.request_id, 8u);
}

TEST_F(FrameFuzz, UnknownOpcodeSurvivesWithBadOpcodeStatus) {
  auto conn = RawConn::open(port_);
  ASSERT_TRUE(conn);
  std::string frame;
  wire::FrameHeader header;
  header.opcode = 0x7F;
  header.request_id = 11;
  header.payload_len = 4;
  wire::append_header(frame, header);
  frame.append(4, '\0');
  ASSERT_TRUE(conn->send_all(frame));
  std::string response;
  ASSERT_TRUE(conn->read_exact(response, wire::kHeaderSize, 5000));
  wire::FrameHeader echoed;
  ASSERT_TRUE(wire::decode_header(response.data(), echoed));
  EXPECT_EQ(echoed.status, wire::kBadOpcode);
  EXPECT_EQ(echoed.request_id, 11u);

  ASSERT_TRUE(conn->send_all(lpm_frame(12, {(10u << 24) | (2u << 8)})));
  std::string ok;
  ASSERT_TRUE(conn->read_exact(
      ok, wire::kHeaderSize + wire::kResultSize, 5000));
  ASSERT_TRUE(wire::decode_header(ok.data(), echoed));
  EXPECT_EQ(echoed.status, wire::kOk);
}

TEST_F(FrameFuzz, TruncatedFramesNeverGetAPartialAnswer) {
  // Every strict prefix of a valid two-address frame: the server must wait
  // silently (torn read) and never answer or crash; the abandoning client
  // just closes.
  const std::string full =
      lpm_frame(21, {(10u << 24) | (3u << 8) | 200u, 0x08080808u});
  for (std::size_t cut = 1; cut < full.size(); ++cut) {
    SCOPED_TRACE("cut=" + std::to_string(cut));
    auto conn = RawConn::open(port_);
    ASSERT_TRUE(conn);
    ASSERT_TRUE(conn->send_all(std::string_view(full).substr(0, cut)));
    // No response may arrive for an incomplete frame.
    std::string received = conn->read_to_eof(50);
    EXPECT_TRUE(received.empty()) << "got " << received.size() << " bytes";
  }
  // And the completed frame still works after all that abuse.
  auto conn = RawConn::open(port_);
  ASSERT_TRUE(conn);
  ASSERT_TRUE(conn->send_all(full));
  std::string response;
  ASSERT_TRUE(conn->read_exact(
      response, wire::kHeaderSize + 2 * wire::kResultSize, 5000));
  wire::FrameHeader echoed;
  ASSERT_TRUE(wire::decode_header(response.data(), echoed));
  EXPECT_EQ(echoed.status, wire::kOk);
  EXPECT_EQ(echoed.request_id, 21u);
}

TEST_F(FrameFuzz, ExactBatchValidatesPrefixLengths) {
  auto conn = RawConn::open(port_);
  ASSERT_TRUE(conn);
  // One entry with prefix_len 33: invalid, the whole frame is rejected.
  std::string frame;
  wire::FrameHeader header;
  header.opcode = wire::kOpExactBatch;
  header.request_id = 31;
  header.payload_len = 8;
  wire::append_header(frame, header);
  char entry[8] = {};
  wire::store_u32le(entry, (10u << 24) | (1u << 8));
  entry[4] = 33;
  frame.append(entry, 8);
  ASSERT_TRUE(conn->send_all(frame));
  std::string response;
  ASSERT_TRUE(conn->read_exact(response, wire::kHeaderSize, 5000));
  wire::FrameHeader echoed;
  ASSERT_TRUE(wire::decode_header(response.data(), echoed));
  EXPECT_EQ(echoed.status, wire::kBadFrame);

  // A valid exact batch on the same connection answers normally.
  frame.clear();
  header.request_id = 32;
  wire::append_header(frame, header);
  entry[4] = 24;
  frame.append(entry, 8);
  ASSERT_TRUE(conn->send_all(frame));
  std::string ok;
  ASSERT_TRUE(conn->read_exact(
      ok, wire::kHeaderSize + wire::kResultSize, 5000));
  ASSERT_TRUE(wire::decode_header(ok.data(), echoed));
  EXPECT_EQ(echoed.status, wire::kOk);
  wire::Result hit = wire::decode_result(ok.data() + wire::kHeaderSize);
  EXPECT_EQ(hit.prefix_addr, (10u << 24) | (1u << 8));
  EXPECT_EQ(hit.prefix_len, 24);
}

TEST_F(FrameFuzz, EpochFieldEchoesInTheResponseHeader) {
  // Epoch 0 (latest) on a single-snapshot server: answered, echoed back.
  auto conn = RawConn::open(port_);
  ASSERT_TRUE(conn);
  ASSERT_TRUE(conn->send_all(lpm_frame(41, {(10u << 24) | (1u << 8)})));
  std::string response;
  ASSERT_TRUE(conn->read_exact(
      response, wire::kHeaderSize + wire::kResultSize, 5000));
  wire::FrameHeader echoed;
  ASSERT_TRUE(wire::decode_header(response.data(), echoed));
  EXPECT_EQ(echoed.status, wire::kOk);
  EXPECT_EQ(echoed.epoch, 0u);
}

TEST_F(FrameFuzz, NonzeroEpochWithoutCatalogSurvivesWithBadEpochStatus) {
  // This server has no catalog behind it: a nonzero epoch is a body-level
  // error (kBadEpoch), and — like kBadFrame — the connection survives.
  auto conn = RawConn::open(port_);
  ASSERT_TRUE(conn);
  std::string frame;
  wire::FrameHeader header;
  header.opcode = wire::kOpLpmBatch;
  header.request_id = 51;
  header.epoch = 1704067200;
  header.payload_len = 4;
  wire::append_header(frame, header);
  char buf[4];
  wire::store_u32le(buf, (10u << 24) | (1u << 8));
  frame.append(buf, 4);
  ASSERT_TRUE(conn->send_all(frame));
  std::string response;
  ASSERT_TRUE(conn->read_exact(response, wire::kHeaderSize, 5000));
  wire::FrameHeader echoed;
  ASSERT_TRUE(wire::decode_header(response.data(), echoed));
  EXPECT_EQ(echoed.status, wire::kBadEpoch);
  EXPECT_EQ(echoed.request_id, 51u);
  EXPECT_EQ(echoed.payload_len, 0u);

  // The stream stays framed: a normal epoch-0 frame answers afterwards.
  ASSERT_TRUE(conn->send_all(lpm_frame(52, {(10u << 24) | (1u << 8)})));
  std::string ok;
  ASSERT_TRUE(conn->read_exact(
      ok, wire::kHeaderSize + wire::kResultSize, 5000));
  ASSERT_TRUE(wire::decode_header(ok.data(), echoed));
  EXPECT_EQ(echoed.status, wire::kOk);
  EXPECT_EQ(echoed.request_id, 52u);
}

TEST_F(FrameFuzz, InspectOnABinarySpeakingConnectionIsNotMisrouted) {
  // The dual-protocol sniff is per request, not per connection: a peer
  // that has already spoken binary frames can still issue the text
  // INSPECT verb (first byte 'I' != 0xB5) and must get the JSON dump —
  // not a bad-magic close — and the stream must stay framed for binary
  // traffic afterwards.
  auto conn = RawConn::open(port_);
  ASSERT_TRUE(conn);
  ASSERT_TRUE(conn->send_all(lpm_frame(71, {(10u << 24) | (1u << 8)})));
  std::string bin;
  ASSERT_TRUE(conn->read_exact(
      bin, wire::kHeaderSize + wire::kResultSize, 5000));
  wire::FrameHeader echoed;
  ASSERT_TRUE(wire::decode_header(bin.data(), echoed));
  EXPECT_EQ(echoed.status, wire::kOk);

  ASSERT_TRUE(conn->send_all("INSPECT\n"));
  std::string line;
  auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (line.find('\n') == std::string::npos &&
         std::chrono::steady_clock::now() < deadline) {
    std::string chunk;
    if (!conn->read_exact(chunk, 1, 1000)) break;
    line += chunk;
  }
  ASSERT_NE(line.find('\n'), std::string::npos) << "got: " << line;
  EXPECT_EQ(line.rfind("{\"ok\":true", 0), 0u) << line;
  // The connection-table row for this very connection is flagged binary.
  EXPECT_NE(line.find("\"binary\":true"), std::string::npos) << line;

  // And binary frames still answer on the same connection.
  ASSERT_TRUE(conn->send_all(lpm_frame(72, {(10u << 24) | (2u << 8)})));
  std::string ok;
  ASSERT_TRUE(conn->read_exact(
      ok, wire::kHeaderSize + wire::kResultSize, 5000));
  ASSERT_TRUE(wire::decode_header(ok.data(), echoed));
  EXPECT_EQ(echoed.status, wire::kOk);
  EXPECT_EQ(echoed.request_id, 72u);
}

TEST_F(FrameFuzz, EpochFieldIsIgnoredForMalformedFrames) {
  // A ragged payload with a nonzero epoch: frame validation wins, the
  // error status is kBadFrame (not kBadEpoch), connection survives.
  auto conn = RawConn::open(port_);
  ASSERT_TRUE(conn);
  std::string frame;
  wire::FrameHeader header;
  header.opcode = wire::kOpLpmBatch;
  header.request_id = 61;
  header.epoch = 12345;
  header.payload_len = 6;  // ragged
  wire::append_header(frame, header);
  frame.append(6, '\0');
  ASSERT_TRUE(conn->send_all(frame));
  std::string response;
  ASSERT_TRUE(conn->read_exact(response, wire::kHeaderSize, 5000));
  wire::FrameHeader echoed;
  ASSERT_TRUE(wire::decode_header(response.data(), echoed));
  EXPECT_EQ(echoed.status, wire::kBadFrame);
  EXPECT_EQ(echoed.request_id, 61u);
}

}  // namespace
}  // namespace sublet::serve
