// Event-loop core behavior of the epoll rewrite (docs/SERVING.md):
// idle-connection scaling (the 10k soak with a per-connection memory
// budget), condition-variable drain latency, torn/partial reads on both
// protocols, binary-batch equivalence with the text verbs, pipelining,
// and hot reload under pipelined binary load.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "serve/client.h"
#include "serve/engine_state.h"
#include "serve/server.h"
#include "serve/wire.h"
#include "snapshot/writer.h"

namespace sublet::serve {
namespace {

using leasing::InferenceGroup;
using leasing::LeaseInference;

Prefix P(const char* s) { return *Prefix::parse(s); }

std::vector<LeaseInference> sample(const std::string& tag = "A") {
  std::vector<LeaseInference> out;
  for (std::uint32_t i = 0; i < 32; ++i) {
    LeaseInference r;
    r.prefix = *Prefix::make(Ipv4Addr((10u << 24) | (i << 8)), 24);
    r.root_prefix = P("10.0.0.0/8");
    r.rir = whois::Rir::kRipe;
    r.group = i % 2 ? InferenceGroup::kLeasedWithRoot
                    : InferenceGroup::kAggregatedCustomer;
    r.holder_org = "ORG-" + std::to_string(i);
    r.holder_asns = {Asn(64512 + i)};
    r.netname = "NET-" + tag + "-" + std::to_string(i);
    out.push_back(std::move(r));
  }
  return out;
}

std::shared_ptr<const EngineState> memory_state(const std::string& tag = "A") {
  auto loaded = snapshot::Snapshot::from_bytes(
      snapshot::encode_snapshot(sample(tag)));
  EXPECT_TRUE(loaded) << loaded.error().to_string();
  auto state = EngineState::adopt(
      std::make_unique<snapshot::Snapshot>(std::move(*loaded)), "<memory>");
  EXPECT_TRUE(state) << state.error().to_string();
  return *state;
}

std::string temp_snapshot(const std::string& name, const std::string& tag) {
  std::string path = testing::TempDir() + "/sublet_event_" +
                     std::to_string(::getpid()) + "_" + name + ".snap";
  snapshot::write_snapshot_file(path, sample(tag));
  return path;
}

/// Raw TCP connection for byte-level protocol tests.
struct RawConn {
  int fd = -1;

  static std::optional<RawConn> open(std::uint16_t port) {
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return std::nullopt;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      ::close(fd);
      return std::nullopt;
    }
    return RawConn{fd};
  }

  bool send_all(std::string_view data) {
    while (!data.empty()) {
      ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
      if (n <= 0) return false;
      data.remove_prefix(static_cast<std::size_t>(n));
    }
    return true;
  }

  /// Read exactly `want` bytes or fail at `timeout_ms`.
  bool read_exact(std::string& out, std::size_t want, int timeout_ms) {
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(timeout_ms);
    char chunk[4096];
    while (out.size() < want) {
      auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                      deadline - std::chrono::steady_clock::now())
                      .count();
      if (left <= 0) return false;
      pollfd pfd{fd, POLLIN, 0};
      int rc = ::poll(&pfd, 1, static_cast<int>(left));
      if (rc < 0 && errno == EINTR) continue;
      if (rc <= 0) return false;
      ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return false;
      out.append(chunk, static_cast<std::size_t>(n));
    }
    return true;
  }

  ~RawConn() {
    if (fd >= 0) ::close(fd);
  }
  RawConn(RawConn&& other) noexcept : fd(other.fd) { other.fd = -1; }
  explicit RawConn(int fd) : fd(fd) {}
  RawConn(const RawConn&) = delete;
};

// --- the 10k-idle-connection soak ---

/// Per-connection memory budget: Conn object + (empty) buffers + the
/// intrusive timer links. Idle connections never grow their buffers — the
/// read path lands in a shard-owned scratch chunk — so the real footprint
/// is just the Conn struct; 1 KiB leaves generous headroom.
constexpr std::size_t kPerConnBudgetBytes = 1024;

/// The client side of the soak, run in a forked child so the 10k client
/// fds and the 10k server fds each fit under a 20k RLIMIT_NOFILE. The
/// child is forked before the server spawns any thread, so it is
/// single-threaded and free to allocate. Protocol over the socketpair:
/// parent sends the port (2 bytes); the child connects in chunks of
/// `kChunk`, sending 'c' after each chunk and waiting for the parent's
/// 'a' ack (credit-based throttling keeps the accept backlog from
/// overflowing); 'd' when done or 'f' on failure; then it parks until the
/// parent's close byte arrives.
constexpr std::size_t kSoakConns = 10000;
constexpr std::size_t kSoakChunk = 100;

[[noreturn]] void soak_client_child(int control) {
  auto die = [&] {
    char f = 'f';
    [[maybe_unused]] ssize_t rc = ::write(control, &f, 1);
    ::_exit(1);
  };
  unsigned char port_bytes[2];
  std::size_t got = 0;
  while (got < 2) {
    ssize_t n = ::read(control, port_bytes + got, 2 - got);
    if (n <= 0) die();
    got += static_cast<std::size_t>(n);
  }
  const std::uint16_t port =
      static_cast<std::uint16_t>(port_bytes[0] | (port_bytes[1] << 8));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  std::vector<int> fds;
  fds.reserve(kSoakConns);
  for (std::size_t i = 0; i < kSoakConns; ++i) {
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) die();
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      die();
    }
    fds.push_back(fd);
    if (fds.size() % kSoakChunk == 0) {
      char c = 'c';
      if (::write(control, &c, 1) != 1) die();
      char ack = 0;
      if (::read(control, &ack, 1) != 1 || ack != 'a') die();
    }
  }
  char d = 'd';
  if (::write(control, &d, 1) != 1) die();
  char parked = 0;
  [[maybe_unused]] ssize_t rc = ::read(control, &parked, 1);
  for (int fd : fds) ::close(fd);
  ::_exit(0);
}

TEST(ServeSoak, TenThousandIdleConnectionsStayCheap) {
  // Each side of the soak needs ~10k fds; raise the soft limit to the
  // hard cap and skip only if even one side cannot fit.
  rlimit limit{};
  ASSERT_EQ(getrlimit(RLIMIT_NOFILE, &limit), 0);
  if (limit.rlim_cur < limit.rlim_max) {
    rlimit raised = limit;
    raised.rlim_cur = limit.rlim_max;
    ASSERT_EQ(setrlimit(RLIMIT_NOFILE, &raised), 0);
    limit = raised;
  }
  if (limit.rlim_cur < kSoakConns + 300) {
    GTEST_SKIP() << "RLIMIT_NOFILE " << limit.rlim_cur
                 << " cannot hold the server side of a " << kSoakConns
                 << "-connection soak";
  }

  int control[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, control), 0);
  // Fork before the server exists: the child must be single-threaded.
  pid_t child = ::fork();
  ASSERT_GE(child, 0) << strerror(errno);
  if (child == 0) {
    ::close(control[0]);
    soak_client_child(control[1]);
  }
  ::close(control[1]);

  QueryServer server(memory_state(),
                     QueryServer::Options{.port = 0,
                                          .shards = 2,
                                          .max_conns = 0,
                                          .idle_timeout_ms = 600000});
  auto port = server.start();
  ASSERT_TRUE(port) << port.error().to_string();
  unsigned char port_bytes[2] = {
      static_cast<unsigned char>(*port & 0xFF),
      static_cast<unsigned char>((*port >> 8) & 0xFF)};
  ASSERT_EQ(::write(control[0], port_bytes, 2), 2);

  // Ack each chunk once the shards have adopted it, so the child never
  // outruns the 128-entry listen backlog.
  auto read_byte = [&](int timeout_ms) -> char {
    pollfd pfd{control[0], POLLIN, 0};
    for (;;) {
      int rc = ::poll(&pfd, 1, timeout_ms);
      if (rc < 0 && errno == EINTR) continue;
      if (rc <= 0) return 0;
      char byte = 0;
      if (::read(control[0], &byte, 1) != 1) return 0;
      return byte;
    }
  };
  std::size_t acked = 0;
  for (;;) {
    char byte = read_byte(60000);
    ASSERT_NE(byte, 0) << "soak child went quiet after " << acked
                       << " connections";
    ASSERT_NE(byte, 'f') << "soak child failed after " << acked
                         << " connections";
    if (byte == 'd') break;
    ASSERT_EQ(byte, 'c');
    acked += kSoakChunk;
    for (int spins = 0;
         server.active_connections() < acked && spins < 60000; ++spins) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ASSERT_GE(server.active_connections(), acked);
    char ack = 'a';
    ASSERT_EQ(::write(control[0], &ack, 1), 1);
  }
  ASSERT_EQ(server.active_connections(), kSoakConns);

  // The budget: total per-connection state divided by connection count.
  const std::size_t total = server.connection_memory_bytes();
  EXPECT_LE(total / kSoakConns, kPerConnBudgetBytes)
      << "total=" << total << " bytes across " << kSoakConns
      << " connections";

  // The server still answers while holding all 10k, and none of the idle
  // connections tripped a spurious deadline.
  auto client = QueryClient::connect("127.0.0.1", *port);
  ASSERT_TRUE(client) << client.error().to_string();
  auto response = client->request("EXACT 10.0.3.0/24");
  ASSERT_TRUE(response) << response.error().to_string();
  EXPECT_NE(response->find("\"found\":true"), std::string::npos);
  EXPECT_EQ(server.stats().timeouts, 0u);

  // Release the child; its 10k closes drain through the shards.
  char done = 'x';
  ASSERT_EQ(::write(control[0], &done, 1), 1);
  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);
  EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
  ::close(control[0]);
  server.stop();
  EXPECT_EQ(server.stats().timeouts, 0u);
}

// --- condition-variable drain (no sleep-quantum polling) ---

TEST(ServeDrain, StopReturnsAsSoonAsConnectionsDrain) {
  QueryServer server(memory_state(),
                     QueryServer::Options{.port = 0,
                                          .shards = 2,
                                          .drain_timeout_ms = 30000});
  auto port = server.start();
  ASSERT_TRUE(port);
  std::vector<QueryClient> idle;
  for (int i = 0; i < 8; ++i) {
    auto client = QueryClient::connect("127.0.0.1", *port);
    ASSERT_TRUE(client);
    auto response = client->request("EXACT 10.0.0.0/24");
    ASSERT_TRUE(response);
    idle.push_back(std::move(*client));
  }
  // All 8 are idle with nothing buffered, so the drain closes them
  // immediately and the condition variable fires the moment the live count
  // hits zero — nowhere near the 30s drain budget.
  auto start = std::chrono::steady_clock::now();
  server.stop();
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  EXPECT_EQ(server.active_connections(), 0u);
  EXPECT_LT(elapsed, 5000) << "drain should signal, not poll out the budget";
}

// --- torn reads: both protocols must reassemble one-byte-at-a-time input ---

TEST(ServeTornReads, TextRequestOneByteAtATime) {
  QueryServer server(memory_state(),
                     QueryServer::Options{.port = 0, .shards = 1});
  auto port = server.start();
  ASSERT_TRUE(port);
  auto conn = RawConn::open(*port);
  ASSERT_TRUE(conn);
  const std::string request = "EXACT 10.0.3.0/24\n";
  for (char c : request) {
    ASSERT_TRUE(conn->send_all(std::string_view(&c, 1)));
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::string response;
  ASSERT_TRUE(conn->read_exact(response, 1, 5000));
  // Read the rest of the line.
  while (response.back() != '\n') {
    ASSERT_TRUE(conn->read_exact(response, response.size() + 1, 5000));
  }
  EXPECT_NE(response.find("\"prefix\":\"10.0.3.0/24\""), std::string::npos);
  EXPECT_NE(response.find("NET-A-3"), std::string::npos);
  server.stop();
}

TEST(ServeTornReads, BinaryFrameOneByteAtATime) {
  QueryServer server(memory_state(),
                     QueryServer::Options{.port = 0, .shards = 1});
  auto port = server.start();
  ASSERT_TRUE(port);
  auto conn = RawConn::open(*port);
  ASSERT_TRUE(conn);

  std::string frame;
  wire::FrameHeader header;
  header.opcode = wire::kOpLpmBatch;
  header.request_id = 77;
  header.payload_len = 8;
  wire::append_header(frame, header);
  char addr[4];
  wire::store_u32le(addr, (10u << 24) | (3u << 8) | 200u);  // 10.0.3.200
  frame.append(addr, 4);
  wire::store_u32le(addr, (8u << 24) | (8u << 16) | (8u << 8) | 8u);
  frame.append(addr, 4);

  for (char c : frame) {
    ASSERT_TRUE(conn->send_all(std::string_view(&c, 1)));
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::string response;
  ASSERT_TRUE(conn->read_exact(
      response, wire::kHeaderSize + 2 * wire::kResultSize, 5000));
  wire::FrameHeader echoed;
  ASSERT_TRUE(wire::decode_header(response.data(), echoed));
  EXPECT_EQ(echoed.request_id, 77u);
  EXPECT_EQ(echoed.status, wire::kOk);
  ASSERT_EQ(echoed.payload_len, 2 * wire::kResultSize);
  wire::Result hit =
      wire::decode_result(response.data() + wire::kHeaderSize);
  EXPECT_EQ(hit.prefix_addr, (10u << 24) | (3u << 8));
  EXPECT_EQ(hit.prefix_len, 24);
  wire::Result miss = wire::decode_result(response.data() +
                                          wire::kHeaderSize +
                                          wire::kResultSize);
  EXPECT_EQ(miss.prefix_len, wire::kMissLen);
  server.stop();
}

// --- binary batches: equivalence with the text verbs, and pipelining ---

TEST(ServeBinary, BatchMatchesTextLpmAnswers) {
  auto state = memory_state();
  const QueryEngine& engine = state->engine();
  QueryServer server(state, QueryServer::Options{.port = 0, .shards = 2});
  auto port = server.start();
  ASSERT_TRUE(port);
  auto client = QueryClient::connect("127.0.0.1", *port);
  ASSERT_TRUE(client);

  std::vector<std::uint32_t> addrs;
  for (std::uint32_t i = 0; i < 32; ++i) {
    addrs.push_back((10u << 24) | (i << 8) | 200u);  // all hits
  }
  addrs.push_back((8u << 24) | (8u << 16) | (8u << 8) | 8u);  // miss
  auto response = client->request_binary_batch(addrs);
  ASSERT_TRUE(response) << response.error().to_string();
  EXPECT_EQ(response->status, wire::kOk);
  ASSERT_EQ(response->results.size(), addrs.size());
  for (std::size_t i = 0; i < addrs.size(); ++i) {
    auto expected =
        engine.longest_match(*Prefix::make(Ipv4Addr(addrs[i]), 32));
    const BinResult& got = response->results[i];
    ASSERT_EQ(got.found, expected.has_value()) << "addr #" << i;
    if (!expected) continue;
    EXPECT_EQ(got.prefix_addr, expected->first.network().value());
    EXPECT_EQ(got.prefix_len, expected->first.length());
    QueryEngine::Brief brief = engine.brief(expected->second);
    EXPECT_EQ(got.group, brief.group);
    EXPECT_EQ(got.leased, brief.leased);
  }
  // Counters: one request, one frame, N lookups, 32 hits + 1 miss.
  StatsSnapshot stats = server.stats();
  EXPECT_EQ(stats.requests, 1u);
  EXPECT_EQ(stats.hits, 32u);
  EXPECT_EQ(stats.misses, 1u);
  server.stop();
}

TEST(ServeBinary, PipelinedFramesComeBackInBatchOrder) {
  QueryServer server(memory_state(),
                     QueryServer::Options{.port = 0, .shards = 1});
  auto port = server.start();
  ASSERT_TRUE(port);
  auto client = QueryClient::connect("127.0.0.1", *port);
  ASSERT_TRUE(client);

  constexpr std::size_t kDepth = 16;
  std::vector<std::vector<std::uint32_t>> batches(kDepth);
  for (std::size_t k = 0; k < kDepth; ++k) {
    for (std::uint32_t i = 0; i < 8; ++i) {
      std::uint32_t leaf = (static_cast<std::uint32_t>(k) + i) % 32;
      batches[k].push_back((10u << 24) | (leaf << 8) | 7u);
    }
  }
  auto responses = client->pipeline_binary(batches);
  ASSERT_TRUE(responses) << responses.error().to_string();
  ASSERT_EQ(responses->size(), kDepth);
  for (std::size_t k = 0; k < kDepth; ++k) {
    const BinResponse& r = (*responses)[k];
    EXPECT_EQ(r.status, wire::kOk);
    ASSERT_EQ(r.results.size(), batches[k].size());
    for (std::size_t i = 0; i < r.results.size(); ++i) {
      std::uint32_t leaf = (batches[k][i] >> 8) & 0xFF;
      ASSERT_TRUE(r.results[i].found) << "batch " << k << " entry " << i;
      EXPECT_EQ(r.results[i].prefix_addr, (10u << 24) | (leaf << 8));
    }
  }
  server.stop();
}

// --- RELOAD + drain under pipelined binary load: zero failed in-flight
// requests across 10 generation swaps ---

TEST(ServeReloadBinary, PipelinedHammerAcrossSwapsZeroFailures) {
  std::string path_a = temp_snapshot("bin_a", "GA");
  std::string path_b = temp_snapshot("bin_b", "GB");
  auto state = EngineState::load(path_a);
  ASSERT_TRUE(state) << state.error().to_string();
  QueryServer server(*state, QueryServer::Options{.port = 0, .shards = 2});
  auto port = server.start();
  ASSERT_TRUE(port);

  constexpr int kClients = 4;
  constexpr int kRounds = 40;
  constexpr std::size_t kDepth = 4;
  std::atomic<int> failures{0};
  std::vector<std::thread> hammers;
  for (int c = 0; c < kClients; ++c) {
    hammers.emplace_back([&, c] {
      auto client = QueryClient::connect("127.0.0.1", *port);
      if (!client) {
        failures.fetch_add(1);
        return;
      }
      std::vector<std::vector<std::uint32_t>> batches(kDepth);
      for (int i = 0; i < kRounds; ++i) {
        for (std::size_t k = 0; k < kDepth; ++k) {
          batches[k].clear();
          for (std::uint32_t j = 0; j < 16; ++j) {
            std::uint32_t leaf =
                (static_cast<std::uint32_t>(i + c) + j) % 32;
            batches[k].push_back((10u << 24) | (leaf << 8) | 9u);
          }
        }
        auto responses = client->pipeline_binary(batches);
        if (!responses || responses->size() != kDepth) {
          failures.fetch_add(1);
          continue;
        }
        // Both generations share the prefix plan, so every answer must be
        // a hit on the right leaf regardless of which engine served it.
        for (std::size_t k = 0; k < kDepth; ++k) {
          const BinResponse& r = (*responses)[k];
          if (r.status != wire::kOk ||
              r.results.size() != batches[k].size()) {
            failures.fetch_add(1);
            continue;
          }
          for (std::size_t j = 0; j < r.results.size(); ++j) {
            std::uint32_t want = batches[k][j] & 0xFFFFFF00u;
            if (!r.results[j].found ||
                r.results[j].prefix_addr != want ||
                r.results[j].prefix_len != 24) {
              failures.fetch_add(1);
            }
          }
        }
      }
    });
  }

  std::uint64_t swaps = 0;
  for (int r = 0; r < 10; ++r) {
    auto generation = server.reload(r % 2 == 0 ? path_b : path_a);
    ASSERT_TRUE(generation) << generation.error().to_string();
    ++swaps;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  for (auto& t : hammers) t.join();

  EXPECT_EQ(failures.load(), 0);
  StatsSnapshot stats = server.stats();
  EXPECT_EQ(stats.reloads, swaps);
  EXPECT_EQ(stats.generation, 1u + swaps);
  server.stop();
  ::unlink(path_a.c_str());
  ::unlink(path_b.c_str());
}

// --- fairness: a pipeline flood cannot starve its shard ---

std::uint64_t scrape_counter(const std::string& metrics,
                             const std::string& family) {
  const std::string needle = "\n" + family + " ";
  const auto pos = metrics.find(needle);
  if (pos == std::string::npos) return 0;
  return std::strtoull(metrics.c_str() + pos + needle.size(), nullptr, 10);
}

TEST(ServeFairness, PipelineFloodCannotStarveTheShard) {
  QueryServer server(memory_state(),
                     QueryServer::Options{.port = 0,
                                          .shards = 1,
                                          .max_outbuf_bytes = 64u << 20});
  auto started = server.start();
  ASSERT_TRUE(started) << started.error().to_string();
  const std::uint16_t port = *started;

  // One connection bursts far more pipelined requests than the per-pass
  // budget without reading a byte back. A 64KB read chunk holds ~10900
  // of these lines, so at least one process() pass sees a backlog far
  // past the budget no matter how TCP segments the burst.
  constexpr std::size_t kFlood = 20000;
  auto flood = RawConn::open(port);
  ASSERT_TRUE(flood.has_value());
  std::string burst;
  burst.reserve(kFlood * 6);
  for (std::size_t i = 0; i < kFlood; ++i) burst += "STATS\n";
  ASSERT_TRUE(flood->send_all(burst));

  // A second connection on the same (only) shard is answered while the
  // flood drains: without the budget the shard would synchronously
  // generate the whole flood's responses before looking at anyone else.
  auto client = QueryClient::connect("127.0.0.1", port);
  ASSERT_TRUE(client) << client.error().to_string();
  auto resp = client->request("EXACT 10.0.0.0/24");
  ASSERT_TRUE(resp) << resp.error().to_string();
  EXPECT_NE(resp->find("\"found\":true"), std::string::npos) << *resp;

  // Every flooded response still arrives, nothing dropped at the yield
  // boundaries. STATS responses are single-line JSON, so counting
  // newlines counts responses.
  std::size_t lines = 0;
  char buf[65536];
  while (lines < kFlood) {
    pollfd pfd{flood->fd, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, 10000);
    if (rc < 0 && errno == EINTR) continue;
    ASSERT_GT(rc, 0) << "flood drain stalled at " << lines << " responses";
    const ssize_t n = ::recv(flood->fd, buf, sizeof(buf), 0);
    ASSERT_GT(n, 0) << "flood connection died at " << lines << " responses";
    for (ssize_t i = 0; i < n; ++i) lines += buf[i] == '\n';
  }
  EXPECT_EQ(lines, kFlood);

  auto metrics = client->request_multiline("METRICS");
  ASSERT_TRUE(metrics) << metrics.error().to_string();
  EXPECT_GE(scrape_counter(*metrics, "sublet_serve_fair_yields_total"), 1u);
  server.stop();
}

}  // namespace
}  // namespace sublet::serve
