// Time-travel serving wire tests (docs/TIMETRAVEL.md): AT on the text
// verbs, the HISTORY verb, the binary frame epoch field, catalog-mode
// STATS/RELOAD, and a hammer that queries three epochs while the catalog
// is appended to. Suite names carry Catalog/History so the tsan preset
// picks them up.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "catalog/catalog.h"
#include "catalog/delta.h"
#include "serve/client.h"
#include "serve/engine_state.h"
#include "serve/server.h"
#include "serve/wire.h"
#include "snapshot/writer.h"

namespace sublet::serve {
namespace {

using catalog::canonical_inferences;
using leasing::InferenceGroup;
using leasing::LeaseInference;

Prefix P(const char* s) { return *Prefix::parse(s); }

LeaseInference record(const char* prefix, InferenceGroup group) {
  LeaseInference r;
  r.prefix = P(prefix);
  r.rir = whois::Rir::kRipe;
  r.group = group;
  r.root_prefix = P("10.0.0.0/8");
  r.holder_org = "ORG-A";
  r.holder_asns = {Asn(64512)};
  r.netname = "NET";
  return r;
}

/// A three-epoch catalog with scripted transitions, served in catalog
/// mode. 10.0.0.0/24 flips aggregated-customer -> leased at epoch 2000;
/// 10.0.1.0/24 disappears at epoch 2000; 10.0.2.0/24 never changes.
struct CatalogRig {
  CatalogRig() {
    dir = testing::TempDir() + "/sublet_timetravel_" +
          std::to_string(::getpid()) + "_" + std::to_string(counter()++);
    std::string cmd = "rm -rf '" + dir + "'";
    [[maybe_unused]] int rc = std::system(cmd.c_str());

    auto e1 = canonical_inferences(
        {record("10.0.0.0/24", InferenceGroup::kAggregatedCustomer),
         record("10.0.1.0/24", InferenceGroup::kLeasedNoRoot),
         record("10.0.2.0/24", InferenceGroup::kIspCustomer)});
    auto e2 = canonical_inferences(
        {record("10.0.0.0/24", InferenceGroup::kLeasedWithRoot),
         record("10.0.2.0/24", InferenceGroup::kIspCustomer)});
    EXPECT_TRUE(catalog::catalog_init(dir, 1000, e1));
    EXPECT_TRUE(catalog::catalog_append(dir, 2000, e2));
    EXPECT_TRUE(catalog::catalog_append(dir, 3000, e2));

    auto opened = catalog::Catalog::open(dir);
    EXPECT_TRUE(opened) << opened.error().to_string();
    source = std::shared_ptr<EpochSource>(std::move(*opened));
    auto initial = source->epoch_at(0);
    EXPECT_TRUE(initial) << initial.error().to_string();
    server = std::make_unique<QueryServer>(source, std::move(*initial),
                                           QueryServer::Options{
                                               .port = 0, .shards = 1});
  }

  ~CatalogRig() {
    std::string cmd = "rm -rf '" + dir + "'";
    [[maybe_unused]] int rc = std::system(cmd.c_str());
  }

  /// Append epoch 4000 where 10.0.2.0/24 becomes leased.
  void append_epoch_4000() {
    auto e4 = canonical_inferences(
        {record("10.0.0.0/24", InferenceGroup::kLeasedWithRoot),
         record("10.0.2.0/24", InferenceGroup::kLeasedNoRoot)});
    ASSERT_TRUE(catalog::catalog_append(dir, 4000, e4));
  }

  static int& counter() {
    static int n = 0;
    return n;
  }

  std::string dir;
  std::shared_ptr<EpochSource> source;
  std::unique_ptr<QueryServer> server;
};

// --- AT on the text verbs ------------------------------------------------

TEST(CatalogAtVerb, AnswersEveryEpochWithAsOfSemantics) {
  CatalogRig rig;
  // Exact epoch timestamps.
  std::string e1 = rig.server->handle_request("EXACT 10.0.0.0/24 AT 1000");
  EXPECT_NE(e1.find("\"group\":\"aggregated-customer\""), std::string::npos)
      << e1;
  EXPECT_NE(e1.find("\"epoch\":1000"), std::string::npos) << e1;
  std::string e2 = rig.server->handle_request("EXACT 10.0.0.0/24 AT 2000");
  EXPECT_NE(e2.find("\"group\":\"leased(g4)\""), std::string::npos) << e2;
  EXPECT_NE(e2.find("\"epoch\":2000"), std::string::npos) << e2;

  // Between epochs: the newest epoch at or before the timestamp answers.
  std::string between = rig.server->handle_request("LPM 10.0.1.77 AT 1999");
  EXPECT_NE(between.find("\"found\":true"), std::string::npos) << between;
  EXPECT_NE(between.find("\"epoch\":1000"), std::string::npos) << between;
  // The same address one epoch later: the record was removed.
  std::string gone = rig.server->handle_request("LPM 10.0.1.77 AT 2000");
  EXPECT_NE(gone.find("\"found\":false"), std::string::npos) << gone;
  EXPECT_NE(gone.find("\"epoch\":2000"), std::string::npos) << gone;

  // After the last epoch: latest answers.
  std::string late = rig.server->handle_request("EXACT 10.0.0.0/24 AT 99999");
  EXPECT_NE(late.find("\"epoch\":3000"), std::string::npos) << late;
}

TEST(CatalogAtVerb, RejectsBadTimestampsAndPreCatalogTimes) {
  CatalogRig rig;
  EXPECT_NE(rig.server->handle_request("EXACT 10.0.0.0/24 AT notatime")
                .find("bad epoch timestamp"),
            std::string::npos);
  EXPECT_NE(rig.server->handle_request("EXACT 10.0.0.0/24 AT 0")
                .find("bad epoch timestamp"),
            std::string::npos);
  // Predates the first epoch: a body-level error, connection semantics
  // identical to any other malformed request.
  EXPECT_NE(rig.server->handle_request("EXACT 10.0.0.0/24 AT 999")
                .find("\"error\""),
            std::string::npos);
  // And the server still answers normally afterwards.
  EXPECT_NE(rig.server->handle_request("EXACT 10.0.0.0/24")
                .find("\"found\":true"),
            std::string::npos);
}

TEST(CatalogAtVerb, SingleSnapshotServerRejectsAt) {
  // A server without a catalog refuses AT with a typed error.
  auto e1 = canonical_inferences(
      {record("10.0.0.0/24", InferenceGroup::kLeasedWithRoot)});
  auto loaded =
      snapshot::Snapshot::from_bytes(snapshot::encode_snapshot(e1));
  ASSERT_TRUE(loaded);
  auto built = EngineState::adopt(
      std::make_unique<snapshot::Snapshot>(std::move(*loaded)), "<memory>");
  ASSERT_TRUE(built);
  QueryServer server(*built, {});
  EXPECT_NE(server.handle_request("EXACT 10.0.0.0/24 AT 1000")
                .find("catalog-mode"),
            std::string::npos);
  EXPECT_NE(server.handle_request("HISTORY 10.0.0.0/24")
                .find("catalog-mode"),
            std::string::npos);
}

// --- HISTORY -------------------------------------------------------------

TEST(HistoryVerb, ReplaysKnownTransitions) {
  CatalogRig rig;
  std::string flip = rig.server->handle_request("HISTORY 10.0.0.0/24");
  EXPECT_NE(flip.find("\"query\":\"10.0.0.0/24\""), std::string::npos);
  EXPECT_NE(flip.find("\"epochs\":3"), std::string::npos);
  EXPECT_NE(flip.find("\"first_epoch\":1000"), std::string::npos);
  EXPECT_NE(flip.find("\"last_epoch\":3000"), std::string::npos);
  // Two segments: aggregated at epoch 1000, leased for 2000-3000.
  EXPECT_NE(
      flip.find("{\"from_epoch\":1000,\"to_epoch\":1000,\"found\":true,"
                "\"prefix\":\"10.0.0.0/24\",\"group\":\"aggregated-customer\","
                "\"leased\":false}"),
      std::string::npos)
      << flip;
  EXPECT_NE(
      flip.find("{\"from_epoch\":2000,\"to_epoch\":3000,\"found\":true,"
                "\"prefix\":\"10.0.0.0/24\",\"group\":\"leased(g4)\","
                "\"leased\":true}"),
      std::string::npos)
      << flip;
  EXPECT_NE(flip.find("\"transitions\":1"), std::string::npos);

  // A record that disappears: found -> not-found is a transition too.
  std::string gone = rig.server->handle_request("HISTORY 10.0.1.0/24");
  EXPECT_NE(gone.find("{\"from_epoch\":2000,\"to_epoch\":3000,"
                      "\"found\":false}"),
            std::string::npos)
      << gone;
  EXPECT_NE(gone.find("\"transitions\":1"), std::string::npos);

  // A stable record coalesces into one segment, zero transitions.
  std::string stable = rig.server->handle_request("HISTORY 10.0.2.0/24");
  EXPECT_NE(stable.find("{\"from_epoch\":1000,\"to_epoch\":3000,"
                        "\"found\":true"),
            std::string::npos)
      << stable;
  EXPECT_NE(stable.find("\"transitions\":0"), std::string::npos);
}

TEST(HistoryVerb, UnknownPrefixAndMalformedInput) {
  CatalogRig rig;
  std::string miss = rig.server->handle_request("HISTORY 192.0.2.0/24");
  EXPECT_NE(miss.find("{\"from_epoch\":1000,\"to_epoch\":3000,"
                      "\"found\":false}"),
            std::string::npos)
      << miss;
  EXPECT_NE(miss.find("\"transitions\":0"), std::string::npos);

  EXPECT_NE(rig.server->handle_request("HISTORY not-a-prefix")
                .find("\"error\""),
            std::string::npos);
  EXPECT_NE(rig.server->handle_request("HISTORY").find("\"error\""),
            std::string::npos);
  EXPECT_NE(rig.server->handle_request("HISTORY 10.0.0.0/24 extra")
                .find("\"error\""),
            std::string::npos);
}

// --- catalog-mode STATS / RELOAD ----------------------------------------

TEST(CatalogServing, StatsReportsEpochRange) {
  CatalogRig rig;
  std::string stats = rig.server->handle_request("STATS");
  EXPECT_NE(stats.find("\"epochs\":{\"count\":3,\"first\":1000,"
                       "\"last\":3000}"),
            std::string::npos)
      << stats;
}

TEST(CatalogServing, ReloadPicksUpAppendedEpochZeroDowntime) {
  CatalogRig rig;
  rig.append_epoch_4000();
  std::string reload = rig.server->handle_request("RELOAD");
  EXPECT_NE(reload.find("\"ok\":true"), std::string::npos) << reload;
  EXPECT_NE(reload.find("\"epochs\":4"), std::string::npos) << reload;

  // The new epoch serves, and every old epoch still answers.
  std::string fresh = rig.server->handle_request("EXACT 10.0.2.0/24 AT 4000");
  EXPECT_NE(fresh.find("\"group\":\"leased(g3)\""), std::string::npos)
      << fresh;
  std::string old_epoch =
      rig.server->handle_request("EXACT 10.0.0.0/24 AT 1000");
  EXPECT_NE(old_epoch.find("\"group\":\"aggregated-customer\""),
            std::string::npos)
      << old_epoch;
  // Plain queries now answer from the new latest.
  std::string latest = rig.server->handle_request("EXACT 10.0.2.0/24");
  EXPECT_NE(latest.find("\"group\":\"leased(g3)\""), std::string::npos)
      << latest;
}

// --- binary frame epoch field -------------------------------------------

TEST(CatalogBinaryEpoch, RoundTripsAndSurvivesBadEpoch) {
  CatalogRig rig;
  auto port = rig.server->start();
  ASSERT_TRUE(port) << port.error().to_string();
  auto client = QueryClient::connect("127.0.0.1", *port);
  ASSERT_TRUE(client) << client.error().to_string();

  const std::uint32_t addr = (10u << 24);  // inside 10.0.0.0/24
  std::vector<std::uint32_t> addrs = {addr};

  // Epoch 1000: the aggregated-customer classification answers.
  auto at1 = client->request_binary_batch(addrs, 1000);
  ASSERT_TRUE(at1) << at1.error().to_string();
  EXPECT_EQ(at1->status, wire::kOk);
  EXPECT_EQ(at1->epoch, 1000u);
  ASSERT_EQ(at1->results.size(), 1u);
  EXPECT_TRUE(at1->results[0].found);
  EXPECT_FALSE(at1->results[0].leased);

  // Epoch 2500 resolves as-of to 2000: now leased.
  auto at2 = client->request_binary_batch(addrs, 2500);
  ASSERT_TRUE(at2) << at2.error().to_string();
  EXPECT_EQ(at2->status, wire::kOk);
  EXPECT_EQ(at2->epoch, 2500u);
  ASSERT_EQ(at2->results.size(), 1u);
  EXPECT_TRUE(at2->results[0].leased);

  // An unresolvable epoch: kBadEpoch, and the connection survives.
  auto bad = client->request_binary_batch(addrs, 999);
  ASSERT_TRUE(bad) << bad.error().to_string();
  EXPECT_EQ(bad->status, wire::kBadEpoch);
  EXPECT_TRUE(bad->results.empty());

  auto again = client->request_binary_batch(addrs, 0);
  ASSERT_TRUE(again) << again.error().to_string();
  EXPECT_EQ(again->status, wire::kOk);
  EXPECT_EQ(again->epoch, 0u);  // latest echoes the 0 it was asked with
  ASSERT_EQ(again->results.size(), 1u);
  EXPECT_TRUE(again->results[0].leased);

  rig.server->stop();
}

TEST(CatalogBinaryEpoch, SingleSnapshotServerRejectsNonzeroEpoch) {
  auto e1 = canonical_inferences(
      {record("10.0.0.0/24", InferenceGroup::kLeasedWithRoot)});
  auto loaded =
      snapshot::Snapshot::from_bytes(snapshot::encode_snapshot(e1));
  ASSERT_TRUE(loaded);
  auto built = EngineState::adopt(
      std::make_unique<snapshot::Snapshot>(std::move(*loaded)), "<memory>");
  ASSERT_TRUE(built);
  QueryServer server(*built, QueryServer::Options{.port = 0, .shards = 1});
  auto port = server.start();
  ASSERT_TRUE(port);
  auto client = QueryClient::connect("127.0.0.1", *port);
  ASSERT_TRUE(client);

  std::vector<std::uint32_t> addrs = {(10u << 24)};
  auto bad = client->request_binary_batch(addrs, 1000);
  ASSERT_TRUE(bad) << bad.error().to_string();
  EXPECT_EQ(bad->status, wire::kBadEpoch);
  // Epoch 0 still answers on the same connection.
  auto ok = client->request_binary_batch(addrs, 0);
  ASSERT_TRUE(ok) << ok.error().to_string();
  EXPECT_EQ(ok->status, wire::kOk);
  server.stop();
}

// --- concurrency: three epochs queried during appends --------------------

TEST(CatalogHammer, QueriesThreeEpochsDuringAppendAndReload) {
  CatalogRig rig;
  auto port = rig.server->start();
  ASSERT_TRUE(port) << port.error().to_string();

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  auto worker = [&](std::uint32_t epoch) {
    auto client = QueryClient::connect("127.0.0.1", *port);
    if (!client) {
      failures.fetch_add(1);
      return;
    }
    std::vector<std::uint32_t> addrs = {(10u << 24), (10u << 24) | (2u << 8)};
    while (!stop.load(std::memory_order_relaxed)) {
      auto bin = client->request_binary_batch(addrs, epoch);
      if (!bin || bin->status != wire::kOk) {
        failures.fetch_add(1);
        return;
      }
      std::string at = "EXACT 10.0.0.0/24";
      if (epoch != 0) at += " AT " + std::to_string(epoch);
      auto text = client->request(at);
      if (!text || text->find("\"found\":true") == std::string::npos) {
        failures.fetch_add(1);
        return;
      }
      auto history = client->request("HISTORY 10.0.0.0/24");
      if (!history ||
          history->find("\"transitions\":") == std::string::npos) {
        failures.fetch_add(1);
        return;
      }
    }
  };

  std::vector<std::thread> threads;
  for (std::uint32_t epoch : {0u, 1000u, 2000u}) {
    threads.emplace_back(worker, epoch);
  }
  // Meanwhile: append a new epoch and refresh the serving catalog.
  rig.append_epoch_4000();
  std::string reload = rig.server->handle_request("RELOAD");
  EXPECT_NE(reload.find("\"ok\":true"), std::string::npos) << reload;
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  stop.store(true);
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  rig.server->stop();
}

}  // namespace
}  // namespace sublet::serve
