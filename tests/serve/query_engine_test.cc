#include "serve/query_engine.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "snapshot/writer.h"

namespace sublet::serve {
namespace {

using leasing::InferenceGroup;
using leasing::LeaseInference;

Prefix P(const char* s) { return *Prefix::parse(s); }

std::vector<LeaseInference> sample() {
  LeaseInference a;
  a.prefix = P("10.1.2.0/24");
  a.root_prefix = P("10.0.0.0/8");
  a.rir = whois::Rir::kRipe;
  a.group = InferenceGroup::kLeasedWithRoot;
  a.holder_org = "ORG-A";
  a.holder_asns = {Asn(64512)};
  a.leaf_origins = {Asn(65001)};
  a.root_origins = {Asn(64512)};
  a.leaf_maintainers = {"MNT-A"};
  a.netname = "NET-A";

  LeaseInference b;
  b.prefix = P("10.1.0.0/16");
  b.root_prefix = P("10.0.0.0/8");
  b.rir = whois::Rir::kRipe;
  b.group = InferenceGroup::kIspCustomer;
  b.holder_org = "Org, \"Quoted\" & Co\n(multi-line)";
  b.netname = "NET-B";

  LeaseInference c;
  c.prefix = P("172.16.0.0/12");
  c.root_prefix = P("172.16.0.0/12");
  c.rir = whois::Rir::kArin;
  c.group = InferenceGroup::kUnused;
  return {a, b, c};
}

class ServeEngine : public testing::Test {
 protected:
  void SetUp() override {
    auto snap = snapshot::Snapshot::from_bytes(
        snapshot::encode_snapshot(sample()));
    ASSERT_TRUE(snap) << snap.error().to_string();
    snap_ = std::make_unique<snapshot::Snapshot>(std::move(*snap));
    auto engine = QueryEngine::create(snap_.get());
    ASSERT_TRUE(engine) << engine.error().to_string();
    engine_ = std::make_unique<QueryEngine>(std::move(*engine));
  }

  std::unique_ptr<snapshot::Snapshot> snap_;
  std::unique_ptr<QueryEngine> engine_;
};

TEST_F(ServeEngine, ExactMatch) {
  auto hit = engine_->exact(P("10.1.2.0/24"));
  ASSERT_TRUE(hit);
  EXPECT_EQ(*hit, 0u);
  EXPECT_FALSE(engine_->exact(P("10.1.2.0/25")));
  EXPECT_FALSE(engine_->exact(P("192.0.2.0/24")));
}

TEST_F(ServeEngine, LongestPrefixMatch) {
  // A /32 inside the /24 resolves to the /24, not the enclosing /16.
  auto hit = engine_->longest_match(P("10.1.2.77/32"));
  ASSERT_TRUE(hit);
  EXPECT_EQ(hit->first, P("10.1.2.0/24"));
  EXPECT_EQ(hit->second, 0u);

  // Outside the /24 but inside the /16.
  hit = engine_->longest_match(P("10.1.9.1/32"));
  ASSERT_TRUE(hit);
  EXPECT_EQ(hit->first, P("10.1.0.0/16"));
  EXPECT_EQ(hit->second, 1u);

  // An exact leaf is its own longest match.
  hit = engine_->longest_match(P("172.16.0.0/12"));
  ASSERT_TRUE(hit);
  EXPECT_EQ(hit->second, 2u);

  EXPECT_FALSE(engine_->longest_match(P("8.8.8.8/32")));
}

TEST_F(ServeEngine, MaterializeMatchesSnapshot) {
  auto record = engine_->materialize(0);
  EXPECT_EQ(record.prefix, P("10.1.2.0/24"));
  EXPECT_EQ(record.group, InferenceGroup::kLeasedWithRoot);
  EXPECT_EQ(record.holder_org, "ORG-A");
  EXPECT_EQ(record.leaf_maintainers, std::vector<std::string>{"MNT-A"});
}

TEST_F(ServeEngine, RecordJsonShape) {
  std::string json = engine_->record_json(0);
  EXPECT_EQ(json,
            "{\"found\":true,\"prefix\":\"10.1.2.0/24\",\"rir\":\"RIPE\","
            "\"group\":\"leased(g4)\",\"leased\":true,"
            "\"root_prefix\":\"10.0.0.0/8\",\"holder_org\":\"ORG-A\","
            "\"holder_asns\":[64512],\"leaf_origins\":[65001],"
            "\"root_origins\":[64512],\"facilitators\":[\"MNT-A\"],"
            "\"netname\":\"NET-A\"}");
}

TEST_F(ServeEngine, RecordJsonEscapesStrings) {
  std::string json = engine_->record_json(1);
  // The org contains a comma, double quotes, and a newline — all must be
  // escaped per RFC 8259 so the response stays a single line.
  EXPECT_NE(json.find("Org, \\\"Quoted\\\" & Co\\n(multi-line)"),
            std::string::npos);
  EXPECT_EQ(json.find('\n'), std::string::npos);
}

TEST_F(ServeEngine, SizeMatchesRecords) {
  EXPECT_EQ(engine_->size(), 3u);
}

}  // namespace
}  // namespace sublet::serve
