#include "serve/query_engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "snapshot/writer.h"
#include "util/rng.h"

namespace sublet::serve {
namespace {

using leasing::InferenceGroup;
using leasing::LeaseInference;

Prefix P(const char* s) { return *Prefix::parse(s); }

std::vector<LeaseInference> sample() {
  LeaseInference a;
  a.prefix = P("10.1.2.0/24");
  a.root_prefix = P("10.0.0.0/8");
  a.rir = whois::Rir::kRipe;
  a.group = InferenceGroup::kLeasedWithRoot;
  a.holder_org = "ORG-A";
  a.holder_asns = {Asn(64512)};
  a.leaf_origins = {Asn(65001)};
  a.root_origins = {Asn(64512)};
  a.leaf_maintainers = {"MNT-A"};
  a.netname = "NET-A";

  LeaseInference b;
  b.prefix = P("10.1.0.0/16");
  b.root_prefix = P("10.0.0.0/8");
  b.rir = whois::Rir::kRipe;
  b.group = InferenceGroup::kIspCustomer;
  b.holder_org = "Org, \"Quoted\" & Co\n(multi-line)";
  b.netname = "NET-B";

  LeaseInference c;
  c.prefix = P("172.16.0.0/12");
  c.root_prefix = P("172.16.0.0/12");
  c.rir = whois::Rir::kArin;
  c.group = InferenceGroup::kUnused;
  return {a, b, c};
}

class ServeEngine : public testing::Test {
 protected:
  void SetUp() override {
    auto snap = snapshot::Snapshot::from_bytes(
        snapshot::encode_snapshot(sample()));
    ASSERT_TRUE(snap) << snap.error().to_string();
    snap_ = std::make_unique<snapshot::Snapshot>(std::move(*snap));
    auto engine = QueryEngine::create(snap_.get());
    ASSERT_TRUE(engine) << engine.error().to_string();
    engine_ = std::make_unique<QueryEngine>(std::move(*engine));
  }

  std::unique_ptr<snapshot::Snapshot> snap_;
  std::unique_ptr<QueryEngine> engine_;
};

TEST_F(ServeEngine, ExactMatch) {
  auto hit = engine_->exact(P("10.1.2.0/24"));
  ASSERT_TRUE(hit);
  EXPECT_EQ(*hit, 0u);
  EXPECT_FALSE(engine_->exact(P("10.1.2.0/25")));
  EXPECT_FALSE(engine_->exact(P("192.0.2.0/24")));
}

TEST_F(ServeEngine, LongestPrefixMatch) {
  // A /32 inside the /24 resolves to the /24, not the enclosing /16.
  auto hit = engine_->longest_match(P("10.1.2.77/32"));
  ASSERT_TRUE(hit);
  EXPECT_EQ(hit->first, P("10.1.2.0/24"));
  EXPECT_EQ(hit->second, 0u);

  // Outside the /24 but inside the /16.
  hit = engine_->longest_match(P("10.1.9.1/32"));
  ASSERT_TRUE(hit);
  EXPECT_EQ(hit->first, P("10.1.0.0/16"));
  EXPECT_EQ(hit->second, 1u);

  // An exact leaf is its own longest match.
  hit = engine_->longest_match(P("172.16.0.0/12"));
  ASSERT_TRUE(hit);
  EXPECT_EQ(hit->second, 2u);

  EXPECT_FALSE(engine_->longest_match(P("8.8.8.8/32")));
}

TEST_F(ServeEngine, MaterializeMatchesSnapshot) {
  auto record = engine_->materialize(0);
  EXPECT_EQ(record.prefix, P("10.1.2.0/24"));
  EXPECT_EQ(record.group, InferenceGroup::kLeasedWithRoot);
  EXPECT_EQ(record.holder_org, "ORG-A");
  EXPECT_EQ(record.leaf_maintainers, std::vector<std::string>{"MNT-A"});
}

TEST_F(ServeEngine, RecordJsonShape) {
  std::string json = engine_->record_json(0);
  EXPECT_EQ(json,
            "{\"found\":true,\"prefix\":\"10.1.2.0/24\",\"rir\":\"RIPE\","
            "\"group\":\"leased(g4)\",\"leased\":true,"
            "\"root_prefix\":\"10.0.0.0/8\",\"holder_org\":\"ORG-A\","
            "\"holder_asns\":[64512],\"leaf_origins\":[65001],"
            "\"root_origins\":[64512],\"facilitators\":[\"MNT-A\"],"
            "\"netname\":\"NET-A\"}");
}

TEST_F(ServeEngine, RecordJsonEscapesStrings) {
  std::string json = engine_->record_json(1);
  // The org contains a comma, double quotes, and a newline — all must be
  // escaped per RFC 8259 so the response stays a single line.
  EXPECT_NE(json.find("Org, \\\"Quoted\\\" & Co\\n(multi-line)"),
            std::string::npos);
  EXPECT_EQ(json.find('\n'), std::string::npos);
}

TEST_F(ServeEngine, SizeMatchesRecords) {
  EXPECT_EQ(engine_->size(), 3u);
}

TEST_F(ServeEngine, SnapshotStatsJsonShape) {
  const std::string json = engine_->snapshot_stats_json();
  EXPECT_NE(json.find("\"records\":3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"lookup_backend\":\"stride24-8\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"simd_backend\":\""), std::string::npos) << json;
  // One leased(g4) /24 and one isp-customer /16 in the fixture.
  EXPECT_NE(json.find("\"leased(g4)\":{\"records\":1,\"addresses\":256}"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"isp-customer\":{\"records\":1,\"addresses\":65536}"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"leased\":{\"records\":1,\"addresses\":256}"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"RIPE\":2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"ARIN\":1"), std::string::npos) << json;
  // Record a resolves to leaf origin 65001; b and c have none.
  EXPECT_NE(json.find("\"top_origins\":{\"65001\":1}"), std::string::npos)
      << json;
  // The serving trie carries the stride table, and its 64 MiB first level
  // is visible in the memory breakdown.
  const std::string stride24 =
      "\"stride24\":" + std::to_string((std::size_t{1} << 24) * 4);
  EXPECT_NE(json.find(stride24), std::string::npos) << json;
  EXPECT_NE(json.find("\"columns\":"), std::string::npos) << json;
}

TEST_F(ServeEngine, TrieMemoryBreakdownIsConsistent) {
  const auto mem = engine_->trie_memory();
  EXPECT_EQ(mem.stride24_bytes, (std::size_t{1} << 24) * sizeof(std::uint32_t));
  EXPECT_GT(mem.node_bytes, 0u);
  EXPECT_GT(engine_->columns_bytes(), 0u);
}

// ---------------------------------------------------------------------------
// Random-world differentials: batched lookups against the per-query path,
// and SIMD aggregation against both the scalar pass and a brute-force
// recount straight off the materialized records.

std::vector<LeaseInference> random_world(std::uint64_t seed,
                                         std::size_t count) {
  Rng rng(seed);
  std::vector<LeaseInference> records;
  records.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    LeaseInference rec;
    // Unique /24..32 leaves spread over 10.0.0.0/8: the index picks the
    // /24 block (so no two records collide), the rng picks how deep below
    // it the leaf sits.
    const auto block = static_cast<std::uint32_t>(i);
    const int len = static_cast<int>(rng.next_in(24, 32));
    rec.prefix = *Prefix::make(
        Ipv4Addr(0x0A000000u | (block << 8) |
                 static_cast<std::uint32_t>(rng.next_u64() & 0xFFu)),
        len);
    rec.root_prefix = *Prefix::make(Ipv4Addr(0x0A000000u), 8);
    rec.rir = whois::kAllRirs[rng.next_below(whois::kAllRirs.size())];
    rec.group = leasing::kAllInferenceGroups[rng.next_below(
        leasing::kAllInferenceGroups.size())];
    if (rng.chance(0.8)) {
      rec.leaf_origins = {Asn(static_cast<std::uint32_t>(
          64512 + rng.next_in(0, 15)))};  // small pool → real top-8 ranking
    }
    rec.holder_org = "ORG-" + std::to_string(i);
    records.push_back(std::move(rec));
  }
  return records;
}

class ServeEngineWorld : public testing::Test {
 protected:
  void SetUp() override {
    auto snap = snapshot::Snapshot::from_bytes(
        snapshot::encode_snapshot(random_world(271, 300)));
    ASSERT_TRUE(snap) << snap.error().to_string();
    snap_ = std::make_unique<snapshot::Snapshot>(std::move(*snap));
    auto engine = QueryEngine::create(snap_.get());
    ASSERT_TRUE(engine) << engine.error().to_string();
    engine_ = std::make_unique<QueryEngine>(std::move(*engine));
  }

  std::unique_ptr<snapshot::Snapshot> snap_;
  std::unique_ptr<QueryEngine> engine_;
};

TEST_F(ServeEngineWorld, LookupBatchMatchesLongestMatch) {
  Rng rng(99);
  std::vector<std::uint32_t> addrs;
  for (int i = 0; i < 600; ++i) {
    // Half the probes land in the populated 10.0.0.0–10.1.255.255 band
    // (guaranteed hits), half anywhere (mostly misses).
    std::uint32_t a = static_cast<std::uint32_t>(rng.next_u64());
    if (i % 2 == 0) a = 0x0A000000u | (a & 0x0001FFFFu);
    addrs.push_back(a);
  }
  std::vector<std::uint32_t> batch(addrs.size());
  engine_->lookup_batch(addrs, batch);
  std::size_t hits = 0;
  for (std::size_t i = 0; i < addrs.size(); ++i) {
    const auto single =
        engine_->longest_match(*Prefix::make(Ipv4Addr(addrs[i]), 32));
    if (!single) {
      EXPECT_EQ(batch[i], QueryEngine::kNoRecord) << i;
    } else {
      EXPECT_EQ(batch[i], single->second) << i;
      ++hits;
    }
  }
  EXPECT_GT(hits, 0u);  // the probe mix must actually exercise the hit path
}

TEST_F(ServeEngineWorld, AggregateMatchesScalarAndBruteForce) {
  const auto simd_agg = engine_->aggregate();
  const auto scalar_agg = engine_->aggregate_scalar();

  // Brute force straight off the materialized records.
  std::array<QueryEngine::GroupAggregate,
             leasing::kAllInferenceGroups.size()>
      groups{};
  std::array<std::uint64_t, whois::kAllRirs.size()> rirs{};
  std::uint64_t leased_records = 0, leased_addresses = 0;
  std::map<std::uint32_t, std::uint64_t> origin_counts;
  for (std::uint32_t i = 0; i < engine_->size(); ++i) {
    const LeaseInference rec = engine_->materialize(i);
    const auto g = static_cast<std::size_t>(rec.group);
    const auto addresses = std::uint64_t{1} << (32 - rec.prefix.length());
    groups[g].records += 1;
    groups[g].addresses += addresses;
    if (leasing::is_leased(rec.group)) {
      leased_records += 1;
      leased_addresses += addresses;
    }
    rirs[static_cast<std::size_t>(rec.rir)] += 1;
    if (!rec.leaf_origins.empty()) {
      ++origin_counts[rec.leaf_origins.front().value()];
    }
  }

  for (std::size_t g = 0; g < groups.size(); ++g) {
    EXPECT_EQ(simd_agg.groups[g].records, groups[g].records) << g;
    EXPECT_EQ(simd_agg.groups[g].addresses, groups[g].addresses) << g;
    EXPECT_EQ(scalar_agg.groups[g].records, groups[g].records) << g;
    EXPECT_EQ(scalar_agg.groups[g].addresses, groups[g].addresses) << g;
  }
  for (std::size_t r = 0; r < rirs.size(); ++r) {
    EXPECT_EQ(simd_agg.rir_records[r], rirs[r]) << r;
    EXPECT_EQ(scalar_agg.rir_records[r], rirs[r]) << r;
  }
  EXPECT_EQ(simd_agg.leased_records, leased_records);
  EXPECT_EQ(simd_agg.leased_addresses, leased_addresses);
  EXPECT_EQ(scalar_agg.leased_records, leased_records);
  EXPECT_EQ(scalar_agg.leased_addresses, leased_addresses);

  // Top origins: rank brute-force counts the same way (count desc, ASN
  // asc, top 8) and require an exact match, order included.
  std::vector<std::pair<std::uint32_t, std::uint64_t>> ranked(
      origin_counts.begin(), origin_counts.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    return a.second != b.second ? a.second > b.second : a.first < b.first;
  });
  ranked.resize(std::min<std::size_t>(ranked.size(), 8));
  EXPECT_EQ(simd_agg.top_origins, ranked);
  EXPECT_EQ(scalar_agg.top_origins, ranked);
}

}  // namespace
}  // namespace sublet::serve
