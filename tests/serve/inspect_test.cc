// INSPECT wire tests (docs/SERVING.md): the verb answers one JSON line
// whose shape `sublet top` and the soak harness parse back, carries live
// connection-table rows for the inspecting client itself, and its slow
// log populates when the engine is slowed via the `serve.engine_delay`
// fault site.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "serve/client.h"
#include "serve/engine_state.h"
#include "serve/server.h"
#include "snapshot/writer.h"
#include "util/faultinject.h"
#include "util/jsonr.h"

namespace sublet::serve {
namespace {

using leasing::InferenceGroup;
using leasing::LeaseInference;

std::shared_ptr<const EngineState> memory_state() {
  std::vector<LeaseInference> records;
  for (std::uint32_t i = 0; i < 8; ++i) {
    LeaseInference r;
    r.prefix = *Prefix::make(Ipv4Addr((10u << 24) | (i << 8)), 24);
    r.root_prefix = *Prefix::parse("10.0.0.0/8");
    r.rir = whois::Rir::kRipe;
    r.group = InferenceGroup::kLeasedWithRoot;
    r.holder_org = "ORG";
    r.holder_asns = {Asn(64512)};
    r.netname = "NET-" + std::to_string(i);
    records.push_back(std::move(r));
  }
  auto loaded =
      snapshot::Snapshot::from_bytes(snapshot::encode_snapshot(records));
  EXPECT_TRUE(loaded) << loaded.error().to_string();
  auto state = EngineState::adopt(
      std::make_unique<snapshot::Snapshot>(std::move(*loaded)), "<memory>");
  EXPECT_TRUE(state) << state.error().to_string();
  return *state;
}

/// Start a server, run `warmup` text requests on one connection, then
/// INSPECT on that same connection and parse the reply.
struct InspectRig {
  explicit InspectRig(QueryServer::Options options = {.port = 0,
                                                      .shards = 2}) {
    server = std::make_unique<QueryServer>(memory_state(), options);
    auto port = server->start();
    EXPECT_TRUE(port) << port.error().to_string();
    auto connected = QueryClient::connect("127.0.0.1", *port);
    EXPECT_TRUE(connected) << connected.error().to_string();
    client = std::make_unique<QueryClient>(std::move(*connected));
  }

  ~InspectRig() { server->stop(); }

  JsonValue inspect() {
    auto line = client->request("INSPECT");
    EXPECT_TRUE(line) << line.error().to_string();
    auto doc = JsonValue::parse(*line);
    EXPECT_TRUE(doc) << doc.error().to_string();
    return doc ? std::move(*doc) : JsonValue();
  }

  std::unique_ptr<QueryServer> server;
  std::unique_ptr<QueryClient> client;
};

TEST(Inspect, WireShapeAndLiveConnectionRow) {
  InspectRig rig;
  ASSERT_TRUE(rig.client->request("LPM 10.0.1.5"));
  ASSERT_TRUE(rig.client->request("EXACT 10.0.2.0/24"));
  JsonValue doc = rig.inspect();

  EXPECT_TRUE(doc["ok"].as_bool());
  EXPECT_EQ(doc["shard_count"].as_u64(), 2u);
  ASSERT_EQ(doc["shards"].size(), 2u);
  EXPECT_GE(doc["active_conns"].as_u64(), 1u);

  // Recorder config echoes the server options (defaults here).
  EXPECT_TRUE(doc["recorder"]["enabled"].as_bool());
  EXPECT_GT(doc["recorder"]["ring_capacity"].as_u64(), 0u);
  EXPECT_GT(doc["recorder"]["slow_log_capacity"].as_u64(), 0u);
  EXPECT_GT(doc["recorder"]["slow_threshold_us"].as_u64(), 0u);

  // Exactly one client connection is open: its row must appear on the
  // shard that owns it, alive (not closing), in text mode, with its idle
  // timer armed.
  int conn_rows = 0;
  for (const JsonValue& shard : doc["shards"].items()) {
    EXPECT_FALSE(shard["stale"].as_bool());
    for (const JsonValue& conn : shard["connections"].items()) {
      ++conn_rows;
      EXPECT_EQ(conn["peer"].as_string().rfind("127.0.0.1:", 0), 0u)
          << conn["peer"].as_string();
      EXPECT_GT(conn["fd"].as_u64(), 0u);
      EXPECT_GE(conn["requests"].as_u64(), 2u);
      EXPECT_FALSE(conn["closing"].as_bool());
      EXPECT_FALSE(conn["binary"].as_bool());
      EXPECT_GE(conn["idle_deadline_ms"].as_i64(), 0);
      EXPECT_EQ(conn["write_deadline_ms"].as_i64(), -1);  // not armed
      EXPECT_GE(shard["timers"]["idle"].as_u64(), 1u);
    }
  }
  EXPECT_EQ(conn_rows, 1);
}

TEST(Inspect, RingTailAndExemplarsRecordServedRequests) {
  InspectRig rig;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(rig.client->request("LPM 10.0.1.5"));
  }
  JsonValue doc = rig.inspect();

  // One connection serves every request, so exactly one shard recorded
  // them all; the others stay at zero.
  std::uint64_t recorded = 0;
  std::size_t tail_len = 0;
  bool saw_lpm = false;
  std::uint64_t exemplar_count = 0;
  for (const JsonValue& shard : doc["shards"].items()) {
    recorded += shard["recorded"].as_u64();
    for (const JsonValue& rec : shard["ring_tail"].items()) {
      ++tail_len;
      EXPECT_GT(rec["seq"].as_u64(), 0u);
      if (rec["verb"].as_string() == "lpm") saw_lpm = true;
      EXPECT_EQ(rec["status"].as_string(), "ok");
    }
    for (const JsonValue& ex : shard["exemplars"].items()) {
      ++exemplar_count;
      EXPECT_GT(ex["seq"].as_u64(), 0u);
      EXPECT_LE(ex["seq"].as_u64(), recorded);
    }
  }
  EXPECT_GE(recorded, 5u);
  EXPECT_GE(tail_len, 5u);
  EXPECT_TRUE(saw_lpm);
  EXPECT_GE(exemplar_count, 1u);
}

TEST(Inspect, SlowLogPopulatesUnderEngineDelay) {
  if (!fault::enabled()) GTEST_SKIP() << "fault injection compiled out";
  InspectRig rig;
  {
    // The injected "errno" is repurposed as a sleep in milliseconds; two
    // 20ms requests clear the default 1ms slow threshold easily.
    fault::ScopedFault delay("serve.engine_delay", 20, 0, 2);
    ASSERT_TRUE(rig.client->request("LPM 10.0.1.5"));
    ASSERT_TRUE(rig.client->request("EXACT 10.0.2.0/24"));
  }
  ASSERT_TRUE(rig.client->request("LPM 10.0.3.9"));  // fast, not logged
  JsonValue doc = rig.inspect();

  std::vector<const JsonValue*> slow;
  for (const JsonValue& shard : doc["shards"].items()) {
    for (const JsonValue& s : shard["slow_requests"].items()) {
      slow.push_back(&s);
    }
  }
  ASSERT_EQ(slow.size(), 2u);
  double prev_total = 1e18;
  bool saw_lpm_detail = false;
  for (const JsonValue* s : slow) {
    EXPECT_GE((*s)["engine_us"].as_double(), 15'000.0);
    EXPECT_GE((*s)["total_us"].as_double(), (*s)["engine_us"].as_double());
    // Per-shard logs are worst-first; with one serving shard this holds
    // across the flattened list too.
    EXPECT_LE((*s)["total_us"].as_double(), prev_total);
    prev_total = (*s)["total_us"].as_double();
    const std::string& detail = (*s)["detail"].as_string();
    EXPECT_FALSE(detail.empty());
    if (detail.rfind("LPM ", 0) == 0) saw_lpm_detail = true;
  }
  EXPECT_TRUE(saw_lpm_detail);
}

TEST(Inspect, RecorderDisabledByOptionsStaysInert) {
  InspectRig rig(QueryServer::Options{.port = 0, .shards = 1,
                                      .flight_ring = 0});
  ASSERT_TRUE(rig.client->request("LPM 10.0.1.5"));
  JsonValue doc = rig.inspect();
  EXPECT_TRUE(doc["ok"].as_bool());
  EXPECT_FALSE(doc["recorder"]["enabled"].as_bool());
  ASSERT_EQ(doc["shards"].size(), 1u);
  // No recorder: the per-shard recorder keys are absent entirely.
  EXPECT_FALSE(doc["shards"][0].has("recorded"));
  EXPECT_FALSE(doc["shards"][0].has("ring_tail"));
}

TEST(Inspect, RuntimeToggleStopsRecording) {
  InspectRig rig(QueryServer::Options{.port = 0, .shards = 1});
  ASSERT_TRUE(rig.client->request("LPM 10.0.1.5"));
  rig.server->set_flight_recording(false);
  // Baseline after the toggle (the pre-toggle request may or may not have
  // committed before the switch flipped — both are fine)...
  const std::uint64_t r0 = rig.inspect()["shards"][0]["recorded"].as_u64();
  // ...but once off, further requests (INSPECT included) record nothing.
  ASSERT_TRUE(rig.client->request("LPM 10.0.2.5"));
  ASSERT_TRUE(rig.client->request("LPM 10.0.3.5"));
  JsonValue doc = rig.inspect();
  EXPECT_FALSE(doc["recorder"]["enabled"].as_bool());
  EXPECT_EQ(doc["shards"][0]["recorded"].as_u64(), r0);

  rig.server->set_flight_recording(true);
  ASSERT_TRUE(rig.client->request("LPM 10.0.4.5"));
  JsonValue doc2 = rig.inspect();
  EXPECT_TRUE(doc2["recorder"]["enabled"].as_bool());
  EXPECT_GE(doc2["shards"][0]["recorded"].as_u64(), r0 + 1);
}

}  // namespace
}  // namespace sublet::serve
