// Fault-tolerance behavior of the query server (docs/ROBUSTNESS.md):
// idle-deadline disconnects, overload shedding, hot snapshot reload (with
// an 8-client hammer across the swap), HEALTH, transient-accept recovery,
// and the client-side timeout/retry policy.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "serve/client.h"
#include "serve/engine_state.h"
#include "serve/server.h"
#include "snapshot/writer.h"
#include "util/faultinject.h"

namespace sublet::serve {
namespace {

using leasing::InferenceGroup;
using leasing::LeaseInference;

Prefix P(const char* s) { return *Prefix::parse(s); }

/// 32 leaves under 10.0.0.0/8; `tag` lands in every netname so tests can
/// tell two snapshot generations apart.
std::vector<LeaseInference> sample(const std::string& tag) {
  std::vector<LeaseInference> out;
  for (std::uint32_t i = 0; i < 32; ++i) {
    LeaseInference r;
    r.prefix = *Prefix::make(Ipv4Addr((10u << 24) | (i << 8)), 24);
    r.root_prefix = P("10.0.0.0/8");
    r.rir = whois::Rir::kRipe;
    r.group = i % 2 ? InferenceGroup::kLeasedWithRoot
                    : InferenceGroup::kAggregatedCustomer;
    r.holder_org = "ORG-" + std::to_string(i);
    r.holder_asns = {Asn(64512 + i)};
    r.netname = "NET-" + tag + "-" + std::to_string(i);
    out.push_back(std::move(r));
  }
  return out;
}

std::shared_ptr<const EngineState> memory_state(const std::string& tag) {
  auto loaded = snapshot::Snapshot::from_bytes(
      snapshot::encode_snapshot(sample(tag)));
  EXPECT_TRUE(loaded) << loaded.error().to_string();
  auto state = EngineState::adopt(
      std::make_unique<snapshot::Snapshot>(std::move(*loaded)), "<memory>");
  EXPECT_TRUE(state) << state.error().to_string();
  return *state;
}

std::string temp_snapshot(const std::string& name, const std::string& tag) {
  std::string path = testing::TempDir() + "/sublet_robust_" +
                     std::to_string(::getpid()) + "_" + name + ".snap";
  snapshot::write_snapshot_file(path, sample(tag));
  return path;
}

/// Raw TCP connection for protocol-abuse tests (slow loris etc.) that the
/// well-behaved QueryClient can't express.
struct RawConn {
  int fd = -1;

  static std::optional<RawConn> open(std::uint16_t port) {
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return std::nullopt;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      ::close(fd);
      return std::nullopt;
    }
    return RawConn{fd};
  }

  bool send_all(std::string_view data) {
    while (!data.empty()) {
      ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
      if (n <= 0) return false;
      data.remove_prefix(static_cast<std::size_t>(n));
    }
    return true;
  }

  /// Read until EOF or `timeout_ms`; returns everything received.
  std::string read_to_eof(int timeout_ms) {
    std::string out;
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(timeout_ms);
    char chunk[4096];
    for (;;) {
      auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                      deadline - std::chrono::steady_clock::now())
                      .count();
      if (left <= 0) return out;
      pollfd pfd{fd, POLLIN, 0};
      int rc = ::poll(&pfd, 1, static_cast<int>(left));
      if (rc < 0 && errno == EINTR) continue;
      if (rc <= 0) return out;
      ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return out;  // EOF: the server cut us off
      out.append(chunk, static_cast<std::size_t>(n));
    }
  }

  ~RawConn() {
    if (fd >= 0) ::close(fd);
  }
  RawConn(RawConn&& other) noexcept : fd(other.fd) { other.fd = -1; }
  explicit RawConn(int fd) : fd(fd) {}
  RawConn(const RawConn&) = delete;
};

// --- idle deadline / slow loris ---

TEST(ServeDeadlines, SlowLorisIsCutWhileOthersAreServed) {
  QueryServer server(memory_state("A"),
                     QueryServer::Options{.port = 0,
                                          .threads = 4,
                                          .idle_timeout_ms = 200});
  auto port = server.start();
  ASSERT_TRUE(port) << port.error().to_string();

  // The attacker sends a partial request and then goes quiet.
  auto loris = RawConn::open(*port);
  ASSERT_TRUE(loris);
  ASSERT_TRUE(loris->send_all("EXA"));

  // A well-behaved client keeps getting answers the whole time.
  auto client = QueryClient::connect("127.0.0.1", *port);
  ASSERT_TRUE(client) << client.error().to_string();
  for (int i = 0; i < 5; ++i) {
    auto response = client->request("EXACT 10.0.1.0/24");
    ASSERT_TRUE(response) << response.error().to_string();
    EXPECT_NE(response->find("\"found\":true"), std::string::npos);
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
  }

  // The slow loris got the idle notice and then EOF, well after the 200ms
  // deadline but long before the 60s default would ever fire.
  std::string farewell = loris->read_to_eof(3000);
  EXPECT_NE(farewell.find("idle timeout"), std::string::npos);
  EXPECT_GE(server.stats().timeouts, 1u);
  server.stop();
}

// --- overload shedding ---

TEST(ServeShedding, ConnectionsOverTheCapGetOneLineAndClose) {
  QueryServer server(
      memory_state("A"),
      QueryServer::Options{.port = 0, .threads = 4, .max_conns = 2});
  auto port = server.start();
  ASSERT_TRUE(port) << port.error().to_string();

  // Two connections occupy the cap (a round trip each guarantees they are
  // registered before the third connect reaches the accept loop).
  auto first = QueryClient::connect("127.0.0.1", *port);
  auto second = QueryClient::connect("127.0.0.1", *port);
  ASSERT_TRUE(first);
  ASSERT_TRUE(second);
  ASSERT_TRUE(first->request("EXACT 10.0.0.0/24"));
  ASSERT_TRUE(second->request("EXACT 10.0.0.0/24"));

  auto shed = RawConn::open(*port);
  ASSERT_TRUE(shed);
  std::string line = shed->read_to_eof(3000);
  EXPECT_EQ(line, "{\"error\":\"overloaded\"}\n");
  EXPECT_EQ(server.stats().shed, 1u);

  // Capacity frees up when a held connection goes away.
  first->close();
  bool recovered = false;
  for (int i = 0; i < 200 && !recovered; ++i) {
    auto retry = QueryClient::connect("127.0.0.1", *port);
    if (retry && retry->request("EXACT 10.0.0.0/24")) recovered = true;
    if (!recovered) std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(recovered);
  server.stop();
}

// --- hot reload ---

TEST(ServeReload, SwapServesTheNewGeneration) {
  std::string path_a = temp_snapshot("swap_a", "OLD");
  std::string path_b = temp_snapshot("swap_b", "NEW");
  auto state = EngineState::load(path_a);
  ASSERT_TRUE(state) << state.error().to_string();
  QueryServer server(*state, QueryServer::Options{.port = 0, .threads = 2});
  auto port = server.start();
  ASSERT_TRUE(port);
  auto client = QueryClient::connect("127.0.0.1", *port);
  ASSERT_TRUE(client);

  auto before = client->request("EXACT 10.0.3.0/24");
  ASSERT_TRUE(before);
  EXPECT_NE(before->find("NET-OLD-3"), std::string::npos);

  auto ack = client->request("RELOAD " + path_b);
  ASSERT_TRUE(ack);
  EXPECT_NE(ack->find("\"ok\":true"), std::string::npos);
  EXPECT_NE(ack->find("\"generation\":2"), std::string::npos);

  auto after = client->request("EXACT 10.0.3.0/24");
  ASSERT_TRUE(after);
  EXPECT_NE(after->find("NET-NEW-3"), std::string::npos);

  StatsSnapshot stats = server.stats();
  EXPECT_EQ(stats.reloads, 1u);
  EXPECT_EQ(stats.generation, 2u);
  server.stop();
  ::unlink(path_a.c_str());
  ::unlink(path_b.c_str());
}

TEST(ServeReload, BadSnapshotKeepsTheOldEngineServing) {
  std::string path_a = temp_snapshot("bad_a", "OLD");
  std::string corrupt = testing::TempDir() + "/sublet_robust_" +
                        std::to_string(::getpid()) + "_corrupt.snap";
  {
    std::FILE* f = std::fopen(corrupt.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("this is not a snapshot", f);
    std::fclose(f);
  }
  auto state = EngineState::load(path_a);
  ASSERT_TRUE(state) << state.error().to_string();
  QueryServer server(*state, QueryServer::Options{});

  std::string missing = server.handle_request("RELOAD /no/such/file.snap");
  EXPECT_NE(missing.find("reload failed"), std::string::npos);
  std::string garbage = server.handle_request("RELOAD " + corrupt);
  EXPECT_NE(garbage.find("reload failed"), std::string::npos);

  // Both rejections left generation 1 serving, records intact.
  StatsSnapshot stats = server.stats();
  EXPECT_EQ(stats.generation, 1u);
  EXPECT_EQ(stats.reloads, 0u);
  EXPECT_EQ(stats.reload_failures, 2u);
  std::string still = server.handle_request("EXACT 10.0.3.0/24");
  EXPECT_NE(still.find("NET-OLD-3"), std::string::npos);
  ::unlink(path_a.c_str());
  ::unlink(corrupt.c_str());
}

// The acceptance scenario: 8 clients hammering EXACT queries while the
// engine is swapped back and forth — zero failed queries, zero dropped
// requests, every response a valid generation-A or generation-B answer.
TEST(ServeReload, HammerDuringSwapZeroFailures) {
  std::string path_a = temp_snapshot("hammer_a", "GA");
  std::string path_b = temp_snapshot("hammer_b", "GB");
  auto state = EngineState::load(path_a);
  ASSERT_TRUE(state) << state.error().to_string();
  // Connections are thread-per-connection: 8 hammers + 1 control client
  // need headroom, hence 12 handler threads.
  QueryServer server(*state,
                     QueryServer::Options{.port = 0, .threads = 12});
  auto port = server.start();
  ASSERT_TRUE(port);

  constexpr int kClients = 8;
  constexpr int kRounds = 200;
  std::atomic<int> failures{0};
  std::vector<std::thread> hammers;
  for (int c = 0; c < kClients; ++c) {
    hammers.emplace_back([&, c] {
      auto client = QueryClient::connect("127.0.0.1", *port);
      if (!client) {
        failures.fetch_add(1);
        return;
      }
      for (int i = 0; i < kRounds; ++i) {
        std::uint32_t leaf = static_cast<std::uint32_t>(i + c) % 32;
        auto response = client->request("EXACT 10.0." +
                                        std::to_string(leaf) + ".0/24");
        // Either generation is a correct answer; anything else (error,
        // miss, cut connection) is a failure.
        bool ok = response &&
                  (response->find("NET-GA-" + std::to_string(leaf)) !=
                       std::string::npos ||
                   response->find("NET-GB-" + std::to_string(leaf)) !=
                       std::string::npos);
        if (!ok) failures.fetch_add(1);
      }
    });
  }

  auto control = QueryClient::connect("127.0.0.1", *port);
  ASSERT_TRUE(control);
  std::uint64_t swaps = 0;
  for (int r = 0; r < 10; ++r) {
    auto ack =
        control->request("RELOAD " + (r % 2 == 0 ? path_b : path_a));
    ASSERT_TRUE(ack) << ack.error().to_string();
    EXPECT_NE(ack->find("\"ok\":true"), std::string::npos);
    ++swaps;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  for (auto& t : hammers) t.join();

  EXPECT_EQ(failures.load(), 0);
  StatsSnapshot stats = server.stats();
  EXPECT_EQ(stats.reloads, swaps);
  EXPECT_EQ(stats.hits, static_cast<std::uint64_t>(kClients) * kRounds);
  EXPECT_EQ(stats.shed, 0u);
  EXPECT_EQ(stats.generation, 1u + swaps);
  server.stop();
  ::unlink(path_a.c_str());
  ::unlink(path_b.c_str());
}

// --- HEALTH ---

TEST(ServeHealth, ReportsGenerationUptimeAndDrainState) {
  QueryServer server(memory_state("A"), QueryServer::Options{});
  std::string health = server.handle_request("HEALTH");
  EXPECT_NE(health.find("\"ok\":true"), std::string::npos);
  EXPECT_NE(health.find("\"generation\":1"), std::string::npos);
  EXPECT_NE(health.find("\"snapshot\":\"<memory>\""), std::string::npos);
  EXPECT_NE(health.find("\"records\":32"), std::string::npos);
  EXPECT_NE(health.find("\"draining\":false"), std::string::npos);

  server.handle_request("SHUTDOWN");
  health = server.handle_request("HEALTH");
  EXPECT_NE(health.find("\"draining\":true"), std::string::npos);
}

// --- accept-loop resilience (regression: any non-EINTR error used to be
// fatal and silently killed the accept thread) ---

TEST(ServeAccept, RecoversFromTransientAcceptErrors) {
  if (!fault::enabled()) GTEST_SKIP() << "fault injection compiled out";
  QueryServer server(memory_state("A"),
                     QueryServer::Options{.port = 0, .threads = 2});
  auto port = server.start();
  ASSERT_TRUE(port);
  std::uint64_t trips = 0;
  {
    fault::ScopedFault emfile("serve.accept", EMFILE, /*skip=*/0,
                              /*times=*/3);
    // The pending connect sits in the backlog while the first three
    // accept() attempts fail; the loop backs off and recovers.
    auto client = QueryClient::connect("127.0.0.1", *port);
    ASSERT_TRUE(client) << client.error().to_string();
    auto response = client->request("EXACT 10.0.0.0/24");
    ASSERT_TRUE(response) << response.error().to_string();
    EXPECT_NE(response->find("\"found\":true"), std::string::npos);
    trips = emfile.trips();
  }
  EXPECT_EQ(trips, 3u);
  EXPECT_EQ(server.stats().accept_retries, 3u);
  server.stop();
}

// --- client-side deadlines and retry ---

TEST(ServeClient, RequestTimesOutOnStalledServer) {
  // A listener that never reads and never replies: the backlog completes
  // the TCP handshake, then nothing.
  int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(listener, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  ASSERT_EQ(::bind(listener, reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr)),
            0);
  ASSERT_EQ(::listen(listener, 8), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(listener, reinterpret_cast<sockaddr*>(&addr),
                          &len),
            0);
  std::uint16_t port = ntohs(addr.sin_port);

  auto client = QueryClient::connect(
      "127.0.0.1", port,
      QueryClient::Timeouts{.connect_ms = 2000, .io_ms = 150});
  ASSERT_TRUE(client) << client.error().to_string();
  auto start = std::chrono::steady_clock::now();
  auto response = client->request("EXACT 10.0.0.0/24");
  auto waited = std::chrono::duration_cast<std::chrono::milliseconds>(
                    std::chrono::steady_clock::now() - start)
                    .count();
  ASSERT_FALSE(response);
  EXPECT_TRUE(is_timeout(response.error()))
      << response.error().to_string();
  EXPECT_GE(waited, 100);   // the deadline, minus scheduling slop
  EXPECT_LT(waited, 5000);  // but nowhere near "forever"
  ::close(listener);
}

TEST(ServeClient, RetryPolicySurvivesTransientConnectFailures) {
  if (!fault::enabled()) GTEST_SKIP() << "fault injection compiled out";
  QueryServer server(memory_state("A"),
                     QueryServer::Options{.port = 0, .threads = 2});
  auto port = server.start();
  ASSERT_TRUE(port);
  std::uint64_t trips = 0;
  {
    fault::ScopedFault refused("client.connect", ECONNREFUSED, /*skip=*/0,
                               /*times=*/2);
    QueryClient::RetryPolicy policy;
    policy.attempts = 3;
    policy.base_backoff_ms = 1;
    auto response = QueryClient::request_with_retry(
        "127.0.0.1", *port, "EXACT 10.0.0.0/24", policy);
    ASSERT_TRUE(response) << response.error().to_string();
    EXPECT_NE(response->find("\"found\":true"), std::string::npos);
    trips = refused.trips();
  }
  EXPECT_EQ(trips, 2u);

  // With only two attempts both are eaten by the fault and the typed
  // error from the last attempt comes back.
  {
    fault::ScopedFault refused("client.connect", ECONNREFUSED);
    QueryClient::RetryPolicy policy;
    policy.attempts = 2;
    policy.base_backoff_ms = 1;
    auto response = QueryClient::request_with_retry(
        "127.0.0.1", *port, "EXACT 10.0.0.0/24", policy);
    ASSERT_FALSE(response);
    EXPECT_EQ(response.error().code, ECONNREFUSED);
  }
  server.stop();
}

TEST(ServeClient, MultilineRetryHelperSurvivesTransientConnectFailures) {
  if (!fault::enabled()) GTEST_SKIP() << "fault injection compiled out";
  QueryServer server(memory_state("A"),
                     QueryServer::Options{.port = 0, .threads = 2});
  auto port = server.start();
  ASSERT_TRUE(port);
  {
    fault::ScopedFault refused("client.connect", ECONNREFUSED, /*skip=*/0,
                               /*times=*/2);
    QueryClient::RetryPolicy policy;
    policy.attempts = 3;
    policy.base_backoff_ms = 1;
    auto body = QueryClient::request_multiline_with_retry(
        "127.0.0.1", *port, "METRICS", "# EOF", policy);
    ASSERT_TRUE(body) << body.error().to_string();
    EXPECT_NE(body->find("# EOF"), std::string::npos);
  }
  server.stop();
}

TEST(ServeClient, BinaryBatchRetryHelperSurvivesTransientConnectFailures) {
  if (!fault::enabled()) GTEST_SKIP() << "fault injection compiled out";
  QueryServer server(memory_state("A"),
                     QueryServer::Options{.port = 0, .threads = 2});
  auto port = server.start();
  ASSERT_TRUE(port);
  const std::vector<std::uint32_t> addrs = {(10u << 24) | 1u};
  {
    fault::ScopedFault refused("client.connect", ECONNREFUSED, /*skip=*/0,
                               /*times=*/2);
    QueryClient::RetryPolicy policy;
    policy.attempts = 3;
    policy.base_backoff_ms = 1;
    auto response = QueryClient::request_binary_batch_with_retry(
        "127.0.0.1", *port, addrs, /*epoch=*/0, policy);
    ASSERT_TRUE(response) << response.error().to_string();
    EXPECT_EQ(response->status, 0);
    ASSERT_EQ(response->results.size(), 1u);
    EXPECT_TRUE(response->results[0].found);
  }
  server.stop();
}

}  // namespace
}  // namespace sublet::serve
