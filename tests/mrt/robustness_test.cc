// Robustness: random and truncated bytes must never crash the binary
// decoders — they must return clean Errors (or tolerate-and-skip).
#include <gtest/gtest.h>

#include <sstream>

#include "mrt/bgp4mp.h"
#include "mrt/mrt.h"
#include "mrt/table_dump_v2.h"
#include "util/rng.h"

namespace sublet::mrt {
namespace {

std::vector<std::uint8_t> random_bytes(Rng& rng, std::size_t n) {
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.next_u64());
  return out;
}

class FuzzDecoders : public testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzDecoders, RandomBytesNeverCrash) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 500; ++iter) {
    auto bytes = random_bytes(rng, rng.next_below(200));
    // Any outcome is fine as long as nothing crashes or over-reads.
    (void)decode_peer_index_table(bytes);
    (void)decode_rib_ipv4_unicast(bytes);
    (void)decode_path_attributes(bytes);
    (void)decode_bgp4mp(bytes, Bgp4mpSubtype::kMessageAs4);
    (void)decode_bgp4mp(bytes, Bgp4mpSubtype::kMessage);
  }
}

TEST_P(FuzzDecoders, TruncationsOfValidRecordsNeverCrash) {
  Rng rng(GetParam());

  PeerIndexTable pit;
  pit.collector_bgp_id = Ipv4Addr(1);
  pit.view_name = "fuzz";
  pit.peers = {{Ipv4Addr(2), Ipv4Addr(3), Asn(65000)}};
  auto pit_wire = encode_peer_index_table(pit);

  RibPrefixRecord rec;
  rec.prefix = *Prefix::parse("10.0.0.0/8");
  RibEntry entry;
  entry.attributes.origin = BgpOrigin::kIgp;
  entry.attributes.as_path.segments = {
      {AsPathSegmentType::kAsSequence, {Asn(1), Asn(2)}}};
  rec.entries = {entry};
  auto rib_wire = encode_rib_ipv4_unicast(rec);

  for (std::size_t cut = 0; cut < pit_wire.size(); ++cut) {
    std::vector<std::uint8_t> t(pit_wire.begin(),
                                pit_wire.begin() + static_cast<long>(cut));
    EXPECT_FALSE(decode_peer_index_table(t)) << "cut " << cut;
  }
  for (std::size_t cut = 0; cut < rib_wire.size(); ++cut) {
    std::vector<std::uint8_t> t(rib_wire.begin(),
                                rib_wire.begin() + static_cast<long>(cut));
    auto result = decode_rib_ipv4_unicast(t);
    // Cutting exactly at the entry-count boundary can still decode an
    // empty record; every other cut must fail cleanly.
    if (result) {
      EXPECT_TRUE(result->entries.empty()) << "cut " << cut;
    }
  }
}

TEST_P(FuzzDecoders, MrtStreamWithGarbageTailErrors) {
  Rng rng(GetParam());
  std::ostringstream buffer(std::ios::binary);
  MrtWriter writer(buffer);
  std::vector<std::uint8_t> body = {1, 2, 3, 4};
  writer.write(1000, MrtType::kBgp4mp, 1, body);
  std::string data = buffer.str();
  auto tail = random_bytes(rng, 1 + rng.next_below(11));
  data.append(reinterpret_cast<const char*>(tail.data()), tail.size());

  std::istringstream in(data, std::ios::binary);
  MrtReader reader(in, "<fuzz>");
  auto first = reader.next();
  ASSERT_TRUE(first);
  EXPECT_EQ(first->body, body);
  // The garbage tail either parses as a (bogus) header that fails on the
  // body read, or fails on the header read; never loops or crashes.
  while (reader.next()) {
  }
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzDecoders,
                         testing::Values(11, 22, 33, 44, 55));

// Random encode->decode equivalence for full attribute sets.
class AttrRoundTripProperty : public testing::TestWithParam<std::uint64_t> {};

TEST_P(AttrRoundTripProperty, RandomAttributeSets) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 200; ++iter) {
    PathAttributes attrs;
    if (rng.chance(0.9)) {
      attrs.origin = static_cast<BgpOrigin>(rng.next_below(3));
    }
    int segments = static_cast<int>(rng.next_in(1, 3));
    for (int s = 0; s < segments; ++s) {
      AsPathSegment seg;
      seg.type = rng.chance(0.85) ? AsPathSegmentType::kAsSequence
                                  : AsPathSegmentType::kAsSet;
      int count = static_cast<int>(rng.next_in(1, 6));
      for (int i = 0; i < count; ++i) {
        seg.asns.push_back(Asn(static_cast<std::uint32_t>(rng.next_u64())));
      }
      attrs.as_path.segments.push_back(std::move(seg));
    }
    if (rng.chance(0.8)) {
      attrs.next_hop = Ipv4Addr(static_cast<std::uint32_t>(rng.next_u64()));
    }
    if (rng.chance(0.3)) {
      attrs.med = static_cast<std::uint32_t>(rng.next_u64());
    }
    if (rng.chance(0.2)) attrs.atomic_aggregate = true;
    if (rng.chance(0.3)) {
      int n = static_cast<int>(rng.next_in(1, 5));
      for (int i = 0; i < n; ++i) {
        attrs.communities.push_back(
            static_cast<std::uint32_t>(rng.next_u64()));
      }
    }

    auto wire = encode_path_attributes(attrs);
    auto decoded = decode_path_attributes(wire);
    ASSERT_TRUE(decoded) << decoded.error().to_string();
    EXPECT_EQ(decoded->origin, attrs.origin);
    ASSERT_EQ(decoded->as_path.segments.size(),
              attrs.as_path.segments.size());
    for (std::size_t s = 0; s < attrs.as_path.segments.size(); ++s) {
      EXPECT_EQ(decoded->as_path.segments[s].type,
                attrs.as_path.segments[s].type);
      EXPECT_EQ(decoded->as_path.segments[s].asns,
                attrs.as_path.segments[s].asns);
    }
    EXPECT_EQ(decoded->next_hop, attrs.next_hop);
    EXPECT_EQ(decoded->med, attrs.med);
    EXPECT_EQ(decoded->atomic_aggregate, attrs.atomic_aggregate);
    EXPECT_EQ(decoded->communities, attrs.communities);
    // And re-encoding is byte-identical (canonical form).
    EXPECT_EQ(encode_path_attributes(*decoded), wire);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AttrRoundTripProperty,
                         testing::Values(7, 14, 21));

}  // namespace
}  // namespace sublet::mrt
