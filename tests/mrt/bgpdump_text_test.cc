#include "mrt/bgpdump_text.h"

#include <gtest/gtest.h>

#include <sstream>

namespace sublet::mrt {
namespace {

Prefix P(const char* s) { return *Prefix::parse(s); }

TEST(AsPathText, FormatSequenceAndSet) {
  AsPath path;
  path.segments = {
      {AsPathSegmentType::kAsSequence, {Asn(3356), Asn(8851)}},
      {AsPathSegmentType::kAsSet, {Asn(64500), Asn(64501)}}};
  EXPECT_EQ(format_as_path(path), "3356 8851 {64500,64501}");
}

TEST(AsPathText, ParseRoundTrip) {
  auto path = parse_as_path_text("3356 8851 {64500,64501}");
  ASSERT_TRUE(path);
  ASSERT_EQ(path->segments.size(), 2u);
  EXPECT_EQ(path->segments[0].asns, (std::vector<Asn>{Asn(3356), Asn(8851)}));
  EXPECT_EQ(path->segments[1].type, AsPathSegmentType::kAsSet);
  EXPECT_EQ(format_as_path(*path), "3356 8851 {64500,64501}");
}

TEST(AsPathText, ParseRejectsJunk) {
  EXPECT_FALSE(parse_as_path_text("3356 notanas"));
  EXPECT_FALSE(parse_as_path_text("{64500"));
  EXPECT_FALSE(parse_as_path_text("{a,b}"));
}

TEST(AsPathText, EmptyPath) {
  auto path = parse_as_path_text("");
  ASSERT_TRUE(path);
  EXPECT_TRUE(path->empty());
  EXPECT_EQ(format_as_path(*path), "");
}

TEST(BgpdumpLine, ParsesRibEntry) {
  auto entry = parse_bgpdump_line(
      "TABLE_DUMP2|1711929600|B|203.0.113.10|3356|213.210.33.0/24|"
      "3356 8851 15169|IGP|203.0.113.10|0|0||NAG||");
  ASSERT_TRUE(entry) << entry.error().to_string();
  EXPECT_EQ(entry->kind, BgpdumpEntry::Kind::kRibEntry);
  EXPECT_EQ(entry->timestamp, 1711929600u);
  EXPECT_EQ(entry->peer_asn, Asn(3356));
  EXPECT_EQ(entry->prefix.to_string(), "213.210.33.0/24");
  EXPECT_EQ(entry->origins(), std::vector<Asn>{Asn(15169)});
}

TEST(BgpdumpLine, ParsesAnnounceAndWithdraw) {
  auto announce = parse_bgpdump_line(
      "BGP4MP|100|A|203.0.113.10|3356|10.0.0.0/8|3356 64500|IGP|"
      "203.0.113.10|0|0||NAG||");
  ASSERT_TRUE(announce);
  EXPECT_EQ(announce->kind, BgpdumpEntry::Kind::kAnnounce);
  EXPECT_EQ(announce->origins(), std::vector<Asn>{Asn(64500)});

  auto withdraw =
      parse_bgpdump_line("BGP4MP|200|W|203.0.113.10|3356|10.0.0.0/8");
  ASSERT_TRUE(withdraw);
  EXPECT_EQ(withdraw->kind, BgpdumpEntry::Kind::kWithdraw);
  EXPECT_TRUE(withdraw->as_path.empty());
}

TEST(BgpdumpLine, SkipsIpv6AndForeignRecords) {
  auto v6 = parse_bgpdump_line(
      "TABLE_DUMP2|100|B|2001:db8::1|3356|2001:db8::/32|3356|IGP|x|0|0||||");
  ASSERT_FALSE(v6);
  EXPECT_EQ(v6.error().message.rfind("skip:", 0), 0u);

  auto state = parse_bgpdump_line("BGP4MP|100|STATE|1.2.3.4|3356|5|6");
  ASSERT_FALSE(state);
  EXPECT_EQ(state.error().message.rfind("skip:", 0), 0u);
}

TEST(BgpdumpLine, ErrorsOnDamage) {
  EXPECT_FALSE(parse_bgpdump_line(""));
  EXPECT_FALSE(parse_bgpdump_line("TABLE_DUMP2|notatime|B|1.2.3.4|1|5/8|1"));
  EXPECT_FALSE(parse_bgpdump_line("TABLE_DUMP2|1|B|1.2.3.4|1"));
}

TEST(BgpdumpText, WriteParsesBackEquivalently) {
  RibSnapshot snap;
  snap.timestamp = 1711929600;
  snap.peer_table.peers = {
      {Ipv4Addr(1), *Ipv4Addr::parse("203.0.113.10"), Asn(3356)}};
  RibPrefixRecord rec;
  rec.prefix = P("213.210.33.0/24");
  RibEntry entry;
  entry.peer_index = 0;
  entry.attributes.as_path.segments = {
      {AsPathSegmentType::kAsSequence, {Asn(3356), Asn(15169)}}};
  entry.attributes.next_hop = *Ipv4Addr::parse("203.0.113.10");
  rec.entries = {entry};
  snap.records = {rec};

  std::ostringstream out;
  write_bgpdump_text(out, snap);
  std::istringstream in(out.str());
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    auto parsed = parse_bgpdump_line(line);
    ASSERT_TRUE(parsed) << parsed.error().to_string();
    EXPECT_EQ(parsed->prefix, rec.prefix);
    EXPECT_EQ(parsed->peer_asn, Asn(3356));
    EXPECT_EQ(parsed->origins(), std::vector<Asn>{Asn(15169)});
    ++lines;
  }
  EXPECT_EQ(lines, 1u);
}

}  // namespace
}  // namespace sublet::mrt
