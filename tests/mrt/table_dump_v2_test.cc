#include "mrt/table_dump_v2.h"

#include <gtest/gtest.h>

#include "mrt/bytes.h"

namespace sublet::mrt {
namespace {

Prefix P(const char* s) { return *Prefix::parse(s); }

TEST(NlriPrefix, RoundTripVariousLengths) {
  for (const char* s : {"0.0.0.0/0", "10.0.0.0/8", "172.16.0.0/12",
                        "192.168.4.0/22", "213.210.33.0/24", "1.2.3.4/32"}) {
    BufWriter w;
    encode_nlri_prefix(w, P(s));
    BufReader r(w.data());
    auto decoded = decode_nlri_prefix(r);
    ASSERT_TRUE(decoded) << s;
    EXPECT_EQ(decoded->to_string(), s);
    EXPECT_EQ(r.remaining(), 0u) << "no trailing bytes for " << s;
  }
}

TEST(NlriPrefix, MinimalOctets) {
  BufWriter w;
  encode_nlri_prefix(w, P("10.0.0.0/8"));
  EXPECT_EQ(w.size(), 2u) << "/8 takes 1 length byte + 1 prefix octet";
  BufWriter w2;
  encode_nlri_prefix(w2, P("0.0.0.0/0"));
  EXPECT_EQ(w2.size(), 1u) << "/0 takes only the length byte";
}

TEST(NlriPrefix, RejectsBadLength) {
  std::uint8_t bad[] = {33, 0, 0, 0, 0, 0};
  BufReader r(bad);
  EXPECT_FALSE(decode_nlri_prefix(r));
}

TEST(NlriPrefix, RejectsHostBits) {
  // /8 with a second octet bit set inside the encoded octet itself is
  // impossible (only 1 octet carried), but /9 with low bits set is not.
  std::uint8_t bad[] = {9, 0x0A, 0x7F};  // 10.127/9 -> host bits set
  BufReader r(bad);
  EXPECT_FALSE(decode_nlri_prefix(r));
}

PeerIndexTable sample_pit() {
  PeerIndexTable pit;
  pit.collector_bgp_id = *Ipv4Addr::parse("198.51.100.1");
  pit.view_name = "rib.20240401";
  pit.peers = {
      {*Ipv4Addr::parse("198.51.100.10"), *Ipv4Addr::parse("203.0.113.10"),
       Asn(3356)},
      {*Ipv4Addr::parse("198.51.100.11"), *Ipv4Addr::parse("203.0.113.11"),
       Asn(4200000001)},
  };
  return pit;
}

TEST(PeerIndexTable, RoundTrip) {
  auto wire = encode_peer_index_table(sample_pit());
  auto decoded = decode_peer_index_table(wire);
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded->collector_bgp_id.to_string(), "198.51.100.1");
  EXPECT_EQ(decoded->view_name, "rib.20240401");
  ASSERT_EQ(decoded->peers.size(), 2u);
  EXPECT_EQ(decoded->peers[0].asn, Asn(3356));
  EXPECT_EQ(decoded->peers[1].asn, Asn(4200000001));
  EXPECT_EQ(decoded->peers[1].address.to_string(), "203.0.113.11");
}

TEST(PeerIndexTable, EmptyViewNameAndNoPeers) {
  PeerIndexTable pit;
  pit.collector_bgp_id = Ipv4Addr(1);
  auto decoded = decode_peer_index_table(encode_peer_index_table(pit));
  ASSERT_TRUE(decoded);
  EXPECT_TRUE(decoded->view_name.empty());
  EXPECT_TRUE(decoded->peers.empty());
}

TEST(PeerIndexTable, TruncatedIsError) {
  auto wire = encode_peer_index_table(sample_pit());
  wire.resize(wire.size() - 2);
  EXPECT_FALSE(decode_peer_index_table(wire));
}

RibPrefixRecord sample_rib() {
  RibPrefixRecord rec;
  rec.sequence = 7;
  rec.prefix = P("213.210.33.0/24");
  RibEntry e1;
  e1.peer_index = 0;
  e1.originated_time = 1711929600;
  e1.attributes.origin = BgpOrigin::kIgp;
  e1.attributes.as_path.segments = {
      {AsPathSegmentType::kAsSequence, {Asn(3356), Asn(15169)}}};
  e1.attributes.next_hop = *Ipv4Addr::parse("203.0.113.10");
  RibEntry e2 = e1;
  e2.peer_index = 1;
  e2.attributes.as_path.segments = {
      {AsPathSegmentType::kAsSequence, {Asn(174), Asn(9009), Asn(15169)}}};
  rec.entries = {e1, e2};
  return rec;
}

TEST(RibIpv4Unicast, RoundTrip) {
  auto wire = encode_rib_ipv4_unicast(sample_rib());
  auto decoded = decode_rib_ipv4_unicast(wire);
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded->sequence, 7u);
  EXPECT_EQ(decoded->prefix.to_string(), "213.210.33.0/24");
  ASSERT_EQ(decoded->entries.size(), 2u);
  EXPECT_EQ(decoded->entries[0].attributes.as_path.origin_asns(),
            std::vector<Asn>{Asn(15169)});
  EXPECT_EQ(decoded->entries[1].peer_index, 1);
  EXPECT_EQ(decoded->entries[1].originated_time, 1711929600u);
}

TEST(RibIpv4Unicast, NoEntries) {
  RibPrefixRecord rec;
  rec.prefix = P("10.0.0.0/8");
  auto decoded = decode_rib_ipv4_unicast(encode_rib_ipv4_unicast(rec));
  ASSERT_TRUE(decoded);
  EXPECT_TRUE(decoded->entries.empty());
}

TEST(RibIpv4Unicast, TruncatedEntryIsError) {
  auto wire = encode_rib_ipv4_unicast(sample_rib());
  wire.resize(wire.size() - 1);
  EXPECT_FALSE(decode_rib_ipv4_unicast(wire));
}

TEST(RibIpv4Unicast, ReencodeIsByteIdentical) {
  auto wire = encode_rib_ipv4_unicast(sample_rib());
  auto decoded = decode_rib_ipv4_unicast(wire);
  ASSERT_TRUE(decoded);
  EXPECT_EQ(encode_rib_ipv4_unicast(*decoded), wire);
}

}  // namespace
}  // namespace sublet::mrt
