#include "mrt/bgp_attrs.h"

#include <gtest/gtest.h>

namespace sublet::mrt {
namespace {

PathAttributes sample_attrs() {
  PathAttributes attrs;
  attrs.origin = BgpOrigin::kIgp;
  attrs.as_path.segments = {
      {AsPathSegmentType::kAsSequence, {Asn(3356), Asn(8851), Asn(15169)}}};
  attrs.next_hop = *Ipv4Addr::parse("192.0.2.1");
  attrs.med = 100;
  attrs.communities = {(3356u << 16) | 3, (8851u << 16) | 100};
  return attrs;
}

TEST(PathAttrs, RoundTripFourByte) {
  auto wire = encode_path_attributes(sample_attrs());
  auto decoded = decode_path_attributes(wire);
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded->origin, BgpOrigin::kIgp);
  ASSERT_EQ(decoded->as_path.segments.size(), 1u);
  EXPECT_EQ(decoded->as_path.segments[0].asns,
            (std::vector<Asn>{Asn(3356), Asn(8851), Asn(15169)}));
  EXPECT_EQ(decoded->next_hop->to_string(), "192.0.2.1");
  EXPECT_EQ(decoded->med, 100u);
  EXPECT_EQ(decoded->communities.size(), 2u);
}

TEST(PathAttrs, RoundTripTwoByte) {
  PathAttributes attrs;
  attrs.origin = BgpOrigin::kEgp;
  attrs.as_path.segments = {
      {AsPathSegmentType::kAsSequence, {Asn(701), Asn(7018)}}};
  auto wire = encode_path_attributes(attrs, /*four_byte_as=*/false);
  auto decoded = decode_path_attributes(wire, /*four_byte_as=*/false);
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded->as_path.origin_asns(), std::vector<Asn>{Asn(7018)});
}

TEST(PathAttrs, FourByteAsnSurvives) {
  PathAttributes attrs;
  attrs.as_path.segments = {
      {AsPathSegmentType::kAsSequence, {Asn(4200000001)}}};
  auto wire = encode_path_attributes(attrs);
  auto decoded = decode_path_attributes(wire);
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded->as_path.origin_asns(), std::vector<Asn>{Asn(4200000001)});
}

TEST(OriginAsns, SequenceTakesLast) {
  AsPath path;
  path.segments = {
      {AsPathSegmentType::kAsSequence, {Asn(1), Asn(2), Asn(3)}}};
  EXPECT_EQ(path.origin_asns(), std::vector<Asn>{Asn(3)});
}

TEST(OriginAsns, TrailingSetTakesAllMembers) {
  AsPath path;
  path.segments = {
      {AsPathSegmentType::kAsSequence, {Asn(1)}},
      {AsPathSegmentType::kAsSet, {Asn(10), Asn(20)}}};
  EXPECT_EQ(path.origin_asns(), (std::vector<Asn>{Asn(10), Asn(20)}));
}

TEST(OriginAsns, EmptyPath) {
  EXPECT_TRUE(AsPath{}.origin_asns().empty());
}

TEST(PathAttrs, AsSetRoundTrip) {
  PathAttributes attrs;
  attrs.as_path.segments = {
      {AsPathSegmentType::kAsSequence, {Asn(100)}},
      {AsPathSegmentType::kAsSet, {Asn(200), Asn(300)}}};
  auto decoded = decode_path_attributes(encode_path_attributes(attrs));
  ASSERT_TRUE(decoded);
  ASSERT_EQ(decoded->as_path.segments.size(), 2u);
  EXPECT_EQ(decoded->as_path.segments[1].type, AsPathSegmentType::kAsSet);
  EXPECT_EQ(decoded->as_path.flatten(),
            (std::vector<Asn>{Asn(100), Asn(200), Asn(300)}));
}

TEST(PathAttrs, AggregatorAndAtomicAggregate) {
  PathAttributes attrs;
  attrs.atomic_aggregate = true;
  attrs.aggregator = {Asn(8851), *Ipv4Addr::parse("10.0.0.1")};
  auto decoded = decode_path_attributes(encode_path_attributes(attrs));
  ASSERT_TRUE(decoded);
  EXPECT_TRUE(decoded->atomic_aggregate);
  ASSERT_TRUE(decoded->aggregator);
  EXPECT_EQ(decoded->aggregator->first, Asn(8851));
}

TEST(PathAttrs, UnrecognizedAttributePreserved) {
  PathAttributes attrs;
  attrs.unrecognized.push_back({0xC0, 99, {1, 2, 3}});
  auto wire = encode_path_attributes(attrs);
  auto decoded = decode_path_attributes(wire);
  ASSERT_TRUE(decoded);
  ASSERT_EQ(decoded->unrecognized.size(), 1u);
  EXPECT_EQ(decoded->unrecognized[0].type, 99);
  EXPECT_EQ(decoded->unrecognized[0].payload, (std::vector<std::uint8_t>{1, 2, 3}));
  // And the re-encoding is byte-identical.
  EXPECT_EQ(encode_path_attributes(*decoded), wire);
}

TEST(PathAttrs, ExtendedLengthAttribute) {
  PathAttributes attrs;
  attrs.unrecognized.push_back(
      {0xC0, 99, std::vector<std::uint8_t>(300, 0x5A)});
  auto decoded = decode_path_attributes(encode_path_attributes(attrs));
  ASSERT_TRUE(decoded);
  ASSERT_EQ(decoded->unrecognized.size(), 1u);
  EXPECT_EQ(decoded->unrecognized[0].payload.size(), 300u);
}

TEST(PathAttrs, TruncatedAttributeIsError) {
  auto wire = encode_path_attributes(sample_attrs());
  wire.resize(wire.size() - 3);
  auto decoded = decode_path_attributes(wire);
  EXPECT_FALSE(decoded);
}

TEST(PathAttrs, BadOriginValueIsError) {
  // flags=0x40 type=ORIGIN len=1 value=9
  std::vector<std::uint8_t> wire = {0x40, 1, 1, 9};
  EXPECT_FALSE(decode_path_attributes(wire));
}

TEST(PathAttrs, BadSegmentTypeIsError) {
  // AS_PATH with segment type 7
  std::vector<std::uint8_t> wire = {0x40, 2, 6, 7, 1, 0, 0, 0, 1};
  EXPECT_FALSE(decode_path_attributes(wire));
}

TEST(PathAttrs, EmptyInputYieldsEmptyAttrs) {
  auto decoded = decode_path_attributes({});
  ASSERT_TRUE(decoded);
  EXPECT_FALSE(decoded->origin);
  EXPECT_TRUE(decoded->as_path.empty());
}

}  // namespace
}  // namespace sublet::mrt
