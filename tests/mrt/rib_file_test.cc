#include "mrt/rib_file.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "mrt/mrt.h"

namespace sublet::mrt {
namespace {

Prefix P(const char* s) { return *Prefix::parse(s); }

RibSnapshot sample_snapshot() {
  RibSnapshot snap;
  snap.timestamp = 1711929600;  // 2024-04-01T00:00:00Z
  snap.peer_table.collector_bgp_id = *Ipv4Addr::parse("198.51.100.1");
  snap.peer_table.view_name = "route-views.sim";
  snap.peer_table.peers = {
      {*Ipv4Addr::parse("198.51.100.10"), *Ipv4Addr::parse("203.0.113.10"),
       Asn(3356)}};

  RibPrefixRecord rec;
  rec.prefix = P("213.210.0.0/18");
  RibEntry entry;
  entry.peer_index = 0;
  entry.originated_time = snap.timestamp;
  entry.attributes.origin = BgpOrigin::kIgp;
  entry.attributes.as_path.segments = {
      {AsPathSegmentType::kAsSequence, {Asn(3356), Asn(8851)}}};
  entry.attributes.next_hop = *Ipv4Addr::parse("203.0.113.10");
  rec.entries = {entry};
  snap.records.push_back(rec);

  RibPrefixRecord rec2 = rec;
  rec2.prefix = P("213.210.33.0/24");
  rec2.entries[0].attributes.as_path.segments = {
      {AsPathSegmentType::kAsSequence, {Asn(3356), Asn(15169)}}};
  snap.records.push_back(rec2);
  return snap;
}

TEST(RibFile, WriteReadRoundTrip) {
  std::string path = testing::TempDir() + "/sublet_rib_test.mrt";
  write_rib_file(path, sample_snapshot());

  auto loaded = read_rib_file(path);
  ASSERT_TRUE(loaded) << loaded.error().to_string();
  EXPECT_EQ(loaded->timestamp, 1711929600u);
  EXPECT_EQ(loaded->peer_table.view_name, "route-views.sim");
  ASSERT_EQ(loaded->records.size(), 2u);
  EXPECT_EQ(loaded->records[0].prefix.to_string(), "213.210.0.0/18");
  EXPECT_EQ(loaded->records[0].sequence, 0u);
  EXPECT_EQ(loaded->records[1].sequence, 1u);
  EXPECT_EQ(loaded->records[1].entries[0].attributes.as_path.origin_asns(),
            std::vector<Asn>{Asn(15169)});
  std::remove(path.c_str());
}

TEST(RibFile, MissingFile) {
  auto loaded = read_rib_file("/nonexistent/rib.mrt");
  EXPECT_FALSE(loaded);
}

TEST(RibFile, EmptyFileHasNoPeerTable) {
  std::string path = testing::TempDir() + "/sublet_rib_empty.mrt";
  { std::ofstream out(path, std::ios::binary); }
  auto loaded = read_rib_file(path);
  EXPECT_FALSE(loaded);
  EXPECT_NE(loaded.error().message.find("PEER_INDEX_TABLE"),
            std::string::npos);
  std::remove(path.c_str());
}

TEST(RibFile, TruncatedFileIsError) {
  std::string path = testing::TempDir() + "/sublet_rib_trunc.mrt";
  write_rib_file(path, sample_snapshot());
  // Chop the last 5 bytes off.
  std::ifstream in(path, std::ios::binary);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  in.close();
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(contents.data(),
              static_cast<std::streamsize>(contents.size() - 5));
  }
  auto loaded = read_rib_file(path);
  EXPECT_FALSE(loaded);
  std::remove(path.c_str());
}

TEST(RibFile, UnknownRecordTypesSkipped) {
  std::string path = testing::TempDir() + "/sublet_rib_unknown.mrt";
  {
    std::ofstream out(path, std::ios::binary);
    MrtWriter writer(out);
    auto snap = sample_snapshot();
    writer.write(snap.timestamp, MrtType::kTableDumpV2,
                 static_cast<std::uint16_t>(TableDumpV2Subtype::kPeerIndexTable),
                 encode_peer_index_table(snap.peer_table));
    // An IPv6 RIB record we don't decode: skipped, not an error.
    std::vector<std::uint8_t> junk = {0, 0, 0, 1, 0};
    writer.write(snap.timestamp, MrtType::kTableDumpV2,
                 static_cast<std::uint16_t>(TableDumpV2Subtype::kRibIpv6Unicast),
                 junk);
    writer.write(snap.timestamp, MrtType::kTableDumpV2,
                 static_cast<std::uint16_t>(TableDumpV2Subtype::kRibIpv4Unicast),
                 encode_rib_ipv4_unicast(snap.records[0]));
  }
  auto loaded = read_rib_file(path);
  ASSERT_TRUE(loaded) << loaded.error().to_string();
  EXPECT_EQ(loaded->records.size(), 1u);
  std::remove(path.c_str());
}

TEST(MrtReader, HeaderFieldsSurface) {
  std::string path = testing::TempDir() + "/sublet_mrt_hdr.mrt";
  {
    std::ofstream out(path, std::ios::binary);
    MrtWriter writer(out);
    std::vector<std::uint8_t> body = {1, 2, 3};
    writer.write(1234567, MrtType::kBgp4mp, 4, body);
  }
  std::ifstream in(path, std::ios::binary);
  MrtReader reader(in, path);
  auto rec = reader.next();
  ASSERT_TRUE(rec);
  EXPECT_EQ(rec->timestamp, 1234567u);
  EXPECT_EQ(rec->type, 16);
  EXPECT_EQ(rec->subtype, 4);
  EXPECT_EQ(rec->body, (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_FALSE(reader.next());
  EXPECT_FALSE(reader.error());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace sublet::mrt
