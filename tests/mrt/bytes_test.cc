#include "mrt/bytes.h"

#include <gtest/gtest.h>

namespace sublet::mrt {
namespace {

TEST(BufWriter, BigEndianIntegers) {
  BufWriter w;
  w.u8(0xAB);
  w.u16(0x0102);
  w.u32(0x03040506);
  ASSERT_EQ(w.size(), 7u);
  const auto& b = w.data();
  EXPECT_EQ(b[0], 0xAB);
  EXPECT_EQ(b[1], 0x01);
  EXPECT_EQ(b[2], 0x02);
  EXPECT_EQ(b[3], 0x03);
  EXPECT_EQ(b[6], 0x06);
}

TEST(BufReader, ReadsBackWhatWriterWrote) {
  BufWriter w;
  w.u8(7);
  w.u16(65535);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFull);
  w.string("view");

  BufReader r(w.data());
  EXPECT_EQ(r.u8(), 7);
  EXPECT_EQ(r.u16(), 65535);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.string(4), "view");
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(BufReader, UnderrunSetsFailureOnce) {
  std::uint8_t data[] = {1, 2};
  BufReader r(data);
  EXPECT_EQ(r.u16(), 0x0102);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.u32(), 0u) << "underrun returns zero";
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.u8(), 0u) << "failure is sticky";
}

TEST(BufReader, SkipAndPosition) {
  std::uint8_t data[] = {1, 2, 3, 4, 5};
  BufReader r(data);
  r.skip(3);
  EXPECT_EQ(r.position(), 3u);
  EXPECT_EQ(r.u8(), 4);
  r.skip(5);
  EXPECT_FALSE(r.ok());
}

TEST(BufWriter, PatchBack) {
  BufWriter w;
  w.u16(0);           // placeholder
  w.u32(0);           // placeholder
  w.patch_u16(0, 0xBEEF);
  w.patch_u32(2, 0xCAFEBABE);
  BufReader r(w.data());
  EXPECT_EQ(r.u16(), 0xBEEF);
  EXPECT_EQ(r.u32(), 0xCAFEBABEu);
}

TEST(BufReader, EmptyInput) {
  BufReader r({});
  EXPECT_EQ(r.remaining(), 0u);
  EXPECT_EQ(r.u8(), 0u);
  EXPECT_FALSE(r.ok());
}

}  // namespace
}  // namespace sublet::mrt
