#include "mrt/bgp4mp.h"

#include <gtest/gtest.h>

namespace sublet::mrt {
namespace {

Prefix P(const char* s) { return *Prefix::parse(s); }

Bgp4mpMessage sample_update() {
  Bgp4mpMessage msg;
  msg.peer_asn = Asn(3356);
  msg.local_asn = Asn(65001);
  msg.interface_index = 2;
  msg.peer_ip = *Ipv4Addr::parse("203.0.113.1");
  msg.local_ip = *Ipv4Addr::parse("203.0.113.2");
  msg.type = BgpMessageType::kUpdate;
  msg.withdrawn = {P("198.51.100.0/24")};
  msg.attributes.origin = BgpOrigin::kIgp;
  msg.attributes.as_path.segments = {
      {AsPathSegmentType::kAsSequence, {Asn(3356), Asn(8851), Asn(15169)}}};
  msg.attributes.next_hop = *Ipv4Addr::parse("203.0.113.1");
  msg.announced = {P("213.210.33.0/24"), P("213.210.34.0/24")};
  return msg;
}

TEST(Bgp4mp, UpdateRoundTripAs4) {
  auto wire = encode_bgp4mp(sample_update(), Bgp4mpSubtype::kMessageAs4);
  auto decoded = decode_bgp4mp(wire, Bgp4mpSubtype::kMessageAs4);
  ASSERT_TRUE(decoded) << decoded.error().to_string();
  EXPECT_EQ(decoded->peer_asn, Asn(3356));
  EXPECT_EQ(decoded->local_asn, Asn(65001));
  EXPECT_EQ(decoded->peer_ip.to_string(), "203.0.113.1");
  EXPECT_TRUE(decoded->is_update());
  ASSERT_EQ(decoded->withdrawn.size(), 1u);
  EXPECT_EQ(decoded->withdrawn[0].to_string(), "198.51.100.0/24");
  ASSERT_EQ(decoded->announced.size(), 2u);
  EXPECT_EQ(decoded->announced[1].to_string(), "213.210.34.0/24");
  EXPECT_EQ(decoded->attributes.as_path.origin_asns(),
            std::vector<Asn>{Asn(15169)});
}

TEST(Bgp4mp, UpdateRoundTripTwoByteAs) {
  Bgp4mpMessage msg = sample_update();
  auto wire = encode_bgp4mp(msg, Bgp4mpSubtype::kMessage);
  auto decoded = decode_bgp4mp(wire, Bgp4mpSubtype::kMessage);
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded->peer_asn, Asn(3356));
  EXPECT_EQ(decoded->attributes.as_path.origin_asns(),
            std::vector<Asn>{Asn(15169)});
}

TEST(Bgp4mp, FourByteAsnNeedsAs4Subtype) {
  Bgp4mpMessage msg = sample_update();
  msg.peer_asn = Asn(4200000001);
  auto decoded = decode_bgp4mp(encode_bgp4mp(msg, Bgp4mpSubtype::kMessageAs4),
                               Bgp4mpSubtype::kMessageAs4);
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded->peer_asn, Asn(4200000001));
}

TEST(Bgp4mp, KeepaliveHasNoPayload) {
  Bgp4mpMessage msg;
  msg.peer_asn = Asn(1);
  msg.local_asn = Asn(2);
  msg.type = BgpMessageType::kKeepalive;
  auto decoded = decode_bgp4mp(encode_bgp4mp(msg, Bgp4mpSubtype::kMessageAs4),
                               Bgp4mpSubtype::kMessageAs4);
  ASSERT_TRUE(decoded);
  EXPECT_FALSE(decoded->is_update());
  EXPECT_TRUE(decoded->announced.empty());
  EXPECT_TRUE(decoded->withdrawn.empty());
}

TEST(Bgp4mp, WithdrawOnlyUpdate) {
  Bgp4mpMessage msg;
  msg.peer_asn = Asn(1);
  msg.local_asn = Asn(2);
  msg.type = BgpMessageType::kUpdate;
  msg.withdrawn = {P("10.0.0.0/8")};
  auto decoded = decode_bgp4mp(encode_bgp4mp(msg, Bgp4mpSubtype::kMessageAs4),
                               Bgp4mpSubtype::kMessageAs4);
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded->withdrawn.size(), 1u);
  EXPECT_TRUE(decoded->announced.empty());
  EXPECT_TRUE(decoded->attributes.as_path.empty());
}

TEST(Bgp4mp, TruncatedIsError) {
  auto wire = encode_bgp4mp(sample_update(), Bgp4mpSubtype::kMessageAs4);
  for (std::size_t cut : {wire.size() - 1, wire.size() - 8, std::size_t{10}}) {
    std::vector<std::uint8_t> truncated(wire.begin(),
                                        wire.begin() + static_cast<long>(cut));
    EXPECT_FALSE(decode_bgp4mp(truncated, Bgp4mpSubtype::kMessageAs4))
        << "cut at " << cut;
  }
}

TEST(Bgp4mp, RejectsNonIpv4Afi) {
  auto wire = encode_bgp4mp(sample_update(), Bgp4mpSubtype::kMessageAs4);
  // AFI lives at offset 10 (4+4+2) for the AS4 subtype; flip it to IPv6.
  wire[10] = 0;
  wire[11] = 2;
  EXPECT_FALSE(decode_bgp4mp(wire, Bgp4mpSubtype::kMessageAs4));
}

}  // namespace
}  // namespace sublet::mrt
