#include "snapshot/snapshot.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "snapshot/format.h"
#include "snapshot/writer.h"
#include "util/binio.h"

namespace sublet::snapshot {
namespace {

using leasing::InferenceGroup;
using leasing::LeaseInference;

Prefix P(const char* s) { return *Prefix::parse(s); }

std::vector<LeaseInference> sample(std::size_t n) {
  std::vector<LeaseInference> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    LeaseInference r;
    r.prefix = *Prefix::make(
        Ipv4Addr((10u << 24) | (static_cast<std::uint32_t>(i) << 8)), 24);
    r.root_prefix = P("10.0.0.0/8");
    r.rir = static_cast<whois::Rir>(i % 5);
    r.group = leasing::kAllInferenceGroups[i % leasing::kAllInferenceGroups
                                                   .size()];
    r.holder_org = "ORG-SHARED-" + std::to_string(i % 3);
    r.holder_asns = {Asn(64512 + static_cast<std::uint32_t>(i % 7))};
    r.leaf_origins = {Asn(65001), Asn(65002)};
    r.root_origins = {Asn(64512)};
    r.leaf_maintainers = {"MNT-" + std::to_string(i % 3), "MNT-COMMON"};
    r.root_maintainers = {"MNT-ROOT"};
    r.netname = "NET, \"quoted\"\nname-" + std::to_string(i % 4);
    out.push_back(std::move(r));
  }
  return out;
}

void expect_equal(const LeaseInference& a, const LeaseInference& b) {
  EXPECT_EQ(a.prefix, b.prefix);
  EXPECT_EQ(a.root_prefix, b.root_prefix);
  EXPECT_EQ(a.rir, b.rir);
  EXPECT_EQ(a.group, b.group);
  EXPECT_EQ(a.holder_org, b.holder_org);
  EXPECT_EQ(a.holder_asns, b.holder_asns);
  EXPECT_EQ(a.leaf_origins, b.leaf_origins);
  EXPECT_EQ(a.root_origins, b.root_origins);
  EXPECT_EQ(a.leaf_maintainers, b.leaf_maintainers);
  EXPECT_EQ(a.root_maintainers, b.root_maintainers);
  EXPECT_EQ(a.netname, b.netname);
}

// Little-endian in-place patches for forging header/table fields in
// corruption tests.
void patch_u16(std::vector<std::uint8_t>& b, std::size_t off,
               std::uint16_t v) {
  b[off] = static_cast<std::uint8_t>(v);
  b[off + 1] = static_cast<std::uint8_t>(v >> 8);
}
void patch_u32(std::vector<std::uint8_t>& b, std::size_t off,
               std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    b[off + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(v >> (8 * i));
  }
}
void patch_u64(std::vector<std::uint8_t>& b, std::size_t off,
               std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    b[off + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(v >> (8 * i));
  }
}

/// Recompute and patch the header CRC so edits *below* the header survive
/// the checksum gate and reach the structural validators.
void forge_crc(std::vector<std::uint8_t>& b) {
  std::span<const std::uint8_t> rest(b.data() + kHeaderSize,
                                     b.size() - kHeaderSize);
  patch_u32(b, 24, crc32(rest));
}

TEST(Snapshot, RoundTripInMemory) {
  auto inferences = sample(50);
  auto snap = Snapshot::from_bytes(encode_snapshot(inferences));
  ASSERT_TRUE(snap) << snap.error().to_string();
  ASSERT_EQ(snap->record_count(), inferences.size());
  for (std::size_t i = 0; i < inferences.size(); ++i) {
    expect_equal(snap->materialize(i), inferences[i]);
  }
}

TEST(Snapshot, EmptyInput) {
  auto snap = Snapshot::from_bytes(encode_snapshot({}));
  ASSERT_TRUE(snap) << snap.error().to_string();
  EXPECT_EQ(snap->record_count(), 0u);
  auto trie = snap->build_trie();
  ASSERT_TRUE(trie) << trie.error().to_string();
  EXPECT_EQ(trie->size(), 0u);
}

TEST(Snapshot, StringsAreDeduplicated) {
  // 60 records, but orgs cycle mod 3, maintainers mod 3 (+2 shared),
  // netnames mod 4 — the pool must stay tiny.
  auto snap = Snapshot::from_bytes(encode_snapshot(sample(60)));
  ASSERT_TRUE(snap);
  EXPECT_LT(snap->string_count(), 16u);
}

TEST(Snapshot, TrieResolvesEveryLeaf) {
  auto inferences = sample(40);
  auto snap = Snapshot::from_bytes(encode_snapshot(inferences));
  ASSERT_TRUE(snap);
  auto trie = snap->build_trie();
  ASSERT_TRUE(trie) << trie.error().to_string();
  EXPECT_EQ(trie->size(), inferences.size());
  for (std::size_t i = 0; i < inferences.size(); ++i) {
    const std::uint32_t* idx = trie->find(inferences[i].prefix);
    ASSERT_NE(idx, nullptr);
    EXPECT_EQ(*idx, i);
  }
  EXPECT_EQ(trie->find(P("192.0.2.0/24")), nullptr);
}

class SnapshotFileTest : public testing::Test {
 protected:
  void SetUp() override {
    path_ = testing::TempDir() + "/sublet_snapshot_test_" +
            std::to_string(::getpid()) + ".snap";
    inferences_ = sample(25);
    write_snapshot_file(path_, inferences_);
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::string path_;
  std::vector<LeaseInference> inferences_;
};

TEST_F(SnapshotFileTest, ReadMode) {
  auto snap = Snapshot::open(path_, Snapshot::Mode::kRead);
  ASSERT_TRUE(snap) << snap.error().to_string();
  EXPECT_FALSE(snap->mapped());
  ASSERT_EQ(snap->record_count(), inferences_.size());
  expect_equal(snap->materialize(7), inferences_[7]);
}

TEST_F(SnapshotFileTest, MapMode) {
  auto snap = Snapshot::open(path_, Snapshot::Mode::kMap);
  ASSERT_TRUE(snap) << snap.error().to_string();
  EXPECT_TRUE(snap->mapped());
  ASSERT_EQ(snap->record_count(), inferences_.size());
  for (std::size_t i = 0; i < inferences_.size(); ++i) {
    expect_equal(snap->materialize(i), inferences_[i]);
  }
}

TEST_F(SnapshotFileTest, MissingFile) {
  EXPECT_FALSE(Snapshot::open(path_ + ".nope", Snapshot::Mode::kRead));
  EXPECT_FALSE(Snapshot::open(path_ + ".nope", Snapshot::Mode::kMap));
}

// --- corruption: every damaged input must yield Error, never a crash ---

class SnapshotCorruptionTest : public testing::Test {
 protected:
  void SetUp() override { bytes_ = encode_snapshot(sample(20)); }

  std::vector<std::uint8_t> bytes_;
};

TEST_F(SnapshotCorruptionTest, Truncated) {
  for (std::size_t keep :
       {std::size_t{0}, std::size_t{5}, kHeaderSize - 1, kHeaderSize,
        kHeaderSize + 3 * kSectionEntrySize, bytes_.size() - 1}) {
    std::vector<std::uint8_t> cut(bytes_.begin(),
                                  bytes_.begin() + static_cast<long>(keep));
    EXPECT_FALSE(Snapshot::from_bytes(std::move(cut))) << "kept " << keep;
  }
}

TEST_F(SnapshotCorruptionTest, WrongMagic) {
  bytes_[0] ^= 0xFF;
  EXPECT_FALSE(Snapshot::from_bytes(std::move(bytes_)));
}

TEST_F(SnapshotCorruptionTest, WrongVersion) {
  patch_u16(bytes_, 8, kVersion + 1);
  EXPECT_FALSE(Snapshot::from_bytes(std::move(bytes_)));
}

TEST_F(SnapshotCorruptionTest, MissingLittleEndianFlag) {
  patch_u16(bytes_, 10, 0);
  EXPECT_FALSE(Snapshot::from_bytes(std::move(bytes_)));
}

TEST_F(SnapshotCorruptionTest, FlippedCrcByte) {
  bytes_[24] ^= 0x01;  // stored checksum no longer matches the payload
  EXPECT_FALSE(Snapshot::from_bytes(std::move(bytes_)));
}

TEST_F(SnapshotCorruptionTest, FlippedPayloadByte) {
  bytes_[bytes_.size() - 1] ^= 0x40;  // payload no longer matches checksum
  EXPECT_FALSE(Snapshot::from_bytes(std::move(bytes_)));
}

TEST_F(SnapshotCorruptionTest, OversizedSectionLength) {
  // Blow up each section's length in turn, re-forging the CRC so the edit
  // reaches the bounds validator rather than the checksum gate.
  for (std::uint32_t entry = 0; entry < kSectionCount; ++entry) {
    auto copy = bytes_;
    std::size_t len_off = kHeaderSize + entry * kSectionEntrySize + 16;
    patch_u64(copy, len_off, 1ull << 40);
    forge_crc(copy);
    EXPECT_FALSE(Snapshot::from_bytes(std::move(copy))) << "entry " << entry;
  }
}

TEST_F(SnapshotCorruptionTest, SectionOffsetPastPayload) {
  auto copy = bytes_;
  patch_u64(copy, kHeaderSize + 2 * kSectionEntrySize + 8, 1ull << 40);
  forge_crc(copy);
  EXPECT_FALSE(Snapshot::from_bytes(std::move(copy)));
}

TEST_F(SnapshotCorruptionTest, DuplicateSectionId) {
  auto copy = bytes_;
  // Rewrite entry 1's id to match entry 0's.
  patch_u32(copy, kHeaderSize + 1 * kSectionEntrySize, 1);
  forge_crc(copy);
  EXPECT_FALSE(Snapshot::from_bytes(std::move(copy)));
}

TEST_F(SnapshotCorruptionTest, RecordFieldOutOfRange) {
  // Corrupt the first RecordRow's string id inside the records section;
  // the CRC is forged so only semantic validation can reject it.
  ByteReader header(bytes_);
  header.skip(kHeaderSize);
  std::size_t records_off = 0;
  for (std::uint32_t entry = 0; entry < kSectionCount; ++entry) {
    std::uint32_t id = header.u32();
    header.u32();
    std::uint64_t off = header.u64();
    header.u64();
    if (id == static_cast<std::uint32_t>(SectionId::kRecords)) {
      records_off = kHeaderSize + kSectionCount * kSectionEntrySize +
                    static_cast<std::size_t>(off);
    }
  }
  ASSERT_TRUE(header.ok());
  ASSERT_NE(records_off, 0u);
  auto copy = bytes_;
  patch_u32(copy, records_off + offsetof(RecordRow, holder_org), 0xFFFFFF);
  forge_crc(copy);
  EXPECT_FALSE(Snapshot::from_bytes(std::move(copy)));
}

}  // namespace
}  // namespace sublet::snapshot
