// End-to-end integration: generate a world, emit every dataset dialect,
// load it back through the public API, run the full inference pipeline, and
// check the paper-shape properties that the benches report at full scale.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>

#include "leasing/abuse_analysis.h"
#include "leasing/baseline.h"
#include "leasing/dataset.h"
#include "leasing/ecosystem.h"
#include "leasing/evaluation.h"
#include "leasing/pipeline.h"
#include "simnet/builder.h"
#include "simnet/emit.h"
#include "simnet/ground_truth.h"

namespace sublet {
namespace {

namespace fs = std::filesystem;

class EndToEnd : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    // ctest runs each discovered test in its own process; the scratch dir
    // must be per-process or concurrent emit/remove_all calls race.
    dir_ = new std::string(testing::TempDir() + "/sublet_e2e." +
                           std::to_string(::getpid()));
    fs::remove_all(*dir_);
    sim::WorldConfig config;
    config.seed = 20240401;
    config.scale = 0.12;
    sim::World world = sim::build_world(config);
    sim::emit_world(world, *dir_);

    bundle_ = new leasing::DatasetBundle(leasing::load_dataset(*dir_));
    truth_ = new sim::GroundTruth(sim::GroundTruth::load(*dir_));

    graph_ = new asgraph::AsGraph(&bundle_->as_rel, &bundle_->as2org);
    leasing::Pipeline pipeline(bundle_->rib, *graph_);
    results_ = new std::vector<leasing::LeaseInference>();
    for (const whois::WhoisDb& db : bundle_->whois) {
      auto partial = pipeline.classify(db);
      results_->insert(results_->end(), partial.begin(), partial.end());
    }
  }

  static void TearDownTestSuite() {
    std::error_code ec;
    fs::remove_all(*dir_, ec);  // best effort; never throw from teardown
    delete results_;
    delete graph_;
    delete truth_;
    delete bundle_;
    delete dir_;
  }

  static std::string* dir_;
  static leasing::DatasetBundle* bundle_;
  static sim::GroundTruth* truth_;
  static asgraph::AsGraph* graph_;
  static std::vector<leasing::LeaseInference>* results_;
};

std::string* EndToEnd::dir_ = nullptr;
leasing::DatasetBundle* EndToEnd::bundle_ = nullptr;
sim::GroundTruth* EndToEnd::truth_ = nullptr;
asgraph::AsGraph* EndToEnd::graph_ = nullptr;
std::vector<leasing::LeaseInference>* EndToEnd::results_ = nullptr;

TEST_F(EndToEnd, ClassifiesEveryNonLegacyLeaf) {
  std::size_t legacy = 0;
  for (const auto& row : truth_->rows()) {
    if (row.legacy) ++legacy;
  }
  EXPECT_NEAR(static_cast<double>(results_->size() + legacy),
              static_cast<double>(truth_->rows().size()),
              truth_->rows().size() * 0.01);
}

TEST_F(EndToEnd, AgreesWithTruthOnActiveLeases) {
  // The classifier should recover nearly every *active* lease; inactive
  // leases are unreachable by design (they are not in BGP).
  std::size_t active = 0, recovered = 0;
  std::unordered_map<Prefix, bool, PrefixHash> inferred;
  for (const auto& r : *results_) inferred[r.prefix] = r.leased();
  for (const auto& row : truth_->rows()) {
    if (!row.is_leased || !row.active || row.legacy) continue;
    ++active;
    auto it = inferred.find(row.prefix);
    if (it != inferred.end() && it->second) ++recovered;
  }
  ASSERT_GT(active, 100u);
  EXPECT_GT(static_cast<double>(recovered) / active, 0.93)
      << recovered << "/" << active;
}

TEST_F(EndToEnd, LeaseVerdictsAreMostlyTrueLeases) {
  std::size_t leased = 0, correct = 0;
  for (const auto& r : *results_) {
    if (!r.leased()) continue;
    ++leased;
    const sim::TruthRow* row = truth_->find(r.prefix);
    if (row && row->is_leased) ++correct;
  }
  ASSERT_GT(leased, 100u);
  EXPECT_GT(static_cast<double>(correct) / leased, 0.9)
      << correct << "/" << leased;
}

TEST_F(EndToEnd, GroupCountsFollowTable1Shape) {
  std::vector<leasing::LeaseInference> ripe;
  for (const auto& r : *results_) {
    if (r.rir == whois::Rir::kRipe) ripe.push_back(r);
  }
  auto counts = leasing::Pipeline::count_groups(ripe);
  ASSERT_GT(counts.total(), 1000u);
  double total = static_cast<double>(counts.total());
  EXPECT_NEAR(counts.aggregated_customer / total, 0.574, 0.07);
  EXPECT_NEAR(counts.unused / total, 0.179, 0.07);
  EXPECT_NEAR(counts.leased() / total, 0.0805, 0.04);
  EXPECT_GT(counts.leased_g3, counts.leased_g4)
      << "RIPE: group-3 leases dominate group 4 (26,774 vs 1,872)";
}

TEST_F(EndToEnd, RipeHasMostLeases) {
  std::map<whois::Rir, std::size_t> leases;
  for (const auto& r : *results_) {
    if (r.leased()) ++leases[r.rir];
  }
  for (whois::Rir rir : whois::kAllRirs) {
    if (rir == whois::Rir::kRipe) continue;
    EXPECT_GT(leases[whois::Rir::kRipe], leases[rir]) << rir_name(rir);
  }
}

TEST_F(EndToEnd, BrokerEvaluationShape) {
  // Reproduce the Table 2 protocol on the emitted world: broker positives,
  // ISP negatives, confusion matrix.
  const whois::WhoisDb* ripe = bundle_->db_for(whois::Rir::kRipe);
  ASSERT_NE(ripe, nullptr);
  auto tree = whois::AllocationTree::build(*ripe);
  auto match = leasing::match_brokers(
      *ripe, bundle_->brokers.at(whois::Rir::kRipe), bundle_->rib);
  EXPECT_GT(match.direct_matches, 0u);
  EXPECT_GT(match.fuzzy_matches, 0u) << "suffix-variant spellings matched";
  EXPECT_GE(match.unmatched, 2u) << "phantom brokers stay unmatched";
  EXPECT_GT(match.prefixes.size(), 50u);

  leasing::ReferenceDataset reference;
  for (const Prefix& p : match.prefixes) reference.add(p, true);
  auto negatives = leasing::isp_negatives(
      *ripe, bundle_->eval_isp_orgs.at(whois::Rir::kRipe), tree,
      bundle_->rib);
  EXPECT_GE(negatives.size(), 10u);
  for (const Prefix& p : negatives) reference.add(p, false);

  auto matrix = leasing::evaluate(*results_, reference);
  EXPECT_GT(matrix.precision(), 0.9) << "paper: 0.98";
  EXPECT_GT(matrix.recall(), 0.7) << "paper: 0.82";
  EXPECT_LT(matrix.recall(), 0.97)
      << "inactive leases must produce false negatives";
  EXPECT_GT(matrix.fp, 0u) << "subsidiary (Vodafone-style) false positives";
}

TEST_F(EndToEnd, AbuseRatiosFollowPaper) {
  leasing::AbuseAnalysis analysis(*results_, bundle_->rib);
  auto drop_stats = analysis.prefix_overlap(bundle_->drop);
  ASSERT_GT(drop_stats.leased_total, 100u);
  ASSERT_GT(drop_stats.nonleased_total, 1000u);
  EXPECT_GT(drop_stats.risk_ratio(), 2.5)
      << "paper: leased ~5x more likely DROP-originated";

  auto hijacker_stats = analysis.originator_overlap(bundle_->hijackers);
  EXPECT_GT(hijacker_stats.leased_prefixes_by_listed, 0u);
  double hijacked_share =
      static_cast<double>(hijacker_stats.leased_prefixes_by_listed) /
      hijacker_stats.leased_prefixes_total;
  EXPECT_NEAR(hijacked_share, 0.133, 0.08);
}

TEST_F(EndToEnd, RoaAbuseShape) {
  leasing::AbuseAnalysis analysis(*results_, bundle_->rib);
  ASSERT_NE(bundle_->current_vrps(), nullptr);
  auto roa_stats = analysis.roa_overlap(*bundle_->current_vrps(),
                                        bundle_->drop);
  ASSERT_GT(roa_stats.leased_roas_total, 50u);
  double leased_listed =
      static_cast<double>(roa_stats.leased_roas_listed) /
      roa_stats.leased_roas_total;
  double nonleased_listed =
      roa_stats.nonleased_roas_total
          ? static_cast<double>(roa_stats.nonleased_roas_listed) /
                roa_stats.nonleased_roas_total
          : 0;
  EXPECT_GT(leased_listed, nonleased_listed)
      << "ROAs on leased space are more often blocklisted (§6.4)";
}

TEST_F(EndToEnd, EcosystemHeavyTails) {
  leasing::Ecosystem eco(*results_, &bundle_->as2org);
  auto ripe_holders = eco.top_holders(whois::Rir::kRipe, 3);
  ASSERT_EQ(ripe_holders.size(), 3u);
  EXPECT_GT(ripe_holders[0].count, ripe_holders[2].count);

  // AFRINIC: Cloud-Innovation-style dominance of the top holder. At this
  // scale the runner-up may have zero leases; dominance is what matters.
  auto afrinic = eco.top_holders(whois::Rir::kAfrinic, 3);
  ASSERT_GE(afrinic.size(), 1u);
  EXPECT_GT(afrinic[0].count, 10u);
  if (afrinic.size() >= 2) {
    EXPECT_GT(afrinic[0].count, afrinic[1].count * 3)
        << "paper: 2,014 vs 38 leases";
  }

  // IPXO-like facilitator tops several regions.
  auto ripe_fac = eco.top_facilitators(whois::Rir::kRipe, 1);
  ASSERT_EQ(ripe_fac.size(), 1u);
  EXPECT_EQ(ripe_fac[0].name, "ipxo-mnt");
}

TEST_F(EndToEnd, VerdictsAreConsistentWithTheirEvidence) {
  // Property: every verdict must follow the paper's step-5 decision table
  // when re-derived from the inference's own evidence fields.
  asgraph::AsGraph& graph = *graph_;
  for (const auto& r : *results_) {
    bool leaf_lit = !r.leaf_origins.empty();
    bool is_own_root = r.root_prefix == r.prefix;
    bool root_lit = !is_own_root && !r.root_origins.empty();
    bool related_holder = false, related_root_origin = false;
    for (Asn origin : r.leaf_origins) {
      if (graph.related_to_any(origin, r.holder_asns)) related_holder = true;
      if (!is_own_root && graph.related_to_any(origin, r.root_origins)) {
        related_root_origin = true;
      }
    }
    leasing::InferenceGroup expected;
    if (!leaf_lit && !root_lit) {
      expected = leasing::InferenceGroup::kUnused;
    } else if (!leaf_lit) {
      expected = leasing::InferenceGroup::kAggregatedCustomer;
    } else if (!root_lit) {
      expected = related_holder ? leasing::InferenceGroup::kIspCustomer
                                : leasing::InferenceGroup::kLeasedNoRoot;
    } else {
      expected = related_holder || related_root_origin
                     ? leasing::InferenceGroup::kDelegatedCustomer
                     : leasing::InferenceGroup::kLeasedWithRoot;
    }
    ASSERT_EQ(r.group, expected) << r.prefix.to_string();
  }
}

TEST_F(EndToEnd, BaselineComparisonShape) {
  const whois::WhoisDb* ripe = bundle_->db_for(whois::Rir::kRipe);
  auto prior = leasing::maintainer_baseline(*ripe);
  std::vector<leasing::LeaseInference> ripe_results;
  for (const auto& r : *results_) {
    if (r.rir == whois::Rir::kRipe) ripe_results.push_back(r);
  }
  auto cmp = leasing::compare_methods(ripe_results, prior);
  EXPECT_GT(cmp.both_leased, 0u);
  EXPECT_GT(cmp.baseline_only, 0u) << "baseline catches inactive leases";
  EXPECT_GT(cmp.baseline_only_unused, 0u);
  EXPECT_GT(cmp.ours_only, 0u) << "we catch direct (same-maintainer) leases";
  EXPECT_GT(cmp.neither, cmp.both_leased) << "most leaves are not leased";
}

}  // namespace
}  // namespace sublet
