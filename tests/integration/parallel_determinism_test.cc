// Whole-pipeline determinism across thread counts: the parallel execution
// layer must be a pure performance knob. Emission, dataset load, and leaf
// classification at N threads have to produce byte-identical artifacts to
// the serial path.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "asgraph/as_graph.h"
#include "leasing/dataset.h"
#include "leasing/pipeline.h"
#include "leasing/report.h"
#include "simnet/builder.h"
#include "simnet/emit.h"

namespace sublet {
namespace {

namespace fs = std::filesystem;

std::string scratch_dir(const std::string& tag) {
  return testing::TempDir() + "/sublet_par_det." + tag + "." +
         std::to_string(::getpid());
}

sim::World small_world() {
  sim::WorldConfig config;
  config.seed = 424242;
  config.scale = 0.03;
  return sim::build_world(config);
}

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Relative path -> contents for every regular file under `dir`.
std::vector<std::pair<std::string, std::string>> snapshot(
    const std::string& dir) {
  std::vector<std::pair<std::string, std::string>> files;
  for (const auto& entry : fs::recursive_directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    files.emplace_back(fs::relative(entry.path(), dir).string(),
                       read_file(entry.path()));
  }
  std::sort(files.begin(), files.end());
  return files;
}

TEST(ParallelDeterminism, EmitWorldBytesIdenticalAcrossThreadCounts) {
  sim::World world = small_world();
  std::string serial_dir = scratch_dir("emit1");
  std::string parallel_dir = scratch_dir("emit4");
  fs::remove_all(serial_dir);
  fs::remove_all(parallel_dir);

  sim::emit_world(world, serial_dir, 1);
  sim::emit_world(world, parallel_dir, 4);

  auto serial = snapshot(serial_dir);
  auto parallel = snapshot(parallel_dir);
  ASSERT_FALSE(serial.empty());
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].first, parallel[i].first);
    EXPECT_EQ(serial[i].second == parallel[i].second, true)
        << "file differs: " << serial[i].first;
  }

  std::error_code ec;
  fs::remove_all(serial_dir, ec);
  fs::remove_all(parallel_dir, ec);
}

TEST(ParallelDeterminism, ClassifyCsvByteIdenticalAcrossThreadCounts) {
  std::string dir = scratch_dir("classify");
  fs::remove_all(dir);
  sim::emit_world(small_world(), dir);

  std::string serial_csv;
  for (unsigned threads : {1u, 2u, 8u}) {
    leasing::LoadOptions load_options;
    load_options.threads = threads;
    auto bundle = leasing::load_dataset(dir, load_options);
    asgraph::AsGraph graph(&bundle.as_rel, &bundle.as2org);
    leasing::PipelineOptions options;
    options.threads = threads;
    leasing::Pipeline pipeline(bundle.rib, graph, options);

    std::vector<leasing::LeaseInference> results;
    for (const whois::WhoisDb& db : bundle.whois) {
      auto partial = pipeline.classify(db);
      results.insert(results.end(), partial.begin(), partial.end());
    }
    std::ostringstream csv;
    leasing::write_inferences_csv(csv, results);
    ASSERT_GT(csv.str().size(), 1000u) << "threads=" << threads;
    if (threads == 1) {
      serial_csv = csv.str();
    } else {
      EXPECT_EQ(csv.str() == serial_csv, true)
          << "inference CSV differs at threads=" << threads;
    }
  }

  std::error_code ec;
  fs::remove_all(dir, ec);
}

}  // namespace
}  // namespace sublet
