// Cross-seed property sweep: the full generate → emit → load → classify
// loop must uphold its invariants for any seed, not just the showcase one.
#include <gtest/gtest.h>

#include <filesystem>

#include "asgraph/as_graph.h"
#include "leasing/dataset.h"
#include "leasing/pipeline.h"
#include "simnet/builder.h"
#include "simnet/emit.h"
#include "simnet/ground_truth.h"

namespace sublet {
namespace {

class SeedSweep : public testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedSweep, PipelineInvariantsHold) {
  std::string dir =
      testing::TempDir() + "/sublet_sweep_" + std::to_string(GetParam());
  std::filesystem::remove_all(dir);
  sim::WorldConfig config;
  config.seed = GetParam();
  config.scale = 0.03;
  sim::World world = sim::build_world(config);
  sim::emit_world(world, dir);

  auto bundle = leasing::load_dataset(dir);
  auto truth = sim::GroundTruth::load(dir);
  asgraph::AsGraph graph(&bundle.as_rel, &bundle.as2org);
  leasing::Pipeline pipeline(bundle.rib, graph);

  std::size_t classified = 0, leased = 0, lease_tp = 0;
  std::size_t recovered_active = 0, active_truth = 0;
  std::unordered_map<Prefix, bool, PrefixHash> verdicts;
  for (const whois::WhoisDb& db : bundle.whois) {
    for (const auto& r : pipeline.classify(db)) {
      ++classified;
      // Invariant 1: every classified leaf exists in the ground truth (no
      // phantom prefixes invented anywhere in the stack).
      const sim::TruthRow* row = truth.find(r.prefix);
      ASSERT_NE(row, nullptr) << r.prefix.to_string();
      EXPECT_EQ(row->rir, r.rir);
      if (r.leased()) {
        ++leased;
        if (row->is_leased) ++lease_tp;
      }
      verdicts[r.prefix] = r.leased();
    }
  }
  for (const auto& row : truth.rows()) {
    if (!row.is_leased || !row.active || row.legacy) continue;
    ++active_truth;
    auto it = verdicts.find(row.prefix);
    if (it != verdicts.end() && it->second) ++recovered_active;
  }

  // Invariant 2: scale sanity — a world this size classifies thousands of
  // leaves and finds a non-trivial lease population.
  EXPECT_GT(classified, 1500u);
  ASSERT_GT(leased, 20u);
  ASSERT_GT(active_truth, 20u);

  // Invariant 3: quality floor across seeds. Tiny worlds are noisy: a
  // single unobserved stub->holder relationship edge (p_asrel_edge_dropped)
  // flips every leaf that stub originates into a false lease — the §6.1
  // "unobserved AS relationship" failure mode at its worst — so the
  // precision floor here is deliberately loose.
  EXPECT_GT(static_cast<double>(lease_tp) / static_cast<double>(leased), 0.65)
      << "lease precision vs truth";
  EXPECT_GT(static_cast<double>(recovered_active) /
                static_cast<double>(active_truth),
            0.9)
      << "active-lease recall vs truth";

  std::filesystem::remove_all(dir);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         testing::Values(101, 202, 303, 404, 505, 606));

}  // namespace
}  // namespace sublet
