#include "leasing/abuse_analysis.h"

#include <gtest/gtest.h>

#include "fixtures.h"

namespace sublet::leasing {
namespace {

using testutil::P;

LeaseInference lease(const char* prefix, std::uint32_t origin) {
  LeaseInference out;
  out.prefix = P(prefix);
  out.group = InferenceGroup::kLeasedNoRoot;
  out.leaf_origins = {Asn(origin)};
  return out;
}

struct AbuseFixture {
  std::vector<LeaseInference> inferences;
  bgp::Rib rib;
  abuse::AsnSet drop;

  AbuseFixture() {
    // 4 leased prefixes, 1 with a DROP origin.
    inferences = {lease("10.0.1.0/24", 100), lease("10.0.2.0/24", 101),
                  lease("10.0.3.0/24", 102), lease("10.0.4.0/24", 666)};
    for (const auto& inference : inferences) {
      rib.add_route(inference.prefix, inference.leaf_origins[0]);
    }
    // 6 non-leased routed prefixes, 1 with a DROP origin.
    rib.add_route(P("20.0.1.0/24"), Asn(200));
    rib.add_route(P("20.0.2.0/24"), Asn(201));
    rib.add_route(P("20.0.3.0/24"), Asn(202));
    rib.add_route(P("20.0.4.0/24"), Asn(203));
    rib.add_route(P("20.0.5.0/24"), Asn(204));
    rib.add_route(P("20.0.6.0/24"), Asn(667));
    drop.add(Asn(666));
    drop.add(Asn(667));
  }
};

TEST(AbuseAnalysis, PrefixOverlap) {
  AbuseFixture f;
  AbuseAnalysis analysis(f.inferences, f.rib);
  auto stats = analysis.prefix_overlap(f.drop);
  EXPECT_EQ(stats.leased_total, 4u);
  EXPECT_EQ(stats.leased_listed, 1u);
  EXPECT_EQ(stats.nonleased_total, 6u);
  EXPECT_EQ(stats.nonleased_listed, 1u);
  EXPECT_NEAR(stats.leased_fraction(), 0.25, 1e-9);
  EXPECT_NEAR(stats.nonleased_fraction(), 1.0 / 6, 1e-9);
  EXPECT_NEAR(stats.risk_ratio(), 1.5, 1e-9);
}

TEST(AbuseAnalysis, NonLeasedInferencesCountAsBackground) {
  AbuseFixture f;
  LeaseInference customer;
  customer.prefix = P("20.0.1.0/24");
  customer.group = InferenceGroup::kIspCustomer;
  customer.leaf_origins = {Asn(200)};
  f.inferences.push_back(customer);
  AbuseAnalysis analysis(f.inferences, f.rib);
  auto stats = analysis.prefix_overlap(f.drop);
  EXPECT_EQ(stats.leased_total, 4u) << "ISP customer is not leased";
  EXPECT_EQ(stats.nonleased_total, 6u);
}

TEST(AbuseAnalysis, OriginatorOverlap) {
  AbuseFixture f;
  // A second lease from the same abusive originator: prefix share rises,
  // originator count stays per-AS.
  f.inferences.push_back(lease("10.0.5.0/24", 666));
  f.rib.add_route(P("10.0.5.0/24"), Asn(666));
  AbuseAnalysis analysis(f.inferences, f.rib);
  auto stats = analysis.originator_overlap(f.drop);
  EXPECT_EQ(stats.originators_total, 4u);  // 100,101,102,666
  EXPECT_EQ(stats.originators_listed, 1u);
  EXPECT_EQ(stats.leased_prefixes_total, 5u);
  EXPECT_EQ(stats.leased_prefixes_by_listed, 2u);
}

TEST(AbuseAnalysis, RoaOverlap) {
  AbuseFixture f;
  rpki::VrpSet vrps;
  vrps.add({P("10.0.1.0/24"), 24, Asn(100)});   // leased, clean ROA
  vrps.add({P("10.0.4.0/24"), 24, Asn(666)});   // leased, blocklisted ROA
  vrps.add({P("20.0.1.0/24"), 24, Asn(200)});   // non-leased, clean
  AbuseAnalysis analysis(f.inferences, f.rib);
  auto stats = analysis.roa_overlap(vrps, f.drop);
  EXPECT_EQ(stats.leased_with_roa, 2u);
  EXPECT_EQ(stats.leased_roas_total, 2u);
  EXPECT_EQ(stats.leased_roas_listed, 1u);
  EXPECT_EQ(stats.nonleased_with_roa, 1u);
  EXPECT_EQ(stats.nonleased_roas_listed, 0u);
}

TEST(AbuseAnalysis, EmptyWorld) {
  std::vector<LeaseInference> none;
  bgp::Rib rib;
  AbuseAnalysis analysis(none, rib);
  abuse::AsnSet drop;
  auto stats = analysis.prefix_overlap(drop);
  EXPECT_EQ(stats.leased_total, 0u);
  EXPECT_EQ(stats.risk_ratio(), 0.0);
}

}  // namespace
}  // namespace sublet::leasing
