#include "leasing/baseline.h"

#include <gtest/gtest.h>

#include <map>

#include "fixtures.h"
#include "leasing/pipeline.h"

namespace sublet::leasing {
namespace {

using testutil::Fixture;
using testutil::P;

std::map<std::string, bool> baseline_map(const whois::WhoisDb& db) {
  std::map<std::string, bool> out;
  for (const auto& b : maintainer_baseline(db)) {
    out[b.prefix.to_string()] = b.leased;
  }
  return out;
}

TEST(Baseline, DifferentMaintainerIsLeased) {
  Fixture f;
  auto verdicts = baseline_map(f.db);
  EXPECT_TRUE(verdicts.at("213.210.33.0/24"))
      << "IPXO-MNT differs from MNT-GCICOM";
  EXPECT_TRUE(verdicts.at("198.51.3.0/24"));
}

TEST(Baseline, SameMaintainerIsNotLeased) {
  Fixture f;
  auto verdicts = baseline_map(f.db);
  EXPECT_FALSE(verdicts.at("213.210.2.0/23"));
  EXPECT_FALSE(verdicts.at("198.51.1.0/24"));
  EXPECT_FALSE(verdicts.at("203.0.5.0/24"));
}

TEST(Baseline, DetectsInactiveLeaseOursCallsUnused) {
  Fixture f;
  // A broker-maintained leaf that is NOT originated: the baseline flags it
  // (maintainer differs), our method files it under Unused — the paper's
  // §6.1 concession.
  f.db.add_block(testutil::block("198.51.7.0 - 198.51.7.255",
                                 whois::Portability::kNonPortable, "",
                                 "BROKER-MNT"));
  auto verdicts = baseline_map(f.db);
  EXPECT_TRUE(verdicts.at("198.51.7.0/24"));

  auto graph = f.graph();
  Pipeline pipeline(f.rib, graph);
  auto ours = pipeline.classify(f.db);
  auto prior = maintainer_baseline(f.db);
  auto cmp = compare_methods(ours, prior);
  EXPECT_GE(cmp.baseline_only_unused, 1u);
}

TEST(Baseline, MissesDirectLeaseUnderHolderMaintainer) {
  Fixture f;
  // Holder leases directly under its own maintainer and the lessee
  // originates: ours says leased, the baseline misses it (ours_only).
  f.db.add_block(testutil::block("198.51.9.0 - 198.51.9.255",
                                 whois::Portability::kNonPortable, "",
                                 "MNT-DARK"));
  f.rib.add_route(P("198.51.9.0/24"), Asn(55555));  // unrelated origin
  auto verdicts = baseline_map(f.db);
  EXPECT_FALSE(verdicts.at("198.51.9.0/24"));

  auto graph = f.graph();
  Pipeline pipeline(f.rib, graph);
  auto cmp = compare_methods(pipeline.classify(f.db),
                             maintainer_baseline(f.db));
  EXPECT_GE(cmp.ours_only, 1u);
}

TEST(Baseline, CompareMethodsPartition) {
  Fixture f;
  auto graph = f.graph();
  Pipeline pipeline(f.rib, graph);
  auto ours = pipeline.classify(f.db);
  auto prior = maintainer_baseline(f.db);
  auto cmp = compare_methods(ours, prior);
  EXPECT_EQ(cmp.total(), prior.size());
  EXPECT_EQ(cmp.both_leased, 2u)
      << "both flag the IPXO leaf and the 198.51.3.0/24 leaf";
}

TEST(Baseline, LeafWithNoMaintainersNotLeased) {
  whois::WhoisDb db(whois::Rir::kRipe);
  db.add_block(testutil::block("10.0.0.0 - 10.0.255.255",
                               whois::Portability::kPortable, "ORG-A",
                               "MNT-A"));
  whois::InetBlock leaf = testutil::block(
      "10.0.5.0 - 10.0.5.255", whois::Portability::kNonPortable, "", "");
  db.add_block(leaf);
  auto verdicts = baseline_map(db);
  EXPECT_FALSE(verdicts.at("10.0.5.0/24"))
      << "no maintainer data -> no lease signal";
}

}  // namespace
}  // namespace sublet::leasing
