#include "leasing/report.h"

#include <gtest/gtest.h>

#include <random>
#include <sstream>

namespace sublet::leasing {
namespace {

Prefix P(const char* s) { return *Prefix::parse(s); }

std::vector<LeaseInference> sample() {
  LeaseInference a;
  a.prefix = P("213.210.33.0/24");
  a.rir = whois::Rir::kRipe;
  a.group = InferenceGroup::kLeasedWithRoot;
  a.root_prefix = P("213.210.0.0/18");
  a.holder_org = "ORG-GCI1-RIPE";
  a.holder_asns = {Asn(8851)};
  a.leaf_origins = {Asn(15169)};
  a.root_origins = {Asn(8851)};
  a.leaf_maintainers = {"IPXO-MNT"};
  a.netname = "IPXO-LEASE";

  LeaseInference b;
  b.prefix = P("198.51.1.0/24");
  b.rir = whois::Rir::kArin;
  b.group = InferenceGroup::kUnused;
  b.root_prefix = P("198.51.0.0/16");
  b.holder_org = "EGIH";
  return {a, b};
}

TEST(Report, RoundTrip) {
  std::ostringstream out;
  write_inferences_csv(out, sample());
  std::istringstream in(out.str());
  auto loaded = read_inferences_csv(in);
  ASSERT_TRUE(loaded) << loaded.error().to_string();
  ASSERT_EQ(loaded->size(), 2u);

  const LeaseInference& a = (*loaded)[0];
  EXPECT_EQ(a.prefix.to_string(), "213.210.33.0/24");
  EXPECT_EQ(a.rir, whois::Rir::kRipe);
  EXPECT_EQ(a.group, InferenceGroup::kLeasedWithRoot);
  EXPECT_TRUE(a.leased());
  EXPECT_EQ(a.root_prefix.to_string(), "213.210.0.0/18");
  EXPECT_EQ(a.holder_asns, std::vector<Asn>{Asn(8851)});
  EXPECT_EQ(a.leaf_origins, std::vector<Asn>{Asn(15169)});
  EXPECT_EQ(a.leaf_maintainers, std::vector<std::string>{"IPXO-MNT"});
  EXPECT_EQ(a.netname, "IPXO-LEASE");

  const LeaseInference& b = (*loaded)[1];
  EXPECT_EQ(b.group, InferenceGroup::kUnused);
  EXPECT_FALSE(b.leased());
  EXPECT_TRUE(b.leaf_origins.empty());
}

TEST(Report, GroupNamesRoundTrip) {
  // kAllInferenceGroups is the exhaustive list (enforced at compile time by
  // the static_assert in leasing/types.h); iterating it means a future
  // group gets this coverage automatically instead of silently mapping to
  // "?" in the artifact.
  for (InferenceGroup group : kAllInferenceGroups) {
    EXPECT_NE(group_name(group), "?");
    auto parsed = group_from_name(group_name(group));
    ASSERT_TRUE(parsed);
    EXPECT_EQ(*parsed, group);
  }
  EXPECT_FALSE(group_from_name("not-a-group"));
  EXPECT_FALSE(group_from_name("?"));
}

TEST(Report, QuotedFieldsRoundTrip) {
  LeaseInference r;
  r.prefix = P("203.0.113.0/24");
  r.rir = whois::Rir::kApnic;
  r.group = InferenceGroup::kLeasedNoRoot;
  r.root_prefix = P("203.0.0.0/16");
  r.holder_org = "Acme, \"Networks\" Ltd";
  r.netname = "NET\nWITH\r\nBREAKS";
  std::ostringstream out;
  write_inferences_csv(out, {r});
  std::istringstream in(out.str());
  auto loaded = read_inferences_csv(in);
  ASSERT_TRUE(loaded) << loaded.error().to_string();
  ASSERT_EQ(loaded->size(), 1u);
  EXPECT_EQ((*loaded)[0].holder_org, r.holder_org);
  EXPECT_EQ((*loaded)[0].netname, r.netname);
}

TEST(Report, RandomStringsSurviveRoundTrip) {
  // Property test: any printable content in the free-text columns — commas,
  // quotes, CR/LF, separators — must survive write -> read byte-for-byte.
  std::mt19937 rng(0xC5Fu);
  const std::string alphabet =
      "abcXYZ012 ,\"\n\r;'\\|\t#-_.:/()";
  std::uniform_int_distribution<std::size_t> pick(0, alphabet.size() - 1);
  std::uniform_int_distribution<std::size_t> len(0, 24);
  auto random_string = [&] {
    std::string s(len(rng), '\0');
    for (char& c : s) c = alphabet[pick(rng)];
    return s;
  };
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<LeaseInference> records;
    for (std::uint32_t i = 0; i < 3; ++i) {
      LeaseInference r;
      r.prefix = *Prefix::make(
          Ipv4Addr((198u << 24) | (static_cast<std::uint32_t>(trial) << 10) |
                   (i << 8)),
          24);
      r.rir = whois::Rir::kRipe;
      r.group = kAllInferenceGroups[i % kAllInferenceGroups.size()];
      r.root_prefix = P("198.0.0.0/8");
      r.holder_org = random_string();
      r.netname = random_string();
      records.push_back(std::move(r));
    }
    std::ostringstream out;
    write_inferences_csv(out, records);
    std::istringstream in(out.str());
    auto loaded = read_inferences_csv(in);
    ASSERT_TRUE(loaded) << "trial " << trial << ": "
                        << loaded.error().to_string();
    ASSERT_EQ(loaded->size(), records.size()) << "trial " << trial;
    for (std::size_t i = 0; i < records.size(); ++i) {
      EXPECT_EQ((*loaded)[i].holder_org, records[i].holder_org)
          << "trial " << trial;
      EXPECT_EQ((*loaded)[i].netname, records[i].netname)
          << "trial " << trial;
    }
  }
}

TEST(Report, RejectsBadContent) {
  std::istringstream bad_group(
      "prefix,rir,group,leased,root_prefix,holder_org,holder_asns,"
      "leaf_origins,root_origins,facilitators,netname\n"
      "10.0.0.0/24,RIPE,bogus,0,,,,,,,\n");
  EXPECT_FALSE(read_inferences_csv(bad_group));

  std::istringstream short_row("10.0.0.0/24,RIPE,unused\n");
  EXPECT_FALSE(read_inferences_csv(short_row));

  std::istringstream bad_asn(
      "10.0.0.0/24,RIPE,unused,0,10.0.0.0/16,ORG,xyz,,,,\n");
  EXPECT_FALSE(read_inferences_csv(bad_asn));
}

TEST(Report, FileRoundTrip) {
  std::string path = testing::TempDir() + "/sublet_report.csv";
  save_inferences_csv(path, sample());
  auto loaded = load_inferences_csv(path);
  ASSERT_TRUE(loaded);
  EXPECT_EQ(loaded->size(), 2u);
  std::remove(path.c_str());
  EXPECT_FALSE(load_inferences_csv(path));
}

}  // namespace
}  // namespace sublet::leasing
