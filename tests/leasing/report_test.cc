#include "leasing/report.h"

#include <gtest/gtest.h>

#include <sstream>

namespace sublet::leasing {
namespace {

Prefix P(const char* s) { return *Prefix::parse(s); }

std::vector<LeaseInference> sample() {
  LeaseInference a;
  a.prefix = P("213.210.33.0/24");
  a.rir = whois::Rir::kRipe;
  a.group = InferenceGroup::kLeasedWithRoot;
  a.root_prefix = P("213.210.0.0/18");
  a.holder_org = "ORG-GCI1-RIPE";
  a.holder_asns = {Asn(8851)};
  a.leaf_origins = {Asn(15169)};
  a.root_origins = {Asn(8851)};
  a.leaf_maintainers = {"IPXO-MNT"};
  a.netname = "IPXO-LEASE";

  LeaseInference b;
  b.prefix = P("198.51.1.0/24");
  b.rir = whois::Rir::kArin;
  b.group = InferenceGroup::kUnused;
  b.root_prefix = P("198.51.0.0/16");
  b.holder_org = "EGIH";
  return {a, b};
}

TEST(Report, RoundTrip) {
  std::ostringstream out;
  write_inferences_csv(out, sample());
  std::istringstream in(out.str());
  auto loaded = read_inferences_csv(in);
  ASSERT_TRUE(loaded) << loaded.error().to_string();
  ASSERT_EQ(loaded->size(), 2u);

  const LeaseInference& a = (*loaded)[0];
  EXPECT_EQ(a.prefix.to_string(), "213.210.33.0/24");
  EXPECT_EQ(a.rir, whois::Rir::kRipe);
  EXPECT_EQ(a.group, InferenceGroup::kLeasedWithRoot);
  EXPECT_TRUE(a.leased());
  EXPECT_EQ(a.root_prefix.to_string(), "213.210.0.0/18");
  EXPECT_EQ(a.holder_asns, std::vector<Asn>{Asn(8851)});
  EXPECT_EQ(a.leaf_origins, std::vector<Asn>{Asn(15169)});
  EXPECT_EQ(a.leaf_maintainers, std::vector<std::string>{"IPXO-MNT"});
  EXPECT_EQ(a.netname, "IPXO-LEASE");

  const LeaseInference& b = (*loaded)[1];
  EXPECT_EQ(b.group, InferenceGroup::kUnused);
  EXPECT_FALSE(b.leased());
  EXPECT_TRUE(b.leaf_origins.empty());
}

TEST(Report, GroupNamesRoundTrip) {
  for (auto group :
       {InferenceGroup::kUnused, InferenceGroup::kAggregatedCustomer,
        InferenceGroup::kIspCustomer, InferenceGroup::kLeasedNoRoot,
        InferenceGroup::kDelegatedCustomer, InferenceGroup::kLeasedWithRoot}) {
    auto parsed = group_from_name(group_name(group));
    ASSERT_TRUE(parsed);
    EXPECT_EQ(*parsed, group);
  }
  EXPECT_FALSE(group_from_name("not-a-group"));
}

TEST(Report, RejectsBadContent) {
  std::istringstream bad_group(
      "prefix,rir,group,leased,root_prefix,holder_org,holder_asns,"
      "leaf_origins,root_origins,facilitators,netname\n"
      "10.0.0.0/24,RIPE,bogus,0,,,,,,,\n");
  EXPECT_FALSE(read_inferences_csv(bad_group));

  std::istringstream short_row("10.0.0.0/24,RIPE,unused\n");
  EXPECT_FALSE(read_inferences_csv(short_row));

  std::istringstream bad_asn(
      "10.0.0.0/24,RIPE,unused,0,10.0.0.0/16,ORG,xyz,,,,\n");
  EXPECT_FALSE(read_inferences_csv(bad_asn));
}

TEST(Report, FileRoundTrip) {
  std::string path = testing::TempDir() + "/sublet_report.csv";
  save_inferences_csv(path, sample());
  auto loaded = load_inferences_csv(path);
  ASSERT_TRUE(loaded);
  EXPECT_EQ(loaded->size(), 2u);
  std::remove(path.c_str());
  EXPECT_FALSE(load_inferences_csv(path));
}

}  // namespace
}  // namespace sublet::leasing
