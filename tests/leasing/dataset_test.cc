#include "leasing/dataset.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>

namespace sublet::leasing {
namespace {

namespace fs = std::filesystem;

class DatasetLoader : public testing::Test {
 protected:
  void SetUp() override {
    // Pid-suffixed: ctest runs each case as its own process, possibly in
    // parallel, and a shared directory makes sibling cases race.
    dir_ = testing::TempDir() + "/sublet_dataset_test_" +
           std::to_string(::getpid());
    fs::remove_all(dir_);
    fs::create_directories(dir_ + "/whois");
  }
  void TearDown() override { fs::remove_all(dir_); }

  void write(const std::string& rel, const std::string& content) {
    fs::create_directories(fs::path(dir_ + "/" + rel).parent_path());
    std::ofstream out(dir_ + "/" + rel);
    out << content;
  }

  std::string dir_;
};

TEST_F(DatasetLoader, MissingDirectoryThrows) {
  EXPECT_THROW(load_dataset("/nonexistent/dataset"), std::runtime_error);
}

TEST_F(DatasetLoader, EmptyWhoisDirectoryThrows) {
  EXPECT_THROW(load_dataset(dir_), std::runtime_error);
}

TEST_F(DatasetLoader, MinimalBundleLoadsWithEmptyOptionalPieces) {
  write("whois/ripe.db",
        "inetnum: 10.0.0.0 - 10.0.255.255\nstatus: ALLOCATED PA\n"
        "org: ORG-A\nmnt-by: MNT-A\n");
  auto bundle = load_dataset(dir_);
  ASSERT_EQ(bundle.whois.size(), 1u);
  EXPECT_EQ(bundle.whois[0].rir(), whois::Rir::kRipe);
  EXPECT_EQ(bundle.rib.prefix_count(), 0u);
  EXPECT_EQ(bundle.as_rel.edge_count(), 0u);
  EXPECT_EQ(bundle.drop.size(), 0u);
  EXPECT_EQ(bundle.transfers.size(), 0u);
  EXPECT_TRUE(bundle.geodbs.empty());
  EXPECT_EQ(bundle.current_vrps(), nullptr);
  EXPECT_EQ(bundle.db_for(whois::Rir::kArin), nullptr);
  EXPECT_NE(bundle.db_for(whois::Rir::kRipe), nullptr);
}

TEST_F(DatasetLoader, OptionalPiecesAreLoadedWhenPresent) {
  write("whois/arin.db",
        "NetHandle: NET-1\nNetRange: 192.0.2.0 - 192.0.2.255\n"
        "NetType: Direct Allocation\nOrgID: X\n");
  write("asgraph/as-rel.txt", "1|2|-1\n");
  write("asgraph/as2org.txt",
        "# format: aut|changed|aut_name|org_id|opaque_id|source\n"
        "1|20240401|A|ORG-1|*|SIM\n"
        "# format: org_id|changed|org_name|country|source\n"
        "ORG-1|20240401|One|US|SIM\n");
  write("lists/asn-drop.json", "{\"asn\":666}\n");
  write("lists/serial-hijackers.txt", "667\n");
  write("lists/brokers-arin.txt", "Broker One LLC\n");
  write("lists/eval-isp-orgs.txt", "ARIN|ORG-ISP\nBOGUS-LINE\nNOPE|X\n");
  write("lists/transfers.txt", "100|ARIN|192.0.2.0/24|A|B|market\n");
  write("geo/provider-0.csv", "192.0.2.0/24,US\n");
  write("rpki/vrps-100.csv", "AS1,192.0.2.0/24,24,sim\n");

  auto bundle = load_dataset(dir_);
  EXPECT_EQ(bundle.as_rel.edge_count(), 1u);
  EXPECT_EQ(bundle.as2org.mapping_count(), 1u);
  EXPECT_TRUE(bundle.drop.contains(Asn(666)));
  EXPECT_TRUE(bundle.hijackers.contains(Asn(667)));
  ASSERT_TRUE(bundle.brokers.contains(whois::Rir::kArin));
  EXPECT_EQ(bundle.brokers.at(whois::Rir::kArin).size(), 1u);
  ASSERT_TRUE(bundle.eval_isp_orgs.contains(whois::Rir::kArin));
  EXPECT_EQ(bundle.eval_isp_orgs.at(whois::Rir::kArin).size(), 1u)
      << "malformed lines skipped";
  EXPECT_EQ(bundle.transfers.size(), 1u);
  ASSERT_EQ(bundle.geodbs.size(), 1u);
  EXPECT_EQ(bundle.geodbs[0].provider(), "provider-0");
  ASSERT_NE(bundle.current_vrps(), nullptr);
  EXPECT_EQ(bundle.current_vrps()->size(), 1u);
}

TEST_F(DatasetLoader, CorruptMrtIsDiagnosedNotFatal) {
  write("whois/ripe.db",
        "inetnum: 10.0.0.0 - 10.0.255.255\nstatus: ALLOCATED PA\n");
  fs::create_directories(dir_ + "/bgp");
  {
    std::ofstream out(dir_ + "/bgp/rib.0.t0.mrt", std::ios::binary);
    out << "this is not MRT";
  }
  auto bundle = load_dataset(dir_);
  EXPECT_EQ(bundle.rib.prefix_count(), 0u);
  EXPECT_FALSE(bundle.diagnostics.empty());
}

}  // namespace
}  // namespace sublet::leasing
