// Shared hand-built world for leasing unit tests: the paper's Figure 2
// scenario plus variations covering every inference group.
#pragma once

#include "asgraph/as_graph.h"
#include "bgp/rib.h"
#include "whoisdb/model.h"

namespace sublet::leasing::testutil {

inline Prefix P(const char* s) { return *Prefix::parse(s); }

inline whois::InetBlock block(const char* range, whois::Portability port,
                              const char* org = "", const char* mnt = "",
                              const char* netname = "") {
  whois::InetBlock b;
  b.range = *AddrRange::parse(range);
  b.portability = port;
  b.org_id = org;
  if (*mnt) b.maintainers = {mnt};
  b.netname = netname;
  return b;
}

/// Figure 2 world:
///   213.210.0.0/18  portable, ORG-GCI1-RIPE (AS8851), originated by AS8851
///     213.210.2.0/23   non-portable, MNT-GCICOM, not originated
///                      -> aggregated customer
///     213.210.33.0/24  non-portable, IPXO-MNT, originated by AS15169
///                      -> LEASED (group 4: root also originated)
///   plus:
///   198.51.0.0/16   portable, ORG-DARK (AS64511), NOT originated
///     198.51.1.0/24   not originated            -> unused
///     198.51.2.0/24   originated by AS64496 (customer of AS64511)
///                                              -> ISP customer
///     198.51.3.0/24   originated by AS64500 (unrelated) -> LEASED (group 3)
///   203.0.0.0/16    portable, ORG-DELEG (AS64497), originated by AS64497
///     203.0.5.0/24    originated by AS64498 (customer of AS64497)
///                                              -> delegated customer
struct Fixture {
  whois::WhoisDb db{whois::Rir::kRipe};
  bgp::Rib rib;
  asgraph::AsRelationships rels;
  asgraph::As2Org orgs;

  Fixture() {
    // --- WHOIS ---
    db.add_block(block("213.210.0.0 - 213.210.63.255",
                       whois::Portability::kPortable, "ORG-GCI1-RIPE",
                       "MNT-GCICOM", "SE-GCI-NET"));
    db.add_block(block("213.210.2.0 - 213.210.3.255",
                       whois::Portability::kNonPortable, "", "MNT-GCICOM",
                       "GCI-CUST"));
    db.add_block(block("213.210.33.0 - 213.210.33.255",
                       whois::Portability::kNonPortable, "", "IPXO-MNT",
                       "IPXO-LEASE"));

    db.add_block(block("198.51.0.0 - 198.51.255.255",
                       whois::Portability::kPortable, "ORG-DARK",
                       "MNT-DARK"));
    db.add_block(block("198.51.1.0 - 198.51.1.255",
                       whois::Portability::kNonPortable, "", "MNT-DARK"));
    db.add_block(block("198.51.2.0 - 198.51.2.255",
                       whois::Portability::kNonPortable, "", "MNT-DARK"));
    db.add_block(block("198.51.3.0 - 198.51.3.255",
                       whois::Portability::kNonPortable, "", "BROKER-MNT"));

    db.add_block(block("203.0.0.0 - 203.0.255.255",
                       whois::Portability::kPortable, "ORG-DELEG",
                       "MNT-DELEG"));
    db.add_block(block("203.0.5.0 - 203.0.5.255",
                       whois::Portability::kNonPortable, "", "MNT-DELEG"));

    db.add_autnum({Asn(8851), "GCI-AS", "ORG-GCI1-RIPE", {"MNT-GCICOM"},
                   whois::Rir::kRipe});
    db.add_autnum({Asn(64511), "DARK-AS", "ORG-DARK", {"MNT-DARK"},
                   whois::Rir::kRipe});
    db.add_autnum({Asn(64497), "DELEG-AS", "ORG-DELEG", {"MNT-DELEG"},
                   whois::Rir::kRipe});

    db.add_org({"ORG-GCI1-RIPE", "GCI Network", {"MNT-GCICOM"}, "SE",
                whois::Rir::kRipe});
    db.add_org({"ORG-DARK", "Dark Holdings", {"MNT-DARK"}, "SE",
                whois::Rir::kRipe});
    db.add_org({"ORG-DELEG", "Deleg ISP", {"MNT-DELEG"}, "SE",
                whois::Rir::kRipe});

    // --- BGP ---
    rib.add_route(P("213.210.0.0/18"), Asn(8851));
    rib.add_route(P("213.210.33.0/24"), Asn(15169));
    rib.add_route(P("198.51.2.0/24"), Asn(64496));
    rib.add_route(P("198.51.3.0/24"), Asn(64500));
    rib.add_route(P("203.0.0.0/16"), Asn(64497));
    rib.add_route(P("203.0.5.0/24"), Asn(64498));

    // --- AS graph ---
    rels.add_p2c(Asn(64511), Asn(64496));  // dark holder -> its customer
    rels.add_p2c(Asn(64497), Asn(64498));  // deleg holder -> its customer
    rels.add_p2c(Asn(3356), Asn(8851));    // unrelated transit edges
    rels.add_p2c(Asn(3356), Asn(15169));
  }

  asgraph::AsGraph graph() const { return asgraph::AsGraph(&rels, &orgs); }
};

}  // namespace sublet::leasing::testutil
