#include "leasing/ecosystem.h"

#include <gtest/gtest.h>

#include "fixtures.h"

namespace sublet::leasing {
namespace {

using testutil::P;

LeaseInference lease(const char* prefix, whois::Rir rir, const char* holder,
                     const char* mnt, std::uint32_t origin,
                     InferenceGroup group = InferenceGroup::kLeasedNoRoot) {
  LeaseInference out;
  out.prefix = P(prefix);
  out.rir = rir;
  out.group = group;
  out.holder_org = holder;
  out.root_maintainers = {holder};  // holders maintain their own roots here
  if (*mnt) out.leaf_maintainers = {mnt};
  out.leaf_origins = {Asn(origin)};
  return out;
}

std::vector<LeaseInference> sample() {
  return {
      lease("10.0.1.0/24", whois::Rir::kRipe, "ORG-RES", "IPXO-MNT", 9009),
      lease("10.0.2.0/24", whois::Rir::kRipe, "ORG-RES", "IPXO-MNT", 9009),
      lease("10.0.3.0/24", whois::Rir::kRipe, "ORG-RES", "HEXA-MNT", 396998),
      lease("10.0.4.0/24", whois::Rir::kRipe, "ORG-CYB", "IPXO-MNT", 44477),
      lease("20.0.1.0/24", whois::Rir::kArin, "ORG-EGI", "EGI", 9009),
      // Not leased: must be ignored by the ecosystem.
      lease("30.0.1.0/24", whois::Rir::kRipe, "ORG-X", "X-MNT", 1,
            InferenceGroup::kIspCustomer),
      // Self-facilitated (Cloud-Innovation style).
      lease("40.0.1.0/24", whois::Rir::kAfrinic, "CLOUDINNOV", "CLOUDINNOV",
            328000),
  };
}

TEST(Ecosystem, CountsOnlyLeases) {
  auto inferences = sample();
  Ecosystem eco(inferences);
  EXPECT_EQ(eco.lease_count(), 6u);
}

TEST(Ecosystem, TopHoldersPerRir) {
  auto inferences = sample();
  Ecosystem eco(inferences);
  auto top = eco.top_holders(whois::Rir::kRipe, 3);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].name, "ORG-RES");
  EXPECT_EQ(top[0].count, 3u);
  EXPECT_EQ(top[1].name, "ORG-CYB");

  auto arin = eco.top_holders(whois::Rir::kArin, 3);
  ASSERT_EQ(arin.size(), 1u);
  EXPECT_EQ(arin[0].name, "ORG-EGI");
}

TEST(Ecosystem, TopFacilitators) {
  auto inferences = sample();
  Ecosystem eco(inferences);
  auto top = eco.top_facilitators(whois::Rir::kRipe, 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].name, "ipxo-mnt");
  EXPECT_EQ(top[0].count, 3u);
}

TEST(Ecosystem, TopOriginatorsGlobalWithOrgNames) {
  auto inferences = sample();
  asgraph::As2Org orgs;
  orgs.add_mapping(Asn(9009), "ORG-M247");
  orgs.add_org("ORG-M247", "M247 Europe");
  Ecosystem eco(inferences, &orgs);
  auto top = eco.top_originators(2);
  ASSERT_GE(top.size(), 1u);
  EXPECT_EQ(top[0].name, "M247 Europe");
  EXPECT_EQ(top[0].count, 3u);
}

TEST(Ecosystem, LeaseOriginatorsDeduplicated) {
  auto inferences = sample();
  Ecosystem eco(inferences);
  auto originators = eco.lease_originators();
  EXPECT_EQ(originators.size(), 4u);  // 9009, 44477, 328000, 396998
}

TEST(Ecosystem, RolesAndSelfFacilitation) {
  auto inferences = sample();
  Ecosystem eco(inferences);
  auto roles = eco.roles();
  ASSERT_EQ(roles.size(), 6u);
  std::size_t self_count = 0;
  for (const auto& role : roles) {
    if (role.self_facilitated) {
      ++self_count;
      EXPECT_EQ(role.holder, "CLOUDINNOV");
    }
  }
  EXPECT_EQ(self_count, 1u);
}

TEST(Ecosystem, DeterministicTieBreak) {
  std::vector<LeaseInference> inferences = {
      lease("10.0.1.0/24", whois::Rir::kRipe, "B-ORG", "M", 1),
      lease("10.0.2.0/24", whois::Rir::kRipe, "A-ORG", "M", 1),
  };
  Ecosystem eco(inferences);
  auto top = eco.top_holders(whois::Rir::kRipe, 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].name, "A-ORG") << "equal counts sort by name";
}

}  // namespace
}  // namespace sublet::leasing
