#include "leasing/summary.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "simnet/builder.h"
#include "simnet/emit.h"
#include "asgraph/as_graph.h"
#include "leasing/pipeline.h"

namespace sublet::leasing {
namespace {

TEST(Summary, RendersAllSections) {
  std::string dir = testing::TempDir() + "/sublet_summary_test";
  std::filesystem::remove_all(dir);
  sim::WorldConfig config;
  config.seed = 77;
  config.scale = 0.03;
  sim::emit_world(sim::build_world(config), dir);

  auto bundle = load_dataset(dir);
  asgraph::AsGraph graph(&bundle.as_rel, &bundle.as2org);
  Pipeline pipeline(bundle.rib, graph);
  std::vector<LeaseInference> results;
  for (const whois::WhoisDb& db : bundle.whois) {
    auto partial = pipeline.classify(db);
    results.insert(results.end(), partial.begin(), partial.end());
  }

  std::string report = render_summary(bundle, results);
  EXPECT_NE(report.find("Inference groups per region"), std::string::npos);
  EXPECT_NE(report.find("RIPE"), std::string::npos);
  EXPECT_NE(report.find("Leased prefixes:"), std::string::npos);
  EXPECT_NE(report.find("Leased address space:"), std::string::npos);
  EXPECT_NE(report.find("Top holders"), std::string::npos);
  EXPECT_NE(report.find("Top RIPE facilitators"), std::string::npos);
  EXPECT_NE(report.find("ipxo-mnt"), std::string::npos);
  EXPECT_NE(report.find("DROP-originated"), std::string::npos);
  std::filesystem::remove_all(dir);
}

TEST(Summary, EmptyResultsStillRender) {
  std::string dir = testing::TempDir() + "/sublet_summary_empty";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir + "/whois");
  {
    std::ofstream out(dir + "/whois/ripe.db");
    out << "inetnum: 10.0.0.0 - 10.0.255.255\nstatus: ALLOCATED PA\n";
  }
  auto bundle = load_dataset(dir);
  std::string report = render_summary(bundle, {});
  EXPECT_NE(report.find("Leased prefixes: 0"), std::string::npos);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace sublet::leasing
