#include "leasing/timeline.h"

#include <gtest/gtest.h>

namespace sublet::leasing {
namespace {

Prefix P(const char* s) { return *Prefix::parse(s); }

rpki::RpkiArchive figure3_archive() {
  // Lease to AS834, AS0 gap, lease to AS61317 — monthly snapshots.
  rpki::RpkiArchive archive;
  auto roa = [](std::uint32_t asn) {
    rpki::VrpSet set;
    set.add({*Prefix::parse("213.210.33.0/24"), 24, Asn(asn)});
    return set;
  };
  archive.add_snapshot(100, roa(834));
  archive.add_snapshot(200, roa(834));
  archive.add_snapshot(300, roa(0));
  archive.add_snapshot(400, roa(61317));
  archive.add_snapshot(500, roa(61317));
  return archive;
}

OriginHistory figure3_bgp() {
  return {
      {100, {Asn(834)}},
      {200, {Asn(834)}},
      {300, {}},          // withdrawn between leases
      {400, {Asn(61317)}},
      {500, {Asn(61317)}},
  };
}

TEST(LeaseTimeline, CollectMergesAndSorts) {
  auto events = LeaseTimeline::collect(P("213.210.33.0/24"),
                                       figure3_archive(), figure3_bgp(), 0,
                                       600);
  // 5 RPKI events + 4 BGP events (t=300 has no origin).
  ASSERT_EQ(events.size(), 9u);
  EXPECT_TRUE(std::is_sorted(events.begin(), events.end()));
  EXPECT_EQ(events.front().timestamp, 100u);
  EXPECT_EQ(events.back().timestamp, 500u);
}

TEST(LeaseTimeline, CollectRespectsWindow) {
  auto events = LeaseTimeline::collect(P("213.210.33.0/24"),
                                       figure3_archive(), figure3_bgp(), 350,
                                       450);
  for (const auto& event : events) {
    EXPECT_GE(event.timestamp, 350u);
    EXPECT_LE(event.timestamp, 450u);
  }
}

TEST(LeaseTimeline, SegmentSplitsOnAsChange) {
  auto events = LeaseTimeline::collect(P("213.210.33.0/24"),
                                       figure3_archive(), figure3_bgp(), 0,
                                       600);
  auto periods = LeaseTimeline::segment(events);
  // AS834 [100..200], AS0 [300], AS61317 [400..500].
  ASSERT_EQ(periods.size(), 3u);
  EXPECT_EQ(periods[0].asn, Asn(834));
  EXPECT_EQ(periods[0].start, 100u);
  EXPECT_EQ(periods[0].end, 200u);
  EXPECT_TRUE(periods[1].is_as0_gap());
  EXPECT_EQ(periods[2].asn, Asn(61317));
  EXPECT_EQ(periods[2].end, 500u);
}

TEST(LeaseTimeline, SegmentMaxGapClosesPeriod) {
  std::vector<TimelineEvent> events = {
      {100, TimelineEvent::Source::kBgp, Asn(5)},
      {110, TimelineEvent::Source::kBgp, Asn(5)},
      {900, TimelineEvent::Source::kBgp, Asn(5)},  // long silence
  };
  auto periods = LeaseTimeline::segment(events, /*max_gap=*/100);
  ASSERT_EQ(periods.size(), 2u);
  EXPECT_EQ(periods[0].end, 110u);
  EXPECT_EQ(periods[1].start, 900u);
}

TEST(LeaseTimeline, SegmentInterleavedSourcesSamePeriod) {
  std::vector<TimelineEvent> events = {
      {100, TimelineEvent::Source::kRpki, Asn(5)},
      {100, TimelineEvent::Source::kBgp, Asn(5)},
      {200, TimelineEvent::Source::kRpki, Asn(5)},
  };
  auto periods = LeaseTimeline::segment(events);
  ASSERT_EQ(periods.size(), 1u);
  EXPECT_EQ(periods[0].start, 100u);
  EXPECT_EQ(periods[0].end, 200u);
}

TEST(LeaseTimeline, SegmentEmpty) {
  EXPECT_TRUE(LeaseTimeline::segment({}).empty());
}

TEST(LeaseTimeline, RenderShowsAsnsAndLanes) {
  auto events = LeaseTimeline::collect(P("213.210.33.0/24"),
                                       figure3_archive(), figure3_bgp(), 0,
                                       600);
  std::string figure = LeaseTimeline::render(events, 0, 600);
  EXPECT_NE(figure.find("834"), std::string::npos);
  EXPECT_NE(figure.find("61317"), std::string::npos);
  EXPECT_NE(figure.find("0"), std::string::npos) << "AS0 row present";
  EXPECT_NE(figure.find("RPKI"), std::string::npos);
  EXPECT_NE(figure.find("BGP"), std::string::npos);
  EXPECT_NE(figure.find('#'), std::string::npos);
  EXPECT_NE(figure.find('='), std::string::npos);
}

TEST(LeaseTimeline, RenderEmptyWindow) {
  EXPECT_EQ(LeaseTimeline::render({}, 100, 100), "(empty timeline)\n");
}

}  // namespace
}  // namespace sublet::leasing
