#include "leasing/evaluation.h"

#include <gtest/gtest.h>

#include "fixtures.h"
#include "leasing/pipeline.h"

namespace sublet::leasing {
namespace {

using testutil::Fixture;
using testutil::P;

TEST(ConfusionMatrix, PaperTable2Numbers) {
  // The paper's exact Table 2 cells must reproduce its reported metrics.
  ConfusionMatrix m;
  m.tp = 7735;
  m.fn = 1743;
  m.fp = 121;
  m.tn = 5257;
  EXPECT_NEAR(m.precision(), 0.98, 0.005);
  EXPECT_NEAR(m.recall(), 0.82, 0.005);
  EXPECT_NEAR(m.specificity(), 0.98, 0.005);
  EXPECT_NEAR(m.npv(), 0.75, 0.005);
  EXPECT_NEAR(m.accuracy(), 0.88, 0.01);  // paper rounds 0.8745 up
  EXPECT_EQ(m.total(), 14856u);
}

TEST(ConfusionMatrix, EmptyIsZeroNotNan) {
  ConfusionMatrix m;
  EXPECT_EQ(m.precision(), 0.0);
  EXPECT_EQ(m.recall(), 0.0);
  EXPECT_EQ(m.accuracy(), 0.0);
}

TEST(Evaluate, CountsAllFourCells) {
  std::vector<LeaseInference> results;
  LeaseInference a;  // predicted leased
  a.prefix = P("10.0.0.0/24");
  a.group = InferenceGroup::kLeasedNoRoot;
  LeaseInference b;  // predicted non-leased
  b.prefix = P("10.0.1.0/24");
  b.group = InferenceGroup::kIspCustomer;
  LeaseInference c;  // predicted leased
  c.prefix = P("10.0.2.0/24");
  c.group = InferenceGroup::kLeasedWithRoot;
  results = {a, b, c};

  ReferenceDataset ref;
  ref.add(P("10.0.0.0/24"), true);    // TP
  ref.add(P("10.0.1.0/24"), true);    // FN
  ref.add(P("10.0.2.0/24"), false);   // FP
  ref.add(P("10.0.3.0/24"), false);   // TN (not classified at all)
  ref.add(P("10.0.4.0/24"), true);    // FN (not classified: legacy-style)

  auto m = evaluate(results, ref);
  EXPECT_EQ(m.tp, 1u);
  EXPECT_EQ(m.fn, 2u);
  EXPECT_EQ(m.fp, 1u);
  EXPECT_EQ(m.tn, 1u);
  EXPECT_EQ(ref.positives(), 3u);
  EXPECT_EQ(ref.negatives(), 2u);
}

TEST(MatchBrokers, FindsOrgsByExactAndNormalizedName) {
  Fixture f;
  f.db.add_org({"ORG-IPXO", "IPXO LLC", {"IPXO-MNT"}, "LT",
                whois::Rir::kRipe});
  auto tree = whois::AllocationTree::build(f.db);
  // Broker list spells the name differently (paper §6.2 suffix variants).
  auto match = match_brokers(f.db, {"IPXO, L.L.C.", "Missing Broker Ltd"},
                             f.rib);
  EXPECT_EQ(match.direct_matches, 0u);
  EXPECT_EQ(match.fuzzy_matches, 1u);
  EXPECT_EQ(match.unmatched, 1u);
  ASSERT_EQ(match.matched_org_ids.size(), 1u);
  EXPECT_EQ(match.matched_org_ids[0], "ORG-IPXO");
  ASSERT_EQ(match.maintainers.size(), 1u);
  EXPECT_EQ(match.maintainers[0], "ipxo-mnt");
  // The IPXO-maintained leaf from the fixture is collected.
  ASSERT_EQ(match.prefixes.size(), 1u);
  EXPECT_EQ(match.prefixes[0].to_string(), "213.210.33.0/24");
}

TEST(MatchBrokers, ExactNameIsDirectMatch) {
  Fixture f;
  f.db.add_org({"ORG-IPXO", "IPXO LLC", {"IPXO-MNT"}, "LT",
                whois::Rir::kRipe});
  auto tree = whois::AllocationTree::build(f.db);
  auto match = match_brokers(f.db, {"ipxo llc"}, f.rib);
  EXPECT_EQ(match.direct_matches, 1u);
  EXPECT_EQ(match.fuzzy_matches, 0u);
}

TEST(MatchBrokers, BrokerAsIspBlocksFiltered) {
  Fixture f;
  // The broker also runs an ISP: its org owns AS64500, which originates
  // the 198.51.3.0/24 leaf it maintains -> filtered out.
  f.db.add_org({"ORG-BRK", "Broker and ISP", {"BROKER-MNT"}, "SE",
                whois::Rir::kRipe});
  f.db.add_autnum({Asn(64500), "BRK-AS", "ORG-BRK", {"BROKER-MNT"},
                   whois::Rir::kRipe});
  auto tree = whois::AllocationTree::build(f.db);
  auto match = match_brokers(f.db, {"Broker and ISP"}, f.rib);
  EXPECT_EQ(match.filtered_not_leased, 1u);
  EXPECT_TRUE(match.prefixes.empty());
}

TEST(IspNegatives, OwnOriginatedBlocksOnly) {
  Fixture f;
  auto tree = whois::AllocationTree::build(f.db);
  // ORG-DELEG's own block 203.0.0.0/16 is originated by its AS64497 — but
  // it's a root, not a leaf with a distinct suballocation... its leaf
  // 203.0.5.0/24 belongs to org "" so doesn't qualify. Register a leaf
  // under the org to exercise the path.
  whois::InetBlock leaf = testutil::block(
      "203.0.9.0 - 203.0.9.255", whois::Portability::kNonPortable,
      "ORG-DELEG", "MNT-DELEG");
  f.db.add_block(leaf);
  f.rib.add_route(P("203.0.9.0/24"), Asn(64497));
  auto tree2 = whois::AllocationTree::build(f.db);
  auto negatives = isp_negatives(f.db, {"ORG-DELEG"}, tree2, f.rib);
  ASSERT_EQ(negatives.size(), 1u);
  EXPECT_EQ(negatives[0].to_string(), "203.0.9.0/24");
}

TEST(IspNegatives, ForeignOriginExcluded) {
  Fixture f;
  whois::InetBlock leaf = testutil::block(
      "203.0.9.0 - 203.0.9.255", whois::Portability::kNonPortable,
      "ORG-DELEG", "MNT-DELEG");
  f.db.add_block(leaf);
  f.rib.add_route(P("203.0.9.0/24"), Asn(99999));  // not the ISP's AS
  auto tree = whois::AllocationTree::build(f.db);
  EXPECT_TRUE(isp_negatives(f.db, {"ORG-DELEG"}, tree, f.rib).empty());
}

TEST(EndToEnd, Figure2WorldEvaluatesCleanly) {
  Fixture f;
  f.db.add_org({"ORG-IPXO", "IPXO LLC", {"IPXO-MNT"}, "LT",
                whois::Rir::kRipe});
  auto graph = f.graph();
  Pipeline pipeline(f.rib, graph);
  auto results = pipeline.classify(f.db);

  auto tree = whois::AllocationTree::build(f.db);
  auto match = match_brokers(f.db, {"IPXO LLC"}, f.rib);
  ReferenceDataset ref;
  for (const Prefix& p : match.prefixes) ref.add(p, true);
  auto m = evaluate(results, ref);
  EXPECT_EQ(m.tp, 1u);
  EXPECT_EQ(m.fn, 0u);
  EXPECT_EQ(m.precision(), 1.0);
}

}  // namespace
}  // namespace sublet::leasing
