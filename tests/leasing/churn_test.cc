#include "leasing/churn.h"

#include <gtest/gtest.h>

namespace sublet::leasing {
namespace {

Prefix P(const char* s) { return *Prefix::parse(s); }

LeaseInference entry(const char* prefix, bool leased, std::uint32_t origin) {
  LeaseInference out;
  out.prefix = P(prefix);
  out.group = leased ? InferenceGroup::kLeasedNoRoot
                     : InferenceGroup::kIspCustomer;
  if (origin) out.leaf_origins = {Asn(origin)};
  return out;
}

TEST(Churn, AllTransitionKinds) {
  std::vector<LeaseInference> before = {
      entry("10.0.1.0/24", true, 100),   // stays identical -> stable
      entry("10.0.2.0/24", true, 100),   // re-leased to 200 -> changed
      entry("10.0.3.0/24", true, 100),   // becomes non-leased -> ended
      entry("10.0.4.0/24", false, 50),   // non-lease both -> ignored
      entry("10.0.5.0/24", true, 100),   // vanishes entirely -> ended
  };
  std::vector<LeaseInference> after = {
      entry("10.0.1.0/24", true, 100),
      entry("10.0.2.0/24", true, 200),
      entry("10.0.3.0/24", false, 0),
      entry("10.0.4.0/24", false, 50),
      entry("10.0.6.0/24", true, 300),   // new lease -> started
  };
  auto churn = diff_inferences(before, after);
  EXPECT_EQ(churn.stable, std::vector<Prefix>{P("10.0.1.0/24")});
  EXPECT_EQ(churn.lessee_changed, std::vector<Prefix>{P("10.0.2.0/24")});
  EXPECT_EQ(churn.ended,
            (std::vector<Prefix>{P("10.0.3.0/24"), P("10.0.5.0/24")}));
  EXPECT_EQ(churn.started, std::vector<Prefix>{P("10.0.6.0/24")});
  EXPECT_EQ(churn.total_before(), 4u);
  EXPECT_EQ(churn.total_after(), 3u);
  EXPECT_NEAR(churn.churn_rate(), 3.0 / 4.0, 1e-9);
}

TEST(Churn, EmptyRuns) {
  auto churn = diff_inferences({}, {});
  EXPECT_EQ(churn.total_before(), 0u);
  EXPECT_EQ(churn.churn_rate(), 0.0);
}

TEST(Churn, IdenticalRunsAreStable) {
  std::vector<LeaseInference> run = {entry("10.0.1.0/24", true, 1),
                                     entry("10.0.2.0/24", true, 2)};
  auto churn = diff_inferences(run, run);
  EXPECT_EQ(churn.stable.size(), 2u);
  EXPECT_EQ(churn.churn_rate(), 0.0);
}

}  // namespace
}  // namespace sublet::leasing
