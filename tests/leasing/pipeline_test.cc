#include "leasing/pipeline.h"

#include <gtest/gtest.h>

#include <map>

#include "fixtures.h"

namespace sublet::leasing {
namespace {

using testutil::Fixture;
using testutil::P;

std::map<std::string, InferenceGroup> classify_map(const Fixture& f,
                                                   PipelineOptions opts = {}) {
  auto graph = f.graph();
  Pipeline pipeline(f.rib, graph, opts);
  std::map<std::string, InferenceGroup> out;
  for (const auto& inference : pipeline.classify(f.db)) {
    out[inference.prefix.to_string()] = inference.group;
  }
  return out;
}

TEST(Pipeline, Figure2LeasedPrefix) {
  Fixture f;
  auto groups = classify_map(f);
  // Root and leaf both originated, leaf origin AS15169 unrelated to holder
  // AS8851 -> leased group 4 (the paper's bold orange rectangle).
  EXPECT_EQ(groups.at("213.210.33.0/24"), InferenceGroup::kLeasedWithRoot);
}

TEST(Pipeline, AggregatedCustomer) {
  Fixture f;
  auto groups = classify_map(f);
  EXPECT_EQ(groups.at("213.210.2.0/23"), InferenceGroup::kAggregatedCustomer);
}

TEST(Pipeline, UnusedLeaf) {
  Fixture f;
  auto groups = classify_map(f);
  EXPECT_EQ(groups.at("198.51.1.0/24"), InferenceGroup::kUnused);
}

TEST(Pipeline, IspCustomerViaRelationship) {
  Fixture f;
  auto groups = classify_map(f);
  EXPECT_EQ(groups.at("198.51.2.0/24"), InferenceGroup::kIspCustomer);
}

TEST(Pipeline, LeasedGroup3) {
  Fixture f;
  auto groups = classify_map(f);
  EXPECT_EQ(groups.at("198.51.3.0/24"), InferenceGroup::kLeasedNoRoot);
}

TEST(Pipeline, DelegatedCustomer) {
  Fixture f;
  auto groups = classify_map(f);
  EXPECT_EQ(groups.at("203.0.5.0/24"), InferenceGroup::kDelegatedCustomer);
}

TEST(Pipeline, PortableOnlyRootsAreNotCandidates) {
  Fixture f;
  auto groups = classify_map(f);
  // 198.51.0.0/16's structural leaf set excludes portable root-leaves; the
  // classified set contains only the six non-portable leaves.
  EXPECT_EQ(groups.size(), 6u);
  EXPECT_FALSE(groups.contains("198.51.0.0/16"));
}

TEST(Pipeline, SiblingOriginMakesDelegatedCustomer) {
  Fixture f;
  // Make the Figure-2 "lease" origin a sibling of the holder: the verdict
  // must flip to delegated customer (this is the Vodafone FP mechanism in
  // reverse).
  f.orgs.add_mapping(Asn(15169), "ORG-SAME");
  f.orgs.add_mapping(Asn(8851), "ORG-SAME");
  auto groups = classify_map(f);
  EXPECT_EQ(groups.at("213.210.33.0/24"), InferenceGroup::kDelegatedCustomer);
}

TEST(Pipeline, RootOriginRelatednessAlsoCountsInGroup4) {
  Fixture f;
  // Origin related to the root's BGP origin (not its registered ASN):
  // still a delegated customer per step 5 rule 4.
  f.rels.add_p2c(Asn(8851), Asn(15169));
  auto groups = classify_map(f);
  EXPECT_EQ(groups.at("213.210.33.0/24"), InferenceGroup::kDelegatedCustomer);
}

TEST(Pipeline, RootCoveringFallbackFindsAggregate) {
  Fixture f;
  // Remove the exact root route; announce a covering /14 instead
  // (consecutive portable blocks aggregated by the holder).
  bgp::Rib rib2;
  rib2.add_route(P("213.208.0.0/14"), Asn(8851));
  rib2.add_route(P("213.210.33.0/24"), Asn(15169));
  auto graph = f.graph();
  Pipeline with_fallback(rib2, graph, {});
  auto results = with_fallback.classify(f.db);
  std::map<std::string, InferenceGroup> groups;
  for (const auto& r : results) groups[r.prefix.to_string()] = r.group;
  EXPECT_EQ(groups.at("213.210.33.0/24"), InferenceGroup::kLeasedWithRoot)
      << "root counted as originated through the covering /14";
  EXPECT_EQ(groups.at("213.210.2.0/23"), InferenceGroup::kAggregatedCustomer);

  Pipeline no_fallback(rib2, graph, {.root_covering_fallback = false});
  auto results2 = no_fallback.classify(f.db);
  std::map<std::string, InferenceGroup> groups2;
  for (const auto& r : results2) groups2[r.prefix.to_string()] = r.group;
  EXPECT_EQ(groups2.at("213.210.33.0/24"), InferenceGroup::kLeasedNoRoot)
      << "without the fallback the root looks dark (group 3)";
  EXPECT_EQ(groups2.at("213.210.2.0/23"), InferenceGroup::kUnused);
}

TEST(Pipeline, EvidenceFieldsPopulated) {
  Fixture f;
  auto graph = f.graph();
  Pipeline pipeline(f.rib, graph);
  for (const auto& r : pipeline.classify(f.db)) {
    if (r.prefix.to_string() != "213.210.33.0/24") continue;
    EXPECT_EQ(r.root_prefix.to_string(), "213.210.0.0/18");
    EXPECT_EQ(r.holder_org, "ORG-GCI1-RIPE");
    EXPECT_EQ(r.holder_asns, std::vector<Asn>{Asn(8851)});
    EXPECT_EQ(r.leaf_origins, std::vector<Asn>{Asn(15169)});
    EXPECT_EQ(r.root_origins, std::vector<Asn>{Asn(8851)});
    ASSERT_EQ(r.leaf_maintainers.size(), 1u);
    EXPECT_EQ(r.leaf_maintainers[0], "IPXO-MNT");
    EXPECT_TRUE(r.leased());
    return;
  }
  FAIL() << "leased prefix not classified";
}

TEST(Pipeline, CountGroups) {
  Fixture f;
  auto graph = f.graph();
  Pipeline pipeline(f.rib, graph);
  auto counts = Pipeline::count_groups(pipeline.classify(f.db));
  EXPECT_EQ(counts.unused, 1u);
  EXPECT_EQ(counts.aggregated_customer, 1u);
  EXPECT_EQ(counts.isp_customer, 1u);
  EXPECT_EQ(counts.leased_g3, 1u);
  EXPECT_EQ(counts.delegated_customer, 1u);
  EXPECT_EQ(counts.leased_g4, 1u);
  EXPECT_EQ(counts.leased(), 2u);
  EXPECT_EQ(counts.total(), 6u);
}

TEST(Pipeline, ExplainNarratesFigure2) {
  Fixture f;
  auto graph = f.graph();
  Pipeline pipeline(f.rib, graph);
  std::string text = pipeline.explain(P("213.210.33.0/24"), f.db);
  EXPECT_NE(text.find("IPXO-MNT"), std::string::npos);
  EXPECT_NE(text.find("ORG-GCI1-RIPE"), std::string::npos);
  EXPECT_NE(text.find("AS8851"), std::string::npos);
  EXPECT_NE(text.find("AS15169"), std::string::npos);
  EXPECT_NE(text.find("LEASED"), std::string::npos);
  EXPECT_NE(text.find("group 4"), std::string::npos);
}

TEST(Pipeline, ExplainUnknownPrefix) {
  Fixture f;
  auto graph = f.graph();
  Pipeline pipeline(f.rib, graph);
  std::string text = pipeline.explain(P("8.8.8.0/24"), f.db);
  EXPECT_NE(text.find("not present"), std::string::npos);
}

TEST(Pipeline, MoasLeafLeasedOnlyIfNoOriginRelated) {
  Fixture f;
  // The leased leaf gains a second origin that IS related to the holder:
  // any related origin is enough to clear the lease verdict (conservative,
  // matches the paper's multi-homing discussion in §7).
  f.rib.add_route(P("213.210.33.0/24"), Asn(8851));
  auto groups = classify_map(f);
  EXPECT_EQ(groups.at("213.210.33.0/24"), InferenceGroup::kDelegatedCustomer);
}

TEST(GroupMeta, NamesAndNumbers) {
  EXPECT_EQ(group_number(InferenceGroup::kUnused), 1);
  EXPECT_EQ(group_number(InferenceGroup::kAggregatedCustomer), 2);
  EXPECT_EQ(group_number(InferenceGroup::kIspCustomer), 3);
  EXPECT_EQ(group_number(InferenceGroup::kLeasedNoRoot), 3);
  EXPECT_EQ(group_number(InferenceGroup::kDelegatedCustomer), 4);
  EXPECT_EQ(group_number(InferenceGroup::kLeasedWithRoot), 4);
  EXPECT_TRUE(is_leased(InferenceGroup::kLeasedNoRoot));
  EXPECT_TRUE(is_leased(InferenceGroup::kLeasedWithRoot));
  EXPECT_FALSE(is_leased(InferenceGroup::kIspCustomer));
  EXPECT_EQ(group_name(InferenceGroup::kLeasedNoRoot), "leased(g3)");
}

}  // namespace
}  // namespace sublet::leasing
