#include "asgraph/infer.h"

#include <gtest/gtest.h>

namespace sublet::asgraph {
namespace {

TEST(Infer, SimpleHierarchy) {
  // Tier1 (high degree) in the middle of many paths.
  std::vector<std::vector<Asn>> paths = {
      {Asn(10), Asn(1), Asn(20)},
      {Asn(11), Asn(1), Asn(21)},
      {Asn(12), Asn(1), Asn(22)},
      {Asn(13), Asn(1), Asn(20)},
  };
  auto rels = infer_relationships(paths);
  // AS1 has degree 7, everyone else 1: AS1 is the top of each path and
  // should be the provider on every edge.
  EXPECT_EQ(rels.rel(Asn(1), Asn(10)), Relationship::kProvider);
  EXPECT_EQ(rels.rel(Asn(1), Asn(20)), Relationship::kProvider);
  EXPECT_EQ(rels.rel(Asn(22), Asn(1)), Relationship::kCustomer);
}

TEST(Infer, PrependingCollapsed) {
  std::vector<std::vector<Asn>> paths = {
      {Asn(10), Asn(1), Asn(1), Asn(1), Asn(20)},
      {Asn(11), Asn(1), Asn(21)},
      {Asn(12), Asn(1), Asn(22)},
  };
  auto rels = infer_relationships(paths);
  EXPECT_EQ(rels.rel(Asn(1), Asn(20)), Relationship::kProvider);
  EXPECT_EQ(rels.rel(Asn(1), Asn(1)), Relationship::kNone);
}

TEST(Infer, ChainBelowTop) {
  // Collector peer -> tier1 -> regional -> stub: downhill after the top.
  std::vector<std::vector<Asn>> paths = {
      {Asn(50), Asn(1), Asn(30), Asn(40)},
      {Asn(51), Asn(1), Asn(31)},
      {Asn(52), Asn(1), Asn(30), Asn(41)},
      {Asn(53), Asn(1), Asn(32)},
  };
  auto rels = infer_relationships(paths);
  EXPECT_EQ(rels.rel(Asn(1), Asn(30)), Relationship::kProvider);
  EXPECT_EQ(rels.rel(Asn(30), Asn(40)), Relationship::kProvider);
  EXPECT_EQ(rels.rel(Asn(30), Asn(41)), Relationship::kProvider);
}

TEST(Infer, MiddleAsIsProviderOfBothEnds) {
  std::vector<std::vector<Asn>> paths = {
      {Asn(1), Asn(2), Asn(3)},
      {Asn(3), Asn(2), Asn(1)},
  };
  // AS2 has degree 2, the ends degree 1: AS2 tops both paths and provides
  // transit in both directions.
  auto rels = infer_relationships(paths);
  EXPECT_EQ(rels.rel(Asn(2), Asn(1)), Relationship::kProvider);
  EXPECT_EQ(rels.rel(Asn(2), Asn(3)), Relationship::kProvider);
}

TEST(Infer, ConflictingVotesBecomePeers) {
  // Equal-degree pair observed in both orders: the orientation votes
  // cancel and the edge falls back to peer.
  std::vector<std::vector<Asn>> paths = {
      {Asn(1), Asn(2)},
      {Asn(2), Asn(1)},
  };
  auto rels = infer_relationships(paths);
  EXPECT_EQ(rels.rel(Asn(1), Asn(2)), Relationship::kPeer);
}

TEST(Infer, EmptyAndSingletonPaths) {
  std::vector<std::vector<Asn>> paths = {{}, {Asn(1)}, {Asn(2), Asn(2)}};
  auto rels = infer_relationships(paths);
  EXPECT_EQ(rels.edge_count(), 0u);
}

TEST(Infer, AgreesWithTruthOnTree) {
  // Build a 2-level tree: AS1 -> {AS10, AS11}, AS10 -> {AS100, AS101},
  // AS11 -> {AS110}. Emit collector paths from a peer attached to AS1.
  std::vector<std::vector<Asn>> paths;
  auto emit = [&](std::vector<Asn> p) { paths.push_back(std::move(p)); };
  emit({Asn(9), Asn(1), Asn(10)});
  emit({Asn(9), Asn(1), Asn(10), Asn(100)});
  emit({Asn(9), Asn(1), Asn(10), Asn(101)});
  emit({Asn(9), Asn(1), Asn(11)});
  emit({Asn(9), Asn(1), Asn(11), Asn(110)});
  auto rels = infer_relationships(paths);
  EXPECT_EQ(rels.rel(Asn(1), Asn(10)), Relationship::kProvider);
  EXPECT_EQ(rels.rel(Asn(1), Asn(11)), Relationship::kProvider);
  EXPECT_EQ(rels.rel(Asn(10), Asn(100)), Relationship::kProvider);
  EXPECT_EQ(rels.rel(Asn(10), Asn(101)), Relationship::kProvider);
  EXPECT_EQ(rels.rel(Asn(11), Asn(110)), Relationship::kProvider);
}

}  // namespace
}  // namespace sublet::asgraph
