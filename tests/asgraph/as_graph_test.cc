#include "asgraph/as_graph.h"

#include <gtest/gtest.h>

#include <vector>

namespace sublet::asgraph {
namespace {

struct Fixture {
  AsRelationships rels;
  As2Org orgs;

  Fixture() {
    rels.add_p2c(Asn(3356), Asn(8851));  // provider-customer
    rels.add_p2p(Asn(3356), Asn(174));
    orgs.add_mapping(Asn(100), "ORG-VOD");
    orgs.add_mapping(Asn(200), "ORG-VOD");  // siblings
    orgs.add_mapping(Asn(300), "ORG-X");
  }
};

TEST(AsGraph, SelfIsRelated) {
  Fixture f;
  AsGraph graph(&f.rels, &f.orgs);
  EXPECT_TRUE(graph.related(Asn(42), Asn(42)));
}

TEST(AsGraph, DirectEdgesAreRelated) {
  Fixture f;
  AsGraph graph(&f.rels, &f.orgs);
  EXPECT_TRUE(graph.related(Asn(3356), Asn(8851)));
  EXPECT_TRUE(graph.related(Asn(8851), Asn(3356)));
  EXPECT_TRUE(graph.related(Asn(174), Asn(3356)));
  EXPECT_FALSE(graph.related(Asn(8851), Asn(174)))
      << "relatedness is direct only, not transitive";
}

TEST(AsGraph, SiblingsAreRelated) {
  Fixture f;
  AsGraph graph(&f.rels, &f.orgs);
  EXPECT_TRUE(graph.related(Asn(100), Asn(200)));
  EXPECT_FALSE(graph.related(Asn(100), Asn(300)));
}

TEST(AsGraph, SiblingKnowledgeCanBeAblated) {
  Fixture f;
  AsGraph graph(&f.rels, &f.orgs, {.use_siblings = false});
  EXPECT_FALSE(graph.related(Asn(100), Asn(200)))
      << "A2 ablation: uncaptured subsidiaries look unrelated (Vodafone FPs)";
  EXPECT_TRUE(graph.related(Asn(3356), Asn(8851)));
}

TEST(AsGraph, RelationshipKnowledgeCanBeAblated) {
  Fixture f;
  AsGraph graph(&f.rels, &f.orgs, {.use_relationships = false});
  EXPECT_FALSE(graph.related(Asn(3356), Asn(8851)));
  EXPECT_TRUE(graph.related(Asn(100), Asn(200)));
}

TEST(AsGraph, NullDatasetsAreSafe) {
  AsGraph graph(nullptr, nullptr);
  EXPECT_TRUE(graph.related(Asn(1), Asn(1)));
  EXPECT_FALSE(graph.related(Asn(1), Asn(2)));
}

TEST(AsGraph, RelatedToAny) {
  Fixture f;
  AsGraph graph(&f.rels, &f.orgs);
  std::vector<Asn> holder_asns = {Asn(3356), Asn(999)};
  EXPECT_TRUE(graph.related_to_any(Asn(8851), holder_asns));
  EXPECT_FALSE(graph.related_to_any(Asn(12345), holder_asns));
  EXPECT_FALSE(graph.related_to_any(Asn(8851), std::vector<Asn>{}));
}

}  // namespace
}  // namespace sublet::asgraph
