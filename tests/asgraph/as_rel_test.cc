#include "asgraph/as_rel.h"

#include <gtest/gtest.h>

#include <sstream>

namespace sublet::asgraph {
namespace {

TEST(AsRel, DirectionalQueries) {
  AsRelationships rels;
  rels.add_p2c(Asn(3356), Asn(8851));
  rels.add_p2p(Asn(3356), Asn(174));

  EXPECT_EQ(rels.rel(Asn(3356), Asn(8851)), Relationship::kProvider);
  EXPECT_EQ(rels.rel(Asn(8851), Asn(3356)), Relationship::kCustomer);
  EXPECT_EQ(rels.rel(Asn(3356), Asn(174)), Relationship::kPeer);
  EXPECT_EQ(rels.rel(Asn(174), Asn(3356)), Relationship::kPeer);
  EXPECT_EQ(rels.rel(Asn(8851), Asn(174)), Relationship::kNone);
}

TEST(AsRel, HasEdgeEitherDirection) {
  AsRelationships rels;
  rels.add_p2c(Asn(1), Asn(2));
  EXPECT_TRUE(rels.has_edge(Asn(1), Asn(2)));
  EXPECT_TRUE(rels.has_edge(Asn(2), Asn(1)));
  EXPECT_FALSE(rels.has_edge(Asn(1), Asn(3)));
}

TEST(AsRel, NeighborLists) {
  AsRelationships rels;
  rels.add_p2c(Asn(10), Asn(20));
  rels.add_p2c(Asn(10), Asn(30));
  rels.add_p2c(Asn(5), Asn(10));
  rels.add_p2p(Asn(10), Asn(11));

  auto customers = rels.customers_of(Asn(10));
  EXPECT_EQ(customers.size(), 2u);
  auto providers = rels.providers_of(Asn(10));
  ASSERT_EQ(providers.size(), 1u);
  EXPECT_EQ(providers[0], Asn(5));
  auto peers = rels.peers_of(Asn(10));
  ASSERT_EQ(peers.size(), 1u);
  EXPECT_EQ(peers[0], Asn(11));
  EXPECT_EQ(rels.degree(Asn(10)), 4u);
  EXPECT_EQ(rels.degree(Asn(999)), 0u);
}

TEST(AsRel, SelfEdgeAndDuplicateIgnored) {
  AsRelationships rels;
  rels.add_p2c(Asn(1), Asn(1));
  EXPECT_EQ(rels.edge_count(), 0u);
  rels.add_p2c(Asn(1), Asn(2));
  rels.add_p2c(Asn(1), Asn(2));
  EXPECT_EQ(rels.degree(Asn(1)), 1u);
  // A conflicting re-add does not overwrite the first orientation.
  rels.add_p2c(Asn(2), Asn(1));
  EXPECT_EQ(rels.rel(Asn(1), Asn(2)), Relationship::kProvider);
}

TEST(AsRel, ParseSerial1) {
  std::istringstream in(
      "# CAIDA-style header\n"
      "3356|8851|-1\n"
      "3356|174|0\n"
      "bogus line\n"
      "1|2|7\n");
  std::vector<Error> diags;
  auto rels = AsRelationships::parse(in, "test", &diags);
  EXPECT_EQ(rels.rel(Asn(3356), Asn(8851)), Relationship::kProvider);
  EXPECT_EQ(rels.rel(Asn(174), Asn(3356)), Relationship::kPeer);
  EXPECT_EQ(diags.size(), 2u);
}

TEST(AsRel, WriteParseRoundTrip) {
  AsRelationships rels;
  rels.add_p2c(Asn(3356), Asn(8851));
  rels.add_p2c(Asn(174), Asn(8851));
  rels.add_p2p(Asn(3356), Asn(174));

  std::ostringstream out;
  rels.write(out);
  std::istringstream in(out.str());
  auto loaded = AsRelationships::parse(in);
  EXPECT_EQ(loaded.rel(Asn(3356), Asn(8851)), Relationship::kProvider);
  EXPECT_EQ(loaded.rel(Asn(8851), Asn(174)), Relationship::kCustomer);
  EXPECT_EQ(loaded.rel(Asn(174), Asn(3356)), Relationship::kPeer);
}

TEST(AsRel, LoadMissingThrows) {
  EXPECT_THROW(AsRelationships::load("/nonexistent/rel.txt"),
               std::runtime_error);
}

}  // namespace
}  // namespace sublet::asgraph
