#include "asgraph/as2org.h"

#include <gtest/gtest.h>

#include <sstream>

namespace sublet::asgraph {
namespace {

TEST(As2Org, MappingAndSiblings) {
  As2Org orgs;
  orgs.add_mapping(Asn(100), "ORG-VOD", "VODAFONE-DE");
  orgs.add_mapping(Asn(200), "ORG-VOD", "VODAFONE-UK");
  orgs.add_mapping(Asn(300), "ORG-OTHER");
  orgs.add_org("ORG-VOD", "Vodafone Group", "GB");

  EXPECT_EQ(orgs.org_of(Asn(100)), "ORG-VOD");
  EXPECT_TRUE(orgs.siblings(Asn(100), Asn(200)));
  EXPECT_FALSE(orgs.siblings(Asn(100), Asn(300)));
  EXPECT_FALSE(orgs.siblings(Asn(999), Asn(998)))
      << "unmapped ASes are never siblings";
  EXPECT_EQ(orgs.org_name("ORG-VOD"), "Vodafone Group");
  EXPECT_EQ(orgs.org_name("ORG-UNKNOWN"), "ORG-UNKNOWN")
      << "falls back to the handle";
}

TEST(As2Org, AsnsOfOrg) {
  As2Org orgs;
  orgs.add_mapping(Asn(1), "A");
  orgs.add_mapping(Asn(2), "A");
  orgs.add_mapping(Asn(3), "B");
  EXPECT_EQ(orgs.asns_of_org("A").size(), 2u);
  EXPECT_TRUE(orgs.asns_of_org("C").empty());
}

TEST(As2Org, ParseCaidaFlatFormat) {
  std::istringstream in(
      "# format: aut|changed|aut_name|org_id|opaque_id|source\n"
      "8851|20240401|GCI-AS|ORG-GCI|*|SIM\n"
      "15169|20240401|GOOGLE|ORG-GOOG|*|SIM\n"
      "# format: org_id|changed|org_name|country|source\n"
      "ORG-GCI|20240401|GCI Network|SE|SIM\n"
      "ORG-GOOG|20240401|Google LLC|US|SIM\n");
  auto orgs = As2Org::parse(in);
  EXPECT_EQ(orgs.mapping_count(), 2u);
  EXPECT_EQ(orgs.org_of(Asn(8851)), "ORG-GCI");
  EXPECT_EQ(orgs.org_name("ORG-GOOG"), "Google LLC");
}

TEST(As2Org, LinesOutsideSectionDiagnosed) {
  std::istringstream in("8851|20240401|X|ORG|*|SIM\n");
  std::vector<Error> diags;
  auto orgs = As2Org::parse(in, "t", &diags);
  EXPECT_EQ(orgs.mapping_count(), 0u);
  EXPECT_EQ(diags.size(), 1u);
}

TEST(As2Org, WriteParseRoundTrip) {
  As2Org orgs;
  orgs.add_mapping(Asn(64500), "ORG-A", "A-AS");
  orgs.add_mapping(Asn(64501), "ORG-A", "A2-AS");
  orgs.add_org("ORG-A", "Alpha Networks", "SE");

  std::ostringstream out;
  orgs.write(out);
  std::istringstream in(out.str());
  auto loaded = As2Org::parse(in);
  EXPECT_TRUE(loaded.siblings(Asn(64500), Asn(64501)));
  EXPECT_EQ(loaded.org_name("ORG-A"), "Alpha Networks");
}

}  // namespace
}  // namespace sublet::asgraph
