#include "whoisdb/parse.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

namespace sublet::whois {
namespace {

WhoisDb parse(const std::string& text, Rir rir,
              std::vector<Error>* diags = nullptr) {
  std::istringstream in(text);
  return parse_whois_db(in, rir, "<test>", diags);
}

// ------------------------------------------------------------- RPSL -------

constexpr const char* kRipeSample = R"(
% RIPE database subset, mirrors Figure 2 of the paper

inetnum:        213.210.0.0 - 213.210.63.255
netname:        SE-GCI-NET
org:            ORG-GCI1-RIPE
status:         ALLOCATED PA
mnt-by:         MNT-GCICOM
country:        SE
source:         RIPE

inetnum:        213.210.2.0 - 213.210.3.255
netname:        GCI-CUSTOMER
status:         ASSIGNED PA
mnt-by:         MNT-GCICOM
source:         RIPE

inetnum:        213.210.33.0 - 213.210.33.255
netname:        IPXO-LEASE
status:         ASSIGNED PA
mnt-by:         IPXO-MNT
source:         RIPE

aut-num:        AS8851
as-name:        GCI-AS
org:            ORG-GCI1-RIPE
mnt-by:         MNT-GCICOM
source:         RIPE

organisation:   ORG-GCI1-RIPE
org-name:       GCI Network
mnt-by:         MNT-GCICOM
mnt-ref:        MNT-GCIREF
country:        SE
source:         RIPE

person:         Irrelevant Person
nic-hdl:        IP1-RIPE
source:         RIPE
)";

TEST(RipeParse, BlocksWithPortability) {
  auto db = parse(kRipeSample, Rir::kRipe);
  ASSERT_EQ(db.blocks().size(), 3u);
  const auto& root = db.blocks()[0];
  EXPECT_EQ(root.netname, "SE-GCI-NET");
  EXPECT_EQ(root.portability, Portability::kPortable);
  EXPECT_EQ(root.org_id, "ORG-GCI1-RIPE");
  EXPECT_EQ(root.range.to_string(), "213.210.0.0 - 213.210.63.255");

  const auto& lease = db.blocks()[2];
  EXPECT_EQ(lease.portability, Portability::kNonPortable);
  ASSERT_EQ(lease.maintainers.size(), 1u);
  EXPECT_EQ(lease.maintainers[0], "IPXO-MNT");
}

TEST(RipeParse, AutNumAndOrgJoin) {
  auto db = parse(kRipeSample, Rir::kRipe);
  ASSERT_EQ(db.autnums().size(), 1u);
  EXPECT_EQ(db.autnums()[0].asn, Asn(8851));

  auto asns = db.asns_for_org("ORG-GCI1-RIPE");
  ASSERT_EQ(asns.size(), 1u);
  EXPECT_EQ(asns[0], Asn(8851));

  // Case-insensitive join.
  EXPECT_EQ(db.asns_for_org("org-gci1-ripe").size(), 1u);
  EXPECT_TRUE(db.asns_for_org("ORG-NONE").empty());
}

TEST(RipeParse, OrgRecordWithMntRef) {
  auto db = parse(kRipeSample, Rir::kRipe);
  const OrgRec* org = db.org("ORG-GCI1-RIPE");
  ASSERT_NE(org, nullptr);
  EXPECT_EQ(org->name, "GCI Network");
  ASSERT_EQ(org->maintainers.size(), 2u);
  EXPECT_EQ(org->maintainers[0], "MNT-GCICOM");
  EXPECT_EQ(org->maintainers[1], "MNT-GCIREF");
}

TEST(RipeParse, PersonObjectsIgnored) {
  auto db = parse(kRipeSample, Rir::kRipe);
  EXPECT_EQ(db.blocks().size() + db.autnums().size(), 4u);
}

TEST(RipeParse, BadRangeIsDiagnosedAndSkipped) {
  std::vector<Error> diags;
  auto db = parse(
      "inetnum: 10.0.1.0 - 10.0.0.0\nstatus: ASSIGNED PA\n\n"
      "inetnum: 10.1.0.0 - 10.1.0.255\nstatus: ASSIGNED PA\n",
      Rir::kRipe, &diags);
  EXPECT_EQ(db.blocks().size(), 1u);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_NE(diags[0].message.find("bad inetnum"), std::string::npos);
}

TEST(RipeParse, BadAutNumDiagnosed) {
  std::vector<Error> diags;
  auto db = parse("aut-num: ASFOO\n", Rir::kRipe, &diags);
  EXPECT_TRUE(db.autnums().empty());
  EXPECT_EQ(diags.size(), 1u);
}

TEST(ApnicParse, PortableVocabulary) {
  auto db = parse(
      "inetnum: 1.0.0.0 - 1.0.255.255\nstatus: ALLOCATED PORTABLE\n\n"
      "inetnum: 1.0.4.0 - 1.0.4.255\nstatus: ASSIGNED NON-PORTABLE\n",
      Rir::kApnic);
  ASSERT_EQ(db.blocks().size(), 2u);
  EXPECT_EQ(db.blocks()[0].portability, Portability::kPortable);
  EXPECT_EQ(db.blocks()[1].portability, Portability::kNonPortable);
}

// ------------------------------------------------------------- ARIN -------

constexpr const char* kArinSample = R"(
NetHandle:      NET-192-0-2-0-1
OrgID:          EGIH
Parent:         NET-192-0-0-0-0
NetName:        EGI-NET
NetRange:       192.0.2.0 - 192.0.2.255
NetType:        Direct Allocation
Country:        US

NetHandle:      NET-192-0-2-128-1
OrgID:          CUST-7
Parent:         NET-192-0-2-0-1
NetName:        CUSTOMER-NET
NetRange:       192.0.2.128 - 192.0.2.255
NetType:        Reassignment

ASHandle:       AS64500
OrgID:          EGIH
ASName:         EGI-AS

OrgID:          EGIH
OrgName:        EGIHosting
Country:        US
)";

TEST(ArinParse, NetHandleBlocks) {
  auto db = parse(kArinSample, Rir::kArin);
  ASSERT_EQ(db.blocks().size(), 2u);
  EXPECT_EQ(db.blocks()[0].portability, Portability::kPortable);
  EXPECT_EQ(db.blocks()[0].org_id, "EGIH");
  EXPECT_EQ(db.blocks()[1].portability, Portability::kNonPortable);
  // ARIN maintainer == OrgID.
  ASSERT_EQ(db.blocks()[1].maintainers.size(), 1u);
  EXPECT_EQ(db.blocks()[1].maintainers[0], "CUST-7");
}

TEST(ArinParse, AsHandleAndOrg) {
  auto db = parse(kArinSample, Rir::kArin);
  ASSERT_EQ(db.autnums().size(), 1u);
  EXPECT_EQ(db.autnums()[0].asn, Asn(64500));
  EXPECT_EQ(db.asns_for_org("EGIH"), std::vector<Asn>{Asn(64500)});
  const OrgRec* org = db.org("EGIH");
  ASSERT_NE(org, nullptr);
  EXPECT_EQ(org->name, "EGIHosting");
}

// ----------------------------------------------------------- LACNIC -------

constexpr const char* kLacnicSample = R"(
inetnum:        200.0.0.0/16
status:         allocated
owner:          Radiografica Costarricense
ownerid:        CR-RACS-LACNIC
country:        CR

inetnum:        200.0.4.0/24
status:         reassigned
owner:          Cliente Ejemplo
ownerid:        CR-CLEJ-LACNIC
country:        CR

aut-num:        AS52263
owner:          Radiografica Costarricense
ownerid:        CR-RACS-LACNIC
)";

TEST(LacnicParse, CidrBlocksAndSynthesizedOrgs) {
  auto db = parse(kLacnicSample, Rir::kLacnic);
  ASSERT_EQ(db.blocks().size(), 2u);
  EXPECT_EQ(db.blocks()[0].range.to_string(), "200.0.0.0 - 200.0.255.255");
  EXPECT_EQ(db.blocks()[0].portability, Portability::kPortable);
  EXPECT_EQ(db.blocks()[1].portability, Portability::kNonPortable);

  const OrgRec* org = db.org("CR-RACS-LACNIC");
  ASSERT_NE(org, nullptr);
  EXPECT_EQ(org->name, "Radiografica Costarricense");
  EXPECT_EQ(db.asns_for_org("CR-RACS-LACNIC"),
            std::vector<Asn>{Asn(52263)});
}

TEST(LacnicParse, AutnumLookup) {
  auto db = parse(kLacnicSample, Rir::kLacnic);
  const AutNumRec* rec = db.autnum(Asn(52263));
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->org_id, "CR-RACS-LACNIC");
  EXPECT_EQ(db.autnum(Asn(1)), nullptr);
}

TEST(LoadWhoisFile, ThrowsOnMissing) {
  EXPECT_THROW(load_whois_file("/nonexistent/ripe.db", Rir::kRipe),
               std::runtime_error);
}

// ------------------------------------------- chunked-parse determinism ----

/// Full-content fingerprint of a parsed db: record order matters for
/// blocks/autnums (serial file order), orgs sort by handle because the org
/// map's iteration order is unspecified.
std::string fingerprint(const WhoisDb& db) {
  std::ostringstream out;
  for (const InetBlock& b : db.blocks()) {
    out << "B|" << b.range.to_string() << '|' << b.netname << '|' << b.status
        << '|' << portability_name(b.portability) << '|' << b.org_id << '|'
        << b.country << '|';
    for (const auto& m : b.maintainers) out << m << ',';
    out << '\n';
  }
  for (const AutNumRec& a : db.autnums()) {
    out << "A|" << a.asn.value() << '|' << a.as_name << '|' << a.org_id
        << '\n';
  }
  auto orgs = db.all_orgs();
  std::sort(orgs.begin(), orgs.end(),
            [](const OrgRec* a, const OrgRec* b) { return a->id < b->id; });
  for (const OrgRec* o : orgs) {
    out << "O|" << o->id << '|' << o->name << '|' << o->country << '|';
    for (const auto& m : o->maintainers) out << m << ',';
    out << '\n';
  }
  return out.str();
}

std::string render(const std::vector<Error>& diags) {
  std::string out;
  for (const Error& e : diags) {
    out += e.to_string();
    out += '\n';
  }
  return out;
}

/// A RIPE-dialect text large enough (>64 KiB) that the paragraph splitter
/// produces several slices, with malformed objects sprinkled in so the
/// diagnostics stream is exercised too.
std::string big_ripe_text() {
  std::ostringstream out;
  out << "% synthetic RIPE dump for chunked-parse determinism tests\n\n";
  for (int i = 0; i < 2000; ++i) {
    int a = i / 256, b = i % 256;
    out << "inetnum:        10." << a << "." << b << ".0 - 10." << a << "."
        << b << ".255\n"
        << "netname:        NET-" << i << "\n"
        << "org:            ORG-SYN" << (i % 37) << "-RIPE\n"
        << "status:         " << (i % 3 == 0 ? "ALLOCATED PA" : "ASSIGNED PA")
        << "\nmnt-by:         MNT-" << (i % 11) << "\n"
        << "country:        DE\nsource:         RIPE\n\n";
    if (i % 97 == 0) {
      // Malformed range: emits a consume diagnostic at a known line.
      out << "inetnum:        not-a-range-" << i << "\n"
          << "netname:        BROKEN-" << i << "\nsource:         RIPE\n\n";
    }
    if (i % 50 == 0) {
      out << "aut-num:        AS" << (64496 + i) << "\n"
          << "as-name:        SYN-AS-" << i << "\n"
          << "org:            ORG-SYN" << (i % 37) << "-RIPE\n"
          << "source:         RIPE\n\n";
    }
    if (i % 100 == 0) {
      // Same handle re-registered: the serial parser keeps the last record.
      out << "organisation:   ORG-SYN" << (i % 37) << "-RIPE\n"
          << "org-name:       Synth Org v" << i << "\n"
          << "country:        DE\nsource:         RIPE\n\n";
    }
  }
  return out.str();
}

TEST(ChunkedParse, RipeIdenticalAcrossThreadCounts) {
  std::string text = big_ripe_text();
  ASSERT_GT(text.size(), std::size_t{64} * 1024)
      << "text must be large enough to engage the paragraph splitter";

  std::vector<Error> serial_diags;
  auto serial =
      parse_whois_text(text, Rir::kRipe, "<big>", &serial_diags, 1);
  EXPECT_FALSE(serial_diags.empty()) << "malformed objects should diagnose";
  std::string want_db = fingerprint(serial);
  std::string want_diags = render(serial_diags);

  for (unsigned threads : {2u, 8u}) {
    std::vector<Error> diags;
    auto db = parse_whois_text(text, Rir::kRipe, "<big>", &diags, threads);
    EXPECT_EQ(fingerprint(db), want_db) << "threads=" << threads;
    EXPECT_EQ(render(diags), want_diags) << "threads=" << threads;
  }
}

TEST(ChunkedParse, StreamAndTextAgree) {
  std::string text = big_ripe_text();
  std::istringstream in(text);
  std::vector<Error> stream_diags, text_diags;
  auto from_stream = parse_whois_db(in, Rir::kRipe, "<big>", &stream_diags, 4);
  auto from_text = parse_whois_text(text, Rir::kRipe, "<big>", &text_diags, 1);
  EXPECT_EQ(fingerprint(from_stream), fingerprint(from_text));
  EXPECT_EQ(render(stream_diags), render(text_diags));
}

TEST(ChunkedParse, LacnicKeepsFirstOwnerNameAcrossChunks) {
  // Thousands of LACNIC blocks sharing one ownerid with evolving owner
  // names. The serial parser synthesizes the org from the FIRST block; a
  // chunked parse must not let a later chunk's name win.
  std::ostringstream out;
  for (int i = 0; i < 4000; ++i) {
    out << "inetnum:        200." << (i / 256) << "." << (i % 256)
        << ".0/24\nstatus:         reassigned\n"
        << "owner:          Owner Name v" << i << "\n"
        << "ownerid:        BR-SHARED-LACNIC\ncountry:        BR\n\n";
  }
  std::string text = out.str();
  ASSERT_GT(text.size(), std::size_t{64} * 1024);

  for (unsigned threads : {1u, 2u, 8u}) {
    auto db = parse_whois_text(text, Rir::kLacnic, "<lacnic>", nullptr,
                               threads);
    ASSERT_EQ(db.block_count(), 4000u) << "threads=" << threads;
    const OrgRec* org = db.org("BR-SHARED-LACNIC");
    ASSERT_NE(org, nullptr) << "threads=" << threads;
    EXPECT_EQ(org->name, "Owner Name v0") << "threads=" << threads;
  }
}

TEST(ChunkedParse, DiagnosticLineNumbersMatchSerial) {
  std::string text = big_ripe_text();
  std::vector<Error> serial_diags, par_diags;
  parse_whois_text(text, Rir::kRipe, "<big>", &serial_diags, 1);
  parse_whois_text(text, Rir::kRipe, "<big>", &par_diags, 8);
  ASSERT_EQ(serial_diags.size(), par_diags.size());
  for (std::size_t i = 0; i < serial_diags.size(); ++i) {
    EXPECT_EQ(serial_diags[i].line, par_diags[i].line) << "diag " << i;
    EXPECT_GT(par_diags[i].line, 0u) << "diag " << i;
  }
}

}  // namespace
}  // namespace sublet::whois
