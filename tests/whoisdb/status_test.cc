#include "whoisdb/status.h"

#include <gtest/gtest.h>

namespace sublet::whois {
namespace {

struct StatusCase {
  Rir rir;
  const char* status;
  Portability expected;
};

class StatusTaxonomy : public testing::TestWithParam<StatusCase> {};

TEST_P(StatusTaxonomy, ClassifiesPerPaperSection21) {
  const auto& c = GetParam();
  EXPECT_EQ(classify_status(c.rir, c.status), c.expected)
      << rir_name(c.rir) << " '" << c.status << "'";
}

INSTANTIATE_TEST_SUITE_P(
    RipeStyle, StatusTaxonomy,
    testing::Values(
        StatusCase{Rir::kRipe, "ALLOCATED PA", Portability::kPortable},
        StatusCase{Rir::kRipe, "ASSIGNED PI", Portability::kPortable},
        StatusCase{Rir::kRipe, "ALLOCATED UNSPECIFIED", Portability::kPortable},
        StatusCase{Rir::kRipe, "ASSIGNED ANYCAST", Portability::kPortable},
        StatusCase{Rir::kRipe, "SUB-ALLOCATED PA", Portability::kNonPortable},
        StatusCase{Rir::kRipe, "ASSIGNED PA", Portability::kNonPortable},
        StatusCase{Rir::kRipe, "LEGACY", Portability::kLegacy},
        StatusCase{Rir::kRipe, "assigned pa", Portability::kNonPortable},
        StatusCase{Rir::kRipe, "  ALLOCATED PA  ", Portability::kPortable},
        StatusCase{Rir::kRipe, "NOT-A-STATUS", Portability::kUnknown},
        StatusCase{Rir::kAfrinic, "ALLOCATED PA", Portability::kPortable},
        StatusCase{Rir::kAfrinic, "SUB-ALLOCATED PA",
                   Portability::kNonPortable}));

INSTANTIATE_TEST_SUITE_P(
    Apnic, StatusTaxonomy,
    testing::Values(
        StatusCase{Rir::kApnic, "ALLOCATED PORTABLE", Portability::kPortable},
        StatusCase{Rir::kApnic, "ASSIGNED PORTABLE", Portability::kPortable},
        StatusCase{Rir::kApnic, "ALLOCATED NON-PORTABLE",
                   Portability::kNonPortable},
        StatusCase{Rir::kApnic, "ASSIGNED NON-PORTABLE",
                   Portability::kNonPortable},
        StatusCase{Rir::kApnic, "ALLOCATED PA", Portability::kUnknown}));

INSTANTIATE_TEST_SUITE_P(
    Arin, StatusTaxonomy,
    testing::Values(
        StatusCase{Rir::kArin, "allocation", Portability::kPortable},
        StatusCase{Rir::kArin, "Direct Allocation", Portability::kPortable},
        StatusCase{Rir::kArin, "assignment", Portability::kPortable},
        StatusCase{Rir::kArin, "Direct Assignment", Portability::kPortable},
        StatusCase{Rir::kArin, "Reallocation", Portability::kNonPortable},
        StatusCase{Rir::kArin, "Reassignment", Portability::kNonPortable},
        StatusCase{Rir::kArin, "legacy", Portability::kLegacy}));

INSTANTIATE_TEST_SUITE_P(
    Lacnic, StatusTaxonomy,
    testing::Values(
        StatusCase{Rir::kLacnic, "allocated", Portability::kPortable},
        StatusCase{Rir::kLacnic, "assigned", Portability::kPortable},
        StatusCase{Rir::kLacnic, "reallocated", Portability::kNonPortable},
        StatusCase{Rir::kLacnic, "reassigned", Portability::kNonPortable}));

TEST(RirNames, RoundTrip) {
  for (Rir rir : kAllRirs) {
    auto back = rir_from_name(rir_name(rir));
    ASSERT_TRUE(back);
    EXPECT_EQ(*back, rir);
  }
  EXPECT_FALSE(rir_from_name("IANA"));
  EXPECT_EQ(rir_from_name("ripe"), Rir::kRipe);
}

}  // namespace
}  // namespace sublet::whois
