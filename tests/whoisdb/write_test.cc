#include "whoisdb/write.h"

#include <gtest/gtest.h>

#include <sstream>

#include "util/rng.h"
#include "whoisdb/parse.h"
#include "whoisdb/status.h"

namespace sublet::whois {
namespace {

WhoisDb reparse(const std::string& text, Rir rir) {
  std::istringstream in(text);
  std::vector<Error> diags;
  WhoisDb db = parse_whois_db(in, rir, "<roundtrip>", &diags);
  EXPECT_TRUE(diags.empty()) << (diags.empty() ? "" : diags[0].to_string());
  return db;
}

TEST(WhoisWrite, RpslBlockRoundTrip) {
  InetBlock block;
  block.rir = Rir::kRipe;
  block.range = *AddrRange::parse("213.210.0.0 - 213.210.63.255");
  block.netname = "SE-GCI-NET";
  block.status = "ALLOCATED PA";
  block.org_id = "ORG-GCI1-RIPE";
  block.maintainers = {"MNT-GCICOM", "MNT-BACKUP"};
  block.country = "SE";

  std::ostringstream out;
  write_block(out, block);
  WhoisDb db = reparse(out.str(), Rir::kRipe);
  ASSERT_EQ(db.blocks().size(), 1u);
  const InetBlock& parsed = db.blocks()[0];
  EXPECT_EQ(parsed.range, block.range);
  EXPECT_EQ(parsed.netname, block.netname);
  EXPECT_EQ(parsed.status, block.status);
  EXPECT_EQ(parsed.portability, Portability::kPortable);
  EXPECT_EQ(parsed.org_id, block.org_id);
  EXPECT_EQ(parsed.maintainers, block.maintainers);
  EXPECT_EQ(parsed.country, block.country);
}

TEST(WhoisWrite, ArinBlockRoundTrip) {
  InetBlock block;
  block.rir = Rir::kArin;
  block.range = *AddrRange::parse("192.0.2.0 - 192.0.2.255");
  block.netname = "EGI-NET";
  block.status = "Reassignment";
  block.org_id = "EGIH";
  block.country = "US";

  std::ostringstream out;
  write_block(out, block);
  WhoisDb db = reparse(out.str(), Rir::kArin);
  ASSERT_EQ(db.blocks().size(), 1u);
  const InetBlock& parsed = db.blocks()[0];
  EXPECT_EQ(parsed.portability, Portability::kNonPortable);
  EXPECT_EQ(parsed.org_id, "EGIH");
  EXPECT_EQ(parsed.maintainers, std::vector<std::string>{"EGIH"})
      << "ARIN's OrgID doubles as the maintainer handle";
}

TEST(WhoisWrite, LacnicBlockSplitsUnalignedRanges) {
  InetBlock block;
  block.rir = Rir::kLacnic;
  block.range = *AddrRange::parse("200.0.0.0 - 200.0.2.255");  // /23 + /24
  block.status = "reassigned";
  block.org_id = "CR-X-LACNIC";

  std::ostringstream out;
  write_block(out, block, "Cliente Ejemplo");
  WhoisDb db = reparse(out.str(), Rir::kLacnic);
  ASSERT_EQ(db.blocks().size(), 2u) << "one CIDR record per covering prefix";
  for (const InetBlock& parsed : db.blocks()) {
    EXPECT_EQ(parsed.org_id, "CR-X-LACNIC");
    EXPECT_EQ(parsed.portability, Portability::kNonPortable);
  }
  EXPECT_EQ(db.org("CR-X-LACNIC")->name, "Cliente Ejemplo");
}

TEST(WhoisWrite, AutnumRoundTripAllDialects) {
  for (Rir rir : kAllRirs) {
    AutNumRec rec;
    rec.rir = rir;
    rec.asn = Asn(64500);
    rec.org_id = "ORG-X";
    rec.maintainers = {"MNT-X"};
    std::ostringstream out;
    write_autnum(out, rec, "Example Org");
    WhoisDb db = reparse(out.str(), rir);
    ASSERT_EQ(db.autnums().size(), 1u) << rir_name(rir);
    EXPECT_EQ(db.autnums()[0].asn, Asn(64500));
    EXPECT_EQ(db.autnums()[0].org_id, "ORG-X");
    EXPECT_EQ(db.asns_for_org("ORG-X"), std::vector<Asn>{Asn(64500)})
        << rir_name(rir);
  }
}

TEST(WhoisWrite, OrgRoundTripRpslAndArin) {
  for (Rir rir : {Rir::kRipe, Rir::kApnic, Rir::kAfrinic, Rir::kArin}) {
    OrgRec org;
    org.rir = rir;
    org.id = "ORG-Y";
    org.name = "Y Networks";
    org.maintainers = {"MNT-Y"};
    org.country = "DE";
    std::ostringstream out;
    write_org(out, org);
    WhoisDb db = reparse(out.str(), rir);
    const OrgRec* parsed = db.org("ORG-Y");
    ASSERT_NE(parsed, nullptr) << rir_name(rir);
    EXPECT_EQ(parsed->name, "Y Networks");
  }
}

TEST(WhoisWrite, LacnicOrgIsNoOp) {
  OrgRec org;
  org.rir = Rir::kLacnic;
  org.id = "X";
  std::ostringstream out;
  write_org(out, org);
  EXPECT_TRUE(out.str().empty());
}

// Property: random blocks survive the write->parse trip in every dialect.
class WriteRoundTripProperty : public testing::TestWithParam<std::uint64_t> {};

TEST_P(WriteRoundTripProperty, RandomBlocks) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 100; ++iter) {
    Rir rir = kAllRirs[rng.next_below(5)];
    // Aligned range so LACNIC emits a single record.
    int len = static_cast<int>(rng.next_in(12, 24));
    auto prefix = *Prefix::make(
        Ipv4Addr(static_cast<std::uint32_t>(rng.next_u64())), len);
    InetBlock block;
    block.rir = rir;
    block.range = AddrRange{prefix.first(), prefix.last()};
    block.netname = "NET-" + std::to_string(iter);
    bool portable = rng.chance(0.5);
    // Use a status from the RIR's own vocabulary.
    switch (rir) {
      case Rir::kRipe:
      case Rir::kAfrinic:
        block.status = portable ? "ALLOCATED PA" : "ASSIGNED PA";
        break;
      case Rir::kApnic:
        block.status = portable ? "ALLOCATED PORTABLE" : "ASSIGNED NON-PORTABLE";
        break;
      case Rir::kArin:
        block.status = portable ? "Direct Allocation" : "Reallocation";
        break;
      case Rir::kLacnic:
        block.status = portable ? "allocated" : "reallocated";
        break;
    }
    block.org_id = "ORG-" + std::to_string(rng.next_below(100));
    if (rir != Rir::kArin && rir != Rir::kLacnic) {
      block.maintainers = {"MNT-" + std::to_string(rng.next_below(100))};
    }
    std::ostringstream out;
    write_block(out, block, "Owner Name");
    WhoisDb db = reparse(out.str(), rir);
    ASSERT_EQ(db.blocks().size(), 1u);
    const InetBlock& parsed = db.blocks()[0];
    EXPECT_EQ(parsed.range, block.range);
    EXPECT_EQ(parsed.org_id, block.org_id);
    EXPECT_EQ(parsed.portability, classify_status(rir, block.status));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WriteRoundTripProperty,
                         testing::Values(1, 2, 3));

}  // namespace
}  // namespace sublet::whois
