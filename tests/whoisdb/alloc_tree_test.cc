#include "whoisdb/alloc_tree.h"

#include <gtest/gtest.h>

namespace sublet::whois {
namespace {

InetBlock make_block(const char* range, Portability portability,
                     const char* org = "", const char* mnt = "") {
  InetBlock block;
  block.range = *AddrRange::parse(range);
  block.portability = portability;
  block.org_id = org;
  if (*mnt) block.maintainers = {mnt};
  return block;
}

WhoisDb figure2_db() {
  // The paper's Figure 2 example: a portable /18 with a customer /23 and a
  // leased /24 underneath (via an intermediate /19).
  WhoisDb db(Rir::kRipe);
  db.add_block(make_block("213.210.0.0 - 213.210.63.255",
                          Portability::kPortable, "ORG-GCI1-RIPE",
                          "MNT-GCICOM"));
  db.add_block(make_block("213.210.2.0 - 213.210.3.255",
                          Portability::kNonPortable, "", "MNT-GCICOM"));
  db.add_block(make_block("213.210.32.0 - 213.210.63.255",
                          Portability::kNonPortable, "", "MNT-GCICOM"));
  db.add_block(make_block("213.210.33.0 - 213.210.33.255",
                          Portability::kNonPortable, "", "IPXO-MNT"));
  return db;
}

TEST(AllocationTree, Figure2RootsAndLeaves) {
  auto db = figure2_db();
  auto tree = AllocationTree::build(db);
  ASSERT_EQ(tree.roots().size(), 1u);
  EXPECT_EQ(tree.roots()[0].first.to_string(), "213.210.0.0/18");
  EXPECT_EQ(tree.roots()[0].second->org_id, "ORG-GCI1-RIPE");

  ASSERT_EQ(tree.leaves().size(), 2u);
  EXPECT_EQ(tree.leaves()[0].first.to_string(), "213.210.2.0/23");
  EXPECT_EQ(tree.leaves()[1].first.to_string(), "213.210.33.0/24");
  EXPECT_EQ(tree.leaves()[1].second->maintainers[0], "IPXO-MNT");
}

TEST(AllocationTree, RootOfLeaf) {
  auto db = figure2_db();
  auto tree = AllocationTree::build(db);
  auto root = tree.root_of(*Prefix::parse("213.210.33.0/24"));
  ASSERT_TRUE(root);
  EXPECT_EQ(root->first.to_string(), "213.210.0.0/18");
  EXPECT_FALSE(tree.root_of(*Prefix::parse("10.0.0.0/8")));
}

TEST(AllocationTree, IntermediateNodesAreNeitherRootNorLeaf) {
  auto db = figure2_db();
  auto tree = AllocationTree::build(db);
  // 213.210.32.0/19 exists in the trie but is neither root nor leaf.
  EXPECT_NE(tree.find(*Prefix::parse("213.210.32.0/19")), nullptr);
  for (const auto& [p, b] : tree.roots()) {
    EXPECT_NE(p.to_string(), "213.210.32.0/19");
  }
  for (const auto& [p, b] : tree.leaves()) {
    EXPECT_NE(p.to_string(), "213.210.32.0/19");
  }
}

TEST(AllocationTree, HyperSpecificsDropped) {
  WhoisDb db(Rir::kRipe);
  db.add_block(make_block("10.0.0.0 - 10.0.0.255", Portability::kPortable));
  db.add_block(
      make_block("10.0.0.16 - 10.0.0.31", Portability::kNonPortable));  // /28
  auto tree = AllocationTree::build(db);
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_EQ(tree.skipped_hyper_specific(), 1u);
  ASSERT_EQ(tree.leaves().size(), 1u);
  EXPECT_EQ(tree.leaves()[0].first.to_string(), "10.0.0.0/24");
}

TEST(AllocationTree, HyperSpecificFilterConfigurable) {
  WhoisDb db(Rir::kRipe);
  db.add_block(make_block("10.0.0.0 - 10.0.0.255", Portability::kPortable));
  db.add_block(
      make_block("10.0.0.16 - 10.0.0.31", Portability::kNonPortable));
  auto tree = AllocationTree::build(db, {.max_prefix_len = 32});
  EXPECT_EQ(tree.size(), 2u);
  EXPECT_EQ(tree.skipped_hyper_specific(), 0u);
}

TEST(AllocationTree, LegacyExcludedByDefault) {
  WhoisDb db(Rir::kRipe);
  db.add_block(make_block("44.0.0.0 - 44.255.255.255", Portability::kLegacy));
  db.add_block(make_block("10.0.0.0 - 10.0.255.255", Portability::kPortable));
  auto tree = AllocationTree::build(db);
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_EQ(tree.skipped_legacy(), 1u);

  auto with_legacy = AllocationTree::build(db, {.include_legacy = true});
  EXPECT_EQ(with_legacy.size(), 2u);
}

TEST(AllocationTree, UnalignedRangeBecomesMultiplePrefixes) {
  WhoisDb db(Rir::kRipe);
  // 10.0.0.0 - 10.0.2.255 = /23 + /24.
  db.add_block(make_block("10.0.0.0 - 10.0.2.255", Portability::kPortable));
  auto tree = AllocationTree::build(db);
  EXPECT_EQ(tree.size(), 2u);
  ASSERT_EQ(tree.roots().size(), 2u);
  EXPECT_EQ(tree.roots()[0].first.to_string(), "10.0.0.0/23");
  EXPECT_EQ(tree.roots()[1].first.to_string(), "10.0.2.0/24");
  // Both fragments point to the same block record.
  EXPECT_EQ(tree.roots()[0].second, tree.roots()[1].second);
}

TEST(AllocationTree, RootThatIsAlsoLeaf) {
  WhoisDb db(Rir::kRipe);
  db.add_block(make_block("198.51.100.0 - 198.51.100.255",
                          Portability::kPortable));
  auto tree = AllocationTree::build(db);
  ASSERT_EQ(tree.roots().size(), 1u);
  ASSERT_EQ(tree.leaves().size(), 1u);
  EXPECT_EQ(tree.roots()[0].first, tree.leaves()[0].first);
  // Its root is itself.
  auto root = tree.root_of(tree.leaves()[0].first);
  ASSERT_TRUE(root);
  EXPECT_EQ(root->first, tree.roots()[0].first);
}

TEST(AllocationTree, EmptyDatabase) {
  WhoisDb db(Rir::kRipe);
  auto tree = AllocationTree::build(db);
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_TRUE(tree.roots().empty());
  EXPECT_TRUE(tree.leaves().empty());
}

}  // namespace
}  // namespace sublet::whois
