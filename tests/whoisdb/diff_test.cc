#include "whoisdb/diff.h"

#include <gtest/gtest.h>

namespace sublet::whois {
namespace {

InetBlock block(const char* range, const char* mnt, const char* status,
                const char* org = "") {
  InetBlock b;
  b.range = *AddrRange::parse(range);
  if (*mnt) b.maintainers = {mnt};
  b.status = status;
  b.org_id = org;
  b.portability = Portability::kNonPortable;
  return b;
}

TEST(WhoisDiff, DetectsAddRemove) {
  WhoisDb before(Rir::kRipe), after(Rir::kRipe);
  before.add_block(block("10.0.0.0 - 10.0.0.255", "MNT-A", "ASSIGNED PA"));
  after.add_block(block("10.0.1.0 - 10.0.1.255", "MNT-B", "ASSIGNED PA"));

  auto changes = diff_databases(before, after);
  ASSERT_EQ(changes.size(), 2u);
  EXPECT_EQ(changes[0].prefix.to_string(), "10.0.0.0/24");
  EXPECT_EQ(changes[0].kind, BlockChange::Kind::kRemoved);
  EXPECT_EQ(changes[1].prefix.to_string(), "10.0.1.0/24");
  EXPECT_EQ(changes[1].kind, BlockChange::Kind::kAdded);
  EXPECT_EQ(changes[1].after, "mnt-b");
}

TEST(WhoisDiff, DetectsMaintainerFlipToBroker) {
  // The lease-onboarding fingerprint: the block moves under IPXO's handle.
  WhoisDb before(Rir::kRipe), after(Rir::kRipe);
  before.add_block(block("10.0.0.0 - 10.0.0.255", "MNT-HOLDER",
                         "ASSIGNED PA"));
  after.add_block(block("10.0.0.0 - 10.0.0.255", "IPXO-MNT", "ASSIGNED PA"));

  auto changes = diff_databases(before, after);
  ASSERT_EQ(changes.size(), 1u);
  EXPECT_EQ(changes[0].kind, BlockChange::Kind::kMaintainerChanged);
  EXPECT_EQ(changes[0].before, "mnt-holder");
  EXPECT_EQ(changes[0].after, "ipxo-mnt");
}

TEST(WhoisDiff, DetectsStatusAndOrgChanges) {
  WhoisDb before(Rir::kRipe), after(Rir::kRipe);
  before.add_block(block("10.0.0.0 - 10.0.0.255", "M", "ASSIGNED PA",
                         "ORG-A"));
  after.add_block(block("10.0.0.0 - 10.0.0.255", "M", "SUB-ALLOCATED PA",
                        "ORG-B"));
  auto changes = diff_databases(before, after);
  ASSERT_EQ(changes.size(), 2u);
  EXPECT_EQ(changes[0].kind, BlockChange::Kind::kStatusChanged);
  EXPECT_EQ(changes[1].kind, BlockChange::Kind::kOrgChanged);
  EXPECT_EQ(changes[1].before, "ORG-A");
  EXPECT_EQ(changes[1].after, "ORG-B");
}

TEST(WhoisDiff, IdenticalSnapshotsAreQuiet) {
  WhoisDb a(Rir::kRipe), b(Rir::kRipe);
  a.add_block(block("10.0.0.0 - 10.0.0.255", "M", "ASSIGNED PA"));
  b.add_block(block("10.0.0.0 - 10.0.0.255", "m", "assigned pa"));
  EXPECT_TRUE(diff_databases(a, b).empty())
      << "maintainer and status compare case-insensitively";
}

TEST(WhoisDiff, HyperSpecificsIgnored) {
  WhoisDb before(Rir::kRipe), after(Rir::kRipe);
  after.add_block(block("10.0.0.16 - 10.0.0.31", "M", "ASSIGNED PA"));
  EXPECT_TRUE(diff_databases(before, after).empty());
  EXPECT_EQ(diff_databases(before, after, 32).size(), 1u);
}

TEST(WhoisDiff, MultiPrefixRangeDiffsPerPrefix) {
  WhoisDb before(Rir::kRipe), after(Rir::kRipe);
  before.add_block(block("10.0.0.0 - 10.0.2.255", "M", "ASSIGNED PA"));
  auto changes = diff_databases(before, after);
  ASSERT_EQ(changes.size(), 2u) << "/23 + /24 removed";
}

}  // namespace
}  // namespace sublet::whois
