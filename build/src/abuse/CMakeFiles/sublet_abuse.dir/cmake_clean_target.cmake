file(REMOVE_RECURSE
  "libsublet_abuse.a"
)
