file(REMOVE_RECURSE
  "CMakeFiles/sublet_abuse.dir/asn_lists.cc.o"
  "CMakeFiles/sublet_abuse.dir/asn_lists.cc.o.d"
  "libsublet_abuse.a"
  "libsublet_abuse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sublet_abuse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
