# Empty compiler generated dependencies file for sublet_abuse.
# This may be replaced when dependencies are built.
