file(REMOVE_RECURSE
  "libsublet_transfers.a"
)
