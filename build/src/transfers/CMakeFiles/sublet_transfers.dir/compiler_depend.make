# Empty compiler generated dependencies file for sublet_transfers.
# This may be replaced when dependencies are built.
