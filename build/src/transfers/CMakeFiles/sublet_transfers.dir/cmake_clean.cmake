file(REMOVE_RECURSE
  "CMakeFiles/sublet_transfers.dir/transfer_log.cc.o"
  "CMakeFiles/sublet_transfers.dir/transfer_log.cc.o.d"
  "libsublet_transfers.a"
  "libsublet_transfers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sublet_transfers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
