file(REMOVE_RECURSE
  "libsublet_bgp.a"
)
