file(REMOVE_RECURSE
  "CMakeFiles/sublet_bgp.dir/origin_tracker.cc.o"
  "CMakeFiles/sublet_bgp.dir/origin_tracker.cc.o.d"
  "CMakeFiles/sublet_bgp.dir/rib.cc.o"
  "CMakeFiles/sublet_bgp.dir/rib.cc.o.d"
  "libsublet_bgp.a"
  "libsublet_bgp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sublet_bgp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
