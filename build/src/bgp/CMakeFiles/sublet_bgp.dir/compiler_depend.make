# Empty compiler generated dependencies file for sublet_bgp.
# This may be replaced when dependencies are built.
