# Empty dependencies file for sublet_mrt.
# This may be replaced when dependencies are built.
