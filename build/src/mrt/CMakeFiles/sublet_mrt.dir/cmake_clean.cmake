file(REMOVE_RECURSE
  "CMakeFiles/sublet_mrt.dir/bgp4mp.cc.o"
  "CMakeFiles/sublet_mrt.dir/bgp4mp.cc.o.d"
  "CMakeFiles/sublet_mrt.dir/bgp_attrs.cc.o"
  "CMakeFiles/sublet_mrt.dir/bgp_attrs.cc.o.d"
  "CMakeFiles/sublet_mrt.dir/bgpdump_text.cc.o"
  "CMakeFiles/sublet_mrt.dir/bgpdump_text.cc.o.d"
  "CMakeFiles/sublet_mrt.dir/mrt.cc.o"
  "CMakeFiles/sublet_mrt.dir/mrt.cc.o.d"
  "CMakeFiles/sublet_mrt.dir/rib_file.cc.o"
  "CMakeFiles/sublet_mrt.dir/rib_file.cc.o.d"
  "CMakeFiles/sublet_mrt.dir/table_dump_v2.cc.o"
  "CMakeFiles/sublet_mrt.dir/table_dump_v2.cc.o.d"
  "libsublet_mrt.a"
  "libsublet_mrt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sublet_mrt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
