file(REMOVE_RECURSE
  "libsublet_mrt.a"
)
