
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mrt/bgp4mp.cc" "src/mrt/CMakeFiles/sublet_mrt.dir/bgp4mp.cc.o" "gcc" "src/mrt/CMakeFiles/sublet_mrt.dir/bgp4mp.cc.o.d"
  "/root/repo/src/mrt/bgp_attrs.cc" "src/mrt/CMakeFiles/sublet_mrt.dir/bgp_attrs.cc.o" "gcc" "src/mrt/CMakeFiles/sublet_mrt.dir/bgp_attrs.cc.o.d"
  "/root/repo/src/mrt/bgpdump_text.cc" "src/mrt/CMakeFiles/sublet_mrt.dir/bgpdump_text.cc.o" "gcc" "src/mrt/CMakeFiles/sublet_mrt.dir/bgpdump_text.cc.o.d"
  "/root/repo/src/mrt/mrt.cc" "src/mrt/CMakeFiles/sublet_mrt.dir/mrt.cc.o" "gcc" "src/mrt/CMakeFiles/sublet_mrt.dir/mrt.cc.o.d"
  "/root/repo/src/mrt/rib_file.cc" "src/mrt/CMakeFiles/sublet_mrt.dir/rib_file.cc.o" "gcc" "src/mrt/CMakeFiles/sublet_mrt.dir/rib_file.cc.o.d"
  "/root/repo/src/mrt/table_dump_v2.cc" "src/mrt/CMakeFiles/sublet_mrt.dir/table_dump_v2.cc.o" "gcc" "src/mrt/CMakeFiles/sublet_mrt.dir/table_dump_v2.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netbase/CMakeFiles/sublet_netbase.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sublet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
