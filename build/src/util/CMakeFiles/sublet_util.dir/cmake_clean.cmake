file(REMOVE_RECURSE
  "CMakeFiles/sublet_util.dir/csv.cc.o"
  "CMakeFiles/sublet_util.dir/csv.cc.o.d"
  "CMakeFiles/sublet_util.dir/log.cc.o"
  "CMakeFiles/sublet_util.dir/log.cc.o.d"
  "CMakeFiles/sublet_util.dir/rng.cc.o"
  "CMakeFiles/sublet_util.dir/rng.cc.o.d"
  "CMakeFiles/sublet_util.dir/strings.cc.o"
  "CMakeFiles/sublet_util.dir/strings.cc.o.d"
  "CMakeFiles/sublet_util.dir/table.cc.o"
  "CMakeFiles/sublet_util.dir/table.cc.o.d"
  "libsublet_util.a"
  "libsublet_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sublet_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
