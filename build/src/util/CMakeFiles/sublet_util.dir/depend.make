# Empty dependencies file for sublet_util.
# This may be replaced when dependencies are built.
