file(REMOVE_RECURSE
  "libsublet_util.a"
)
