file(REMOVE_RECURSE
  "libsublet_whoisdb.a"
)
