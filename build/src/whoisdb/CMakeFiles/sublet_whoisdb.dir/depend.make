# Empty dependencies file for sublet_whoisdb.
# This may be replaced when dependencies are built.
