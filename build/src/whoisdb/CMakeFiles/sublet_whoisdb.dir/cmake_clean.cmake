file(REMOVE_RECURSE
  "CMakeFiles/sublet_whoisdb.dir/alloc_tree.cc.o"
  "CMakeFiles/sublet_whoisdb.dir/alloc_tree.cc.o.d"
  "CMakeFiles/sublet_whoisdb.dir/diff.cc.o"
  "CMakeFiles/sublet_whoisdb.dir/diff.cc.o.d"
  "CMakeFiles/sublet_whoisdb.dir/model.cc.o"
  "CMakeFiles/sublet_whoisdb.dir/model.cc.o.d"
  "CMakeFiles/sublet_whoisdb.dir/parse.cc.o"
  "CMakeFiles/sublet_whoisdb.dir/parse.cc.o.d"
  "CMakeFiles/sublet_whoisdb.dir/status.cc.o"
  "CMakeFiles/sublet_whoisdb.dir/status.cc.o.d"
  "CMakeFiles/sublet_whoisdb.dir/write.cc.o"
  "CMakeFiles/sublet_whoisdb.dir/write.cc.o.d"
  "libsublet_whoisdb.a"
  "libsublet_whoisdb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sublet_whoisdb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
