
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/whoisdb/alloc_tree.cc" "src/whoisdb/CMakeFiles/sublet_whoisdb.dir/alloc_tree.cc.o" "gcc" "src/whoisdb/CMakeFiles/sublet_whoisdb.dir/alloc_tree.cc.o.d"
  "/root/repo/src/whoisdb/diff.cc" "src/whoisdb/CMakeFiles/sublet_whoisdb.dir/diff.cc.o" "gcc" "src/whoisdb/CMakeFiles/sublet_whoisdb.dir/diff.cc.o.d"
  "/root/repo/src/whoisdb/model.cc" "src/whoisdb/CMakeFiles/sublet_whoisdb.dir/model.cc.o" "gcc" "src/whoisdb/CMakeFiles/sublet_whoisdb.dir/model.cc.o.d"
  "/root/repo/src/whoisdb/parse.cc" "src/whoisdb/CMakeFiles/sublet_whoisdb.dir/parse.cc.o" "gcc" "src/whoisdb/CMakeFiles/sublet_whoisdb.dir/parse.cc.o.d"
  "/root/repo/src/whoisdb/status.cc" "src/whoisdb/CMakeFiles/sublet_whoisdb.dir/status.cc.o" "gcc" "src/whoisdb/CMakeFiles/sublet_whoisdb.dir/status.cc.o.d"
  "/root/repo/src/whoisdb/write.cc" "src/whoisdb/CMakeFiles/sublet_whoisdb.dir/write.cc.o" "gcc" "src/whoisdb/CMakeFiles/sublet_whoisdb.dir/write.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rpsl/CMakeFiles/sublet_rpsl.dir/DependInfo.cmake"
  "/root/repo/build/src/netbase/CMakeFiles/sublet_netbase.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sublet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
