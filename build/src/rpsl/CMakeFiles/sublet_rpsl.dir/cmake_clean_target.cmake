file(REMOVE_RECURSE
  "libsublet_rpsl.a"
)
