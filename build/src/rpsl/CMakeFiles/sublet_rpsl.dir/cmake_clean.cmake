file(REMOVE_RECURSE
  "CMakeFiles/sublet_rpsl.dir/rpsl.cc.o"
  "CMakeFiles/sublet_rpsl.dir/rpsl.cc.o.d"
  "libsublet_rpsl.a"
  "libsublet_rpsl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sublet_rpsl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
