# Empty dependencies file for sublet_rpsl.
# This may be replaced when dependencies are built.
