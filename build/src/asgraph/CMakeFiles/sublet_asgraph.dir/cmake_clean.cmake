file(REMOVE_RECURSE
  "CMakeFiles/sublet_asgraph.dir/as2org.cc.o"
  "CMakeFiles/sublet_asgraph.dir/as2org.cc.o.d"
  "CMakeFiles/sublet_asgraph.dir/as_rel.cc.o"
  "CMakeFiles/sublet_asgraph.dir/as_rel.cc.o.d"
  "CMakeFiles/sublet_asgraph.dir/infer.cc.o"
  "CMakeFiles/sublet_asgraph.dir/infer.cc.o.d"
  "libsublet_asgraph.a"
  "libsublet_asgraph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sublet_asgraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
