# Empty dependencies file for sublet_asgraph.
# This may be replaced when dependencies are built.
