file(REMOVE_RECURSE
  "libsublet_asgraph.a"
)
