
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/leasing/abuse_analysis.cc" "src/leasing/CMakeFiles/sublet_leasing.dir/abuse_analysis.cc.o" "gcc" "src/leasing/CMakeFiles/sublet_leasing.dir/abuse_analysis.cc.o.d"
  "/root/repo/src/leasing/baseline.cc" "src/leasing/CMakeFiles/sublet_leasing.dir/baseline.cc.o" "gcc" "src/leasing/CMakeFiles/sublet_leasing.dir/baseline.cc.o.d"
  "/root/repo/src/leasing/churn.cc" "src/leasing/CMakeFiles/sublet_leasing.dir/churn.cc.o" "gcc" "src/leasing/CMakeFiles/sublet_leasing.dir/churn.cc.o.d"
  "/root/repo/src/leasing/dataset.cc" "src/leasing/CMakeFiles/sublet_leasing.dir/dataset.cc.o" "gcc" "src/leasing/CMakeFiles/sublet_leasing.dir/dataset.cc.o.d"
  "/root/repo/src/leasing/ecosystem.cc" "src/leasing/CMakeFiles/sublet_leasing.dir/ecosystem.cc.o" "gcc" "src/leasing/CMakeFiles/sublet_leasing.dir/ecosystem.cc.o.d"
  "/root/repo/src/leasing/evaluation.cc" "src/leasing/CMakeFiles/sublet_leasing.dir/evaluation.cc.o" "gcc" "src/leasing/CMakeFiles/sublet_leasing.dir/evaluation.cc.o.d"
  "/root/repo/src/leasing/pipeline.cc" "src/leasing/CMakeFiles/sublet_leasing.dir/pipeline.cc.o" "gcc" "src/leasing/CMakeFiles/sublet_leasing.dir/pipeline.cc.o.d"
  "/root/repo/src/leasing/report.cc" "src/leasing/CMakeFiles/sublet_leasing.dir/report.cc.o" "gcc" "src/leasing/CMakeFiles/sublet_leasing.dir/report.cc.o.d"
  "/root/repo/src/leasing/summary.cc" "src/leasing/CMakeFiles/sublet_leasing.dir/summary.cc.o" "gcc" "src/leasing/CMakeFiles/sublet_leasing.dir/summary.cc.o.d"
  "/root/repo/src/leasing/timeline.cc" "src/leasing/CMakeFiles/sublet_leasing.dir/timeline.cc.o" "gcc" "src/leasing/CMakeFiles/sublet_leasing.dir/timeline.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/whoisdb/CMakeFiles/sublet_whoisdb.dir/DependInfo.cmake"
  "/root/repo/build/src/bgp/CMakeFiles/sublet_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/asgraph/CMakeFiles/sublet_asgraph.dir/DependInfo.cmake"
  "/root/repo/build/src/rpki/CMakeFiles/sublet_rpki.dir/DependInfo.cmake"
  "/root/repo/build/src/abuse/CMakeFiles/sublet_abuse.dir/DependInfo.cmake"
  "/root/repo/build/src/transfers/CMakeFiles/sublet_transfers.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/sublet_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/netbase/CMakeFiles/sublet_netbase.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sublet_util.dir/DependInfo.cmake"
  "/root/repo/build/src/mrt/CMakeFiles/sublet_mrt.dir/DependInfo.cmake"
  "/root/repo/build/src/rpsl/CMakeFiles/sublet_rpsl.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
