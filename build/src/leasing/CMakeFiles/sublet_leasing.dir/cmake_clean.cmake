file(REMOVE_RECURSE
  "CMakeFiles/sublet_leasing.dir/abuse_analysis.cc.o"
  "CMakeFiles/sublet_leasing.dir/abuse_analysis.cc.o.d"
  "CMakeFiles/sublet_leasing.dir/baseline.cc.o"
  "CMakeFiles/sublet_leasing.dir/baseline.cc.o.d"
  "CMakeFiles/sublet_leasing.dir/churn.cc.o"
  "CMakeFiles/sublet_leasing.dir/churn.cc.o.d"
  "CMakeFiles/sublet_leasing.dir/dataset.cc.o"
  "CMakeFiles/sublet_leasing.dir/dataset.cc.o.d"
  "CMakeFiles/sublet_leasing.dir/ecosystem.cc.o"
  "CMakeFiles/sublet_leasing.dir/ecosystem.cc.o.d"
  "CMakeFiles/sublet_leasing.dir/evaluation.cc.o"
  "CMakeFiles/sublet_leasing.dir/evaluation.cc.o.d"
  "CMakeFiles/sublet_leasing.dir/pipeline.cc.o"
  "CMakeFiles/sublet_leasing.dir/pipeline.cc.o.d"
  "CMakeFiles/sublet_leasing.dir/report.cc.o"
  "CMakeFiles/sublet_leasing.dir/report.cc.o.d"
  "CMakeFiles/sublet_leasing.dir/summary.cc.o"
  "CMakeFiles/sublet_leasing.dir/summary.cc.o.d"
  "CMakeFiles/sublet_leasing.dir/timeline.cc.o"
  "CMakeFiles/sublet_leasing.dir/timeline.cc.o.d"
  "libsublet_leasing.a"
  "libsublet_leasing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sublet_leasing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
