# Empty compiler generated dependencies file for sublet_leasing.
# This may be replaced when dependencies are built.
