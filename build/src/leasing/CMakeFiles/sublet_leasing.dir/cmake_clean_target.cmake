file(REMOVE_RECURSE
  "libsublet_leasing.a"
)
