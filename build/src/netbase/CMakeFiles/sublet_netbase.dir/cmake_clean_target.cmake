file(REMOVE_RECURSE
  "libsublet_netbase.a"
)
