
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netbase/asn.cc" "src/netbase/CMakeFiles/sublet_netbase.dir/asn.cc.o" "gcc" "src/netbase/CMakeFiles/sublet_netbase.dir/asn.cc.o.d"
  "/root/repo/src/netbase/ipv4.cc" "src/netbase/CMakeFiles/sublet_netbase.dir/ipv4.cc.o" "gcc" "src/netbase/CMakeFiles/sublet_netbase.dir/ipv4.cc.o.d"
  "/root/repo/src/netbase/prefix_set.cc" "src/netbase/CMakeFiles/sublet_netbase.dir/prefix_set.cc.o" "gcc" "src/netbase/CMakeFiles/sublet_netbase.dir/prefix_set.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/sublet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
