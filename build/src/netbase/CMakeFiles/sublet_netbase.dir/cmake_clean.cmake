file(REMOVE_RECURSE
  "CMakeFiles/sublet_netbase.dir/asn.cc.o"
  "CMakeFiles/sublet_netbase.dir/asn.cc.o.d"
  "CMakeFiles/sublet_netbase.dir/ipv4.cc.o"
  "CMakeFiles/sublet_netbase.dir/ipv4.cc.o.d"
  "CMakeFiles/sublet_netbase.dir/prefix_set.cc.o"
  "CMakeFiles/sublet_netbase.dir/prefix_set.cc.o.d"
  "libsublet_netbase.a"
  "libsublet_netbase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sublet_netbase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
