# Empty compiler generated dependencies file for sublet_netbase.
# This may be replaced when dependencies are built.
