# Empty dependencies file for sublet_simnet.
# This may be replaced when dependencies are built.
