file(REMOVE_RECURSE
  "libsublet_simnet.a"
)
