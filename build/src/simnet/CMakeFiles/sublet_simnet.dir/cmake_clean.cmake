file(REMOVE_RECURSE
  "CMakeFiles/sublet_simnet.dir/builder.cc.o"
  "CMakeFiles/sublet_simnet.dir/builder.cc.o.d"
  "CMakeFiles/sublet_simnet.dir/emit.cc.o"
  "CMakeFiles/sublet_simnet.dir/emit.cc.o.d"
  "CMakeFiles/sublet_simnet.dir/epoch.cc.o"
  "CMakeFiles/sublet_simnet.dir/epoch.cc.o.d"
  "CMakeFiles/sublet_simnet.dir/ground_truth.cc.o"
  "CMakeFiles/sublet_simnet.dir/ground_truth.cc.o.d"
  "CMakeFiles/sublet_simnet.dir/timeline_scenario.cc.o"
  "CMakeFiles/sublet_simnet.dir/timeline_scenario.cc.o.d"
  "libsublet_simnet.a"
  "libsublet_simnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sublet_simnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
