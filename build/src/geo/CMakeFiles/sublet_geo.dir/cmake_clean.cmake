file(REMOVE_RECURSE
  "CMakeFiles/sublet_geo.dir/geodb.cc.o"
  "CMakeFiles/sublet_geo.dir/geodb.cc.o.d"
  "libsublet_geo.a"
  "libsublet_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sublet_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
