# Empty dependencies file for sublet_geo.
# This may be replaced when dependencies are built.
