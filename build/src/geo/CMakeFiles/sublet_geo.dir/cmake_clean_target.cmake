file(REMOVE_RECURSE
  "libsublet_geo.a"
)
