# Empty compiler generated dependencies file for sublet_rpki.
# This may be replaced when dependencies are built.
