file(REMOVE_RECURSE
  "CMakeFiles/sublet_rpki.dir/archive.cc.o"
  "CMakeFiles/sublet_rpki.dir/archive.cc.o.d"
  "CMakeFiles/sublet_rpki.dir/roa.cc.o"
  "CMakeFiles/sublet_rpki.dir/roa.cc.o.d"
  "libsublet_rpki.a"
  "libsublet_rpki.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sublet_rpki.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
