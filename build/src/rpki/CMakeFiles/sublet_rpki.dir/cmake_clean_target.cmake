file(REMOVE_RECURSE
  "libsublet_rpki.a"
)
