# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("netbase")
subdirs("rpsl")
subdirs("mrt")
subdirs("whoisdb")
subdirs("bgp")
subdirs("asgraph")
subdirs("rpki")
subdirs("abuse")
subdirs("transfers")
subdirs("geo")
subdirs("leasing")
subdirs("simnet")
