# Empty dependencies file for bench_ablation_siblings.
# This may be replaced when dependencies are built.
