file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_siblings.dir/bench_ablation_siblings.cc.o"
  "CMakeFiles/bench_ablation_siblings.dir/bench_ablation_siblings.cc.o.d"
  "bench_ablation_siblings"
  "bench_ablation_siblings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_siblings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
