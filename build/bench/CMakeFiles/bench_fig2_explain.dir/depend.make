# Empty dependencies file for bench_fig2_explain.
# This may be replaced when dependencies are built.
