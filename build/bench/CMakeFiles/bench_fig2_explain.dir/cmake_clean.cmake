file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_explain.dir/bench_fig2_explain.cc.o"
  "CMakeFiles/bench_fig2_explain.dir/bench_fig2_explain.cc.o.d"
  "bench_fig2_explain"
  "bench_fig2_explain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_explain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
