# Empty dependencies file for bench_ablation_visibility.
# This may be replaced when dependencies are built.
