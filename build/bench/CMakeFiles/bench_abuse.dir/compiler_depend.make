# Empty compiler generated dependencies file for bench_abuse.
# This may be replaced when dependencies are built.
