file(REMOVE_RECURSE
  "CMakeFiles/bench_abuse.dir/bench_abuse.cc.o"
  "CMakeFiles/bench_abuse.dir/bench_abuse.cc.o.d"
  "bench_abuse"
  "bench_abuse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abuse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
