file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_inferred_rels.dir/bench_ablation_inferred_rels.cc.o"
  "CMakeFiles/bench_ablation_inferred_rels.dir/bench_ablation_inferred_rels.cc.o.d"
  "bench_ablation_inferred_rels"
  "bench_ablation_inferred_rels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_inferred_rels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
