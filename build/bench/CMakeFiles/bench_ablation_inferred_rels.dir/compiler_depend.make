# Empty compiler generated dependencies file for bench_ablation_inferred_rels.
# This may be replaced when dependencies are built.
