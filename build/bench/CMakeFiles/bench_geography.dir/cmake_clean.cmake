file(REMOVE_RECURSE
  "CMakeFiles/bench_geography.dir/bench_geography.cc.o"
  "CMakeFiles/bench_geography.dir/bench_geography.cc.o.d"
  "bench_geography"
  "bench_geography.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_geography.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
