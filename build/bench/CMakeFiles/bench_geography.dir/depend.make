# Empty dependencies file for bench_geography.
# This may be replaced when dependencies are built.
