file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_hyperspecific.dir/bench_ablation_hyperspecific.cc.o"
  "CMakeFiles/bench_ablation_hyperspecific.dir/bench_ablation_hyperspecific.cc.o.d"
  "bench_ablation_hyperspecific"
  "bench_ablation_hyperspecific.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_hyperspecific.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
