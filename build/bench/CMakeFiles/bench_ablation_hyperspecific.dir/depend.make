# Empty dependencies file for bench_ablation_hyperspecific.
# This may be replaced when dependencies are built.
