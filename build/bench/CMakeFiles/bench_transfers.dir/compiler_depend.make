# Empty compiler generated dependencies file for bench_transfers.
# This may be replaced when dependencies are built.
