file(REMOVE_RECURSE
  "CMakeFiles/bench_transfers.dir/bench_transfers.cc.o"
  "CMakeFiles/bench_transfers.dir/bench_transfers.cc.o.d"
  "bench_transfers"
  "bench_transfers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_transfers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
