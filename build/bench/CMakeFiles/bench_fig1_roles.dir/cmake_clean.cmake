file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_roles.dir/bench_fig1_roles.cc.o"
  "CMakeFiles/bench_fig1_roles.dir/bench_fig1_roles.cc.o.d"
  "bench_fig1_roles"
  "bench_fig1_roles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_roles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
