# Empty dependencies file for bench_fig1_roles.
# This may be replaced when dependencies are built.
