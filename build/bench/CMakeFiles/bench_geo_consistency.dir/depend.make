# Empty dependencies file for bench_geo_consistency.
# This may be replaced when dependencies are built.
