file(REMOVE_RECURSE
  "CMakeFiles/bench_geo_consistency.dir/bench_geo_consistency.cc.o"
  "CMakeFiles/bench_geo_consistency.dir/bench_geo_consistency.cc.o.d"
  "bench_geo_consistency"
  "bench_geo_consistency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_geo_consistency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
