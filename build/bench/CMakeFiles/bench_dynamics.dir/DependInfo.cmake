
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_dynamics.cc" "bench/CMakeFiles/bench_dynamics.dir/bench_dynamics.cc.o" "gcc" "bench/CMakeFiles/bench_dynamics.dir/bench_dynamics.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/simnet/CMakeFiles/sublet_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/leasing/CMakeFiles/sublet_leasing.dir/DependInfo.cmake"
  "/root/repo/build/src/transfers/CMakeFiles/sublet_transfers.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/sublet_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/whoisdb/CMakeFiles/sublet_whoisdb.dir/DependInfo.cmake"
  "/root/repo/build/src/rpsl/CMakeFiles/sublet_rpsl.dir/DependInfo.cmake"
  "/root/repo/build/src/bgp/CMakeFiles/sublet_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/mrt/CMakeFiles/sublet_mrt.dir/DependInfo.cmake"
  "/root/repo/build/src/asgraph/CMakeFiles/sublet_asgraph.dir/DependInfo.cmake"
  "/root/repo/build/src/rpki/CMakeFiles/sublet_rpki.dir/DependInfo.cmake"
  "/root/repo/build/src/abuse/CMakeFiles/sublet_abuse.dir/DependInfo.cmake"
  "/root/repo/build/src/netbase/CMakeFiles/sublet_netbase.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sublet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
