file(REMOVE_RECURSE
  "CMakeFiles/sublet.dir/sublet_cli.cc.o"
  "CMakeFiles/sublet.dir/sublet_cli.cc.o.d"
  "sublet"
  "sublet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sublet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
