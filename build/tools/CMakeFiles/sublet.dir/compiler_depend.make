# Empty compiler generated dependencies file for sublet.
# This may be replaced when dependencies are built.
