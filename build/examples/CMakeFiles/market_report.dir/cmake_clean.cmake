file(REMOVE_RECURSE
  "CMakeFiles/market_report.dir/market_report.cpp.o"
  "CMakeFiles/market_report.dir/market_report.cpp.o.d"
  "market_report"
  "market_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/market_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
