# Empty dependencies file for market_report.
# This may be replaced when dependencies are built.
