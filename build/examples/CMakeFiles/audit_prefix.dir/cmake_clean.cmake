file(REMOVE_RECURSE
  "CMakeFiles/audit_prefix.dir/audit_prefix.cpp.o"
  "CMakeFiles/audit_prefix.dir/audit_prefix.cpp.o.d"
  "audit_prefix"
  "audit_prefix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/audit_prefix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
