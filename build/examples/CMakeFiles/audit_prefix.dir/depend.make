# Empty dependencies file for audit_prefix.
# This may be replaced when dependencies are built.
