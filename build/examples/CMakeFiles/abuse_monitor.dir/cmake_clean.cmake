file(REMOVE_RECURSE
  "CMakeFiles/abuse_monitor.dir/abuse_monitor.cpp.o"
  "CMakeFiles/abuse_monitor.dir/abuse_monitor.cpp.o.d"
  "abuse_monitor"
  "abuse_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abuse_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
