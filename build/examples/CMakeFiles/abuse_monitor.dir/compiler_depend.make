# Empty compiler generated dependencies file for abuse_monitor.
# This may be replaced when dependencies are built.
