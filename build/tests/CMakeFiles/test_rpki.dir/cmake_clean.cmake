file(REMOVE_RECURSE
  "CMakeFiles/test_rpki.dir/rpki/archive_test.cc.o"
  "CMakeFiles/test_rpki.dir/rpki/archive_test.cc.o.d"
  "CMakeFiles/test_rpki.dir/rpki/roa_test.cc.o"
  "CMakeFiles/test_rpki.dir/rpki/roa_test.cc.o.d"
  "CMakeFiles/test_rpki.dir/rpki/validate_property_test.cc.o"
  "CMakeFiles/test_rpki.dir/rpki/validate_property_test.cc.o.d"
  "test_rpki"
  "test_rpki.pdb"
  "test_rpki[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rpki.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
