file(REMOVE_RECURSE
  "CMakeFiles/test_asgraph.dir/asgraph/as2org_test.cc.o"
  "CMakeFiles/test_asgraph.dir/asgraph/as2org_test.cc.o.d"
  "CMakeFiles/test_asgraph.dir/asgraph/as_graph_test.cc.o"
  "CMakeFiles/test_asgraph.dir/asgraph/as_graph_test.cc.o.d"
  "CMakeFiles/test_asgraph.dir/asgraph/as_rel_test.cc.o"
  "CMakeFiles/test_asgraph.dir/asgraph/as_rel_test.cc.o.d"
  "CMakeFiles/test_asgraph.dir/asgraph/infer_test.cc.o"
  "CMakeFiles/test_asgraph.dir/asgraph/infer_test.cc.o.d"
  "test_asgraph"
  "test_asgraph.pdb"
  "test_asgraph[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_asgraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
