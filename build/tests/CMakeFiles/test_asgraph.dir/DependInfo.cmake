
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/asgraph/as2org_test.cc" "tests/CMakeFiles/test_asgraph.dir/asgraph/as2org_test.cc.o" "gcc" "tests/CMakeFiles/test_asgraph.dir/asgraph/as2org_test.cc.o.d"
  "/root/repo/tests/asgraph/as_graph_test.cc" "tests/CMakeFiles/test_asgraph.dir/asgraph/as_graph_test.cc.o" "gcc" "tests/CMakeFiles/test_asgraph.dir/asgraph/as_graph_test.cc.o.d"
  "/root/repo/tests/asgraph/as_rel_test.cc" "tests/CMakeFiles/test_asgraph.dir/asgraph/as_rel_test.cc.o" "gcc" "tests/CMakeFiles/test_asgraph.dir/asgraph/as_rel_test.cc.o.d"
  "/root/repo/tests/asgraph/infer_test.cc" "tests/CMakeFiles/test_asgraph.dir/asgraph/infer_test.cc.o" "gcc" "tests/CMakeFiles/test_asgraph.dir/asgraph/infer_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/asgraph/CMakeFiles/sublet_asgraph.dir/DependInfo.cmake"
  "/root/repo/build/src/netbase/CMakeFiles/sublet_netbase.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sublet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
