# Empty dependencies file for test_asgraph.
# This may be replaced when dependencies are built.
