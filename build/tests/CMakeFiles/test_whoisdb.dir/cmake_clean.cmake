file(REMOVE_RECURSE
  "CMakeFiles/test_whoisdb.dir/whoisdb/alloc_tree_test.cc.o"
  "CMakeFiles/test_whoisdb.dir/whoisdb/alloc_tree_test.cc.o.d"
  "CMakeFiles/test_whoisdb.dir/whoisdb/diff_test.cc.o"
  "CMakeFiles/test_whoisdb.dir/whoisdb/diff_test.cc.o.d"
  "CMakeFiles/test_whoisdb.dir/whoisdb/parse_test.cc.o"
  "CMakeFiles/test_whoisdb.dir/whoisdb/parse_test.cc.o.d"
  "CMakeFiles/test_whoisdb.dir/whoisdb/status_test.cc.o"
  "CMakeFiles/test_whoisdb.dir/whoisdb/status_test.cc.o.d"
  "CMakeFiles/test_whoisdb.dir/whoisdb/write_test.cc.o"
  "CMakeFiles/test_whoisdb.dir/whoisdb/write_test.cc.o.d"
  "test_whoisdb"
  "test_whoisdb.pdb"
  "test_whoisdb[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_whoisdb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
