
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/whoisdb/alloc_tree_test.cc" "tests/CMakeFiles/test_whoisdb.dir/whoisdb/alloc_tree_test.cc.o" "gcc" "tests/CMakeFiles/test_whoisdb.dir/whoisdb/alloc_tree_test.cc.o.d"
  "/root/repo/tests/whoisdb/diff_test.cc" "tests/CMakeFiles/test_whoisdb.dir/whoisdb/diff_test.cc.o" "gcc" "tests/CMakeFiles/test_whoisdb.dir/whoisdb/diff_test.cc.o.d"
  "/root/repo/tests/whoisdb/parse_test.cc" "tests/CMakeFiles/test_whoisdb.dir/whoisdb/parse_test.cc.o" "gcc" "tests/CMakeFiles/test_whoisdb.dir/whoisdb/parse_test.cc.o.d"
  "/root/repo/tests/whoisdb/status_test.cc" "tests/CMakeFiles/test_whoisdb.dir/whoisdb/status_test.cc.o" "gcc" "tests/CMakeFiles/test_whoisdb.dir/whoisdb/status_test.cc.o.d"
  "/root/repo/tests/whoisdb/write_test.cc" "tests/CMakeFiles/test_whoisdb.dir/whoisdb/write_test.cc.o" "gcc" "tests/CMakeFiles/test_whoisdb.dir/whoisdb/write_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/whoisdb/CMakeFiles/sublet_whoisdb.dir/DependInfo.cmake"
  "/root/repo/build/src/rpsl/CMakeFiles/sublet_rpsl.dir/DependInfo.cmake"
  "/root/repo/build/src/netbase/CMakeFiles/sublet_netbase.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sublet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
