# Empty compiler generated dependencies file for test_whoisdb.
# This may be replaced when dependencies are built.
