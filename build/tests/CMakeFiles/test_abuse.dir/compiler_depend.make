# Empty compiler generated dependencies file for test_abuse.
# This may be replaced when dependencies are built.
