file(REMOVE_RECURSE
  "CMakeFiles/test_abuse.dir/abuse/asn_lists_test.cc.o"
  "CMakeFiles/test_abuse.dir/abuse/asn_lists_test.cc.o.d"
  "test_abuse"
  "test_abuse.pdb"
  "test_abuse[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_abuse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
