file(REMOVE_RECURSE
  "CMakeFiles/test_rpsl.dir/rpsl/rpsl_test.cc.o"
  "CMakeFiles/test_rpsl.dir/rpsl/rpsl_test.cc.o.d"
  "test_rpsl"
  "test_rpsl.pdb"
  "test_rpsl[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rpsl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
