# Empty compiler generated dependencies file for test_rpsl.
# This may be replaced when dependencies are built.
