file(REMOVE_RECURSE
  "CMakeFiles/test_netbase.dir/netbase/asn_test.cc.o"
  "CMakeFiles/test_netbase.dir/netbase/asn_test.cc.o.d"
  "CMakeFiles/test_netbase.dir/netbase/ipv4_test.cc.o"
  "CMakeFiles/test_netbase.dir/netbase/ipv4_test.cc.o.d"
  "CMakeFiles/test_netbase.dir/netbase/prefix_set_test.cc.o"
  "CMakeFiles/test_netbase.dir/netbase/prefix_set_test.cc.o.d"
  "CMakeFiles/test_netbase.dir/netbase/prefix_test.cc.o"
  "CMakeFiles/test_netbase.dir/netbase/prefix_test.cc.o.d"
  "CMakeFiles/test_netbase.dir/netbase/prefix_trie_test.cc.o"
  "CMakeFiles/test_netbase.dir/netbase/prefix_trie_test.cc.o.d"
  "CMakeFiles/test_netbase.dir/netbase/range_test.cc.o"
  "CMakeFiles/test_netbase.dir/netbase/range_test.cc.o.d"
  "test_netbase"
  "test_netbase.pdb"
  "test_netbase[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_netbase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
