# Empty dependencies file for test_leasing.
# This may be replaced when dependencies are built.
