file(REMOVE_RECURSE
  "CMakeFiles/test_leasing.dir/leasing/abuse_test.cc.o"
  "CMakeFiles/test_leasing.dir/leasing/abuse_test.cc.o.d"
  "CMakeFiles/test_leasing.dir/leasing/baseline_test.cc.o"
  "CMakeFiles/test_leasing.dir/leasing/baseline_test.cc.o.d"
  "CMakeFiles/test_leasing.dir/leasing/churn_test.cc.o"
  "CMakeFiles/test_leasing.dir/leasing/churn_test.cc.o.d"
  "CMakeFiles/test_leasing.dir/leasing/dataset_test.cc.o"
  "CMakeFiles/test_leasing.dir/leasing/dataset_test.cc.o.d"
  "CMakeFiles/test_leasing.dir/leasing/ecosystem_test.cc.o"
  "CMakeFiles/test_leasing.dir/leasing/ecosystem_test.cc.o.d"
  "CMakeFiles/test_leasing.dir/leasing/evaluation_test.cc.o"
  "CMakeFiles/test_leasing.dir/leasing/evaluation_test.cc.o.d"
  "CMakeFiles/test_leasing.dir/leasing/pipeline_test.cc.o"
  "CMakeFiles/test_leasing.dir/leasing/pipeline_test.cc.o.d"
  "CMakeFiles/test_leasing.dir/leasing/report_test.cc.o"
  "CMakeFiles/test_leasing.dir/leasing/report_test.cc.o.d"
  "CMakeFiles/test_leasing.dir/leasing/timeline_test.cc.o"
  "CMakeFiles/test_leasing.dir/leasing/timeline_test.cc.o.d"
  "test_leasing"
  "test_leasing.pdb"
  "test_leasing[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_leasing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
