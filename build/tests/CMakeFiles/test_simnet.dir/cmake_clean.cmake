file(REMOVE_RECURSE
  "CMakeFiles/test_simnet.dir/simnet/builder_test.cc.o"
  "CMakeFiles/test_simnet.dir/simnet/builder_test.cc.o.d"
  "CMakeFiles/test_simnet.dir/simnet/emit_test.cc.o"
  "CMakeFiles/test_simnet.dir/simnet/emit_test.cc.o.d"
  "CMakeFiles/test_simnet.dir/simnet/epoch_test.cc.o"
  "CMakeFiles/test_simnet.dir/simnet/epoch_test.cc.o.d"
  "CMakeFiles/test_simnet.dir/simnet/timeline_scenario_test.cc.o"
  "CMakeFiles/test_simnet.dir/simnet/timeline_scenario_test.cc.o.d"
  "test_simnet"
  "test_simnet.pdb"
  "test_simnet[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
