
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/mrt/bgp4mp_test.cc" "tests/CMakeFiles/test_mrt.dir/mrt/bgp4mp_test.cc.o" "gcc" "tests/CMakeFiles/test_mrt.dir/mrt/bgp4mp_test.cc.o.d"
  "/root/repo/tests/mrt/bgp_attrs_test.cc" "tests/CMakeFiles/test_mrt.dir/mrt/bgp_attrs_test.cc.o" "gcc" "tests/CMakeFiles/test_mrt.dir/mrt/bgp_attrs_test.cc.o.d"
  "/root/repo/tests/mrt/bgpdump_text_test.cc" "tests/CMakeFiles/test_mrt.dir/mrt/bgpdump_text_test.cc.o" "gcc" "tests/CMakeFiles/test_mrt.dir/mrt/bgpdump_text_test.cc.o.d"
  "/root/repo/tests/mrt/bytes_test.cc" "tests/CMakeFiles/test_mrt.dir/mrt/bytes_test.cc.o" "gcc" "tests/CMakeFiles/test_mrt.dir/mrt/bytes_test.cc.o.d"
  "/root/repo/tests/mrt/rib_file_test.cc" "tests/CMakeFiles/test_mrt.dir/mrt/rib_file_test.cc.o" "gcc" "tests/CMakeFiles/test_mrt.dir/mrt/rib_file_test.cc.o.d"
  "/root/repo/tests/mrt/robustness_test.cc" "tests/CMakeFiles/test_mrt.dir/mrt/robustness_test.cc.o" "gcc" "tests/CMakeFiles/test_mrt.dir/mrt/robustness_test.cc.o.d"
  "/root/repo/tests/mrt/table_dump_v2_test.cc" "tests/CMakeFiles/test_mrt.dir/mrt/table_dump_v2_test.cc.o" "gcc" "tests/CMakeFiles/test_mrt.dir/mrt/table_dump_v2_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mrt/CMakeFiles/sublet_mrt.dir/DependInfo.cmake"
  "/root/repo/build/src/netbase/CMakeFiles/sublet_netbase.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sublet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
