# Empty compiler generated dependencies file for test_mrt.
# This may be replaced when dependencies are built.
