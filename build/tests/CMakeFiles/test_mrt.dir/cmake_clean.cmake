file(REMOVE_RECURSE
  "CMakeFiles/test_mrt.dir/mrt/bgp4mp_test.cc.o"
  "CMakeFiles/test_mrt.dir/mrt/bgp4mp_test.cc.o.d"
  "CMakeFiles/test_mrt.dir/mrt/bgp_attrs_test.cc.o"
  "CMakeFiles/test_mrt.dir/mrt/bgp_attrs_test.cc.o.d"
  "CMakeFiles/test_mrt.dir/mrt/bgpdump_text_test.cc.o"
  "CMakeFiles/test_mrt.dir/mrt/bgpdump_text_test.cc.o.d"
  "CMakeFiles/test_mrt.dir/mrt/bytes_test.cc.o"
  "CMakeFiles/test_mrt.dir/mrt/bytes_test.cc.o.d"
  "CMakeFiles/test_mrt.dir/mrt/rib_file_test.cc.o"
  "CMakeFiles/test_mrt.dir/mrt/rib_file_test.cc.o.d"
  "CMakeFiles/test_mrt.dir/mrt/robustness_test.cc.o"
  "CMakeFiles/test_mrt.dir/mrt/robustness_test.cc.o.d"
  "CMakeFiles/test_mrt.dir/mrt/table_dump_v2_test.cc.o"
  "CMakeFiles/test_mrt.dir/mrt/table_dump_v2_test.cc.o.d"
  "test_mrt"
  "test_mrt.pdb"
  "test_mrt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mrt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
