# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_netbase[1]_include.cmake")
include("/root/repo/build/tests/test_rpsl[1]_include.cmake")
include("/root/repo/build/tests/test_mrt[1]_include.cmake")
include("/root/repo/build/tests/test_whoisdb[1]_include.cmake")
include("/root/repo/build/tests/test_bgp[1]_include.cmake")
include("/root/repo/build/tests/test_asgraph[1]_include.cmake")
include("/root/repo/build/tests/test_rpki[1]_include.cmake")
include("/root/repo/build/tests/test_abuse[1]_include.cmake")
include("/root/repo/build/tests/test_leasing[1]_include.cmake")
include("/root/repo/build/tests/test_simnet[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_transfers[1]_include.cmake")
include("/root/repo/build/tests/test_geo[1]_include.cmake")
