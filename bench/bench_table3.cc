// Table 3 — top 3 IP holders by number of inferred leases per RIR.
#include "leasing/ecosystem.h"

#include "common.h"

using namespace sublet;

int main() {
  bench::print_banner("bench_table3 — top IP holders per RIR",
                      "Table 3 (§6.3)");
  bench::FullRun run;
  leasing::Ecosystem eco(run.results, &run.bundle.as2org);

  TextTable table({"RIR", "Organization", "Leases"});
  for (whois::Rir rir : whois::kAllRirs) {
    auto top = eco.top_holders(rir, 3);
    for (const auto& holder : top) {
      // Resolve the org handle to its display name via the WHOIS db.
      std::string name = holder.name;
      if (const whois::WhoisDb* db = run.bundle.db_for(rir)) {
        if (const whois::OrgRec* org = db->org(holder.name)) {
          if (!org->name.empty()) name = org->name;
        }
      }
      table.add_row({std::string(rir_name(rir)), name,
                     with_commas(holder.count)});
    }
  }
  std::cout << table.to_string();

  auto afrinic = eco.top_holders(whois::Rir::kAfrinic, 2);
  if (afrinic.size() >= 2 && afrinic[1].count > 0) {
    std::cout << "\nAFRINIC dominance ratio (top/second): "
              << fixed(static_cast<double>(afrinic[0].count) /
                           static_cast<double>(afrinic[1].count),
                       1)
              << "x (paper: 2,014/38 = 53x, Cloud Innovation)\n";
  }
  return 0;
}
