// Ablation A4 (§4 "BGP dataset") — the observation window: the paper
// downloads RIBs over April 1-15 "to capture leased prefixes that were not
// immediately originated". Classify with only the day-1 snapshots vs the
// full window and measure the recall the window buys.
#include <filesystem>

#include "common.h"

using namespace sublet;

int main() {
  bench::print_banner("bench_ablation_window — observation-window ablation",
                      "§4 BGP dataset (April 1-15 window)");
  std::string dir = bench::ensure_dataset();
  auto bundle = leasing::load_dataset(dir);
  auto truth = sim::GroundTruth::load(dir);
  asgraph::AsGraph graph(&bundle.as_rel, &bundle.as2org);

  std::size_t late_truth = 0, active_truth = 0;
  for (const auto& row : truth.rows()) {
    if (!row.is_leased || !row.active || row.legacy) continue;
    ++active_truth;
    if (row.late) ++late_truth;
  }

  TextTable table({"Window", "Routed pfx", "Leased found",
                   "Late leases found", "Lease recall vs truth"});
  for (int full_window = 0; full_window < 2; ++full_window) {
    bgp::Rib rib;
    for (const auto& entry :
         std::filesystem::directory_iterator(dir + "/bgp")) {
      std::string name = entry.path().filename().string();
      if (entry.path().extension() != ".mrt") continue;
      if (!full_window && name.find(".t1.") != std::string::npos) continue;
      if (auto err = rib.add_file(entry.path().string())) {
        std::cerr << err->to_string() << "\n";
        return 1;
      }
    }
    leasing::Pipeline pipeline(rib, graph);
    std::size_t tp = 0, late_found = 0;
    for (const whois::WhoisDb& db : bundle.whois) {
      for (const auto& r : pipeline.classify(db)) {
        if (!r.leased()) continue;
        const sim::TruthRow* row = truth.find(r.prefix);
        if (row && row->is_leased) {
          ++tp;
          if (row->late) ++late_found;
        }
      }
    }
    table.add_row({full_window ? "day 1-15 (paper)" : "day 1 only",
                   with_commas(rib.prefix_count()), with_commas(tp),
                   with_commas(late_found),
                   percent(static_cast<double>(tp) / active_truth)});
  }
  std::cout << table.to_string();
  std::cout << "\nGround truth: " << with_commas(late_truth) << " of "
            << with_commas(active_truth)
            << " active leases only originate late in the window.\n";
  return 0;
}
