// Table 1 — number of prefixes per inference group per RIR, and the
// headline "4.1% of routed prefixes were leased".
#include "common.h"

using namespace sublet;

int main() {
  bench::print_banner("bench_table1 — leased address space per region",
                      "Table 1 (§6.1)");
  bench::FullRun run;

  TextTable table({"Inference Group", "RIPE", "ARIN", "APNIC", "AFRINIC",
                   "LACNIC", "All"});
  std::array<leasing::GroupCounts, 5> per_rir;
  leasing::GroupCounts all;
  for (whois::Rir rir : whois::kAllRirs) {
    per_rir[static_cast<std::size_t>(rir)] =
        leasing::Pipeline::count_groups(run.results_for(rir));
  }
  for (const auto& inference : run.results) all.add(inference.group);

  auto row = [&](const std::string& label, auto getter) {
    std::vector<std::string> cells = {label};
    for (whois::Rir rir : whois::kAllRirs) {
      cells.push_back(
          with_commas(getter(per_rir[static_cast<std::size_t>(rir)])));
    }
    cells.push_back(with_commas(getter(all)));
    table.add_row(cells);
  };
  row("1 Unused", [](const auto& c) { return c.unused; });
  row("2 Aggregated Customer",
      [](const auto& c) { return c.aggregated_customer; });
  row("3 ISP Customer", [](const auto& c) { return c.isp_customer; });
  row("3 Leased", [](const auto& c) { return c.leased_g3; });
  row("4 Delegated Customer",
      [](const auto& c) { return c.delegated_customer; });
  row("4 Leased", [](const auto& c) { return c.leased_g4; });
  row("Leased total", [](const auto& c) { return c.leased(); });
  row("Total leaves", [](const auto& c) { return c.total(); });
  std::cout << table.to_string() << "\n";

  std::size_t routed = run.bundle.rib.prefix_count();
  double leased_share =
      static_cast<double>(all.leased()) / static_cast<double>(routed);
  std::cout << "Routed prefixes in BGP:        " << with_commas(routed)
            << "\n";
  std::cout << "Inferred leased prefixes:      " << with_commas(all.leased())
            << " (" << percent(leased_share) << " of routed; paper: 4.1%)\n";

  std::uint64_t routed_space = run.bundle.rib.routed_address_space();
  std::uint64_t leased_space = 0;
  for (const auto& r : run.results) {
    if (r.leased()) leased_space += r.prefix.size();
  }
  std::cout << "Leased address space:          "
            << percent(static_cast<double>(leased_space) /
                       static_cast<double>(routed_space))
            << " of routed space (paper: 0.9%)\n";

  // Paper reference percentages for the RIPE column.
  auto& ripe = per_rir[0];
  double total = static_cast<double>(ripe.total());
  std::cout << "\nRIPE mix (measured vs paper): unused "
            << percent(ripe.unused / total) << " vs 17.9%, aggregated "
            << percent(ripe.aggregated_customer / total)
            << " vs 57.4%, leased " << percent(ripe.leased() / total)
            << " vs 8.1%\n";
  return 0;
}
