// Market dynamics — §8 future work ("longitudinally assess IP leasing
// market dynamics"): run the pipeline on two monthly epochs of the same
// world and measure lease churn.
#include <filesystem>

#include <map>

#include "common.h"
#include "leasing/churn.h"
#include "simnet/epoch.h"
#include "whoisdb/diff.h"

using namespace sublet;

namespace {

std::vector<leasing::LeaseInference> classify_dir(const std::string& dir) {
  auto bundle = leasing::load_dataset(dir);
  asgraph::AsGraph graph(&bundle.as_rel, &bundle.as2org);
  leasing::Pipeline pipeline(bundle.rib, graph);
  std::vector<leasing::LeaseInference> results;
  for (const whois::WhoisDb& db : bundle.whois) {
    auto partial = pipeline.classify(db);
    results.insert(results.end(), partial.begin(), partial.end());
  }
  return results;
}

}  // namespace

int main() {
  bench::print_banner("bench_dynamics — month-over-month lease churn",
                      "§8 future work: leasing market dynamics");

  sim::WorldConfig config;
  config.seed = bench::bench_seed();
  config.scale = bench::bench_scale() * 0.5;  // two full worlds: go halves
  sim::World april = sim::build_world(config);
  sim::World may = sim::advance_epoch(april, {.epoch = 1});

  std::string dir_a = "/tmp/sublet-dyn-april";
  std::string dir_b = "/tmp/sublet-dyn-may";
  std::filesystem::remove_all(dir_a);
  std::filesystem::remove_all(dir_b);
  sim::emit_world(april, dir_a);
  sim::emit_world(may, dir_b);

  auto results_april = classify_dir(dir_a);
  auto results_may = classify_dir(dir_b);
  auto churn = leasing::diff_inferences(results_april, results_may);

  TextTable table({"Transition", "Prefixes"});
  table.add_row({"new leases", with_commas(churn.started.size())});
  table.add_row({"ended leases", with_commas(churn.ended.size())});
  table.add_row({"lessee changed", with_commas(churn.lessee_changed.size())});
  table.add_row({"stable", with_commas(churn.stable.size())});
  std::cout << table.to_string();
  std::cout << "\nLease population: " << with_commas(churn.total_before())
            << " -> " << with_commas(churn.total_after())
            << ";  monthly churn rate " << percent(churn.churn_rate())
            << "\n";
  std::cout << "(epoch parameters: 10% of leases end, 12% change lessee, "
               "3.5% of idle space gets leased)\n\n";

  // Registry-side churn: the WHOIS fingerprints of the same month.
  auto bundle_a = leasing::load_dataset(dir_a);
  auto bundle_b = leasing::load_dataset(dir_b);
  std::map<whois::BlockChange::Kind, std::size_t> registry;
  for (const whois::WhoisDb& before : bundle_a.whois) {
    const whois::WhoisDb* after = bundle_b.db_for(before.rir());
    if (!after) continue;
    for (const auto& change : whois::diff_databases(before, *after)) {
      ++registry[change.kind];
    }
  }
  std::cout << "Registry (WHOIS) churn over the same month:\n";
  for (const auto& [kind, count] : registry) {
    std::cout << "    " << change_kind_name(kind) << ": "
              << with_commas(count) << "\n";
  }
  std::cout << "(maintainer changes are the lease-onboarding fingerprint — "
               "blocks moving under broker handles)\n";
  return 0;
}
