// Process memory readings for benchmark counters.
//
// BENCH_perf_pipeline.json rows carry a "peak_rss_mb" counter so the memory
// side of a perf change is visible in the trajectory, not just wall time.
// Peak RSS is a process-wide high-water mark (monotonic across the run), so
// compare it between whole-run JSONs, not between rows of one run; the
// per-structure "mem_mb" counters on the trie benchmarks are the
// apples-to-apples comparison within a run.
#pragma once

#include <cstdio>

namespace sublet::bench {

/// VmHWM (peak resident set size) of this process in megabytes, read from
/// /proc/self/status. Returns 0.0 where that interface does not exist.
inline double peak_rss_megabytes() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (!f) return 0.0;
  char line[256];
  double mb = 0.0;
  while (std::fgets(line, sizeof line, f)) {
    long kb = 0;
    if (std::sscanf(line, "VmHWM: %ld", &kb) == 1) {
      mb = static_cast<double>(kb) / 1024.0;
      break;
    }
  }
  std::fclose(f);
  return mb;
}

}  // namespace sublet::bench
