// Ablation A3 (§5.1) — the hyper-specific filter: the paper drops all
// prefixes longer than /24 ("mostly internal infrastructure", Sediqi et
// al. 2022). Admitting them floods the leaf set with infrastructure
// records that displace the real sub-allocations as tree leaves.
#include "common.h"

using namespace sublet;

int main() {
  bench::print_banner(
      "bench_ablation_hyperspecific — >/24 filter ablation",
      "§5.1 step 2 ('remove all hyper-specific prefixes longer than /24')");

  TextTable table({"max_prefix_len", "Classified leaves", "Leased",
                   "Lease recall vs truth", "Lease precision vs truth"});
  for (int max_len : {24, 28, 32}) {
    leasing::PipelineOptions options;
    options.alloc.max_prefix_len = max_len;
    bench::FullRun run(options);
    std::size_t tp = 0, flagged = 0, active_truth = 0;
    for (const auto& r : run.results) {
      if (!r.leased()) continue;
      ++flagged;
      const sim::TruthRow* row = run.truth.find(r.prefix);
      if (row && row->is_leased) ++tp;
    }
    for (const auto& row : run.truth.rows()) {
      if (row.is_leased && row.active && !row.legacy) ++active_truth;
    }
    table.add_row({"/" + std::to_string(max_len),
                   with_commas(run.results.size()), with_commas(flagged),
                   percent(static_cast<double>(tp) / active_truth),
                   flagged ? percent(static_cast<double>(tp) / flagged)
                           : "n/a"});
  }
  std::cout << table.to_string();
  std::cout << "\nWith the filter disabled, internal-infrastructure /28s "
               "become tree leaves and displace the real sub-allocations "
               "above them (those turn into intermediate nodes), so lease "
               "recall drops.\n";
  return 0;
}
