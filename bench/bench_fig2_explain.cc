// Figure 2 — the inference walkthrough of a leased prefix: the allocation
// tree, the holder's RIR-assigned ASN, the BGP origins, and the verdict.
#include "common.h"

using namespace sublet;

int main() {
  bench::print_banner("bench_fig2_explain — single-prefix inference diagram",
                      "Figure 2 (§5.1-§5.2)");
  bench::FullRun run;

  // Pick one group-4 lease (the figure's case: root and leaf both
  // originated) and one group-3 lease, and narrate both.
  const leasing::LeaseInference* g4 = nullptr;
  const leasing::LeaseInference* g3 = nullptr;
  for (const auto& r : run.results) {
    if (r.rir != whois::Rir::kRipe) continue;
    if (!g4 && r.group == leasing::InferenceGroup::kLeasedWithRoot) g4 = &r;
    if (!g3 && r.group == leasing::InferenceGroup::kLeasedNoRoot) g3 = &r;
    if (g3 && g4) break;
  }

  const whois::WhoisDb* ripe = run.bundle.db_for(whois::Rir::kRipe);
  leasing::Pipeline pipeline(run.bundle.rib, run.graph);
  for (const auto* example : {g4, g3}) {
    if (!example) continue;
    std::cout << pipeline.explain(example->prefix, *ripe) << "\n";
  }

  // And one non-lease for contrast.
  for (const auto& r : run.results) {
    if (r.rir == whois::Rir::kRipe &&
        r.group == leasing::InferenceGroup::kIspCustomer) {
      std::cout << pipeline.explain(r.prefix, *ripe) << "\n";
      break;
    }
  }
  return 0;
}
