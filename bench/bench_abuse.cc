// §6.3 + §6.4 — abuse of leased prefixes: Spamhaus ASN-DROP overlap,
// serial-hijacker originators, and ROAs authorizing blocklisted ASes.
#include "leasing/abuse_analysis.h"

#include "common.h"

using namespace sublet;

int main() {
  bench::print_banner("bench_abuse — abuse of leased prefixes",
                      "§6.3 hijackers, §6.4 ASN-DROP + RPKI");
  bench::FullRun run;
  leasing::AbuseAnalysis analysis(run.results, run.bundle.rib);

  // ---- §6.4: ASN-DROP prefix overlap --------------------------------
  auto drop = analysis.prefix_overlap(run.bundle.drop);
  TextTable t1({"Population", "Prefixes", "DROP-originated", "Share"});
  t1.add_row({"Leased", with_commas(drop.leased_total),
              with_commas(drop.leased_listed),
              percent(drop.leased_fraction())});
  t1.add_row({"Non-leased", with_commas(drop.nonleased_total),
              with_commas(drop.nonleased_listed),
              percent(drop.nonleased_fraction())});
  std::cout << t1.to_string();
  std::cout << "Risk ratio: " << fixed(drop.risk_ratio(), 1)
            << "x (paper: 1.1% vs 0.2% = ~5x)\n\n";

  // ---- §6.3: serial hijackers ----------------------------------------
  auto hijack = analysis.originator_overlap(run.bundle.hijackers);
  std::cout << "Serial hijackers among lease originators: "
            << with_commas(hijack.originators_listed) << "/"
            << with_commas(hijack.originators_total) << " ("
            << percent(static_cast<double>(hijack.originators_listed) /
                       static_cast<double>(hijack.originators_total))
            << "; paper: 269/9,217 = 2.9%)\n";
  std::cout << "Leased prefixes originated by hijackers: "
            << with_commas(hijack.leased_prefixes_by_listed) << "/"
            << with_commas(hijack.leased_prefixes_total) << " ("
            << percent(static_cast<double>(hijack.leased_prefixes_by_listed) /
                       static_cast<double>(hijack.leased_prefixes_total))
            << "; paper: 13.3%)\n";
  auto hijack_prefixes = analysis.prefix_overlap(run.bundle.hijackers);
  std::cout << "Non-leased prefixes from hijacker ASes: "
            << percent(hijack_prefixes.nonleased_fraction())
            << " (paper: 3.1%)\n\n";

  // ---- §6.4: ROAs ------------------------------------------------------
  const rpki::VrpSet* vrps = run.bundle.current_vrps();
  if (vrps) {
    auto roa = analysis.roa_overlap(*vrps, run.bundle.drop);
    std::cout << "Leased prefixes with ROAs:    "
              << with_commas(roa.leased_with_roa) << " over "
              << with_commas(roa.leased_roas_total)
              << " distinct ROAs (paper: 31,156 ROAs)\n";
    double leased_listed =
        roa.leased_roas_total
            ? static_cast<double>(roa.leased_roas_listed) /
                  static_cast<double>(roa.leased_roas_total)
            : 0;
    double nonleased_listed =
        roa.nonleased_roas_total
            ? static_cast<double>(roa.nonleased_roas_listed) /
                  static_cast<double>(roa.nonleased_roas_total)
            : 0;
    std::cout << "ROAs authorizing DROP ASes:   leased "
              << percent(leased_listed) << " vs non-leased "
              << percent(nonleased_listed)
              << " (paper: 1.6% vs 0.2%)\n\n";

    auto validity = analysis.validity_breakdown(*vrps);
    TextTable t2({"Population", "RPKI valid", "invalid", "not-found"});
    auto share = [](std::size_t n, std::size_t total) {
      return total ? percent(static_cast<double>(n) / total) : "n/a";
    };
    t2.add_row({"Leased",
                share(validity.leased_valid, validity.leased_total()),
                share(validity.leased_invalid, validity.leased_total()),
                share(validity.leased_notfound, validity.leased_total())});
    t2.add_row({"Non-leased",
                share(validity.nonleased_valid, validity.nonleased_total()),
                share(validity.nonleased_invalid, validity.nonleased_total()),
                share(validity.nonleased_notfound,
                      validity.nonleased_total())});
    std::cout << t2.to_string();
    std::cout << "(abusers obtain *valid* ROAs through the lease — the "
               "paper's point that leasing defeats RPKI as an abuse "
               "barrier)\n";
  }
  return 0;
}
