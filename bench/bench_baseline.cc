// §6.1 — comparison with the maintainer-difference baseline of
// Prehn et al. (CoNEXT 2020): agreement matrix and the disagreement
// classes the paper predicts.
#include "leasing/baseline.h"

#include "common.h"

using namespace sublet;

int main() {
  bench::print_banner("bench_baseline — vs Prehn et al. maintainer method",
                      "§6.1 'Comparison with Prior Work'");
  bench::FullRun run;

  leasing::MethodComparison total;
  for (const whois::WhoisDb& db : run.bundle.whois) {
    auto prior = leasing::maintainer_baseline(db);
    auto ours = run.results_for(db.rir());
    auto cmp = leasing::compare_methods(ours, prior);
    total.both_leased += cmp.both_leased;
    total.ours_only += cmp.ours_only;
    total.baseline_only += cmp.baseline_only;
    total.baseline_only_unused += cmp.baseline_only_unused;
    total.neither += cmp.neither;
  }

  TextTable table({"Verdict pair", "Leaves", "Share"});
  double n = static_cast<double>(total.total());
  table.add_row({"both methods: leased", with_commas(total.both_leased),
                 percent(total.both_leased / n)});
  table.add_row({"BGP method only (direct leases baseline misses)",
                 with_commas(total.ours_only), percent(total.ours_only / n)});
  table.add_row({"baseline only", with_commas(total.baseline_only),
                 percent(total.baseline_only / n)});
  table.add_row({"neither", with_commas(total.neither),
                 percent(total.neither / n)});
  std::cout << table.to_string();
  std::cout << "\nBaseline-only verdicts our method filed as Unused "
               "(inactive leases the baseline catches — §6.1): "
            << with_commas(total.baseline_only_unused) << "\n";

  // Score both against ground truth for a headline comparison.
  std::size_t ours_tp = 0, ours_fp = 0, base_tp = 0, base_fp = 0;
  std::unordered_map<Prefix, bool, PrefixHash> ours_map;
  for (const auto& r : run.results) ours_map[r.prefix] = r.leased();
  for (const whois::WhoisDb& db : run.bundle.whois) {
    for (const auto& b : leasing::maintainer_baseline(db)) {
      const sim::TruthRow* row = run.truth.find(b.prefix);
      if (!row) continue;
      if (b.leased) (row->is_leased ? ++base_tp : ++base_fp);
      auto it = ours_map.find(b.prefix);
      if (it != ours_map.end() && it->second) {
        (row->is_leased ? ++ours_tp : ++ours_fp);
      }
    }
  }
  auto prec = [](std::size_t tp, std::size_t fp) {
    return tp + fp ? static_cast<double>(tp) / (tp + fp) : 0.0;
  };
  std::cout << "\nPrecision vs ground truth: BGP method "
            << percent(prec(ours_tp, ours_fp)) << " ("
            << with_commas(ours_tp + ours_fp) << " flagged), baseline "
            << percent(prec(base_tp, base_fp)) << " ("
            << with_commas(base_tp + base_fp) << " flagged)\n";
  std::cout << "(the paper argues maintainer comparison misclassifies "
               "customer blocks with own maintainers as leases)\n";
  return 0;
}
