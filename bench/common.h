// Shared harness for the experiment benches (DESIGN.md §4).
//
// Every bench regenerates one table/figure of the paper from a synthetic
// world. The world is emitted once per (seed, scale) into a cache directory
// and re-loaded by subsequent benches, so `for b in build/bench/*; do $b;
// done` does not rebuild it twelve times.
//
// Environment knobs:
//   SUBLET_BENCH_SCALE  world scale (default 1.0 = ~1/10 of the paper)
//   SUBLET_BENCH_SEED   generator seed (default 20240401)
#pragma once

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "asgraph/as_graph.h"
#include "leasing/dataset.h"
#include "leasing/pipeline.h"
#include "simnet/builder.h"
#include "simnet/emit.h"
#include "simnet/ground_truth.h"
#include "util/table.h"

namespace sublet::bench {

inline double bench_scale() {
  if (const char* env = std::getenv("SUBLET_BENCH_SCALE")) {
    return std::atof(env);
  }
  return 1.0;
}

inline std::uint64_t bench_seed() {
  if (const char* env = std::getenv("SUBLET_BENCH_SEED")) {
    return std::strtoull(env, nullptr, 10);
  }
  return 20240401;
}

/// Emit (or reuse) the cached dataset for the configured seed/scale and
/// return its directory.
inline std::string ensure_dataset() {
  double scale = bench_scale();
  std::uint64_t seed = bench_seed();
  std::string dir = "/tmp/sublet-bench-" + std::to_string(seed) + "-" +
                    std::to_string(static_cast<int>(scale * 1000));
  std::string marker = dir + "/.complete";
  if (std::filesystem::exists(marker)) return dir;

  auto start = std::chrono::steady_clock::now();
  std::cerr << "[bench] generating world (seed=" << seed
            << ", scale=" << scale << ") into " << dir << " ...\n";
  std::filesystem::remove_all(dir);
  sim::WorldConfig config;
  config.seed = seed;
  config.scale = scale;
  sim::World world = sim::build_world(config);
  sim::emit_world(world, dir);
  std::ofstream(marker) << "ok\n";
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  std::cerr << "[bench] world ready: " << world.leaves.size() << " leaves, "
            << world.ases.size() << " ASes (" << elapsed << " ms)\n";
  return dir;
}

/// The full measurement run most benches start from.
struct FullRun {
  std::string dir;
  leasing::DatasetBundle bundle;
  sim::GroundTruth truth;
  asgraph::AsGraph graph;
  std::vector<leasing::LeaseInference> results;

  explicit FullRun(leasing::PipelineOptions options = {},
                   asgraph::RelatednessOptions relatedness = {})
      : dir(ensure_dataset()),
        bundle(leasing::load_dataset(dir)),
        truth(sim::GroundTruth::load(dir)),
        graph(&bundle.as_rel, &bundle.as2org, relatedness) {
    auto start = std::chrono::steady_clock::now();
    leasing::Pipeline pipeline(bundle.rib, graph, options);
    for (const whois::WhoisDb& db : bundle.whois) {
      auto partial = pipeline.classify(db);
      results.insert(results.end(), partial.begin(), partial.end());
    }
    auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                       std::chrono::steady_clock::now() - start)
                       .count();
    std::cerr << "[bench] pipeline classified " << results.size()
              << " leaves in " << elapsed << " ms\n";
  }

  std::vector<leasing::LeaseInference> results_for(whois::Rir rir) const {
    std::vector<leasing::LeaseInference> out;
    for (const auto& r : results) {
      if (r.rir == rir) out.push_back(r);
    }
    return out;
  }
};

/// Header line every bench prints first.
inline void print_banner(const std::string& experiment,
                         const std::string& paper_ref) {
  std::cout << "==============================================================\n"
            << experiment << "\n"
            << "reproduces: " << paper_ref << "\n"
            << "(synthetic world at ~1/10 paper scale; compare shapes and\n"
            << " percentages, not absolute counts — see EXPERIMENTS.md)\n"
            << "==============================================================\n";
}

}  // namespace sublet::bench
