// Geolocation consistency — §8's anecdote: leased prefixes geolocate all
// over the map because databases track the lessee with different lags
// ("prefixes on the IPXO marketplace geolocate to four different
// continents according to five geolocation databases").
#include <map>

#include "common.h"
#include "geo/geodb.h"

using namespace sublet;

int main() {
  bench::print_banner(
      "bench_geo_consistency — cross-database geolocation disagreement",
      "§8 discussion (geolocation inconsistency of leased space)");
  bench::FullRun run;
  if (run.bundle.geodbs.empty()) {
    std::cout << "dataset has no geolocation snapshots\n";
    return 0;
  }
  std::cerr << "[bench] " << run.bundle.geodbs.size()
            << " geolocation databases loaded\n";

  std::map<std::size_t, std::size_t> leased_hist, nonleased_hist;
  std::size_t leased_disagree = 0, leased_total = 0;
  std::size_t nonleased_disagree = 0, nonleased_total = 0;
  for (const auto& r : run.results) {
    auto consistency = geo::check_consistency(run.bundle.geodbs, r.prefix);
    if (consistency.countries.empty()) continue;
    if (r.leased()) {
      ++leased_total;
      ++leased_hist[consistency.distinct];
      if (!consistency.consistent()) ++leased_disagree;
    } else {
      ++nonleased_total;
      ++nonleased_hist[consistency.distinct];
      if (!consistency.consistent()) ++nonleased_disagree;
    }
  }

  TextTable table({"Distinct answers across DBs", "Leased", "Non-leased"});
  std::size_t max_distinct = 0;
  for (const auto& [k, v] : leased_hist) max_distinct = std::max(max_distinct, k);
  for (const auto& [k, v] : nonleased_hist) {
    max_distinct = std::max(max_distinct, k);
  }
  for (std::size_t k = 1; k <= max_distinct; ++k) {
    table.add_row({std::to_string(k) + (k == 1 ? " (agree)" : ""),
                   with_commas(leased_hist[k]),
                   with_commas(nonleased_hist[k])});
  }
  std::cout << table.to_string();

  double leased_rate =
      static_cast<double>(leased_disagree) / static_cast<double>(leased_total);
  double nonleased_rate = static_cast<double>(nonleased_disagree) /
                          static_cast<double>(nonleased_total);
  std::cout << "\nDatabases disagree on " << percent(leased_rate)
            << " of leased prefixes vs " << percent(nonleased_rate)
            << " of non-leased ("
            << fixed(nonleased_rate > 0 ? leased_rate / nonleased_rate : 0, 1)
            << "x) — leasing scrambles geolocation.\n";
  return 0;
}
