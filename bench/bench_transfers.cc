// Transfer-market context (§1, §3 — Livadariu et al., Giotsas et al.):
// is leased space disproportionately space that changed hands on the IPv4
// transfer market, and is transferred space more abused?
#include "common.h"

using namespace sublet;

int main() {
  bench::print_banner("bench_transfers — leases on transferred space",
                      "§1/§3 transfer-market context (extension)");
  bench::FullRun run;
  const auto& transfers = run.bundle.transfers;
  std::cerr << "[bench] transfer log: " << transfers.size() << " records\n";
  if (transfers.size() == 0) {
    std::cout << "dataset carries no transfer log\n";
    return 0;
  }

  // Leased vs non-leased leaves inside/outside transferred space.
  std::size_t leased_in = 0, leased_out = 0, other_in = 0, other_out = 0;
  for (const auto& r : run.results) {
    bool inside = transfers.covers(r.prefix);
    if (r.leased()) {
      (inside ? leased_in : leased_out) += 1;
    } else {
      (inside ? other_in : other_out) += 1;
    }
  }
  double lease_rate_in =
      static_cast<double>(leased_in) / (leased_in + other_in);
  double lease_rate_out =
      static_cast<double>(leased_out) / (leased_out + other_out);

  TextTable table({"Sub-allocations", "On transferred space", "Elsewhere"});
  table.add_row({"leased", with_commas(leased_in), with_commas(leased_out)});
  table.add_row({"non-leased", with_commas(other_in), with_commas(other_out)});
  table.add_row({"lease rate", percent(lease_rate_in),
                 percent(lease_rate_out)});
  std::cout << table.to_string();
  std::cout << "\nLeases are "
            << fixed(lease_rate_in / lease_rate_out, 1)
            << "x more common inside transferred blocks — market-active "
               "holders buy space to lease it out.\n\n";

  // Abuse of transferred space (Giotsas et al. 2020's finding).
  std::size_t transferred_routed = 0, transferred_drop = 0;
  std::size_t other_routed = 0, other_drop = 0;
  run.bundle.rib.visit([&](const Prefix& prefix,
                           const bgp::RouteInfo& info) {
    bool listed = false;
    for (Asn origin : info.origins) {
      if (run.bundle.drop.contains(origin)) listed = true;
    }
    if (transfers.covers(prefix)) {
      ++transferred_routed;
      if (listed) ++transferred_drop;
    } else {
      ++other_routed;
      if (listed) ++other_drop;
    }
  });
  double drop_in = static_cast<double>(transferred_drop) / transferred_routed;
  double drop_out = static_cast<double>(other_drop) / other_routed;
  std::cout << "DROP-originated prefixes: " << percent(drop_in)
            << " of routed transferred space vs " << percent(drop_out)
            << " elsewhere (" << fixed(drop_out > 0 ? drop_in / drop_out : 0, 1)
            << "x — Giotsas et al. found transferred space more abused)\n";
  return 0;
}
