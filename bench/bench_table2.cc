// Table 2 — confusion matrix against the curated reference dataset
// (broker positives + residential-ISP negatives), with the §6.2 error
// anatomy: inactive-lease FNs, legacy FNs, subsidiary FPs.
#include "leasing/evaluation.h"

#include "common.h"

using namespace sublet;

int main() {
  bench::print_banner("bench_table2 — evaluation against reference dataset",
                      "Table 2 (§5.3, §6.2, appendix A)");
  bench::FullRun run;

  leasing::ReferenceDataset reference;
  std::size_t broker_prefixes = 0, filtered = 0, direct = 0, fuzzy = 0,
              unmatched = 0;
  for (const whois::WhoisDb& db : run.bundle.whois) {
    auto brokers = run.bundle.brokers.find(db.rir());
    if (brokers == run.bundle.brokers.end()) continue;
    auto match =
        leasing::match_brokers(db, brokers->second, run.bundle.rib);
    for (const Prefix& p : match.prefixes) reference.add(p, true);
    broker_prefixes += match.prefixes.size();
    filtered += match.filtered_not_leased;
    direct += match.direct_matches;
    fuzzy += match.fuzzy_matches;
    unmatched += match.unmatched;
  }
  std::cout << "Broker mapping: " << direct << " direct + " << fuzzy
            << " fuzzy org matches, " << unmatched
            << " unmatched (paper RIPE: 46 direct + 39 manual, 30 "
               "unmatched)\n";
  std::cout << "Broker-managed prefixes kept as positives: "
            << with_commas(broker_prefixes) << " (" << filtered
            << " broker-as-ISP blocks filtered; paper filtered 1,621)\n";

  std::size_t negatives = 0;
  for (const whois::WhoisDb& db : run.bundle.whois) {
    auto orgs = run.bundle.eval_isp_orgs.find(db.rir());
    if (orgs == run.bundle.eval_isp_orgs.end()) continue;
    auto tree = whois::AllocationTree::build(db);
    for (const Prefix& p :
         leasing::isp_negatives(db, orgs->second, tree, run.bundle.rib)) {
      reference.add(p, false);
      ++negatives;
    }
  }
  std::cout << "Residential-ISP negatives: " << with_commas(negatives)
            << " (paper: 5,378)\n\n";

  auto m = leasing::evaluate(run.results, reference);
  TextTable table({"", "Inferred Lease", "Inferred Non-lease", "Metric"});
  table.add_row({"Actual Lease", with_commas(m.tp) + " (TP)",
                 with_commas(m.fn) + " (FN)",
                 "Recall " + fixed(m.recall(), 2)});
  table.add_row({"Actual Non-lease", with_commas(m.fp) + " (FP)",
                 with_commas(m.tn) + " (TN)",
                 "Specificity " + fixed(m.specificity(), 2)});
  table.add_row({"", "Precision " + fixed(m.precision(), 2),
                 "NPV " + fixed(m.npv(), 2),
                 "Accuracy " + fixed(m.accuracy(), 2)});
  std::cout << table.to_string();
  std::cout << "\nPaper Table 2: precision 0.98, recall 0.82, specificity "
               "0.98, NPV 0.75, accuracy 0.88\n";

  // Error anatomy (§6.2) via ground truth.
  std::size_t fn_inactive = 0, fn_legacy = 0, fp_subsidiary = 0;
  std::unordered_map<Prefix, bool, PrefixHash> predicted;
  for (const auto& r : run.results) predicted[r.prefix] = r.leased();
  for (const auto& [prefix, actual] : reference.labels) {
    auto it = predicted.find(prefix);
    bool said_leased = it != predicted.end() && it->second;
    const sim::TruthRow* row = run.truth.find(prefix);
    if (!row) continue;
    if (actual && !said_leased) {
      if (row->legacy) {
        ++fn_legacy;
      } else if (!row->active) {
        ++fn_inactive;
      }
    }
    if (!actual && said_leased && row->eval_negative) ++fp_subsidiary;
  }
  std::cout << "\nError anatomy: " << fn_inactive
            << " FNs from inactive leases (paper: 1,605), " << fn_legacy
            << " FNs from legacy blocks (paper: 138), " << fp_subsidiary
            << " FPs from hidden ISP subsidiaries (paper: 110 Vodafone)\n";
  return 0;
}
