// Ablation A1 (§7 "Incomplete BGP Data") — how vantage-point coverage
// changes the verdict mix: classify with 1, 2, and all 3 collectors.
// Fewer collectors -> origins go unobserved -> leaves drift toward Unused
// and roots toward dark, shifting group-2/4 leaves into groups 1/3.
#include <filesystem>

#include "common.h"

using namespace sublet;

int main() {
  bench::print_banner(
      "bench_ablation_visibility — collector coverage ablation",
      "§7 'Incomplete BGP Data' limitation");
  std::string dir = bench::ensure_dataset();
  auto bundle = leasing::load_dataset(dir);
  auto truth = sim::GroundTruth::load(dir);
  asgraph::AsGraph graph(&bundle.as_rel, &bundle.as2org);

  // Group the dump files (rib.<collector>.t<day>.mrt) by collector.
  std::map<std::string, std::vector<std::string>> by_collector;
  for (const auto& entry :
       std::filesystem::directory_iterator(dir + "/bgp")) {
    if (entry.path().extension() != ".mrt") continue;
    std::string name = entry.path().filename().string();
    auto first_dot = name.find('.');
    auto second_dot = name.find('.', first_dot + 1);
    by_collector[name.substr(first_dot + 1, second_dot - first_dot - 1)]
        .push_back(entry.path().string());
  }

  TextTable table({"Collectors", "Routed pfx", "Unused", "Leased",
                   "Lease recall vs truth", "Lease precision vs truth"});
  std::size_t use = 0;
  for (auto it = by_collector.begin(); it != by_collector.end(); ++it) {
    ++use;
    bgp::Rib rib;
    auto stop = by_collector.begin();
    std::advance(stop, use);
    for (auto jt = by_collector.begin(); jt != stop; ++jt) {
      for (const std::string& file : jt->second) {
        if (auto err = rib.add_file(file)) {
          std::cerr << err->to_string() << "\n";
          return 1;
        }
      }
    }
    leasing::Pipeline pipeline(rib, graph);
    std::vector<leasing::LeaseInference> results;
    for (const whois::WhoisDb& db : bundle.whois) {
      auto partial = pipeline.classify(db);
      results.insert(results.end(), partial.begin(), partial.end());
    }
    auto counts = leasing::Pipeline::count_groups(results);

    std::size_t tp = 0, fp = 0, truth_active = 0;
    for (const auto& r : results) {
      if (!r.leased()) continue;
      const sim::TruthRow* row = truth.find(r.prefix);
      (row && row->is_leased) ? ++tp : ++fp;
    }
    for (const auto& row : truth.rows()) {
      if (row.is_leased && row.active && !row.legacy) ++truth_active;
    }
    table.add_row({std::to_string(use), with_commas(rib.prefix_count()),
                   with_commas(counts.unused), with_commas(counts.leased()),
                   percent(static_cast<double>(tp) / truth_active),
                   percent(static_cast<double>(tp) / (tp + fp))});
  }
  std::cout << table.to_string();
  std::cout << "\nExpectation: more collectors -> fewer Unused verdicts and "
               "higher recall; the union view is what the paper uses "
               "(RouteViews + RIS over 15 days).\n";
  return 0;
}
