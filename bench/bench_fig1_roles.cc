// Figure 1 — the IP-leasing business-model taxonomy: for every inferred
// lease, identify the holder / facilitator / originator parties and the
// acquisition path (brokered vs direct; self-facilitated holders).
#include "leasing/ecosystem.h"

#include <set>

#include "common.h"

using namespace sublet;

int main() {
  bench::print_banner("bench_fig1_roles — business-party taxonomy",
                      "Figure 1 (§2.3) + top facilitators/originators (§6.3)");
  bench::FullRun run;
  leasing::Ecosystem eco(run.results, &run.bundle.as2org);

  auto roles = eco.roles();
  std::set<std::string> holders, facilitators;
  std::set<std::uint32_t> originators;
  std::size_t brokered = 0, self_facilitated = 0;
  for (const auto& role : roles) {
    holders.insert(role.holder);
    if (!role.facilitator.empty()) {
      facilitators.insert(role.facilitator);
      ++brokered;
    }
    for (Asn asn : role.originators) originators.insert(asn.value());
    if (role.self_facilitated) ++self_facilitated;
  }

  std::cout << "Inferred leases:            " << with_commas(roles.size())
            << "\n";
  std::cout << "Distinct IP holders:        " << with_commas(holders.size())
            << "\n";
  std::cout << "Distinct facilitators:      "
            << with_commas(facilitators.size()) << "\n";
  std::cout << "Distinct originators:       "
            << with_commas(originators.size())
            << " (paper: 9,217 for 47,318 leases)\n";
  std::cout << "Self-facilitated leases:    " << with_commas(self_facilitated)
            << " (" << percent(static_cast<double>(self_facilitated) /
                               static_cast<double>(roles.size()))
            << ", holder facilitates its own leasing — §2.3)\n\n";

  std::cout << "Top facilitators per RIR (IPXO should top several):\n";
  TextTable fac({"RIR", "Facilitator handle", "Leases"});
  for (whois::Rir rir : whois::kAllRirs) {
    for (const auto& f : eco.top_facilitators(rir, 3)) {
      fac.add_row({std::string(rir_name(rir)), f.name, with_commas(f.count)});
    }
  }
  std::cout << fac.to_string() << "\n";

  std::cout << "Top originators of leased prefixes (global):\n";
  TextTable orig({"Originator", "Leased prefixes"});
  for (const auto& o : eco.top_originators(5)) {
    orig.add_row({o.name, with_commas(o.count)});
  }
  std::cout << orig.to_string();
  return 0;
}
