// Figure 3 — RPKI and BGP behavior of an IPXO-managed prefix across
// successive leases, with AS0 ROAs between leases.
#include "simnet/timeline_scenario.h"

#include "common.h"

using namespace sublet;

int main() {
  bench::print_banner("bench_fig3_timeline — lease history of one prefix",
                      "Figure 3 (§6.4-§6.5)");

  auto scenario = sim::build_timeline_scenario();

  // Drive the BGP side through the real wire path: write the history as an
  // MRT BGP4MP updates file, replay it, and reconstruct from the tracker.
  std::string updates_path = "/tmp/sublet-fig3-updates.mrt";
  sim::write_updates_mrt(scenario, updates_path);
  bgp::OriginTracker tracker;
  auto applied = bgp::replay_updates_file(updates_path, tracker);
  if (!applied) {
    std::cerr << applied.error().to_string() << "\n";
    return 1;
  }
  auto bgp_history =
      leasing::LeaseTimeline::history_from_tracker(tracker, scenario.prefix);

  auto events = leasing::LeaseTimeline::collect(
      scenario.prefix, scenario.archive, bgp_history, scenario.start,
      scenario.end);

  std::cout << "Prefix " << scenario.prefix.to_string() << ", "
            << scenario.archive.snapshot_count()
            << " monthly RPKI snapshots + " << *applied
            << " BGP update messages replayed from MRT\n\n";
  std::cout << leasing::LeaseTimeline::render(events, scenario.start,
                                              scenario.end)
            << "\n";

  auto periods = leasing::LeaseTimeline::segment(events);
  TextTable table({"Period", "ASN", "From (unix)", "To (unix)", "Kind"});
  for (std::size_t i = 0; i < periods.size(); ++i) {
    table.add_row({std::to_string(i + 1), periods[i].asn.to_string(),
                   std::to_string(periods[i].start),
                   std::to_string(periods[i].end),
                   periods[i].is_as0_gap() ? "AS0 quarantine" : "lease"});
  }
  std::cout << table.to_string();

  std::size_t matched = 0;
  for (std::size_t i = 0;
       i < periods.size() && i < scenario.truth.size(); ++i) {
    if (periods[i].asn == scenario.truth[i].asn) ++matched;
  }
  std::cout << "\nRecovered " << matched << "/" << scenario.truth.size()
            << " scripted lease periods (incl. AS0 gaps — paper §6.5: IPXO "
               "uses AS0 between leases)\n";
  return 0;
}
