// P1 — pipeline performance: generation, parse, classification, snapshot,
// and serving throughput as the world grows (google-benchmark).
#include <benchmark/benchmark.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <map>
#include <span>
#include <thread>
#include <type_traits>

#include "asgraph/as_graph.h"
#include "catalog/catalog.h"
#include "catalog/delta.h"
#include "leasing/dataset.h"
#include "leasing/pipeline.h"
#include "loadgen/loadgen.h"
#include "leasing/report.h"
#include "memstats.h"
#include "mrt/rib_file.h"
#include "netbase/legacy_prefix_trie.h"
#include "netbase/prefix_trie.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/client.h"
#include "serve/engine_state.h"
#include "serve/query_engine.h"
#include "serve/server.h"
#include "simnet/builder.h"
#include "simnet/emit.h"
#include "snapshot/snapshot.h"
#include "snapshot/writer.h"
#include "util/rng.h"
#include "whoisdb/parse.h"

namespace {

using namespace sublet;

sim::WorldConfig config_for(int permille) {
  sim::WorldConfig config;
  config.seed = 77;
  config.scale = permille / 1000.0;
  return config;
}

/// Emit a world once per scale and cache the directory for the process.
/// The directory name carries the config seed: a cached world emitted by
/// an older run with a different seed must never be silently reused.
const std::string& dataset_for(int permille) {
  static std::map<int, std::string> cache;
  auto it = cache.find(permille);
  if (it != cache.end()) return it->second;
  auto config = config_for(permille);
  std::string dir = "/tmp/sublet-perf-" + std::to_string(config.seed) + "-" +
                    std::to_string(permille);
  if (!std::filesystem::exists(dir + "/.complete")) {
    std::filesystem::remove_all(dir);
    sim::emit_world(sim::build_world(config), dir);
    std::ofstream(dir + "/.complete") << "ok\n";
  }
  return cache.emplace(permille, dir).first->second;
}

// ---------------------------------------------------------------------------
// Trie microbenchmarks: the arena Patricia trie (PrefixTrie) vs the retained
// one-node-per-bit reference (LegacyPrefixTrie). Same deterministic corpus
// and query stream for both, so rows are directly comparable: build cost,
// exact find, covering walk, and per-structure node memory at 10k/100k/1M
// entries (legacy capped at 100k — a million entries costs it ~30M heap
// nodes).
// ---------------------------------------------------------------------------

/// Deterministic allocation-tree-shaped corpus: /8../24 entries plus /32
/// queries that land inside corpus entries so covering walks do real work.
struct TrieWorkload {
  std::vector<std::pair<Prefix, int>> entries;
  std::vector<Prefix> queries;
};

const TrieWorkload& trie_workload(std::size_t n) {
  static std::map<std::size_t, TrieWorkload> cache;
  auto it = cache.find(n);
  if (it != cache.end()) return it->second;
  Rng rng(4242);
  TrieWorkload w;
  w.entries.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    int len = static_cast<int>(rng.next_in(8, 24));
    auto addr = Ipv4Addr(static_cast<std::uint32_t>(rng.next_u64()));
    w.entries.emplace_back(*Prefix::make(addr, len), static_cast<int>(i));
  }
  w.queries.reserve(8192);
  for (std::size_t q = 0; q < 8192; ++q) {
    const Prefix& base =
        w.entries[static_cast<std::size_t>(rng.next_u64()) % n].first;
    std::uint32_t offset = static_cast<std::uint32_t>(
        rng.next_u64() & (base.size() - 1));
    w.queries.push_back(
        *Prefix::make(Ipv4Addr(base.network().value() + offset), 32));
  }
  return cache.emplace(n, std::move(w)).first->second;
}

template <typename Trie>
const Trie& built_trie(std::size_t n) {
  static std::map<std::size_t, Trie> cache;
  auto it = cache.find(n);
  if (it != cache.end()) return it->second;
  Trie trie;
  for (const auto& [prefix, value] : trie_workload(n).entries) {
    trie.insert(prefix, value);
  }
  return cache.emplace(n, std::move(trie)).first->second;
}

/// Lookup benchmarks measure each trie as deployed: the arena trie is
/// freeze-built (the AllocationTree production path, which lays nodes out
/// in DFS pre-order for locality), the legacy trie only has incremental
/// insert.
template <typename Trie>
const Trie& lookup_trie(std::size_t n) {
  if constexpr (std::is_same_v<Trie, PrefixTrie<int>>) {
    static std::map<std::size_t, Trie> cache;
    auto it = cache.find(n);
    if (it == cache.end()) {
      it = cache.emplace(n, Trie::freeze(trie_workload(n).entries)).first;
    }
    return it->second;
  } else {
    return built_trie<Trie>(n);
  }
}

template <typename Trie>
void trie_build_incremental(benchmark::State& state) {
  const auto& workload = trie_workload(static_cast<std::size_t>(state.range(0)));
  std::size_t nodes = 0, bytes = 0;
  for (auto _ : state) {
    Trie trie;
    for (const auto& [prefix, value] : workload.entries) {
      trie.insert(prefix, value);
    }
    nodes = trie.node_count();
    bytes = trie.memory_bytes();
    benchmark::DoNotOptimize(trie);
  }
  state.counters["nodes"] = static_cast<double>(nodes);
  state.counters["mem_mb"] = static_cast<double>(bytes) / 1e6;
  state.counters["peak_rss_mb"] = bench::peak_rss_megabytes();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(workload.entries.size()));
}

void BM_TrieBuildArena(benchmark::State& state) {
  trie_build_incremental<PrefixTrie<int>>(state);
}
BENCHMARK(BM_TrieBuildArena)
    ->Arg(10000)->Arg(100000)->Arg(1000000)
    ->Unit(benchmark::kMillisecond);

void BM_TrieBuildLegacy(benchmark::State& state) {
  trie_build_incremental<LegacyPrefixTrie<int>>(state);
}
BENCHMARK(BM_TrieBuildLegacy)
    ->Arg(10000)->Arg(100000)
    ->Unit(benchmark::kMillisecond);

void BM_TrieBuildFreeze(benchmark::State& state) {
  const auto& workload = trie_workload(static_cast<std::size_t>(state.range(0)));
  std::size_t nodes = 0, bytes = 0;
  for (auto _ : state) {
    auto trie = PrefixTrie<int>::freeze(workload.entries);
    nodes = trie.node_count();
    bytes = trie.memory_bytes();
    benchmark::DoNotOptimize(trie);
  }
  state.counters["nodes"] = static_cast<double>(nodes);
  state.counters["mem_mb"] = static_cast<double>(bytes) / 1e6;
  state.counters["peak_rss_mb"] = bench::peak_rss_megabytes();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(workload.entries.size()));
}
BENCHMARK(BM_TrieBuildFreeze)
    ->Arg(10000)->Arg(100000)->Arg(1000000)
    ->Unit(benchmark::kMillisecond);

template <typename Trie>
void trie_exact_find(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto& workload = trie_workload(n);
  const Trie& trie = lookup_trie<Trie>(n);
  std::size_t i = 0;
  for (auto _ : state) {
    const int* hit = trie.find(workload.entries[i % n].first);
    benchmark::DoNotOptimize(hit);
    ++i;
  }
  state.counters["peak_rss_mb"] = bench::peak_rss_megabytes();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_TrieExactFindArena(benchmark::State& state) {
  trie_exact_find<PrefixTrie<int>>(state);
}
BENCHMARK(BM_TrieExactFindArena)->Arg(10000)->Arg(100000)->Arg(1000000);

void BM_TrieExactFindLegacy(benchmark::State& state) {
  trie_exact_find<LegacyPrefixTrie<int>>(state);
}
BENCHMARK(BM_TrieExactFindLegacy)->Arg(10000)->Arg(100000);

/// One most-specific + one least-specific covering walk per iteration on a
/// /32 query — the shape of the paper's step-4 lookups (exact origin plus
/// root-origin fallback).
template <typename Trie>
void trie_covering_walk(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto& workload = trie_workload(n);
  const Trie& trie = lookup_trie<Trie>(n);
  std::size_t i = 0;
  for (auto _ : state) {
    const Prefix& q = workload.queries[i % workload.queries.size()];
    auto most = trie.most_specific_covering(q);
    auto least = trie.least_specific_covering(q);
    benchmark::DoNotOptimize(most);
    benchmark::DoNotOptimize(least);
    ++i;
  }
  state.counters["nodes"] = static_cast<double>(trie.node_count());
  state.counters["mem_mb"] = static_cast<double>(trie.memory_bytes()) / 1e6;
  state.counters["peak_rss_mb"] = bench::peak_rss_megabytes();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_TrieCoveringWalkArena(benchmark::State& state) {
  trie_covering_walk<PrefixTrie<int>>(state);
}
BENCHMARK(BM_TrieCoveringWalkArena)->Arg(10000)->Arg(100000)->Arg(1000000);

void BM_TrieCoveringWalkLegacy(benchmark::State& state) {
  trie_covering_walk<LegacyPrefixTrie<int>>(state);
}
BENCHMARK(BM_TrieCoveringWalkLegacy)->Arg(10000)->Arg(100000);

// ---------------------------------------------------------------------------
// DIR-24-8 stride table (docs/PERF.md): single-address LPM through the flat
// table, and the prefetched batch entry point vs a plain lookup loop.
// ---------------------------------------------------------------------------

const PrefixTrie<int>& stride_trie(std::size_t n) {
  static std::map<std::size_t, PrefixTrie<int>> cache;
  auto it = cache.find(n);
  if (it == cache.end()) {
    it = cache.emplace(n, PrefixTrie<int>::freeze(trie_workload(n).entries,
                                                  TrieStride::kBuild))
             .first;
  }
  return it->second;
}

std::vector<std::uint32_t> stride_addrs(std::size_t n) {
  std::vector<std::uint32_t> addrs;
  const auto& queries = trie_workload(n).queries;
  addrs.reserve(queries.size());
  for (const Prefix& q : queries) addrs.push_back(q.network().value());
  return addrs;
}

/// Single-address LPM through the stride table. The ">= 5M lookups/s
/// single-thread" acceptance bar is enforced here: the rate is re-measured
/// outside the benchmark loop (best of three passes over the query stream)
/// so the judgment is not polluted by per-iteration timer overhead.
void BM_LpmStride(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const PrefixTrie<int>& trie = stride_trie(n);
  const std::vector<std::uint32_t> addrs = stride_addrs(n);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(trie.lpm_handle(addrs[i % addrs.size()]));
    ++i;
  }
  using clock = std::chrono::steady_clock;
  constexpr int kPasses = 16;  // ~128k lookups per timed sample
  double best_ns = 1e18;
  for (int round = 0; round < 3; ++round) {
    std::uint64_t sink = 0;
    auto t0 = clock::now();
    for (int pass = 0; pass < kPasses; ++pass) {
      for (std::uint32_t addr : addrs) sink += trie.lpm_handle(addr);
    }
    auto t1 = clock::now();
    benchmark::DoNotOptimize(sink);
    best_ns = std::min(
        best_ns,
        static_cast<double>(std::chrono::nanoseconds(t1 - t0).count()));
  }
  const double lookups = static_cast<double>(kPasses) *
                         static_cast<double>(addrs.size());
  const double rate = lookups / (best_ns / 1e9);
  state.counters["lookups_per_s"] = rate;
  state.counters["mem_mb"] = static_cast<double>(trie.memory_bytes()) / 1e6;
  state.counters["peak_rss_mb"] = bench::peak_rss_megabytes();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  if (rate < 5e6) {
    state.SkipWithError("stride LPM is under 5M lookups/s single-thread");
  }
}
BENCHMARK(BM_LpmStride)->Arg(100000)->Arg(1000000);

/// Batched prefetched lookups vs the same addresses through the
/// single-lookup loop. The speedup counter is a median of paired rounds
/// (alternating order) so scheduler noise on a small box hits both sides
/// of each pair; the acceptance check — batch must not be slower — runs at
/// the largest batch size, where prefetch has the most misses to hide.
void BM_LpmBatch(benchmark::State& state) {
  const std::size_t batch = static_cast<std::size_t>(state.range(0));
  const PrefixTrie<int>& trie = stride_trie(100000);
  // A ~1M-address uniform pool touches ~1M distinct first-level table
  // lines (~64 MiB) as the samples stream through it — far beyond L2, so
  // the timed passes measure the cache-miss regime batching exists for,
  // not a loop over a few thousand hot lines (where a prefetch is pure
  // overhead and always loses).
  constexpr std::size_t kPool = std::size_t{1} << 20;
  static std::vector<std::uint32_t> pool;
  if (pool.empty()) {
    pool.resize(kPool);
    Rng rng(314159);
    for (auto& a : pool) a = static_cast<std::uint32_t>(rng.next_u64());
  }
  std::vector<std::uint32_t> out(batch);
  std::size_t cursor = 0;
  auto next_span = [&] {
    if (cursor + batch > kPool) cursor = 0;
    std::span<const std::uint32_t> s(pool.data() + cursor, batch);
    cursor += batch;
    return s;
  };
  for (auto _ : state) {
    trie.lookup_batch(next_span(), out);
    benchmark::DoNotOptimize(out.data());
  }
  using clock = std::chrono::steady_clock;
  // Each timed sample resolves 64k addresses from a fresh pool region;
  // chunking keeps the per-call span at the benchmarked batch size.
  constexpr std::size_t kLookupsPerSample = std::size_t{1} << 16;
  const std::size_t chunks = kLookupsPerSample / batch;
  auto batch_ns = [&] {
    auto t0 = clock::now();
    for (std::size_t c = 0; c < chunks; ++c) {
      trie.lookup_batch(next_span(), out);
    }
    auto t1 = clock::now();
    benchmark::DoNotOptimize(out.data());
    return static_cast<double>(std::chrono::nanoseconds(t1 - t0).count());
  };
  auto single_ns = [&] {
    auto t0 = clock::now();
    for (std::size_t c = 0; c < chunks; ++c) {
      std::span<const std::uint32_t> s = next_span();
      for (std::size_t j = 0; j < batch; ++j) {
        out[j] = trie.lpm_handle(s[j]);
      }
    }
    auto t1 = clock::now();
    benchmark::DoNotOptimize(out.data());
    return static_cast<double>(std::chrono::nanoseconds(t1 - t0).count());
  };
  constexpr int kRounds = 41;
  std::vector<double> ratios;
  double best_batch = 1e18, best_single = 1e18;
  for (int round = 0; round < kRounds; ++round) {
    double b, s;
    if (round % 2 == 0) {
      b = batch_ns();
      s = single_ns();
    } else {
      s = single_ns();
      b = batch_ns();
    }
    ratios.push_back(s / b);
    best_batch = std::min(best_batch, b);
    best_single = std::min(best_single, s);
  }
  std::sort(ratios.begin(), ratios.end());
  const double speedup = ratios[ratios.size() / 2];
  const double count = static_cast<double>(kLookupsPerSample);
  state.counters["batch_ns_per_lookup"] = best_batch / count;
  state.counters["single_ns_per_lookup"] = best_single / count;
  state.counters["batch_speedup"] = speedup;
  state.counters["peak_rss_mb"] = bench::peak_rss_megabytes();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
  if (state.range(0) >= 4096 && speedup < 1.0) {
    state.SkipWithError("batched lookup is slower than the single loop");
  }
}
BENCHMARK(BM_LpmBatch)->Arg(256)->Arg(4096);

void BM_WorldGeneration(benchmark::State& state) {
  auto config = config_for(static_cast<int>(state.range(0)));
  std::size_t leaves = 0;
  for (auto _ : state) {
    sim::World world = sim::build_world(config);
    leaves = world.leaves.size();
    benchmark::DoNotOptimize(world);
  }
  state.counters["leaves"] = static_cast<double>(leaves);
  state.counters["peak_rss_mb"] = bench::peak_rss_megabytes();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(leaves));
}
BENCHMARK(BM_WorldGeneration)->Arg(20)->Arg(50)->Arg(100)
    ->Unit(benchmark::kMillisecond);

/// Args: {permille, threads}.
void BM_WhoisParse(benchmark::State& state) {
  std::string path =
      dataset_for(static_cast<int>(state.range(0))) + "/whois/ripe.db";
  auto threads = static_cast<unsigned>(state.range(1));
  std::size_t blocks = 0;
  for (auto _ : state) {
    auto db = whois::load_whois_file(path, whois::Rir::kRipe, nullptr,
                                     threads);
    blocks = db.block_count();
    benchmark::DoNotOptimize(db);
  }
  state.counters["blocks"] = static_cast<double>(blocks);
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["peak_rss_mb"] = bench::peak_rss_megabytes();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(blocks));
}
BENCHMARK(BM_WhoisParse)
    ->Args({20, 1})
    ->Args({100, 1})
    ->Args({100, 2})
    ->Args({100, 4})
    ->Unit(benchmark::kMillisecond);

void BM_MrtParse(benchmark::State& state) {
  std::string path =
      dataset_for(static_cast<int>(state.range(0))) + "/bgp/rib.0.t0.mrt";
  std::size_t bytes = std::filesystem::file_size(path);
  std::size_t prefixes = 0;
  for (auto _ : state) {
    auto snapshot = mrt::read_rib_file(path);
    prefixes = snapshot ? snapshot->records.size() : 0;
    benchmark::DoNotOptimize(snapshot);
  }
  state.counters["prefixes"] = static_cast<double>(prefixes);
  state.counters["peak_rss_mb"] = bench::peak_rss_megabytes();
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_MrtParse)->Arg(20)->Arg(100)->Unit(benchmark::kMillisecond);

/// Args: {permille, threads}.
void BM_Classify(benchmark::State& state) {
  std::string dir = dataset_for(static_cast<int>(state.range(0)));
  auto bundle = leasing::load_dataset(dir);
  asgraph::AsGraph graph(&bundle.as_rel, &bundle.as2org);
  leasing::PipelineOptions options;
  options.threads = static_cast<unsigned>(state.range(1));
  std::size_t classified = 0;
  for (auto _ : state) {
    leasing::Pipeline pipeline(bundle.rib, graph, options);
    classified = 0;
    for (const whois::WhoisDb& db : bundle.whois) {
      classified += pipeline.classify(db).size();
    }
    benchmark::DoNotOptimize(classified);
  }
  state.counters["leaves"] = static_cast<double>(classified);
  state.counters["threads"] = static_cast<double>(options.threads);
  state.counters["peak_rss_mb"] = bench::peak_rss_megabytes();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(classified));
}
BENCHMARK(BM_Classify)
    ->Args({20, 1})
    ->Args({50, 1})
    ->Args({100, 1})
    ->Args({100, 2})
    ->Args({100, 4})
    ->Unit(benchmark::kMillisecond);

/// Args: {permille, threads} — the whole bundle load (five WHOIS files +
/// all RIB collectors as concurrent tasks).
void BM_DatasetLoad(benchmark::State& state) {
  std::string dir = dataset_for(static_cast<int>(state.range(0)));
  leasing::LoadOptions options;
  options.threads = static_cast<unsigned>(state.range(1));
  std::size_t prefixes = 0;
  for (auto _ : state) {
    auto bundle = leasing::load_dataset(dir, options);
    prefixes = bundle.rib.prefix_count();
    benchmark::DoNotOptimize(bundle);
  }
  state.counters["prefixes"] = static_cast<double>(prefixes);
  state.counters["threads"] = static_cast<double>(options.threads);
  state.counters["peak_rss_mb"] = bench::peak_rss_megabytes();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_DatasetLoad)
    ->Args({100, 1})
    ->Args({100, 4})
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Snapshot + serving: pack/load throughput of the binary inference snapshot
// (vs re-parsing the CSV artifact) and loopback queries/sec as the server's
// handler-thread count grows (docs/SERVING.md).
// ---------------------------------------------------------------------------

/// Deterministic classified-world-shaped records: unique /24 leaves with
/// realistically repetitive org/netname/maintainer strings.
std::vector<leasing::LeaseInference> synthetic_inferences(std::size_t n) {
  std::vector<leasing::LeaseInference> out;
  out.reserve(n);
  Rng rng(20240406);
  for (std::size_t i = 0; i < n; ++i) {
    leasing::LeaseInference r;
    r.prefix = *Prefix::make(
        Ipv4Addr(static_cast<std::uint32_t>(i) << 8), 24);
    r.root_prefix = *Prefix::make(
        Ipv4Addr((static_cast<std::uint32_t>(i) << 8) & 0xFFFF0000u), 16);
    r.rir = static_cast<whois::Rir>(i % 5);
    r.group = leasing::kAllInferenceGroups[rng.next_u64() %
                                           leasing::kAllInferenceGroups
                                               .size()];
    r.holder_org = "ORG-BENCH-" + std::to_string(rng.next_u64() % 997);
    r.holder_asns = {Asn(static_cast<std::uint32_t>(
        64512 + rng.next_u64() % 1024))};
    r.leaf_origins = {Asn(static_cast<std::uint32_t>(
        65000 + rng.next_u64() % 512))};
    r.root_origins = r.holder_asns;
    r.leaf_maintainers = {"MNT-" + std::to_string(rng.next_u64() % 53)};
    r.netname = "NET-" + std::to_string(rng.next_u64() % 499);
    out.push_back(std::move(r));
  }
  return out;
}

struct SnapshotBenchFiles {
  std::string csv;
  std::string snap;
};

/// Write the CSV artifact and the snapshot once per (count, format version)
/// and cache them for the process, mirroring dataset_for().
const SnapshotBenchFiles& snapshot_bench_files(std::size_t n) {
  static std::map<std::size_t, SnapshotBenchFiles> cache;
  auto it = cache.find(n);
  if (it != cache.end()) return it->second;
  std::string base = "/tmp/sublet-snapbench-v" +
                     std::to_string(snapshot::kVersion) + "-" +
                     std::to_string(n);
  SnapshotBenchFiles files{base + ".csv", base + ".snap"};
  if (!std::filesystem::exists(base + ".complete")) {
    auto inferences = synthetic_inferences(n);
    leasing::save_inferences_csv(files.csv, inferences);
    snapshot::write_snapshot_file(files.snap, inferences);
    std::ofstream(base + ".complete") << "ok\n";
  }
  return cache.emplace(n, std::move(files)).first->second;
}

void BM_SnapshotWrite(benchmark::State& state) {
  auto inferences = synthetic_inferences(
      static_cast<std::size_t>(state.range(0)));
  std::size_t bytes = 0;
  for (auto _ : state) {
    auto encoded = snapshot::encode_snapshot(inferences);
    bytes = encoded.size();
    benchmark::DoNotOptimize(encoded);
  }
  state.counters["snap_mb"] = static_cast<double>(bytes) / 1e6;
  state.counters["peak_rss_mb"] = bench::peak_rss_megabytes();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(inferences.size()));
}
BENCHMARK(BM_SnapshotWrite)
    ->Arg(10000)->Arg(100000)
    ->Unit(benchmark::kMillisecond);

/// Loading the snapshot must beat re-parsing the CSV artifact by >= 10x at
/// 100k records — the acceptance bar for the serving layer. The counters
/// record both sides so BENCH_perf_pipeline.json carries the margin.
void BM_SnapshotLoadVsCsv(benchmark::State& state) {
  const auto& files =
      snapshot_bench_files(static_cast<std::size_t>(state.range(0)));
  std::size_t records = 0;
  for (auto _ : state) {
    auto snap = snapshot::Snapshot::open(files.snap,
                                         snapshot::Snapshot::Mode::kRead);
    if (!snap) {
      state.SkipWithError("snapshot load failed");
      return;
    }
    records = snap->record_count();
    benchmark::DoNotOptimize(snap);
  }
  using clock = std::chrono::steady_clock;
  // Best-of-three wall times for each side, measured outside the benchmark
  // loop so the ratio is not polluted by timer overhead.
  double snap_ns = 1e18, csv_ns = 1e18;
  for (int round = 0; round < 3; ++round) {
    auto t0 = clock::now();
    auto snap = snapshot::Snapshot::open(files.snap,
                                         snapshot::Snapshot::Mode::kRead);
    auto t1 = clock::now();
    benchmark::DoNotOptimize(snap);
    snap_ns = std::min(
        snap_ns, static_cast<double>(
                     std::chrono::nanoseconds(t1 - t0).count()));
    auto t2 = clock::now();
    auto parsed = leasing::load_inferences_csv(files.csv);
    auto t3 = clock::now();
    if (!parsed || parsed->size() != records) {
      state.SkipWithError("CSV artifact failed to parse");
      return;
    }
    benchmark::DoNotOptimize(parsed);
    csv_ns = std::min(
        csv_ns, static_cast<double>(
                    std::chrono::nanoseconds(t3 - t2).count()));
  }
  double speedup = csv_ns / snap_ns;
  state.counters["records"] = static_cast<double>(records);
  state.counters["csv_parse_ms"] = csv_ns / 1e6;
  state.counters["snap_load_ms"] = snap_ns / 1e6;
  state.counters["speedup_vs_csv"] = speedup;
  state.counters["peak_rss_mb"] = bench::peak_rss_megabytes();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(records));
  if (state.range(0) >= 100000 && speedup < 10.0) {
    state.SkipWithError("snapshot load is not >= 10x faster than CSV parse");
  }
}
BENCHMARK(BM_SnapshotLoadVsCsv)
    ->Arg(10000)->Arg(100000)
    ->Unit(benchmark::kMillisecond);

struct CatalogBenchFixture {
  std::string dir;          ///< catalog directory (1 full + 9 deltas)
  std::string full_latest;  ///< full snapshot of the newest epoch
  std::vector<std::uint32_t> epochs;
  std::string probe_prefix;  ///< flips group every epoch (HISTORY probe)
};

/// Build a ten-epoch catalog once per (count, format version) and cache it
/// for the process: epoch 0 is the full anchor, each later epoch mutates
/// ~1% of the records plus the probe record, so every append stays under
/// the delta-size guard. A standalone full snapshot of the newest epoch is
/// written next to it for the delta-apply-vs-full-load comparison.
const CatalogBenchFixture& catalog_bench_fixture(std::size_t n) {
  static std::map<std::size_t, CatalogBenchFixture> cache;
  auto it = cache.find(n);
  if (it != cache.end()) return it->second;
  constexpr std::uint32_t kEpoch0 = 1704067200;  // 2024-01-01
  constexpr std::uint32_t kStep = 2592000;       // 30 days
  constexpr int kEpochs = 10;
  std::string base = "/tmp/sublet-catbench-v" +
                     std::to_string(snapshot::kVersion) + "-" +
                     std::to_string(n);
  CatalogBenchFixture fx;
  fx.dir = base + ".catalog";
  fx.full_latest = base + "-latest.snap";
  for (int k = 0; k < kEpochs; ++k) {
    fx.epochs.push_back(kEpoch0 + static_cast<std::uint32_t>(k) * kStep);
  }
  fx.probe_prefix =
      Prefix::make(Ipv4Addr(1u << 8), 24)->to_string();  // record 1
  if (!std::filesystem::exists(base + ".complete")) {
    std::filesystem::remove_all(fx.dir);
    auto inferences = synthetic_inferences(n);
    if (!catalog::catalog_init(fx.dir, fx.epochs[0], inferences)) {
      std::abort();
    }
    for (int k = 1; k < kEpochs; ++k) {
      for (std::size_t i = static_cast<std::size_t>(k); i < inferences.size();
           i += 100) {
        auto& r = inferences[i];
        r.group = r.group == leasing::InferenceGroup::kLeasedNoRoot
                      ? leasing::InferenceGroup::kIspCustomer
                      : leasing::InferenceGroup::kLeasedNoRoot;
        r.netname = "NET-E" + std::to_string(k);
      }
      inferences[1].group = (k % 2) != 0
                                ? leasing::InferenceGroup::kLeasedNoRoot
                                : leasing::InferenceGroup::kIspCustomer;
      if (!catalog::catalog_append(fx.dir, fx.epochs[k], inferences)) {
        std::abort();
      }
    }
    snapshot::write_snapshot_file(
        fx.full_latest, catalog::canonical_inferences(std::move(inferences)));
    std::ofstream(base + ".complete") << "ok\n";
  }
  return cache.emplace(n, std::move(fx)).first->second;
}

/// Cold-chain materialization of the newest catalog epoch: Catalog::open
/// plus materialize() loads the full anchor and applies nine deltas. The
/// counters compare one incremental delta apply (base chain already hot)
/// against a cold full-snapshot EngineState::load of the same epoch; the
/// acceptance bar is delta apply >= 5x faster at 100k records
/// (docs/TIMETRAVEL.md).
void BM_CatalogMaterialize(benchmark::State& state) {
  const auto& fx =
      catalog_bench_fixture(static_cast<std::size_t>(state.range(0)));
  std::size_t records = 0;
  for (auto _ : state) {
    auto cat = catalog::Catalog::open(fx.dir);
    if (!cat) {
      state.SkipWithError("catalog open failed");
      return;
    }
    auto st = (*cat)->materialize(fx.epochs.back());
    if (!st) {
      state.SkipWithError("materialize failed");
      return;
    }
    records = (*st)->snapshot().record_count();
    benchmark::DoNotOptimize(st);
  }
  using clock = std::chrono::steady_clock;
  // Best-of-three wall times for each side, measured outside the benchmark
  // loop: one delta apply on top of a hot base chain vs a cold full load.
  // The apply targets a history epoch — history epochs skip the DIR-24-8
  // stride table by design (CatalogOptions::stride_latest), while the full
  // load is the standard single-snapshot serving path including it, so the
  // ratio states exactly what time travel buys over reloading snapshots.
  double delta_ns = 1e18, full_ns = 1e18;
  for (int round = 0; round < 3; ++round) {
    auto cat = catalog::Catalog::open(fx.dir);
    if (!cat || !(*cat)->materialize(fx.epochs[fx.epochs.size() - 3])) {
      state.SkipWithError("catalog warmup failed");
      return;
    }
    auto t0 = clock::now();
    auto st = (*cat)->materialize(fx.epochs[fx.epochs.size() - 2]);
    auto t1 = clock::now();
    if (!st) {
      state.SkipWithError("delta apply failed");
      return;
    }
    benchmark::DoNotOptimize(st);
    delta_ns = std::min(
        delta_ns,
        static_cast<double>(std::chrono::nanoseconds(t1 - t0).count()));
    auto t2 = clock::now();
    auto full = serve::EngineState::load(fx.full_latest);
    auto t3 = clock::now();
    if (!full || (*full)->snapshot().record_count() != records) {
      state.SkipWithError("full snapshot load failed");
      return;
    }
    benchmark::DoNotOptimize(full);
    full_ns = std::min(
        full_ns,
        static_cast<double>(std::chrono::nanoseconds(t3 - t2).count()));
  }
  double speedup = full_ns / delta_ns;
  state.counters["records"] = static_cast<double>(records);
  state.counters["epochs"] = static_cast<double>(fx.epochs.size());
  state.counters["delta_apply_ms"] = delta_ns / 1e6;
  state.counters["full_load_ms"] = full_ns / 1e6;
  state.counters["delta_speedup"] = speedup;
  state.counters["peak_rss_mb"] = bench::peak_rss_megabytes();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(records));
  if (state.range(0) >= 100000 && speedup < 5.0) {
    state.SkipWithError(
        "delta apply is not >= 5x faster than a cold full-snapshot load");
  }
}
BENCHMARK(BM_CatalogMaterialize)
    ->Arg(10000)->Arg(100000)
    ->Unit(benchmark::kMillisecond);

/// HISTORY replay across the ten-epoch catalog with every epoch hot in
/// the LRU: per-iteration cost is ten exact lookups plus run coalescing
/// in history_json. The probe prefix flips groups every epoch, so the
/// coalescer does maximal work.
void BM_HistoryQuery(benchmark::State& state) {
  const auto& fx =
      catalog_bench_fixture(static_cast<std::size_t>(state.range(0)));
  auto opened = catalog::Catalog::open(
      fx.dir, catalog::CatalogOptions{.lru_capacity = 16});
  if (!opened) {
    state.SkipWithError("catalog open failed");
    return;
  }
  auto source = std::shared_ptr<serve::EpochSource>(std::move(*opened));
  auto initial = source->epoch_at(0);
  if (!initial) {
    state.SkipWithError("latest epoch failed to materialize");
    return;
  }
  serve::QueryServer server(source, std::move(*initial),
                            serve::QueryServer::Options{.port = 0,
                                                        .shards = 1});
  const std::string req = "HISTORY " + fx.probe_prefix;
  std::string warm = server.handle_request(req);  // materializes all epochs
  if (warm.find("\"epochs\":10") == std::string::npos) {
    state.SkipWithError("HISTORY warmup returned unexpected shape");
    return;
  }
  std::size_t bytes = 0;
  for (auto _ : state) {
    std::string resp = server.handle_request(req);
    bytes = resp.size();
    benchmark::DoNotOptimize(resp);
  }
  double transitions = 0;
  if (auto pos = warm.find("\"transitions\":"); pos != std::string::npos) {
    transitions = std::atof(warm.c_str() + pos + 14);
  }
  state.counters["epochs"] = static_cast<double>(fx.epochs.size());
  state.counters["transitions"] = transitions;
  state.counters["resp_bytes"] = static_cast<double>(bytes);
  state.counters["peak_rss_mb"] = bench::peak_rss_megabytes();
  // One HISTORY answer consults every epoch.
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(fx.epochs.size()));
}
BENCHMARK(BM_HistoryQuery)
    ->Arg(10000)->Arg(100000)
    ->Unit(benchmark::kMicrosecond);

/// Arg: server handler threads. Eight loopback clients fan requests at the
/// server; items/sec is end-to-end queries/sec including the TCP hop.
void BM_ServeQueries(benchmark::State& state) {
  const auto& files = snapshot_bench_files(100000);
  auto engine_state = serve::EngineState::load(files.snap);
  if (!engine_state) {
    state.SkipWithError("snapshot load failed");
    return;
  }
  serve::QueryServer::Options options;
  options.threads = static_cast<unsigned>(state.range(0));
  serve::QueryServer server(*engine_state, options);
  auto port = server.start();
  if (!port) {
    state.SkipWithError("server failed to start");
    return;
  }
  // Query stream: EXACT hits over a cycle of known leaves.
  std::vector<std::string> queries;
  for (std::uint32_t i = 0; i < 1024; ++i) {
    queries.push_back(
        "EXACT " +
        Prefix::make(Ipv4Addr((i * 97u % 100000u) << 8), 24)->to_string());
  }
  // Each worker opens its own connection per iteration and closes it when
  // done — required for the threads=1 (inline pool) server, which serves
  // one connection to completion before accepting the next.
  constexpr int kClients = 8;
  constexpr int kPerClient = 128;
  std::atomic<int> failures{0};
  for (auto _ : state) {
    std::vector<std::thread> workers;
    workers.reserve(kClients);
    for (int c = 0; c < kClients; ++c) {
      workers.emplace_back([&, c] {
        auto client = serve::QueryClient::connect("127.0.0.1", *port);
        if (!client) {
          failures.fetch_add(1, std::memory_order_relaxed);
          return;
        }
        for (int i = 0; i < kPerClient; ++i) {
          auto response = client->request(
              queries[static_cast<std::size_t>(c * kPerClient + i) %
                      queries.size()]);
          if (!response) {
            failures.fetch_add(1, std::memory_order_relaxed);
            return;
          }
        }
      });
    }
    for (auto& w : workers) w.join();
  }
  server.stop();
  if (failures.load() != 0) {
    state.SkipWithError("request round trips failed");
    return;
  }
  state.counters["server_threads"] =
      static_cast<double>(state.range(0));
  state.counters["clients"] = kClients;
  state.counters["peak_rss_mb"] = bench::peak_rss_megabytes();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kClients * kPerClient);
}
BENCHMARK(BM_ServeQueries)
    ->Arg(1)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

/// Query latency while the engine is hot-swapped underneath the clients:
/// 8 hammer clients stream EXACT hits as the main thread RELOADs between a
/// 10k- and a 100k-record snapshot every iteration. p99_us covers the
/// queries issued *during* the swaps — the acceptance number for the
/// RCU-style reload (a failed query or reload aborts the bench).
void BM_ServeReloadUnderLoad(benchmark::State& state) {
  const auto& small = snapshot_bench_files(10000);
  const auto& large = snapshot_bench_files(100000);
  auto engine_state = serve::EngineState::load(small.snap);
  if (!engine_state) {
    state.SkipWithError("snapshot load failed");
    return;
  }
  serve::QueryServer::Options options;
  // Thread-per-connection: 8 persistent hammer clients + the control
  // connection need headroom so a RELOAD is never queued behind them.
  options.threads = 12;
  serve::QueryServer server(*engine_state, options);
  auto port = server.start();
  if (!port) {
    state.SkipWithError("server failed to start");
    return;
  }
  // Keys present in BOTH snapshots (records 0..9999 are identical), so
  // every query must hit regardless of which generation answers it.
  std::vector<std::string> queries;
  for (std::uint32_t i = 0; i < 1024; ++i) {
    queries.push_back(
        "EXACT " +
        Prefix::make(Ipv4Addr((i * 97u % 10000u) << 8), 24)->to_string());
  }
  constexpr int kClients = 8;
  std::atomic<bool> done{false};
  std::atomic<int> failures{0};
  std::atomic<std::int64_t> queries_sent{0};
  // Latency histogram in 1us buckets up to 100ms, shared by the hammers.
  constexpr std::size_t kBuckets = 100000;
  std::vector<std::atomic<std::uint32_t>> histogram(kBuckets);
  std::vector<std::thread> hammers;
  hammers.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    hammers.emplace_back([&, c] {
      auto client = serve::QueryClient::connect("127.0.0.1", *port);
      if (!client) {
        failures.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      std::size_t i = static_cast<std::size_t>(c) * 131;
      while (!done.load(std::memory_order_relaxed)) {
        auto t0 = std::chrono::steady_clock::now();
        auto response = client->request(queries[i++ % queries.size()]);
        auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
        if (!response ||
            response->find("\"found\":true") == std::string::npos) {
          failures.fetch_add(1, std::memory_order_relaxed);
          return;
        }
        queries_sent.fetch_add(1, std::memory_order_relaxed);
        auto bucket = std::min<std::size_t>(
            static_cast<std::size_t>(us), kBuckets - 1);
        histogram[bucket].fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  auto control = serve::QueryClient::connect("127.0.0.1", *port);
  if (!control) {
    done.store(true);
    for (auto& h : hammers) h.join();
    state.SkipWithError("control client failed to connect");
    return;
  }
  std::uint64_t reloads = 0;
  bool to_large = true;
  for (auto _ : state) {
    auto ack = control->request(
        "RELOAD " + (to_large ? large.snap : small.snap));
    if (!ack || ack->find("\"ok\":true") == std::string::npos) {
      done.store(true);
      for (auto& h : hammers) h.join();
      state.SkipWithError("RELOAD failed under load");
      return;
    }
    to_large = !to_large;
    ++reloads;
  }
  done.store(true);
  for (auto& h : hammers) h.join();
  server.stop();
  if (failures.load() != 0) {
    state.SkipWithError("queries failed during reload");
    return;
  }
  // p99 from the shared histogram.
  std::uint64_t total = 0;
  for (const auto& b : histogram) {
    total += b.load(std::memory_order_relaxed);
  }
  double p99 = 0.0;
  if (total > 0) {
    std::uint64_t target = total - total / 100;  // ceil-ish 99th
    std::uint64_t seen = 0;
    for (std::size_t us = 0; us < kBuckets; ++us) {
      seen += histogram[us].load(std::memory_order_relaxed);
      if (seen >= target) {
        p99 = static_cast<double>(us);
        break;
      }
    }
  }
  state.counters["reloads"] = static_cast<double>(reloads);
  state.counters["queries_during_swaps"] =
      static_cast<double>(queries_sent.load());
  state.counters["hammer_p99_us"] = p99;
  state.counters["peak_rss_mb"] = bench::peak_rss_megabytes();
  state.SetItemsProcessed(static_cast<std::int64_t>(reloads));
}
BENCHMARK(BM_ServeReloadUnderLoad)->Unit(benchmark::kMillisecond);

/// Arg: event-loop shards. One pipelined client streams binary LPM frames
/// (512 addresses each, 4 frames in flight); items/sec is lookups/sec
/// end-to-end. A text-protocol baseline is timed outside the benchmark
/// loop on the same server and the ratio recorded; the acceptance gate —
/// binary >= 10x the text BM_ServeQueries throughput — is enforced at 8
/// shards (one frame replaces hundreds of per-line JSON round trips).
void BM_ServeBinaryBatch(benchmark::State& state) {
  const auto& files = snapshot_bench_files(100000);
  auto engine_state = serve::EngineState::load(files.snap);
  if (!engine_state) {
    state.SkipWithError("snapshot load failed");
    return;
  }
  serve::QueryServer::Options options;
  options.shards = static_cast<unsigned>(state.range(0));
  serve::QueryServer server(*engine_state, options);
  auto port = server.start();
  if (!port) {
    state.SkipWithError("server failed to start");
    return;
  }
  constexpr std::size_t kFrameAddrs = 512;
  constexpr std::size_t kDepth = 4;
  std::vector<std::vector<std::uint32_t>> batches(kDepth);
  for (std::size_t k = 0; k < kDepth; ++k) {
    for (std::size_t i = 0; i < kFrameAddrs; ++i) {
      std::uint32_t record =
          static_cast<std::uint32_t>((k * kFrameAddrs + i) * 97u % 100000u);
      batches[k].push_back((record << 8) | 1u);  // inside a known /24 leaf
    }
  }
  auto client = serve::QueryClient::connect("127.0.0.1", *port);
  if (!client) {
    state.SkipWithError("client failed to connect");
    return;
  }
  bool failed = false;
  for (auto _ : state) {
    auto responses = client->pipeline_binary(batches);
    if (!responses || responses->size() != kDepth) {
      failed = true;
      break;
    }
    benchmark::DoNotOptimize(responses);
  }
  if (failed) {
    server.stop();
    state.SkipWithError("pipelined binary round trips failed");
    return;
  }
  // Paired baseline, timed outside the benchmark loop: text EXACT round
  // trips (the BM_ServeQueries shape) vs pipelined binary lookups on the
  // very same server and connection.
  using clock = std::chrono::steady_clock;
  constexpr int kTextProbe = 512;
  std::vector<std::string> queries;
  for (std::uint32_t i = 0; i < 1024; ++i) {
    queries.push_back(
        "EXACT " +
        Prefix::make(Ipv4Addr((i * 97u % 100000u) << 8), 24)->to_string());
  }
  auto t0 = clock::now();
  for (int i = 0; i < kTextProbe; ++i) {
    auto response = client->request(queries[static_cast<std::size_t>(i) %
                                            queries.size()]);
    if (!response) {
      server.stop();
      state.SkipWithError("text baseline round trip failed");
      return;
    }
  }
  auto t1 = clock::now();
  constexpr int kBinProbe = 16;
  for (int r = 0; r < kBinProbe; ++r) {
    auto responses = client->pipeline_binary(batches);
    if (!responses) {
      server.stop();
      state.SkipWithError("binary probe round trip failed");
      return;
    }
    benchmark::DoNotOptimize(responses);
  }
  auto t2 = clock::now();
  server.stop();
  const double text_ns =
      static_cast<double>(std::chrono::nanoseconds(t1 - t0).count());
  const double bin_ns =
      static_cast<double>(std::chrono::nanoseconds(t2 - t1).count());
  const double text_qps = kTextProbe / (text_ns / 1e9);
  const double bin_qps =
      static_cast<double>(kBinProbe * kDepth * kFrameAddrs) / (bin_ns / 1e9);
  const double speedup = bin_qps / text_qps;
  state.counters["shards"] = static_cast<double>(state.range(0));
  state.counters["frame_addrs"] = kFrameAddrs;
  state.counters["pipeline_depth"] = kDepth;
  state.counters["text_qps"] = text_qps;
  state.counters["bin_lookups_per_s"] = bin_qps;
  state.counters["speedup_vs_text"] = speedup;
  state.counters["peak_rss_mb"] = bench::peak_rss_megabytes();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kDepth * kFrameAddrs));
  if (state.range(0) >= 8 && speedup < 10.0) {
    state.SkipWithError(
        "binary batch is not >= 10x the text protocol at 8 shards");
  }
}
BENCHMARK(BM_ServeBinaryBatch)
    ->Arg(1)->Arg(8)
    ->Unit(benchmark::kMillisecond);

/// Connection-scaling soak: request p99 on a live connection while the
/// server holds ~10k idle connections. The idle fds live in a forked child
/// (each side of the soak needs ~10k fds against a 20k RLIMIT_NOFILE);
/// chunked acks keep the accept backlog from overflowing. Arg: shards.
void BM_ServeConnScaling(benchmark::State& state) {
  constexpr std::size_t kIdleConns = 10000;
  constexpr std::size_t kChunk = 100;
  rlimit limit{};
  if (getrlimit(RLIMIT_NOFILE, &limit) == 0 &&
      limit.rlim_cur < limit.rlim_max) {
    rlimit raised = limit;
    raised.rlim_cur = limit.rlim_max;
    setrlimit(RLIMIT_NOFILE, &raised);
    limit = raised;
  }
  if (limit.rlim_cur < kIdleConns + 300) {
    state.SkipWithError("RLIMIT_NOFILE too low for a 10k-connection soak");
    return;
  }
  int control[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, control) != 0) {
    state.SkipWithError("socketpair failed");
    return;
  }
  // Fork before the server spawns threads; the child only makes raw
  // syscalls (socket/connect/read/write) and exits via _exit.
  pid_t child = ::fork();
  if (child < 0) {
    ::close(control[0]);
    ::close(control[1]);
    state.SkipWithError("fork failed");
    return;
  }
  if (child == 0) {
    ::close(control[0]);
    unsigned char port_bytes[2];
    std::size_t got = 0;
    while (got < 2) {
      ssize_t n = ::read(control[1], port_bytes + got, 2 - got);
      if (n <= 0) ::_exit(1);
      got += static_cast<std::size_t>(n);
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(
        port_bytes[0] | (port_bytes[1] << 8)));
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    std::vector<int> fds;
    fds.reserve(kIdleConns);
    for (std::size_t i = 0; i < kIdleConns; ++i) {
      int fd = ::socket(AF_INET, SOCK_STREAM, 0);
      if (fd < 0) ::_exit(1);
      if (::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                    sizeof(addr)) != 0) {
        ::_exit(1);
      }
      fds.push_back(fd);
      if (fds.size() % kChunk == 0) {
        char c = 'c';
        if (::write(control[1], &c, 1) != 1) ::_exit(1);
        char ack = 0;
        if (::read(control[1], &ack, 1) != 1 || ack != 'a') ::_exit(1);
      }
    }
    char d = 'd';
    if (::write(control[1], &d, 1) != 1) ::_exit(1);
    char parked = 0;
    [[maybe_unused]] ssize_t rc = ::read(control[1], &parked, 1);
    for (int fd : fds) ::close(fd);
    ::_exit(0);
  }
  ::close(control[1]);

  const auto& files = snapshot_bench_files(100000);
  auto engine_state = serve::EngineState::load(files.snap);
  bool setup_ok = engine_state.has_value();
  serve::QueryServer::Options options;
  options.shards = static_cast<unsigned>(state.range(0));
  options.max_conns = 0;
  options.idle_timeout_ms = 600000;
  std::unique_ptr<serve::QueryServer> server;
  std::uint16_t port = 0;
  if (setup_ok) {
    server = std::make_unique<serve::QueryServer>(*engine_state, options);
    auto started = server->start();
    setup_ok = started.has_value();
    if (setup_ok) port = *started;
  }
  auto abort_child = [&](const char* why) {
    char done = 'x';
    [[maybe_unused]] ssize_t rc = ::write(control[0], &done, 1);
    int status = 0;
    ::waitpid(child, &status, 0);
    ::close(control[0]);
    state.SkipWithError(why);
  };
  if (!setup_ok) {
    abort_child("server setup failed");
    return;
  }
  unsigned char port_bytes[2] = {
      static_cast<unsigned char>(port & 0xFF),
      static_cast<unsigned char>((port >> 8) & 0xFF)};
  if (::write(control[0], port_bytes, 2) != 2) {
    abort_child("control write failed");
    return;
  }
  std::size_t acked = 0;
  for (;;) {
    char byte = 0;
    if (::read(control[0], &byte, 1) != 1 || byte == 'f') {
      abort_child("soak child failed");
      return;
    }
    if (byte == 'd') break;
    acked += kChunk;
    while (server->active_connections() < acked) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    char ack = 'a';
    if (::write(control[0], &ack, 1) != 1) {
      abort_child("control ack failed");
      return;
    }
  }

  auto client = serve::QueryClient::connect("127.0.0.1", port);
  if (!client) {
    abort_child("client failed to connect");
    return;
  }
  std::vector<std::string> queries;
  for (std::uint32_t i = 0; i < 1024; ++i) {
    queries.push_back(
        "EXACT " +
        Prefix::make(Ipv4Addr((i * 97u % 100000u) << 8), 24)->to_string());
  }
  // 1us-bucket latency histogram over every timed request; p99 of request
  // latency while 10k idle connections sit on the same epoll sets is the
  // acceptance number.
  constexpr std::size_t kBuckets = 100000;
  std::vector<std::uint32_t> histogram(kBuckets, 0);
  std::uint64_t sampled = 0;
  std::size_t i = 0;
  bool failed = false;
  for (auto _ : state) {
    auto t0 = std::chrono::steady_clock::now();
    auto response = client->request(queries[i++ % queries.size()]);
    auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
    if (!response) {
      failed = true;
      break;
    }
    ++sampled;
    histogram[std::min<std::size_t>(static_cast<std::size_t>(us),
                                    kBuckets - 1)]++;
  }
  const std::size_t held = server->active_connections();
  char done = 'x';
  [[maybe_unused]] ssize_t rc = ::write(control[0], &done, 1);
  int status = 0;
  ::waitpid(child, &status, 0);
  ::close(control[0]);
  server->stop();
  if (failed) {
    state.SkipWithError("request failed during the soak");
    return;
  }
  double p99 = 0.0;
  if (sampled > 0) {
    std::uint64_t target = sampled - sampled / 100;
    std::uint64_t seen = 0;
    for (std::size_t us = 0; us < kBuckets; ++us) {
      seen += histogram[us];
      if (seen >= target) {
        p99 = static_cast<double>(us);
        break;
      }
    }
  }
  state.counters["shards"] = static_cast<double>(state.range(0));
  state.counters["idle_conns"] = static_cast<double>(held);
  state.counters["p99_us"] = p99;
  state.counters["peak_rss_mb"] = bench::peak_rss_megabytes();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ServeConnScaling)
    ->Arg(1)->Arg(8)
    ->Iterations(500)
    ->Unit(benchmark::kMillisecond);

bool aggregates_equal(const serve::QueryEngine::SnapshotAggregate& a,
                      const serve::QueryEngine::SnapshotAggregate& b) {
  for (std::size_t g = 0; g < a.groups.size(); ++g) {
    if (a.groups[g].records != b.groups[g].records ||
        a.groups[g].addresses != b.groups[g].addresses) {
      return false;
    }
  }
  for (std::size_t r = 0; r < a.rir_records.size(); ++r) {
    if (a.rir_records[r] != b.rir_records[r]) return false;
  }
  return a.leased_records == b.leased_records &&
         a.leased_addresses == b.leased_addresses &&
         a.top_origins == b.top_origins;
}

/// The STATS columnar aggregation: SIMD pass timed in the benchmark loop,
/// and a paired SIMD-vs-scalar comparison (median of alternating rounds)
/// recorded as counters. The two passes must agree bit for bit on the
/// bench dataset before any timing counts — a divergence aborts the row.
void BM_StatsSimd(benchmark::State& state) {
  const auto& files =
      snapshot_bench_files(static_cast<std::size_t>(state.range(0)));
  auto snap = snapshot::Snapshot::open(files.snap,
                                       snapshot::Snapshot::Mode::kRead);
  if (!snap) {
    state.SkipWithError("snapshot load failed");
    return;
  }
  auto engine = serve::QueryEngine::create(&*snap);
  if (!engine) {
    state.SkipWithError("engine build failed");
    return;
  }
  if (!aggregates_equal(engine->aggregate(), engine->aggregate_scalar())) {
    state.SkipWithError("SIMD aggregate diverges from the scalar pass");
    return;
  }
  for (auto _ : state) {
    auto agg = engine->aggregate();
    benchmark::DoNotOptimize(agg);
  }
  using clock = std::chrono::steady_clock;
  auto time_ns = [&](bool use_simd) {
    auto t0 = clock::now();
    auto agg = use_simd ? engine->aggregate() : engine->aggregate_scalar();
    auto t1 = clock::now();
    benchmark::DoNotOptimize(agg);
    return static_cast<double>(std::chrono::nanoseconds(t1 - t0).count());
  };
  constexpr int kRounds = 41;
  std::vector<double> ratios;
  double best_simd = 1e18, best_scalar = 1e18;
  for (int round = 0; round < kRounds; ++round) {
    double v, s;
    if (round % 2 == 0) {
      v = time_ns(true);
      s = time_ns(false);
    } else {
      s = time_ns(false);
      v = time_ns(true);
    }
    ratios.push_back(s / v);
    best_simd = std::min(best_simd, v);
    best_scalar = std::min(best_scalar, s);
  }
  std::sort(ratios.begin(), ratios.end());
  state.counters["records"] = static_cast<double>(snap->record_count());
  state.counters["simd_us"] = best_simd / 1e3;
  state.counters["scalar_us"] = best_scalar / 1e3;
  state.counters["simd_speedup"] = ratios[ratios.size() / 2];
  state.counters["peak_rss_mb"] = bench::peak_rss_megabytes();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(snap->record_count()));
}
BENCHMARK(BM_StatsSimd)->Arg(10000)->Arg(100000);

// ---------------------------------------------------------------------------
// Observability overhead + per-stage trace summaries (docs/OBSERVABILITY.md).
// ---------------------------------------------------------------------------

/// Cost of `batch()` with metrics enabled vs disabled (the
/// set_metrics_enabled kill switch), recorded as counters on `state`; the
/// acceptance bar is < 2% overhead. Two defenses against a small shared
/// box where even repeated identical batches drift by tens of percent
/// (preemption, steal time, frequency scaling):
///   - thread CPU time, not wall clock — the instrumentation being priced
///     is pure CPU work;
///   - many short paired rounds: each round times one enabled and one
///     disabled batch back to back (alternating which goes first, to
///     cancel warm-up bias) and keeps the on/off *ratio*; the estimate is
///     the median ratio, so slow episodes penalize both sides of a pair
///     equally and outlier rounds drop out. Measured pair-to-pair spread
///     on the CI box is ~±3%, so the median of 41 pairs puts the
///     estimator's noise well under the 2% bar.
template <typename Batch>
void record_metrics_overhead(benchmark::State& state, Batch&& batch) {
  constexpr int kRounds = 41;
  auto batch_ns = [&](bool enabled) -> double {
    obs::set_metrics_enabled(enabled);
    timespec t0{}, t1{};
    clock_gettime(CLOCK_THREAD_CPUTIME_ID, &t0);
    batch();
    clock_gettime(CLOCK_THREAD_CPUTIME_ID, &t1);
    return static_cast<double>(t1.tv_sec - t0.tv_sec) * 1e9 +
           static_cast<double>(t1.tv_nsec - t0.tv_nsec);
  };
  std::vector<double> ratios;
  double on_ns = 1e18, off_ns = 1e18;
  for (int round = 0; round < kRounds; ++round) {
    double on, off;
    if (round % 2 == 0) {
      on = batch_ns(true);
      off = batch_ns(false);
    } else {
      off = batch_ns(false);
      on = batch_ns(true);
    }
    ratios.push_back(on / off);
    on_ns = std::min(on_ns, on);
    off_ns = std::min(off_ns, off);
  }
  obs::set_metrics_enabled(true);
  std::sort(ratios.begin(), ratios.end());
  double overhead_pct = (ratios[ratios.size() / 2] - 1.0) * 100.0;
  state.counters["metrics_on_ms"] = on_ns / 1e6;
  state.counters["metrics_off_ms"] = off_ns / 1e6;
  state.counters["overhead_pct"] = overhead_pct;
  if (overhead_pct >= 2.0) {
    state.SkipWithError("metrics hot path costs >= 2%");
  }
}

/// Price of the always-on metrics instrumentation where it is densest per
/// unit of work: the server's request path (a counter add per verb plus a
/// latency histogram record per request).
void BM_MetricsHotPathServe(benchmark::State& state) {
  const auto& files = snapshot_bench_files(10000);
  auto engine_state = serve::EngineState::load(files.snap);
  if (!engine_state) {
    state.SkipWithError("snapshot load failed");
    return;
  }
  serve::QueryServer server(*engine_state);  // no sockets: handle_request()
  std::vector<std::string> queries;
  for (std::uint32_t i = 0; i < 1024; ++i) {
    queries.push_back(
        "EXACT " +
        Prefix::make(Ipv4Addr((i * 97u % 10000u) << 8), 24)->to_string());
  }
  std::size_t i = 0;
  for (auto _ : state) {
    std::string response = server.handle_request(queries[i++ % queries.size()]);
    benchmark::DoNotOptimize(response);
  }
  constexpr int kBatch = 20000;
  record_metrics_overhead(state, [&] {
    for (int j = 0; j < kBatch; ++j) {
      std::string response =
          server.handle_request(queries[static_cast<std::size_t>(j) %
                                        queries.size()]);
      benchmark::DoNotOptimize(response);
    }
  });
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
// Fixed iteration count: the enabled-vs-disabled comparison runs once per
// invocation of the function, so calibration re-invocations would repeat
// (and re-judge) it.
BENCHMARK(BM_MetricsHotPathServe)->Iterations(20000);

/// Same check on the classification hot path. Classification aggregates
/// per-group counts once per classify() call instead of touching counters
/// per leaf, so the expected overhead is indistinguishable from zero.
void BM_MetricsHotPathClassify(benchmark::State& state) {
  std::string dir = dataset_for(20);
  auto bundle = leasing::load_dataset(dir);
  asgraph::AsGraph graph(&bundle.as_rel, &bundle.as2org);
  leasing::PipelineOptions options;
  options.threads = 1;  // serial: measure the loop body, not pool jitter
  // Several passes per batch so each timed sample is tens of ms: a single
  // classify pass over this dataset is short enough that scheduler noise
  // on a small box would dominate a 2% comparison.
  constexpr int kPasses = 48;
  auto classify_all = [&] {
    leasing::Pipeline pipeline(bundle.rib, graph, options);
    std::size_t classified = 0;
    for (int pass = 0; pass < kPasses; ++pass) {
      for (const whois::WhoisDb& db : bundle.whois) {
        classified += pipeline.classify(db).size();
      }
    }
    benchmark::DoNotOptimize(classified);
  };
  for (auto _ : state) {
    classify_all();
  }
  record_metrics_overhead(state, classify_all);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MetricsHotPathClassify)
    ->Iterations(2)
    ->Unit(benchmark::kMillisecond);

/// Price of the per-request flight recorder (docs/OBSERVABILITY.md) on
/// the live serve path, recorder on vs off via set_flight_recording() —
/// the kill switch INSPECT reports. Arg: event-loop shards; the
/// acceptance bar is < 2% at 8 shards. Estimator: thousands of paired
/// 64-request blocks, toggling the recorder between blocks (alternating
/// which side goes first), then the ratio of the two aggregate times
/// over the fastest 75% of pairs (ranked by combined time — a symmetric
/// outlier cut, so it cannot favour either side). The fine interleaving
/// is what makes the measurement converge on a shared host: paired
/// blocks sit ~1ms apart, inside the drift timescale of frequency
/// scaling and host contention, where second-scale paired rounds drift
/// by more than the bar. Timed on process CPU time — the server runs
/// in-process, so CLOCK_PROCESS_CPUTIME_ID sees the shard threads'
/// recorder cost while staying blind to scheduler wait. Each block walks
/// one driver thread over eight persistent connections (round-robined
/// across the shards at accept) sequentially.
void BM_FlightRecorderOverhead(benchmark::State& state) {
  const auto& files = snapshot_bench_files(100000);
  auto engine_state = serve::EngineState::load(files.snap);
  if (!engine_state) {
    state.SkipWithError("snapshot load failed");
    return;
  }
  serve::QueryServer::Options options;
  options.shards = static_cast<unsigned>(state.range(0));
  serve::QueryServer server(*engine_state, options);
  auto port = server.start();
  if (!port) {
    state.SkipWithError("server failed to start");
    return;
  }
  std::vector<std::string> queries;
  for (std::uint32_t i = 0; i < 1024; ++i) {
    queries.push_back(
        "LPM " + Ipv4Addr(((i * 97u % 100000u) << 8) | 1u).to_string());
  }
  constexpr int kClients = 8;
  constexpr int kBlock = 64;     ///< requests per timed block
  constexpr int kPairs = 1500;   ///< (on, off) block pairs
  std::vector<serve::QueryClient> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    auto client = serve::QueryClient::connect("127.0.0.1", *port);
    if (!client) {
      server.stop();
      state.SkipWithError("client failed to connect");
      return;
    }
    clients.push_back(std::move(*client));
  }
  int failures = 0;
  auto process_cpu_ns = [] {
    timespec ts{};
    clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
    return static_cast<double>(ts.tv_sec) * 1e9 +
           static_cast<double>(ts.tv_nsec);
  };
  int sent = 0;
  auto block_ns = [&](bool enabled) -> double {
    server.set_flight_recording(enabled);
    const double t0 = process_cpu_ns();
    for (int i = 0; i < kBlock; ++i, ++sent) {
      auto response =
          clients[static_cast<std::size_t>(sent % kClients)].request(
              queries[static_cast<std::size_t>(sent) % queries.size()]);
      if (!response) {
        ++failures;
        break;
      }
    }
    return process_cpu_ns() - t0;
  };
  for (int i = 0; i < 8; ++i) {  // warm-up: connections, caches, rings
    block_ns(true);
    block_ns(false);
  }
  std::vector<std::pair<double, double>> pairs;  // (on, off) per block pair
  pairs.reserve(kPairs);
  for (auto _ : state) {
    for (int pair = 0; pair < kPairs; ++pair) {
      double on, off;
      if (pair % 2 == 0) {
        on = block_ns(true);
        off = block_ns(false);
      } else {
        off = block_ns(false);
        on = block_ns(true);
      }
      pairs.emplace_back(on, off);
    }
  }
  server.set_flight_recording(true);
  clients.clear();
  server.stop();
  if (failures != 0) {
    state.SkipWithError("request round trips failed");
    return;
  }
  std::sort(pairs.begin(), pairs.end(),
            [](const auto& a, const auto& b) {
              return a.first + a.second < b.first + b.second;
            });
  const std::size_t keep = pairs.size() * 3 / 4;
  double sum_on = 0.0, sum_off = 0.0;
  for (std::size_t i = 0; i < keep; ++i) {
    sum_on += pairs[i].first;
    sum_off += pairs[i].second;
  }
  const double overhead_pct = (sum_on / sum_off - 1.0) * 100.0;
  state.counters["shards"] = static_cast<double>(state.range(0));
  state.counters["recorder_on_ms"] = sum_on / 1e6;
  state.counters["recorder_off_ms"] = sum_off / 1e6;
  state.counters["overhead_pct"] = overhead_pct;
  state.counters["peak_rss_mb"] = bench::peak_rss_megabytes();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          2 * kPairs * kBlock);
  if (state.range(0) >= 8 && overhead_pct >= 2.0) {
    state.SkipWithError(("flight recorder costs >= 2% at 8 shards (" +
                         std::to_string(overhead_pct) + "%)")
                            .c_str());
  }
}
// One iteration: the paired-block comparison runs once per invocation, so
// calibration re-invocations would repeat (and re-judge) it.
BENCHMARK(BM_FlightRecorderOverhead)
    ->Arg(1)->Arg(8)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

/// One traced end-to-end run (dataset load + classification) whose
/// per-stage wall/cpu/record summaries land in BENCH_perf_pipeline.json as
/// counters — future PRs can attribute a pipeline regression to a stage
/// without re-profiling.
void BM_PipelineStageTrace(benchmark::State& state) {
  std::string dir = dataset_for(100);
  obs::Tracer& tracer = obs::Tracer::global();
  std::size_t classified = 0;
  for (auto _ : state) {
    tracer.clear();
    tracer.set_enabled(true);
    auto bundle = leasing::load_dataset(dir);
    asgraph::AsGraph graph(&bundle.as_rel, &bundle.as2org);
    leasing::Pipeline pipeline(bundle.rib, graph, {});
    classified = 0;
    for (const whois::WhoisDb& db : bundle.whois) {
      classified += pipeline.classify(db).size();
    }
    tracer.set_enabled(false);
    benchmark::DoNotOptimize(classified);
  }
  // Aggregate the last iteration's spans by stage name; chunk spans roll
  // into their stage's total CPU picture via their own row.
  struct StageAgg {
    double wall_ms = 0.0;
    double cpu_ms = 0.0;
    double records = 0.0;
  };
  std::map<std::string, StageAgg> stages;
  for (const obs::SpanRecord& span : tracer.spans()) {
    StageAgg& agg = stages[span.name];
    agg.wall_ms += static_cast<double>(span.wall_ns) / 1e6;
    agg.cpu_ms += static_cast<double>(span.cpu_ns) / 1e6;
    agg.records += static_cast<double>(span.records);
  }
  tracer.clear();
  for (const auto& [name, agg] : stages) {
    state.counters[name + ":wall_ms"] = agg.wall_ms;
    state.counters[name + ":cpu_ms"] = agg.cpu_ms;
    if (agg.records > 0) state.counters[name + ":records"] = agg.records;
  }
  state.counters["leaves"] = static_cast<double>(classified);
  state.counters["peak_rss_mb"] = bench::peak_rss_megabytes();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PipelineStageTrace)->Unit(benchmark::kMillisecond);

void BM_RpkiValidate(benchmark::State& state) {
  std::string dir = dataset_for(100);
  auto bundle = leasing::load_dataset(dir);
  const rpki::VrpSet* vrps = bundle.current_vrps();
  std::vector<std::pair<Prefix, Asn>> queries;
  bundle.rib.visit([&](const Prefix& p, const bgp::RouteInfo& info) {
    if (!info.origins.empty() && queries.size() < 10000) {
      queries.emplace_back(p, info.origins.front());
    }
  });
  std::size_t i = 0;
  for (auto _ : state) {
    auto v = vrps->validate(queries[i % queries.size()].first,
                            queries[i % queries.size()].second);
    benchmark::DoNotOptimize(v);
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RpkiValidate);

void BM_RibLookup(benchmark::State& state) {
  std::string dir = dataset_for(100);
  auto bundle = leasing::load_dataset(dir);
  std::vector<Prefix> queries;
  bundle.rib.visit([&](const Prefix& p, const bgp::RouteInfo&) {
    if (queries.size() < 10000) queries.push_back(p);
  });
  std::size_t i = 0;
  for (auto _ : state) {
    const auto* info = bundle.rib.exact(queries[i % queries.size()]);
    benchmark::DoNotOptimize(info);
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RibLookup);

/// Arg: event-loop shards. One full pass of the soak driver (src/loadgen)
/// against an in-process server: 4 workers replaying the seed-keyed verb
/// mix flat out (the open-loop qps target is set far above what the box
/// can do, so pacing never sleeps). soak_lookups_per_s is the aggregate
/// end-to-end rate across every verb; the acceptance gate — >= 1M
/// lookups/s with zero wrong answers and zero uninjected errors — is
/// enforced at 8 shards.
void BM_SoakThroughput(benchmark::State& state) {
  loadgen::LoadOptions options;
  options.seed = 4242;
  options.workers = 4;
  // Saturation sizing: the schedule is duration_ms x qps ops, and workers
  // drain ALL of it as fast as the box allows (pacing never waits at this
  // qps) — so these two knobs set the op count (~60k, a few seconds), not
  // the wall time.
  options.duration_ms = 1000;
  options.qps = 60000.0;
  options.batch_size = 512;
  options.pipeline_depth = 4;
  options.world.scale = 0.05;
  options.world.epochs = 3;
  options.world.pending = 0;
  options.shards = static_cast<unsigned>(state.range(0));
  options.spot_check_every = 1024;
  double lookups_per_s = 0.0;
  double achieved_qps = 0.0;
  std::uint64_t requests = 0;
  for (auto _ : state) {
    auto report = loadgen::run_load(options);
    if (!report) {
      state.SkipWithError(report.error().to_string().c_str());
      return;
    }
    if (report->wrong_answers != 0 || report->uninjected_errors != 0) {
      state.SkipWithError("soak saw wrong answers or uninjected errors");
      return;
    }
    lookups_per_s = report->lookups_per_s;
    achieved_qps = report->achieved_qps;
    requests = report->total_requests;
    state.SetIterationTime(static_cast<double>(report->elapsed_ms) / 1e3);
  }
  state.counters["shards"] = static_cast<double>(state.range(0));
  state.counters["workers"] = static_cast<double>(options.workers);
  state.counters["soak_lookups_per_s"] = lookups_per_s;
  state.counters["achieved_qps"] = achieved_qps;
  state.counters["requests"] = static_cast<double>(requests);
  state.counters["peak_rss_mb"] = bench::peak_rss_megabytes();
  state.SetItemsProcessed(static_cast<std::int64_t>(requests));
  if (state.range(0) >= 8 && lookups_per_s < 1e6) {
    state.SkipWithError("soak aggregate below 1M lookups/s at 8 shards");
  }
}
BENCHMARK(BM_SoakThroughput)
    ->Arg(1)->Arg(8)
    ->Iterations(1)->UseManualTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
