// P1 — pipeline performance: generation, parse, and classification
// throughput as the world grows (google-benchmark).
#include <benchmark/benchmark.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <type_traits>

#include "asgraph/as_graph.h"
#include "leasing/dataset.h"
#include "leasing/pipeline.h"
#include "memstats.h"
#include "mrt/rib_file.h"
#include "netbase/legacy_prefix_trie.h"
#include "netbase/prefix_trie.h"
#include "simnet/builder.h"
#include "simnet/emit.h"
#include "util/rng.h"
#include "whoisdb/parse.h"

namespace {

using namespace sublet;

sim::WorldConfig config_for(int permille) {
  sim::WorldConfig config;
  config.seed = 77;
  config.scale = permille / 1000.0;
  return config;
}

/// Emit a world once per scale and cache the directory for the process.
/// The directory name carries the config seed: a cached world emitted by
/// an older run with a different seed must never be silently reused.
const std::string& dataset_for(int permille) {
  static std::map<int, std::string> cache;
  auto it = cache.find(permille);
  if (it != cache.end()) return it->second;
  auto config = config_for(permille);
  std::string dir = "/tmp/sublet-perf-" + std::to_string(config.seed) + "-" +
                    std::to_string(permille);
  if (!std::filesystem::exists(dir + "/.complete")) {
    std::filesystem::remove_all(dir);
    sim::emit_world(sim::build_world(config), dir);
    std::ofstream(dir + "/.complete") << "ok\n";
  }
  return cache.emplace(permille, dir).first->second;
}

// ---------------------------------------------------------------------------
// Trie microbenchmarks: the arena Patricia trie (PrefixTrie) vs the retained
// one-node-per-bit reference (LegacyPrefixTrie). Same deterministic corpus
// and query stream for both, so rows are directly comparable: build cost,
// exact find, covering walk, and per-structure node memory at 10k/100k/1M
// entries (legacy capped at 100k — a million entries costs it ~30M heap
// nodes).
// ---------------------------------------------------------------------------

/// Deterministic allocation-tree-shaped corpus: /8../24 entries plus /32
/// queries that land inside corpus entries so covering walks do real work.
struct TrieWorkload {
  std::vector<std::pair<Prefix, int>> entries;
  std::vector<Prefix> queries;
};

const TrieWorkload& trie_workload(std::size_t n) {
  static std::map<std::size_t, TrieWorkload> cache;
  auto it = cache.find(n);
  if (it != cache.end()) return it->second;
  Rng rng(4242);
  TrieWorkload w;
  w.entries.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    int len = static_cast<int>(rng.next_in(8, 24));
    auto addr = Ipv4Addr(static_cast<std::uint32_t>(rng.next_u64()));
    w.entries.emplace_back(*Prefix::make(addr, len), static_cast<int>(i));
  }
  w.queries.reserve(8192);
  for (std::size_t q = 0; q < 8192; ++q) {
    const Prefix& base =
        w.entries[static_cast<std::size_t>(rng.next_u64()) % n].first;
    std::uint32_t offset = static_cast<std::uint32_t>(
        rng.next_u64() & (base.size() - 1));
    w.queries.push_back(
        *Prefix::make(Ipv4Addr(base.network().value() + offset), 32));
  }
  return cache.emplace(n, std::move(w)).first->second;
}

template <typename Trie>
const Trie& built_trie(std::size_t n) {
  static std::map<std::size_t, Trie> cache;
  auto it = cache.find(n);
  if (it != cache.end()) return it->second;
  Trie trie;
  for (const auto& [prefix, value] : trie_workload(n).entries) {
    trie.insert(prefix, value);
  }
  return cache.emplace(n, std::move(trie)).first->second;
}

/// Lookup benchmarks measure each trie as deployed: the arena trie is
/// freeze-built (the AllocationTree production path, which lays nodes out
/// in DFS pre-order for locality), the legacy trie only has incremental
/// insert.
template <typename Trie>
const Trie& lookup_trie(std::size_t n) {
  if constexpr (std::is_same_v<Trie, PrefixTrie<int>>) {
    static std::map<std::size_t, Trie> cache;
    auto it = cache.find(n);
    if (it == cache.end()) {
      it = cache.emplace(n, Trie::freeze(trie_workload(n).entries)).first;
    }
    return it->second;
  } else {
    return built_trie<Trie>(n);
  }
}

template <typename Trie>
void trie_build_incremental(benchmark::State& state) {
  const auto& workload = trie_workload(static_cast<std::size_t>(state.range(0)));
  std::size_t nodes = 0, bytes = 0;
  for (auto _ : state) {
    Trie trie;
    for (const auto& [prefix, value] : workload.entries) {
      trie.insert(prefix, value);
    }
    nodes = trie.node_count();
    bytes = trie.memory_bytes();
    benchmark::DoNotOptimize(trie);
  }
  state.counters["nodes"] = static_cast<double>(nodes);
  state.counters["mem_mb"] = static_cast<double>(bytes) / 1e6;
  state.counters["peak_rss_mb"] = bench::peak_rss_megabytes();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(workload.entries.size()));
}

void BM_TrieBuildArena(benchmark::State& state) {
  trie_build_incremental<PrefixTrie<int>>(state);
}
BENCHMARK(BM_TrieBuildArena)
    ->Arg(10000)->Arg(100000)->Arg(1000000)
    ->Unit(benchmark::kMillisecond);

void BM_TrieBuildLegacy(benchmark::State& state) {
  trie_build_incremental<LegacyPrefixTrie<int>>(state);
}
BENCHMARK(BM_TrieBuildLegacy)
    ->Arg(10000)->Arg(100000)
    ->Unit(benchmark::kMillisecond);

void BM_TrieBuildFreeze(benchmark::State& state) {
  const auto& workload = trie_workload(static_cast<std::size_t>(state.range(0)));
  std::size_t nodes = 0, bytes = 0;
  for (auto _ : state) {
    auto trie = PrefixTrie<int>::freeze(workload.entries);
    nodes = trie.node_count();
    bytes = trie.memory_bytes();
    benchmark::DoNotOptimize(trie);
  }
  state.counters["nodes"] = static_cast<double>(nodes);
  state.counters["mem_mb"] = static_cast<double>(bytes) / 1e6;
  state.counters["peak_rss_mb"] = bench::peak_rss_megabytes();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(workload.entries.size()));
}
BENCHMARK(BM_TrieBuildFreeze)
    ->Arg(10000)->Arg(100000)->Arg(1000000)
    ->Unit(benchmark::kMillisecond);

template <typename Trie>
void trie_exact_find(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto& workload = trie_workload(n);
  const Trie& trie = lookup_trie<Trie>(n);
  std::size_t i = 0;
  for (auto _ : state) {
    const int* hit = trie.find(workload.entries[i % n].first);
    benchmark::DoNotOptimize(hit);
    ++i;
  }
  state.counters["peak_rss_mb"] = bench::peak_rss_megabytes();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_TrieExactFindArena(benchmark::State& state) {
  trie_exact_find<PrefixTrie<int>>(state);
}
BENCHMARK(BM_TrieExactFindArena)->Arg(10000)->Arg(100000)->Arg(1000000);

void BM_TrieExactFindLegacy(benchmark::State& state) {
  trie_exact_find<LegacyPrefixTrie<int>>(state);
}
BENCHMARK(BM_TrieExactFindLegacy)->Arg(10000)->Arg(100000);

/// One most-specific + one least-specific covering walk per iteration on a
/// /32 query — the shape of the paper's step-4 lookups (exact origin plus
/// root-origin fallback).
template <typename Trie>
void trie_covering_walk(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto& workload = trie_workload(n);
  const Trie& trie = lookup_trie<Trie>(n);
  std::size_t i = 0;
  for (auto _ : state) {
    const Prefix& q = workload.queries[i % workload.queries.size()];
    auto most = trie.most_specific_covering(q);
    auto least = trie.least_specific_covering(q);
    benchmark::DoNotOptimize(most);
    benchmark::DoNotOptimize(least);
    ++i;
  }
  state.counters["nodes"] = static_cast<double>(trie.node_count());
  state.counters["mem_mb"] = static_cast<double>(trie.memory_bytes()) / 1e6;
  state.counters["peak_rss_mb"] = bench::peak_rss_megabytes();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_TrieCoveringWalkArena(benchmark::State& state) {
  trie_covering_walk<PrefixTrie<int>>(state);
}
BENCHMARK(BM_TrieCoveringWalkArena)->Arg(10000)->Arg(100000)->Arg(1000000);

void BM_TrieCoveringWalkLegacy(benchmark::State& state) {
  trie_covering_walk<LegacyPrefixTrie<int>>(state);
}
BENCHMARK(BM_TrieCoveringWalkLegacy)->Arg(10000)->Arg(100000);

void BM_WorldGeneration(benchmark::State& state) {
  auto config = config_for(static_cast<int>(state.range(0)));
  std::size_t leaves = 0;
  for (auto _ : state) {
    sim::World world = sim::build_world(config);
    leaves = world.leaves.size();
    benchmark::DoNotOptimize(world);
  }
  state.counters["leaves"] = static_cast<double>(leaves);
  state.counters["peak_rss_mb"] = bench::peak_rss_megabytes();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(leaves));
}
BENCHMARK(BM_WorldGeneration)->Arg(20)->Arg(50)->Arg(100)
    ->Unit(benchmark::kMillisecond);

/// Args: {permille, threads}.
void BM_WhoisParse(benchmark::State& state) {
  std::string path =
      dataset_for(static_cast<int>(state.range(0))) + "/whois/ripe.db";
  auto threads = static_cast<unsigned>(state.range(1));
  std::size_t blocks = 0;
  for (auto _ : state) {
    auto db = whois::load_whois_file(path, whois::Rir::kRipe, nullptr,
                                     threads);
    blocks = db.block_count();
    benchmark::DoNotOptimize(db);
  }
  state.counters["blocks"] = static_cast<double>(blocks);
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["peak_rss_mb"] = bench::peak_rss_megabytes();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(blocks));
}
BENCHMARK(BM_WhoisParse)
    ->Args({20, 1})
    ->Args({100, 1})
    ->Args({100, 2})
    ->Args({100, 4})
    ->Unit(benchmark::kMillisecond);

void BM_MrtParse(benchmark::State& state) {
  std::string path =
      dataset_for(static_cast<int>(state.range(0))) + "/bgp/rib.0.t0.mrt";
  std::size_t bytes = std::filesystem::file_size(path);
  std::size_t prefixes = 0;
  for (auto _ : state) {
    auto snapshot = mrt::read_rib_file(path);
    prefixes = snapshot ? snapshot->records.size() : 0;
    benchmark::DoNotOptimize(snapshot);
  }
  state.counters["prefixes"] = static_cast<double>(prefixes);
  state.counters["peak_rss_mb"] = bench::peak_rss_megabytes();
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_MrtParse)->Arg(20)->Arg(100)->Unit(benchmark::kMillisecond);

/// Args: {permille, threads}.
void BM_Classify(benchmark::State& state) {
  std::string dir = dataset_for(static_cast<int>(state.range(0)));
  auto bundle = leasing::load_dataset(dir);
  asgraph::AsGraph graph(&bundle.as_rel, &bundle.as2org);
  leasing::PipelineOptions options;
  options.threads = static_cast<unsigned>(state.range(1));
  std::size_t classified = 0;
  for (auto _ : state) {
    leasing::Pipeline pipeline(bundle.rib, graph, options);
    classified = 0;
    for (const whois::WhoisDb& db : bundle.whois) {
      classified += pipeline.classify(db).size();
    }
    benchmark::DoNotOptimize(classified);
  }
  state.counters["leaves"] = static_cast<double>(classified);
  state.counters["threads"] = static_cast<double>(options.threads);
  state.counters["peak_rss_mb"] = bench::peak_rss_megabytes();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(classified));
}
BENCHMARK(BM_Classify)
    ->Args({20, 1})
    ->Args({50, 1})
    ->Args({100, 1})
    ->Args({100, 2})
    ->Args({100, 4})
    ->Unit(benchmark::kMillisecond);

/// Args: {permille, threads} — the whole bundle load (five WHOIS files +
/// all RIB collectors as concurrent tasks).
void BM_DatasetLoad(benchmark::State& state) {
  std::string dir = dataset_for(static_cast<int>(state.range(0)));
  leasing::LoadOptions options;
  options.threads = static_cast<unsigned>(state.range(1));
  std::size_t prefixes = 0;
  for (auto _ : state) {
    auto bundle = leasing::load_dataset(dir, options);
    prefixes = bundle.rib.prefix_count();
    benchmark::DoNotOptimize(bundle);
  }
  state.counters["prefixes"] = static_cast<double>(prefixes);
  state.counters["threads"] = static_cast<double>(options.threads);
  state.counters["peak_rss_mb"] = bench::peak_rss_megabytes();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_DatasetLoad)
    ->Args({100, 1})
    ->Args({100, 4})
    ->Unit(benchmark::kMillisecond);

void BM_RpkiValidate(benchmark::State& state) {
  std::string dir = dataset_for(100);
  auto bundle = leasing::load_dataset(dir);
  const rpki::VrpSet* vrps = bundle.current_vrps();
  std::vector<std::pair<Prefix, Asn>> queries;
  bundle.rib.visit([&](const Prefix& p, const bgp::RouteInfo& info) {
    if (!info.origins.empty() && queries.size() < 10000) {
      queries.emplace_back(p, info.origins.front());
    }
  });
  std::size_t i = 0;
  for (auto _ : state) {
    auto v = vrps->validate(queries[i % queries.size()].first,
                            queries[i % queries.size()].second);
    benchmark::DoNotOptimize(v);
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RpkiValidate);

void BM_RibLookup(benchmark::State& state) {
  std::string dir = dataset_for(100);
  auto bundle = leasing::load_dataset(dir);
  std::vector<Prefix> queries;
  bundle.rib.visit([&](const Prefix& p, const bgp::RouteInfo&) {
    if (queries.size() < 10000) queries.push_back(p);
  });
  std::size_t i = 0;
  for (auto _ : state) {
    const auto* info = bundle.rib.exact(queries[i % queries.size()]);
    benchmark::DoNotOptimize(info);
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RibLookup);

}  // namespace

BENCHMARK_MAIN();
