// P1 — pipeline performance: generation, parse, and classification
// throughput as the world grows (google-benchmark).
#include <benchmark/benchmark.h>

#include <filesystem>
#include <fstream>
#include <map>

#include "asgraph/as_graph.h"
#include "leasing/dataset.h"
#include "leasing/pipeline.h"
#include "mrt/rib_file.h"
#include "simnet/builder.h"
#include "simnet/emit.h"
#include "whoisdb/parse.h"

namespace {

using namespace sublet;

sim::WorldConfig config_for(int permille) {
  sim::WorldConfig config;
  config.seed = 77;
  config.scale = permille / 1000.0;
  return config;
}

/// Emit a world once per scale and cache the directory for the process.
/// The directory name carries the config seed: a cached world emitted by
/// an older run with a different seed must never be silently reused.
const std::string& dataset_for(int permille) {
  static std::map<int, std::string> cache;
  auto it = cache.find(permille);
  if (it != cache.end()) return it->second;
  auto config = config_for(permille);
  std::string dir = "/tmp/sublet-perf-" + std::to_string(config.seed) + "-" +
                    std::to_string(permille);
  if (!std::filesystem::exists(dir + "/.complete")) {
    std::filesystem::remove_all(dir);
    sim::emit_world(sim::build_world(config), dir);
    std::ofstream(dir + "/.complete") << "ok\n";
  }
  return cache.emplace(permille, dir).first->second;
}

void BM_WorldGeneration(benchmark::State& state) {
  auto config = config_for(static_cast<int>(state.range(0)));
  std::size_t leaves = 0;
  for (auto _ : state) {
    sim::World world = sim::build_world(config);
    leaves = world.leaves.size();
    benchmark::DoNotOptimize(world);
  }
  state.counters["leaves"] = static_cast<double>(leaves);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(leaves));
}
BENCHMARK(BM_WorldGeneration)->Arg(20)->Arg(50)->Arg(100)
    ->Unit(benchmark::kMillisecond);

/// Args: {permille, threads}.
void BM_WhoisParse(benchmark::State& state) {
  std::string path =
      dataset_for(static_cast<int>(state.range(0))) + "/whois/ripe.db";
  auto threads = static_cast<unsigned>(state.range(1));
  std::size_t blocks = 0;
  for (auto _ : state) {
    auto db = whois::load_whois_file(path, whois::Rir::kRipe, nullptr,
                                     threads);
    blocks = db.block_count();
    benchmark::DoNotOptimize(db);
  }
  state.counters["blocks"] = static_cast<double>(blocks);
  state.counters["threads"] = static_cast<double>(threads);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(blocks));
}
BENCHMARK(BM_WhoisParse)
    ->Args({20, 1})
    ->Args({100, 1})
    ->Args({100, 2})
    ->Args({100, 4})
    ->Unit(benchmark::kMillisecond);

void BM_MrtParse(benchmark::State& state) {
  std::string path =
      dataset_for(static_cast<int>(state.range(0))) + "/bgp/rib.0.t0.mrt";
  std::size_t bytes = std::filesystem::file_size(path);
  std::size_t prefixes = 0;
  for (auto _ : state) {
    auto snapshot = mrt::read_rib_file(path);
    prefixes = snapshot ? snapshot->records.size() : 0;
    benchmark::DoNotOptimize(snapshot);
  }
  state.counters["prefixes"] = static_cast<double>(prefixes);
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_MrtParse)->Arg(20)->Arg(100)->Unit(benchmark::kMillisecond);

/// Args: {permille, threads}.
void BM_Classify(benchmark::State& state) {
  std::string dir = dataset_for(static_cast<int>(state.range(0)));
  auto bundle = leasing::load_dataset(dir);
  asgraph::AsGraph graph(&bundle.as_rel, &bundle.as2org);
  leasing::PipelineOptions options;
  options.threads = static_cast<unsigned>(state.range(1));
  std::size_t classified = 0;
  for (auto _ : state) {
    leasing::Pipeline pipeline(bundle.rib, graph, options);
    classified = 0;
    for (const whois::WhoisDb& db : bundle.whois) {
      classified += pipeline.classify(db).size();
    }
    benchmark::DoNotOptimize(classified);
  }
  state.counters["leaves"] = static_cast<double>(classified);
  state.counters["threads"] = static_cast<double>(options.threads);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(classified));
}
BENCHMARK(BM_Classify)
    ->Args({20, 1})
    ->Args({50, 1})
    ->Args({100, 1})
    ->Args({100, 2})
    ->Args({100, 4})
    ->Unit(benchmark::kMillisecond);

/// Args: {permille, threads} — the whole bundle load (five WHOIS files +
/// all RIB collectors as concurrent tasks).
void BM_DatasetLoad(benchmark::State& state) {
  std::string dir = dataset_for(static_cast<int>(state.range(0)));
  leasing::LoadOptions options;
  options.threads = static_cast<unsigned>(state.range(1));
  std::size_t prefixes = 0;
  for (auto _ : state) {
    auto bundle = leasing::load_dataset(dir, options);
    prefixes = bundle.rib.prefix_count();
    benchmark::DoNotOptimize(bundle);
  }
  state.counters["prefixes"] = static_cast<double>(prefixes);
  state.counters["threads"] = static_cast<double>(options.threads);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_DatasetLoad)
    ->Args({100, 1})
    ->Args({100, 4})
    ->Unit(benchmark::kMillisecond);

void BM_RpkiValidate(benchmark::State& state) {
  std::string dir = dataset_for(100);
  auto bundle = leasing::load_dataset(dir);
  const rpki::VrpSet* vrps = bundle.current_vrps();
  std::vector<std::pair<Prefix, Asn>> queries;
  bundle.rib.visit([&](const Prefix& p, const bgp::RouteInfo& info) {
    if (!info.origins.empty() && queries.size() < 10000) {
      queries.emplace_back(p, info.origins.front());
    }
  });
  std::size_t i = 0;
  for (auto _ : state) {
    auto v = vrps->validate(queries[i % queries.size()].first,
                            queries[i % queries.size()].second);
    benchmark::DoNotOptimize(v);
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RpkiValidate);

void BM_RibLookup(benchmark::State& state) {
  std::string dir = dataset_for(100);
  auto bundle = leasing::load_dataset(dir);
  std::vector<Prefix> queries;
  bundle.rib.visit([&](const Prefix& p, const bgp::RouteInfo&) {
    if (queries.size() < 10000) queries.push_back(p);
  });
  std::size_t i = 0;
  for (auto _ : state) {
    const auto* info = bundle.rib.exact(queries[i % queries.size()]);
    benchmark::DoNotOptimize(info);
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RibLookup);

}  // namespace

BENCHMARK_MAIN();
