// Ablation A5 — replace CAIDA-style curated AS relationships with
// relationships inferred from the AS paths in the RIB dumps themselves
// (asgraph/infer.h, Gao-style valley-free heuristic). Measures how much
// the classifier degrades when only self-bootstrapped topology knowledge
// is available.
#include <filesystem>

#include "asgraph/infer.h"
#include "common.h"
#include "mrt/rib_file.h"

using namespace sublet;

int main() {
  bench::print_banner(
      "bench_ablation_inferred_rels — curated vs path-inferred topology",
      "§4 'AS Relationships' dataset dependency (extension)");
  std::string dir = bench::ensure_dataset();
  auto bundle = leasing::load_dataset(dir);
  auto truth = sim::GroundTruth::load(dir);

  // Harvest AS paths straight from the MRT dumps.
  std::vector<std::vector<Asn>> paths;
  for (const auto& entry :
       std::filesystem::directory_iterator(dir + "/bgp")) {
    if (entry.path().extension() != ".mrt") continue;
    auto snapshot = mrt::read_rib_file(entry.path().string());
    if (!snapshot) continue;
    for (const auto& rec : snapshot->records) {
      for (const auto& e : rec.entries) {
        paths.push_back(e.attributes.as_path.flatten());
      }
    }
  }
  std::cerr << "[bench] harvested " << paths.size() << " AS paths\n";
  auto inferred = asgraph::infer_relationships(paths);
  std::cerr << "[bench] inferred " << inferred.edge_count()
            << " edges vs curated " << bundle.as_rel.edge_count() << "\n";

  TextTable table({"Topology source", "Edges", "Leased verdicts",
                   "Lease recall vs truth", "Lease precision vs truth"});
  struct Variant {
    const char* name;
    const asgraph::AsRelationships* rels;
  };
  for (const Variant& variant :
       {Variant{"curated (as-rel.txt)", &bundle.as_rel},
        Variant{"inferred from AS paths", &inferred}}) {
    asgraph::AsGraph graph(variant.rels, &bundle.as2org);
    leasing::Pipeline pipeline(bundle.rib, graph);
    std::size_t flagged = 0, tp = 0, active_truth = 0;
    for (const whois::WhoisDb& db : bundle.whois) {
      for (const auto& r : pipeline.classify(db)) {
        if (!r.leased()) continue;
        ++flagged;
        const sim::TruthRow* row = truth.find(r.prefix);
        if (row && row->is_leased) ++tp;
      }
    }
    for (const auto& row : truth.rows()) {
      if (row.is_leased && row.active && !row.legacy) ++active_truth;
    }
    table.add_row({variant.name, with_commas(variant.rels->edge_count()),
                   with_commas(flagged),
                   percent(static_cast<double>(tp) / active_truth),
                   flagged ? percent(static_cast<double>(tp) / flagged)
                           : "n/a"});
  }
  std::cout << table.to_string();
  std::cout << "\nIn this world every provider edge is exercised by the "
               "collector paths, so path inference even recovers the edges "
               "the curated snapshot randomly failed to observe (the "
               "p_asrel_edge_dropped noise) — precision edges up. On the "
               "real Internet the trade-off cuts both ways: backup/peering "
               "links that never appear on collector paths stay invisible "
               "to inference (§7 'Incomplete BGP Data').\n";
  return 0;
}
