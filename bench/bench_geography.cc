// Geography of the leasing market — the Table 3 narrative (§6.3):
// "Resilans ... leases 806 prefixes within Sweden. Cyber Assets FZCO ...
// leases prefixes to 44 countries, including 332 to the U.S." — i.e. some
// holders lease domestically, others export address space worldwide.
#include <map>
#include <set>

#include "common.h"

using namespace sublet;

int main() {
  bench::print_banner("bench_geography — where leased space ends up",
                      "§6.3 Table 3 narrative (domestic vs exported leases)");
  bench::FullRun run;

  // Per lease: holder country (WHOIS org) vs originator country (as2org).
  std::map<std::string, std::size_t> holder_domestic, holder_exported;
  std::map<std::string, std::set<std::string>> holder_destinations;
  std::size_t domestic = 0, exported = 0, unknown = 0;
  for (const auto& r : run.results) {
    if (!r.leased()) continue;
    std::string holder_country;
    if (const whois::WhoisDb* db = run.bundle.db_for(r.rir)) {
      if (const whois::OrgRec* org = db->org(r.holder_org)) {
        holder_country = org->country;
      }
    }
    std::string origin_country;
    if (!r.leaf_origins.empty()) {
      const std::string& org_id =
          run.bundle.as2org.org_of(r.leaf_origins.front());
      origin_country = run.bundle.as2org.org_country(org_id);
    }
    if (holder_country.empty() || origin_country.empty()) {
      ++unknown;
      continue;
    }
    if (holder_country == origin_country) {
      ++domestic;
      ++holder_domestic[r.holder_org];
    } else {
      ++exported;
      ++holder_exported[r.holder_org];
    }
    holder_destinations[r.holder_org].insert(origin_country);
  }

  std::cout << "Leases used in the holder's own country: "
            << with_commas(domestic) << "\n";
  std::cout << "Leases exported to another country:      "
            << with_commas(exported) << " ("
            << percent(static_cast<double>(exported) /
                       static_cast<double>(domestic + exported))
            << ")\n";
  std::cout << "Country unknown on one side:             "
            << with_commas(unknown) << "\n\n";

  // Rank exporters by destination spread (the Cyber-Assets profile) and
  // find a domestic-only holder (the Resilans profile).
  std::string top_exporter;
  std::size_t top_spread = 0;
  for (const auto& [holder, destinations] : holder_destinations) {
    if (holder_exported[holder] > 0 && destinations.size() > top_spread) {
      top_spread = destinations.size();
      top_exporter = holder;
    }
  }
  std::string domestic_holder;
  std::size_t domestic_best = 0;
  for (const auto& [holder, count] : holder_domestic) {
    if (holder_exported[holder] == 0 && count > domestic_best) {
      domestic_best = count;
      domestic_holder = holder;
    }
  }
  if (!top_exporter.empty()) {
    std::cout << "Widest exporter: " << top_exporter << " leases into "
              << top_spread << " countries ("
              << with_commas(holder_exported[top_exporter])
              << " cross-border leases) — the Cyber Assets FZCO profile\n";
  }
  if (!domestic_holder.empty()) {
    std::cout << "Largest domestic-only holder: " << domestic_holder << " ("
              << with_commas(domestic_best)
              << " leases, all in-country) — the Resilans profile\n";
  }
  return 0;
}
