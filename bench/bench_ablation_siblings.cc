// Ablation A2 (§6.2 Vodafone FPs) — the value of sibling (as2org)
// knowledge in the relatedness check. Without it, every delegation to a
// same-company AS with a distinct org looks like a lease.
#include "common.h"

using namespace sublet;

namespace {

struct Outcome {
  std::size_t leased = 0;
  std::size_t fp_on_negatives = 0;
  std::size_t fp_total = 0;
};

Outcome score(const std::vector<leasing::LeaseInference>& results,
              const sim::GroundTruth& truth) {
  Outcome out;
  for (const auto& r : results) {
    if (!r.leased()) continue;
    ++out.leased;
    const sim::TruthRow* row = truth.find(r.prefix);
    if (row && !row->is_leased) {
      ++out.fp_total;
      if (row->eval_negative) ++out.fp_on_negatives;
    }
  }
  return out;
}

}  // namespace

int main() {
  bench::print_banner("bench_ablation_siblings — sibling-knowledge ablation",
                      "§6.2 false positives (Vodafone subsidiaries)");

  bench::FullRun with_siblings({}, {.use_siblings = true});
  auto a = score(with_siblings.results, with_siblings.truth);

  bench::FullRun without_siblings({}, {.use_siblings = false});
  auto b = score(without_siblings.results, without_siblings.truth);

  TextTable table({"Relatedness", "Leased verdicts", "False positives",
                   "FPs on ISP negatives"});
  table.add_row({"rel-edges + siblings", with_commas(a.leased),
                 with_commas(a.fp_total), with_commas(a.fp_on_negatives)});
  table.add_row({"rel-edges only", with_commas(b.leased),
                 with_commas(b.fp_total), with_commas(b.fp_on_negatives)});
  std::cout << table.to_string();

  std::cout << "\nNote: the Vodafone-style FPs survive in BOTH rows — the "
               "subsidiaries register distinct org objects, so neither the "
               "relationship data nor as2org links them (the paper's §6.2 "
               "explanation). The delta between rows is the FP mass that "
               "sibling knowledge *does* remove for honestly-registered "
               "multi-AS organisations.\n";
  return 0;
}
