// Loopback client for the prefix-query wire protocol.
//
// One blocking TCP connection, one request line in, one response line out —
// used by the tests, the CLI `query` subcommand, and the serving benches.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "util/expected.h"

namespace sublet::serve {

class QueryClient {
 public:
  QueryClient(QueryClient&& other) noexcept;
  QueryClient& operator=(QueryClient&& other) noexcept;
  ~QueryClient();

  QueryClient(const QueryClient&) = delete;
  QueryClient& operator=(const QueryClient&) = delete;

  /// Connect to `host:port` (host is a dotted-quad, e.g. "127.0.0.1").
  static Expected<QueryClient> connect(const std::string& host,
                                       std::uint16_t port);

  /// Send one request line and read the one-line response (returned
  /// without the trailing newline). Error on a broken connection.
  Expected<std::string> request(std::string_view line);

  void close();

 private:
  explicit QueryClient(int fd) : fd_(fd) {}

  int fd_ = -1;
  std::string buffer_;  // bytes past the last returned response line
};

}  // namespace sublet::serve
