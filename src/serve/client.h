// Loopback client for the prefix-query wire protocol.
//
// One TCP connection, one request line in, one response line out — used by
// the tests, the CLI `query` subcommand, and the serving benches.
//
// Robustness (docs/ROBUSTNESS.md): connect and per-request I/O run under
// poll-based deadlines, so a stalled server surfaces a typed timeout error
// (Error::code == ETIMEDOUT, see is_timeout) instead of blocking forever;
// request_with_retry layers exponential backoff + deterministic jitter on
// top for transient failures.
#pragma once

#include <cerrno>
#include <chrono>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/expected.h"

namespace sublet::serve {

/// True when `error` came from a client-side deadline (connect or I/O).
inline bool is_timeout(const Error& error) { return error.code == ETIMEDOUT; }

/// Client-side deadlines (namespace scope so `= {}` defaults work; use
/// the QueryClient::Timeouts alias at call sites).
struct ClientTimeouts {
  int connect_ms = 5000;  ///< 0 = block until the kernel gives up
  int io_ms = 10000;      ///< per-request send+receive deadline; 0 = none
};

/// Reconnect-per-attempt retry policy for request_with_retry. Backoff
/// doubles per attempt, capped, with +/- `jitter` fraction randomized
/// (deterministically from `seed`) so synchronized clients spread out.
struct ClientRetryPolicy {
  int attempts = 3;
  int base_backoff_ms = 10;
  int max_backoff_ms = 1000;
  double jitter = 0.5;
  std::uint64_t seed = 0x5eedu;
};

/// One per-address answer decoded from a binary response frame
/// (serve/wire.h Result).
struct BinResult {
  bool found = false;
  std::uint32_t prefix_addr = 0;  ///< matched prefix network, host order
  std::uint8_t prefix_len = 0;
  std::uint8_t group = 0;  ///< raw leasing::InferenceGroup value
  bool leased = false;
};

/// One decoded binary response frame.
struct BinResponse {
  std::uint32_t request_id = 0;
  std::uint8_t opcode = 0;
  std::uint8_t status = 0;  ///< wire::Status; results empty unless kOk
  std::uint32_t epoch = 0;  ///< epoch echoed by the server (0 = latest)
  std::vector<BinResult> results;
};

class QueryClient {
 public:
  using Timeouts = ClientTimeouts;
  using RetryPolicy = ClientRetryPolicy;

  QueryClient(QueryClient&& other) noexcept;
  QueryClient& operator=(QueryClient&& other) noexcept;
  ~QueryClient();

  QueryClient(const QueryClient&) = delete;
  QueryClient& operator=(const QueryClient&) = delete;

  /// Connect to `host:port` (host is a dotted-quad, e.g. "127.0.0.1")
  /// within timeouts.connect_ms; the returned client applies
  /// timeouts.io_ms to every request.
  static Expected<QueryClient> connect(const std::string& host,
                                       std::uint16_t port,
                                       Timeouts timeouts = {});

  /// Send one request line and read the one-line response (returned
  /// without the trailing newline). Error on a broken connection; a typed
  /// timeout error (is_timeout) when the deadline passes first.
  Expected<std::string> request(std::string_view line);

  /// Send one request line and read a multi-line response, ending at the
  /// line that equals `terminator` (the METRICS verb ends its Prometheus
  /// text with "# EOF"). Returns the full body including the terminator
  /// line, each line newline-terminated. Same deadlines as request().
  Expected<std::string> request_multiline(std::string_view line,
                                          std::string_view terminator =
                                              "# EOF");

  // ---- binary frame protocol (serve/wire.h) -----------------------------

  /// One LPM batch frame: send the raw host-order /32 addresses, wait for
  /// the matching response, and decode it. Same io_ms deadline and typed
  /// timeout errors as request(). Binary frames and text requests can be
  /// interleaved freely on one connection. `epoch` != 0 asks a
  /// catalog-mode server to answer from that epoch (as-of semantics); a
  /// server that cannot resolve it responds status kBadEpoch.
  Expected<BinResponse> request_binary_batch(
      std::span<const std::uint32_t> addrs, std::uint32_t epoch = 0);

  /// Pipelining: send all K batch frames back-to-back (one write burst,
  /// no round-trip stalls), then collect the K responses, matching each
  /// to its batch by echoed request id. The returned vector is in batch
  /// order. Any frame-level error status or unmatched id fails the call.
  /// All frames carry the same `epoch` (0 = latest).
  Expected<std::vector<BinResponse>> pipeline_binary(
      std::span<const std::vector<std::uint32_t>> batches,
      std::uint32_t epoch = 0);

  /// One (addr, len) entry of an EXACT_BATCH frame.
  struct ExactQuery {
    std::uint32_t addr = 0;  ///< network bits, host order
    std::uint8_t len = 0;
  };

  /// One EXACT_BATCH frame: exact-match each (addr, len) prefix, same
  /// deadlines, epoch pinning, and error typing as request_binary_batch.
  Expected<BinResponse> request_exact_batch(
      std::span<const ExactQuery> prefixes, std::uint32_t epoch = 0);

  /// One-shot round trip with retries: each attempt opens a fresh
  /// connection, sends `line`, and reads the response; failed attempts
  /// back off exponentially with jitter. Returns the first successful
  /// response or the last attempt's error (typed timeout errors from the
  /// final attempt surface unchanged, so is_timeout still works).
  static Expected<std::string> request_with_retry(
      const std::string& host, std::uint16_t port, std::string_view line,
      const RetryPolicy& policy = {}, Timeouts timeouts = {});

  /// request_multiline() under the same reconnect-per-attempt retry loop
  /// (METRICS scrapes and other multi-line verbs).
  static Expected<std::string> request_multiline_with_retry(
      const std::string& host, std::uint16_t port, std::string_view line,
      std::string_view terminator = "# EOF", const RetryPolicy& policy = {},
      Timeouts timeouts = {});

  /// request_binary_batch() under the same retry loop: every attempt
  /// reconnects and resends the whole frame. A frame-level error status
  /// (kBadEpoch, kBadFrame, ...) is a completed round trip — it is
  /// returned, not retried; only transport failures retry.
  static Expected<BinResponse> request_binary_batch_with_retry(
      const std::string& host, std::uint16_t port,
      std::span<const std::uint32_t> addrs, std::uint32_t epoch = 0,
      const RetryPolicy& policy = {}, Timeouts timeouts = {});

  void close();

 private:
  QueryClient(int fd, Timeouts timeouts) : fd_(fd), timeouts_(timeouts) {}

  /// Send `data` fully within the deadline (shared by text and binary
  /// paths). `deadline` only applies when `has_deadline`.
  Expected<bool> send_all(std::string_view data, bool has_deadline,
                          std::chrono::steady_clock::time_point deadline);
  /// Read one complete binary frame from the connection (consuming it
  /// from the internal buffer) and decode it.
  Expected<BinResponse> recv_frame(bool has_deadline,
                                   std::chrono::steady_clock::time_point
                                       deadline);
  /// recv_frame plus request-id validation: the echoed id must fall in
  /// [first_id, first_id + window) and, when `seen` is given, must not be
  /// a duplicate. `seen` is marked on success. window == 1 is the
  /// single-request form used by the *_batch calls.
  Expected<BinResponse> recv_matched(std::uint32_t first_id,
                                     std::size_t window,
                                     std::vector<bool>* seen,
                                     bool has_deadline,
                                     std::chrono::steady_clock::time_point
                                         deadline);

  int fd_ = -1;
  Timeouts timeouts_;
  std::uint32_t next_request_id_ = 1;
  std::string buffer_;  // bytes past the last returned response line
};

}  // namespace sublet::serve
