// Length-prefixed binary frame protocol for the query server
// (docs/SERVING.md).
//
// The text protocol pays a full JSON render and one syscall round trip per
// lookup; the binary protocol carries batches of raw u32 addresses so one
// frame resolves hundreds of lookups straight off the engine's prefetched
// lookup_batch path. Frames share the TCP port with the text verbs: the
// server sniffs the first byte of each request — 0xB5 (never a printable
// verb letter) opens a frame header, anything else is a text line.
//
// Every frame, both directions, is a fixed 20-byte little-endian header
// followed by `payload_len` payload bytes:
//
//   offset  size  field
//        0     4  magic       0x544C42B5 ("\xB5BLT" on the wire)
//        4     1  opcode      request: kOpLpmBatch | kOpExactBatch
//                             response: echoed from the request
//        5     1  status      request: 0; response: Status
//        6     2  reserved    0
//        8     4  request_id  echoed verbatim so clients can pipeline
//       12     4  payload_len payload bytes after the header
//       16     4  epoch       request: epoch timestamp to answer from
//                             (0 = latest; needs a catalog-mode server,
//                             docs/TIMETRAVEL.md); response: echoed
//
// Request payloads:
//   kOpLpmBatch    N x u32 LE host-order addresses (payload_len = 4N)
//   kOpExactBatch  N x {u32 addr, u8 prefix_len, u8 pad[3]} (8N bytes)
//
// Response payload (status == kOk): N x 8-byte Result entries, one per
// request entry in order. status != kOk carries an empty payload.
//
// Error handling is asymmetric by design: a malformed *frame body* (bad
// opcode, ragged payload length) gets an error-status response and the
// connection survives — the stream is still framed, so the peer can
// resync. A bad *magic* means framing itself is lost and the only safe
// move is to close. An oversized payload_len is answered with kTooLarge
// and then closed (the server refuses to buffer it). An epoch the server
// cannot resolve (no catalog, predates the first epoch, or its chain
// fails to materialize) is a body-level error too: kBadEpoch with an
// empty payload, and the connection survives.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>

namespace sublet::serve::wire {

/// First header byte on the wire; must never collide with the first byte
/// of a text verb (ASCII letters) or CR/LF.
inline constexpr std::uint8_t kMagicByte0 = 0xB5;
inline constexpr std::uint32_t kMagic = 0x544C42B5u;  // LE: B5 42 4C 54

inline constexpr std::size_t kHeaderSize = 20;

enum Opcode : std::uint8_t {
  kOpLpmBatch = 1,    ///< payload: raw u32 addresses, /32 LPM each
  kOpExactBatch = 2,  ///< payload: (addr, prefix_len) pairs, exact match
};

enum Status : std::uint8_t {
  kOk = 0,
  kBadFrame = 1,   ///< ragged payload length / invalid entry
  kTooLarge = 2,   ///< payload_len over kMaxPayload (connection closes)
  kBadOpcode = 3,  ///< unknown opcode byte
  kBadEpoch = 4,   ///< epoch unresolvable (connection survives)
};

/// Cap on addresses per frame (64x the text MLPM cap — one frame is meant
/// to replace hundreds of text round trips).
inline constexpr std::size_t kMaxFrameEntries = 65536;
/// Largest request payload the server will buffer: the exact-batch entry
/// stride times the entry cap.
inline constexpr std::size_t kMaxPayload = kMaxFrameEntries * 8;

struct FrameHeader {
  std::uint32_t magic = kMagic;
  std::uint8_t opcode = 0;
  std::uint8_t status = 0;
  std::uint16_t reserved = 0;
  std::uint32_t request_id = 0;
  std::uint32_t payload_len = 0;
  std::uint32_t epoch = 0;  ///< 0 = latest epoch (or single-snapshot mode)
};

/// One per-address answer. `prefix_len == kMissLen` means no covering
/// (or exactly matching) record; the other fields are zero then.
struct Result {
  std::uint32_t prefix_addr = 0;  ///< matched prefix network, host order
  std::uint8_t prefix_len = 0;
  std::uint8_t group = 0;  ///< raw leasing::InferenceGroup value
  std::uint8_t flags = 0;  ///< bit 0: leased
  std::uint8_t reserved = 0;
};
inline constexpr std::uint8_t kMissLen = 0xFF;
inline constexpr std::uint8_t kFlagLeased = 0x01;
inline constexpr std::size_t kResultSize = 8;

// ---- little-endian field access (works on either host endianness) ------

inline std::uint32_t load_u32le(const char* p) {
  const auto* b = reinterpret_cast<const unsigned char*>(p);
  return static_cast<std::uint32_t>(b[0]) |
         (static_cast<std::uint32_t>(b[1]) << 8) |
         (static_cast<std::uint32_t>(b[2]) << 16) |
         (static_cast<std::uint32_t>(b[3]) << 24);
}

inline void store_u32le(char* p, std::uint32_t v) {
  p[0] = static_cast<char>(v & 0xFF);
  p[1] = static_cast<char>((v >> 8) & 0xFF);
  p[2] = static_cast<char>((v >> 16) & 0xFF);
  p[3] = static_cast<char>((v >> 24) & 0xFF);
}

/// Decode a header from `kHeaderSize` buffered bytes. Returns false when
/// the magic does not match (framing lost; caller should close).
inline bool decode_header(const char* p, FrameHeader& out) {
  out.magic = load_u32le(p);
  if (out.magic != kMagic) return false;
  out.opcode = static_cast<std::uint8_t>(p[4]);
  out.status = static_cast<std::uint8_t>(p[5]);
  out.reserved = static_cast<std::uint16_t>(
      static_cast<unsigned char>(p[6]) |
      (static_cast<unsigned char>(p[7]) << 8));
  out.request_id = load_u32le(p + 8);
  out.payload_len = load_u32le(p + 12);
  out.epoch = load_u32le(p + 16);
  return true;
}

/// Append an encoded header to `out` (used for both directions).
inline void append_header(std::string& out, const FrameHeader& h) {
  char buf[kHeaderSize];
  store_u32le(buf, h.magic);
  buf[4] = static_cast<char>(h.opcode);
  buf[5] = static_cast<char>(h.status);
  buf[6] = static_cast<char>(h.reserved & 0xFF);
  buf[7] = static_cast<char>((h.reserved >> 8) & 0xFF);
  store_u32le(buf + 8, h.request_id);
  store_u32le(buf + 12, h.payload_len);
  store_u32le(buf + 16, h.epoch);
  out.append(buf, kHeaderSize);
}

inline void append_result(std::string& out, const Result& r) {
  char buf[kResultSize];
  store_u32le(buf, r.prefix_addr);
  buf[4] = static_cast<char>(r.prefix_len);
  buf[5] = static_cast<char>(r.group);
  buf[6] = static_cast<char>(r.flags);
  buf[7] = static_cast<char>(r.reserved);
  out.append(buf, kResultSize);
}

inline Result decode_result(const char* p) {
  Result r;
  r.prefix_addr = load_u32le(p);
  r.prefix_len = static_cast<std::uint8_t>(p[4]);
  r.group = static_cast<std::uint8_t>(p[5]);
  r.flags = static_cast<std::uint8_t>(p[6]);
  r.reserved = static_cast<std::uint8_t>(p[7]);
  return r;
}

}  // namespace sublet::serve::wire
