#include "serve/engine_state.h"

namespace sublet::serve {

Expected<std::shared_ptr<const EngineState>> EngineState::load(
    const std::string& path, snapshot::Snapshot::Mode mode,
    std::uint64_t generation) {
  auto snap = snapshot::Snapshot::open(path, mode);
  if (!snap) return snap.error();
  return adopt(std::make_unique<snapshot::Snapshot>(std::move(*snap)), path,
               generation);
}

Expected<std::shared_ptr<const EngineState>> EngineState::adopt(
    std::unique_ptr<snapshot::Snapshot> snap, std::string path,
    std::uint64_t generation) {
  auto engine = QueryEngine::create(snap.get());
  if (!engine) return engine.error();
  return std::shared_ptr<const EngineState>(new EngineState(
      std::move(snap), std::move(*engine), std::move(path), generation));
}

}  // namespace sublet::serve
