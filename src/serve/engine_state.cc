#include "serve/engine_state.h"

namespace sublet::serve {

Expected<std::shared_ptr<const EngineState>> EngineState::load(
    const std::string& path, snapshot::Snapshot::Mode mode,
    std::uint64_t generation, std::uint32_t epoch) {
  auto snap = snapshot::Snapshot::open(path, mode);
  if (!snap) return snap.error();
  return adopt(std::make_unique<snapshot::Snapshot>(std::move(*snap)), path,
               generation, epoch);
}

Expected<std::shared_ptr<const EngineState>> EngineState::adopt(
    std::unique_ptr<snapshot::Snapshot> snap, std::string path,
    std::uint64_t generation, std::uint32_t epoch) {
  auto engine = QueryEngine::create(snap.get());
  if (!engine) return engine.error();
  return std::shared_ptr<const EngineState>(
      new EngineState(std::move(snap), std::move(*engine), std::move(path),
                      generation, epoch));
}

Expected<std::shared_ptr<const EngineState>> EngineState::adopt_with_trie(
    std::unique_ptr<snapshot::Snapshot> snap, PrefixTrie<std::uint32_t> trie,
    std::string path, std::uint64_t generation, std::uint32_t epoch) {
  auto engine = QueryEngine::create(snap.get(), std::move(trie));
  if (!engine) return engine.error();
  return std::shared_ptr<const EngineState>(
      new EngineState(std::move(snap), std::move(*engine), std::move(path),
                      generation, epoch));
}

Expected<std::shared_ptr<const EngineState>> EngineState::adopt_patched(
    std::unique_ptr<snapshot::Snapshot> snap,
    std::shared_ptr<const PrefixTrie<std::uint32_t>> trie,
    const QueryEngine& base, std::span<const std::uint32_t> surviving,
    std::span<const std::uint32_t> patched, std::string path,
    std::uint64_t generation, std::uint32_t epoch) {
  auto engine = QueryEngine::create_patched(snap.get(), std::move(trie),
                                            base, surviving, patched);
  if (!engine) return engine.error();
  return std::shared_ptr<const EngineState>(
      new EngineState(std::move(snap), std::move(*engine), std::move(path),
                      generation, epoch));
}

}  // namespace sublet::serve
