// Minimal JSON emission for the wire protocol (docs/SERVING.md).
//
// Responses are single-line JSON objects; we only ever *write* JSON, so a
// tiny append-only builder is all the subsystem needs (no parser, no DOM).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace sublet::serve {

/// Escape per RFC 8259: quote, backslash, and control characters.
std::string json_escape(std::string_view s);

/// Append-only single-line JSON object/array builder. Keys and values are
/// emitted in call order; the caller is responsible for nesting balance.
class JsonWriter {
 public:
  JsonWriter& begin_object() { return open('{'); }
  JsonWriter& end_object() { return close('}'); }
  JsonWriter& begin_array(std::string_view key) {
    return this->key(key).open('[');
  }
  JsonWriter& end_array() { return close(']'); }

  JsonWriter& key(std::string_view k) {
    comma();
    out_ += '"';
    out_ += json_escape(k);
    out_ += "\":";
    pending_value_ = true;
    return *this;
  }

  JsonWriter& value(std::string_view v) {
    comma();
    out_ += '"';
    out_ += json_escape(v);
    out_ += '"';
    return *this;
  }
  JsonWriter& value(bool v) {
    comma();
    out_ += v ? "true" : "false";
    return *this;
  }
  JsonWriter& value(std::uint64_t v) {
    comma();
    out_ += std::to_string(v);
    return *this;
  }
  JsonWriter& value(double v);

  const std::string& str() const { return out_; }
  std::string take() { return std::move(out_); }

 private:
  JsonWriter& open(char c) {
    comma();
    out_ += c;
    first_ = true;
    return *this;
  }
  JsonWriter& close(char c) {
    out_ += c;
    first_ = false;
    return *this;
  }
  void comma() {
    if (pending_value_) {
      pending_value_ = false;
      return;  // value follows its key directly
    }
    if (!first_ && !out_.empty()) out_ += ',';
    first_ = false;
  }

  std::string out_;
  bool first_ = true;
  bool pending_value_ = false;
};

}  // namespace sublet::serve
