// JSON emission for the wire protocol (docs/SERVING.md).
//
// The builder itself moved to util/jsonw.h when the observability layer's
// structured logger started emitting JSON too; this header keeps the
// historical sublet::serve names working for the serving code and tests.
#pragma once

#include "util/jsonw.h"

namespace sublet::serve {

using sublet::JsonWriter;
using sublet::json_escape;

}  // namespace sublet::serve
