#include "serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace sublet::serve {

QueryClient::QueryClient(QueryClient&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), buffer_(std::move(other.buffer_)) {}

QueryClient& QueryClient::operator=(QueryClient&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    buffer_ = std::move(other.buffer_);
  }
  return *this;
}

QueryClient::~QueryClient() { close(); }

void QueryClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Expected<QueryClient> QueryClient::connect(const std::string& host,
                                           std::uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return fail("socket(): " + std::string(strerror(errno)));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return fail("bad host address '" + host + "'");
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    std::string message = "connect(): " + std::string(strerror(errno));
    ::close(fd);
    return fail(std::move(message));
  }
  return QueryClient(fd);
}

Expected<std::string> QueryClient::request(std::string_view line) {
  if (fd_ < 0) return fail("client is closed");
  std::string out(line);
  out += '\n';
  std::string_view data = out;
  while (!data.empty()) {
    ssize_t n = ::send(fd_, data.data(), data.size(), MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return fail("send(): connection lost");
    }
    data.remove_prefix(static_cast<std::size_t>(n));
  }
  char chunk[4096];
  for (;;) {
    std::size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      std::string response = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      if (!response.empty() && response.back() == '\r') response.pop_back();
      return response;
    }
    ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return fail("recv(): connection closed mid-response");
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

}  // namespace sublet::serve
