#include "serve/client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "serve/wire.h"
#include "util/faultinject.h"
#include "util/rng.h"

namespace sublet::serve {

namespace {

using Clock = std::chrono::steady_clock;

/// Milliseconds left before `deadline`, clamped to >= 0; -1 = no deadline.
int remaining_ms(bool has_deadline, Clock::time_point deadline) {
  if (!has_deadline) return -1;
  auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                  deadline - Clock::now())
                  .count();
  return static_cast<int>(std::max<long long>(left, 0));
}

/// poll() one fd for `events`; >0 ready, 0 deadline hit, <0 hard error.
/// timeout_ms < 0 blocks indefinitely. EINTR is retried.
int wait_fd(int fd, short events, int timeout_ms) {
  pollfd pfd{fd, events, 0};
  for (;;) {
    int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc < 0 && errno == EINTR) continue;
    return rc;
  }
}

bool set_nonblocking(int fd, bool on) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  int next = on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  return ::fcntl(fd, F_SETFL, next) >= 0;
}

}  // namespace

QueryClient::QueryClient(QueryClient&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      timeouts_(other.timeouts_),
      buffer_(std::move(other.buffer_)) {}

QueryClient& QueryClient::operator=(QueryClient&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    timeouts_ = other.timeouts_;
    buffer_ = std::move(other.buffer_);
  }
  return *this;
}

QueryClient::~QueryClient() { close(); }

void QueryClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Expected<QueryClient> QueryClient::connect(const std::string& host,
                                           std::uint16_t port,
                                           Timeouts timeouts) {
  if (int injected = 0; fault::inject("client.connect", &injected)) {
    return fail_code(
        "connect(): " + std::string(strerror(injected)) + " (injected)",
        injected);
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return fail("socket(): " + std::string(strerror(errno)));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return fail("bad host address '" + host + "'");
  }
  // Non-blocking connect + poll gives us a real connect deadline; the fd is
  // switched back to blocking afterwards (request() does its own polling).
  if (timeouts.connect_ms > 0 && !set_nonblocking(fd, true)) {
    std::string message = "fcntl(): " + std::string(strerror(errno));
    ::close(fd);
    return fail(std::move(message));
  }
  int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    std::string message = "connect(): " + std::string(strerror(errno));
    ::close(fd);
    return fail(std::move(message));
  }
  if (rc != 0) {
    int ready = wait_fd(fd, POLLOUT, timeouts.connect_ms);
    if (ready == 0) {
      ::close(fd);
      return fail_code("timeout: connect to " + host + " took longer than " +
                           std::to_string(timeouts.connect_ms) + "ms",
                       ETIMEDOUT);
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (ready < 0 ||
        ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
      if (err == 0) err = errno;
      ::close(fd);
      return fail("connect(): " + std::string(strerror(err)));
    }
  }
  if (timeouts.connect_ms > 0 && !set_nonblocking(fd, false)) {
    std::string message = "fcntl(): " + std::string(strerror(errno));
    ::close(fd);
    return fail(std::move(message));
  }
  return QueryClient(fd, timeouts);
}

Expected<std::string> QueryClient::request(std::string_view line) {
  if (fd_ < 0) return fail("client is closed");
  const bool has_deadline = timeouts_.io_ms > 0;
  const auto deadline =
      Clock::now() + std::chrono::milliseconds(
                         has_deadline ? timeouts_.io_ms : 0);
  std::string out(line);
  out += '\n';
  if (auto sent = send_all(out, has_deadline, deadline); !sent) {
    return sent.error();
  }
  char chunk[4096];
  for (;;) {
    std::size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      std::string response = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      if (!response.empty() && response.back() == '\r') response.pop_back();
      return response;
    }
    int ready = wait_fd(fd_, POLLIN, remaining_ms(has_deadline, deadline));
    if (ready == 0) {
      return fail_code("timeout: no response within " +
                           std::to_string(timeouts_.io_ms) + "ms",
                       ETIMEDOUT);
    }
    if (ready < 0) return fail("poll(): " + std::string(strerror(errno)));
    if (int injected = 0; fault::inject("client.recv", &injected)) {
      return fail_code(
          "recv(): " + std::string(strerror(injected)) + " (injected)",
          injected);
    }
    ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0 && (errno == EINTR || errno == EAGAIN)) continue;
    if (n <= 0) return fail("recv(): connection closed mid-response");
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

Expected<std::string> QueryClient::request_multiline(
    std::string_view line, std::string_view terminator) {
  if (fd_ < 0) return fail("client is closed");
  const bool has_deadline = timeouts_.io_ms > 0;
  const auto deadline =
      Clock::now() + std::chrono::milliseconds(
                         has_deadline ? timeouts_.io_ms : 0);
  std::string out(line);
  out += '\n';
  if (auto sent = send_all(out, has_deadline, deadline); !sent) {
    return sent.error();
  }
  std::string body;
  char chunk[4096];
  for (;;) {
    std::size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      std::string response = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      if (!response.empty() && response.back() == '\r') response.pop_back();
      body += response;
      body += '\n';
      if (response == terminator) return body;
      continue;
    }
    int ready = wait_fd(fd_, POLLIN, remaining_ms(has_deadline, deadline));
    if (ready == 0) {
      return fail_code("timeout: no response within " +
                           std::to_string(timeouts_.io_ms) + "ms",
                       ETIMEDOUT);
    }
    if (ready < 0) return fail("poll(): " + std::string(strerror(errno)));
    if (int injected = 0; fault::inject("client.recv", &injected)) {
      return fail_code(
          "recv(): " + std::string(strerror(injected)) + " (injected)",
          injected);
    }
    ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0 && (errno == EINTR || errno == EAGAIN)) continue;
    if (n <= 0) return fail("recv(): connection closed mid-response");
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

Expected<bool> QueryClient::send_all(std::string_view data, bool has_deadline,
                                     Clock::time_point deadline) {
  while (!data.empty()) {
    int ready = wait_fd(fd_, POLLOUT, remaining_ms(has_deadline, deadline));
    if (ready == 0) {
      return fail_code("timeout: request write exceeded " +
                           std::to_string(timeouts_.io_ms) + "ms",
                       ETIMEDOUT);
    }
    if (ready < 0) return fail("poll(): " + std::string(strerror(errno)));
    ssize_t n = ::send(fd_, data.data(), data.size(), MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && (errno == EINTR || errno == EAGAIN)) continue;
      return fail("send(): connection lost");
    }
    data.remove_prefix(static_cast<std::size_t>(n));
  }
  return true;
}

Expected<BinResponse> QueryClient::recv_frame(bool has_deadline,
                                              Clock::time_point deadline) {
  char chunk[4096];
  auto fill_to = [&](std::size_t need) -> Expected<bool> {
    while (buffer_.size() < need) {
      int ready = wait_fd(fd_, POLLIN, remaining_ms(has_deadline, deadline));
      if (ready == 0) {
        return fail_code("timeout: no response within " +
                             std::to_string(timeouts_.io_ms) + "ms",
                         ETIMEDOUT);
      }
      if (ready < 0) return fail("poll(): " + std::string(strerror(errno)));
      if (int injected = 0; fault::inject("client.recv", &injected)) {
        return fail_code(
            "recv(): " + std::string(strerror(injected)) + " (injected)",
            injected);
      }
      ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n < 0 && (errno == EINTR || errno == EAGAIN)) continue;
      if (n <= 0) return fail("recv(): connection closed mid-response");
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
    return true;
  };
  if (auto ok = fill_to(wire::kHeaderSize); !ok) return ok.error();
  wire::FrameHeader header;
  if (!wire::decode_header(buffer_.data(), header)) {
    return fail("binary response: bad frame magic");
  }
  if (header.payload_len > wire::kMaxPayload ||
      header.payload_len % wire::kResultSize != 0) {
    return fail("binary response: invalid payload length " +
                std::to_string(header.payload_len));
  }
  if (auto ok = fill_to(wire::kHeaderSize + header.payload_len); !ok) {
    return ok.error();
  }
  BinResponse response;
  response.request_id = header.request_id;
  response.opcode = header.opcode;
  response.status = header.status;
  response.epoch = header.epoch;
  const std::size_t count = header.payload_len / wire::kResultSize;
  response.results.reserve(count);
  const char* payload = buffer_.data() + wire::kHeaderSize;
  for (std::size_t i = 0; i < count; ++i) {
    const wire::Result raw =
        wire::decode_result(payload + i * wire::kResultSize);
    BinResult result;
    result.found = raw.prefix_len != wire::kMissLen;
    if (result.found) {
      result.prefix_addr = raw.prefix_addr;
      result.prefix_len = raw.prefix_len;
      result.group = raw.group;
      result.leased = (raw.flags & wire::kFlagLeased) != 0;
    }
    response.results.push_back(result);
  }
  buffer_.erase(0, wire::kHeaderSize + header.payload_len);
  return response;
}

Expected<BinResponse> QueryClient::recv_matched(
    std::uint32_t first_id, std::size_t window, std::vector<bool>* seen,
    bool has_deadline, std::chrono::steady_clock::time_point deadline) {
  auto response = recv_frame(has_deadline, deadline);
  if (!response) return response.error();
  const std::uint32_t id = response->request_id;
  const bool in_window = id >= first_id && id - first_id < window;
  if (!in_window || (seen != nullptr && (*seen)[id - first_id])) {
    if (window == 1) {
      return fail("binary response id " + std::to_string(id) +
                  " does not match request id " + std::to_string(first_id));
    }
    return fail("binary response id " + std::to_string(id) +
                " does not match any in-flight request");
  }
  if (seen != nullptr) (*seen)[id - first_id] = true;
  return response;
}

Expected<BinResponse> QueryClient::request_binary_batch(
    std::span<const std::uint32_t> addrs, std::uint32_t epoch) {
  if (fd_ < 0) return fail("client is closed");
  const bool has_deadline = timeouts_.io_ms > 0;
  const auto deadline =
      Clock::now() +
      std::chrono::milliseconds(has_deadline ? timeouts_.io_ms : 0);
  wire::FrameHeader header;
  header.opcode = wire::kOpLpmBatch;
  header.request_id = next_request_id_++;
  header.payload_len = static_cast<std::uint32_t>(addrs.size() * 4);
  header.epoch = epoch;
  std::string frame;
  frame.reserve(wire::kHeaderSize + addrs.size() * 4);
  wire::append_header(frame, header);
  for (std::uint32_t addr : addrs) {
    char buf[4];
    wire::store_u32le(buf, addr);
    frame.append(buf, 4);
  }
  if (auto sent = send_all(frame, has_deadline, deadline); !sent) {
    return sent.error();
  }
  return recv_matched(header.request_id, 1, nullptr, has_deadline, deadline);
}

Expected<BinResponse> QueryClient::request_exact_batch(
    std::span<const ExactQuery> prefixes, std::uint32_t epoch) {
  if (fd_ < 0) return fail("client is closed");
  const bool has_deadline = timeouts_.io_ms > 0;
  const auto deadline =
      Clock::now() +
      std::chrono::milliseconds(has_deadline ? timeouts_.io_ms : 0);
  wire::FrameHeader header;
  header.opcode = wire::kOpExactBatch;
  header.request_id = next_request_id_++;
  header.payload_len = static_cast<std::uint32_t>(prefixes.size() * 8);
  header.epoch = epoch;
  std::string frame;
  frame.reserve(wire::kHeaderSize + prefixes.size() * 8);
  wire::append_header(frame, header);
  for (const ExactQuery& query : prefixes) {
    char buf[8] = {};
    wire::store_u32le(buf, query.addr);
    buf[4] = static_cast<char>(query.len);
    frame.append(buf, 8);
  }
  if (auto sent = send_all(frame, has_deadline, deadline); !sent) {
    return sent.error();
  }
  return recv_matched(header.request_id, 1, nullptr, has_deadline, deadline);
}

Expected<std::vector<BinResponse>> QueryClient::pipeline_binary(
    std::span<const std::vector<std::uint32_t>> batches,
    std::uint32_t epoch) {
  if (fd_ < 0) return fail("client is closed");
  const bool has_deadline = timeouts_.io_ms > 0;
  const auto deadline =
      Clock::now() +
      std::chrono::milliseconds(has_deadline ? timeouts_.io_ms : 0);
  // Send every frame in one burst: the server answers them in arrival
  // order, but responses are matched by the echoed id, not position.
  const std::uint32_t first_id = next_request_id_;
  std::string burst;
  for (const std::vector<std::uint32_t>& batch : batches) {
    wire::FrameHeader header;
    header.opcode = wire::kOpLpmBatch;
    header.request_id = next_request_id_++;
    header.payload_len = static_cast<std::uint32_t>(batch.size() * 4);
    header.epoch = epoch;
    wire::append_header(burst, header);
    for (std::uint32_t addr : batch) {
      char buf[4];
      wire::store_u32le(buf, addr);
      burst.append(buf, 4);
    }
  }
  if (auto sent = send_all(burst, has_deadline, deadline); !sent) {
    return sent.error();
  }
  std::vector<BinResponse> responses(batches.size());
  std::vector<bool> seen(batches.size(), false);
  for (std::size_t i = 0; i < batches.size(); ++i) {
    auto response =
        recv_matched(first_id, batches.size(), &seen, has_deadline, deadline);
    if (!response) return response.error();
    responses[response->request_id - first_id] = std::move(*response);
  }
  return responses;
}

namespace {

/// Shared reconnect-per-attempt retry driver: `op(client)` runs each
/// attempt on a fresh connection; failures back off exponentially with
/// deterministic +/- jitter. The last attempt's error — typed timeout
/// codes included — is returned verbatim.
template <typename Op>
auto retry_attempts(const std::string& host, std::uint16_t port,
                    const ClientRetryPolicy& policy, ClientTimeouts timeouts,
                    Op&& op) -> decltype(op(std::declval<QueryClient&>())) {
  Rng rng(policy.seed);
  Error last = fail("retry: no attempts configured");
  int attempts = std::max(policy.attempts, 1);
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      // Exponential backoff with +/- jitter so retrying clients desynchronize.
      double base = static_cast<double>(policy.base_backoff_ms) *
                    static_cast<double>(1u << std::min(attempt - 1, 20));
      base = std::min(base, static_cast<double>(policy.max_backoff_ms));
      double spread = std::clamp(policy.jitter, 0.0, 1.0);
      double factor = 1.0 + spread * (2.0 * rng.next_double() - 1.0);
      auto sleep_ms = static_cast<long long>(std::max(base * factor, 0.0));
      std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
    }
    auto client = QueryClient::connect(host, port, timeouts);
    if (!client) {
      last = client.error();
      continue;
    }
    auto response = op(*client);
    if (response) return response;
    last = response.error();
  }
  return last;
}

}  // namespace

Expected<std::string> QueryClient::request_with_retry(
    const std::string& host, std::uint16_t port, std::string_view line,
    const RetryPolicy& policy, Timeouts timeouts) {
  return retry_attempts(host, port, policy, timeouts,
                        [&](QueryClient& client) {
                          return client.request(line);
                        });
}

Expected<std::string> QueryClient::request_multiline_with_retry(
    const std::string& host, std::uint16_t port, std::string_view line,
    std::string_view terminator, const RetryPolicy& policy,
    Timeouts timeouts) {
  return retry_attempts(host, port, policy, timeouts,
                        [&](QueryClient& client) {
                          return client.request_multiline(line, terminator);
                        });
}

Expected<BinResponse> QueryClient::request_binary_batch_with_retry(
    const std::string& host, std::uint16_t port,
    std::span<const std::uint32_t> addrs, std::uint32_t epoch,
    const RetryPolicy& policy, Timeouts timeouts) {
  return retry_attempts(host, port, policy, timeouts,
                        [&](QueryClient& client) {
                          return client.request_binary_batch(addrs, epoch);
                        });
}

}  // namespace sublet::serve
