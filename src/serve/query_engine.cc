#include "serve/query_engine.h"

#include "serve/json.h"

namespace sublet::serve {

Expected<QueryEngine> QueryEngine::create(const snapshot::Snapshot* snap) {
  auto trie = snap->build_trie();
  if (!trie) return trie.error();
  return QueryEngine(snap, std::move(*trie));
}

std::string QueryEngine::record_json(std::uint32_t idx) const {
  const snapshot::RecordRow& row = snap_->record(idx);
  JsonWriter json;
  json.begin_object();
  json.key("found").value(true);
  json.key("prefix").value(snap_->prefix_of(row).to_string());
  json.key("rir").value(whois::rir_name(static_cast<whois::Rir>(row.rir)));
  json.key("group").value(
      leasing::group_name(static_cast<leasing::InferenceGroup>(row.group)));
  json.key("leased").value(
      leasing::is_leased(static_cast<leasing::InferenceGroup>(row.group)));
  json.key("root_prefix").value(snap_->root_prefix_of(row).to_string());
  json.key("holder_org").value(snap_->string_at(row.holder_org));
  leasing::LeaseInference full = snap_->materialize(idx);
  auto asn_array = [&](std::string_view key, const std::vector<Asn>& asns) {
    json.begin_array(key);
    for (Asn asn : asns) json.value(std::uint64_t{asn.value()});
    json.end_array();
  };
  asn_array("holder_asns", full.holder_asns);
  asn_array("leaf_origins", full.leaf_origins);
  asn_array("root_origins", full.root_origins);
  json.begin_array("facilitators");
  for (const std::string& h : full.leaf_maintainers) json.value(h);
  json.end_array();
  json.key("netname").value(snap_->string_at(row.netname));
  json.end_object();
  return json.take();
}

}  // namespace sublet::serve
