#include "serve/query_engine.h"

#include <algorithm>
#include <unordered_map>

#include "serve/json.h"
#include "util/simd.h"

namespace sublet::serve {

namespace {

/// How many leaf-origin ASNs the STATS aggregate ranks.
constexpr std::size_t kTopOrigins = 8;

/// One aggregation pass, templated on the primitive set so the SIMD and
/// scalar variants share every line of control flow — any divergence
/// between them is in util/simd.h, exactly what the differential pins.
template <bool kUseSimd>
QueryEngine::SnapshotAggregate run_aggregate(
    std::span<const std::uint8_t> groups, std::span<const std::uint8_t> rirs,
    std::span<const std::uint64_t> sizes,
    std::span<const std::uint32_t> origins,
    std::span<const std::uint32_t> top_asns) {
  auto count8 = [](std::span<const std::uint8_t> keys, std::uint8_t t) {
    if constexpr (kUseSimd) return simd::count_eq_u8(keys, t);
    else return simd::count_eq_u8_scalar(keys, t);
  };
  auto count32 = [](std::span<const std::uint32_t> keys, std::uint32_t t) {
    if constexpr (kUseSimd) return simd::count_eq_u32(keys, t);
    else return simd::count_eq_u32_scalar(keys, t);
  };
  auto sum = [](std::span<const std::uint8_t> keys, std::uint8_t t,
                std::span<const std::uint64_t> values) {
    if constexpr (kUseSimd) return simd::masked_sum_u64(keys, t, values);
    else return simd::masked_sum_u64_scalar(keys, t, values);
  };
  QueryEngine::SnapshotAggregate agg;
  for (std::size_t g = 0; g < leasing::kAllInferenceGroups.size(); ++g) {
    const leasing::InferenceGroup group = leasing::kAllInferenceGroups[g];
    const auto key = static_cast<std::uint8_t>(group);
    agg.groups[g].records = count8(groups, key);
    agg.groups[g].addresses = sum(groups, key, sizes);
    if (leasing::is_leased(group)) {
      agg.leased_records += agg.groups[g].records;
      agg.leased_addresses += agg.groups[g].addresses;
    }
  }
  for (std::size_t r = 0; r < whois::kAllRirs.size(); ++r) {
    agg.rir_records[r] =
        count8(rirs, static_cast<std::uint8_t>(whois::kAllRirs[r]));
  }
  agg.top_origins.reserve(top_asns.size());
  for (std::uint32_t asn : top_asns) {
    agg.top_origins.emplace_back(asn, count32(origins, asn));
  }
  return agg;
}

}  // namespace

Expected<QueryEngine> QueryEngine::create(const snapshot::Snapshot* snap) {
  auto trie = snap->build_trie();
  if (!trie) return trie.error();
  return create(snap, std::move(*trie));
}

Expected<QueryEngine> QueryEngine::create(const snapshot::Snapshot* snap,
                                          PrefixTrie<std::uint32_t> trie) {
  QueryEngine engine(
      snap, std::make_shared<const PrefixTrie<std::uint32_t>>(
                std::move(trie)));
  engine.build_columns();
  return engine;
}

Expected<QueryEngine> QueryEngine::create_patched(
    const snapshot::Snapshot* snap,
    std::shared_ptr<const PrefixTrie<std::uint32_t>> trie,
    const QueryEngine& base, std::span<const std::uint32_t> surviving,
    std::span<const std::uint32_t> patched) {
  QueryEngine engine(snap, std::move(trie));
  const std::size_t n = snap->record_count();
  const std::size_t base_n = base.origin_col_.size();
  const std::size_t copied =
      surviving.empty() ? std::min(base_n, n) : surviving.size();
  if (copied > n) return fail("patched engine has fewer rows than survive");
  engine.group_col_.resize(n);
  engine.rir_col_.resize(n);
  engine.size_col_.resize(n);
  engine.origin_col_.resize(n);
  engine.origin_counts_ = base.origin_counts_;
  auto dec = [&engine](std::uint32_t asn) {
    if (asn == 0) return;
    auto it = engine.origin_counts_.find(asn);
    if (it == engine.origin_counts_.end()) return;
    if (--it->second == 0) engine.origin_counts_.erase(it);
  };
  if (surviving.empty()) {
    std::copy_n(base.group_col_.begin(), copied, engine.group_col_.begin());
    std::copy_n(base.rir_col_.begin(), copied, engine.rir_col_.begin());
    std::copy_n(base.size_col_.begin(), copied, engine.size_col_.begin());
    std::copy_n(base.origin_col_.begin(), copied,
                engine.origin_col_.begin());
  } else {
    // Compacted copy, then uncount the rows the delta removed (the base
    // rows `surviving` skips — it is strictly increasing by construction).
    std::size_t s = 0;
    for (std::uint32_t old = 0; old < base_n; ++old) {
      if (s < surviving.size() && surviving[s] == old) {
        engine.group_col_[s] = base.group_col_[old];
        engine.rir_col_[s] = base.rir_col_[old];
        engine.size_col_[s] = base.size_col_[old];
        engine.origin_col_[s] = base.origin_col_[old];
        ++s;
      } else {
        dec(base.origin_col_[old]);
      }
    }
    if (s != surviving.size()) {
      return fail("surviving rows are not an increasing base subset");
    }
  }
  for (std::uint32_t i : patched) {
    if (i >= copied) continue;  // appended rows recompute below anyway
    dec(engine.origin_col_[i]);
    const std::uint32_t asn = engine.recompute_row(i);
    if (asn != 0) ++engine.origin_counts_[asn];
  }
  for (std::size_t i = copied; i < n; ++i) {
    const std::uint32_t asn = engine.recompute_row(i);
    if (asn != 0) ++engine.origin_counts_[asn];
  }
  engine.rank_origins();
  return engine;
}

std::uint32_t QueryEngine::recompute_row(std::size_t i) {
  const snapshot::RecordRow& row = snap_->record(i);
  group_col_[i] = row.group;
  rir_col_[i] = row.rir;
  size_col_[i] = std::uint64_t{1} << (32 - row.prefix_len);
  origin_col_[i] = snap_->first_leaf_origin(row);
  return origin_col_[i];
}

void QueryEngine::build_columns() {
  const std::size_t n = snap_->record_count();
  group_col_.resize(n);
  rir_col_.resize(n);
  size_col_.resize(n);
  origin_col_.resize(n);
  for (std::size_t i = 0; i < n; ++i) recompute_row(i);
  for (std::uint32_t asn : origin_col_) {
    if (asn != 0) ++origin_counts_[asn];
  }
  rank_origins();
}

/// Rank leaf-origin ASNs by record count (ties toward the smaller ASN).
/// Only the ranking is precomputed; aggregate() recounts through the
/// SIMD primitives so STATS always reflects a measured pass.
void QueryEngine::rank_origins() {
  std::vector<std::pair<std::uint32_t, std::uint64_t>> ranked(
      origin_counts_.begin(), origin_counts_.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    return a.second != b.second ? a.second > b.second : a.first < b.first;
  });
  ranked.resize(std::min(ranked.size(), kTopOrigins));
  top_origin_asns_.clear();
  top_origin_asns_.reserve(ranked.size());
  for (const auto& [asn, count] : ranked) top_origin_asns_.push_back(asn);
}

void QueryEngine::lookup_batch(std::span<const std::uint32_t> addrs,
                               std::span<std::uint32_t> out) const {
  if (!trie_->has_stride_table()) {
    // Defensive fallback for engines built over a strideless trie.
    for (std::size_t i = 0; i < addrs.size(); ++i) {
      auto hit = trie_->most_specific_covering(
          *Prefix::make(Ipv4Addr(addrs[i]), 32));
      out[i] = hit ? *hit->second : kNoRecord;
    }
    return;
  }
  trie_->lookup_batch(addrs, out);
  // The trie hands back node handles; resolve each to its record index
  // (the stored value) in place.
  for (std::size_t i = 0; i < addrs.size(); ++i) {
    if (out[i] != kNoRecord) out[i] = *trie_->entry(out[i]).second;
  }
}

QueryEngine::SnapshotAggregate QueryEngine::aggregate() const {
  return run_aggregate<true>(group_col_, rir_col_, size_col_, origin_col_,
                             top_origin_asns_);
}

QueryEngine::SnapshotAggregate QueryEngine::aggregate_scalar() const {
  return run_aggregate<false>(group_col_, rir_col_, size_col_, origin_col_,
                              top_origin_asns_);
}

std::string QueryEngine::snapshot_stats_json() const {
  const SnapshotAggregate agg = aggregate();
  const auto mem = trie_->memory_breakdown();
  JsonWriter json;
  json.begin_object();
  json.key("records").value(
      static_cast<std::uint64_t>(snap_->record_count()));
  json.key("lookup_backend")
      .value(trie_->has_stride_table() ? "stride24-8" : "patricia");
  json.key("simd_backend").value(simd::backend_name());
  json.key("groups");
  json.begin_object();
  for (std::size_t g = 0; g < agg.groups.size(); ++g) {
    json.key(leasing::group_name(leasing::kAllInferenceGroups[g]));
    json.begin_object();
    json.key("records").value(agg.groups[g].records);
    json.key("addresses").value(agg.groups[g].addresses);
    json.end_object();
  }
  json.end_object();
  json.key("leased");
  json.begin_object();
  json.key("records").value(agg.leased_records);
  json.key("addresses").value(agg.leased_addresses);
  json.end_object();
  json.key("rirs");
  json.begin_object();
  for (std::size_t r = 0; r < agg.rir_records.size(); ++r) {
    json.key(whois::rir_name(whois::kAllRirs[r])).value(agg.rir_records[r]);
  }
  json.end_object();
  json.key("top_origins");
  json.begin_object();
  for (const auto& [asn, records] : agg.top_origins) {
    json.key(std::to_string(asn)).value(records);
  }
  json.end_object();
  json.key("memory");
  json.begin_object();
  json.key("trie_nodes").value(static_cast<std::uint64_t>(mem.node_bytes));
  json.key("trie_values").value(static_cast<std::uint64_t>(mem.value_bytes));
  json.key("jump_table").value(static_cast<std::uint64_t>(mem.jump_bytes));
  json.key("stride24").value(static_cast<std::uint64_t>(mem.stride24_bytes));
  json.key("stride8").value(static_cast<std::uint64_t>(mem.stride8_bytes));
  json.key("columns").value(static_cast<std::uint64_t>(columns_bytes()));
  json.key("total").value(
      static_cast<std::uint64_t>(mem.total() + columns_bytes()));
  json.end_object();
  json.end_object();
  return json.take();
}

std::string QueryEngine::record_json(std::uint32_t idx) const {
  const snapshot::RecordRow& row = snap_->record(idx);
  JsonWriter json;
  json.begin_object();
  json.key("found").value(true);
  json.key("prefix").value(snap_->prefix_of(row).to_string());
  json.key("rir").value(whois::rir_name(static_cast<whois::Rir>(row.rir)));
  json.key("group").value(
      leasing::group_name(static_cast<leasing::InferenceGroup>(row.group)));
  json.key("leased").value(
      leasing::is_leased(static_cast<leasing::InferenceGroup>(row.group)));
  json.key("root_prefix").value(snap_->root_prefix_of(row).to_string());
  json.key("holder_org").value(snap_->string_at(row.holder_org));
  leasing::LeaseInference full = snap_->materialize(idx);
  auto asn_array = [&](std::string_view key, const std::vector<Asn>& asns) {
    json.begin_array(key);
    for (Asn asn : asns) json.value(std::uint64_t{asn.value()});
    json.end_array();
  };
  asn_array("holder_asns", full.holder_asns);
  asn_array("leaf_origins", full.leaf_origins);
  asn_array("root_origins", full.root_origins);
  json.begin_array("facilitators");
  for (const std::string& h : full.leaf_maintainers) json.value(h);
  json.end_array();
  json.key("netname").value(snap_->string_at(row.netname));
  json.end_object();
  return json.take();
}

}  // namespace sublet::serve
