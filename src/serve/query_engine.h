// In-memory query engine over a loaded snapshot.
//
// Wraps the adopted leaf-prefix trie and answers the two lookups the wire
// protocol exposes: exact match and longest-prefix match, each returning
// the record index whose full inference (evidence included) the caller can
// materialize or render as JSON. Everything is const after construction —
// one engine is shared by every server thread without locks.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>

#include "netbase/prefix_trie.h"
#include "snapshot/snapshot.h"
#include "util/expected.h"

namespace sublet::serve {

class QueryEngine {
 public:
  /// Build from a loaded snapshot (adopts the trie arena). The snapshot
  /// must outlive the engine; Error if the trie section is corrupt.
  static Expected<QueryEngine> create(const snapshot::Snapshot* snap);

  /// Record stored exactly at `prefix`.
  std::optional<std::uint32_t> exact(const Prefix& prefix) const {
    const std::uint32_t* idx = trie_.find(prefix);
    if (idx == nullptr) return std::nullopt;
    return *idx;
  }

  /// Most specific record covering `prefix` (longest-prefix match;
  /// includes an exact hit). Returns the matched leaf and record index.
  std::optional<std::pair<Prefix, std::uint32_t>> longest_match(
      const Prefix& prefix) const {
    auto hit = trie_.most_specific_covering(prefix);
    if (!hit) return std::nullopt;
    return std::pair<Prefix, std::uint32_t>{hit->first, *hit->second};
  }

  /// Full inference record for `idx`, identical to the pipeline's output.
  leasing::LeaseInference materialize(std::uint32_t idx) const {
    return snap_->materialize(idx);
  }

  /// One-line JSON rendering of record `idx` (the wire response body).
  std::string record_json(std::uint32_t idx) const;

  const snapshot::Snapshot& snapshot() const { return *snap_; }
  std::size_t size() const { return trie_.size(); }

 private:
  QueryEngine(const snapshot::Snapshot* snap, PrefixTrie<std::uint32_t> trie)
      : snap_(snap), trie_(std::move(trie)) {}

  const snapshot::Snapshot* snap_;
  PrefixTrie<std::uint32_t> trie_;
};

}  // namespace sublet::serve
