// In-memory query engine over a loaded snapshot.
//
// Wraps the adopted leaf-prefix trie and answers the lookups the wire
// protocol exposes: exact match, longest-prefix match, and batched LPM,
// each returning the record index whose full inference (evidence included)
// the caller can materialize or render as JSON. The adopted trie carries
// the DIR-24-8 stride table, so single lookups take one or two array
// loads and lookup_batch() streams software-prefetched batches. STATS
// aggregation runs over columnar copies of the RecordRow fields via the
// SIMD primitives in util/simd.h. Everything is const after construction —
// one engine is shared by every server thread without locks.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "leasing/types.h"
#include "netbase/prefix_trie.h"
#include "snapshot/snapshot.h"
#include "util/expected.h"
#include "whoisdb/rir.h"

namespace sublet::serve {

class QueryEngine {
 public:
  /// Sentinel written by lookup_batch() for addresses no record covers.
  static constexpr std::uint32_t kNoRecord =
      PrefixTrie<std::uint32_t>::kNoEntry;

  /// Build from a loaded snapshot (adopts the trie arena and builds the
  /// stride table + aggregation columns). The snapshot must outlive the
  /// engine; Error if the trie section is corrupt.
  static Expected<QueryEngine> create(const snapshot::Snapshot* snap);

  /// Build from a snapshot plus a caller-built trie (leaf prefix -> record
  /// index). The catalog's delta apply uses this: a parts snapshot carries
  /// no trie arena, and the trie arrives patched from the base epoch
  /// instead of adopted from a file. The trie is taken as-is — whether it
  /// carries the stride table is the caller's time/memory trade-off.
  static Expected<QueryEngine> create(const snapshot::Snapshot* snap,
                                      PrefixTrie<std::uint32_t> trie);

  /// Build from a snapshot plus a caller-built trie by PATCHING `base`'s
  /// aggregation columns instead of recomputing them row-by-row — the
  /// catalog's delta-apply fast path, where almost every row is unchanged
  /// from the base epoch. `surviving` maps each new row in
  /// [0, surviving.size()) to the base row it was compacted from (pass an
  /// empty span when no rows were removed: the first base-row-count rows
  /// then copy positionally). `patched` lists new row indices whose
  /// contents changed in place; rows beyond the copied region (appends)
  /// are always recomputed from the snapshot. The leaf-origin ranking is
  /// adjusted incrementally from the base's counts, so the result is
  /// field-for-field identical to a full create() over the same snapshot.
  /// The trie arrives behind a shared_ptr: an in-place-only delta leaves
  /// the base trie bit-identical (structure, values, jump, stride), so
  /// the catalog shares it across epochs instead of copying the arena.
  static Expected<QueryEngine> create_patched(
      const snapshot::Snapshot* snap,
      std::shared_ptr<const PrefixTrie<std::uint32_t>> trie,
      const QueryEngine& base, std::span<const std::uint32_t> surviving,
      std::span<const std::uint32_t> patched);

  /// Record stored exactly at `prefix`.
  std::optional<std::uint32_t> exact(const Prefix& prefix) const {
    const std::uint32_t* idx = trie_->find(prefix);
    if (idx == nullptr) return std::nullopt;
    return *idx;
  }

  /// Most specific record covering `prefix` (longest-prefix match;
  /// includes an exact hit). Returns the matched leaf and record index.
  std::optional<std::pair<Prefix, std::uint32_t>> longest_match(
      const Prefix& prefix) const {
    auto hit = trie_->most_specific_covering(prefix);
    if (!hit) return std::nullopt;
    return std::pair<Prefix, std::uint32_t>{hit->first, *hit->second};
  }

  /// Batched longest-prefix match over /32 addresses (host-order values):
  /// writes one record index (or kNoRecord) per address into `out`.
  /// Allocation-free — the MLPM handler reuses its scratch buffers — and
  /// routed through the stride table's prefetched two-pass lookup.
  /// Requires out.size() >= addrs.size().
  void lookup_batch(std::span<const std::uint32_t> addrs,
                    std::span<std::uint32_t> out) const;

  /// Full inference record for `idx`, identical to the pipeline's output.
  leasing::LeaseInference materialize(std::uint32_t idx) const {
    return snap_->materialize(idx);
  }

  /// Fixed-size answer for the binary frame protocol: the matched leaf and
  /// the classification bits a batch consumer needs, read straight off the
  /// 60-byte RecordRow — no string pool touches, no JSON, no allocation.
  struct Brief {
    std::uint32_t prefix_addr = 0;  ///< leaf network bits, host order
    std::uint8_t prefix_len = 0;
    std::uint8_t group = 0;  ///< raw leasing::InferenceGroup value
    bool leased = false;
  };
  Brief brief(std::uint32_t idx) const {
    const snapshot::RecordRow& row = snap_->record(idx);
    return Brief{row.prefix_key, row.prefix_len, row.group,
                 leasing::is_leased(
                     static_cast<leasing::InferenceGroup>(row.group))};
  }

  /// One-line JSON rendering of record `idx` (the wire response body).
  std::string record_json(std::uint32_t idx) const;

  // ---- STATS aggregation (columnar, SIMD-dispatched) --------------------

  struct GroupAggregate {
    std::uint64_t records = 0;
    std::uint64_t addresses = 0;  ///< sum of 2^(32-len) over the records
  };

  /// Whole-snapshot totals the STATS verb reports: per-group record and
  /// address counts, per-RIR record counts, leased totals, and record
  /// counts for the most common leaf-origin ASNs.
  struct SnapshotAggregate {
    std::array<GroupAggregate, leasing::kAllInferenceGroups.size()> groups{};
    std::array<std::uint64_t, whois::kAllRirs.size()> rir_records{};
    std::uint64_t leased_records = 0;
    std::uint64_t leased_addresses = 0;
    std::vector<std::pair<std::uint32_t, std::uint64_t>>
        top_origins;  ///< (asn, records), most records first
  };

  /// Columnar pass over every record via the build's SIMD backend.
  SnapshotAggregate aggregate() const;
  /// Same pass pinned to the scalar primitives — the differential tests'
  /// reference; results must match aggregate() bit-for-bit.
  SnapshotAggregate aggregate_scalar() const;

  /// One-line JSON for the STATS verb's "snapshot" section: the aggregate
  /// plus the trie/column memory breakdown.
  std::string snapshot_stats_json() const;

  /// Trie footprint by structure (nodes, values, jump, stride levels).
  PrefixTrie<std::uint32_t>::MemoryBreakdown trie_memory() const {
    return trie_->memory_breakdown();
  }
  /// Bytes held by the aggregation columns.
  std::size_t columns_bytes() const {
    return group_col_.size() * sizeof(std::uint8_t) +
           rir_col_.size() * sizeof(std::uint8_t) +
           size_col_.size() * sizeof(std::uint64_t) +
           origin_col_.size() * sizeof(std::uint32_t);
  }

  const snapshot::Snapshot& snapshot() const { return *snap_; }
  /// The adopted trie (read-only) — the catalog clones its structural core
  /// to apply the next epoch's delta on top.
  const PrefixTrie<std::uint32_t>& trie() const { return *trie_; }
  /// Shared handle to the trie: an epoch materialized from an
  /// in-place-only delta holds the very same arena as its base
  /// (docs/TIMETRAVEL.md), so N cached epochs need not mean N tries.
  std::shared_ptr<const PrefixTrie<std::uint32_t>> shared_trie() const {
    return trie_;
  }
  std::size_t size() const { return trie_->size(); }

 private:
  QueryEngine(const snapshot::Snapshot* snap,
              std::shared_ptr<const PrefixTrie<std::uint32_t>> trie)
      : snap_(snap), trie_(std::move(trie)) {}

  void build_columns();
  /// Recompute the columns for row `i` from the snapshot and return the
  /// row's leaf-origin ASN (0 = none).
  std::uint32_t recompute_row(std::size_t i);
  /// Rank origin_counts_ into top_origin_asns_ (ties toward smaller ASN).
  void rank_origins();

  const snapshot::Snapshot* snap_;
  std::shared_ptr<const PrefixTrie<std::uint32_t>> trie_;

  // Columnar copies of the RecordRow fields STATS aggregates over; built
  // once at create() so the per-request pass touches dense arrays instead
  // of striding through 60-byte rows.
  std::vector<std::uint8_t> group_col_;
  std::vector<std::uint8_t> rir_col_;
  std::vector<std::uint64_t> size_col_;    // addresses covered per record
  std::vector<std::uint32_t> origin_col_;  // first leaf origin (0 = none)
  // Per-origin record counts behind the ranking, kept so create_patched()
  // can adjust them incrementally instead of recounting every row.
  std::unordered_map<std::uint32_t, std::uint64_t> origin_counts_;
  // Most common leaf-origin ASNs (ranked at build); their counts are
  // recomputed through the SIMD primitives on every aggregate() call.
  std::vector<std::uint32_t> top_origin_asns_;
};

}  // namespace sublet::serve
