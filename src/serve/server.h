// Multi-threaded TCP prefix-query server (docs/SERVING.md,
// docs/ROBUSTNESS.md).
//
// Wire protocol: newline-delimited requests, one single-line JSON response
// per request:
//
//   EXACT <prefix>        record stored exactly at the prefix
//   LPM <prefix|address>  longest-prefix match (an address means /32)
//   MLPM <addr> [...]     batched LPM over up to 1024 addresses, routed
//                         through the stride table's prefetched batch path
//   STATS                 counters + latency percentiles + the engine's
//                         snapshot aggregate and memory breakdown
//   HEALTH                engine generation, snapshot path, uptime, drain
//   RELOAD <path>         hot-swap to a freshly validated snapshot
//   SHUTDOWN              acknowledge, then ask the owner to stop
//
// The accept loop runs on its own thread; each accepted connection is
// handled on the PR-1 ThreadPool (threads == 1 keeps the pool in inline
// mode: connections are served one at a time on the accept thread, the
// exact serial semantics the rest of the codebase uses for --threads 1).
//
// Fault tolerance:
//  - the serving state (snapshot + engine) lives behind an RCU-style
//    shared_ptr; RELOAD validates the new snapshot off the hot path and
//    swaps atomically — in-flight queries finish on the old engine and a
//    failed load keeps the old generation serving;
//  - per-connection poll-based idle/write deadlines disconnect slow-loris
//    peers instead of parking a handler forever;
//  - a max-concurrent-connections cap sheds load with a one-line
//    {"error":"overloaded"} response instead of queueing unboundedly;
//  - transient accept() errors (EMFILE/ENFILE/ECONNABORTED/EAGAIN) log,
//    back off, and continue rather than killing the accept thread;
//  - stop() drains gracefully: in-flight requests finish, then remaining
//    sockets are forced closed at the drain deadline.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_set>

#include "obs/metrics.h"
#include "serve/engine_state.h"
#include "util/expected.h"
#include "util/parallel.h"

namespace sublet::serve {

/// Point-in-time view of the per-request counters.
struct StatsSnapshot {
  std::uint64_t requests = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t malformed = 0;
  std::uint64_t shed = 0;            ///< connections refused at the cap
  std::uint64_t timeouts = 0;        ///< connections cut at a deadline
  std::uint64_t accept_retries = 0;  ///< transient accept() errors survived
  std::uint64_t reloads = 0;         ///< successful hot swaps
  std::uint64_t reload_failures = 0; ///< rejected RELOADs (old state kept)
  std::uint64_t generation = 0;      ///< current engine generation
  double p50_us = 0.0;
  double p99_us = 0.0;

  std::string to_json() const;
};

class QueryServer {
 public:
  struct Options {
    std::uint16_t port = 0;  ///< 0 = ephemeral; read back via port()
    unsigned threads = 0;    ///< handler threads; 0 = default, 1 = inline
    /// Max concurrently accepted connections; one over the cap is answered
    /// {"error":"overloaded"} and closed. 0 = unlimited (legacy).
    unsigned max_conns = 256;
    /// Close a connection after this long with no complete request.
    /// 0 = no idle deadline.
    int idle_timeout_ms = 60000;
    /// Per-response write deadline (a peer that stops reading is cut).
    /// 0 = no write deadline.
    int io_timeout_ms = 10000;
    /// How long stop() waits for in-flight connections to finish before
    /// forcing them closed.
    int drain_timeout_ms = 2000;
    /// Snapshot load mode used by RELOAD.
    snapshot::Snapshot::Mode reload_mode = snapshot::Snapshot::Mode::kMap;
  };

  QueryServer(std::shared_ptr<const EngineState> engine, Options options);
  explicit QueryServer(std::shared_ptr<const EngineState> engine)
      : QueryServer(std::move(engine), Options{}) {}
  ~QueryServer();

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  /// Bind 127.0.0.1, listen, and spawn the accept loop. Returns the bound
  /// port (useful with port 0) or an Error if the socket setup fails.
  Expected<std::uint16_t> start();

  std::uint16_t port() const { return port_; }
  StatsSnapshot stats() const;

  /// The current serving generation. Request handlers grab one shared_ptr
  /// per request, so a concurrent RELOAD never invalidates what they read.
  std::shared_ptr<const EngineState> engine() const;

  /// Load + fully validate the snapshot at `path` off the hot path, then
  /// atomically swap it in. Returns the new generation number, or an Error
  /// — in which case the previous engine keeps serving untouched. Serialized:
  /// concurrent RELOADs run one at a time.
  Expected<std::uint64_t> reload(const std::string& path);

  /// One-line JSON for the HEALTH verb (also usable without a socket).
  std::string health_json() const;

  /// True once a SHUTDOWN request was served (or stop() began).
  bool stop_requested() const {
    return stop_.load(std::memory_order_acquire);
  }

  /// Block until SHUTDOWN arrives or `predicate()` returns true. The
  /// predicate is polled every ~100ms so signal handlers can set a flag
  /// without needing async-signal-safe condition variables.
  void wait(const std::function<bool()>& predicate = {});

  /// Stop accepting, drain in-flight connections for up to
  /// drain_timeout_ms, then force the rest closed and join all threads.
  /// Idempotent; also run by the destructor.
  void stop();

  /// Handle one request line (no trailing newline) and return the JSON
  /// response body. Public so tests can exercise the protocol without a
  /// socket; counters are updated exactly as for a network request.
  std::string handle_request(std::string_view line);

  /// Prometheus text exposition for the METRICS verb: the process-global
  /// registry (pipeline, snapshot, trie families) followed by this server's
  /// own registry, terminated by a "# EOF" line so clients reading the
  /// newline-delimited wire protocol know where the multi-line body ends.
  /// Also usable without a socket.
  std::string metrics_text() const;

  /// This server's private registry (sublet_serve_* families). Each
  /// QueryServer owns its own so multiple servers in one process keep
  /// independent counters; exported by metrics_text() after the global
  /// registry.
  const obs::MetricsRegistry& registry() const { return registry_; }

 private:
  void accept_loop();
  void handle_connection(int fd);
  /// Send all of `data` within the write deadline; false cuts the peer.
  bool write_deadline(int fd, std::string_view data);
  std::size_t active_connections() const;

  Options options_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread accept_thread_;
  std::unique_ptr<par::ThreadPool> pool_;
  std::chrono::steady_clock::time_point start_time_;

  mutable std::mutex engine_mu_;
  std::shared_ptr<const EngineState> engine_;
  std::mutex reload_mu_;  ///< serializes RELOADs (not the swap itself)

  std::atomic<bool> stop_{false};
  std::mutex stop_mu_;
  std::condition_variable stop_cv_;

  mutable std::mutex conns_mu_;
  std::unordered_set<int> conns_;

  // Per-server metrics live in an owned registry (declared before the
  // references into it). The references are the request hot path: one
  // relaxed fetch_add each, exactly what the old private atomics cost.
  obs::MetricsRegistry registry_;
  obs::Counter& requests_;
  obs::Counter& hits_;
  obs::Counter& misses_;
  obs::Counter& malformed_;
  obs::Counter& shed_;
  obs::Counter& timeouts_;
  obs::Counter& accept_retries_;
  obs::Counter& reloads_;
  obs::Counter& reload_failures_;
  obs::Gauge& generation_gauge_;
  obs::Gauge& active_conns_gauge_;
  obs::Histogram& latency_;
};

}  // namespace sublet::serve
