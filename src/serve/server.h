// Event-driven TCP prefix-query server (docs/SERVING.md,
// docs/ROBUSTNESS.md).
//
// Two protocols share one port, distinguished by the first byte of each
// request:
//
//  - text: newline-delimited verbs, one single-line JSON response each
//    (EXACT / LPM / MLPM / STATS / HEALTH / METRICS / RELOAD / SHUTDOWN —
//    byte-identical to the pre-epoll server, pinned by a differential
//    test — plus, in catalog mode, an `AT <epoch-ts>` qualifier on
//    EXACT/LPM and a HISTORY verb, docs/TIMETRAVEL.md);
//  - binary: length-prefixed frames (serve/wire.h) whose magic byte 0xB5
//    can never open a text verb. One frame carries a batch of raw u32
//    addresses answered straight off QueryEngine::lookup_batch into the
//    connection's output buffer — hundreds of lookups per syscall
//    round-trip with zero steady-state allocation.
//
// Concurrency model: an accept thread plus `--shards N` event-loop threads
// (default: hardware concurrency). Each shard owns an epoll fd, an eventfd
// for cross-thread wakeup (reload / drain / stop), and the full state of
// the connections the accept thread round-robins to it — non-blocking fds,
// per-connection read/write state machines, and two intrusive timer lists
// (idle and write deadlines; timeouts are per-server constants, so arming
// appends to the tail and the head is always the earliest deadline — O(1)
// arm/cancel/expire, no poll slices). Connections never migrate between
// shards, so all per-connection state is owned by exactly one thread and
// needs no locks.
//
// Fault tolerance (all PR-4 semantics survive the rewrite):
//  - the serving state (snapshot + engine) lives behind an RCU-style
//    shared_ptr; RELOAD validates the new snapshot off the hot path and
//    swaps atomically — in-flight queries finish on the old engine and a
//    failed load keeps the old generation serving;
//  - per-connection idle/write deadlines disconnect slow-loris peers;
//  - a max-concurrent-connections cap sheds load with a one-line
//    {"error":"overloaded"} response instead of queueing unboundedly;
//  - transient accept() errors (EMFILE/ENFILE/ECONNABORTED/EAGAIN) log,
//    back off, and continue rather than killing the accept thread, and an
//    injected epoll_wait failure (serve.epoll_wait) is survived the same
//    way;
//  - stop() drains gracefully: buffered responses flush, idle connections
//    close, and a condition variable fires the moment the live-connection
//    count reaches zero (shutdown latency is bounded by the actual drain,
//    not a sleep quantum); stragglers are forced closed at the drain
//    deadline.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "serve/engine_state.h"
#include "serve/epoch_source.h"
#include "util/expected.h"

namespace sublet::serve {

/// Point-in-time view of the per-request counters.
struct StatsSnapshot {
  std::uint64_t requests = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t malformed = 0;
  std::uint64_t shed = 0;            ///< connections refused at the cap
  std::uint64_t timeouts = 0;        ///< connections cut at a deadline
  std::uint64_t accept_retries = 0;  ///< transient accept() errors survived
  std::uint64_t reloads = 0;         ///< successful hot swaps
  std::uint64_t reload_failures = 0; ///< rejected RELOADs (old state kept)
  std::uint64_t generation = 0;      ///< current engine generation
  double p50_us = 0.0;
  double p99_us = 0.0;

  std::string to_json() const;
};

class QueryServer {
 public:
  struct Options {
    std::uint16_t port = 0;  ///< 0 = ephemeral; read back via port()
    /// Event-loop shards (one epoll thread each); 0 = default.
    unsigned shards = 0;
    /// Legacy alias for `shards` (the pre-epoll server's handler-thread
    /// knob); used only when `shards` is 0.
    unsigned threads = 0;
    /// Max concurrently accepted connections; one over the cap is answered
    /// {"error":"overloaded"} and closed. 0 = unlimited (legacy).
    unsigned max_conns = 256;
    /// Close a connection after this long with no complete request.
    /// 0 = no idle deadline.
    int idle_timeout_ms = 60000;
    /// Deadline for draining a pending response to a peer that stopped
    /// reading. 0 = no write deadline.
    int io_timeout_ms = 10000;
    /// How long stop() waits for in-flight connections to finish before
    /// forcing them closed.
    int drain_timeout_ms = 2000;
    /// Per-connection cap on pending (unflushed) output bytes. A peer
    /// that pipelines requests but stops reading the responses — the
    /// slow-reader attack the soak harness replays — would otherwise grow
    /// the output buffer without bound; over the cap the connection is
    /// closed and counted in sublet_serve_outbuf_overflow_total.
    /// 0 = unlimited.
    std::size_t max_outbuf_bytes = 8u << 20;
    /// Most recent epochs a single HISTORY request will replay; older
    /// epochs are summarized in the response's "truncated_epochs" count so
    /// one request can never walk an unbounded catalog. 0 = no cap.
    std::size_t max_history_epochs = 64;
    /// Snapshot load mode used by RELOAD.
    snapshot::Snapshot::Mode reload_mode = snapshot::Snapshot::Mode::kMap;
    /// Flight recorder (docs/OBSERVABILITY.md): per-shard ring of recent
    /// request records with a read→parse→engine→write stage breakdown,
    /// dumped by the INSPECT verb. 0 disables recording entirely.
    std::size_t flight_ring = 256;
    /// Worst requests kept per shard with full detail (the slow log).
    std::size_t slow_log = 16;
    /// A request slower than this end-to-end enters the slow log.
    std::uint64_t slow_threshold_us = 1000;
  };

  QueryServer(std::shared_ptr<const EngineState> engine, Options options);
  explicit QueryServer(std::shared_ptr<const EngineState> engine)
      : QueryServer(std::move(engine), Options{}) {}
  /// Catalog (time-travel) mode: `initial` is the already-materialized
  /// latest epoch, `source` resolves AT / HISTORY / binary-frame epochs.
  /// RELOAD becomes "re-scan the catalog for appended epochs"
  /// (docs/TIMETRAVEL.md).
  QueryServer(std::shared_ptr<EpochSource> source,
              std::shared_ptr<const EngineState> initial, Options options);
  ~QueryServer();

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  /// Bind 127.0.0.1, listen, and spawn the accept loop + shard threads.
  /// Returns the bound port (useful with port 0) or an Error if the socket
  /// or epoll setup fails.
  Expected<std::uint16_t> start();

  std::uint16_t port() const { return port_; }
  StatsSnapshot stats() const;

  /// Event-loop shards actually running (resolved from Options).
  unsigned shard_count() const { return shard_count_; }

  /// The current serving generation. Request handlers grab one shared_ptr
  /// per request, so a concurrent RELOAD never invalidates what they read.
  std::shared_ptr<const EngineState> engine() const;

  /// True when this server resolves epochs through an EpochSource.
  bool catalog_mode() const { return source_ != nullptr; }

  /// Serving state for `epoch` (0 = the current engine). Epochs other
  /// than 0 require catalog mode; failures never disturb what is being
  /// served.
  Expected<std::shared_ptr<const EngineState>> engine_for(
      std::uint32_t epoch);

  /// Load + fully validate the snapshot at `path` off the hot path, then
  /// atomically swap it in. Returns the new generation number, or an Error
  /// — in which case the previous engine keeps serving untouched. Serialized:
  /// concurrent RELOADs run one at a time.
  Expected<std::uint64_t> reload(const std::string& path);

  /// One-line JSON for the HEALTH verb (also usable without a socket).
  std::string health_json() const;

  /// True once a SHUTDOWN request was served (or stop() began).
  bool stop_requested() const {
    return stop_.load(std::memory_order_acquire);
  }

  /// Block until SHUTDOWN arrives or `predicate()` returns true. The
  /// predicate is polled every ~100ms so signal handlers can set a flag
  /// without needing async-signal-safe condition variables.
  void wait(const std::function<bool()>& predicate = {});

  /// Stop accepting, drain in-flight connections for up to
  /// drain_timeout_ms, then force the rest closed and join all threads.
  /// Idempotent; also run by the destructor.
  void stop();

  /// Handle one request line (no trailing newline) and return the JSON
  /// response body. Public so tests can exercise the protocol without a
  /// socket; counters are updated exactly as for a network request.
  std::string handle_request(std::string_view line);

  /// One-line JSON for the INSPECT verb (docs/OBSERVABILITY.md): per
  /// shard, the live connection table (fd age, buffered bytes, parked
  /// flag, deadline arm state), timer-list depths, the flight-recorder
  /// ring tail, the slow-request log, and latency exemplars. Shard
  /// views are captured by the owning event-loop threads (requested via
  /// their eventfds); a shard that does not respond within the bounded
  /// wait is reported with "stale": true. Also usable without a socket
  /// (the shard array is simply empty before start()).
  std::string inspect_json();

  /// Toggle per-request flight recording on every shard (the overhead
  /// bench's knob; recording defaults to Options::flight_ring > 0).
  void set_flight_recording(bool on);
  bool flight_recording() const;

  /// Prometheus text exposition for the METRICS verb: the process-global
  /// registry (pipeline, snapshot, trie families) followed by this server's
  /// own registry, terminated by a "# EOF" line so clients reading the
  /// newline-delimited wire protocol know where the multi-line body ends.
  /// Also usable without a socket.
  std::string metrics_text() const;

  /// This server's private registry (sublet_serve_* families). Each
  /// QueryServer owns its own so multiple servers in one process keep
  /// independent counters; exported by metrics_text() after the global
  /// registry.
  const obs::MetricsRegistry& registry() const { return registry_; }

  /// Currently open connections across all shards (accepted, not yet
  /// closed). Exposed for the HEALTH verb and the soak tests.
  std::size_t active_connections() const {
    return live_conns_.load(std::memory_order_relaxed);
  }

  /// Bytes of per-connection state held across all shards: the Conn
  /// objects themselves plus the capacity of every input/output buffer.
  /// The 10k-idle-connection soak divides this by active_connections() to
  /// enforce a per-connection memory budget.
  std::size_t connection_memory_bytes() const;

 private:
  // Per-connection state machine and the event-loop shard that owns it.
  // Both are defined in server.cc; Shard's methods implement the epoll
  // loop and have full access to the server's counters (nested types see
  // the enclosing class's private members).
  struct Conn;
  struct Shard;

  void accept_loop();
  void wake_all_shards();
  /// Blocking best-effort send with the write deadline applied; used for
  /// the pre-dispatch shed response only (the fd never reaches a shard).
  bool send_with_deadline(int fd, std::string_view data);

  enum class Verb { kExact, kLpm, kMlpm, kBin, kAt, kHistory, kOther };
  obs::Histogram& verb_histogram(Verb verb);

  /// Why an accepted connection ended — one label value each in the
  /// sublet_serve_conn_closed_total counter family. The legacy scattered
  /// counters (timeouts, outbuf_overflow, shed) stay incremented as
  /// aliases for one release (docs/OBSERVABILITY.md).
  enum class CloseReason {
    kIdleTimeout,
    kWriteTimeout,
    kOutbufOverflow,
    kShed,
    kDrain,
    kPeer,
    kError,
  };
  obs::Counter& closed_counter(CloseReason reason);

  /// Per-request stage info handed back by handle_request() to the shard
  /// that is building a flight record for the request.
  struct RequestFlight {
    /// Stamps reused from handle_request's own histogram timing, so
    /// recording adds no extra clock reads for dispatch/engine-done.
    std::chrono::steady_clock::time_point start{};
    std::chrono::steady_clock::time_point parse_done{};
    std::chrono::steady_clock::time_point done{};
    std::uint32_t epoch = 0;  ///< catalog epoch answered (AT queries)
    std::uint8_t verb = 0;    ///< Verb, as stored in FlightRecords
    bool error = false;       ///< response was an {"error": ...} line
  };
  std::string handle_request(std::string_view line, RequestFlight* flight);

  /// Refresh the catalog (RELOAD in catalog mode) and swap in the new
  /// latest epoch. Returns its generation.
  Expected<std::uint64_t> refresh_catalog();
  std::string history_json(const Prefix& query);

  Options options_;
  unsigned shard_count_ = 1;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread accept_thread_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::chrono::steady_clock::time_point start_time_;

  mutable std::mutex engine_mu_;
  std::shared_ptr<const EngineState> engine_;
  std::mutex reload_mu_;  ///< serializes RELOADs (not the swap itself)
  std::shared_ptr<EpochSource> source_;  ///< null = single-snapshot mode

  std::atomic<bool> stop_{false};   ///< SHUTDOWN seen / stop() began
  std::atomic<bool> drain_{false};  ///< shards: flush + close, no new reads
  std::atomic<bool> force_{false};  ///< shards: close everything now
  std::mutex stop_mu_;
  std::condition_variable stop_cv_;
  std::atomic<bool> stopped_{false};  ///< stop() already ran to completion

  std::atomic<std::size_t> live_conns_{0};
  std::mutex drain_mu_;
  std::condition_variable drain_cv_;  ///< signalled when live_conns_ hits 0

  // Per-server metrics live in an owned registry (declared before the
  // references into it). The references are the request hot path: one
  // relaxed fetch_add each, exactly what the old private atomics cost.
  obs::MetricsRegistry registry_;
  obs::Counter& requests_;
  obs::Counter& hits_;
  obs::Counter& misses_;
  obs::Counter& malformed_;
  obs::Counter& shed_;
  obs::Counter& timeouts_;
  obs::Counter& accept_retries_;
  obs::Counter& epoll_retries_;
  obs::Counter& reloads_;
  obs::Counter& reload_failures_;
  obs::Counter& outbuf_overflow_;
  obs::Counter& fair_yields_;
  obs::Counter& bin_frames_;
  obs::Counter& bin_lookups_;
  obs::Counter& bytes_read_;
  obs::Counter& bytes_written_;
  obs::Gauge& generation_gauge_;
  obs::Gauge& active_conns_gauge_;
  // Latency split per verb (satellite: per-verb histograms). STATS merges
  // all the series bucket-by-bucket, so its p50/p99 doubles are
  // bit-identical to the old single-histogram math.
  obs::Histogram& latency_exact_;
  obs::Histogram& latency_lpm_;
  obs::Histogram& latency_mlpm_;
  obs::Histogram& latency_bin_;
  obs::Histogram& latency_at_;
  obs::Histogram& latency_history_;
  obs::Histogram& latency_other_;
  // Labeled close-accounting family (CloseReason order; see
  // closed_counter()).
  obs::Counter& closed_idle_;
  obs::Counter& closed_write_;
  obs::Counter& closed_overflow_;
  obs::Counter& closed_shed_;
  obs::Counter& closed_drain_;
  obs::Counter& closed_peer_;
  obs::Counter& closed_error_;

  std::atomic<bool> flight_enabled_{false};
};

}  // namespace sublet::serve
