// Multi-threaded TCP prefix-query server (docs/SERVING.md).
//
// Wire protocol: newline-delimited requests, one single-line JSON response
// per request:
//
//   EXACT <prefix>        record stored exactly at the prefix
//   LPM <prefix|address>  longest-prefix match (an address means /32)
//   STATS                 counters + latency percentiles
//   SHUTDOWN              acknowledge, then ask the owner to stop
//
// The accept loop runs on its own thread; each accepted connection is
// handled on the PR-1 ThreadPool (threads == 1 keeps the pool in inline
// mode: connections are served one at a time on the accept thread, the
// exact serial semantics the rest of the codebase uses for --threads 1).
// Per-request counters — requests, hits, misses, malformed, p50/p99
// latency — are lock-free atomics shared by all handler threads; the CLI
// dumps them on SIGTERM and any client can read them via STATS.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_set>

#include "serve/query_engine.h"
#include "util/expected.h"
#include "util/parallel.h"

namespace sublet::serve {

/// Point-in-time view of the per-request counters.
struct StatsSnapshot {
  std::uint64_t requests = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t malformed = 0;
  double p50_us = 0.0;
  double p99_us = 0.0;

  std::string to_json() const;
};

/// Lock-free latency histogram: one bucket per power-of-two nanosecond
/// range. Percentiles are bucket-midpoint approximations — plenty for the
/// p50/p99 the STATS command reports.
class LatencyHistogram {
 public:
  void record(std::uint64_t nanos) {
    int bucket = nanos == 0 ? 0 : 64 - std::countl_zero(nanos);
    buckets_[static_cast<std::size_t>(bucket)].fetch_add(
        1, std::memory_order_relaxed);
  }

  /// Approximate `q`-quantile (0 < q < 1) in microseconds.
  double quantile_us(double q) const;

 private:
  std::array<std::atomic<std::uint64_t>, 65> buckets_{};
};

class QueryServer {
 public:
  struct Options {
    std::uint16_t port = 0;  ///< 0 = ephemeral; read back via port()
    unsigned threads = 0;    ///< handler threads; 0 = default, 1 = inline
  };

  QueryServer(const QueryEngine& engine, Options options);
  explicit QueryServer(const QueryEngine& engine)
      : QueryServer(engine, Options{}) {}
  ~QueryServer();

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  /// Bind 127.0.0.1, listen, and spawn the accept loop. Returns the bound
  /// port (useful with port 0) or an Error if the socket setup fails.
  Expected<std::uint16_t> start();

  std::uint16_t port() const { return port_; }
  StatsSnapshot stats() const;

  /// True once a SHUTDOWN request was served (or stop() began).
  bool stop_requested() const {
    return stop_.load(std::memory_order_acquire);
  }

  /// Block until SHUTDOWN arrives or `predicate()` returns true. The
  /// predicate is polled every ~100ms so signal handlers can set a flag
  /// without needing async-signal-safe condition variables.
  void wait(const std::function<bool()>& predicate = {});

  /// Stop accepting, unblock every in-flight connection, and join all
  /// threads. Idempotent; also run by the destructor.
  void stop();

  /// Handle one request line (no trailing newline) and return the JSON
  /// response body. Public so tests can exercise the protocol without a
  /// socket; counters are updated exactly as for a network request.
  std::string handle_request(std::string_view line);

 private:
  void accept_loop();
  void handle_connection(int fd);

  const QueryEngine& engine_;
  Options options_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread accept_thread_;
  std::unique_ptr<par::ThreadPool> pool_;

  std::atomic<bool> stop_{false};
  std::mutex stop_mu_;
  std::condition_variable stop_cv_;

  std::mutex conns_mu_;
  std::unordered_set<int> conns_;

  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> malformed_{0};
  LatencyHistogram latency_;
};

}  // namespace sublet::serve
