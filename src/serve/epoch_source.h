// Abstract multi-epoch serving source (docs/TIMETRAVEL.md).
//
// The server's time-travel verbs (AT / HISTORY, plus the binary frame
// epoch field) resolve epochs through this interface instead of a concrete
// store, so sublet_serve stays below sublet_catalog in the link graph: the
// catalog implements EpochSource on top of EngineState, and the CLI wires
// the two together. Implementations must be safe to call from every shard
// thread concurrently.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "serve/engine_state.h"
#include "util/expected.h"

namespace sublet::serve {

class EpochSource {
 public:
  virtual ~EpochSource() = default;

  /// All epoch timestamps, ascending. Never empty for a healthy source.
  virtual std::vector<std::uint32_t> epochs() const = 0;

  /// Materialized state for the newest epoch whose timestamp is <= `at`
  /// (standard as-of semantics); `at` = 0 means the latest epoch. Errors
  /// when `at` predates the first epoch or materialization fails — in
  /// which case previously materialized epochs stay served, same contract
  /// as a failed RELOAD.
  virtual Expected<std::shared_ptr<const EngineState>> epoch_at(
      std::uint32_t at) = 0;

  /// Re-scan the backing store for appended epochs and return the new
  /// latest state. Failure leaves the currently-known epochs serving.
  virtual Expected<std::shared_ptr<const EngineState>> refresh() = 0;
};

}  // namespace sublet::serve
