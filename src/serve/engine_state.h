// One generation of serving state: a loaded snapshot plus the query engine
// built over it, immutable after construction.
//
// The server holds the current generation behind a std::shared_ptr and
// swaps it atomically on RELOAD (RCU style): in-flight requests keep the
// shared_ptr they grabbed and finish on the old engine; the old snapshot
// is retired automatically when the last reference drops. A failed load
// never touches the currently-served state (docs/ROBUSTNESS.md).
//
// With the multi-epoch catalog (docs/TIMETRAVEL.md) a process can hold
// several EngineStates at once — one per materialized epoch — so every
// state carries its epoch identity: the unix timestamp of the snapshot it
// serves, or 0 for single-snapshot mode where time travel is off.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <utility>

#include "serve/query_engine.h"
#include "snapshot/snapshot.h"
#include "util/expected.h"

namespace sublet::serve {

class EngineState {
 public:
  /// Open + fully validate the snapshot at `path`, then build the engine.
  /// On any failure nothing is swapped anywhere — the caller keeps serving
  /// whatever it served before.
  static Expected<std::shared_ptr<const EngineState>> load(
      const std::string& path,
      snapshot::Snapshot::Mode mode = snapshot::Snapshot::Mode::kMap,
      std::uint64_t generation = 1, std::uint32_t epoch = 0);

  /// Adopt an already-validated snapshot (tests, benches, in-memory use).
  static Expected<std::shared_ptr<const EngineState>> adopt(
      std::unique_ptr<snapshot::Snapshot> snap, std::string path,
      std::uint64_t generation = 1, std::uint32_t epoch = 0);

  /// Adopt a snapshot together with a caller-built trie — the catalog's
  /// delta-materialization path, where the snapshot is an in-memory parts
  /// merge and the trie was patched from the base epoch rather than
  /// adopted from a file.
  static Expected<std::shared_ptr<const EngineState>> adopt_with_trie(
      std::unique_ptr<snapshot::Snapshot> snap,
      PrefixTrie<std::uint32_t> trie, std::string path,
      std::uint64_t generation, std::uint32_t epoch);

  /// adopt_with_trie, but the engine's aggregation columns are patched
  /// from `base`'s instead of rebuilt (QueryEngine::create_patched) —
  /// the delta-apply fast path, where almost every row carries over from
  /// the base epoch unchanged. The trie is shared, not owned: an
  /// in-place-only delta passes the base epoch's trie handle verbatim.
  static Expected<std::shared_ptr<const EngineState>> adopt_patched(
      std::unique_ptr<snapshot::Snapshot> snap,
      std::shared_ptr<const PrefixTrie<std::uint32_t>> trie,
      const QueryEngine& base, std::span<const std::uint32_t> surviving,
      std::span<const std::uint32_t> patched, std::string path,
      std::uint64_t generation, std::uint32_t epoch);

  const QueryEngine& engine() const { return engine_; }
  const snapshot::Snapshot& snapshot() const { return *snap_; }
  std::uint64_t generation() const { return generation_; }
  /// Epoch timestamp this state serves; 0 = single-snapshot (no catalog).
  std::uint32_t epoch() const { return epoch_; }
  const std::string& path() const { return path_; }

 private:
  EngineState(std::unique_ptr<snapshot::Snapshot> snap, QueryEngine engine,
              std::string path, std::uint64_t generation, std::uint32_t epoch)
      : snap_(std::move(snap)),
        engine_(std::move(engine)),
        path_(std::move(path)),
        generation_(generation),
        epoch_(epoch) {}

  // unique_ptr keeps the snapshot's address stable: the engine's trie and
  // record accessors point into it.
  std::unique_ptr<snapshot::Snapshot> snap_;
  QueryEngine engine_;
  std::string path_;
  std::uint64_t generation_;
  std::uint32_t epoch_;
};

}  // namespace sublet::serve
