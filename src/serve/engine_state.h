// One generation of serving state: a loaded snapshot plus the query engine
// built over it, immutable after construction.
//
// The server holds the current generation behind a std::shared_ptr and
// swaps it atomically on RELOAD (RCU style): in-flight requests keep the
// shared_ptr they grabbed and finish on the old engine; the old snapshot
// is retired automatically when the last reference drops. A failed load
// never touches the currently-served state (docs/ROBUSTNESS.md).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>

#include "serve/query_engine.h"
#include "snapshot/snapshot.h"
#include "util/expected.h"

namespace sublet::serve {

class EngineState {
 public:
  /// Open + fully validate the snapshot at `path`, then build the engine.
  /// On any failure nothing is swapped anywhere — the caller keeps serving
  /// whatever it served before.
  static Expected<std::shared_ptr<const EngineState>> load(
      const std::string& path,
      snapshot::Snapshot::Mode mode = snapshot::Snapshot::Mode::kMap,
      std::uint64_t generation = 1);

  /// Adopt an already-validated snapshot (tests, benches, in-memory use).
  static Expected<std::shared_ptr<const EngineState>> adopt(
      std::unique_ptr<snapshot::Snapshot> snap, std::string path,
      std::uint64_t generation = 1);

  const QueryEngine& engine() const { return engine_; }
  const snapshot::Snapshot& snapshot() const { return *snap_; }
  std::uint64_t generation() const { return generation_; }
  const std::string& path() const { return path_; }

 private:
  EngineState(std::unique_ptr<snapshot::Snapshot> snap, QueryEngine engine,
              std::string path, std::uint64_t generation)
      : snap_(std::move(snap)),
        engine_(std::move(engine)),
        path_(std::move(path)),
        generation_(generation) {}

  // unique_ptr keeps the snapshot's address stable: the engine's trie and
  // record accessors point into it.
  std::unique_ptr<snapshot::Snapshot> snap_;
  QueryEngine engine_;
  std::string path_;
  std::uint64_t generation_;
};

}  // namespace sublet::serve
