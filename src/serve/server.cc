#include "serve/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <optional>
#include <thread>
#include <unordered_map>
#include <vector>

#include "obs/flight.h"
#include "serve/json.h"
#include "serve/wire.h"
#include "util/faultinject.h"
#include "util/log.h"
#include "util/strings.h"

namespace sublet::serve {

namespace {

using std::chrono::steady_clock;

/// One text request line must fit in this much buffered input; a client
/// that streams more without a newline is cut off (defensive bound, not a
/// protocol limit any legitimate request approaches). Binary frames carry
/// their own length and are bounded by wire::kMaxPayload.
constexpr std::size_t kMaxBufferedInput = 1 << 20;

/// The accept loop and wait() poll in slices of at most this long so
/// stop() stays responsive; the shard loops need no slices — their
/// epoll_wait timeout tracks the earliest timer deadline and an eventfd
/// wakes them for everything else.
constexpr int kPollSliceMs = 100;

/// recv() size per readiness event. Reads land in a shard-owned scratch
/// buffer and only the received bytes are appended to the connection, so
/// an idle connection's input buffer stays at zero capacity.
constexpr std::size_t kReadChunk = 64 * 1024;

/// Fairness budget: at most this many requests are answered for one
/// connection per event-loop pass. A peer that pipelines thousands of
/// requests in one burst (a 64KB read chunk holds ~11k "STATS\n" lines)
/// would otherwise pin the shard thread for the whole synchronous drain,
/// stalling every other connection on the shard past its io deadline; at
/// the budget the connection is parked on the shard's work list and the
/// loop resumes it next pass, interleaving everyone else's requests.
constexpr std::size_t kMaxRequestsPerPass = 128;

std::string error_json(std::string_view message) {
  JsonWriter json;
  json.begin_object();
  json.key("error").value(message);
  json.end_object();
  return json.take();
}

/// Wait for `events` on `fd` for up to `timeout_ms`. Returns >0 ready,
/// 0 timeout, <0 error (EINTR already retried).
int wait_fd(int fd, short events, int timeout_ms) {
  pollfd pfd{fd, events, 0};
  for (;;) {
    int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc < 0 && errno == EINTR) continue;
    return rc;
  }
}

bool set_nonblocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  return ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) >= 0;
}

/// accept() errors the loop must survive: resource exhaustion and peers
/// that gave up while queued. Everything else (EBADF/EINVAL once stop()
/// shut the listener down) ends the loop.
bool transient_accept_error(int err) {
  return err == EMFILE || err == ENFILE || err == ECONNABORTED ||
         err == EAGAIN || err == EWOULDBLOCK || err == ENOBUFS ||
         err == ENOMEM || err == EPROTO;
}

/// The registry Histogram's quantile over an externally merged snapshot:
/// same target-rank rule, same bucket-midpoint estimate, so summing the
/// per-verb series reproduces the old single-histogram doubles exactly.
double snapshot_quantile(const obs::HistogramSnapshot& snap, double q) {
  if (snap.count == 0) return 0.0;
  auto target =
      static_cast<std::uint64_t>(q * static_cast<double>(snap.count));
  if (target >= snap.count) target = snap.count - 1;
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < snap.buckets.size(); ++b) {
    seen += snap.buckets[b];
    if (seen > target) {
      if (b == 0) return 0.0;
      return 1.5 * static_cast<double>(std::uint64_t{1} << (b - 1));
    }
  }
  return 0.0;
}

std::uint64_t elapsed_ns(steady_clock::time_point from,
                         steady_clock::time_point to) {
  if (to <= from) return 0;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(to - from)
          .count());
}

const char* verb_name(std::uint8_t verb) {
  switch (verb) {
    case 0: return "exact";
    case 1: return "lpm";
    case 2: return "mlpm";
    case 3: return "bin";
    case 4: return "at";
    case 5: return "history";
    default: return "other";
  }
}

/// Emit one flight record as a JSON object (shared by the ring tail and
/// the slow log; the latter adds "detail").
void flight_record_json(JsonWriter& json, const obs::FlightRecord& rec,
                        const std::string* detail = nullptr) {
  json.begin_object();
  json.key("seq").value(rec.seq);
  json.key("verb").value(verb_name(rec.verb));
  json.key("status").value(rec.status == 0 ? "ok" : "error");
  if (rec.epoch != 0) {
    json.key("epoch").value(static_cast<std::uint64_t>(rec.epoch));
  }
  json.key("fd").value(static_cast<std::uint64_t>(
      rec.fd < 0 ? 0 : static_cast<std::uint32_t>(rec.fd)));
  char peer[32];
  std::snprintf(peer, sizeof(peer), "%u.%u.%u.%u:%u",
                (rec.peer_addr >> 24) & 0xFF, (rec.peer_addr >> 16) & 0xFF,
                (rec.peer_addr >> 8) & 0xFF, rec.peer_addr & 0xFF,
                rec.peer_port);
  json.key("peer").value(peer);
  json.key("bytes_in").value(rec.bytes_in);
  json.key("bytes_out").value(rec.bytes_out);
  json.key("start_ms").value(static_cast<double>(rec.start_ns) / 1e6);
  json.key("read_us").value(static_cast<double>(rec.read_ns) / 1e3);
  json.key("parse_us").value(static_cast<double>(rec.parse_ns) / 1e3);
  json.key("engine_us").value(static_cast<double>(rec.engine_ns) / 1e3);
  json.key("write_us").value(static_cast<double>(rec.write_ns) / 1e3);
  json.key("total_us").value(static_cast<double>(rec.total_ns) / 1e3);
  if (detail != nullptr) json.key("detail").value(*detail);
  json.end_object();
}

}  // namespace

std::string StatsSnapshot::to_json() const {
  JsonWriter json;
  json.begin_object();
  json.key("requests").value(requests);
  json.key("hits").value(hits);
  json.key("misses").value(misses);
  json.key("malformed").value(malformed);
  json.key("shed").value(shed);
  json.key("timeouts").value(timeouts);
  json.key("accept_retries").value(accept_retries);
  json.key("reloads").value(reloads);
  json.key("reload_failures").value(reload_failures);
  json.key("generation").value(generation);
  json.key("p50_us").value(p50_us);
  json.key("p99_us").value(p99_us);
  json.end_object();
  return json.take();
}

// ---- per-connection state machine ----------------------------------------

struct QueryServer::Conn {
  /// Intrusive links for one timer list. Timeouts are per-server
  /// constants, so arming appends to the list tail and the head is always
  /// the earliest deadline — O(1) arm, cancel, and expiry.
  struct Link {
    Conn* prev = nullptr;
    Conn* next = nullptr;
    bool armed = false;
    steady_clock::time_point deadline{};
  };

  int fd = -1;
  /// Buffered input; [in_off, in.size()) is not yet consumed. Requests are
  /// parsed by advancing in_off, never by erasing the front (compact()
  /// reclaims the consumed prefix once it grows past a threshold).
  std::string in;
  std::size_t in_off = 0;
  /// Two-buffer output: out_front[out_off..] is draining to the socket,
  /// out_back accumulates new responses. The flush sends both with one
  /// vectored write and swaps them when the front empties — no front-erase
  /// memmove, and buffer capacity is reused at steady state.
  std::string out_front;
  std::size_t out_off = 0;
  std::string out_back;
  std::uint32_t armed_events = 0;  ///< epoll interest currently installed
  bool closing = false;  ///< flush remaining output, then close
  bool seen_binary = false;  ///< suppresses the text idle-timeout notice
  bool work_pending = false;  ///< parked on the shard's fairness work list
  std::size_t accounted = 0;  ///< footprint last added to the shard total
  /// Why `closing` was set — the conn_closed label finish_io() uses when
  /// the deferred flush-then-close completes.
  CloseReason close_reason = CloseReason::kPeer;
  std::uint32_t peer_addr = 0;   ///< IPv4, host order (INSPECT / recorder)
  std::uint16_t peer_port = 0;
  std::uint64_t requests = 0;    ///< requests answered on this connection
  steady_clock::time_point opened{};     ///< accept time (fd age)
  steady_clock::time_point last_recv{};  ///< last recv() that added bytes
  Link idle_link;
  Link write_link;

  std::size_t avail() const { return in.size() - in_off; }
  bool has_output() const {
    return out_off < out_front.size() || !out_back.empty();
  }
  std::size_t footprint() const {
    return sizeof(Conn) + in.capacity() + out_front.capacity() +
           out_back.capacity();
  }
  void compact() {
    if (in_off == in.size()) {
      in.clear();
      in_off = 0;
    } else if (in_off >= 4096) {
      in.erase(0, in_off);
      in_off = 0;
    }
  }
};

// ---- event-loop shard -----------------------------------------------------

struct QueryServer::Shard {
  class TimerList {
   public:
    explicit TimerList(Conn::Link Conn::* link) : link_(link) {}

    void arm(Conn* conn, steady_clock::time_point deadline) {
      cancel(conn);
      Conn::Link& link = conn->*link_;
      link.deadline = deadline;
      link.armed = true;
      link.prev = tail_;
      link.next = nullptr;
      if (tail_ != nullptr) {
        (tail_->*link_).next = conn;
      } else {
        head_ = conn;
      }
      tail_ = conn;
      ++size_;
    }

    void cancel(Conn* conn) {
      Conn::Link& link = conn->*link_;
      if (!link.armed) return;
      if (link.prev != nullptr) {
        (link.prev->*link_).next = link.next;
      } else {
        head_ = link.next;
      }
      if (link.next != nullptr) {
        (link.next->*link_).prev = link.prev;
      } else {
        tail_ = link.prev;
      }
      link.prev = link.next = nullptr;
      link.armed = false;
      --size_;
    }

    Conn* front() const { return head_; }
    std::size_t size() const { return size_; }

   private:
    Conn::Link Conn::* link_;
    Conn* head_ = nullptr;
    Conn* tail_ = nullptr;
    std::size_t size_ = 0;
  };

  /// Owner-thread snapshot of one connection for INSPECT. Deadlines are
  /// milliseconds-until (-1 = not armed) so the JSON is self-contained.
  struct ConnView {
    int fd = -1;
    std::uint32_t peer_addr = 0;
    std::uint16_t peer_port = 0;
    std::uint64_t age_ms = 0;
    std::uint64_t requests = 0;
    std::uint64_t inbuf_bytes = 0;
    std::uint64_t outbuf_bytes = 0;
    bool parked = false;
    bool closing = false;
    bool binary = false;
    std::int64_t idle_deadline_ms = -1;
    std::int64_t write_deadline_ms = -1;
  };

  struct ShardView {
    std::vector<ConnView> conns;
    std::size_t idle_timers = 0;
    std::size_t write_timers = 0;
    std::size_t work_queue = 0;
  };

  QueryServer* srv = nullptr;
  unsigned index = 0;
  int epoll_fd = -1;
  int event_fd = -1;
  std::thread thread;

  std::mutex inbox_mu;
  std::vector<int> inbox;  ///< fds handed over by the accept thread

  std::unordered_map<int, std::unique_ptr<Conn>> conns;  ///< owner-thread only
  TimerList idle_timers{&Conn::idle_link};
  TimerList write_timers{&Conn::write_link};

  /// Connections with buffered complete requests beyond the per-pass
  /// budget, resumed before the next epoll_wait (which then uses a zero
  /// timeout). Stored as fds, not pointers: a connection closed while
  /// parked simply misses the conns lookup on resume.
  std::vector<int> work_fds;
  std::vector<int> work_scratch;

  std::atomic<std::size_t> mem_bytes{0};  ///< sum of Conn footprints
  obs::Gauge* conn_gauge = nullptr;

  // Scratch reused across requests: the recv landing zone and the binary
  // batch address/record arrays — zero allocation at steady state.
  std::vector<char> chunk = std::vector<char>(kReadChunk);
  std::vector<std::uint32_t> addrs;
  std::vector<std::uint32_t> records;

  /// Per-shard flight recorder (null when Options::flight_ring is 0).
  /// This thread is its only writer; INSPECT handlers read it directly.
  std::unique_ptr<obs::FlightRecorder> recorder;

  /// Requests answered in the current event-loop pass, waiting for the
  /// flush attempt that stamps their write stage (commit_flights()).
  struct PendingFlight {
    obs::FlightRecord rec;
    steady_clock::time_point engine_done{};
    std::string detail;  ///< request text, kept only if already slow
  };
  std::vector<PendingFlight> inflight;

  // INSPECT view handshake: an inspecting thread sets view_wanted and
  // kicks the eventfd; this thread publishes a fresh ShardView under
  // view_mu and bumps view_seq. The inspector waits on view_cv with a
  // bounded deadline, so a wedged shard yields a stale row instead of a
  // stuck INSPECT (docs/OBSERVABILITY.md).
  std::atomic<bool> view_wanted{false};
  std::mutex view_mu;
  std::condition_variable view_cv;
  std::uint64_t view_seq = 0;  ///< guarded by view_mu
  ShardView view;              ///< guarded by view_mu

  /// The shard whose event loop runs on this thread (null on accept /
  /// test / bench threads). Lets an INSPECT handled on a shard thread
  /// fill its own view synchronously — required so two concurrent
  /// INSPECTs on different shards can never wait on each other.
  static inline thread_local Shard* t_current = nullptr;

  void loop();
  void note_work(Conn& conn);
  void adopt_inbox();
  void apply_drain(bool force);
  int compute_timeout(steady_clock::time_point now) const;
  void expire_timers(steady_clock::time_point now);
  void on_readable(Conn& conn);
  bool process(Conn& conn);
  bool process_frame(Conn& conn);
  bool flush(Conn& conn);
  bool finish_io(Conn& conn);
  void update_interest(Conn& conn);
  void account(Conn& conn);
  void close_conn(Conn& conn, CloseReason reason);
  void note_flight(Conn& conn, const RequestFlight& rf,
                   std::string_view line, std::size_t bytes_out);
  void commit_flights();
  void publish_view();
};

void QueryServer::Shard::account(Conn& conn) {
  const std::size_t current = conn.footprint();
  if (current > conn.accounted) {
    mem_bytes.fetch_add(current - conn.accounted, std::memory_order_relaxed);
  } else if (current < conn.accounted) {
    mem_bytes.fetch_sub(conn.accounted - current, std::memory_order_relaxed);
  }
  conn.accounted = current;
}

void QueryServer::Shard::close_conn(Conn& conn, CloseReason reason) {
  srv->closed_counter(reason).add(1);
  idle_timers.cancel(&conn);
  write_timers.cancel(&conn);
  ::epoll_ctl(epoll_fd, EPOLL_CTL_DEL, conn.fd, nullptr);
  ::close(conn.fd);
  mem_bytes.fetch_sub(conn.accounted, std::memory_order_relaxed);
  if (conn_gauge != nullptr) conn_gauge->add(-1);
  const int fd = conn.fd;
  conns.erase(fd);  // destroys conn — must be the last touch
  if (srv->live_conns_.fetch_sub(1, std::memory_order_acq_rel) == 1 &&
      (srv->drain_.load(std::memory_order_acquire) ||
       srv->stop_.load(std::memory_order_acquire))) {
    // The drain CV wakes stop() the instant the last connection closes;
    // the empty critical section pairs with the wait_for's lock so the
    // notify cannot slip between its predicate check and its sleep.
    { std::lock_guard<std::mutex> lock(srv->drain_mu_); }
    srv->drain_cv_.notify_all();
  }
}

void QueryServer::Shard::note_work(Conn& conn) {
  if (conn.work_pending) return;
  conn.work_pending = true;
  work_fds.push_back(conn.fd);
}

void QueryServer::Shard::note_flight(Conn& conn, const RequestFlight& rf,
                                     std::string_view line,
                                     std::size_t bytes_out) {
  // All three stage stamps come out of handle_request's own timing — the
  // recorder adds no clock reads of its own on the text path.
  const auto engine_done = rf.done;
  PendingFlight pf;
  pf.rec.start_ns = elapsed_ns(srv->start_time_, conn.last_recv);
  pf.rec.read_ns = elapsed_ns(conn.last_recv, rf.start);
  pf.rec.parse_ns = elapsed_ns(rf.start, rf.parse_done);
  pf.rec.engine_ns = elapsed_ns(rf.parse_done, engine_done);
  pf.rec.bytes_in = line.size() + 1;
  pf.rec.bytes_out = bytes_out;
  pf.rec.epoch = rf.epoch;
  pf.rec.verb = rf.verb;
  pf.rec.status = rf.error ? 1 : 0;
  pf.rec.fd = conn.fd;
  pf.rec.peer_addr = conn.peer_addr;
  pf.rec.peer_port = conn.peer_port;
  pf.engine_done = engine_done;
  // The write stage is still unknown, so the slow log's detail text is
  // copied once the pre-write stages alone reach half the threshold — a
  // request made slow purely by output-buffer wait keeps its record but
  // loses the request text (documented in docs/OBSERVABILITY.md). Fast
  // requests — the overwhelming majority — never pay the copy.
  if (pf.rec.read_ns + pf.rec.parse_ns + pf.rec.engine_ns >=
      recorder->slow_threshold_ns() / 2) {
    pf.detail = std::string(line.substr(0, 128));
  }
  inflight.push_back(std::move(pf));
}

void QueryServer::Shard::commit_flights() {
  if (inflight.empty()) return;
  const auto now = steady_clock::now();
  for (PendingFlight& pf : inflight) {
    pf.rec.write_ns = elapsed_ns(pf.engine_done, now);
    pf.rec.total_ns =
        pf.rec.read_ns + pf.rec.parse_ns + pf.rec.engine_ns + pf.rec.write_ns;
    recorder->record(pf.rec, pf.detail);
  }
  inflight.clear();
}

void QueryServer::Shard::publish_view() {
  const auto now = steady_clock::now();
  ShardView fresh;
  fresh.conns.reserve(conns.size());
  auto ms_until = [&](const Conn::Link& link) -> std::int64_t {
    if (!link.armed) return -1;
    const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                        link.deadline - now)
                        .count();
    return std::max<std::int64_t>(ms, 0);
  };
  for (const auto& [fd, conn] : conns) {
    ConnView cv;
    cv.fd = fd;
    cv.peer_addr = conn->peer_addr;
    cv.peer_port = conn->peer_port;
    cv.age_ms = elapsed_ns(conn->opened, now) / 1'000'000;
    cv.requests = conn->requests;
    cv.inbuf_bytes = conn->avail();
    cv.outbuf_bytes =
        (conn->out_front.size() - conn->out_off) + conn->out_back.size();
    cv.parked = conn->work_pending;
    cv.closing = conn->closing;
    cv.binary = conn->seen_binary;
    cv.idle_deadline_ms = ms_until(conn->idle_link);
    cv.write_deadline_ms = ms_until(conn->write_link);
    fresh.conns.push_back(cv);
  }
  fresh.idle_timers = idle_timers.size();
  fresh.write_timers = write_timers.size();
  fresh.work_queue = work_fds.size();
  {
    std::lock_guard<std::mutex> lock(view_mu);
    view = std::move(fresh);
    ++view_seq;
  }
  view_cv.notify_all();
}

void QueryServer::Shard::update_interest(Conn& conn) {
  std::uint32_t want = 0;
  // Input-side backpressure: once the unconsumed backlog passes the cap
  // (only reachable via fairness yields), stop reading until the work
  // list drains it back under — the peer is throttled by TCP instead of
  // growing our buffer without bound.
  if (!conn.closing && conn.avail() <= kMaxBufferedInput) want |= EPOLLIN;
  if (conn.has_output()) want |= EPOLLOUT;
  if (want == conn.armed_events) return;
  epoll_event ev{};
  ev.events = want;
  ev.data.fd = conn.fd;
  ::epoll_ctl(epoll_fd, EPOLL_CTL_MOD, conn.fd, &ev);
  conn.armed_events = want;
}

bool QueryServer::Shard::flush(Conn& conn) {
  while (conn.has_output()) {
    iovec iov[2];
    std::size_t iov_count = 0;
    if (conn.out_off < conn.out_front.size()) {
      iov[iov_count++] = {conn.out_front.data() + conn.out_off,
                          conn.out_front.size() - conn.out_off};
    }
    if (!conn.out_back.empty()) {
      iov[iov_count++] = {conn.out_back.data(), conn.out_back.size()};
    }
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = iov_count;
    ssize_t n;
    int injected = 0;
    if (fault::inject("serve.write", &injected)) {
      n = -1;
      errno = injected;
    } else {
      n = ::sendmsg(conn.fd, &msg, MSG_NOSIGNAL);
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;  // full
      return false;  // peer gone / hard error
    }
    srv->bytes_written_.add(static_cast<std::uint64_t>(n));
    std::size_t wrote = static_cast<std::size_t>(n);
    while (wrote > 0) {
      const std::size_t front_left = conn.out_front.size() - conn.out_off;
      if (wrote < front_left) {
        conn.out_off += wrote;
        wrote = 0;
      } else {
        wrote -= front_left;
        conn.out_front.clear();
        conn.out_off = 0;
        std::swap(conn.out_front, conn.out_back);
      }
    }
  }
  return true;
}

bool QueryServer::Shard::finish_io(Conn& conn) {
  if (!flush(conn)) {
    close_conn(conn, CloseReason::kPeer);
    return false;
  }
  // Backpressure: a peer that keeps pipelining requests without reading
  // the responses grows the pending output without bound. Over the cap
  // the connection is cut — the kernel socket buffer plus the cap is all
  // a slow reader can ever pin.
  if (const std::size_t cap = srv->options_.max_outbuf_bytes; cap > 0) {
    const std::size_t pending =
        (conn.out_front.size() - conn.out_off) + conn.out_back.size();
    if (pending > cap) {
      srv->outbuf_overflow_.add(1);
      close_conn(conn, CloseReason::kOutbufOverflow);
      return false;
    }
  }
  if (!conn.has_output()) {
    write_timers.cancel(&conn);
    if (conn.closing) {
      close_conn(conn, conn.close_reason);
      return false;
    }
  } else if (srv->options_.io_timeout_ms > 0 && !conn.write_link.armed) {
    // Armed when output first becomes pending, not re-armed on partial
    // progress: the whole backlog must drain within one write deadline.
    write_timers.arm(&conn,
                     steady_clock::now() + std::chrono::milliseconds(
                                               srv->options_.io_timeout_ms));
  }
  account(conn);
  update_interest(conn);
  return true;
}

bool QueryServer::Shard::process_frame(Conn& conn) {
  conn.seen_binary = true;
  if (conn.avail() < wire::kHeaderSize) return true;  // torn header: wait
  wire::FrameHeader header;
  if (!wire::decode_header(conn.in.data() + conn.in_off, header)) {
    // Bad magic means framing itself is lost; there is no safe resync.
    srv->malformed_.add(1);
    return false;
  }
  wire::FrameHeader resp;
  resp.opcode = header.opcode;
  resp.request_id = header.request_id;
  resp.epoch = header.epoch;
  if (header.payload_len > wire::kMaxPayload) {
    // Refuse to buffer it: error frame, then close once it flushes.
    srv->malformed_.add(1);
    resp.status = wire::kTooLarge;
    wire::append_header(conn.out_back, resp);
    conn.closing = true;
    conn.close_reason = CloseReason::kError;
    return true;
  }
  if (conn.avail() < wire::kHeaderSize + header.payload_len) {
    return true;  // torn payload: wait for the rest
  }
  const char* payload = conn.in.data() + conn.in_off + wire::kHeaderSize;
  conn.in_off += wire::kHeaderSize + header.payload_len;

  const bool recording = recorder != nullptr && recorder->enabled();
  const std::size_t out_before = conn.out_back.size();
  const auto start = steady_clock::now();
  srv->requests_.add(1);
  srv->bin_frames_.add(1);
  switch (header.opcode) {
    case wire::kOpLpmBatch: {
      if (header.payload_len % 4 != 0 ||
          header.payload_len / 4 > wire::kMaxFrameEntries) {
        srv->malformed_.add(1);
        resp.status = wire::kBadFrame;
        wire::append_header(conn.out_back, resp);
        break;
      }
      auto resolved = srv->engine_for(header.epoch);
      if (!resolved) {
        // Body-level error: the stream is still framed, so the peer can
        // keep pipelining other epochs over the same connection.
        srv->malformed_.add(1);
        resp.status = wire::kBadEpoch;
        wire::append_header(conn.out_back, resp);
        break;
      }
      const std::size_t n = header.payload_len / 4;
      addrs.resize(n);
      records.resize(n);
      for (std::size_t i = 0; i < n; ++i) {
        addrs[i] = wire::load_u32le(payload + 4 * i);
      }
      std::shared_ptr<const EngineState> state = std::move(*resolved);
      const QueryEngine& engine = state->engine();
      engine.lookup_batch(addrs, records);
      srv->bin_lookups_.add(n);
      resp.status = wire::kOk;
      resp.payload_len = static_cast<std::uint32_t>(n * wire::kResultSize);
      wire::append_header(conn.out_back, resp);
      std::uint64_t hit_count = 0;
      for (std::size_t i = 0; i < n; ++i) {
        wire::Result result;
        if (records[i] == QueryEngine::kNoRecord) {
          result.prefix_len = wire::kMissLen;
        } else {
          ++hit_count;
          const QueryEngine::Brief brief = engine.brief(records[i]);
          result.prefix_addr = brief.prefix_addr;
          result.prefix_len = brief.prefix_len;
          result.group = brief.group;
          result.flags = brief.leased ? wire::kFlagLeased : 0;
        }
        wire::append_result(conn.out_back, result);
      }
      srv->hits_.add(hit_count);
      srv->misses_.add(n - hit_count);
      break;
    }
    case wire::kOpExactBatch: {
      if (header.payload_len % 8 != 0 ||
          header.payload_len / 8 > wire::kMaxFrameEntries) {
        srv->malformed_.add(1);
        resp.status = wire::kBadFrame;
        wire::append_header(conn.out_back, resp);
        break;
      }
      const std::size_t n = header.payload_len / 8;
      bool bad_entry = false;
      for (std::size_t i = 0; i < n; ++i) {
        if (static_cast<unsigned char>(payload[8 * i + 4]) > 32) {
          bad_entry = true;
          break;
        }
      }
      if (bad_entry) {
        srv->malformed_.add(1);
        resp.status = wire::kBadFrame;
        wire::append_header(conn.out_back, resp);
        break;
      }
      auto resolved = srv->engine_for(header.epoch);
      if (!resolved) {
        srv->malformed_.add(1);
        resp.status = wire::kBadEpoch;
        wire::append_header(conn.out_back, resp);
        break;
      }
      std::shared_ptr<const EngineState> state = std::move(*resolved);
      const QueryEngine& engine = state->engine();
      srv->bin_lookups_.add(n);
      resp.status = wire::kOk;
      resp.payload_len = static_cast<std::uint32_t>(n * wire::kResultSize);
      wire::append_header(conn.out_back, resp);
      std::uint64_t hit_count = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint32_t addr = wire::load_u32le(payload + 8 * i);
        const int len = static_cast<unsigned char>(payload[8 * i + 4]);
        auto prefix = Prefix::make(Ipv4Addr(addr), len);  // canonicalizes
        wire::Result result;
        std::optional<std::uint32_t> idx =
            prefix ? engine.exact(*prefix) : std::nullopt;
        if (!idx) {
          result.prefix_len = wire::kMissLen;
        } else {
          ++hit_count;
          const QueryEngine::Brief brief = engine.brief(*idx);
          result.prefix_addr = brief.prefix_addr;
          result.prefix_len = brief.prefix_len;
          result.group = brief.group;
          result.flags = brief.leased ? wire::kFlagLeased : 0;
        }
        wire::append_result(conn.out_back, result);
      }
      srv->hits_.add(hit_count);
      srv->misses_.add(n - hit_count);
      break;
    }
    default: {
      srv->malformed_.add(1);
      resp.status = wire::kBadOpcode;
      wire::append_header(conn.out_back, resp);
      break;
    }
  }
  const auto engine_done = steady_clock::now();
  srv->latency_bin_.record(elapsed_ns(start, engine_done));
  if (recording) {
    PendingFlight pf;
    pf.rec.start_ns = elapsed_ns(srv->start_time_, conn.last_recv);
    pf.rec.read_ns = elapsed_ns(conn.last_recv, start);
    // Frame decoding happens inline with dispatch; the binary path has no
    // separate tokenize step, so "parse" is folded into "engine".
    pf.rec.engine_ns = elapsed_ns(start, engine_done);
    pf.rec.bytes_in = wire::kHeaderSize + header.payload_len;
    pf.rec.bytes_out = conn.out_back.size() - out_before;
    pf.rec.epoch = header.epoch;
    pf.rec.verb = static_cast<std::uint8_t>(Verb::kBin);
    pf.rec.status = resp.status == wire::kOk ? 0 : 1;
    pf.rec.fd = conn.fd;
    pf.rec.peer_addr = conn.peer_addr;
    pf.rec.peer_port = conn.peer_port;
    pf.engine_done = engine_done;
    if (pf.rec.read_ns + pf.rec.engine_ns >=
        recorder->slow_threshold_ns() / 2) {
      char detail[64];
      std::snprintf(detail, sizeof(detail), "BIN opcode=%u payload=%u",
                    static_cast<unsigned>(header.opcode),
                    static_cast<unsigned>(header.payload_len));
      pf.detail = detail;
    }
    inflight.push_back(std::move(pf));
  }
  ++conn.requests;
  return true;
}

bool QueryServer::Shard::process(Conn& conn) {
  std::size_t handled = 0;
  for (;;) {
    if (conn.closing || conn.avail() == 0) return true;
    if (handled >= kMaxRequestsPerPass) {
      srv->fair_yields_.add(1);
      note_work(conn);  // resume next pass; others on the shard run first
      return true;
    }
    if (static_cast<unsigned char>(conn.in[conn.in_off]) ==
        wire::kMagicByte0) {
      const std::size_t before = conn.in_off;
      if (!process_frame(conn)) return false;
      if (conn.in_off == before && !conn.closing) return true;  // torn
      ++handled;
      continue;
    }
    const std::size_t nl = conn.in.find('\n', conn.in_off);
    if (nl == std::string::npos) {
      // No complete line; a peer streaming unbounded junk is cut off.
      return conn.avail() <= kMaxBufferedInput;
    }
    std::string_view line(conn.in.data() + conn.in_off, nl - conn.in_off);
    conn.in_off = nl + 1;
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (line.empty()) continue;
    const bool recording = recorder != nullptr && recorder->enabled();
    RequestFlight rf;
    std::string response =
        srv->handle_request(line, recording ? &rf : nullptr);
    if (recording) {
      note_flight(conn, rf, line, response.size() + 1);
    }
    conn.out_back += response;
    conn.out_back += '\n';
    ++conn.requests;
    ++handled;
    if (srv->stop_.load(std::memory_order_acquire)) {
      // SHUTDOWN (from this or any connection): answer what is in flight,
      // drop the rest of the pipeline, flush, close.
      conn.closing = true;
      conn.close_reason = CloseReason::kDrain;
      return true;
    }
  }
}

void QueryServer::Shard::on_readable(Conn& conn) {
  if (conn.closing) return;
  if (recorder != nullptr && recorder->enabled()) {
    // Warm the next ring slot while the recv and the request's own work
    // overlap the miss (see FlightRecorder::prefetch_next).
    recorder->prefetch_next();
  }
  ssize_t n;
  int injected = 0;
  if (fault::inject("serve.read", &injected)) {
    n = -1;
    errno = injected;
  } else {
    n = ::recv(conn.fd, chunk.data(), chunk.size(), 0);
  }
  if (n < 0 && (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)) {
    return;  // level-triggered epoll re-reports anything still pending
  }
  if (n <= 0) {
    close_conn(conn, n == 0 ? CloseReason::kPeer : CloseReason::kError);
    return;
  }
  srv->bytes_read_.add(static_cast<std::uint64_t>(n));
  conn.in.append(chunk.data(), static_cast<std::size_t>(n));
  conn.last_recv = steady_clock::now();
  if (srv->options_.idle_timeout_ms > 0) {
    idle_timers.arm(&conn, conn.last_recv + std::chrono::milliseconds(
                                                srv->options_.idle_timeout_ms));
  }
  if (!process(conn)) {
    close_conn(conn, CloseReason::kError);
    commit_flights();
    return;
  }
  conn.compact();
  finish_io(conn);
  // The flush attempt just happened: stamp the write stage of everything
  // answered in this pass and hand the records to the recorder. Safe even
  // if finish_io closed the connection — pending records are value copies.
  commit_flights();
}

void QueryServer::Shard::expire_timers(steady_clock::time_point now) {
  while (Conn* conn = idle_timers.front()) {
    if (conn->idle_link.deadline > now) break;
    idle_timers.cancel(conn);
    srv->timeouts_.add(1);
    // Best-effort farewell for text peers; a binary peer would read it as
    // a corrupt frame, so it just gets the close.
    if (!conn->seen_binary) conn->out_back += "{\"error\":\"idle timeout\"}\n";
    conn->closing = true;
    conn->close_reason = CloseReason::kIdleTimeout;
    finish_io(*conn);  // flushes + closes, or arms the write deadline
  }
  while (Conn* conn = write_timers.front()) {
    if (conn->write_link.deadline > now) break;
    srv->timeouts_.add(1);
    close_conn(*conn, CloseReason::kWriteTimeout);
  }
}

int QueryServer::Shard::compute_timeout(steady_clock::time_point now) const {
  long long best = -1;
  auto consider = [&](steady_clock::time_point deadline) {
    auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(deadline -
                                                                    now)
                  .count() +
              1;  // round up so we wake at-or-after the deadline
    ms = std::max<long long>(ms, 0);
    if (best < 0 || ms < best) best = ms;
  };
  if (const Conn* conn = idle_timers.front()) {
    consider(conn->idle_link.deadline);
  }
  if (const Conn* conn = write_timers.front()) {
    consider(conn->write_link.deadline);
  }
  if (best < 0) return -1;  // no timers: the eventfd is the only wake-up
  return static_cast<int>(std::min<long long>(best, 60'000));
}

void QueryServer::Shard::adopt_inbox() {
  std::vector<int> fds;
  {
    std::lock_guard<std::mutex> lock(inbox_mu);
    fds.swap(inbox);
  }
  for (int fd : fds) {
    auto owned = std::make_unique<Conn>();
    owned->fd = fd;
    owned->opened = steady_clock::now();
    owned->last_recv = owned->opened;
    sockaddr_in peer{};
    socklen_t peer_len = sizeof(peer);
    if (::getpeername(fd, reinterpret_cast<sockaddr*>(&peer), &peer_len) ==
            0 &&
        peer.sin_family == AF_INET) {
      owned->peer_addr = ntohl(peer.sin_addr.s_addr);
      owned->peer_port = ntohs(peer.sin_port);
    }
    Conn* conn = owned.get();
    conns.emplace(fd, std::move(owned));
    if (conn_gauge != nullptr) conn_gauge->add(1);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, fd, &ev) != 0) {
      close_conn(*conn, CloseReason::kError);
      continue;
    }
    conn->armed_events = EPOLLIN;
    if (srv->options_.idle_timeout_ms > 0) {
      idle_timers.arm(conn, steady_clock::now() +
                                std::chrono::milliseconds(
                                    srv->options_.idle_timeout_ms));
    }
    account(*conn);
  }
  // A RELOAD wakeup lands here too: re-sample the generation gauge so
  // scrapes right after a swap see the new generation.
  srv->generation_gauge_.set(
      static_cast<std::int64_t>(srv->engine()->generation()));
}

void QueryServer::Shard::apply_drain(bool force) {
  std::vector<Conn*> doomed;
  for (auto& [fd, conn] : conns) {
    if (force || !conn->has_output()) {
      doomed.push_back(conn.get());
    } else if (!conn->closing) {
      // Pending responses flush first; the write deadline (or force at the
      // drain deadline) bounds how long a non-reading peer can hold us.
      conn->closing = true;
      conn->close_reason = CloseReason::kDrain;
      idle_timers.cancel(conn.get());
      if (srv->options_.io_timeout_ms > 0 && !conn->write_link.armed) {
        write_timers.arm(conn.get(),
                         steady_clock::now() +
                             std::chrono::milliseconds(
                                 srv->options_.io_timeout_ms));
      }
      update_interest(*conn);
    }
  }
  for (Conn* conn : doomed) close_conn(*conn, CloseReason::kDrain);
}

void QueryServer::Shard::loop() {
  t_current = this;
  std::vector<epoll_event> events(128);
  for (;;) {
    const bool draining = srv->drain_.load(std::memory_order_acquire) ||
                          srv->stop_.load(std::memory_order_acquire);
    const bool forcing = srv->force_.load(std::memory_order_acquire);
    if (draining || forcing) {
      adopt_inbox();  // late handovers get closed with correct accounting
      apply_drain(forcing);
      if (conns.empty()) return;
    }
    const int timeout_ms =
        work_fds.empty() ? compute_timeout(steady_clock::now()) : 0;
    int n;
    int injected = 0;
    if (fault::inject("serve.epoll_wait", &injected)) {
      n = -1;
      errno = injected;
    } else {
      n = ::epoll_wait(epoll_fd, events.data(),
                       static_cast<int>(events.size()), timeout_ms);
    }
    if (n < 0) {
      if (errno != EINTR) {
        srv->epoll_retries_.add(1);
        SUBLET_LOG(kWarn) << "epoll_wait(shard " << index
                          << "): " << strerror(errno) << "; retrying";
      }
      continue;
    }
    for (int i = 0; i < n; ++i) {
      const epoll_event& ev = events[i];
      if (ev.data.fd == event_fd) {
        std::uint64_t drained = 0;
        [[maybe_unused]] ssize_t rc =
            ::read(event_fd, &drained, sizeof(drained));
        adopt_inbox();
        continue;
      }
      auto it = conns.find(ev.data.fd);
      if (it == conns.end()) continue;  // closed earlier in this batch
      Conn& conn = *it->second;
      if (ev.events & (EPOLLERR | EPOLLHUP)) {
        close_conn(conn, CloseReason::kError);
        continue;
      }
      if ((ev.events & EPOLLOUT) != 0 && !finish_io(conn)) continue;
      if ((ev.events & EPOLLIN) != 0) on_readable(conn);
    }
    // Resume connections parked at the fairness budget, one budget each;
    // a still-backlogged connection re-parks itself for the next pass.
    if (!work_fds.empty()) {
      work_scratch.clear();
      work_scratch.swap(work_fds);
      for (int fd : work_scratch) {
        auto it = conns.find(fd);
        if (it == conns.end()) continue;  // closed while parked
        Conn& conn = *it->second;
        conn.work_pending = false;
        if (!process(conn)) {
          close_conn(conn, CloseReason::kError);
          commit_flights();
          continue;
        }
        conn.compact();
        finish_io(conn);
        commit_flights();
      }
    }
    if (view_wanted.exchange(false, std::memory_order_acq_rel)) {
      publish_view();
    }
    expire_timers(steady_clock::now());
  }
}

// ---- server ---------------------------------------------------------------

QueryServer::QueryServer(std::shared_ptr<const EngineState> engine,
                         Options options)
    : options_(options),
      engine_(std::move(engine)),
      requests_(registry_.counter("sublet_serve_requests_total",
                                  "Requests handled (all verbs)")),
      hits_(registry_.counter("sublet_serve_hits_total",
                              "EXACT/LPM lookups that found a record")),
      misses_(registry_.counter("sublet_serve_misses_total",
                                "EXACT/LPM lookups with no record")),
      malformed_(registry_.counter("sublet_serve_malformed_total",
                                   "Requests rejected as malformed")),
      shed_(registry_.counter("sublet_serve_shed_total",
                              "Connections refused at the concurrency cap")),
      timeouts_(registry_.counter("sublet_serve_timeouts_total",
                                  "Connections cut at an idle/write deadline")),
      accept_retries_(registry_.counter(
          "sublet_serve_accept_retries_total",
          "Transient accept() errors survived by the accept loop")),
      epoll_retries_(registry_.counter(
          "sublet_serve_epoll_retries_total",
          "epoll_wait() errors survived by the shard event loops")),
      reloads_(registry_.counter("sublet_serve_reloads_total",
                                 "Successful snapshot hot swaps")),
      reload_failures_(registry_.counter(
          "sublet_serve_reload_failures_total",
          "Rejected RELOADs (previous engine kept serving)")),
      outbuf_overflow_(registry_.counter(
          "sublet_serve_outbuf_overflow_total",
          "Connections closed for exceeding the pending-output cap")),
      fair_yields_(registry_.counter(
          "sublet_serve_fair_yields_total",
          "Event-loop passes that stopped at the per-connection request "
          "budget so other connections on the shard could run")),
      bin_frames_(registry_.counter("sublet_serve_bin_frames_total",
                                    "Binary protocol frames handled")),
      bin_lookups_(registry_.counter(
          "sublet_serve_bin_lookups_total",
          "Addresses resolved through binary batch frames")),
      bytes_read_(registry_.counter("sublet_serve_bytes_read_total",
                                    "Bytes received from clients")),
      bytes_written_(registry_.counter("sublet_serve_bytes_written_total",
                                       "Bytes sent to clients")),
      generation_gauge_(registry_.gauge("sublet_serve_generation",
                                        "Current engine generation")),
      active_conns_gauge_(registry_.gauge(
          "sublet_serve_active_connections", "Currently open connections")),
      latency_exact_(registry_.histogram(
          obs::labeled("sublet_serve_latency_ns", "verb", "exact"),
          "Per-request handling latency")),
      latency_lpm_(registry_.histogram(
          obs::labeled("sublet_serve_latency_ns", "verb", "lpm"))),
      latency_mlpm_(registry_.histogram(
          obs::labeled("sublet_serve_latency_ns", "verb", "mlpm"))),
      latency_bin_(registry_.histogram(
          obs::labeled("sublet_serve_latency_ns", "verb", "bin"))),
      latency_at_(registry_.histogram(
          obs::labeled("sublet_serve_latency_ns", "verb", "at"))),
      latency_history_(registry_.histogram(
          obs::labeled("sublet_serve_latency_ns", "verb", "history"))),
      latency_other_(registry_.histogram(
          obs::labeled("sublet_serve_latency_ns", "verb", "other"))),
      closed_idle_(registry_.counter(
          obs::labeled("sublet_serve_conn_closed_total", "reason",
                       "idle_timeout"),
          "Connections closed, by reason")),
      closed_write_(registry_.counter(obs::labeled(
          "sublet_serve_conn_closed_total", "reason", "write_timeout"))),
      closed_overflow_(registry_.counter(obs::labeled(
          "sublet_serve_conn_closed_total", "reason", "outbuf_overflow"))),
      closed_shed_(registry_.counter(
          obs::labeled("sublet_serve_conn_closed_total", "reason", "shed"))),
      closed_drain_(registry_.counter(
          obs::labeled("sublet_serve_conn_closed_total", "reason", "drain"))),
      closed_peer_(registry_.counter(
          obs::labeled("sublet_serve_conn_closed_total", "reason", "peer"))),
      closed_error_(registry_.counter(
          obs::labeled("sublet_serve_conn_closed_total", "reason", "error"))) {}

QueryServer::QueryServer(std::shared_ptr<EpochSource> source,
                         std::shared_ptr<const EngineState> initial,
                         Options options)
    : QueryServer(std::move(initial), options) {
  source_ = std::move(source);
}

QueryServer::~QueryServer() { stop(); }

std::shared_ptr<const EngineState> QueryServer::engine() const {
  std::lock_guard<std::mutex> lock(engine_mu_);
  return engine_;
}

obs::Histogram& QueryServer::verb_histogram(Verb verb) {
  switch (verb) {
    case Verb::kExact: return latency_exact_;
    case Verb::kLpm: return latency_lpm_;
    case Verb::kMlpm: return latency_mlpm_;
    case Verb::kBin: return latency_bin_;
    case Verb::kAt: return latency_at_;
    case Verb::kHistory: return latency_history_;
    case Verb::kOther: break;
  }
  return latency_other_;
}

obs::Counter& QueryServer::closed_counter(CloseReason reason) {
  switch (reason) {
    case CloseReason::kIdleTimeout: return closed_idle_;
    case CloseReason::kWriteTimeout: return closed_write_;
    case CloseReason::kOutbufOverflow: return closed_overflow_;
    case CloseReason::kShed: return closed_shed_;
    case CloseReason::kDrain: return closed_drain_;
    case CloseReason::kPeer: return closed_peer_;
    case CloseReason::kError: break;
  }
  return closed_error_;
}

void QueryServer::set_flight_recording(bool on) {
  flight_enabled_.store(on, std::memory_order_release);
  for (auto& shard : shards_) {
    if (shard->recorder != nullptr) shard->recorder->set_enabled(on);
  }
}

bool QueryServer::flight_recording() const {
  return flight_enabled_.load(std::memory_order_acquire);
}

Expected<std::shared_ptr<const EngineState>> QueryServer::engine_for(
    std::uint32_t epoch) {
  if (epoch == 0) return engine();
  if (source_ == nullptr) {
    return fail("epoch queries need a catalog-mode server");
  }
  return source_->epoch_at(epoch);
}

std::size_t QueryServer::connection_memory_bytes() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->mem_bytes.load(std::memory_order_relaxed);
  }
  return total;
}

Expected<std::uint16_t> QueryServer::start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return fail("socket(): " + std::string(strerror(errno)));
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    std::string message = "bind(): " + std::string(strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return fail(std::move(message));
  }
  if (::listen(listen_fd_, 128) != 0) {
    std::string message = "listen(): " + std::string(strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return fail(std::move(message));
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  start_time_ = steady_clock::now();

  unsigned shards = options_.shards != 0 ? options_.shards : options_.threads;
  if (shards == 0) shards = std::max(1u, std::thread::hardware_concurrency());
  shard_count_ = shards;
  auto teardown = [this] {
    for (auto& shard : shards_) {
      if (shard->epoll_fd >= 0) ::close(shard->epoll_fd);
      if (shard->event_fd >= 0) ::close(shard->event_fd);
    }
    shards_.clear();
    ::close(listen_fd_);
    listen_fd_ = -1;
  };
  for (unsigned i = 0; i < shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->srv = this;
    shard->index = i;
    shard->epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
    shard->event_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (shard->epoll_fd < 0 || shard->event_fd < 0) {
      std::string message =
          "epoll/eventfd setup: " + std::string(strerror(errno));
      shards_.push_back(std::move(shard));
      teardown();
      return fail(std::move(message));
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = shard->event_fd;
    if (::epoll_ctl(shard->epoll_fd, EPOLL_CTL_ADD, shard->event_fd, &ev) !=
        0) {
      std::string message = "epoll_ctl(): " + std::string(strerror(errno));
      shards_.push_back(std::move(shard));
      teardown();
      return fail(std::move(message));
    }
    shard->conn_gauge = &registry_.gauge(
        obs::labeled("sublet_serve_shard_connections", "shard",
                     std::to_string(i)),
        "Open connections owned by this event-loop shard");
    if (options_.flight_ring > 0) {
      obs::FlightRecorder::Options recorder_options;
      recorder_options.ring_capacity = options_.flight_ring;
      recorder_options.slow_capacity = options_.slow_log;
      recorder_options.slow_threshold_ns = options_.slow_threshold_us * 1000;
      shard->recorder =
          std::make_unique<obs::FlightRecorder>(recorder_options);
    }
    shards_.push_back(std::move(shard));
  }
  flight_enabled_.store(options_.flight_ring > 0, std::memory_order_release);
  for (auto& shard : shards_) {
    Shard* raw = shard.get();
    shard->thread = std::thread([raw] { raw->loop(); });
  }
  accept_thread_ = std::thread([this] { accept_loop(); });
  return port_;
}

void QueryServer::wake_all_shards() {
  for (auto& shard : shards_) {
    if (shard->event_fd < 0) continue;
    std::uint64_t one = 1;
    [[maybe_unused]] ssize_t rc =
        ::write(shard->event_fd, &one, sizeof(one));
  }
}

void QueryServer::accept_loop() {
  int backoff_ms = 0;
  std::size_t next_shard = 0;
  for (;;) {
    if (stop_.load(std::memory_order_acquire)) return;
    int ready = wait_fd(listen_fd_, POLLIN, kPollSliceMs);
    if (ready == 0) continue;  // slice expired; re-check stop_
    if (ready < 0) return;     // listener gone
    int injected = 0;
    int fd;
    if (fault::inject("serve.accept", &injected)) {
      fd = -1;
      errno = injected;
    } else {
      fd = ::accept(listen_fd_, nullptr, nullptr);
    }
    if (fd < 0) {
      if (errno == EINTR) continue;
      if (stop_.load(std::memory_order_acquire)) return;
      if (transient_accept_error(errno)) {
        accept_retries_.add(1);
        backoff_ms = backoff_ms == 0 ? 1 : std::min(backoff_ms * 2, 200);
        SUBLET_LOG(kWarn) << "accept(): " << strerror(errno)
                          << "; retrying in " << backoff_ms << "ms";
        std::unique_lock<std::mutex> lock(stop_mu_);
        stop_cv_.wait_for(lock, std::chrono::milliseconds(backoff_ms), [this] {
          return stop_.load(std::memory_order_acquire);
        });
        continue;
      }
      SUBLET_LOG(kError) << "accept(): " << strerror(errno)
                         << "; accept loop exiting";
      return;
    }
    backoff_ms = 0;
    if (stop_.load(std::memory_order_acquire)) {
      ::close(fd);
      return;
    }
    const std::size_t current =
        live_conns_.fetch_add(1, std::memory_order_acq_rel);
    if (options_.max_conns > 0 && current >= options_.max_conns) {
      // Shed instead of queueing unboundedly: one line, then close. The
      // fd stays blocking here — it never reaches a shard.
      live_conns_.fetch_sub(1, std::memory_order_acq_rel);
      shed_.add(1);  // legacy name; the labeled family is the new home
      closed_shed_.add(1);
      send_with_deadline(fd, "{\"error\":\"overloaded\"}\n");
      ::close(fd);
      continue;
    }
    set_nonblocking(fd);
    Shard& shard = *shards_[next_shard++ % shard_count_];
    {
      std::lock_guard<std::mutex> lock(shard.inbox_mu);
      shard.inbox.push_back(fd);
    }
    std::uint64_t one = 1;
    [[maybe_unused]] ssize_t rc = ::write(shard.event_fd, &one, sizeof(one));
  }
}

bool QueryServer::send_with_deadline(int fd, std::string_view data) {
  const auto deadline =
      steady_clock::now() + std::chrono::milliseconds(options_.io_timeout_ms);
  while (!data.empty()) {
    if (options_.io_timeout_ms > 0) {
      auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
                           deadline - steady_clock::now())
                           .count();
      if (remaining <= 0) {
        timeouts_.add(1);
        return false;
      }
      int ready = wait_fd(fd, POLLOUT, static_cast<int>(remaining));
      if (ready == 0) {
        timeouts_.add(1);
        return false;
      }
      if (ready < 0) return false;
    }
    int injected = 0;
    ssize_t n;
    if (fault::inject("serve.write", &injected)) {
      n = -1;
      errno = injected;
    } else {
      n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    }
    if (n <= 0) {
      if (n < 0 && (errno == EINTR || errno == EAGAIN)) continue;
      return false;
    }
    data.remove_prefix(static_cast<std::size_t>(n));
  }
  return true;
}

Expected<std::uint64_t> QueryServer::reload(const std::string& path) {
  // One RELOAD at a time; the load + validation runs here, off the other
  // shards' hot path — they keep answering from the current engine.
  std::lock_guard<std::mutex> reload_lock(reload_mu_);
  const std::uint64_t next_generation = engine()->generation() + 1;
  auto next = EngineState::load(path, options_.reload_mode, next_generation);
  if (!next) {
    reload_failures_.add(1);
    SUBLET_LOG(kWarn) << "reload of " << path
                      << " rejected: " << next.error().to_string()
                      << " (keeping generation "
                      << next_generation - 1 << ")";
    return next.error();
  }
  {
    std::lock_guard<std::mutex> lock(engine_mu_);
    engine_ = std::move(*next);
  }
  reloads_.add(1);
  // Shards hold no engine references between requests (one shared_ptr
  // acquire per request), so the wakeup just refreshes their gauges.
  wake_all_shards();
  SUBLET_LOG(kInfo) << "reloaded generation " << next_generation << " from "
                    << path;
  return next_generation;
}

Expected<std::uint64_t> QueryServer::refresh_catalog() {
  // Catalog-mode RELOAD: re-scan the index for appended epochs and swap
  // the latest in. Same failure contract as a snapshot RELOAD — a broken
  // index or chain keeps every currently-served epoch untouched.
  std::lock_guard<std::mutex> reload_lock(reload_mu_);
  auto next = source_->refresh();
  if (!next) {
    reload_failures_.add(1);
    SUBLET_LOG(kWarn) << "catalog refresh rejected: "
                      << next.error().to_string()
                      << " (keeping current epochs)";
    return next.error();
  }
  const std::uint64_t generation = (*next)->generation();
  {
    std::lock_guard<std::mutex> lock(engine_mu_);
    engine_ = std::move(*next);
  }
  reloads_.add(1);
  wake_all_shards();
  SUBLET_LOG(kInfo) << "catalog refreshed; serving epoch generation "
                    << generation;
  return generation;
}

std::string QueryServer::history_json(const Prefix& query) {
  // Replay the classification of `query` across every epoch, oldest
  // first, and coalesce runs of identical answers into segments. One
  // longest-match per epoch; epochs whose chain fails to materialize are
  // listed under "unavailable" rather than failing the whole replay.
  std::vector<std::uint32_t> epochs = source_->epochs();
  // Bound the replay cost: one request walks at most max_history_epochs
  // recent epochs (each one is a materialize + longest_match), so a
  // thousand-epoch catalog cannot turn a single HISTORY line into an
  // unbounded amount of work. Dropped older epochs are reported in
  // "truncated_epochs".
  std::size_t truncated = 0;
  if (const std::size_t cap = options_.max_history_epochs;
      cap > 0 && epochs.size() > cap) {
    truncated = epochs.size() - cap;
    epochs.erase(epochs.begin(),
                 epochs.begin() + static_cast<std::ptrdiff_t>(truncated));
  }
  struct Answer {
    bool found = false;
    std::string prefix;
    std::uint8_t group = 0;
  };
  struct Segment {
    std::uint32_t from = 0;
    std::uint32_t to = 0;
    Answer answer;
  };
  std::vector<Segment> segments;
  std::vector<std::uint32_t> unavailable;
  for (std::uint32_t epoch : epochs) {
    auto resolved = source_->epoch_at(epoch);
    if (!resolved) {
      unavailable.push_back(epoch);
      continue;
    }
    const std::shared_ptr<const EngineState> state = std::move(*resolved);
    Answer answer;
    if (auto hit = state->engine().longest_match(query)) {
      const snapshot::RecordRow& row = state->snapshot().record(hit->second);
      answer.found = true;
      answer.prefix = state->snapshot().prefix_of(row).to_string();
      answer.group = row.group;
    }
    if (!segments.empty() && segments.back().answer.found == answer.found &&
        segments.back().answer.prefix == answer.prefix &&
        segments.back().answer.group == answer.group) {
      segments.back().to = epoch;
    } else {
      segments.push_back(Segment{epoch, epoch, std::move(answer)});
    }
  }
  JsonWriter json;
  json.begin_object();
  json.key("query").value(query.to_string());
  json.key("epochs").value(static_cast<std::uint64_t>(epochs.size()));
  if (!epochs.empty()) {
    json.key("first_epoch").value(static_cast<std::uint64_t>(epochs.front()));
    json.key("last_epoch").value(static_cast<std::uint64_t>(epochs.back()));
  }
  json.begin_array("segments");
  for (const Segment& segment : segments) {
    json.begin_object();
    json.key("from_epoch").value(static_cast<std::uint64_t>(segment.from));
    json.key("to_epoch").value(static_cast<std::uint64_t>(segment.to));
    json.key("found").value(segment.answer.found);
    if (segment.answer.found) {
      json.key("prefix").value(segment.answer.prefix);
      json.key("group").value(leasing::group_name(
          static_cast<leasing::InferenceGroup>(segment.answer.group)));
      json.key("leased").value(leasing::is_leased(
          static_cast<leasing::InferenceGroup>(segment.answer.group)));
    }
    json.end_object();
  }
  json.end_array();
  json.key("transitions")
      .value(static_cast<std::uint64_t>(
          segments.empty() ? 0 : segments.size() - 1));
  if (truncated > 0) {
    json.key("truncated_epochs").value(static_cast<std::uint64_t>(truncated));
  }
  if (!unavailable.empty()) {
    json.begin_array("unavailable");
    for (std::uint32_t epoch : unavailable) {
      json.value(static_cast<std::uint64_t>(epoch));
    }
    json.end_array();
  }
  json.end_object();
  return json.take();
}

std::string QueryServer::health_json() const {
  std::shared_ptr<const EngineState> state = engine();
  const double uptime =
      std::chrono::duration_cast<std::chrono::duration<double>>(
          steady_clock::now() - start_time_)
          .count();
  JsonWriter json;
  json.begin_object();
  json.key("ok").value(true);
  json.key("generation").value(state->generation());
  json.key("snapshot").value(state->path());
  json.key("records").value(
      static_cast<std::uint64_t>(state->snapshot().record_count()));
  json.key("uptime_s").value(uptime);
  json.key("draining").value(stop_.load(std::memory_order_acquire));
  json.key("active_conns").value(
      static_cast<std::uint64_t>(active_connections()));
  json.key("reloads").value(reloads_.value());
  json.end_object();
  return json.take();
}

std::string QueryServer::inspect_json() {
  // Ask every shard thread for a fresh view of its connection table. A
  // shard fills its own view synchronously when INSPECT arrived on its
  // event loop (t_loop_shard) — otherwise two concurrent INSPECTs on
  // different shards would each wait for the other's thread, which is
  // busy waiting for them. Remote shards answer at their next event-loop
  // pass; one that misses the shared deadline yields its last published
  // view marked "stale" instead of wedging the INSPECT.
  struct Pending {
    Shard* shard = nullptr;
    std::uint64_t seq0 = 0;
    bool own = false;
  };
  std::vector<Pending> pending;
  pending.reserve(shards_.size());
  for (auto& shard : shards_) {
    Pending p;
    p.shard = shard.get();
    p.own = Shard::t_current == shard.get();
    if (p.own) {
      shard->publish_view();
    } else {
      {
        std::lock_guard<std::mutex> lock(shard->view_mu);
        p.seq0 = shard->view_seq;
      }
      shard->view_wanted.store(true, std::memory_order_release);
      if (shard->event_fd >= 0) {
        std::uint64_t one = 1;
        [[maybe_unused]] ssize_t rc =
            ::write(shard->event_fd, &one, sizeof(one));
      }
    }
    pending.push_back(p);
  }
  const auto view_deadline =
      steady_clock::now() + std::chrono::milliseconds(250);

  JsonWriter json;
  json.begin_object();
  json.key("ok").value(true);
  json.key("generation").value(engine()->generation());
  json.key("shard_count").value(static_cast<std::uint64_t>(shard_count_));
  json.key("active_conns").value(
      static_cast<std::uint64_t>(active_connections()));
  json.key("recorder").begin_object();
  json.key("enabled").value(flight_recording());
  json.key("ring_capacity").value(
      static_cast<std::uint64_t>(options_.flight_ring));
  json.key("slow_log_capacity").value(
      static_cast<std::uint64_t>(options_.slow_log));
  json.key("slow_threshold_us").value(options_.slow_threshold_us);
  json.end_object();
  json.begin_array("shards");
  for (Pending& p : pending) {
    Shard& shard = *p.shard;
    Shard::ShardView snapshot;
    bool stale = false;
    {
      std::unique_lock<std::mutex> lock(shard.view_mu);
      if (!p.own) {
        stale = !shard.view_cv.wait_until(
            lock, view_deadline, [&] { return shard.view_seq > p.seq0; });
      }
      snapshot = shard.view;
    }
    json.begin_object();
    json.key("shard").value(static_cast<std::uint64_t>(shard.index));
    json.key("stale").value(stale);
    json.begin_array("connections");
    for (const Shard::ConnView& cv : snapshot.conns) {
      json.begin_object();
      json.key("fd").value(static_cast<std::uint64_t>(
          cv.fd < 0 ? 0 : static_cast<std::uint32_t>(cv.fd)));
      char peer[32];
      std::snprintf(peer, sizeof(peer), "%u.%u.%u.%u:%u",
                    (cv.peer_addr >> 24) & 0xFF, (cv.peer_addr >> 16) & 0xFF,
                    (cv.peer_addr >> 8) & 0xFF, cv.peer_addr & 0xFF,
                    cv.peer_port);
      json.key("peer").value(peer);
      json.key("age_ms").value(cv.age_ms);
      json.key("requests").value(cv.requests);
      json.key("inbuf_bytes").value(cv.inbuf_bytes);
      json.key("outbuf_bytes").value(cv.outbuf_bytes);
      json.key("parked").value(cv.parked);
      json.key("closing").value(cv.closing);
      json.key("binary").value(cv.binary);
      json.key("idle_deadline_ms")
          .raw_value(std::to_string(cv.idle_deadline_ms));
      json.key("write_deadline_ms")
          .raw_value(std::to_string(cv.write_deadline_ms));
      json.end_object();
    }
    json.end_array();
    json.key("timers").begin_object();
    json.key("idle").value(static_cast<std::uint64_t>(snapshot.idle_timers));
    json.key("write").value(static_cast<std::uint64_t>(snapshot.write_timers));
    json.end_object();
    json.key("work_queue").value(
        static_cast<std::uint64_t>(snapshot.work_queue));
    // The recorder structures are safe to read from this thread: the ring
    // is a seqlock, the slow log takes its own mutex.
    if (shard.recorder != nullptr) {
      json.key("recorded").value(shard.recorder->recorded());
      json.begin_array("ring_tail");
      for (const obs::FlightRecord& rec : shard.recorder->tail(32)) {
        flight_record_json(json, rec);
      }
      json.end_array();
      json.begin_array("slow_requests");
      for (const obs::SlowFlight& slow : shard.recorder->slow_log()) {
        flight_record_json(json, slow.record, &slow.detail);
      }
      json.end_array();
      json.begin_array("exemplars");
      for (const obs::FlightExemplar& ex : shard.recorder->exemplars()) {
        json.begin_object();
        json.key("le_ns").value(ex.le_ns);
        json.key("seq").value(ex.seq);
        json.key("total_us").value(static_cast<double>(ex.total_ns) / 1e3);
        json.end_object();
      }
      json.end_array();
    }
    json.end_object();
  }
  json.end_array();
  json.end_object();
  return json.take();
}

std::string QueryServer::handle_request(std::string_view line) {
  return handle_request(line, nullptr);
}

std::string QueryServer::handle_request(std::string_view line,
                                        RequestFlight* flight) {
  const auto start = std::chrono::steady_clock::now();
  requests_.add(1);
  Verb verb_class = Verb::kOther;
  std::string response;
  std::vector<std::string_view> parts = split_ws(line);
  const std::string_view verb = parts.empty() ? std::string_view() : parts[0];
  // Tokenization is done; everything from here to the response is the
  // engine stage of the flight-recorder breakdown.
  if (flight != nullptr) {
    flight->start = start;
    flight->parse_done = std::chrono::steady_clock::now();
  }
  // Test hook: `SUBLET_FAULTS=serve.engine_delay=<ms>` stretches the
  // engine stage so the slow-request log and INSPECT output can be
  // exercised deterministically (the numeric "errno" carries the delay).
  int delay_ms = 0;
  if (fault::inject("serve.engine_delay", &delay_ms) && delay_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
  }
  auto parse_query = [](std::string_view text) -> std::optional<Prefix> {
    if (auto prefix = Prefix::parse(text, /*canonicalize=*/true)) {
      return prefix;
    }
    if (auto addr = Ipv4Addr::parse(text)) return Prefix::make(*addr, 32);
    return std::nullopt;
  };
  auto parse_epoch = [](std::string_view text) -> std::optional<std::uint32_t> {
    if (text.empty() || text.size() > 10) return std::nullopt;
    std::uint64_t v = 0;
    for (char c : text) {
      if (c < '0' || c > '9') return std::nullopt;
      v = v * 10 + static_cast<unsigned>(c - '0');
    }
    if (v == 0 || v > 0xFFFFFFFFull) return std::nullopt;
    return static_cast<std::uint32_t>(v);
  };
  if (iequals(verb, "STATS") && parts.size() == 1) {
    response = stats().to_json();
    // Splice in the engine-level aggregate + memory breakdown as a
    // trailing "snapshot" object. The counter fields stay first and
    // unchanged so existing scrapers' substring checks keep passing.
    const std::string snap_json = engine()->engine().snapshot_stats_json();
    response.insert(response.size() - 1, ",\"snapshot\":" + snap_json);
    if (catalog_mode()) {
      // Catalog mode only: the single-snapshot response shape is pinned
      // byte-identical by the differential suite.
      const std::vector<std::uint32_t> epochs = source_->epochs();
      JsonWriter ej;
      ej.begin_object();
      ej.key("count").value(static_cast<std::uint64_t>(epochs.size()));
      if (!epochs.empty()) {
        ej.key("first").value(static_cast<std::uint64_t>(epochs.front()));
        ej.key("last").value(static_cast<std::uint64_t>(epochs.back()));
      }
      ej.end_object();
      response.insert(response.size() - 1, ",\"epochs\":" + ej.take());
    }
  } else if (iequals(verb, "METRICS") && parts.size() == 1) {
    // The one multi-line response in the protocol; metrics_text() ends
    // with a "# EOF" line so clients know where the body stops.
    response = metrics_text();
  } else if (iequals(verb, "HEALTH") && parts.size() == 1) {
    response = health_json();
  } else if (iequals(verb, "INSPECT") && parts.size() == 1) {
    response = inspect_json();
  } else if (iequals(verb, "RELOAD") &&
             (catalog_mode() ? parts.size() == 1 : parts.size() == 2)) {
    // Single-snapshot mode reloads from an explicit path; catalog mode
    // re-scans the catalog directory for appended epochs (bare RELOAD).
    auto swapped = catalog_mode() ? refresh_catalog()
                                  : reload(std::string(parts[1]));
    if (swapped) {
      JsonWriter json;
      json.begin_object();
      json.key("ok").value(true);
      json.key("generation").value(*swapped);
      json.key("records").value(
          static_cast<std::uint64_t>(engine()->snapshot().record_count()));
      if (catalog_mode()) {
        json.key("epochs").value(
            static_cast<std::uint64_t>(source_->epochs().size()));
      }
      json.end_object();
      response = json.take();
    } else {
      response = error_json("reload failed: " + swapped.error().to_string());
    }
  } else if (iequals(verb, "SHUTDOWN") && parts.size() == 1) {
    JsonWriter json;
    json.begin_object();
    json.key("ok").value(true);
    json.key("stopping").value(true);
    json.end_object();
    response = json.take();
    stop_.store(true, std::memory_order_release);
    stop_cv_.notify_all();
    wake_all_shards();
  } else if (iequals(verb, "MLPM") && parts.size() >= 2) {
    verb_class = Verb::kMlpm;
    constexpr std::size_t kMaxBatch = 1024;
    if (parts.size() - 1 > kMaxBatch) {
      malformed_.add(1);
      response = error_json("batch too large (max 1024 addresses)");
    } else {
      // Scratch buffers are thread_local so a connection streaming MLPM
      // lines allocates nothing once they reach steady-state capacity;
      // the batch itself goes through the stride table's prefetched
      // two-pass lookup instead of one dependent-miss walk per address.
      static thread_local std::vector<std::uint32_t> addrs;
      static thread_local std::vector<std::uint32_t> records;
      addrs.clear();
      std::string_view bad;
      for (std::size_t i = 1; i < parts.size(); ++i) {
        auto addr = Ipv4Addr::parse(parts[i]);
        if (!addr) {
          bad = parts[i];
          break;
        }
        addrs.push_back(addr->value());
      }
      if (!bad.empty()) {
        malformed_.add(1);
        response = error_json("bad address '" + std::string(bad) + "'");
      } else {
        std::shared_ptr<const EngineState> state = engine();
        records.resize(addrs.size());
        state->engine().lookup_batch(addrs, records);
        JsonWriter json;
        json.begin_object();
        json.key("count").value(static_cast<std::uint64_t>(addrs.size()));
        json.begin_array("results");
        for (std::size_t i = 0; i < addrs.size(); ++i) {
          json.begin_object();
          json.key("query").value(Ipv4Addr(addrs[i]).to_string());
          if (records[i] == QueryEngine::kNoRecord) {
            misses_.add(1);
            json.key("found").value(false);
          } else {
            hits_.add(1);
            const snapshot::RecordRow& row =
                state->snapshot().record(records[i]);
            json.key("found").value(true);
            json.key("prefix").value(
                state->snapshot().prefix_of(row).to_string());
            json.key("group").value(leasing::group_name(
                static_cast<leasing::InferenceGroup>(row.group)));
            json.key("leased").value(leasing::is_leased(
                static_cast<leasing::InferenceGroup>(row.group)));
          }
          json.end_object();
        }
        json.end_array();
        json.end_object();
        response = json.take();
      }
    }
  } else if ((iequals(verb, "EXACT") || iequals(verb, "LPM")) &&
             (parts.size() == 2 ||
              (parts.size() == 4 && iequals(parts[2], "AT")))) {
    // `EXACT <q>` / `LPM <q>` answer from the current engine;
    // `... AT <epoch-ts>` answers from the newest catalog epoch at or
    // before that timestamp (docs/TIMETRAVEL.md).
    const bool at_query = parts.size() == 4;
    verb_class = at_query ? Verb::kAt
                          : (iequals(verb, "EXACT") ? Verb::kExact
                                                    : Verb::kLpm);
    std::optional<Prefix> query = parse_query(parts[1]);
    std::optional<std::uint32_t> at;
    if (at_query) at = parse_epoch(parts[3]);
    if (!query) {
      malformed_.add(1);
      response = error_json("bad prefix '" + std::string(parts[1]) + "'");
    } else if (at_query && !at) {
      malformed_.add(1);
      response =
          error_json("bad epoch timestamp '" + std::string(parts[3]) + "'");
    } else {
      // One shared_ptr acquire per request: a concurrent RELOAD swap can
      // retire the old state only after this request drops its reference.
      if (flight != nullptr && at_query) flight->epoch = *at;
      auto resolved = engine_for(at_query ? *at : 0);
      if (!resolved) {
        malformed_.add(1);
        response = error_json("AT " + std::to_string(*at) + ": " +
                              resolved.error().to_string());
      } else {
        std::shared_ptr<const EngineState> state = std::move(*resolved);
        std::optional<std::uint32_t> idx;
        if (iequals(verb, "EXACT")) {
          idx = state->engine().exact(*query);
        } else if (auto hit = state->engine().longest_match(*query)) {
          idx = hit->second;
        }
        if (idx) {
          hits_.add(1);
          response = state->engine().record_json(*idx);
        } else {
          misses_.add(1);
          JsonWriter json;
          json.begin_object();
          json.key("found").value(false);
          json.end_object();
          response = json.take();
        }
        if (at_query) {
          // Tell the client which epoch actually answered (as-of
          // resolution may land before the requested timestamp).
          response.insert(
              response.size() - 1,
              ",\"epoch\":" + std::to_string(state->epoch()));
        }
      }
    }
  } else if (iequals(verb, "HISTORY") && parts.size() == 2) {
    verb_class = Verb::kHistory;
    if (!catalog_mode()) {
      malformed_.add(1);
      response =
          error_json("HISTORY needs a catalog-mode server (serve --catalog)");
    } else {
      std::optional<Prefix> query = parse_query(parts[1]);
      if (!query) {
        malformed_.add(1);
        response = error_json("bad prefix '" + std::string(parts[1]) + "'");
      } else {
        response = history_json(*query);
      }
    }
  } else {
    malformed_.add(1);
    response = error_json(
        "unknown request '" + std::string(verb) +
        "' (want EXACT|LPM|MLPM|STATS|HEALTH|METRICS|INSPECT|RELOAD|"
        "SHUTDOWN|HISTORY, EXACT/LPM accept a trailing AT <epoch-ts>)");
  }
  const auto done = std::chrono::steady_clock::now();
  verb_histogram(verb_class)
      .record(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(done - start)
              .count()));
  if (flight != nullptr) {
    flight->done = done;
    flight->verb = static_cast<std::uint8_t>(verb_class);
    flight->error = response.rfind("{\"error\"", 0) == 0;
  }
  return response;
}

StatsSnapshot QueryServer::stats() const {
  StatsSnapshot out;
  out.requests = requests_.value();
  out.hits = hits_.value();
  out.misses = misses_.value();
  out.malformed = malformed_.value();
  out.shed = shed_.value();
  out.timeouts = timeouts_.value();
  out.accept_retries = accept_retries_.value();
  out.reloads = reloads_.value();
  out.reload_failures = reload_failures_.value();
  out.generation = engine()->generation();
  // Merge every per-verb latency series bucket-by-bucket, then apply the
  // registry histogram's exact quantile math: every request is recorded in
  // exactly one verb series, so the merge equals the old single histogram
  // and the p50/p99 doubles stay bit-identical. quantile units are
  // nanoseconds; dividing reproduces the legacy microsecond doubles.
  obs::HistogramSnapshot merged;
  const obs::Histogram* series[] = {&latency_exact_,   &latency_lpm_,
                                    &latency_mlpm_,    &latency_bin_,
                                    &latency_at_,      &latency_history_,
                                    &latency_other_};
  for (const obs::Histogram* histogram : series) {
    const obs::HistogramSnapshot snap = histogram->snapshot();
    for (std::size_t b = 0; b < snap.buckets.size(); ++b) {
      merged.buckets[b] += snap.buckets[b];
    }
    merged.count += snap.count;
    merged.sum += snap.sum;
  }
  out.p50_us = snapshot_quantile(merged, 0.50) / 1000.0;
  out.p99_us = snapshot_quantile(merged, 0.99) / 1000.0;
  return out;
}

std::string QueryServer::metrics_text() const {
  // Gauges are sampled, not event-driven: refresh them at scrape time.
  generation_gauge_.set(static_cast<std::int64_t>(engine()->generation()));
  active_conns_gauge_.set(
      static_cast<std::int64_t>(active_connections()));
  std::string out = obs::MetricsRegistry::global().prometheus_text();
  out += registry_.prometheus_text();
  out += "# EOF";
  return out;
}

void QueryServer::wait(const std::function<bool()>& predicate) {
  std::unique_lock<std::mutex> lock(stop_mu_);
  while (!stop_requested() && !(predicate && predicate())) {
    stop_cv_.wait_for(lock, std::chrono::milliseconds(kPollSliceMs));
  }
}

void QueryServer::stop() {
  stop_.store(true, std::memory_order_release);
  stop_cv_.notify_all();
  if (stopped_.exchange(true)) return;  // idempotent
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  // Graceful drain: shards flush buffered responses and close; the CV
  // fires the instant the live count reaches zero, so shutdown latency is
  // the actual drain time, not a sleep quantum.
  drain_.store(true, std::memory_order_release);
  wake_all_shards();
  {
    std::unique_lock<std::mutex> lock(drain_mu_);
    drain_cv_.wait_for(
        lock, std::chrono::milliseconds(std::max(0, options_.drain_timeout_ms)),
        [this] { return live_conns_.load(std::memory_order_acquire) == 0; });
  }
  force_.store(true, std::memory_order_release);
  wake_all_shards();
  for (auto& shard : shards_) {
    if (shard->thread.joinable()) shard->thread.join();
  }
  for (auto& shard : shards_) {
    // Accepted fds raced into an inbox after its shard exited are closed
    // here so nothing leaks (the accept thread is already joined).
    std::lock_guard<std::mutex> lock(shard->inbox_mu);
    for (int fd : shard->inbox) {
      ::close(fd);
      closed_drain_.add(1);
      live_conns_.fetch_sub(1, std::memory_order_acq_rel);
    }
    shard->inbox.clear();
    if (shard->epoll_fd >= 0) {
      ::close(shard->epoll_fd);
      shard->epoll_fd = -1;
    }
    if (shard->event_fd >= 0) {
      ::close(shard->event_fd);
      shard->event_fd = -1;
    }
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

}  // namespace sublet::serve
