#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "serve/json.h"
#include "util/log.h"
#include "util/strings.h"

namespace sublet::serve {

namespace {

/// One request line must fit in this much buffered input; a client that
/// streams more without a newline is cut off (defensive bound, not a
/// protocol limit any legitimate request approaches).
constexpr std::size_t kMaxBufferedInput = 1 << 20;

bool write_all(int fd, std::string_view data) {
  while (!data.empty()) {
    ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    data.remove_prefix(static_cast<std::size_t>(n));
  }
  return true;
}

std::string error_json(std::string_view message) {
  JsonWriter json;
  json.begin_object();
  json.key("error").value(message);
  json.end_object();
  return json.take();
}

}  // namespace

std::string StatsSnapshot::to_json() const {
  JsonWriter json;
  json.begin_object();
  json.key("requests").value(requests);
  json.key("hits").value(hits);
  json.key("misses").value(misses);
  json.key("malformed").value(malformed);
  json.key("p50_us").value(p50_us);
  json.key("p99_us").value(p99_us);
  json.end_object();
  return json.take();
}

double LatencyHistogram::quantile_us(double q) const {
  std::uint64_t total = 0;
  for (const auto& bucket : buckets_) {
    total += bucket.load(std::memory_order_relaxed);
  }
  if (total == 0) return 0.0;
  auto target = static_cast<std::uint64_t>(q * static_cast<double>(total));
  if (target >= total) target = total - 1;
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    seen += buckets_[b].load(std::memory_order_relaxed);
    if (seen > target) {
      if (b == 0) return 0.0;
      // Bucket b holds [2^(b-1), 2^b) ns; report the midpoint in us.
      return 1.5 * static_cast<double>(std::uint64_t{1} << (b - 1)) / 1000.0;
    }
  }
  return 0.0;
}

QueryServer::QueryServer(const QueryEngine& engine, Options options)
    : engine_(engine), options_(options) {}

QueryServer::~QueryServer() { stop(); }

Expected<std::uint16_t> QueryServer::start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return fail("socket(): " + std::string(strerror(errno)));
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    std::string message = "bind(): " + std::string(strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return fail(std::move(message));
  }
  if (::listen(listen_fd_, 128) != 0) {
    std::string message = "listen(): " + std::string(strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return fail(std::move(message));
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  pool_ = std::make_unique<par::ThreadPool>(options_.threads);
  accept_thread_ = std::thread([this] { accept_loop(); });
  return port_;
}

void QueryServer::accept_loop() {
  for (;;) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener shut down (stop()) or fatal error
    }
    if (stop_.load(std::memory_order_acquire)) {
      ::close(fd);
      return;
    }
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      conns_.insert(fd);
    }
    pool_->submit([this, fd] { handle_connection(fd); });
  }
}

void QueryServer::handle_connection(int fd) {
  std::string buffer;
  char chunk[4096];
  for (;;) {
    std::size_t nl = buffer.find('\n');
    if (nl != std::string::npos) {
      std::string line = buffer.substr(0, nl);
      buffer.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      std::string response = handle_request(line);
      response += '\n';
      if (!write_all(fd, response)) break;
      if (stop_.load(std::memory_order_acquire)) break;
      continue;
    }
    if (buffer.size() > kMaxBufferedInput) break;
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // client closed, or stop() shut the socket down
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns_.erase(fd);
  }
  ::close(fd);
}

std::string QueryServer::handle_request(std::string_view line) {
  const auto start = std::chrono::steady_clock::now();
  requests_.fetch_add(1, std::memory_order_relaxed);
  std::string response;
  std::vector<std::string_view> parts = split_ws(line);
  const std::string_view verb = parts.empty() ? std::string_view() : parts[0];
  auto parse_query = [](std::string_view text) -> std::optional<Prefix> {
    if (auto prefix = Prefix::parse(text, /*canonicalize=*/true)) {
      return prefix;
    }
    if (auto addr = Ipv4Addr::parse(text)) return Prefix::make(*addr, 32);
    return std::nullopt;
  };
  if (iequals(verb, "STATS") && parts.size() == 1) {
    response = stats().to_json();
  } else if (iequals(verb, "SHUTDOWN") && parts.size() == 1) {
    JsonWriter json;
    json.begin_object();
    json.key("ok").value(true);
    json.key("stopping").value(true);
    json.end_object();
    response = json.take();
    stop_.store(true, std::memory_order_release);
    stop_cv_.notify_all();
  } else if ((iequals(verb, "EXACT") || iequals(verb, "LPM")) &&
             parts.size() == 2) {
    std::optional<Prefix> query = parse_query(parts[1]);
    if (!query) {
      malformed_.fetch_add(1, std::memory_order_relaxed);
      response = error_json("bad prefix '" + std::string(parts[1]) + "'");
    } else {
      std::optional<std::uint32_t> idx;
      if (iequals(verb, "EXACT")) {
        idx = engine_.exact(*query);
      } else if (auto hit = engine_.longest_match(*query)) {
        idx = hit->second;
      }
      if (idx) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        response = engine_.record_json(*idx);
      } else {
        misses_.fetch_add(1, std::memory_order_relaxed);
        JsonWriter json;
        json.begin_object();
        json.key("found").value(false);
        json.end_object();
        response = json.take();
      }
    }
  } else {
    malformed_.fetch_add(1, std::memory_order_relaxed);
    response = error_json("unknown request '" + std::string(verb) +
                          "' (want EXACT|LPM|STATS|SHUTDOWN)");
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  latency_.record(static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count()));
  return response;
}

StatsSnapshot QueryServer::stats() const {
  StatsSnapshot out;
  out.requests = requests_.load(std::memory_order_relaxed);
  out.hits = hits_.load(std::memory_order_relaxed);
  out.misses = misses_.load(std::memory_order_relaxed);
  out.malformed = malformed_.load(std::memory_order_relaxed);
  out.p50_us = latency_.quantile_us(0.50);
  out.p99_us = latency_.quantile_us(0.99);
  return out;
}

void QueryServer::wait(const std::function<bool()>& predicate) {
  std::unique_lock<std::mutex> lock(stop_mu_);
  while (!stop_requested() && !(predicate && predicate())) {
    stop_cv_.wait_for(lock, std::chrono::milliseconds(100));
  }
}

void QueryServer::stop() {
  stop_.store(true, std::memory_order_release);
  stop_cv_.notify_all();
  {
    // Unblock every in-flight recv() so handlers drain promptly.
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (int fd : conns_) ::shutdown(fd, SHUT_RDWR);
  }
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    // Connections accepted while stop() was running registered after the
    // first pass; the accept thread is joined, so this pass is complete.
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (int fd : conns_) ::shutdown(fd, SHUT_RDWR);
  }
  pool_.reset();  // drains queued handlers, then joins the workers
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

}  // namespace sublet::serve
