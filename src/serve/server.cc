#include "serve/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <optional>
#include <unordered_map>
#include <vector>

#include "serve/json.h"
#include "serve/wire.h"
#include "util/faultinject.h"
#include "util/log.h"
#include "util/strings.h"

namespace sublet::serve {

namespace {

using std::chrono::steady_clock;

/// One text request line must fit in this much buffered input; a client
/// that streams more without a newline is cut off (defensive bound, not a
/// protocol limit any legitimate request approaches). Binary frames carry
/// their own length and are bounded by wire::kMaxPayload.
constexpr std::size_t kMaxBufferedInput = 1 << 20;

/// The accept loop and wait() poll in slices of at most this long so
/// stop() stays responsive; the shard loops need no slices — their
/// epoll_wait timeout tracks the earliest timer deadline and an eventfd
/// wakes them for everything else.
constexpr int kPollSliceMs = 100;

/// recv() size per readiness event. Reads land in a shard-owned scratch
/// buffer and only the received bytes are appended to the connection, so
/// an idle connection's input buffer stays at zero capacity.
constexpr std::size_t kReadChunk = 64 * 1024;

/// Fairness budget: at most this many requests are answered for one
/// connection per event-loop pass. A peer that pipelines thousands of
/// requests in one burst (a 64KB read chunk holds ~11k "STATS\n" lines)
/// would otherwise pin the shard thread for the whole synchronous drain,
/// stalling every other connection on the shard past its io deadline; at
/// the budget the connection is parked on the shard's work list and the
/// loop resumes it next pass, interleaving everyone else's requests.
constexpr std::size_t kMaxRequestsPerPass = 128;

std::string error_json(std::string_view message) {
  JsonWriter json;
  json.begin_object();
  json.key("error").value(message);
  json.end_object();
  return json.take();
}

/// Wait for `events` on `fd` for up to `timeout_ms`. Returns >0 ready,
/// 0 timeout, <0 error (EINTR already retried).
int wait_fd(int fd, short events, int timeout_ms) {
  pollfd pfd{fd, events, 0};
  for (;;) {
    int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc < 0 && errno == EINTR) continue;
    return rc;
  }
}

bool set_nonblocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  return ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) >= 0;
}

/// accept() errors the loop must survive: resource exhaustion and peers
/// that gave up while queued. Everything else (EBADF/EINVAL once stop()
/// shut the listener down) ends the loop.
bool transient_accept_error(int err) {
  return err == EMFILE || err == ENFILE || err == ECONNABORTED ||
         err == EAGAIN || err == EWOULDBLOCK || err == ENOBUFS ||
         err == ENOMEM || err == EPROTO;
}

/// The registry Histogram's quantile over an externally merged snapshot:
/// same target-rank rule, same bucket-midpoint estimate, so summing the
/// per-verb series reproduces the old single-histogram doubles exactly.
double snapshot_quantile(const obs::HistogramSnapshot& snap, double q) {
  if (snap.count == 0) return 0.0;
  auto target =
      static_cast<std::uint64_t>(q * static_cast<double>(snap.count));
  if (target >= snap.count) target = snap.count - 1;
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < snap.buckets.size(); ++b) {
    seen += snap.buckets[b];
    if (seen > target) {
      if (b == 0) return 0.0;
      return 1.5 * static_cast<double>(std::uint64_t{1} << (b - 1));
    }
  }
  return 0.0;
}

}  // namespace

std::string StatsSnapshot::to_json() const {
  JsonWriter json;
  json.begin_object();
  json.key("requests").value(requests);
  json.key("hits").value(hits);
  json.key("misses").value(misses);
  json.key("malformed").value(malformed);
  json.key("shed").value(shed);
  json.key("timeouts").value(timeouts);
  json.key("accept_retries").value(accept_retries);
  json.key("reloads").value(reloads);
  json.key("reload_failures").value(reload_failures);
  json.key("generation").value(generation);
  json.key("p50_us").value(p50_us);
  json.key("p99_us").value(p99_us);
  json.end_object();
  return json.take();
}

// ---- per-connection state machine ----------------------------------------

struct QueryServer::Conn {
  /// Intrusive links for one timer list. Timeouts are per-server
  /// constants, so arming appends to the list tail and the head is always
  /// the earliest deadline — O(1) arm, cancel, and expiry.
  struct Link {
    Conn* prev = nullptr;
    Conn* next = nullptr;
    bool armed = false;
    steady_clock::time_point deadline{};
  };

  int fd = -1;
  /// Buffered input; [in_off, in.size()) is not yet consumed. Requests are
  /// parsed by advancing in_off, never by erasing the front (compact()
  /// reclaims the consumed prefix once it grows past a threshold).
  std::string in;
  std::size_t in_off = 0;
  /// Two-buffer output: out_front[out_off..] is draining to the socket,
  /// out_back accumulates new responses. The flush sends both with one
  /// vectored write and swaps them when the front empties — no front-erase
  /// memmove, and buffer capacity is reused at steady state.
  std::string out_front;
  std::size_t out_off = 0;
  std::string out_back;
  std::uint32_t armed_events = 0;  ///< epoll interest currently installed
  bool closing = false;  ///< flush remaining output, then close
  bool seen_binary = false;  ///< suppresses the text idle-timeout notice
  bool work_pending = false;  ///< parked on the shard's fairness work list
  std::size_t accounted = 0;  ///< footprint last added to the shard total
  Link idle_link;
  Link write_link;

  std::size_t avail() const { return in.size() - in_off; }
  bool has_output() const {
    return out_off < out_front.size() || !out_back.empty();
  }
  std::size_t footprint() const {
    return sizeof(Conn) + in.capacity() + out_front.capacity() +
           out_back.capacity();
  }
  void compact() {
    if (in_off == in.size()) {
      in.clear();
      in_off = 0;
    } else if (in_off >= 4096) {
      in.erase(0, in_off);
      in_off = 0;
    }
  }
};

// ---- event-loop shard -----------------------------------------------------

struct QueryServer::Shard {
  class TimerList {
   public:
    explicit TimerList(Conn::Link Conn::* link) : link_(link) {}

    void arm(Conn* conn, steady_clock::time_point deadline) {
      cancel(conn);
      Conn::Link& link = conn->*link_;
      link.deadline = deadline;
      link.armed = true;
      link.prev = tail_;
      link.next = nullptr;
      if (tail_ != nullptr) {
        (tail_->*link_).next = conn;
      } else {
        head_ = conn;
      }
      tail_ = conn;
    }

    void cancel(Conn* conn) {
      Conn::Link& link = conn->*link_;
      if (!link.armed) return;
      if (link.prev != nullptr) {
        (link.prev->*link_).next = link.next;
      } else {
        head_ = link.next;
      }
      if (link.next != nullptr) {
        (link.next->*link_).prev = link.prev;
      } else {
        tail_ = link.prev;
      }
      link.prev = link.next = nullptr;
      link.armed = false;
    }

    Conn* front() const { return head_; }

   private:
    Conn::Link Conn::* link_;
    Conn* head_ = nullptr;
    Conn* tail_ = nullptr;
  };

  QueryServer* srv = nullptr;
  unsigned index = 0;
  int epoll_fd = -1;
  int event_fd = -1;
  std::thread thread;

  std::mutex inbox_mu;
  std::vector<int> inbox;  ///< fds handed over by the accept thread

  std::unordered_map<int, std::unique_ptr<Conn>> conns;  ///< owner-thread only
  TimerList idle_timers{&Conn::idle_link};
  TimerList write_timers{&Conn::write_link};

  /// Connections with buffered complete requests beyond the per-pass
  /// budget, resumed before the next epoll_wait (which then uses a zero
  /// timeout). Stored as fds, not pointers: a connection closed while
  /// parked simply misses the conns lookup on resume.
  std::vector<int> work_fds;
  std::vector<int> work_scratch;

  std::atomic<std::size_t> mem_bytes{0};  ///< sum of Conn footprints
  obs::Gauge* conn_gauge = nullptr;

  // Scratch reused across requests: the recv landing zone and the binary
  // batch address/record arrays — zero allocation at steady state.
  std::vector<char> chunk = std::vector<char>(kReadChunk);
  std::vector<std::uint32_t> addrs;
  std::vector<std::uint32_t> records;

  void loop();
  void note_work(Conn& conn);
  void adopt_inbox();
  void apply_drain(bool force);
  int compute_timeout(steady_clock::time_point now) const;
  void expire_timers(steady_clock::time_point now);
  void on_readable(Conn& conn);
  bool process(Conn& conn);
  bool process_frame(Conn& conn);
  bool flush(Conn& conn);
  bool finish_io(Conn& conn);
  void update_interest(Conn& conn);
  void account(Conn& conn);
  void close_conn(Conn& conn);
};

void QueryServer::Shard::account(Conn& conn) {
  const std::size_t current = conn.footprint();
  if (current > conn.accounted) {
    mem_bytes.fetch_add(current - conn.accounted, std::memory_order_relaxed);
  } else if (current < conn.accounted) {
    mem_bytes.fetch_sub(conn.accounted - current, std::memory_order_relaxed);
  }
  conn.accounted = current;
}

void QueryServer::Shard::close_conn(Conn& conn) {
  idle_timers.cancel(&conn);
  write_timers.cancel(&conn);
  ::epoll_ctl(epoll_fd, EPOLL_CTL_DEL, conn.fd, nullptr);
  ::close(conn.fd);
  mem_bytes.fetch_sub(conn.accounted, std::memory_order_relaxed);
  if (conn_gauge != nullptr) conn_gauge->add(-1);
  const int fd = conn.fd;
  conns.erase(fd);  // destroys conn — must be the last touch
  if (srv->live_conns_.fetch_sub(1, std::memory_order_acq_rel) == 1 &&
      (srv->drain_.load(std::memory_order_acquire) ||
       srv->stop_.load(std::memory_order_acquire))) {
    // The drain CV wakes stop() the instant the last connection closes;
    // the empty critical section pairs with the wait_for's lock so the
    // notify cannot slip between its predicate check and its sleep.
    { std::lock_guard<std::mutex> lock(srv->drain_mu_); }
    srv->drain_cv_.notify_all();
  }
}

void QueryServer::Shard::note_work(Conn& conn) {
  if (conn.work_pending) return;
  conn.work_pending = true;
  work_fds.push_back(conn.fd);
}

void QueryServer::Shard::update_interest(Conn& conn) {
  std::uint32_t want = 0;
  // Input-side backpressure: once the unconsumed backlog passes the cap
  // (only reachable via fairness yields), stop reading until the work
  // list drains it back under — the peer is throttled by TCP instead of
  // growing our buffer without bound.
  if (!conn.closing && conn.avail() <= kMaxBufferedInput) want |= EPOLLIN;
  if (conn.has_output()) want |= EPOLLOUT;
  if (want == conn.armed_events) return;
  epoll_event ev{};
  ev.events = want;
  ev.data.fd = conn.fd;
  ::epoll_ctl(epoll_fd, EPOLL_CTL_MOD, conn.fd, &ev);
  conn.armed_events = want;
}

bool QueryServer::Shard::flush(Conn& conn) {
  while (conn.has_output()) {
    iovec iov[2];
    std::size_t iov_count = 0;
    if (conn.out_off < conn.out_front.size()) {
      iov[iov_count++] = {conn.out_front.data() + conn.out_off,
                          conn.out_front.size() - conn.out_off};
    }
    if (!conn.out_back.empty()) {
      iov[iov_count++] = {conn.out_back.data(), conn.out_back.size()};
    }
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = iov_count;
    ssize_t n;
    int injected = 0;
    if (fault::inject("serve.write", &injected)) {
      n = -1;
      errno = injected;
    } else {
      n = ::sendmsg(conn.fd, &msg, MSG_NOSIGNAL);
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;  // full
      return false;  // peer gone / hard error
    }
    srv->bytes_written_.add(static_cast<std::uint64_t>(n));
    std::size_t wrote = static_cast<std::size_t>(n);
    while (wrote > 0) {
      const std::size_t front_left = conn.out_front.size() - conn.out_off;
      if (wrote < front_left) {
        conn.out_off += wrote;
        wrote = 0;
      } else {
        wrote -= front_left;
        conn.out_front.clear();
        conn.out_off = 0;
        std::swap(conn.out_front, conn.out_back);
      }
    }
  }
  return true;
}

bool QueryServer::Shard::finish_io(Conn& conn) {
  if (!flush(conn)) {
    close_conn(conn);
    return false;
  }
  // Backpressure: a peer that keeps pipelining requests without reading
  // the responses grows the pending output without bound. Over the cap
  // the connection is cut — the kernel socket buffer plus the cap is all
  // a slow reader can ever pin.
  if (const std::size_t cap = srv->options_.max_outbuf_bytes; cap > 0) {
    const std::size_t pending =
        (conn.out_front.size() - conn.out_off) + conn.out_back.size();
    if (pending > cap) {
      srv->outbuf_overflow_.add(1);
      close_conn(conn);
      return false;
    }
  }
  if (!conn.has_output()) {
    write_timers.cancel(&conn);
    if (conn.closing) {
      close_conn(conn);
      return false;
    }
  } else if (srv->options_.io_timeout_ms > 0 && !conn.write_link.armed) {
    // Armed when output first becomes pending, not re-armed on partial
    // progress: the whole backlog must drain within one write deadline.
    write_timers.arm(&conn,
                     steady_clock::now() + std::chrono::milliseconds(
                                               srv->options_.io_timeout_ms));
  }
  account(conn);
  update_interest(conn);
  return true;
}

bool QueryServer::Shard::process_frame(Conn& conn) {
  conn.seen_binary = true;
  if (conn.avail() < wire::kHeaderSize) return true;  // torn header: wait
  wire::FrameHeader header;
  if (!wire::decode_header(conn.in.data() + conn.in_off, header)) {
    // Bad magic means framing itself is lost; there is no safe resync.
    srv->malformed_.add(1);
    return false;
  }
  wire::FrameHeader resp;
  resp.opcode = header.opcode;
  resp.request_id = header.request_id;
  resp.epoch = header.epoch;
  if (header.payload_len > wire::kMaxPayload) {
    // Refuse to buffer it: error frame, then close once it flushes.
    srv->malformed_.add(1);
    resp.status = wire::kTooLarge;
    wire::append_header(conn.out_back, resp);
    conn.closing = true;
    return true;
  }
  if (conn.avail() < wire::kHeaderSize + header.payload_len) {
    return true;  // torn payload: wait for the rest
  }
  const char* payload = conn.in.data() + conn.in_off + wire::kHeaderSize;
  conn.in_off += wire::kHeaderSize + header.payload_len;

  const auto start = steady_clock::now();
  srv->requests_.add(1);
  srv->bin_frames_.add(1);
  switch (header.opcode) {
    case wire::kOpLpmBatch: {
      if (header.payload_len % 4 != 0 ||
          header.payload_len / 4 > wire::kMaxFrameEntries) {
        srv->malformed_.add(1);
        resp.status = wire::kBadFrame;
        wire::append_header(conn.out_back, resp);
        break;
      }
      auto resolved = srv->engine_for(header.epoch);
      if (!resolved) {
        // Body-level error: the stream is still framed, so the peer can
        // keep pipelining other epochs over the same connection.
        srv->malformed_.add(1);
        resp.status = wire::kBadEpoch;
        wire::append_header(conn.out_back, resp);
        break;
      }
      const std::size_t n = header.payload_len / 4;
      addrs.resize(n);
      records.resize(n);
      for (std::size_t i = 0; i < n; ++i) {
        addrs[i] = wire::load_u32le(payload + 4 * i);
      }
      std::shared_ptr<const EngineState> state = std::move(*resolved);
      const QueryEngine& engine = state->engine();
      engine.lookup_batch(addrs, records);
      srv->bin_lookups_.add(n);
      resp.status = wire::kOk;
      resp.payload_len = static_cast<std::uint32_t>(n * wire::kResultSize);
      wire::append_header(conn.out_back, resp);
      std::uint64_t hit_count = 0;
      for (std::size_t i = 0; i < n; ++i) {
        wire::Result result;
        if (records[i] == QueryEngine::kNoRecord) {
          result.prefix_len = wire::kMissLen;
        } else {
          ++hit_count;
          const QueryEngine::Brief brief = engine.brief(records[i]);
          result.prefix_addr = brief.prefix_addr;
          result.prefix_len = brief.prefix_len;
          result.group = brief.group;
          result.flags = brief.leased ? wire::kFlagLeased : 0;
        }
        wire::append_result(conn.out_back, result);
      }
      srv->hits_.add(hit_count);
      srv->misses_.add(n - hit_count);
      break;
    }
    case wire::kOpExactBatch: {
      if (header.payload_len % 8 != 0 ||
          header.payload_len / 8 > wire::kMaxFrameEntries) {
        srv->malformed_.add(1);
        resp.status = wire::kBadFrame;
        wire::append_header(conn.out_back, resp);
        break;
      }
      const std::size_t n = header.payload_len / 8;
      bool bad_entry = false;
      for (std::size_t i = 0; i < n; ++i) {
        if (static_cast<unsigned char>(payload[8 * i + 4]) > 32) {
          bad_entry = true;
          break;
        }
      }
      if (bad_entry) {
        srv->malformed_.add(1);
        resp.status = wire::kBadFrame;
        wire::append_header(conn.out_back, resp);
        break;
      }
      auto resolved = srv->engine_for(header.epoch);
      if (!resolved) {
        srv->malformed_.add(1);
        resp.status = wire::kBadEpoch;
        wire::append_header(conn.out_back, resp);
        break;
      }
      std::shared_ptr<const EngineState> state = std::move(*resolved);
      const QueryEngine& engine = state->engine();
      srv->bin_lookups_.add(n);
      resp.status = wire::kOk;
      resp.payload_len = static_cast<std::uint32_t>(n * wire::kResultSize);
      wire::append_header(conn.out_back, resp);
      std::uint64_t hit_count = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint32_t addr = wire::load_u32le(payload + 8 * i);
        const int len = static_cast<unsigned char>(payload[8 * i + 4]);
        auto prefix = Prefix::make(Ipv4Addr(addr), len);  // canonicalizes
        wire::Result result;
        std::optional<std::uint32_t> idx =
            prefix ? engine.exact(*prefix) : std::nullopt;
        if (!idx) {
          result.prefix_len = wire::kMissLen;
        } else {
          ++hit_count;
          const QueryEngine::Brief brief = engine.brief(*idx);
          result.prefix_addr = brief.prefix_addr;
          result.prefix_len = brief.prefix_len;
          result.group = brief.group;
          result.flags = brief.leased ? wire::kFlagLeased : 0;
        }
        wire::append_result(conn.out_back, result);
      }
      srv->hits_.add(hit_count);
      srv->misses_.add(n - hit_count);
      break;
    }
    default: {
      srv->malformed_.add(1);
      resp.status = wire::kBadOpcode;
      wire::append_header(conn.out_back, resp);
      break;
    }
  }
  const auto elapsed = steady_clock::now() - start;
  srv->latency_bin_.record(static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count()));
  return true;
}

bool QueryServer::Shard::process(Conn& conn) {
  std::size_t handled = 0;
  for (;;) {
    if (conn.closing || conn.avail() == 0) return true;
    if (handled >= kMaxRequestsPerPass) {
      srv->fair_yields_.add(1);
      note_work(conn);  // resume next pass; others on the shard run first
      return true;
    }
    if (static_cast<unsigned char>(conn.in[conn.in_off]) ==
        wire::kMagicByte0) {
      const std::size_t before = conn.in_off;
      if (!process_frame(conn)) return false;
      if (conn.in_off == before && !conn.closing) return true;  // torn
      ++handled;
      continue;
    }
    const std::size_t nl = conn.in.find('\n', conn.in_off);
    if (nl == std::string::npos) {
      // No complete line; a peer streaming unbounded junk is cut off.
      return conn.avail() <= kMaxBufferedInput;
    }
    std::string_view line(conn.in.data() + conn.in_off, nl - conn.in_off);
    conn.in_off = nl + 1;
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (line.empty()) continue;
    std::string response = srv->handle_request(line);
    conn.out_back += response;
    conn.out_back += '\n';
    ++handled;
    if (srv->stop_.load(std::memory_order_acquire)) {
      // SHUTDOWN (from this or any connection): answer what is in flight,
      // drop the rest of the pipeline, flush, close.
      conn.closing = true;
      return true;
    }
  }
}

void QueryServer::Shard::on_readable(Conn& conn) {
  if (conn.closing) return;
  ssize_t n;
  int injected = 0;
  if (fault::inject("serve.read", &injected)) {
    n = -1;
    errno = injected;
  } else {
    n = ::recv(conn.fd, chunk.data(), chunk.size(), 0);
  }
  if (n < 0 && (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)) {
    return;  // level-triggered epoll re-reports anything still pending
  }
  if (n <= 0) {
    close_conn(conn);  // peer closed or hard error
    return;
  }
  srv->bytes_read_.add(static_cast<std::uint64_t>(n));
  conn.in.append(chunk.data(), static_cast<std::size_t>(n));
  if (srv->options_.idle_timeout_ms > 0) {
    idle_timers.arm(&conn,
                    steady_clock::now() + std::chrono::milliseconds(
                                              srv->options_.idle_timeout_ms));
  }
  if (!process(conn)) {
    close_conn(conn);
    return;
  }
  conn.compact();
  finish_io(conn);
}

void QueryServer::Shard::expire_timers(steady_clock::time_point now) {
  while (Conn* conn = idle_timers.front()) {
    if (conn->idle_link.deadline > now) break;
    idle_timers.cancel(conn);
    srv->timeouts_.add(1);
    // Best-effort farewell for text peers; a binary peer would read it as
    // a corrupt frame, so it just gets the close.
    if (!conn->seen_binary) conn->out_back += "{\"error\":\"idle timeout\"}\n";
    conn->closing = true;
    finish_io(*conn);  // flushes + closes, or arms the write deadline
  }
  while (Conn* conn = write_timers.front()) {
    if (conn->write_link.deadline > now) break;
    srv->timeouts_.add(1);
    close_conn(*conn);
  }
}

int QueryServer::Shard::compute_timeout(steady_clock::time_point now) const {
  long long best = -1;
  auto consider = [&](steady_clock::time_point deadline) {
    auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(deadline -
                                                                    now)
                  .count() +
              1;  // round up so we wake at-or-after the deadline
    ms = std::max<long long>(ms, 0);
    if (best < 0 || ms < best) best = ms;
  };
  if (const Conn* conn = idle_timers.front()) {
    consider(conn->idle_link.deadline);
  }
  if (const Conn* conn = write_timers.front()) {
    consider(conn->write_link.deadline);
  }
  if (best < 0) return -1;  // no timers: the eventfd is the only wake-up
  return static_cast<int>(std::min<long long>(best, 60'000));
}

void QueryServer::Shard::adopt_inbox() {
  std::vector<int> fds;
  {
    std::lock_guard<std::mutex> lock(inbox_mu);
    fds.swap(inbox);
  }
  for (int fd : fds) {
    auto owned = std::make_unique<Conn>();
    owned->fd = fd;
    Conn* conn = owned.get();
    conns.emplace(fd, std::move(owned));
    if (conn_gauge != nullptr) conn_gauge->add(1);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, fd, &ev) != 0) {
      close_conn(*conn);
      continue;
    }
    conn->armed_events = EPOLLIN;
    if (srv->options_.idle_timeout_ms > 0) {
      idle_timers.arm(conn, steady_clock::now() +
                                std::chrono::milliseconds(
                                    srv->options_.idle_timeout_ms));
    }
    account(*conn);
  }
  // A RELOAD wakeup lands here too: re-sample the generation gauge so
  // scrapes right after a swap see the new generation.
  srv->generation_gauge_.set(
      static_cast<std::int64_t>(srv->engine()->generation()));
}

void QueryServer::Shard::apply_drain(bool force) {
  std::vector<Conn*> doomed;
  for (auto& [fd, conn] : conns) {
    if (force || !conn->has_output()) {
      doomed.push_back(conn.get());
    } else if (!conn->closing) {
      // Pending responses flush first; the write deadline (or force at the
      // drain deadline) bounds how long a non-reading peer can hold us.
      conn->closing = true;
      idle_timers.cancel(conn.get());
      if (srv->options_.io_timeout_ms > 0 && !conn->write_link.armed) {
        write_timers.arm(conn.get(),
                         steady_clock::now() +
                             std::chrono::milliseconds(
                                 srv->options_.io_timeout_ms));
      }
      update_interest(*conn);
    }
  }
  for (Conn* conn : doomed) close_conn(*conn);
}

void QueryServer::Shard::loop() {
  std::vector<epoll_event> events(128);
  for (;;) {
    const bool draining = srv->drain_.load(std::memory_order_acquire) ||
                          srv->stop_.load(std::memory_order_acquire);
    const bool forcing = srv->force_.load(std::memory_order_acquire);
    if (draining || forcing) {
      adopt_inbox();  // late handovers get closed with correct accounting
      apply_drain(forcing);
      if (conns.empty()) return;
    }
    const int timeout_ms =
        work_fds.empty() ? compute_timeout(steady_clock::now()) : 0;
    int n;
    int injected = 0;
    if (fault::inject("serve.epoll_wait", &injected)) {
      n = -1;
      errno = injected;
    } else {
      n = ::epoll_wait(epoll_fd, events.data(),
                       static_cast<int>(events.size()), timeout_ms);
    }
    if (n < 0) {
      if (errno != EINTR) {
        srv->epoll_retries_.add(1);
        SUBLET_LOG(kWarn) << "epoll_wait(shard " << index
                          << "): " << strerror(errno) << "; retrying";
      }
      continue;
    }
    for (int i = 0; i < n; ++i) {
      const epoll_event& ev = events[i];
      if (ev.data.fd == event_fd) {
        std::uint64_t drained = 0;
        [[maybe_unused]] ssize_t rc =
            ::read(event_fd, &drained, sizeof(drained));
        adopt_inbox();
        continue;
      }
      auto it = conns.find(ev.data.fd);
      if (it == conns.end()) continue;  // closed earlier in this batch
      Conn& conn = *it->second;
      if (ev.events & (EPOLLERR | EPOLLHUP)) {
        close_conn(conn);
        continue;
      }
      if ((ev.events & EPOLLOUT) != 0 && !finish_io(conn)) continue;
      if ((ev.events & EPOLLIN) != 0) on_readable(conn);
    }
    // Resume connections parked at the fairness budget, one budget each;
    // a still-backlogged connection re-parks itself for the next pass.
    if (!work_fds.empty()) {
      work_scratch.clear();
      work_scratch.swap(work_fds);
      for (int fd : work_scratch) {
        auto it = conns.find(fd);
        if (it == conns.end()) continue;  // closed while parked
        Conn& conn = *it->second;
        conn.work_pending = false;
        if (!process(conn)) {
          close_conn(conn);
          continue;
        }
        conn.compact();
        finish_io(conn);
      }
    }
    expire_timers(steady_clock::now());
  }
}

// ---- server ---------------------------------------------------------------

QueryServer::QueryServer(std::shared_ptr<const EngineState> engine,
                         Options options)
    : options_(options),
      engine_(std::move(engine)),
      requests_(registry_.counter("sublet_serve_requests_total",
                                  "Requests handled (all verbs)")),
      hits_(registry_.counter("sublet_serve_hits_total",
                              "EXACT/LPM lookups that found a record")),
      misses_(registry_.counter("sublet_serve_misses_total",
                                "EXACT/LPM lookups with no record")),
      malformed_(registry_.counter("sublet_serve_malformed_total",
                                   "Requests rejected as malformed")),
      shed_(registry_.counter("sublet_serve_shed_total",
                              "Connections refused at the concurrency cap")),
      timeouts_(registry_.counter("sublet_serve_timeouts_total",
                                  "Connections cut at an idle/write deadline")),
      accept_retries_(registry_.counter(
          "sublet_serve_accept_retries_total",
          "Transient accept() errors survived by the accept loop")),
      epoll_retries_(registry_.counter(
          "sublet_serve_epoll_retries_total",
          "epoll_wait() errors survived by the shard event loops")),
      reloads_(registry_.counter("sublet_serve_reloads_total",
                                 "Successful snapshot hot swaps")),
      reload_failures_(registry_.counter(
          "sublet_serve_reload_failures_total",
          "Rejected RELOADs (previous engine kept serving)")),
      outbuf_overflow_(registry_.counter(
          "sublet_serve_outbuf_overflow_total",
          "Connections closed for exceeding the pending-output cap")),
      fair_yields_(registry_.counter(
          "sublet_serve_fair_yields_total",
          "Event-loop passes that stopped at the per-connection request "
          "budget so other connections on the shard could run")),
      bin_frames_(registry_.counter("sublet_serve_bin_frames_total",
                                    "Binary protocol frames handled")),
      bin_lookups_(registry_.counter(
          "sublet_serve_bin_lookups_total",
          "Addresses resolved through binary batch frames")),
      bytes_read_(registry_.counter("sublet_serve_bytes_read_total",
                                    "Bytes received from clients")),
      bytes_written_(registry_.counter("sublet_serve_bytes_written_total",
                                       "Bytes sent to clients")),
      generation_gauge_(registry_.gauge("sublet_serve_generation",
                                        "Current engine generation")),
      active_conns_gauge_(registry_.gauge(
          "sublet_serve_active_connections", "Currently open connections")),
      latency_exact_(registry_.histogram(
          obs::labeled("sublet_serve_latency_ns", "verb", "exact"),
          "Per-request handling latency")),
      latency_lpm_(registry_.histogram(
          obs::labeled("sublet_serve_latency_ns", "verb", "lpm"))),
      latency_mlpm_(registry_.histogram(
          obs::labeled("sublet_serve_latency_ns", "verb", "mlpm"))),
      latency_bin_(registry_.histogram(
          obs::labeled("sublet_serve_latency_ns", "verb", "bin"))),
      latency_at_(registry_.histogram(
          obs::labeled("sublet_serve_latency_ns", "verb", "at"))),
      latency_history_(registry_.histogram(
          obs::labeled("sublet_serve_latency_ns", "verb", "history"))),
      latency_other_(registry_.histogram(
          obs::labeled("sublet_serve_latency_ns", "verb", "other"))) {}

QueryServer::QueryServer(std::shared_ptr<EpochSource> source,
                         std::shared_ptr<const EngineState> initial,
                         Options options)
    : QueryServer(std::move(initial), options) {
  source_ = std::move(source);
}

QueryServer::~QueryServer() { stop(); }

std::shared_ptr<const EngineState> QueryServer::engine() const {
  std::lock_guard<std::mutex> lock(engine_mu_);
  return engine_;
}

obs::Histogram& QueryServer::verb_histogram(Verb verb) {
  switch (verb) {
    case Verb::kExact: return latency_exact_;
    case Verb::kLpm: return latency_lpm_;
    case Verb::kMlpm: return latency_mlpm_;
    case Verb::kBin: return latency_bin_;
    case Verb::kAt: return latency_at_;
    case Verb::kHistory: return latency_history_;
    case Verb::kOther: break;
  }
  return latency_other_;
}

Expected<std::shared_ptr<const EngineState>> QueryServer::engine_for(
    std::uint32_t epoch) {
  if (epoch == 0) return engine();
  if (source_ == nullptr) {
    return fail("epoch queries need a catalog-mode server");
  }
  return source_->epoch_at(epoch);
}

std::size_t QueryServer::connection_memory_bytes() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->mem_bytes.load(std::memory_order_relaxed);
  }
  return total;
}

Expected<std::uint16_t> QueryServer::start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return fail("socket(): " + std::string(strerror(errno)));
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    std::string message = "bind(): " + std::string(strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return fail(std::move(message));
  }
  if (::listen(listen_fd_, 128) != 0) {
    std::string message = "listen(): " + std::string(strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return fail(std::move(message));
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  start_time_ = steady_clock::now();

  unsigned shards = options_.shards != 0 ? options_.shards : options_.threads;
  if (shards == 0) shards = std::max(1u, std::thread::hardware_concurrency());
  shard_count_ = shards;
  auto teardown = [this] {
    for (auto& shard : shards_) {
      if (shard->epoll_fd >= 0) ::close(shard->epoll_fd);
      if (shard->event_fd >= 0) ::close(shard->event_fd);
    }
    shards_.clear();
    ::close(listen_fd_);
    listen_fd_ = -1;
  };
  for (unsigned i = 0; i < shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->srv = this;
    shard->index = i;
    shard->epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
    shard->event_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (shard->epoll_fd < 0 || shard->event_fd < 0) {
      std::string message =
          "epoll/eventfd setup: " + std::string(strerror(errno));
      shards_.push_back(std::move(shard));
      teardown();
      return fail(std::move(message));
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = shard->event_fd;
    if (::epoll_ctl(shard->epoll_fd, EPOLL_CTL_ADD, shard->event_fd, &ev) !=
        0) {
      std::string message = "epoll_ctl(): " + std::string(strerror(errno));
      shards_.push_back(std::move(shard));
      teardown();
      return fail(std::move(message));
    }
    shard->conn_gauge = &registry_.gauge(
        obs::labeled("sublet_serve_shard_connections", "shard",
                     std::to_string(i)),
        "Open connections owned by this event-loop shard");
    shards_.push_back(std::move(shard));
  }
  for (auto& shard : shards_) {
    Shard* raw = shard.get();
    shard->thread = std::thread([raw] { raw->loop(); });
  }
  accept_thread_ = std::thread([this] { accept_loop(); });
  return port_;
}

void QueryServer::wake_all_shards() {
  for (auto& shard : shards_) {
    if (shard->event_fd < 0) continue;
    std::uint64_t one = 1;
    [[maybe_unused]] ssize_t rc =
        ::write(shard->event_fd, &one, sizeof(one));
  }
}

void QueryServer::accept_loop() {
  int backoff_ms = 0;
  std::size_t next_shard = 0;
  for (;;) {
    if (stop_.load(std::memory_order_acquire)) return;
    int ready = wait_fd(listen_fd_, POLLIN, kPollSliceMs);
    if (ready == 0) continue;  // slice expired; re-check stop_
    if (ready < 0) return;     // listener gone
    int injected = 0;
    int fd;
    if (fault::inject("serve.accept", &injected)) {
      fd = -1;
      errno = injected;
    } else {
      fd = ::accept(listen_fd_, nullptr, nullptr);
    }
    if (fd < 0) {
      if (errno == EINTR) continue;
      if (stop_.load(std::memory_order_acquire)) return;
      if (transient_accept_error(errno)) {
        accept_retries_.add(1);
        backoff_ms = backoff_ms == 0 ? 1 : std::min(backoff_ms * 2, 200);
        SUBLET_LOG(kWarn) << "accept(): " << strerror(errno)
                          << "; retrying in " << backoff_ms << "ms";
        std::unique_lock<std::mutex> lock(stop_mu_);
        stop_cv_.wait_for(lock, std::chrono::milliseconds(backoff_ms), [this] {
          return stop_.load(std::memory_order_acquire);
        });
        continue;
      }
      SUBLET_LOG(kError) << "accept(): " << strerror(errno)
                         << "; accept loop exiting";
      return;
    }
    backoff_ms = 0;
    if (stop_.load(std::memory_order_acquire)) {
      ::close(fd);
      return;
    }
    const std::size_t current =
        live_conns_.fetch_add(1, std::memory_order_acq_rel);
    if (options_.max_conns > 0 && current >= options_.max_conns) {
      // Shed instead of queueing unboundedly: one line, then close. The
      // fd stays blocking here — it never reaches a shard.
      live_conns_.fetch_sub(1, std::memory_order_acq_rel);
      shed_.add(1);
      send_with_deadline(fd, "{\"error\":\"overloaded\"}\n");
      ::close(fd);
      continue;
    }
    set_nonblocking(fd);
    Shard& shard = *shards_[next_shard++ % shard_count_];
    {
      std::lock_guard<std::mutex> lock(shard.inbox_mu);
      shard.inbox.push_back(fd);
    }
    std::uint64_t one = 1;
    [[maybe_unused]] ssize_t rc = ::write(shard.event_fd, &one, sizeof(one));
  }
}

bool QueryServer::send_with_deadline(int fd, std::string_view data) {
  const auto deadline =
      steady_clock::now() + std::chrono::milliseconds(options_.io_timeout_ms);
  while (!data.empty()) {
    if (options_.io_timeout_ms > 0) {
      auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
                           deadline - steady_clock::now())
                           .count();
      if (remaining <= 0) {
        timeouts_.add(1);
        return false;
      }
      int ready = wait_fd(fd, POLLOUT, static_cast<int>(remaining));
      if (ready == 0) {
        timeouts_.add(1);
        return false;
      }
      if (ready < 0) return false;
    }
    int injected = 0;
    ssize_t n;
    if (fault::inject("serve.write", &injected)) {
      n = -1;
      errno = injected;
    } else {
      n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    }
    if (n <= 0) {
      if (n < 0 && (errno == EINTR || errno == EAGAIN)) continue;
      return false;
    }
    data.remove_prefix(static_cast<std::size_t>(n));
  }
  return true;
}

Expected<std::uint64_t> QueryServer::reload(const std::string& path) {
  // One RELOAD at a time; the load + validation runs here, off the other
  // shards' hot path — they keep answering from the current engine.
  std::lock_guard<std::mutex> reload_lock(reload_mu_);
  const std::uint64_t next_generation = engine()->generation() + 1;
  auto next = EngineState::load(path, options_.reload_mode, next_generation);
  if (!next) {
    reload_failures_.add(1);
    SUBLET_LOG(kWarn) << "reload of " << path
                      << " rejected: " << next.error().to_string()
                      << " (keeping generation "
                      << next_generation - 1 << ")";
    return next.error();
  }
  {
    std::lock_guard<std::mutex> lock(engine_mu_);
    engine_ = std::move(*next);
  }
  reloads_.add(1);
  // Shards hold no engine references between requests (one shared_ptr
  // acquire per request), so the wakeup just refreshes their gauges.
  wake_all_shards();
  SUBLET_LOG(kInfo) << "reloaded generation " << next_generation << " from "
                    << path;
  return next_generation;
}

Expected<std::uint64_t> QueryServer::refresh_catalog() {
  // Catalog-mode RELOAD: re-scan the index for appended epochs and swap
  // the latest in. Same failure contract as a snapshot RELOAD — a broken
  // index or chain keeps every currently-served epoch untouched.
  std::lock_guard<std::mutex> reload_lock(reload_mu_);
  auto next = source_->refresh();
  if (!next) {
    reload_failures_.add(1);
    SUBLET_LOG(kWarn) << "catalog refresh rejected: "
                      << next.error().to_string()
                      << " (keeping current epochs)";
    return next.error();
  }
  const std::uint64_t generation = (*next)->generation();
  {
    std::lock_guard<std::mutex> lock(engine_mu_);
    engine_ = std::move(*next);
  }
  reloads_.add(1);
  wake_all_shards();
  SUBLET_LOG(kInfo) << "catalog refreshed; serving epoch generation "
                    << generation;
  return generation;
}

std::string QueryServer::history_json(const Prefix& query) {
  // Replay the classification of `query` across every epoch, oldest
  // first, and coalesce runs of identical answers into segments. One
  // longest-match per epoch; epochs whose chain fails to materialize are
  // listed under "unavailable" rather than failing the whole replay.
  std::vector<std::uint32_t> epochs = source_->epochs();
  // Bound the replay cost: one request walks at most max_history_epochs
  // recent epochs (each one is a materialize + longest_match), so a
  // thousand-epoch catalog cannot turn a single HISTORY line into an
  // unbounded amount of work. Dropped older epochs are reported in
  // "truncated_epochs".
  std::size_t truncated = 0;
  if (const std::size_t cap = options_.max_history_epochs;
      cap > 0 && epochs.size() > cap) {
    truncated = epochs.size() - cap;
    epochs.erase(epochs.begin(),
                 epochs.begin() + static_cast<std::ptrdiff_t>(truncated));
  }
  struct Answer {
    bool found = false;
    std::string prefix;
    std::uint8_t group = 0;
  };
  struct Segment {
    std::uint32_t from = 0;
    std::uint32_t to = 0;
    Answer answer;
  };
  std::vector<Segment> segments;
  std::vector<std::uint32_t> unavailable;
  for (std::uint32_t epoch : epochs) {
    auto resolved = source_->epoch_at(epoch);
    if (!resolved) {
      unavailable.push_back(epoch);
      continue;
    }
    const std::shared_ptr<const EngineState> state = std::move(*resolved);
    Answer answer;
    if (auto hit = state->engine().longest_match(query)) {
      const snapshot::RecordRow& row = state->snapshot().record(hit->second);
      answer.found = true;
      answer.prefix = state->snapshot().prefix_of(row).to_string();
      answer.group = row.group;
    }
    if (!segments.empty() && segments.back().answer.found == answer.found &&
        segments.back().answer.prefix == answer.prefix &&
        segments.back().answer.group == answer.group) {
      segments.back().to = epoch;
    } else {
      segments.push_back(Segment{epoch, epoch, std::move(answer)});
    }
  }
  JsonWriter json;
  json.begin_object();
  json.key("query").value(query.to_string());
  json.key("epochs").value(static_cast<std::uint64_t>(epochs.size()));
  if (!epochs.empty()) {
    json.key("first_epoch").value(static_cast<std::uint64_t>(epochs.front()));
    json.key("last_epoch").value(static_cast<std::uint64_t>(epochs.back()));
  }
  json.begin_array("segments");
  for (const Segment& segment : segments) {
    json.begin_object();
    json.key("from_epoch").value(static_cast<std::uint64_t>(segment.from));
    json.key("to_epoch").value(static_cast<std::uint64_t>(segment.to));
    json.key("found").value(segment.answer.found);
    if (segment.answer.found) {
      json.key("prefix").value(segment.answer.prefix);
      json.key("group").value(leasing::group_name(
          static_cast<leasing::InferenceGroup>(segment.answer.group)));
      json.key("leased").value(leasing::is_leased(
          static_cast<leasing::InferenceGroup>(segment.answer.group)));
    }
    json.end_object();
  }
  json.end_array();
  json.key("transitions")
      .value(static_cast<std::uint64_t>(
          segments.empty() ? 0 : segments.size() - 1));
  if (truncated > 0) {
    json.key("truncated_epochs").value(static_cast<std::uint64_t>(truncated));
  }
  if (!unavailable.empty()) {
    json.begin_array("unavailable");
    for (std::uint32_t epoch : unavailable) {
      json.value(static_cast<std::uint64_t>(epoch));
    }
    json.end_array();
  }
  json.end_object();
  return json.take();
}

std::string QueryServer::health_json() const {
  std::shared_ptr<const EngineState> state = engine();
  const double uptime =
      std::chrono::duration_cast<std::chrono::duration<double>>(
          steady_clock::now() - start_time_)
          .count();
  JsonWriter json;
  json.begin_object();
  json.key("ok").value(true);
  json.key("generation").value(state->generation());
  json.key("snapshot").value(state->path());
  json.key("records").value(
      static_cast<std::uint64_t>(state->snapshot().record_count()));
  json.key("uptime_s").value(uptime);
  json.key("draining").value(stop_.load(std::memory_order_acquire));
  json.key("active_conns").value(
      static_cast<std::uint64_t>(active_connections()));
  json.key("reloads").value(reloads_.value());
  json.end_object();
  return json.take();
}

std::string QueryServer::handle_request(std::string_view line) {
  const auto start = std::chrono::steady_clock::now();
  requests_.add(1);
  Verb verb_class = Verb::kOther;
  std::string response;
  std::vector<std::string_view> parts = split_ws(line);
  const std::string_view verb = parts.empty() ? std::string_view() : parts[0];
  auto parse_query = [](std::string_view text) -> std::optional<Prefix> {
    if (auto prefix = Prefix::parse(text, /*canonicalize=*/true)) {
      return prefix;
    }
    if (auto addr = Ipv4Addr::parse(text)) return Prefix::make(*addr, 32);
    return std::nullopt;
  };
  auto parse_epoch = [](std::string_view text) -> std::optional<std::uint32_t> {
    if (text.empty() || text.size() > 10) return std::nullopt;
    std::uint64_t v = 0;
    for (char c : text) {
      if (c < '0' || c > '9') return std::nullopt;
      v = v * 10 + static_cast<unsigned>(c - '0');
    }
    if (v == 0 || v > 0xFFFFFFFFull) return std::nullopt;
    return static_cast<std::uint32_t>(v);
  };
  if (iequals(verb, "STATS") && parts.size() == 1) {
    response = stats().to_json();
    // Splice in the engine-level aggregate + memory breakdown as a
    // trailing "snapshot" object. The counter fields stay first and
    // unchanged so existing scrapers' substring checks keep passing.
    const std::string snap_json = engine()->engine().snapshot_stats_json();
    response.insert(response.size() - 1, ",\"snapshot\":" + snap_json);
    if (catalog_mode()) {
      // Catalog mode only: the single-snapshot response shape is pinned
      // byte-identical by the differential suite.
      const std::vector<std::uint32_t> epochs = source_->epochs();
      JsonWriter ej;
      ej.begin_object();
      ej.key("count").value(static_cast<std::uint64_t>(epochs.size()));
      if (!epochs.empty()) {
        ej.key("first").value(static_cast<std::uint64_t>(epochs.front()));
        ej.key("last").value(static_cast<std::uint64_t>(epochs.back()));
      }
      ej.end_object();
      response.insert(response.size() - 1, ",\"epochs\":" + ej.take());
    }
  } else if (iequals(verb, "METRICS") && parts.size() == 1) {
    // The one multi-line response in the protocol; metrics_text() ends
    // with a "# EOF" line so clients know where the body stops.
    response = metrics_text();
  } else if (iequals(verb, "HEALTH") && parts.size() == 1) {
    response = health_json();
  } else if (iequals(verb, "RELOAD") &&
             (catalog_mode() ? parts.size() == 1 : parts.size() == 2)) {
    // Single-snapshot mode reloads from an explicit path; catalog mode
    // re-scans the catalog directory for appended epochs (bare RELOAD).
    auto swapped = catalog_mode() ? refresh_catalog()
                                  : reload(std::string(parts[1]));
    if (swapped) {
      JsonWriter json;
      json.begin_object();
      json.key("ok").value(true);
      json.key("generation").value(*swapped);
      json.key("records").value(
          static_cast<std::uint64_t>(engine()->snapshot().record_count()));
      if (catalog_mode()) {
        json.key("epochs").value(
            static_cast<std::uint64_t>(source_->epochs().size()));
      }
      json.end_object();
      response = json.take();
    } else {
      response = error_json("reload failed: " + swapped.error().to_string());
    }
  } else if (iequals(verb, "SHUTDOWN") && parts.size() == 1) {
    JsonWriter json;
    json.begin_object();
    json.key("ok").value(true);
    json.key("stopping").value(true);
    json.end_object();
    response = json.take();
    stop_.store(true, std::memory_order_release);
    stop_cv_.notify_all();
    wake_all_shards();
  } else if (iequals(verb, "MLPM") && parts.size() >= 2) {
    verb_class = Verb::kMlpm;
    constexpr std::size_t kMaxBatch = 1024;
    if (parts.size() - 1 > kMaxBatch) {
      malformed_.add(1);
      response = error_json("batch too large (max 1024 addresses)");
    } else {
      // Scratch buffers are thread_local so a connection streaming MLPM
      // lines allocates nothing once they reach steady-state capacity;
      // the batch itself goes through the stride table's prefetched
      // two-pass lookup instead of one dependent-miss walk per address.
      static thread_local std::vector<std::uint32_t> addrs;
      static thread_local std::vector<std::uint32_t> records;
      addrs.clear();
      std::string_view bad;
      for (std::size_t i = 1; i < parts.size(); ++i) {
        auto addr = Ipv4Addr::parse(parts[i]);
        if (!addr) {
          bad = parts[i];
          break;
        }
        addrs.push_back(addr->value());
      }
      if (!bad.empty()) {
        malformed_.add(1);
        response = error_json("bad address '" + std::string(bad) + "'");
      } else {
        std::shared_ptr<const EngineState> state = engine();
        records.resize(addrs.size());
        state->engine().lookup_batch(addrs, records);
        JsonWriter json;
        json.begin_object();
        json.key("count").value(static_cast<std::uint64_t>(addrs.size()));
        json.begin_array("results");
        for (std::size_t i = 0; i < addrs.size(); ++i) {
          json.begin_object();
          json.key("query").value(Ipv4Addr(addrs[i]).to_string());
          if (records[i] == QueryEngine::kNoRecord) {
            misses_.add(1);
            json.key("found").value(false);
          } else {
            hits_.add(1);
            const snapshot::RecordRow& row =
                state->snapshot().record(records[i]);
            json.key("found").value(true);
            json.key("prefix").value(
                state->snapshot().prefix_of(row).to_string());
            json.key("group").value(leasing::group_name(
                static_cast<leasing::InferenceGroup>(row.group)));
            json.key("leased").value(leasing::is_leased(
                static_cast<leasing::InferenceGroup>(row.group)));
          }
          json.end_object();
        }
        json.end_array();
        json.end_object();
        response = json.take();
      }
    }
  } else if ((iequals(verb, "EXACT") || iequals(verb, "LPM")) &&
             (parts.size() == 2 ||
              (parts.size() == 4 && iequals(parts[2], "AT")))) {
    // `EXACT <q>` / `LPM <q>` answer from the current engine;
    // `... AT <epoch-ts>` answers from the newest catalog epoch at or
    // before that timestamp (docs/TIMETRAVEL.md).
    const bool at_query = parts.size() == 4;
    verb_class = at_query ? Verb::kAt
                          : (iequals(verb, "EXACT") ? Verb::kExact
                                                    : Verb::kLpm);
    std::optional<Prefix> query = parse_query(parts[1]);
    std::optional<std::uint32_t> at;
    if (at_query) at = parse_epoch(parts[3]);
    if (!query) {
      malformed_.add(1);
      response = error_json("bad prefix '" + std::string(parts[1]) + "'");
    } else if (at_query && !at) {
      malformed_.add(1);
      response =
          error_json("bad epoch timestamp '" + std::string(parts[3]) + "'");
    } else {
      // One shared_ptr acquire per request: a concurrent RELOAD swap can
      // retire the old state only after this request drops its reference.
      auto resolved = engine_for(at_query ? *at : 0);
      if (!resolved) {
        malformed_.add(1);
        response = error_json("AT " + std::to_string(*at) + ": " +
                              resolved.error().to_string());
      } else {
        std::shared_ptr<const EngineState> state = std::move(*resolved);
        std::optional<std::uint32_t> idx;
        if (iequals(verb, "EXACT")) {
          idx = state->engine().exact(*query);
        } else if (auto hit = state->engine().longest_match(*query)) {
          idx = hit->second;
        }
        if (idx) {
          hits_.add(1);
          response = state->engine().record_json(*idx);
        } else {
          misses_.add(1);
          JsonWriter json;
          json.begin_object();
          json.key("found").value(false);
          json.end_object();
          response = json.take();
        }
        if (at_query) {
          // Tell the client which epoch actually answered (as-of
          // resolution may land before the requested timestamp).
          response.insert(
              response.size() - 1,
              ",\"epoch\":" + std::to_string(state->epoch()));
        }
      }
    }
  } else if (iequals(verb, "HISTORY") && parts.size() == 2) {
    verb_class = Verb::kHistory;
    if (!catalog_mode()) {
      malformed_.add(1);
      response =
          error_json("HISTORY needs a catalog-mode server (serve --catalog)");
    } else {
      std::optional<Prefix> query = parse_query(parts[1]);
      if (!query) {
        malformed_.add(1);
        response = error_json("bad prefix '" + std::string(parts[1]) + "'");
      } else {
        response = history_json(*query);
      }
    }
  } else {
    malformed_.add(1);
    response = error_json(
        "unknown request '" + std::string(verb) +
        "' (want EXACT|LPM|MLPM|STATS|HEALTH|METRICS|RELOAD|SHUTDOWN|"
        "HISTORY, EXACT/LPM accept a trailing AT <epoch-ts>)");
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  verb_histogram(verb_class)
      .record(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
              .count()));
  return response;
}

StatsSnapshot QueryServer::stats() const {
  StatsSnapshot out;
  out.requests = requests_.value();
  out.hits = hits_.value();
  out.misses = misses_.value();
  out.malformed = malformed_.value();
  out.shed = shed_.value();
  out.timeouts = timeouts_.value();
  out.accept_retries = accept_retries_.value();
  out.reloads = reloads_.value();
  out.reload_failures = reload_failures_.value();
  out.generation = engine()->generation();
  // Merge every per-verb latency series bucket-by-bucket, then apply the
  // registry histogram's exact quantile math: every request is recorded in
  // exactly one verb series, so the merge equals the old single histogram
  // and the p50/p99 doubles stay bit-identical. quantile units are
  // nanoseconds; dividing reproduces the legacy microsecond doubles.
  obs::HistogramSnapshot merged;
  const obs::Histogram* series[] = {&latency_exact_,   &latency_lpm_,
                                    &latency_mlpm_,    &latency_bin_,
                                    &latency_at_,      &latency_history_,
                                    &latency_other_};
  for (const obs::Histogram* histogram : series) {
    const obs::HistogramSnapshot snap = histogram->snapshot();
    for (std::size_t b = 0; b < snap.buckets.size(); ++b) {
      merged.buckets[b] += snap.buckets[b];
    }
    merged.count += snap.count;
    merged.sum += snap.sum;
  }
  out.p50_us = snapshot_quantile(merged, 0.50) / 1000.0;
  out.p99_us = snapshot_quantile(merged, 0.99) / 1000.0;
  return out;
}

std::string QueryServer::metrics_text() const {
  // Gauges are sampled, not event-driven: refresh them at scrape time.
  generation_gauge_.set(static_cast<std::int64_t>(engine()->generation()));
  active_conns_gauge_.set(
      static_cast<std::int64_t>(active_connections()));
  std::string out = obs::MetricsRegistry::global().prometheus_text();
  out += registry_.prometheus_text();
  out += "# EOF";
  return out;
}

void QueryServer::wait(const std::function<bool()>& predicate) {
  std::unique_lock<std::mutex> lock(stop_mu_);
  while (!stop_requested() && !(predicate && predicate())) {
    stop_cv_.wait_for(lock, std::chrono::milliseconds(kPollSliceMs));
  }
}

void QueryServer::stop() {
  stop_.store(true, std::memory_order_release);
  stop_cv_.notify_all();
  if (stopped_.exchange(true)) return;  // idempotent
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  // Graceful drain: shards flush buffered responses and close; the CV
  // fires the instant the live count reaches zero, so shutdown latency is
  // the actual drain time, not a sleep quantum.
  drain_.store(true, std::memory_order_release);
  wake_all_shards();
  {
    std::unique_lock<std::mutex> lock(drain_mu_);
    drain_cv_.wait_for(
        lock, std::chrono::milliseconds(std::max(0, options_.drain_timeout_ms)),
        [this] { return live_conns_.load(std::memory_order_acquire) == 0; });
  }
  force_.store(true, std::memory_order_release);
  wake_all_shards();
  for (auto& shard : shards_) {
    if (shard->thread.joinable()) shard->thread.join();
  }
  for (auto& shard : shards_) {
    // Accepted fds raced into an inbox after its shard exited are closed
    // here so nothing leaks (the accept thread is already joined).
    std::lock_guard<std::mutex> lock(shard->inbox_mu);
    for (int fd : shard->inbox) {
      ::close(fd);
      live_conns_.fetch_sub(1, std::memory_order_acq_rel);
    }
    shard->inbox.clear();
    if (shard->epoll_fd >= 0) {
      ::close(shard->epoll_fd);
      shard->epoll_fd = -1;
    }
    if (shard->event_fd >= 0) {
      ::close(shard->event_fd);
      shard->event_fd = -1;
    }
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

}  // namespace sublet::serve
