#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <optional>
#include <vector>

#include "serve/json.h"
#include "util/faultinject.h"
#include "util/log.h"
#include "util/strings.h"

namespace sublet::serve {

namespace {

using std::chrono::steady_clock;

/// One request line must fit in this much buffered input; a client that
/// streams more without a newline is cut off (defensive bound, not a
/// protocol limit any legitimate request approaches).
constexpr std::size_t kMaxBufferedInput = 1 << 20;

/// Handlers and the accept loop poll in slices of at most this long so
/// stop() and deadline checks stay responsive.
constexpr int kPollSliceMs = 100;

std::string error_json(std::string_view message) {
  JsonWriter json;
  json.begin_object();
  json.key("error").value(message);
  json.end_object();
  return json.take();
}

/// Wait for `events` on `fd` for up to `timeout_ms`. Returns >0 ready,
/// 0 timeout, <0 error (EINTR already retried).
int wait_fd(int fd, short events, int timeout_ms) {
  pollfd pfd{fd, events, 0};
  for (;;) {
    int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc < 0 && errno == EINTR) continue;
    return rc;
  }
}

/// accept() errors the loop must survive: resource exhaustion and peers
/// that gave up while queued. Everything else (EBADF/EINVAL once stop()
/// shut the listener down) ends the loop.
bool transient_accept_error(int err) {
  return err == EMFILE || err == ENFILE || err == ECONNABORTED ||
         err == EAGAIN || err == EWOULDBLOCK || err == ENOBUFS ||
         err == ENOMEM || err == EPROTO;
}

}  // namespace

std::string StatsSnapshot::to_json() const {
  JsonWriter json;
  json.begin_object();
  json.key("requests").value(requests);
  json.key("hits").value(hits);
  json.key("misses").value(misses);
  json.key("malformed").value(malformed);
  json.key("shed").value(shed);
  json.key("timeouts").value(timeouts);
  json.key("accept_retries").value(accept_retries);
  json.key("reloads").value(reloads);
  json.key("reload_failures").value(reload_failures);
  json.key("generation").value(generation);
  json.key("p50_us").value(p50_us);
  json.key("p99_us").value(p99_us);
  json.end_object();
  return json.take();
}

QueryServer::QueryServer(std::shared_ptr<const EngineState> engine,
                         Options options)
    : options_(options),
      engine_(std::move(engine)),
      requests_(registry_.counter("sublet_serve_requests_total",
                                  "Requests handled (all verbs)")),
      hits_(registry_.counter("sublet_serve_hits_total",
                              "EXACT/LPM lookups that found a record")),
      misses_(registry_.counter("sublet_serve_misses_total",
                                "EXACT/LPM lookups with no record")),
      malformed_(registry_.counter("sublet_serve_malformed_total",
                                   "Requests rejected as malformed")),
      shed_(registry_.counter("sublet_serve_shed_total",
                              "Connections refused at the concurrency cap")),
      timeouts_(registry_.counter("sublet_serve_timeouts_total",
                                  "Connections cut at an idle/write deadline")),
      accept_retries_(registry_.counter(
          "sublet_serve_accept_retries_total",
          "Transient accept() errors survived by the accept loop")),
      reloads_(registry_.counter("sublet_serve_reloads_total",
                                 "Successful snapshot hot swaps")),
      reload_failures_(registry_.counter(
          "sublet_serve_reload_failures_total",
          "Rejected RELOADs (previous engine kept serving)")),
      generation_gauge_(registry_.gauge("sublet_serve_generation",
                                        "Current engine generation")),
      active_conns_gauge_(registry_.gauge(
          "sublet_serve_active_connections", "Currently open connections")),
      latency_(registry_.histogram("sublet_serve_latency_ns",
                                   "Per-request handling latency")) {}

QueryServer::~QueryServer() { stop(); }

std::shared_ptr<const EngineState> QueryServer::engine() const {
  std::lock_guard<std::mutex> lock(engine_mu_);
  return engine_;
}

std::size_t QueryServer::active_connections() const {
  std::lock_guard<std::mutex> lock(conns_mu_);
  return conns_.size();
}

Expected<std::uint16_t> QueryServer::start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return fail("socket(): " + std::string(strerror(errno)));
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    std::string message = "bind(): " + std::string(strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return fail(std::move(message));
  }
  if (::listen(listen_fd_, 128) != 0) {
    std::string message = "listen(): " + std::string(strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return fail(std::move(message));
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  start_time_ = steady_clock::now();
  pool_ = std::make_unique<par::ThreadPool>(options_.threads);
  accept_thread_ = std::thread([this] { accept_loop(); });
  return port_;
}

void QueryServer::accept_loop() {
  int backoff_ms = 0;
  for (;;) {
    if (stop_.load(std::memory_order_acquire)) return;
    int ready = wait_fd(listen_fd_, POLLIN, kPollSliceMs);
    if (ready == 0) continue;  // slice expired; re-check stop_
    if (ready < 0) return;     // listener gone
    int injected = 0;
    int fd;
    if (fault::inject("serve.accept", &injected)) {
      fd = -1;
      errno = injected;
    } else {
      fd = ::accept(listen_fd_, nullptr, nullptr);
    }
    if (fd < 0) {
      if (errno == EINTR) continue;
      if (stop_.load(std::memory_order_acquire)) return;
      if (transient_accept_error(errno)) {
        accept_retries_.add(1);
        backoff_ms = backoff_ms == 0 ? 1 : std::min(backoff_ms * 2, 200);
        SUBLET_LOG(kWarn) << "accept(): " << strerror(errno)
                          << "; retrying in " << backoff_ms << "ms";
        std::unique_lock<std::mutex> lock(stop_mu_);
        stop_cv_.wait_for(lock, std::chrono::milliseconds(backoff_ms), [this] {
          return stop_.load(std::memory_order_acquire);
        });
        continue;
      }
      SUBLET_LOG(kError) << "accept(): " << strerror(errno)
                         << "; accept loop exiting";
      return;
    }
    backoff_ms = 0;
    if (stop_.load(std::memory_order_acquire)) {
      ::close(fd);
      return;
    }
    if (options_.max_conns > 0 &&
        active_connections() >= options_.max_conns) {
      // Shed instead of queueing unboundedly: one line, then close.
      shed_.add(1);
      write_deadline(fd, "{\"error\":\"overloaded\"}\n");
      ::close(fd);
      continue;
    }
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      conns_.insert(fd);
    }
    pool_->submit([this, fd] { handle_connection(fd); });
  }
}

bool QueryServer::write_deadline(int fd, std::string_view data) {
  const auto deadline =
      steady_clock::now() + std::chrono::milliseconds(options_.io_timeout_ms);
  while (!data.empty()) {
    if (options_.io_timeout_ms > 0) {
      auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
                           deadline - steady_clock::now())
                           .count();
      if (remaining <= 0) {
        timeouts_.add(1);
        return false;
      }
      int ready = wait_fd(fd, POLLOUT, static_cast<int>(remaining));
      if (ready == 0) {
        timeouts_.add(1);
        return false;
      }
      if (ready < 0) return false;
    }
    int injected = 0;
    ssize_t n;
    if (fault::inject("serve.write", &injected)) {
      n = -1;
      errno = injected;
    } else {
      n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    }
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    data.remove_prefix(static_cast<std::size_t>(n));
  }
  return true;
}

void QueryServer::handle_connection(int fd) {
  std::string buffer;
  char chunk[4096];
  auto last_activity = steady_clock::now();
  for (;;) {
    std::size_t nl = buffer.find('\n');
    if (nl != std::string::npos) {
      std::string line = buffer.substr(0, nl);
      buffer.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      std::string response = handle_request(line);
      response += '\n';
      if (!write_deadline(fd, response)) break;
      if (stop_.load(std::memory_order_acquire)) break;
      last_activity = steady_clock::now();
      continue;
    }
    if (buffer.size() > kMaxBufferedInput) break;
    // Wait for more input in short slices so both the idle deadline and a
    // concurrent stop() are honored promptly.
    bool idle_expired = false;
    int ready = -1;
    for (;;) {
      if (stop_.load(std::memory_order_acquire)) break;
      int slice = kPollSliceMs;
      if (options_.idle_timeout_ms > 0) {
        auto idle_ms =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                steady_clock::now() - last_activity)
                .count();
        auto remaining = options_.idle_timeout_ms - idle_ms;
        if (remaining <= 0) {
          idle_expired = true;
          break;
        }
        slice = static_cast<int>(std::min<long long>(slice, remaining));
      }
      ready = wait_fd(fd, POLLIN, slice);
      if (ready != 0) break;  // readable, hung up, or error
    }
    if (stop_.load(std::memory_order_acquire)) break;
    if (idle_expired) {
      // A slow-loris peer (bytes but never a newline, or silence) is cut
      // at the deadline; the notice is best-effort.
      timeouts_.add(1);
      write_deadline(fd, "{\"error\":\"idle timeout\"}\n");
      break;
    }
    if (ready < 0) break;
    int injected = 0;
    ssize_t n;
    if (fault::inject("serve.read", &injected)) {
      n = -1;
      errno = injected;
    } else {
      n = ::recv(fd, chunk, sizeof(chunk), 0);
    }
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // client closed, or stop() shut the socket down
    buffer.append(chunk, static_cast<std::size_t>(n));
    last_activity = steady_clock::now();
  }
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns_.erase(fd);
  }
  ::close(fd);
}

Expected<std::uint64_t> QueryServer::reload(const std::string& path) {
  // One RELOAD at a time; the load + validation runs here, off the other
  // handlers' hot path — they keep answering from the current engine.
  std::lock_guard<std::mutex> reload_lock(reload_mu_);
  const std::uint64_t next_generation = engine()->generation() + 1;
  auto next = EngineState::load(path, options_.reload_mode, next_generation);
  if (!next) {
    reload_failures_.add(1);
    SUBLET_LOG(kWarn) << "reload of " << path
                      << " rejected: " << next.error().to_string()
                      << " (keeping generation "
                      << next_generation - 1 << ")";
    return next.error();
  }
  {
    std::lock_guard<std::mutex> lock(engine_mu_);
    engine_ = std::move(*next);
  }
  reloads_.add(1);
  SUBLET_LOG(kInfo) << "reloaded generation " << next_generation << " from "
                    << path;
  return next_generation;
}

std::string QueryServer::health_json() const {
  std::shared_ptr<const EngineState> state = engine();
  const double uptime =
      std::chrono::duration_cast<std::chrono::duration<double>>(
          steady_clock::now() - start_time_)
          .count();
  JsonWriter json;
  json.begin_object();
  json.key("ok").value(true);
  json.key("generation").value(state->generation());
  json.key("snapshot").value(state->path());
  json.key("records").value(
      static_cast<std::uint64_t>(state->snapshot().record_count()));
  json.key("uptime_s").value(uptime);
  json.key("draining").value(stop_.load(std::memory_order_acquire));
  json.key("active_conns").value(
      static_cast<std::uint64_t>(active_connections()));
  json.key("reloads").value(reloads_.value());
  json.end_object();
  return json.take();
}

std::string QueryServer::handle_request(std::string_view line) {
  const auto start = std::chrono::steady_clock::now();
  requests_.add(1);
  std::string response;
  std::vector<std::string_view> parts = split_ws(line);
  const std::string_view verb = parts.empty() ? std::string_view() : parts[0];
  auto parse_query = [](std::string_view text) -> std::optional<Prefix> {
    if (auto prefix = Prefix::parse(text, /*canonicalize=*/true)) {
      return prefix;
    }
    if (auto addr = Ipv4Addr::parse(text)) return Prefix::make(*addr, 32);
    return std::nullopt;
  };
  if (iequals(verb, "STATS") && parts.size() == 1) {
    response = stats().to_json();
    // Splice in the engine-level aggregate + memory breakdown as a
    // trailing "snapshot" object. The counter fields stay first and
    // unchanged so existing scrapers' substring checks keep passing.
    const std::string snap_json = engine()->engine().snapshot_stats_json();
    response.insert(response.size() - 1, ",\"snapshot\":" + snap_json);
  } else if (iequals(verb, "METRICS") && parts.size() == 1) {
    // The one multi-line response in the protocol; metrics_text() ends
    // with a "# EOF" line so clients know where the body stops.
    response = metrics_text();
  } else if (iequals(verb, "HEALTH") && parts.size() == 1) {
    response = health_json();
  } else if (iequals(verb, "RELOAD") && parts.size() == 2) {
    auto swapped = reload(std::string(parts[1]));
    if (swapped) {
      JsonWriter json;
      json.begin_object();
      json.key("ok").value(true);
      json.key("generation").value(*swapped);
      json.key("records").value(
          static_cast<std::uint64_t>(engine()->snapshot().record_count()));
      json.end_object();
      response = json.take();
    } else {
      response = error_json("reload failed: " + swapped.error().to_string());
    }
  } else if (iequals(verb, "SHUTDOWN") && parts.size() == 1) {
    JsonWriter json;
    json.begin_object();
    json.key("ok").value(true);
    json.key("stopping").value(true);
    json.end_object();
    response = json.take();
    stop_.store(true, std::memory_order_release);
    stop_cv_.notify_all();
  } else if (iequals(verb, "MLPM") && parts.size() >= 2) {
    constexpr std::size_t kMaxBatch = 1024;
    if (parts.size() - 1 > kMaxBatch) {
      malformed_.add(1);
      response = error_json("batch too large (max 1024 addresses)");
    } else {
      // Scratch buffers are thread_local so a connection streaming MLPM
      // lines allocates nothing once they reach steady-state capacity;
      // the batch itself goes through the stride table's prefetched
      // two-pass lookup instead of one dependent-miss walk per address.
      static thread_local std::vector<std::uint32_t> addrs;
      static thread_local std::vector<std::uint32_t> records;
      addrs.clear();
      std::string_view bad;
      for (std::size_t i = 1; i < parts.size(); ++i) {
        auto addr = Ipv4Addr::parse(parts[i]);
        if (!addr) {
          bad = parts[i];
          break;
        }
        addrs.push_back(addr->value());
      }
      if (!bad.empty()) {
        malformed_.add(1);
        response = error_json("bad address '" + std::string(bad) + "'");
      } else {
        std::shared_ptr<const EngineState> state = engine();
        records.resize(addrs.size());
        state->engine().lookup_batch(addrs, records);
        JsonWriter json;
        json.begin_object();
        json.key("count").value(static_cast<std::uint64_t>(addrs.size()));
        json.begin_array("results");
        for (std::size_t i = 0; i < addrs.size(); ++i) {
          json.begin_object();
          json.key("query").value(Ipv4Addr(addrs[i]).to_string());
          if (records[i] == QueryEngine::kNoRecord) {
            misses_.add(1);
            json.key("found").value(false);
          } else {
            hits_.add(1);
            const snapshot::RecordRow& row =
                state->snapshot().record(records[i]);
            json.key("found").value(true);
            json.key("prefix").value(
                state->snapshot().prefix_of(row).to_string());
            json.key("group").value(leasing::group_name(
                static_cast<leasing::InferenceGroup>(row.group)));
            json.key("leased").value(leasing::is_leased(
                static_cast<leasing::InferenceGroup>(row.group)));
          }
          json.end_object();
        }
        json.end_array();
        json.end_object();
        response = json.take();
      }
    }
  } else if ((iequals(verb, "EXACT") || iequals(verb, "LPM")) &&
             parts.size() == 2) {
    std::optional<Prefix> query = parse_query(parts[1]);
    if (!query) {
      malformed_.add(1);
      response = error_json("bad prefix '" + std::string(parts[1]) + "'");
    } else {
      // One shared_ptr acquire per request: a concurrent RELOAD swap can
      // retire the old state only after this request drops its reference.
      std::shared_ptr<const EngineState> state = engine();
      std::optional<std::uint32_t> idx;
      if (iequals(verb, "EXACT")) {
        idx = state->engine().exact(*query);
      } else if (auto hit = state->engine().longest_match(*query)) {
        idx = hit->second;
      }
      if (idx) {
        hits_.add(1);
        response = state->engine().record_json(*idx);
      } else {
        misses_.add(1);
        JsonWriter json;
        json.begin_object();
        json.key("found").value(false);
        json.end_object();
        response = json.take();
      }
    }
  } else {
    malformed_.add(1);
    response = error_json(
        "unknown request '" + std::string(verb) +
        "' (want EXACT|LPM|MLPM|STATS|HEALTH|METRICS|RELOAD|SHUTDOWN)");
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  latency_.record(static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count()));
  return response;
}

StatsSnapshot QueryServer::stats() const {
  StatsSnapshot out;
  out.requests = requests_.value();
  out.hits = hits_.value();
  out.misses = misses_.value();
  out.malformed = malformed_.value();
  out.shed = shed_.value();
  out.timeouts = timeouts_.value();
  out.accept_retries = accept_retries_.value();
  out.reloads = reloads_.value();
  out.reload_failures = reload_failures_.value();
  out.generation = engine()->generation();
  // quantile() returns the bucket-midpoint in nanoseconds; dividing here
  // reproduces the old LatencyHistogram::quantile_us doubles bit-for-bit.
  out.p50_us = latency_.quantile(0.50) / 1000.0;
  out.p99_us = latency_.quantile(0.99) / 1000.0;
  return out;
}

std::string QueryServer::metrics_text() const {
  // Gauges are sampled, not event-driven: refresh them at scrape time.
  generation_gauge_.set(static_cast<std::int64_t>(engine()->generation()));
  active_conns_gauge_.set(
      static_cast<std::int64_t>(active_connections()));
  std::string out = obs::MetricsRegistry::global().prometheus_text();
  out += registry_.prometheus_text();
  out += "# EOF";
  return out;
}

void QueryServer::wait(const std::function<bool()>& predicate) {
  std::unique_lock<std::mutex> lock(stop_mu_);
  while (!stop_requested() && !(predicate && predicate())) {
    stop_cv_.wait_for(lock, std::chrono::milliseconds(100));
  }
}

void QueryServer::stop() {
  stop_.store(true, std::memory_order_release);
  stop_cv_.notify_all();
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  // Graceful drain: handlers notice stop_ within one poll slice, finish
  // the request in flight, and close. Only connections still open at the
  // deadline are forced.
  const auto deadline =
      steady_clock::now() +
      std::chrono::milliseconds(std::max(0, options_.drain_timeout_ms));
  while (steady_clock::now() < deadline) {
    if (active_connections() == 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (int fd : conns_) ::shutdown(fd, SHUT_RDWR);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    // Connections accepted while stop() was running registered after the
    // first pass; the accept thread is joined, so this pass is complete.
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (int fd : conns_) ::shutdown(fd, SHUT_RDWR);
  }
  pool_.reset();  // drains queued handlers, then joins the workers
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

}  // namespace sublet::serve
