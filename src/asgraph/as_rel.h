// AS relationship dataset (CAIDA serial-1 format) and queries.
//
// File format, one edge per line:
//   # comment
//   <provider-as>|<customer-as>|-1
//   <peer-as>|<peer-as>|0
// The classifier (paper step 5, groups 3-4) only asks whether a direct
// relationship exists between two ASes; the directional queries support the
// ecosystem analysis and the Gao-style inference extension.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "netbase/asn.h"
#include "util/expected.h"

namespace sublet::asgraph {

enum class Relationship {
  kNone,      ///< no direct edge
  kProvider,  ///< a is a provider of b
  kCustomer,  ///< a is a customer of b
  kPeer,      ///< settlement-free peers
};

class AsRelationships {
 public:
  /// Add a provider→customer edge.
  void add_p2c(Asn provider, Asn customer);
  /// Add a peer edge (symmetric).
  void add_p2p(Asn a, Asn b);

  /// Relationship of `a` to `b`.
  Relationship rel(Asn a, Asn b) const;

  /// True if any direct edge (p2c, c2p, or p2p) connects the two.
  bool has_edge(Asn a, Asn b) const { return rel(a, b) != Relationship::kNone; }

  std::vector<Asn> providers_of(Asn asn) const;
  std::vector<Asn> customers_of(Asn asn) const;
  std::vector<Asn> peers_of(Asn asn) const;

  /// Node degree (distinct neighbors), used by the Gao inference heuristic.
  std::size_t degree(Asn asn) const;

  /// Number of undirected relationship edges.
  std::size_t edge_count() const { return edges_.size() / 2; }

  /// Parse the serial-1 format. Bad lines are diagnosed and skipped.
  static AsRelationships parse(std::istream& in, std::string source = {},
                               std::vector<Error>* diagnostics = nullptr);
  static AsRelationships load(const std::string& path,
                              std::vector<Error>* diagnostics = nullptr);

  /// Serialize back to serial-1 (sorted, deterministic).
  void write(std::ostream& out) const;

 private:
  static std::uint64_t key(Asn a, Asn b) {
    return (static_cast<std::uint64_t>(a.value()) << 32) | b.value();
  }
  // edge key (a<<32|b) -> relationship of a to b; both directions stored.
  std::unordered_map<std::uint64_t, Relationship> edges_;
  std::unordered_map<std::uint32_t, std::vector<Asn>> neighbors_;
};

}  // namespace sublet::asgraph
