// Valley-free (Gao-style) relationship inference from AS paths.
//
// Extension feature (DESIGN.md §5.4 / ablation A1): when a curated
// relationship dataset is unavailable or deliberately degraded, an
// approximation can be inferred from the observed AS paths themselves —
// the same bootstrapping CAIDA's serial-1 dataset performs at scale.
//
// Heuristic: the highest-degree AS on each path is its "top"; edges on the
// uphill side are customer→provider, on the downhill side provider→
// customer. Votes are accumulated per edge across all paths and the
// majority orientation wins; near-ties between high-degree neighbors of
// the top become peer edges.
#pragma once

#include <vector>

#include "asgraph/as_rel.h"

namespace sublet::asgraph {

struct InferOptions {
  /// Minimum votes an edge needs before it is emitted.
  int min_votes = 1;
  /// |p2c votes - c2p votes| <= tie_margin → peer edge.
  int tie_margin = 0;
};

/// Infer relationships from flattened AS paths (loop-free, origin last).
AsRelationships infer_relationships(
    const std::vector<std::vector<Asn>>& paths, InferOptions options = {});

}  // namespace sublet::asgraph
