// Combined relatedness view used by the lease classifier.
//
// Paper step 5 asks one question of the AS-level data: "is the leaf's BGP
// origin related to the holder's ASes?". Related means the same AS, a
// direct relationship edge (provider/customer/peer), or siblings under one
// organization. The sibling component is exactly what the paper's Vodafone
// false positives were missing (§6.2) — ablation A2 toggles it.
#pragma once

#include "asgraph/as2org.h"
#include "asgraph/as_rel.h"

namespace sublet::asgraph {

struct RelatednessOptions {
  bool use_relationships = true;
  bool use_siblings = true;
};

class AsGraph {
 public:
  /// Both pointers may be null (that component is then skipped). Does not
  /// take ownership; the datasets must outlive the graph.
  AsGraph(const AsRelationships* relationships, const As2Org* orgs,
          RelatednessOptions options = {})
      : relationships_(relationships), orgs_(orgs), options_(options) {}

  /// Self, direct edge, or sibling.
  bool related(Asn a, Asn b) const {
    if (a == b) return true;
    if (options_.use_relationships && relationships_ &&
        relationships_->has_edge(a, b)) {
      return true;
    }
    if (options_.use_siblings && orgs_ && orgs_->siblings(a, b)) return true;
    return false;
  }

  /// True if `asn` is related to any AS in `set`.
  template <typename Container>
  bool related_to_any(Asn asn, const Container& set) const {
    for (Asn other : set) {
      if (related(asn, other)) return true;
    }
    return false;
  }

  const AsRelationships* relationships() const { return relationships_; }
  const As2Org* orgs() const { return orgs_; }

 private:
  const AsRelationships* relationships_;
  const As2Org* orgs_;
  RelatednessOptions options_;
};

}  // namespace sublet::asgraph
