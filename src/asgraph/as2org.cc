#include "asgraph/as2org.h"

#include <algorithm>
#include <fstream>
#include <istream>
#include <map>
#include <ostream>
#include <stdexcept>

#include "util/strings.h"

namespace sublet::asgraph {

namespace {
const std::string kEmpty;
}

void As2Org::add_mapping(Asn asn, std::string org_id, std::string as_name) {
  org_to_asns_[org_id].push_back(asn);
  asn_to_org_[asn.value()] = {std::move(org_id), std::move(as_name)};
}

void As2Org::add_org(std::string org_id, std::string name,
                     std::string country) {
  orgs_[std::move(org_id)] = {std::move(name), std::move(country)};
}

const std::string& As2Org::org_of(Asn asn) const {
  auto it = asn_to_org_.find(asn.value());
  return it == asn_to_org_.end() ? kEmpty : it->second.org_id;
}

const std::string& As2Org::org_name(const std::string& org_id) const {
  auto it = orgs_.find(org_id);
  if (it == orgs_.end() || it->second.name.empty()) return org_id;
  return it->second.name;
}

const std::string& As2Org::org_country(const std::string& org_id) const {
  auto it = orgs_.find(org_id);
  return it == orgs_.end() ? kEmpty : it->second.country;
}

bool As2Org::siblings(Asn a, Asn b) const {
  const std::string& org_a = org_of(a);
  return !org_a.empty() && org_a == org_of(b);
}

std::vector<Asn> As2Org::asns_of_org(const std::string& org_id) const {
  auto it = org_to_asns_.find(org_id);
  return it == org_to_asns_.end() ? std::vector<Asn>{} : it->second;
}

As2Org As2Org::parse(std::istream& in, std::string source,
                     std::vector<Error>* diagnostics) {
  As2Org out;
  enum class Section { kUnknown, kAut, kOrg } section = Section::kUnknown;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    std::string_view view = trim(line);
    if (view.empty()) continue;
    if (view.front() == '#') {
      if (view.find("aut|") != std::string_view::npos) {
        section = Section::kAut;
      } else if (view.find("org_id|") != std::string_view::npos) {
        section = Section::kOrg;
      }
      continue;
    }
    auto fields = split(view, '|');
    if (section == Section::kAut && fields.size() >= 4) {
      auto asn = Asn::parse(fields[0]);
      if (!asn) {
        if (diagnostics) {
          diagnostics->push_back(fail("bad aut line", source, line_no));
        }
        continue;
      }
      out.add_mapping(*asn, std::string(fields[3]), std::string(fields[2]));
    } else if (section == Section::kOrg && fields.size() >= 4) {
      out.add_org(std::string(fields[0]), std::string(fields[2]),
                  std::string(fields[3]));
    } else {
      if (diagnostics) {
        diagnostics->push_back(
            fail("line outside a recognized section", source, line_no));
      }
    }
  }
  return out;
}

As2Org As2Org::load(const std::string& path,
                    std::vector<Error>* diagnostics) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open as2org: " + path);
  return parse(in, path, diagnostics);
}

void As2Org::write(std::ostream& out) const {
  out << "# format: aut|changed|aut_name|org_id|opaque_id|source\n";
  std::map<std::uint32_t, const Mapping*> sorted_auts;
  for (const auto& [asn, mapping] : asn_to_org_) {
    sorted_auts[asn] = &mapping;
  }
  for (const auto& [asn, mapping] : sorted_auts) {
    out << asn << "|20240401|" << mapping->as_name << '|' << mapping->org_id
        << "|*|SIM\n";
  }
  out << "# format: org_id|changed|org_name|country|source\n";
  std::map<std::string, const OrgInfo*> sorted_orgs;
  for (const auto& [id, info] : orgs_) sorted_orgs[id] = &info;
  for (const auto& [id, info] : sorted_orgs) {
    out << id << "|20240401|" << info->name << '|' << info->country
        << "|SIM\n";
  }
}

}  // namespace sublet::asgraph
