#include "asgraph/infer.h"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <unordered_map>
#include <unordered_set>

namespace sublet::asgraph {

AsRelationships infer_relationships(
    const std::vector<std::vector<Asn>>& paths, InferOptions options) {
  // Pass 1: node degree = number of distinct neighbors over all paths.
  std::unordered_map<std::uint32_t, std::unordered_set<std::uint32_t>> adj;
  for (const auto& path : paths) {
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      if (path[i] == path[i + 1]) continue;  // prepending
      adj[path[i].value()].insert(path[i + 1].value());
      adj[path[i + 1].value()].insert(path[i].value());
    }
  }
  auto degree = [&](Asn asn) {
    auto it = adj.find(asn.value());
    return it == adj.end() ? std::size_t{0} : it->second.size();
  };

  // Pass 2: vote per undirected edge. Positive = first-listed AS provides
  // transit to the second (p2c in path order toward the origin).
  std::map<std::pair<std::uint32_t, std::uint32_t>, int> votes;
  auto vote = [&](Asn provider, Asn customer, int weight) {
    std::uint32_t a = provider.value(), b = customer.value();
    if (a < b) {
      votes[{a, b}] += weight;
    } else {
      votes[{b, a}] -= weight;
    }
  };

  for (const auto& path : paths) {
    // De-duplicate prepending.
    std::vector<Asn> p;
    for (Asn asn : path) {
      if (p.empty() || p.back() != asn) p.push_back(asn);
    }
    if (p.size() < 2) continue;
    std::size_t top = 0;
    for (std::size_t i = 1; i < p.size(); ++i) {
      if (degree(p[i]) > degree(p[top])) top = i;
    }
    // Uphill: origin side of the path climbs toward the top. The path is
    // stored collector-first, origin-last; the collector side [0..top] is
    // downhill from top, the origin side [top..end] is downhill too — i.e.
    // the top provides transit in both directions.
    for (std::size_t i = 0; i + 1 < p.size(); ++i) {
      if (i + 1 <= top) {
        vote(p[i + 1], p[i], 1);  // p[i+1] is closer to top: provider
      } else {
        vote(p[i], p[i + 1], 1);  // descending after top: provider first
      }
    }
  }

  AsRelationships rels;
  for (const auto& [edge, net] : votes) {
    Asn a(edge.first), b(edge.second);
    if (std::abs(net) < options.min_votes && net != 0) continue;
    if (std::abs(net) <= options.tie_margin) {
      rels.add_p2p(a, b);
    } else if (net > 0) {
      rels.add_p2c(a, b);
    } else {
      rels.add_p2c(b, a);
    }
  }
  return rels;
}

}  // namespace sublet::asgraph
