#include "asgraph/as_rel.h"

#include <algorithm>
#include <fstream>
#include <istream>
#include <map>
#include <ostream>
#include <stdexcept>

#include "util/strings.h"

namespace sublet::asgraph {

void AsRelationships::add_p2c(Asn provider, Asn customer) {
  if (provider == customer) return;
  auto [it, inserted] =
      edges_.emplace(key(provider, customer), Relationship::kProvider);
  if (!inserted) return;
  edges_[key(customer, provider)] = Relationship::kCustomer;
  neighbors_[provider.value()].push_back(customer);
  neighbors_[customer.value()].push_back(provider);
}

void AsRelationships::add_p2p(Asn a, Asn b) {
  if (a == b) return;
  auto [it, inserted] = edges_.emplace(key(a, b), Relationship::kPeer);
  if (!inserted) return;
  edges_[key(b, a)] = Relationship::kPeer;
  neighbors_[a.value()].push_back(b);
  neighbors_[b.value()].push_back(a);
}

Relationship AsRelationships::rel(Asn a, Asn b) const {
  auto it = edges_.find(key(a, b));
  return it == edges_.end() ? Relationship::kNone : it->second;
}

namespace {
std::vector<Asn> filter_neighbors(
    const AsRelationships& rels,
    const std::unordered_map<std::uint32_t, std::vector<Asn>>& neighbors,
    Asn asn, Relationship wanted) {
  std::vector<Asn> out;
  auto it = neighbors.find(asn.value());
  if (it == neighbors.end()) return out;
  for (Asn n : it->second) {
    if (rels.rel(asn, n) == wanted) out.push_back(n);
  }
  return out;
}
}  // namespace

std::vector<Asn> AsRelationships::providers_of(Asn asn) const {
  return filter_neighbors(*this, neighbors_, asn, Relationship::kCustomer);
}

std::vector<Asn> AsRelationships::customers_of(Asn asn) const {
  return filter_neighbors(*this, neighbors_, asn, Relationship::kProvider);
}

std::vector<Asn> AsRelationships::peers_of(Asn asn) const {
  return filter_neighbors(*this, neighbors_, asn, Relationship::kPeer);
}

std::size_t AsRelationships::degree(Asn asn) const {
  auto it = neighbors_.find(asn.value());
  return it == neighbors_.end() ? 0 : it->second.size();
}

AsRelationships AsRelationships::parse(std::istream& in, std::string source,
                                       std::vector<Error>* diagnostics) {
  AsRelationships rels;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    std::string_view view = trim(line);
    if (view.empty() || view.front() == '#') continue;
    auto fields = split(view, '|');
    if (fields.size() < 3) {
      if (diagnostics) {
        diagnostics->push_back(fail("expected a|b|rel", source, line_no));
      }
      continue;
    }
    auto a = Asn::parse(fields[0]);
    auto b = Asn::parse(fields[1]);
    std::string_view rel_text = trim(fields[2]);
    if (!a || !b || (rel_text != "-1" && rel_text != "0")) {
      if (diagnostics) {
        diagnostics->push_back(
            fail("bad edge '" + std::string(view) + "'", source, line_no));
      }
      continue;
    }
    if (rel_text == "-1") {
      rels.add_p2c(*a, *b);
    } else {
      rels.add_p2p(*a, *b);
    }
  }
  return rels;
}

AsRelationships AsRelationships::load(const std::string& path,
                                      std::vector<Error>* diagnostics) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open AS relationships: " + path);
  return parse(in, path, diagnostics);
}

void AsRelationships::write(std::ostream& out) const {
  out << "# AS relationships (serial-1): <a>|<b>|<-1:p2c, 0:p2p>\n";
  std::map<std::pair<std::uint32_t, std::uint32_t>, int> sorted;
  for (const auto& [k, rel] : edges_) {
    std::uint32_t a = static_cast<std::uint32_t>(k >> 32);
    std::uint32_t b = static_cast<std::uint32_t>(k);
    if (rel == Relationship::kProvider) {
      sorted[{a, b}] = -1;
    } else if (rel == Relationship::kPeer && a < b) {
      sorted[{a, b}] = 0;
    }
  }
  for (const auto& [ab, rel] : sorted) {
    out << ab.first << '|' << ab.second << '|' << rel << '\n';
  }
}

}  // namespace sublet::asgraph
