// AS → organization mapping (CAIDA as2org flat format).
//
// File layout, two sections introduced by format comments:
//   # format: aut|changed|aut_name|org_id|opaque_id|source
//   64500|20240401|EXAMPLE-AS|ORG-1|*|SIM
//   # format: org_id|changed|org_name|country|source
//   ORG-1|20240401|Example Networks|SE|SIM
// Sibling ASes (same org_id) extend the classifier's relatedness check and
// drive the A2 subsidiary ablation.
#pragma once

#include <iosfwd>
#include <string>
#include <unordered_map>
#include <vector>

#include "netbase/asn.h"
#include "util/expected.h"

namespace sublet::asgraph {

class As2Org {
 public:
  void add_mapping(Asn asn, std::string org_id, std::string as_name = {});
  void add_org(std::string org_id, std::string name, std::string country = {});

  /// Org handle for an AS, or empty if unmapped.
  const std::string& org_of(Asn asn) const;

  /// Human-readable org name for a handle (falls back to the handle).
  const std::string& org_name(const std::string& org_id) const;

  /// Registered country of an organization ("" if unknown).
  const std::string& org_country(const std::string& org_id) const;

  /// True when both ASes map to the same organization.
  bool siblings(Asn a, Asn b) const;

  /// All ASes of one organization.
  std::vector<Asn> asns_of_org(const std::string& org_id) const;

  std::size_t mapping_count() const { return asn_to_org_.size(); }

  static As2Org parse(std::istream& in, std::string source = {},
                      std::vector<Error>* diagnostics = nullptr);
  static As2Org load(const std::string& path,
                     std::vector<Error>* diagnostics = nullptr);
  void write(std::ostream& out) const;

 private:
  struct Mapping {
    std::string org_id;
    std::string as_name;
  };
  struct OrgInfo {
    std::string name;
    std::string country;
  };
  std::unordered_map<std::uint32_t, Mapping> asn_to_org_;
  std::unordered_map<std::string, OrgInfo> orgs_;
  std::unordered_map<std::string, std::vector<Asn>> org_to_asns_;
};

}  // namespace sublet::asgraph
