// Dated RPKI snapshot archive.
//
// The paper consumes Job Snijders' RPKI archive at 30-minute granularity
// over the measurement window, and two years of history for Figure 3. The
// archive is a time-indexed sequence of VRP sets with point-in-time and
// interval queries.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "rpki/roa.h"

namespace sublet::rpki {

class RpkiArchive {
 public:
  /// Register a snapshot taken at `timestamp` (seconds since epoch).
  /// Re-adding the same timestamp replaces the snapshot.
  void add_snapshot(std::uint32_t timestamp, VrpSet vrps);

  /// The snapshot in effect at `timestamp`: the latest snapshot at-or-
  /// before it, or nullptr when `timestamp` precedes the archive.
  const VrpSet* at(std::uint32_t timestamp) const;

  /// All snapshot timestamps, ascending.
  std::vector<std::uint32_t> timestamps() const;

  /// Union of VRPs covering `prefix` across snapshots in
  /// [from, to] — the "ROAs for leased prefixes over the window" query.
  std::vector<Roa> covering_in_window(const Prefix& prefix,
                                      std::uint32_t from,
                                      std::uint32_t to) const;

  /// History of exact-match ROA ASNs for a prefix: one (timestamp, asns)
  /// row per snapshot in [from, to]. Feeds the Figure 3 timeline.
  std::vector<std::pair<std::uint32_t, std::vector<Asn>>> roa_history(
      const Prefix& prefix, std::uint32_t from, std::uint32_t to) const;

  std::size_t snapshot_count() const { return snapshots_.size(); }

  /// Save one file per snapshot under dir as vrps-<timestamp>.csv.
  void save_directory(const std::string& dir) const;
  /// Load every vrps-*.csv from a directory.
  static RpkiArchive load_directory(const std::string& dir,
                                    std::vector<Error>* diagnostics = nullptr);

 private:
  std::map<std::uint32_t, VrpSet> snapshots_;
};

}  // namespace sublet::rpki
