#include "rpki/roa.h"

#include <algorithm>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "util/strings.h"

namespace sublet::rpki {

void VrpSet::add(const Roa& roa) {
  std::vector<Roa>* bucket = trie_.find(roa.prefix);
  if (!bucket) bucket = &trie_.insert(roa.prefix, {});
  if (std::find(bucket->begin(), bucket->end(), roa) != bucket->end()) return;
  bucket->push_back(roa);
  ++count_;
}

VrpSet VrpSet::clone() const {
  VrpSet out;
  trie_.visit([&](const Prefix&, const std::vector<Roa>& bucket) {
    for (const Roa& roa : bucket) out.add(roa);
  });
  return out;
}

Validity VrpSet::validate(const Prefix& prefix, Asn origin) const {
  // validate() is the abuse analysis' hot loop: reuse a thread-local
  // scratch vector through the out-param overload so steady state does
  // zero allocations per call.
  static thread_local std::vector<
      std::pair<Prefix, const std::vector<Roa>*>>
      covering_entries;
  trie_.all_covering(prefix, covering_entries);
  if (covering_entries.empty()) return Validity::kNotFound;
  for (const auto& [vrp_prefix, bucket] : covering_entries) {
    for (const Roa& roa : *bucket) {
      if (roa.asn == origin && !origin.is_as0() &&
          prefix.length() <= roa.effective_max_length()) {
        return Validity::kValid;
      }
    }
  }
  return Validity::kInvalid;
}

std::vector<Roa> VrpSet::covering(const Prefix& prefix) const {
  std::vector<Roa> out;
  for (const auto& [vrp_prefix, bucket] : trie_.all_covering(prefix)) {
    out.insert(out.end(), bucket->begin(), bucket->end());
  }
  return out;
}

std::vector<Roa> VrpSet::exact(const Prefix& prefix) const {
  const std::vector<Roa>* bucket = trie_.find(prefix);
  return bucket ? *bucket : std::vector<Roa>{};
}

VrpSet VrpSet::parse_csv(std::istream& in, std::string source,
                         std::vector<Error>* diagnostics) {
  VrpSet set;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    std::string_view view = trim(line);
    if (view.empty() || view.front() == '#') continue;
    if (istarts_with(view, "ASN,")) continue;  // header row
    auto fields = split(view, ',');
    if (fields.size() < 3) {
      if (diagnostics) {
        diagnostics->push_back(
            fail("expected ASN,prefix,maxlen", source, line_no));
      }
      continue;
    }
    auto asn = Asn::parse(trim(fields[0]));
    auto prefix = Prefix::parse(trim(fields[1]));
    auto max_len = parse_u32(trim(fields[2]));
    if (!asn || !prefix || !max_len || *max_len > 32) {
      if (diagnostics) {
        diagnostics->push_back(
            fail("bad VRP '" + std::string(view) + "'", source, line_no));
      }
      continue;
    }
    set.add({*prefix, static_cast<int>(*max_len), *asn});
  }
  return set;
}

VrpSet VrpSet::load_csv(const std::string& path,
                        std::vector<Error>* diagnostics) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open VRP csv: " + path);
  return parse_csv(in, path, diagnostics);
}

void VrpSet::write_csv(std::ostream& out) const {
  out << "ASN,IP Prefix,Max Length,Trust Anchor\n";
  trie_.visit([&](const Prefix&, const std::vector<Roa>& bucket) {
    for (const Roa& roa : bucket) {
      out << roa.asn.to_string() << ',' << roa.prefix.to_string() << ','
          << roa.effective_max_length() << ",sim\n";
    }
  });
}

}  // namespace sublet::rpki
