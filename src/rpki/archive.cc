#include "rpki/archive.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <stdexcept>

#include "util/strings.h"

namespace sublet::rpki {

void RpkiArchive::add_snapshot(std::uint32_t timestamp, VrpSet vrps) {
  snapshots_[timestamp] = std::move(vrps);
}

const VrpSet* RpkiArchive::at(std::uint32_t timestamp) const {
  auto it = snapshots_.upper_bound(timestamp);
  if (it == snapshots_.begin()) return nullptr;
  return &std::prev(it)->second;
}

std::vector<std::uint32_t> RpkiArchive::timestamps() const {
  std::vector<std::uint32_t> out;
  out.reserve(snapshots_.size());
  for (const auto& [ts, vrps] : snapshots_) out.push_back(ts);
  return out;
}

std::vector<Roa> RpkiArchive::covering_in_window(const Prefix& prefix,
                                                 std::uint32_t from,
                                                 std::uint32_t to) const {
  std::set<Roa> unique;
  for (auto it = snapshots_.lower_bound(from);
       it != snapshots_.end() && it->first <= to; ++it) {
    for (const Roa& roa : it->second.covering(prefix)) unique.insert(roa);
  }
  return {unique.begin(), unique.end()};
}

std::vector<std::pair<std::uint32_t, std::vector<Asn>>>
RpkiArchive::roa_history(const Prefix& prefix, std::uint32_t from,
                         std::uint32_t to) const {
  std::vector<std::pair<std::uint32_t, std::vector<Asn>>> out;
  for (auto it = snapshots_.lower_bound(from);
       it != snapshots_.end() && it->first <= to; ++it) {
    std::vector<Asn> asns;
    for (const Roa& roa : it->second.exact(prefix)) asns.push_back(roa.asn);
    std::sort(asns.begin(), asns.end());
    asns.erase(std::unique(asns.begin(), asns.end()), asns.end());
    out.emplace_back(it->first, std::move(asns));
  }
  return out;
}

void RpkiArchive::save_directory(const std::string& dir) const {
  std::filesystem::create_directories(dir);
  for (const auto& [ts, vrps] : snapshots_) {
    std::string path = dir + "/vrps-" + std::to_string(ts) + ".csv";
    std::ofstream out(path);
    if (!out) throw std::runtime_error("cannot write " + path);
    vrps.write_csv(out);
  }
}

RpkiArchive RpkiArchive::load_directory(const std::string& dir,
                                        std::vector<Error>* diagnostics) {
  RpkiArchive archive;
  if (!std::filesystem::is_directory(dir)) {
    throw std::runtime_error("not a directory: " + dir);
  }
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    std::string name = entry.path().filename().string();
    if (name.rfind("vrps-", 0) != 0 || !name.ends_with(".csv")) continue;
    auto ts = parse_u32(
        std::string_view(name).substr(5, name.size() - 5 - 4));
    if (!ts) {
      if (diagnostics) {
        diagnostics->push_back(fail("bad snapshot filename " + name, dir));
      }
      continue;
    }
    archive.add_snapshot(*ts,
                         VrpSet::load_csv(entry.path().string(), diagnostics));
  }
  return archive;
}

}  // namespace sublet::rpki
