// RPKI ROAs, VRP sets, and RFC 6811 route-origin validation.
//
// The abuse analysis (§6.4) asks which leased prefixes have ROAs and
// whether those ROAs authorize blocklisted ASes; the Figure 3 timeline
// walks ROA history including AS0 ROAs that facilitators like IPXO create
// between leases (§6.5) to keep the space unroutable.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "netbase/asn.h"
#include "netbase/prefix_trie.h"
#include "util/expected.h"

namespace sublet::rpki {

/// One Validated ROA Payload: (prefix, maxLength, asn).
struct Roa {
  Prefix prefix;
  int max_length = 0;  ///< 0 or < prefix length means "= prefix length"
  Asn asn;

  int effective_max_length() const {
    return max_length >= prefix.length() ? max_length : prefix.length();
  }

  friend auto operator<=>(const Roa&, const Roa&) = default;
};

/// RFC 6811 route validity states.
enum class Validity { kValid, kInvalid, kNotFound };

constexpr std::string_view validity_name(Validity v) {
  switch (v) {
    case Validity::kValid: return "valid";
    case Validity::kInvalid: return "invalid";
    case Validity::kNotFound: return "not-found";
  }
  return "?";
}

/// A set of VRPs with covering queries and origin validation.
class VrpSet {
 public:
  void add(const Roa& roa);

  /// RFC 6811: NotFound if no VRP covers the prefix; Valid if some covering
  /// VRP matches origin and maxLength; Invalid otherwise. AS0 ROAs can
  /// never validate a route (AS0 is reserved), so they force Invalid.
  Validity validate(const Prefix& prefix, Asn origin) const;

  /// All VRPs whose prefix covers `prefix` (regardless of maxLength).
  std::vector<Roa> covering(const Prefix& prefix) const;

  /// True if any ROA covers the prefix (the §6.4 "has a ROA" test).
  bool any_roa_for(const Prefix& prefix) const {
    return !covering(prefix).empty();
  }

  /// VRPs registered for exactly this prefix.
  std::vector<Roa> exact(const Prefix& prefix) const;

  std::size_t size() const { return count_; }

  /// Deep copy (the underlying trie is move-only).
  VrpSet clone() const;

  /// CSV in the routinator `vrps` layout: "ASN,IP Prefix,Max Length,TA".
  static VrpSet parse_csv(std::istream& in, std::string source = {},
                          std::vector<Error>* diagnostics = nullptr);
  static VrpSet load_csv(const std::string& path,
                         std::vector<Error>* diagnostics = nullptr);
  void write_csv(std::ostream& out) const;

 private:
  PrefixTrie<std::vector<Roa>> trie_;
  std::size_t count_ = 0;
};

}  // namespace sublet::rpki
