// IP geolocation databases and cross-database consistency.
//
// §8 of the paper observes that IP leasing feeds geolocation chaos:
// "prefixes on the IPXO marketplace geolocate to four different continents
// according to five geolocation databases". A GeoDb maps prefixes to
// country codes with longest-match lookup; the consistency analysis counts
// cross-database disagreement per prefix.
#pragma once

#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "netbase/prefix_trie.h"
#include "util/expected.h"

namespace sublet::geo {

/// One provider's geolocation snapshot.
class GeoDb {
 public:
  explicit GeoDb(std::string provider = {}) : provider_(std::move(provider)) {}

  const std::string& provider() const { return provider_; }

  void add(const Prefix& prefix, std::string country);

  /// Country of the most specific entry covering `prefix` ("" = unmapped).
  std::string lookup(const Prefix& prefix) const;

  std::size_t size() const { return trie_.size(); }

  /// CSV rows "prefix,country"; '#' comments allowed.
  static GeoDb parse_csv(std::istream& in, std::string provider = {},
                         std::vector<Error>* diagnostics = nullptr);
  static GeoDb load_csv(const std::string& path, std::string provider = {},
                        std::vector<Error>* diagnostics = nullptr);
  void write_csv(std::ostream& out) const;

 private:
  std::string provider_;
  PrefixTrie<std::string> trie_;
};

/// Cross-database answers for one prefix.
struct GeoConsistency {
  std::vector<std::string> countries;  ///< one per db that had an answer
  std::size_t distinct = 0;            ///< number of distinct answers

  bool consistent() const { return distinct <= 1; }
};

/// Look `prefix` up in every database and count disagreement.
GeoConsistency check_consistency(const std::vector<GeoDb>& databases,
                                 const Prefix& prefix);

}  // namespace sublet::geo
