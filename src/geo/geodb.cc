#include "geo/geodb.h"

#include <algorithm>
#include <fstream>
#include <istream>
#include <ostream>
#include <set>
#include <stdexcept>

#include "util/strings.h"

namespace sublet::geo {

void GeoDb::add(const Prefix& prefix, std::string country) {
  trie_.insert(prefix, std::move(country));
}

std::string GeoDb::lookup(const Prefix& prefix) const {
  auto hit = trie_.most_specific_covering(prefix);
  return hit ? *hit->second : std::string{};
}

GeoDb GeoDb::parse_csv(std::istream& in, std::string provider,
                       std::vector<Error>* diagnostics) {
  GeoDb db(std::move(provider));
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    std::string_view view = trim(line);
    if (view.empty() || view.front() == '#') continue;
    auto comma = view.find(',');
    if (comma == std::string_view::npos) {
      if (diagnostics) {
        diagnostics->push_back(
            fail("expected prefix,country", db.provider_, line_no));
      }
      continue;
    }
    auto prefix = Prefix::parse(trim(view.substr(0, comma)));
    std::string_view country = trim(view.substr(comma + 1));
    if (!prefix || country.empty()) {
      if (diagnostics) {
        diagnostics->push_back(
            fail("bad row '" + std::string(view) + "'", db.provider_,
                 line_no));
      }
      continue;
    }
    db.add(*prefix, std::string(country));
  }
  return db;
}

GeoDb GeoDb::load_csv(const std::string& path, std::string provider,
                      std::vector<Error>* diagnostics) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open geodb: " + path);
  return parse_csv(in, std::move(provider), diagnostics);
}

void GeoDb::write_csv(std::ostream& out) const {
  out << "# prefix,country\n";
  trie_.visit([&](const Prefix& prefix, const std::string& country) {
    out << prefix.to_string() << ',' << country << '\n';
  });
}

GeoConsistency check_consistency(const std::vector<GeoDb>& databases,
                                 const Prefix& prefix) {
  GeoConsistency out;
  std::set<std::string> distinct;
  for (const GeoDb& db : databases) {
    std::string country = db.lookup(prefix);
    if (country.empty()) continue;
    out.countries.push_back(country);
    distinct.insert(std::move(country));
  }
  out.distinct = distinct.size();
  return out;
}

}  // namespace sublet::geo
