#include "rpsl/rpsl.h"

#include <istream>
#include <sstream>

#include "util/strings.h"

namespace sublet::rpsl {

std::string_view Object::get(std::string_view name) const {
  for (const auto& attr : attributes) {
    if (attr.name == name) return attr.value;
  }
  return {};
}

std::vector<std::string_view> Object::all(std::string_view name) const {
  std::vector<std::string_view> out;
  for (const auto& attr : attributes) {
    if (attr.name == name) out.push_back(attr.value);
  }
  return out;
}

std::string_view strip_inline_comment(std::string_view value) {
  auto hash = value.find('#');
  if (hash != std::string_view::npos) value = value.substr(0, hash);
  return trim(value);
}

Parser::Parser(std::istream& in, std::string source, std::size_t line_offset)
    : in_(in), source_(std::move(source)), line_no_(line_offset) {}

bool Parser::read_line(std::string& out) {
  if (has_pending_) {
    out = std::move(pending_);
    has_pending_ = false;
    return true;
  }
  if (!std::getline(in_, out)) return false;
  if (!out.empty() && out.back() == '\r') out.pop_back();
  ++line_no_;
  return true;
}

void Parser::unread_line(std::string line) {
  pending_ = std::move(line);
  has_pending_ = true;
}

std::optional<Object> Parser::next() {
  Object obj;
  std::string line;
  while (read_line(line)) {
    std::string_view view = line;
    bool is_comment = !view.empty() && view.front() == '%';
    bool is_blank = trim(view).empty();

    if (is_blank || is_comment) {
      if (!obj.attributes.empty()) return obj;  // blank line ends the object
      continue;
    }

    // Full-line '#' comment (only when not already inside an object value —
    // a '#' at column 0 is always a comment in the dumps we model).
    if (view.front() == '#') continue;

    bool is_continuation =
        view.front() == ' ' || view.front() == '\t' || view.front() == '+';
    if (is_continuation) {
      if (obj.attributes.empty()) {
        diagnostics_.push_back(
            fail("continuation line outside any object", source_, line_no_));
        continue;
      }
      std::string_view cont = view.substr(1);
      cont = strip_inline_comment(cont);
      if (!cont.empty()) {
        auto& value = obj.attributes.back().value;
        if (!value.empty()) value += ' ';
        value += cont;
      }
      continue;
    }

    auto colon = view.find(':');
    if (colon == std::string_view::npos) {
      diagnostics_.push_back(
          fail("line without attribute separator: '" + line + "'", source_,
               line_no_));
      continue;
    }
    std::string_view name = trim(view.substr(0, colon));
    if (name.empty()) {
      diagnostics_.push_back(fail("empty attribute name", source_, line_no_));
      continue;
    }
    std::string_view value = strip_inline_comment(view.substr(colon + 1));

    if (obj.attributes.empty()) {
      obj.line = line_no_;
      obj.attributes.reserve(8);  // typical objects carry 5-8 attributes
    }
    obj.attributes.push_back({to_lower(name), std::string(value)});
  }
  if (!obj.attributes.empty()) return obj;
  return std::nullopt;
}

std::vector<Object> parse_all(std::string_view text,
                              std::vector<Error>* diagnostics) {
  std::istringstream in{std::string(text)};
  Parser parser(in, "<buffer>");
  std::vector<Object> out;
  while (auto obj = parser.next()) out.push_back(std::move(*obj));
  if (diagnostics) *diagnostics = parser.diagnostics();
  return out;
}

}  // namespace sublet::rpsl
