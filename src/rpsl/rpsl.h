// RPSL-style WHOIS database parsing (RFC 2622 object syntax subset).
//
// RIPE, APNIC, and AFRINIC publish their databases as RPSL object blocks;
// ARIN's bulk format and LACNIC's export are close cousins (key: value
// blocks with different vocabularies). This module parses the on-disk
// syntax only; whoisdb/ interprets the objects.
//
// Syntax handled:
//   - objects separated by one or more blank lines;
//   - "attribute:  value" lines; attribute names are case-insensitive and
//     are normalized to lowercase;
//   - continuation lines starting with space, tab, or '+';
//   - full-line comments starting with '%' or '#';
//   - inline "# ..." comments stripped from values;
//   - an object's class is the name of its first attribute.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/expected.h"

namespace sublet::rpsl {

struct Attribute {
  std::string name;   ///< lowercased
  std::string value;  ///< trimmed, continuations joined with a single space
};

struct Object {
  std::vector<Attribute> attributes;
  std::size_t line = 0;  ///< 1-based line of the first attribute

  /// Class of the object = name of the first attribute ("inetnum", ...).
  std::string_view cls() const {
    return attributes.empty() ? std::string_view{} : attributes.front().name;
  }

  /// First value of `name` (lowercase), or empty view.
  std::string_view get(std::string_view name) const;

  /// All values of `name`, in order.
  std::vector<std::string_view> all(std::string_view name) const;

  bool has(std::string_view name) const { return !get(name).empty(); }
};

/// Streaming parser over an istream. Usage:
///   Parser p(in, "ripe.db");
///   while (auto obj = p.next()) { ... }
/// Malformed lines are recorded in diagnostics() and skipped; parsing never
/// throws on bad content (only on stream I/O failure upstream).
class Parser {
 public:
  /// `source` is used in diagnostics only. Does not own the stream.
  /// `line_offset` is added to every reported line number — chunked
  /// parsing hands each worker a mid-file slice plus the slice's starting
  /// line so diagnostics match a whole-file parse exactly.
  explicit Parser(std::istream& in, std::string source = {},
                  std::size_t line_offset = 0);

  /// Next object, or nullopt at end of input.
  std::optional<Object> next();

  const std::vector<Error>& diagnostics() const { return diagnostics_; }

 private:
  std::istream& in_;
  std::string source_;
  std::size_t line_no_ = 0;
  std::string pending_;     ///< lookahead line
  bool has_pending_ = false;

  bool read_line(std::string& out);
  void unread_line(std::string line);

  std::vector<Error> diagnostics_;
};

/// Parse an entire buffer (convenience for tests and small files).
std::vector<Object> parse_all(std::string_view text,
                              std::vector<Error>* diagnostics = nullptr);

/// Strip an inline '#' comment from a value (respecting nothing fancier;
/// RPSL has no quoting).
std::string_view strip_inline_comment(std::string_view value);

}  // namespace sublet::rpsl
