// Loaded inference snapshot: validated views over one byte buffer.
//
// `Snapshot::open` reads (or mmaps) the file, checks magic/version/CRC and
// every section bound, then exposes the sections as typed spans — records,
// string pool, ASN/handle pools — plus `build_trie()` which adopts the
// frozen trie arena for prefix queries. All accessors are const and safe
// to share across server threads; the Snapshot must outlive every view.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "leasing/types.h"
#include "netbase/prefix_trie.h"
#include "snapshot/format.h"
#include "util/expected.h"

namespace sublet::snapshot {

/// Owns the snapshot bytes: either a heap buffer or an mmapped region.
class Buffer {
 public:
  Buffer() = default;
  explicit Buffer(std::vector<std::uint8_t> bytes);
  Buffer(Buffer&& other) noexcept;
  Buffer& operator=(Buffer&& other) noexcept;
  ~Buffer();

  Buffer(const Buffer&) = delete;
  Buffer& operator=(const Buffer&) = delete;

  static Expected<Buffer> read_file(const std::string& path);
  static Expected<Buffer> map_file(const std::string& path);

  std::span<const std::uint8_t> bytes() const;
  bool mapped() const { return map_ != nullptr; }

 private:
  std::vector<std::uint8_t> owned_;
  void* map_ = nullptr;
  std::size_t map_len_ = 0;
};

class Snapshot {
 public:
  enum class Mode { kRead, kMap };

  /// Open and fully validate a snapshot file. kMap uses mmap (the kernel
  /// pages sections in lazily); kRead slurps the file into a heap buffer.
  static Expected<Snapshot> open(const std::string& path,
                                 Mode mode = Mode::kMap);

  /// Validate an in-memory image (tests and the loopback bench).
  static Expected<Snapshot> from_bytes(std::vector<std::uint8_t> bytes);

  /// Owned section data for an in-memory snapshot that never touched a
  /// file: the catalog's delta apply merges validated base + delta
  /// sections into these vectors and adopts them directly, skipping the
  /// serialize/CRC/re-validate round trip a full image would cost.
  struct OwnedParts {
    std::vector<RecordRow> rows;
    std::string string_blob;
    std::vector<std::uint32_t> string_offsets;  ///< string_count + 1
    std::vector<std::uint32_t> asn_pool;
    std::vector<std::uint32_t> handle_pool;
  };

  /// Adopt owned parts without re-validation. The caller guarantees
  /// internal consistency (every row/pool reference in range, offsets
  /// monotone) — upheld by construction when the parts are a merge of
  /// individually validated snapshots and deltas (src/catalog/). A parts
  /// snapshot has no trie sections: pair it with a caller-built trie via
  /// QueryEngine::create(snap, trie).
  static Snapshot from_parts(OwnedParts parts);

  std::size_t record_count() const { return records_.size(); }
  const RecordRow& record(std::size_t idx) const { return records_[idx]; }
  std::span<const RecordRow> records() const { return records_; }

  std::string_view string_at(std::uint32_t id) const {
    return std::string_view(string_blob_.data() + string_offsets_[id],
                            string_offsets_[id + 1] - string_offsets_[id]);
  }

  Prefix prefix_of(const RecordRow& row) const {
    return *Prefix::make(Ipv4Addr(row.prefix_key), row.prefix_len);
  }
  Prefix root_prefix_of(const RecordRow& row) const {
    return *Prefix::make(Ipv4Addr(row.root_key), row.root_len);
  }

  /// First leaf-origin ASN of `row`, 0 if the record has none — the serving
  /// layer's columnar STATS aggregation keys "top origin" counts off this
  /// without materializing the full record.
  std::uint32_t first_leaf_origin(const RecordRow& row) const {
    return row.leaf_origins_count == 0 ? 0u : asn_pool_[row.leaf_origins_off];
  }

  /// Rebuild the full LeaseInference (evidence included) for record `idx`.
  leasing::LeaseInference materialize(std::size_t idx) const;

  /// Adopt the frozen trie arena: leaf prefix -> record index. O(sections)
  /// bulk copy plus jump-table rebuild; no per-entry inserts. The serving
  /// path keeps the default and gets the DIR-24-8 stride table with it;
  /// pass TrieStride::kOff to skip the 64 MiB table.
  Expected<PrefixTrie<std::uint32_t>> build_trie(
      TrieStride stride = TrieStride::kBuild) const;

  std::uint16_t version() const { return version_; }
  /// Bytes backing the snapshot: the file image, or the owned parts' total
  /// for an in-memory parts snapshot.
  std::size_t file_bytes() const;
  std::size_t string_count() const { return string_offsets_.size() - 1; }
  bool mapped() const { return buffer_.mapped(); }

  // Raw section views (read-only), uniform across file-backed and parts
  // snapshots — the catalog's delta apply concatenates these to build the
  // next epoch's parts.
  std::span<const char> string_blob() const { return string_blob_; }
  std::span<const std::uint32_t> string_offsets() const {
    return string_offsets_;
  }
  std::span<const std::uint32_t> asn_pool() const { return asn_pool_; }
  std::span<const std::uint32_t> handle_pool() const { return handle_pool_; }

 private:
  static Expected<Snapshot> parse(Buffer buffer);

  Buffer buffer_;
  // Set only for from_parts snapshots; unique_ptr keeps the vectors'
  // addresses stable across Snapshot moves so the spans below stay valid.
  std::unique_ptr<OwnedParts> parts_;
  std::uint16_t version_ = 0;
  // Typed views into buffer_ (set by parse; never outlive buffer_).
  std::span<const RecordRow> records_;
  std::span<const char> string_blob_;
  std::span<const std::uint32_t> string_offsets_;
  std::span<const std::uint32_t> asn_pool_;
  std::span<const std::uint32_t> handle_pool_;
  std::span<const std::uint8_t> trie_nodes_;
  std::span<const std::uint8_t> trie_values_;
};

}  // namespace sublet::snapshot
