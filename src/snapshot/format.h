// On-disk layout of the inference snapshot (docs/SERVING.md).
//
// A snapshot flattens a classified world — the LeaseInference records plus
// the frozen leaf-prefix trie — into one little-endian file built for O(1)
// load: read the header, validate magic/version/CRC, then bulk-read (or
// mmap) each section straight into the in-memory arena layout. Nothing in
// the payload needs per-record parsing:
//
//   header (32 bytes)
//     magic            8 bytes  "SUBLSNAP"
//     version          u16      kVersion
//     flags            u16      bit 0: payload is little-endian (always set)
//     section_count    u32
//     payload_size     u64      bytes after the section table
//     payload_crc32    u32      CRC-32 of section table + payload
//     reserved         u32      zero
//   section table (section_count x 24 bytes)
//     id               u32      SectionId
//     reserved         u32      zero
//     offset           u64      from payload start; 16-byte aligned
//     length           u64      bytes
//   payload sections
//     kMeta            varints: record/string/asn/handle/trie-node/
//                      trie-value counts (cross-checked against sections)
//     kStringBlob      concatenated deduplicated string bytes
//     kStringOffsets   u32[string_count + 1] offsets into the blob
//     kAsnPool         u32[] ASN values; records reference (off, count)
//     kHandlePool      u32[] string-pool ids; records reference (off, count)
//     kRecords         RecordRow[record_count]
//     kTrieNodes       PrefixTrie node arena (16-byte nodes)
//     kTrieValues      u32[] record indices, parallel to valued trie nodes
#pragma once

#include <cstdint>
#include <type_traits>

namespace sublet::snapshot {

inline constexpr char kMagic[8] = {'S', 'U', 'B', 'L', 'S', 'N', 'A', 'P'};
inline constexpr std::uint16_t kVersion = 1;
inline constexpr std::uint16_t kFlagLittleEndian = 1u << 0;
inline constexpr std::size_t kHeaderSize = 32;
inline constexpr std::size_t kSectionEntrySize = 24;
inline constexpr std::size_t kSectionAlignment = 16;

enum class SectionId : std::uint32_t {
  kMeta = 1,
  kStringBlob = 2,
  kStringOffsets = 3,
  kAsnPool = 4,
  kHandlePool = 5,
  kRecords = 6,
  kTrieNodes = 7,
  kTrieValues = 8,
};
inline constexpr std::uint32_t kSectionCount = 8;

/// One flattened LeaseInference. Strings live in the deduplicated pool
/// (referenced by id), ASN and maintainer-handle lists in shared pools
/// (referenced by offset + count), so the row itself is fixed-size and
/// trivially copyable — the records section is a plain array of these.
struct RecordRow {
  std::uint32_t prefix_key = 0;  // network bits, host-order value
  std::uint32_t root_key = 0;
  std::uint8_t prefix_len = 0;
  std::uint8_t root_len = 0;
  std::uint8_t rir = 0;
  std::uint8_t group = 0;
  std::uint32_t holder_org = 0;  // string-pool id
  std::uint32_t netname = 0;     // string-pool id
  std::uint32_t holder_asns_off = 0;
  std::uint32_t holder_asns_count = 0;
  std::uint32_t leaf_origins_off = 0;
  std::uint32_t leaf_origins_count = 0;
  std::uint32_t root_origins_off = 0;
  std::uint32_t root_origins_count = 0;
  std::uint32_t leaf_maint_off = 0;  // handle-pool span
  std::uint32_t leaf_maint_count = 0;
  std::uint32_t root_maint_off = 0;
  std::uint32_t root_maint_count = 0;
};
static_assert(sizeof(RecordRow) == 60);
static_assert(std::is_trivially_copyable_v<RecordRow>);

/// Counts carried in the kMeta section, cross-checked against the byte
/// length of every bulk section at load time.
struct MetaCounts {
  std::uint64_t records = 0;
  std::uint64_t strings = 0;
  std::uint64_t string_blob_bytes = 0;
  std::uint64_t asn_pool = 0;
  std::uint64_t handle_pool = 0;
  std::uint64_t trie_node_bytes = 0;
  std::uint64_t trie_values = 0;
};

}  // namespace sublet::snapshot
