// Snapshot writer: flatten classified inferences into the binary format.
//
// The writer deduplicates every string (org handles, netnames, maintainer
// handles) into one pooled arena, packs the evidence lists into shared
// pools, and freezes a PrefixTrie keyed by leaf prefix whose values are
// record indices — the exact structure the query engine serves from.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "leasing/types.h"

namespace sublet::snapshot {

/// Serialize `inferences` into snapshot bytes. Duplicate leaf prefixes
/// keep the last record, matching PrefixTrie overwrite semantics.
std::vector<std::uint8_t> encode_snapshot(
    const std::vector<leasing::LeaseInference>& inferences);

/// encode_snapshot + crash-safe write to `path`: the bytes go to
/// `<path>.tmp`, are fsynced, and are renamed into place, so a crash
/// mid-write never leaves a truncated snapshot at `path`. Throws
/// std::runtime_error on I/O failure (DESIGN.md §3: exceptions for I/O,
/// Expected for bad records).
void write_snapshot_file(const std::string& path,
                         const std::vector<leasing::LeaseInference>& inferences);

}  // namespace sublet::snapshot
