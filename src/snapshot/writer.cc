#include "snapshot/writer.h"

#include <fcntl.h>
#include <unistd.h>

#include <bit>
#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "netbase/prefix_trie.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "snapshot/format.h"
#include "util/binio.h"
#include "util/faultinject.h"

namespace sublet::snapshot {

static_assert(std::endian::native == std::endian::little,
              "snapshot bulk sections are raw little-endian arenas");

namespace {

/// Deduplicating string pool: id = insertion index.
class StringPool {
 public:
  std::uint32_t intern(const std::string& s) {
    auto [it, inserted] =
        ids_.emplace(s, static_cast<std::uint32_t>(offsets_.size() - 1));
    if (inserted) {
      blob_ += s;
      offsets_.push_back(static_cast<std::uint32_t>(blob_.size()));
    }
    return it->second;
  }

  const std::string& blob() const { return blob_; }
  const std::vector<std::uint32_t>& offsets() const { return offsets_; }
  std::size_t count() const { return offsets_.size() - 1; }

 private:
  std::unordered_map<std::string, std::uint32_t> ids_;
  std::string blob_;
  std::vector<std::uint32_t> offsets_ = {0};
};

struct SectionEntry {
  SectionId id;
  std::uint64_t offset;
  std::uint64_t length;
};

}  // namespace

std::vector<std::uint8_t> encode_snapshot(
    const std::vector<leasing::LeaseInference>& inferences) {
  obs::ScopedSpan span("snapshot.encode");
  span.add_records(inferences.size());
  StringPool strings;
  strings.intern(std::string());  // id 0 = empty string
  std::vector<std::uint32_t> asn_pool;
  std::vector<std::uint32_t> handle_pool;
  std::vector<RecordRow> rows;
  rows.reserve(inferences.size());

  auto pack_asns = [&](const std::vector<Asn>& asns, std::uint32_t& off,
                       std::uint32_t& count) {
    off = static_cast<std::uint32_t>(asn_pool.size());
    count = static_cast<std::uint32_t>(asns.size());
    for (Asn asn : asns) asn_pool.push_back(asn.value());
  };
  auto pack_handles = [&](const std::vector<std::string>& handles,
                          std::uint32_t& off, std::uint32_t& count) {
    off = static_cast<std::uint32_t>(handle_pool.size());
    count = static_cast<std::uint32_t>(handles.size());
    for (const std::string& h : handles) handle_pool.push_back(strings.intern(h));
  };

  std::vector<std::pair<Prefix, std::uint32_t>> trie_entries;
  trie_entries.reserve(inferences.size());
  for (const leasing::LeaseInference& r : inferences) {
    RecordRow row;
    row.prefix_key = r.prefix.network().value();
    row.prefix_len = static_cast<std::uint8_t>(r.prefix.length());
    row.root_key = r.root_prefix.network().value();
    row.root_len = static_cast<std::uint8_t>(r.root_prefix.length());
    row.rir = static_cast<std::uint8_t>(r.rir);
    row.group = static_cast<std::uint8_t>(r.group);
    row.holder_org = strings.intern(r.holder_org);
    row.netname = strings.intern(r.netname);
    pack_asns(r.holder_asns, row.holder_asns_off, row.holder_asns_count);
    pack_asns(r.leaf_origins, row.leaf_origins_off, row.leaf_origins_count);
    pack_asns(r.root_origins, row.root_origins_off, row.root_origins_count);
    pack_handles(r.leaf_maintainers, row.leaf_maint_off, row.leaf_maint_count);
    pack_handles(r.root_maintainers, row.root_maint_off, row.root_maint_count);
    trie_entries.emplace_back(r.prefix,
                              static_cast<std::uint32_t>(rows.size()));
    rows.push_back(row);
  }
  auto trie = PrefixTrie<std::uint32_t>::freeze(std::move(trie_entries));

  ByteWriter meta;
  meta.varint(rows.size());
  meta.varint(strings.count());
  meta.varint(strings.blob().size());
  meta.varint(asn_pool.size());
  meta.varint(handle_pool.size());
  meta.varint(trie.node_bytes().size());
  meta.varint(trie.value_bytes().size() / sizeof(std::uint32_t));

  auto as_bytes = [](const auto& vec) {
    return std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(vec.data()),
        vec.size() * sizeof(vec[0]));
  };

  // Payload: every section 16-byte aligned so mapped views can be cast to
  // their element types directly.
  ByteWriter payload;
  std::vector<SectionEntry> sections;
  auto emit = [&](SectionId id, std::span<const std::uint8_t> bytes) {
    payload.pad_to(kSectionAlignment);
    sections.push_back(SectionEntry{id, payload.size(), bytes.size()});
    payload.bytes(bytes);
  };
  emit(SectionId::kMeta, meta.data());
  emit(SectionId::kStringBlob,
       {reinterpret_cast<const std::uint8_t*>(strings.blob().data()),
        strings.blob().size()});
  emit(SectionId::kStringOffsets, as_bytes(strings.offsets()));
  emit(SectionId::kAsnPool, as_bytes(asn_pool));
  emit(SectionId::kHandlePool, as_bytes(handle_pool));
  emit(SectionId::kRecords, as_bytes(rows));
  emit(SectionId::kTrieNodes, trie.node_bytes());
  emit(SectionId::kTrieValues, trie.value_bytes());

  ByteWriter table;
  for (const SectionEntry& s : sections) {
    table.u32(static_cast<std::uint32_t>(s.id));
    table.u32(0);
    table.u64(s.offset);
    table.u64(s.length);
  }

  std::uint32_t crc = crc32(table.data());
  crc = crc32(payload.data(), crc);

  ByteWriter out;
  out.string(std::string_view(kMagic, sizeof(kMagic)));
  out.u16(kVersion);
  out.u16(kFlagLittleEndian);
  out.u32(kSectionCount);
  out.u64(payload.size());
  out.u32(crc);
  out.u32(0);  // reserved
  out.bytes(table.data());
  out.bytes(payload.data());
  return out.take();
}

namespace {

/// POSIX write(2) loop with a fault point, so tests can simulate a crash
/// mid-write without a real power cut.
bool write_fully(int fd, const std::uint8_t* data, std::size_t size) {
  std::size_t written = 0;
  while (written < size) {
    int injected = 0;
    ssize_t n;
    if (fault::inject("snapshot.write", &injected)) {
      n = -1;
      errno = injected;
    } else {
      n = ::write(fd, data + written, size - written);
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    written += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

namespace {

struct WriteMetrics {
  obs::Counter& writes;
  obs::Counter& write_bytes;
  obs::Counter& write_failures;
};

WriteMetrics& write_metrics() {
  static WriteMetrics metrics{
      obs::MetricsRegistry::global().counter(
          "sublet_snapshot_writes_total",
          "Snapshot files published (write + fsync + rename)"),
      obs::MetricsRegistry::global().counter(
          "sublet_snapshot_write_bytes_total",
          "Bytes written into published snapshot files"),
      obs::MetricsRegistry::global().counter(
          "sublet_snapshot_write_failures_total",
          "Snapshot publishes aborted by I/O errors")};
  return metrics;
}

const bool g_write_metrics_registered = (write_metrics(), true);

}  // namespace

void write_snapshot_file(
    const std::string& path,
    const std::vector<leasing::LeaseInference>& inferences) {
  obs::ScopedSpan span("snapshot.write");
  std::vector<std::uint8_t> bytes = encode_snapshot(inferences);
  span.add_bytes(bytes.size());
  span.add_records(inferences.size());
  // Crash-safe publish: write <path>.tmp, fsync, then rename into place.
  // A crash (or injected fault) at any step leaves the previous snapshot
  // at `path` untouched — a reader never sees a truncated file.
  const std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                  0644);
  if (fd < 0) {
    write_metrics().write_failures.add(1);
    throw std::runtime_error("cannot write " + tmp + ": " +
                             std::strerror(errno));
  }
  auto abort_with = [&](const std::string& what) {
    int saved = errno;
    ::close(fd);
    ::unlink(tmp.c_str());
    write_metrics().write_failures.add(1);
    throw std::runtime_error(what + " " + tmp + ": " +
                             std::strerror(saved));
  };
  if (!write_fully(fd, bytes.data(), bytes.size())) {
    abort_with("short write to");
  }
  int injected = 0;
  int rc;
  if (fault::inject("snapshot.fsync", &injected)) {
    rc = -1;
    errno = injected;
  } else {
    rc = ::fsync(fd);
  }
  if (rc != 0) abort_with("fsync failed for");
  ::close(fd);
  if (fault::inject("snapshot.rename", &injected)) {
    rc = -1;
    errno = injected;
  } else {
    rc = ::rename(tmp.c_str(), path.c_str());
  }
  if (rc != 0) {
    int saved = errno;
    ::unlink(tmp.c_str());
    write_metrics().write_failures.add(1);
    throw std::runtime_error("cannot rename " + tmp + " to " + path + ": " +
                             std::strerror(saved));
  }
  write_metrics().writes.add(1);
  write_metrics().write_bytes.add(bytes.size());
  // Make the rename itself durable (best-effort: some filesystems refuse
  // O_RDONLY directory fsync, and the data is already safe at `path`).
  std::string dir = path;
  std::size_t slash = dir.find_last_of('/');
  dir = slash == std::string::npos ? "." : dir.substr(0, slash + 1);
  int dirfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dirfd >= 0) {
    ::fsync(dirfd);
    ::close(dirfd);
  }
}

}  // namespace sublet::snapshot
